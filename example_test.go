package rfidclean_test

import (
	"fmt"
	"log"

	rfidclean "repro"
)

// buildDemo assembles the two-room deployment used by the runnable examples.
func buildDemo() (*rfidclean.System, *rfidclean.ConstraintSet) {
	b := rfidclean.NewMapBuilder()
	cor := b.AddLocation("corridor", rfidclean.Corridor, 0, rfidclean.RectWH(0, 0, 12, 3))
	lab := b.AddLocation("lab", rfidclean.Room, 0, rfidclean.RectWH(0, 3, 6, 5))
	office := b.AddLocation("office", rfidclean.Room, 0, rfidclean.RectWH(6, 3, 6, 5))
	b.AddDoor(cor, lab, rfidclean.Pt(3, 3), 1)
	b.AddDoor(cor, office, rfidclean.Pt(9, 3), 1)
	plan, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	readers := []rfidclean.Reader{
		{ID: 0, Name: "r-lab", Floor: 0, Pos: rfidclean.Pt(3, 5.5)},
		{ID: 1, Name: "r-office", Floor: 0, Pos: rfidclean.Pt(9, 5.5)},
		{ID: 2, Name: "r-cor", Floor: 0, Pos: rfidclean.Pt(6, 1.5)},
	}
	sys, err := rfidclean.NewSystem(plan, readers, rfidclean.DefaultThreeState(), 0.5)
	if err != nil {
		log.Fatal(err)
	}
	sys.CalibratePrior(30, rfidclean.NewRNG(1))
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		log.Fatal(err)
	}
	return sys, ic
}

// ExampleSystem_Clean cleans a short synthetic reading log and asks where
// the object most probably was.
func ExampleSystem_Clean() {
	sys, ic := buildDemo()
	rng := rfidclean.NewRNG(42)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(60), rng)
	if err != nil {
		log.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)

	cleaned, err := sys.Clean(readings, ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
	if err != nil {
		log.Fatal(err)
	}
	loc, _, err := cleaned.MostLikelyAt(30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(loc.Name == sys.Plan.Location(truth.Points[30].Loc).Name)
	// Output: true
}

// ExampleBuildCTGraph runs Algorithm 1 on the paper's running-example
// l-sequence shape: conditioning removes invalid trajectories and
// renormalizes the rest.
func ExampleBuildCTGraph() {
	// Two timestamps, two candidate locations each; location 1 cannot
	// follow location 0.
	ls := &rfidclean.LSequence{Steps: []rfidclean.LStep{
		{Candidates: []rfidclean.LCandidate{{Loc: 0, P: 0.5}, {Loc: 1, P: 0.5}}},
		{Candidates: []rfidclean.LCandidate{{Loc: 0, P: 0.5}, {Loc: 1, P: 0.5}}},
	}}
	ic := rfidclean.NewConstraintSet()
	ic.AddDU(0, 1)

	g, err := rfidclean.BuildCTGraph(ls, ic, nil)
	if err != nil {
		log.Fatal(err)
	}
	locs, p := g.MostProbable()
	fmt.Printf("%d trajectories remain; best %v with p=%.3f\n", countPaths(g), locs, p)
	// Output: 3 trajectories remain; best [0 0] with p=0.333
}

func countPaths(g *rfidclean.CTGraph) int {
	n := 0
	if err := g.WalkPaths(1000, func([]*rfidclean.CTNode, float64) { n++ }); err != nil {
		log.Fatal(err)
	}
	return n
}

// ExampleParsePattern shows the paper's trajectory-pattern syntax.
func ExampleParsePattern() {
	resolve := func(name string) (int, error) {
		ids := map[string]int{"lobby": 0, "lab": 1}
		id, ok := ids[name]
		if !ok {
			return 0, fmt.Errorf("unknown %q", name)
		}
		return id, nil
	}
	p, err := rfidclean.ParsePattern("? lab[3] ? lobby ?", resolve)
	if err != nil {
		log.Fatal(err)
	}
	ok, err := rfidclean.MatchesPattern(p, []int{0, 1, 1, 1, 0, 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ok)
	// Output: true
}
