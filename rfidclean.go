package rfidclean

import (
	"context"
	"io"
	"time"

	"fmt"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/prior"
	"repro/internal/query"
	"repro/internal/rfid"
	"repro/internal/stats"
)

// Geometry.
type (
	// Point is a point in the plane, in meters.
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
)

// Pt returns the point (x, y).
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// RectWH returns the rectangle with minimum corner (x, y), width w, height h.
func RectWH(x, y, w, h float64) Rect { return geom.RectWH(x, y, w, h) }

// Floor plans.
type (
	// Plan is an immutable multi-floor building map.
	Plan = floorplan.Plan
	// MapBuilder assembles a Plan from locations, doors and stairs.
	MapBuilder = floorplan.Builder
	// Location is a room, corridor or stairwell on a floor.
	Location = floorplan.Location
	// Door is a passage between two locations.
	Door = floorplan.Door
	// LocationKind classifies locations.
	LocationKind = floorplan.Kind
)

// Location kinds.
const (
	Room      = floorplan.Room
	Corridor  = floorplan.Corridor
	Stairwell = floorplan.Stairwell
)

// NewMapBuilder returns an empty map builder.
func NewMapBuilder() *MapBuilder { return floorplan.NewBuilder() }

// RFID substrate.
type (
	// Reader is an RFID reader antenna at a fixed position.
	Reader = rfid.Reader
	// ReaderSet is a canonical set of reader IDs.
	ReaderSet = rfid.Set
	// Reading is one (timestamp, detecting readers) observation.
	Reading = rfid.Reading
	// ReadingSequence is one reading per timestamp of the window.
	ReadingSequence = rfid.Sequence
	// CellSpace indexes the grid cells of every floor (§6.2's grid).
	CellSpace = rfid.CellSpace
	// DetectionModel yields per-cell detection probabilities.
	DetectionModel = rfid.DetectionModel
	// ThreeState is the three-state antenna detection model.
	ThreeState = rfid.ThreeState
	// DetectionMatrix is the matrix F[r,c] of §6.2.
	DetectionMatrix = rfid.Matrix
)

// NewReaderSet returns the canonical set of the given reader IDs.
func NewReaderSet(ids ...int) ReaderSet { return rfid.NewSet(ids...) }

// DefaultThreeState returns the detection model used by the bundled
// synthetic datasets.
func DefaultThreeState() ThreeState { return rfid.DefaultThreeState() }

// NewCellSpace partitions every floor of a plan into square cells.
func NewCellSpace(plan *Plan, cellSize float64) (*CellSpace, error) {
	return rfid.NewCellSpace(plan, cellSize)
}

// NewTruthMatrix builds the ground-truth detection matrix from a model.
func NewTruthMatrix(cells *CellSpace, readers []Reader, model DetectionModel) *DetectionMatrix {
	return rfid.NewTruthMatrix(cells, readers, model)
}

// Calibrate learns an empirical detection matrix the way §6.2 does: by
// sampling each (reader, cell) pair the given number of times.
func Calibrate(truth *DetectionMatrix, samples int, rng *RNG) *DetectionMatrix {
	return rfid.Calibrate(truth, samples, rng)
}

// Prior model.
type (
	// Prior computes p*(l|R) and converts readings into l-sequences.
	Prior = prior.Model
	// PriorOptions selects the prior's formula and pruning.
	PriorOptions = prior.Options
	// PriorFormula selects how cell weights are computed.
	PriorFormula = prior.Formula
)

// Prior formulas.
const (
	// PaperFormula is §6.2's product-of-fired-readers formula.
	PaperFormula = prior.PaperFormula
	// FullLikelihood additionally accounts for silent readers.
	FullLikelihood = prior.FullLikelihood
)

// NewPrior returns a p*(l|R) model over a detection matrix.
func NewPrior(f *DetectionMatrix, opts PriorOptions) *Prior { return prior.New(f, opts) }

// Constraints.
type (
	// ConstraintSet holds DU, LT and TT integrity constraints.
	ConstraintSet = constraints.Set
	// EndLatencyMode selects end-of-window latency semantics.
	EndLatencyMode = constraints.EndLatencyMode
)

// End-of-window latency semantics.
const (
	// StrictEnd follows Definition 2 literally.
	StrictEnd = constraints.StrictEnd
	// LenientEnd follows Algorithm 1 as printed.
	LenientEnd = constraints.LenientEnd
)

// NewConstraintSet returns an empty constraint set.
func NewConstraintSet() *ConstraintSet { return constraints.NewSet() }

// InferDU derives the direct-unreachability constraints implied by a map.
func InferDU(plan *Plan) *ConstraintSet { return constraints.InferDU(plan) }

// InferLT derives minimum-stay latency constraints for every location whose
// kind is not excluded.
func InferLT(plan *Plan, minStay int, exclude ...LocationKind) *ConstraintSet {
	return constraints.InferLT(plan, minStay, exclude...)
}

// InferTT derives traveling-time constraints from minimum walking distances
// and the objects' maximum speed; a positive cap truncates horizons.
func InferTT(plan *Plan, maxSpeed float64, cap int) (*ConstraintSet, error) {
	return constraints.InferTT(plan, maxSpeed, cap)
}

// Core ct-graph machinery (for advanced use; System/Cleaned wrap it).
type (
	// LSequence is the probabilistic location sequence Γ = (Λ, ρ).
	LSequence = core.LSequence
	// LStep holds the candidate locations of one timestamp.
	LStep = core.Step
	// LCandidate is one (location, probability) candidate.
	LCandidate = core.Candidate
	// CTGraph is a conditioned trajectory graph.
	CTGraph = core.Graph
	// CTNode is a location node (τ, l, δ, TL) of a ct-graph.
	CTNode = core.Node
	// BuildOptions configures ct-graph construction.
	BuildOptions = core.Options
	// BuildExplain is Algorithm 1's explain report (attach one to
	// BuildOptions.Explain to collect it).
	BuildExplain = core.BuildExplain
	// ExplainStep is one timestamp's entry of a BuildExplain.
	ExplainStep = core.ExplainStep
	// OracleResult is the brute-force conditioning baseline's output.
	OracleResult = core.OracleResult
)

// Streaming.
type (
	// Filter is the online (streaming) cleaner: it consumes candidate
	// sets one timestamp at a time and maintains the filtered
	// distribution of the object's current location.
	Filter = core.Filter
	// FilterOptions configures a Filter (e.g. a beam width).
	FilterOptions = core.FilterOptions
	// LocProb is one (location ID, probability) entry of a filtered
	// distribution, as returned by Filter.Distribution/TopLocations.
	LocProb = core.LocProb
	// BuildState keeps Algorithm 1's forward pass alive across readings so
	// streaming sessions can smooth incrementally: Observe appends one
	// timestamp, Smooth reconditions only the suffix the newest readings
	// can invalidate and returns a graph bit-identical to a full offline
	// build over the same readings. It also answers the exact (beam-less)
	// Filter's frontier queries.
	BuildState = core.BuildState
)

// NewFilter returns a streaming cleaner over the given constraints.
func NewFilter(ic *ConstraintSet, opts *FilterOptions) *Filter {
	return core.NewFilter(ic, opts)
}

// NewBuildState returns an incremental build over the given constraints.
func NewBuildState(ic *ConstraintSet) *BuildState {
	return core.NewBuildState(ic)
}

// DecodeCTGraph reads a ct-graph previously written with CTGraph.Encode,
// letting cleaned data be warehoused and queried without re-cleaning.
func DecodeCTGraph(r io.Reader) (*CTGraph, error) { return core.Decode(r) }

// ErrNoValidTrajectory reports that the constraints exclude every
// interpretation of the readings.
var ErrNoValidTrajectory = core.ErrNoValidTrajectory

// BuildCTGraph runs Algorithm 1 directly on an l-sequence.
func BuildCTGraph(ls *LSequence, ic *ConstraintSet, opts *BuildOptions) (*CTGraph, error) {
	return core.Build(ls, ic, opts)
}

// EnumerateConditioned is the naive exact conditioner (testing/baselines).
func EnumerateConditioned(ls *LSequence, ic *ConstraintSet, mode EndLatencyMode, limit int) (*OracleResult, error) {
	return core.EnumerateConditioned(ls, ic, mode, limit)
}

// Queries.
type (
	// Pattern is a trajectory-query pattern (`?`, `l`, `l[n]`).
	Pattern = query.Pattern
	// PatternCondition is one element of a Pattern.
	PatternCondition = query.Condition
)

// Wild returns the `?` pattern condition.
func Wild() PatternCondition { return query.Wild() }

// At returns the pattern condition "a run of loc of length >= minLen".
func At(loc, minLen int) PatternCondition { return query.At(loc, minLen) }

// ParsePattern parses the paper's pattern syntax, resolving location names.
func ParsePattern(s string, resolve func(name string) (int, error)) (Pattern, error) {
	return query.ParsePattern(s, resolve)
}

// MatchesPattern evaluates a pattern on a concrete location sequence.
func MatchesPattern(p Pattern, locs []int) (bool, error) { return query.Matches(p, locs) }

// Synthetic generation.
type (
	// GroundTruth is a generated ground-truth trajectory.
	GroundTruth = gen.Trajectory
	// GeneratorConfig parameterizes the trajectory generator (§6.4).
	GeneratorConfig = gen.TrajectoryConfig
)

// NewGeneratorConfig returns the paper's generator parameters.
func NewGeneratorConfig(duration int) GeneratorConfig { return gen.NewConfig(duration) }

// GenerateTrajectory produces a ground-truth trajectory over a plan.
func GenerateTrajectory(plan *Plan, cfg GeneratorConfig, rng *RNG) (*GroundTruth, error) {
	return gen.GenerateTrajectory(plan, cfg, rng)
}

// GenerateReadings samples RFID readings along a ground-truth trajectory.
func GenerateReadings(traj *GroundTruth, f *DetectionMatrix, rng *RNG) ReadingSequence {
	return gen.GenerateReadings(traj, f, rng)
}

// RNG is a small seedable random number generator used throughout for
// reproducible synthetic data.
type RNG = stats.RNG

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// System bundles a deployment: the map, the readers, the grid, the
// ground-truth detection matrix and (after calibration) the prior. It is the
// high-level entry point; the underlying pieces remain accessible for
// advanced use.
type System struct {
	Plan    *Plan
	Readers []Reader
	Cells   *CellSpace
	// Truth is the detection matrix implied by the detection model; the
	// synthetic reading generator samples from it.
	Truth *DetectionMatrix
	// Prior is p*(l|R); nil until CalibratePrior or SetPrior is called.
	Prior *Prior
}

// NewSystem builds a System over a plan: it partitions the floors into
// square cells of the given size and evaluates the detection model on every
// (reader, cell) pair.
func NewSystem(plan *Plan, readers []Reader, model DetectionModel, cellSize float64) (*System, error) {
	if plan == nil {
		return nil, fmt.Errorf("rfidclean: nil plan")
	}
	if len(readers) == 0 {
		return nil, fmt.Errorf("rfidclean: no readers")
	}
	cells, err := rfid.NewCellSpace(plan, cellSize)
	if err != nil {
		return nil, err
	}
	return &System{
		Plan:    plan,
		Readers: readers,
		Cells:   cells,
		Truth:   rfid.NewTruthMatrix(cells, readers, model),
	}, nil
}

// CalibratePrior learns p*(l|R) the way §6.2 does: a (virtual) tag is kept
// in every cell for `samples` time units and detection frequencies are
// recorded, yielding the empirical matrix F̂ the prior is computed from.
func (s *System) CalibratePrior(samples int, rng *RNG) {
	s.Prior = prior.New(rfid.Calibrate(s.Truth, samples, rng), prior.Options{})
}

// SetPrior installs a custom prior (e.g. with PriorOptions different from
// the paper's defaults).
func (s *System) SetPrior(p *Prior) { s.Prior = p }

// ConstraintParams identifies one DU+LT+TT constraint derivation over a
// deployment's map. It is a comparable value type, so serving layers can use
// it directly as a map key when memoizing inferred constraint sets.
type ConstraintParams struct {
	// MaxSpeed (m/s) drives TT inference; must be > 0.
	MaxSpeed float64
	// MinStay (time points) drives LT inference on non-corridor locations.
	MinStay int
	// TTCap truncates TT horizons (0 = uncapped).
	TTCap int
}

// Constraints derives the constraint set identified by p. It is
// InferConstraints with the parameters gathered into a cacheable key; the
// returned set is read-only after inference and safe for concurrent use.
func (s *System) Constraints(p ConstraintParams) (*ConstraintSet, error) {
	return s.InferConstraints(p.MaxSpeed, p.MinStay, p.TTCap)
}

// InferConstraints derives the full DU+LT+TT constraint set from the map:
// maxSpeed (m/s) drives the TT horizons, minStay (time points) the latency
// constraints on non-corridor locations, and ttCap optionally truncates TT
// horizons (0 = uncapped).
func (s *System) InferConstraints(maxSpeed float64, minStay, ttCap int) (*ConstraintSet, error) {
	ic := constraints.InferDU(s.Plan)
	ic.Merge(constraints.InferLT(s.Plan, minStay, floorplan.Corridor))
	tt, err := constraints.InferTT(s.Plan, maxSpeed, ttCap)
	if err != nil {
		return nil, err
	}
	ic.Merge(tt)
	return ic, nil
}

// Clean interprets a reading sequence through the prior and conditions it on
// the integrity constraints, returning the cleaned trajectory data. A nil
// constraint set cleans with no constraints (the conditioned distribution
// then equals the prior). It returns ErrNoValidTrajectory when the
// constraints exclude every interpretation of the readings.
func (s *System) Clean(readings ReadingSequence, ic *ConstraintSet, opts *BuildOptions) (*Cleaned, error) {
	return s.CleanCtx(context.Background(), readings, ic, opts)
}

// CleanCtx is Clean with observability: when ctx carries an obs.Trace the
// prior derivation and the build phases record spans into it, and when
// opts.Explain is set the returned Cleaned carries an explain report
// (Cleaned.Explain). With neither attached it does the same work as Clean.
func (s *System) CleanCtx(ctx context.Context, readings ReadingSequence, ic *ConstraintSet, opts *BuildOptions) (*Cleaned, error) {
	if s.Prior == nil {
		return nil, fmt.Errorf("rfidclean: no prior; call CalibratePrior or SetPrior first")
	}
	_, sp := obs.Start(ctx, "prior.lsequence")
	deriveStart := time.Now()
	ls, err := s.Prior.LSequence(readings)
	derive := time.Since(deriveStart)
	sp.Int("timestamps", int64(len(readings))).End()
	if err != nil {
		return nil, err
	}
	g, err := core.BuildCtx(ctx, ls, ic, opts)
	if err != nil {
		return nil, err
	}
	return newCleanedExplained(g, s.Plan, opts, derive), nil
}

// CleanGroup cleans the readings of several tags known to move together
// (attached to the same pallet, cart or person — the supply-chain group
// correlation the paper's §8 lists as future work). The members' reader sets
// are fused at the grid-cell level into one joint l-sequence, which is then
// conditioned like a single object's. All sequences must cover the same
// window.
func (s *System) CleanGroup(readings []ReadingSequence, ic *ConstraintSet, opts *BuildOptions) (*Cleaned, error) {
	return s.CleanGroupCtx(context.Background(), readings, ic, opts)
}

// CleanGroupCtx is CleanGroup with observability; see CleanCtx.
func (s *System) CleanGroupCtx(ctx context.Context, readings []ReadingSequence, ic *ConstraintSet, opts *BuildOptions) (*Cleaned, error) {
	if s.Prior == nil {
		return nil, fmt.Errorf("rfidclean: no prior; call CalibratePrior or SetPrior first")
	}
	_, sp := obs.Start(ctx, "prior.lsequence")
	deriveStart := time.Now()
	ls, err := s.Prior.GroupLSequence(readings)
	derive := time.Since(deriveStart)
	sp.Int("members", int64(len(readings))).End()
	if err != nil {
		return nil, err
	}
	g, err := core.BuildCtx(ctx, ls, ic, opts)
	if err != nil {
		return nil, err
	}
	return newCleanedExplained(g, s.Plan, opts, derive), nil
}

// SmoothState conditions the readings observed so far by an incremental
// BuildState and wraps the result exactly like Clean wraps a full build: the
// returned Cleaned carries the same query engine, and, when opts.Explain is
// set, an explain report whose counters match a full build's (DeriveNanos is
// zero — the l-sequence derivation already happened reading by reading, on
// the Candidates path). The result is independent of the state: the session
// may keep observing and smoothing without invalidating it.
func (s *System) SmoothState(st *BuildState, opts *BuildOptions) (*Cleaned, error) {
	g, err := st.Smooth(opts)
	if err != nil {
		return nil, err
	}
	return newCleanedExplained(g, s.Plan, opts, 0), nil
}

// Candidates converts one reading's detecting-reader set into the candidate
// locations with non-zero probability under the prior — the per-timestamp
// input of a streaming Filter. The result is freshly allocated and owned by
// the caller.
func (s *System) Candidates(r ReaderSet) ([]LCandidate, error) {
	if s.Prior == nil {
		return nil, fmt.Errorf("rfidclean: no prior; call CalibratePrior or SetPrior first")
	}
	dist := s.Prior.Dist(r)
	cands := make([]LCandidate, 0, 8)
	for loc, p := range dist {
		if p > 0 {
			cands = append(cands, LCandidate{Loc: loc, P: p})
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("rfidclean: no candidate location for readers %v", r)
	}
	return cands, nil
}

// LocationID resolves a location name to its ID.
func (s *System) LocationID(name string) (int, error) {
	l, ok := s.Plan.LocationByName(name)
	if !ok {
		return 0, fmt.Errorf("rfidclean: unknown location %q", name)
	}
	return l.ID, nil
}

// ParsePattern parses a trajectory-query pattern using the system's location
// names.
func (s *System) ParsePattern(pattern string) (Pattern, error) {
	return query.ParsePattern(pattern, s.LocationID)
}
