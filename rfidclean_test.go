package rfidclean_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	rfidclean "repro"
)

// demoSystem builds a small public-API-only deployment: two rooms joined to
// a corridor, one reader per location.
func demoSystem(t testing.TB) *rfidclean.System {
	t.Helper()
	b := rfidclean.NewMapBuilder()
	cor := b.AddLocation("corridor", rfidclean.Corridor, 0, rfidclean.RectWH(0, 0, 12, 3))
	lab := b.AddLocation("lab", rfidclean.Room, 0, rfidclean.RectWH(0, 3, 6, 5))
	office := b.AddLocation("office", rfidclean.Room, 0, rfidclean.RectWH(6, 3, 6, 5))
	b.AddDoor(cor, lab, rfidclean.Pt(3, 3), 1)
	b.AddDoor(cor, office, rfidclean.Pt(9, 3), 1)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	readers := []rfidclean.Reader{
		{ID: 0, Name: "r-lab", Floor: 0, Pos: rfidclean.Pt(3, 5.5)},
		{ID: 1, Name: "r-office", Floor: 0, Pos: rfidclean.Pt(9, 5.5)},
		{ID: 2, Name: "r-cor", Floor: 0, Pos: rfidclean.Pt(6, 1.5)},
	}
	sys, err := rfidclean.NewSystem(plan, readers, rfidclean.DefaultThreeState(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sys.CalibratePrior(30, rfidclean.NewRNG(7))
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := rfidclean.NewSystem(nil, nil, rfidclean.DefaultThreeState(), 0.5); err == nil {
		t.Errorf("nil plan accepted")
	}
	b := rfidclean.NewMapBuilder()
	b.AddLocation("a", rfidclean.Room, 0, rfidclean.RectWH(0, 0, 4, 4))
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rfidclean.NewSystem(plan, nil, rfidclean.DefaultThreeState(), 0.5); err == nil {
		t.Errorf("no readers accepted")
	}
	if _, err := rfidclean.NewSystem(plan, []rfidclean.Reader{{}}, rfidclean.DefaultThreeState(), 0); err == nil {
		t.Errorf("zero cell size accepted")
	}
}

func TestCleanRequiresPrior(t *testing.T) {
	b := rfidclean.NewMapBuilder()
	b.AddLocation("a", rfidclean.Room, 0, rfidclean.RectWH(0, 0, 4, 4))
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rfidclean.NewSystem(plan, []rfidclean.Reader{{ID: 0, Pos: rfidclean.Pt(2, 2)}}, rfidclean.DefaultThreeState(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Clean(rfidclean.ReadingSequence{{Time: 0}}, nil, nil); err == nil {
		t.Errorf("Clean without prior accepted")
	}
}

func TestEndToEndPublicAPI(t *testing.T) {
	sys := demoSystem(t)
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Synthesize a ground-truth trajectory and its readings.
	rng := rfidclean.NewRNG(99)
	cfg := rfidclean.NewGeneratorConfig(120)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)

	cleaned, err := sys.Clean(readings, ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
	if err != nil {
		t.Fatal(err)
	}
	if cleaned.Duration() != 120 {
		t.Errorf("Duration = %d", cleaned.Duration())
	}

	// Stay query: distribution sums to 1.
	dist, err := cleaned.StayDistribution(60)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("stay distribution sums to %v", sum)
	}

	loc, p, err := cleaned.MostLikelyAt(60)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1+1e-9 {
		t.Errorf("MostLikelyAt p = %v", p)
	}
	if loc.Name == "" {
		t.Errorf("MostLikelyAt returned empty location")
	}

	// Viterbi decoding yields a plausible trajectory.
	best, bp := cleaned.MostProbable()
	if len(best) != 120 || bp <= 0 {
		t.Errorf("MostProbable = %d locs, p=%v", len(best), bp)
	}

	// Sampling produces trajectories of the right shape.
	sample := cleaned.Sample(rng)
	if len(sample) != 120 {
		t.Errorf("Sample length = %d", len(sample))
	}

	// Pattern query via names.
	pYes, err := cleaned.Match("? lab ?")
	if err != nil {
		t.Fatal(err)
	}
	if pYes < 0 || pYes > 1+1e-9 {
		t.Errorf("Match probability = %v", pYes)
	}
	if _, err := cleaned.Match("? nowhere ?"); err == nil {
		t.Errorf("unknown location accepted in pattern")
	}

	// Marginals agree with stay queries.
	m, err := cleaned.Marginals()
	if err != nil {
		t.Fatal(err)
	}
	for locID := range dist {
		if math.Abs(m[60][locID]-dist[locID]) > 1e-9 {
			t.Errorf("marginals disagree with stay query at loc %d", locID)
		}
	}

	st := cleaned.Stats()
	if st.Nodes == 0 || st.Edges == 0 || st.Bytes == 0 {
		t.Errorf("Stats = %+v", st)
	}
	if cleaned.Graph() == nil {
		t.Errorf("Graph() is nil")
	}
	if cleaned.LocationName(0) == "?" || cleaned.LocationName(-1) != "?" {
		t.Errorf("LocationName misbehaves")
	}
}

func TestInferConstraintsShape(t *testing.T) {
	sys := demoSystem(t)
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	du, lt, tt := ic.Counts()
	if du == 0 {
		t.Errorf("no DU constraints inferred")
	}
	if lt != 2 { // lab and office, not the corridor
		t.Errorf("lt = %d, want 2", lt)
	}
	if tt == 0 {
		t.Errorf("no TT constraints inferred")
	}
	if _, err := sys.InferConstraints(0, 5, 0); err == nil {
		t.Errorf("zero speed accepted")
	}
}

func TestLocationIDAndPattern(t *testing.T) {
	sys := demoSystem(t)
	id, err := sys.LocationID("lab")
	if err != nil {
		t.Fatal(err)
	}
	if name := sys.Plan.Location(id).Name; name != "lab" {
		t.Errorf("LocationID round trip = %q", name)
	}
	if _, err := sys.LocationID("nope"); err == nil {
		t.Errorf("unknown location accepted")
	}
	p, err := sys.ParsePattern("? lab[3] ? office ?")
	if err != nil {
		t.Fatal(err)
	}
	if p.MinDuration() != 4 {
		t.Errorf("MinDuration = %d", p.MinDuration())
	}
	ok, err := rfidclean.MatchesPattern(p, []int{0, id, id, id, 0, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	officeID, _ := sys.LocationID("office")
	if ok != (officeID == 2) {
		t.Errorf("MatchesPattern = %v (office id %d)", ok, officeID)
	}
}

func TestErrNoValidTrajectorySurfaces(t *testing.T) {
	sys := demoSystem(t)
	ic := rfidclean.NewConstraintSet()
	// Forbid every transition and every stay: nothing is valid for a
	// 2-step window.
	n := sys.Plan.NumLocations()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			ic.AddDU(a, b)
		}
	}
	readings := rfidclean.ReadingSequence{
		{Time: 0, Readers: rfidclean.NewReaderSet(0)},
		{Time: 1, Readers: rfidclean.NewReaderSet(0)},
	}
	_, err := sys.Clean(readings, ic, nil)
	if !errors.Is(err, rfidclean.ErrNoValidTrajectory) {
		t.Errorf("err = %v, want ErrNoValidTrajectory", err)
	}
}

func TestBuildCTGraphDirect(t *testing.T) {
	// The low-level API remains usable without a System.
	ls := &rfidclean.LSequence{}
	if _, err := rfidclean.BuildCTGraph(ls, nil, nil); err == nil {
		t.Errorf("empty l-sequence accepted")
	}
	res, err := rfidclean.EnumerateConditioned(
		demoLSequence(), rfidclean.NewConstraintSet(), rfidclean.StrictEnd, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectories) != 4 {
		t.Errorf("oracle trajectories = %d", len(res.Trajectories))
	}
}

func demoLSequence() *rfidclean.LSequence {
	return &rfidclean.LSequence{Steps: []rfidclean.LStep{
		{Candidates: []rfidclean.LCandidate{{Loc: 0, P: 0.5}, {Loc: 1, P: 0.5}}},
		{Candidates: []rfidclean.LCandidate{{Loc: 0, P: 0.5}, {Loc: 1, P: 0.5}}},
	}}
}

func TestFacadeExtensions(t *testing.T) {
	sys := demoSystem(t)
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rfidclean.NewRNG(17)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(90), rng)
	if err != nil {
		t.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)
	cleaned, err := sys.Clean(readings, ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
	if err != nil {
		t.Fatal(err)
	}

	// Top-K: descending, first equals Viterbi.
	trajs, probs := cleaned.TopK(3)
	if len(trajs) == 0 {
		t.Fatal("TopK empty")
	}
	_, vp := cleaned.MostProbable()
	if math.Abs(probs[0]-vp) > 1e-9 {
		t.Errorf("TopK[0] %v != Viterbi %v", probs[0], vp)
	}

	// Expected occupancy sums to the duration.
	occ, err := cleaned.ExpectedOccupancy()
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, o := range occ {
		total += o
	}
	if math.Abs(total-90) > 1e-6 {
		t.Errorf("occupancy sums to %v, want 90", total)
	}

	// Encode / decode round trip preserves stay distributions.
	var buf bytes.Buffer
	if err := cleaned.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := rfidclean.DecodeCTGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Duration() != 90 {
		t.Errorf("decoded duration = %d", back.Duration())
	}

	// Streaming filter tracks the object online.
	f := rfidclean.NewFilter(ic, nil)
	for _, r := range readings {
		dist := sys.Prior.Dist(r.Readers)
		var cands []rfidclean.LCandidate
		for loc, p := range dist {
			if p > 0 {
				cands = append(cands, rfidclean.LCandidate{Loc: loc, P: p})
			}
		}
		if err := f.Observe(cands); err != nil {
			t.Fatal(err)
		}
	}
	final, err := f.Current(sys.Plan.NumLocations())
	if err != nil {
		t.Fatal(err)
	}
	smoothed, err := cleaned.StayDistribution(89)
	if err != nil {
		t.Fatal(err)
	}
	for loc := range final {
		if math.Abs(final[loc]-smoothed[loc]) > 1e-9 {
			t.Errorf("filter and graph disagree at loc %d: %v vs %v", loc, final[loc], smoothed[loc])
		}
	}
}

func TestIntervalQueriesFacade(t *testing.T) {
	sys := demoSystem(t)
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rfidclean.NewRNG(23)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(120), rng)
	if err != nil {
		t.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)
	cleaned, err := sys.Clean(readings, ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
	if err != nil {
		t.Fatal(err)
	}
	p, err := cleaned.EverIn("lab", 0, 119)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p > 1+1e-9 {
		t.Errorf("EverIn = %v", p)
	}
	tm, err := cleaned.ExpectedVisitTime("lab", 0, 119)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 0 || tm > 120+1e-6 {
		t.Errorf("ExpectedVisitTime = %v", tm)
	}
	if _, err := cleaned.EverIn("nope", 0, 1); err == nil {
		t.Errorf("unknown location accepted")
	}
	if _, err := cleaned.ExpectedVisitTime("nope", 0, 1); err == nil {
		t.Errorf("unknown location accepted")
	}
	// Consistency: EverIn over a single timestamp equals the stay marginal.
	dist, err := cleaned.StayDistribution(50)
	if err != nil {
		t.Fatal(err)
	}
	labID, err := sys.LocationID("lab")
	if err != nil {
		t.Fatal(err)
	}
	single, err := cleaned.EverIn("lab", 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single-dist[labID]) > 1e-9 {
		t.Errorf("EverIn single timestamp %v != marginal %v", single, dist[labID])
	}
}

func TestCleanGroup(t *testing.T) {
	sys := demoSystem(t)
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rfidclean.NewRNG(61)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(120), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Three tags riding the same trajectory, each with independent noise.
	var group []rfidclean.ReadingSequence
	for i := 0; i < 3; i++ {
		group = append(group, rfidclean.GenerateReadings(truth, sys.Truth, rng.Split()))
	}
	single, err := sys.Clean(group[0], ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
	if err != nil {
		t.Fatal(err)
	}
	joint, err := sys.CleanGroup(group, ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
	if err != nil {
		t.Fatal(err)
	}
	locs := truth.Locations()
	var singleAcc, jointAcc float64
	for tau := 0; tau < 120; tau += 5 {
		sd, err := single.StayDistribution(tau)
		if err != nil {
			t.Fatal(err)
		}
		jd, err := joint.StayDistribution(tau)
		if err != nil {
			t.Fatal(err)
		}
		singleAcc += sd[locs[tau]]
		jointAcc += jd[locs[tau]]
	}
	t.Logf("group accuracy %.3f vs single-tag %.3f (sum over 24 queries)", jointAcc, singleAcc)
	if jointAcc < singleAcc-1.0 {
		t.Errorf("group cleaning much worse than single-tag: %.3f vs %.3f", jointAcc, singleAcc)
	}

	// Errors.
	if _, err := sys.CleanGroup(nil, ic, nil); err == nil {
		t.Errorf("empty group accepted")
	}
	sysNoPrior, err := rfidclean.NewSystem(sys.Plan, sys.Readers, rfidclean.DefaultThreeState(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sysNoPrior.CleanGroup(group, ic, nil); err == nil {
		t.Errorf("CleanGroup without prior accepted")
	}
}

func TestDeploymentRoundTrip(t *testing.T) {
	sys := demoSystem(t)
	dep := &rfidclean.Deployment{
		Name:               "demo",
		Plan:               sys.Plan,
		Readers:            sys.Readers,
		Detection:          rfidclean.DefaultThreeState(),
		CellSize:           0.5,
		CalibrationSamples: 30,
		Seed:               7,
	}
	var buf bytes.Buffer
	if err := dep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := rfidclean.DecodeDeployment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "demo" || back.Plan.NumLocations() != sys.Plan.NumLocations() {
		t.Fatalf("deployment changed: %+v", back)
	}
	sys2, err := back.System()
	if err != nil {
		t.Fatal(err)
	}
	// Same seed -> identical priors.
	a := sys.Prior.Dist(rfidclean.NewReaderSet(0))
	b := sys2.Prior.Dist(rfidclean.NewReaderSet(0))
	for loc := range a {
		if math.Abs(a[loc]-b[loc]) > 1e-12 {
			t.Fatalf("prior changed at loc %d: %v vs %v", loc, a[loc], b[loc])
		}
	}
}

func TestDeploymentValidation(t *testing.T) {
	sys := demoSystem(t)
	good := func() *rfidclean.Deployment {
		return &rfidclean.Deployment{
			Name: "d", Plan: sys.Plan, Readers: sys.Readers,
			Detection: rfidclean.DefaultThreeState(), CellSize: 0.5,
			CalibrationSamples: 30, Seed: 1,
		}
	}
	var buf bytes.Buffer
	if err := (&rfidclean.Deployment{}).Encode(&buf); err == nil {
		t.Errorf("nil plan accepted")
	}
	cases := []func(*rfidclean.Deployment){
		func(d *rfidclean.Deployment) { d.Readers = nil },
		func(d *rfidclean.Deployment) { d.Readers = append(d.Readers[:0:0], d.Readers[0], d.Readers[0]) },
		func(d *rfidclean.Deployment) {
			rs := append([]rfidclean.Reader(nil), d.Readers...)
			rs[0].Floor = 9
			d.Readers = rs
		},
		func(d *rfidclean.Deployment) { d.CellSize = 0 },
		func(d *rfidclean.Deployment) { d.CalibrationSamples = 0 },
	}
	for i, mutate := range cases {
		d := good()
		mutate(d)
		if _, err := d.System(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := rfidclean.DecodeDeployment(bytes.NewBufferString("{")); err == nil {
		t.Errorf("garbage accepted")
	}
}

func TestEventsAndTransitions(t *testing.T) {
	sys := demoSystem(t)
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rfidclean.NewRNG(41)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(120), rng)
	if err != nil {
		t.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)
	cleaned, err := sys.Clean(readings, ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
	if err != nil {
		t.Fatal(err)
	}
	events := cleaned.Events()
	if len(events) == 0 {
		t.Fatal("no events")
	}
	covered := 0
	for _, ev := range events {
		covered += ev.Duration()
	}
	if covered != 120 {
		t.Errorf("events cover %d timestamps, want 120", covered)
	}
	tm := cleaned.TransitionMatrix()
	total := 0.0
	for _, row := range tm {
		for _, v := range row {
			if v < -1e-9 {
				t.Fatalf("negative transition expectation %v", v)
			}
			total += v
		}
	}
	if math.Abs(total-119) > 1e-6 {
		t.Errorf("transitions sum to %v, want 119", total)
	}
}
