package rfidclean

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// BatchOptions configures CleanAll.
type BatchOptions struct {
	// Build configures ct-graph construction for every sequence (nil uses
	// the defaults, i.e. StrictEnd semantics).
	Build *BuildOptions
	// Workers caps the number of sequences cleaned concurrently. Zero or
	// negative uses GOMAXPROCS.
	Workers int
	// Context optionally bounds the batch: once it is done, slots that have
	// not started cleaning fail with the context's error instead of running.
	// Sequences already being cleaned run to completion. Nil means no
	// cancellation.
	Context context.Context
}

func (o *BatchOptions) workers() int {
	if o != nil && o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o *BatchOptions) build() *BuildOptions {
	if o == nil {
		return nil
	}
	return o.Build
}

func (o *BatchOptions) context() context.Context {
	if o != nil && o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// CleanAll cleans many objects' reading sequences concurrently over a
// bounded worker pool. Per-object cleaning is embarrassingly parallel — the
// prior and the constraint set are shared read-mostly state safe for
// concurrent use — so a warehouse-scale batch (the deployment shape of
// distributed RFID inference pipelines) splits cleanly across cores.
//
// The results are positional: cleaned[i] and errs[i] correspond to
// readings[i], and exactly one of them is non-nil. A sequence the
// constraints rule out entirely yields ErrNoValidTrajectory in its slot;
// one bad sequence never aborts the rest of the batch.
func (s *System) CleanAll(readings []ReadingSequence, ic *ConstraintSet, opts *BatchOptions) (cleaned []*Cleaned, errs []error) {
	cleaned = make([]*Cleaned, len(readings))
	errs = make([]error, len(readings))
	if len(readings) == 0 {
		return cleaned, errs
	}
	if s.Prior == nil {
		err := fmt.Errorf("rfidclean: no prior; call CalibratePrior or SetPrior first")
		for i := range errs {
			errs[i] = err
		}
		return cleaned, errs
	}
	workers := opts.workers()
	if workers > len(readings) {
		workers = len(readings)
	}
	build := opts.build()
	ctx := opts.context()
	done := ctx.Done()

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				b := build
				if b != nil && b.Explain != nil {
					// Explain reports are written without synchronization, so
					// concurrent slots must not share one; give each job its
					// own copy of the options with a fresh report.
					bb := *b
					bb.Explain = &BuildExplain{}
					b = &bb
				}
				cleaned[i], errs[i] = s.CleanCtx(ctx, readings[i], ic, b)
			}
		}()
	}
dispatch:
	for i := range readings {
		select {
		case jobs <- i:
		case <-done:
			// Slots from i on were never handed to a worker; fail them here.
			for j := i; j < len(readings); j++ {
				errs[j] = ctx.Err()
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return cleaned, errs
}
