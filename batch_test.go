package rfidclean_test

import (
	"context"
	"errors"
	"math"
	"testing"

	rfidclean "repro"
)

// batchReadings synthesizes n independent objects' reading sequences over
// the demo deployment.
func batchReadings(t testing.TB, sys *rfidclean.System, n, duration int, seed uint64) []rfidclean.ReadingSequence {
	t.Helper()
	rng := rfidclean.NewRNG(seed)
	cfg := rfidclean.NewGeneratorConfig(duration)
	out := make([]rfidclean.ReadingSequence, n)
	for i := range out {
		truth, err := rfidclean.GenerateTrajectory(sys.Plan, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = rfidclean.GenerateReadings(truth, sys.Truth, rng)
	}
	return out
}

// TestCleanAllMatchesSequential: CleanAll over a worker pool returns, slot by
// slot, the same cleaned distributions as cleaning each sequence alone.
func TestCleanAllMatchesSequential(t *testing.T) {
	sys := demoSystem(t)
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	readings := batchReadings(t, sys, 12, 60, 1)
	opts := &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd}
	cleaned, errs := sys.CleanAll(readings, ic, &rfidclean.BatchOptions{Build: opts, Workers: 4})
	if len(cleaned) != len(readings) || len(errs) != len(readings) {
		t.Fatalf("positional result lengths %d/%d, want %d", len(cleaned), len(errs), len(readings))
	}
	for i, r := range readings {
		want, wantErr := sys.Clean(r, ic, opts)
		if (wantErr == nil) != (errs[i] == nil) {
			t.Fatalf("slot %d: sequential err %v, batch err %v", i, wantErr, errs[i])
		}
		if wantErr != nil {
			continue
		}
		if cleaned[i] == nil {
			t.Fatalf("slot %d: nil result without error", i)
		}
		wm, err := want.Marginals()
		if err != nil {
			t.Fatal(err)
		}
		gm, err := cleaned[i].Marginals()
		if err != nil {
			t.Fatal(err)
		}
		for tau := range wm {
			for loc := range wm[tau] {
				if math.Abs(wm[tau][loc]-gm[tau][loc]) > 1e-12 {
					t.Fatalf("slot %d: marginal[%d][%d] = %v, sequential %v",
						i, tau, loc, gm[tau][loc], wm[tau][loc])
				}
			}
		}
	}
}

// TestCleanAllIsolatesFailures: one inconsistent sequence fails its own slot
// only, and the default worker count handles an empty batch.
func TestCleanAllIsolatesFailures(t *testing.T) {
	sys := demoSystem(t)
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	readings := batchReadings(t, sys, 3, 40, 2)
	// A sequence of the wrong shape (no readings) fails interpretation.
	readings[1] = rfidclean.ReadingSequence{}
	cleaned, errs := sys.CleanAll(readings, ic, nil)
	if errs[1] == nil {
		t.Errorf("empty sequence did not fail its slot")
	}
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("healthy slots failed: %v %v", errs[0], errs[2])
	}
	if cleaned[0] == nil || cleaned[1] != nil || cleaned[2] == nil {
		t.Errorf("cleaned slots inconsistent with errors")
	}

	cleaned, errs = sys.CleanAll(nil, ic, nil)
	if len(cleaned) != 0 || len(errs) != 0 {
		t.Errorf("empty batch returned %d/%d slots", len(cleaned), len(errs))
	}

	// Without a prior every slot reports the same configuration error.
	bare := &rfidclean.System{Plan: sys.Plan, Readers: sys.Readers, Cells: sys.Cells, Truth: sys.Truth}
	_, errs = bare.CleanAll(batchReadings(t, sys, 2, 10, 3), ic, nil)
	for i, err := range errs {
		if err == nil {
			t.Errorf("slot %d cleaned without a prior", i)
		}
	}
}

// TestCleanAllNoValidTrajectory: a batch whose constraints rule everything
// out yields ErrNoValidTrajectory per slot, not a panic or a global abort.
func TestCleanAllNoValidTrajectory(t *testing.T) {
	sys := demoSystem(t)
	// Forbid every move and every stay by latency that can never complete:
	// make all locations mutually unreachable and require a minimum stay
	// longer than the window under strict end semantics.
	ic, err := sys.InferConstraints(2, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	readings := batchReadings(t, sys, 4, 20, 4)
	_, errs := sys.CleanAll(readings, ic, &rfidclean.BatchOptions{
		Build:   &rfidclean.BuildOptions{EndLatency: rfidclean.StrictEnd},
		Workers: 2,
	})
	for i, err := range errs {
		if err != nil && !errors.Is(err, rfidclean.ErrNoValidTrajectory) {
			t.Errorf("slot %d: unexpected error %v", i, err)
		}
	}
}

// BenchmarkCleanAll compares sequential cleaning against the worker pool on
// a 100-object batch (the acceptance scenario).
func BenchmarkCleanAll(b *testing.B) {
	sys := demoSystem(b)
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		b.Fatal(err)
	}
	readings := batchReadings(b, sys, 100, 60, 7)
	opts := &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd}
	for _, workers := range []int{1, 8} {
		name := "workers1"
		if workers == 8 {
			name = "workers8"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, errs := sys.CleanAll(readings, ic, &rfidclean.BatchOptions{Build: opts, Workers: workers})
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// TestCleanAllCancelled: a done context fails every slot with the context's
// error instead of cleaning; a live context cleans normally.
func TestCleanAllCancelled(t *testing.T) {
	sys := demoSystem(t)
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	readings := batchReadings(t, sys, 6, 30, 8)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cleaned, errs := sys.CleanAll(readings, ic, &rfidclean.BatchOptions{Workers: 2, Context: ctx})
	for i := range readings {
		if cleaned[i] != nil || !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("slot %d: cleaned=%v err=%v, want context.Canceled", i, cleaned[i], errs[i])
		}
	}

	cleaned, errs = sys.CleanAll(readings, ic, &rfidclean.BatchOptions{Workers: 2, Context: context.Background()})
	for i := range readings {
		if errs[i] != nil || cleaned[i] == nil {
			t.Fatalf("live-context slot %d: err=%v", i, errs[i])
		}
	}
}
