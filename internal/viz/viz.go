// Package viz renders floor plans and per-location intensities as ASCII
// art, for CLI diagnostics: inspecting a deployment's geometry, or
// overlaying cleaned-data quantities (stay marginals, expected occupancy)
// on the map.
package viz

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/geom"
)

// Options configures rendering. The zero value uses sensible defaults.
type Options struct {
	// CharSize is the map extent covered by one character cell in meters
	// (default 0.5; characters are drawn 2:1 to compensate for terminal
	// aspect ratio, so a character is CharSize wide and 2*CharSize tall).
	CharSize float64
	// Intensity, when non-nil, shades each location by Intensity[locID]
	// (relative to the maximum). Use stay marginals, occupancy seconds…
	Intensity []float64
	// Readers marks reader positions with 'R'.
	Readers []geom.Point
	// Labels writes each location's index letter in its center.
	Labels bool
}

// shades orders the fill characters from empty to full.
var shades = []byte{' ', '.', ':', '+', '*', '@'}

// RenderFloor draws one floor of the plan. Walls are '#', doors are gaps,
// locations are shaded by intensity (blank when no intensity is given).
func RenderFloor(plan *floorplan.Plan, floor int, opts Options) string {
	charW := opts.CharSize
	if charW <= 0 {
		charW = 0.5
	}
	charH := 2 * charW
	outline := plan.Outline()
	cols := int(math.Ceil(outline.Width()/charW)) + 1
	rows := int(math.Ceil(outline.Height()/charH)) + 1

	maxIntensity := 0.0
	for _, v := range opts.Intensity {
		if v > maxIntensity {
			maxIntensity = v
		}
	}

	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, cols)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	// Character centers sample the map top-down (row 0 = max Y).
	at := func(r, c int) geom.Point {
		return geom.Pt(
			outline.Min.X+(float64(c)+0.5)*charW,
			outline.Max.Y-(float64(r)+0.5)*charH,
		)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			p := at(r, c)
			loc := plan.LocationAt(floor, p)
			if loc < 0 {
				continue
			}
			ch := byte(' ')
			if opts.Intensity != nil && loc < len(opts.Intensity) && maxIntensity > 0 {
				frac := opts.Intensity[loc] / maxIntensity
				idx := int(frac * float64(len(shades)-1))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
				ch = shades[idx]
			}
			grid[r][c] = ch
		}
	}
	// Walls: mark characters whose cell (charW x charH around the center)
	// is crossed by a wall segment on this floor.
	for _, w := range plan.Walls() {
		if w.Floor != floor {
			continue
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				center := at(r, c)
				if segmentNearCell(w.Seg, center, charW/2, charH/2) {
					grid[r][c] = '#'
				}
			}
		}
	}
	// Labels at location centers (drawn before readers so antennas stay
	// visible).
	if opts.Labels {
		for _, l := range plan.Locations() {
			if l.Floor != floor {
				continue
			}
			center := l.Bounds.Center()
			c := int((center.X - outline.Min.X) / charW)
			r := int((outline.Max.Y - center.Y) / charH)
			if r >= 0 && r < rows && c >= 0 && c < cols {
				grid[r][c] = byte('a' + l.ID%26)
			}
		}
	}
	// Readers.
	for _, rp := range opts.Readers {
		c := int((rp.X - outline.Min.X) / charW)
		r := int((outline.Max.Y - rp.Y) / charH)
		if r >= 0 && r < rows && c >= 0 && c < cols {
			grid[r][c] = 'R'
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "floor %d (%gm x %gm, 1 char = %gm x %gm)\n",
		floor, outline.Width(), outline.Height(), charW, charH)
	for r := 0; r < rows; r++ {
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	return b.String()
}

// segmentNearCell reports whether segment s passes within the (halfW, halfH)
// box around center.
func segmentNearCell(s geom.Segment, center geom.Point, halfW, halfH float64) bool {
	box := geom.NewRect(
		geom.Pt(center.X-halfW, center.Y-halfH),
		geom.Pt(center.X+halfW, center.Y+halfH),
	)
	if box.Contains(s.A) || box.Contains(s.B) {
		return true
	}
	for _, e := range box.Edges() {
		if s.Intersects(e) {
			return true
		}
	}
	return false
}

// Legend returns a short explanation of the shading characters for the given
// quantity name.
func Legend(quantity string) string {
	return fmt.Sprintf("shading (%s, low to high): %q", quantity, string(shades))
}
