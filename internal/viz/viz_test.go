package viz

import (
	"strings"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
)

func testPlan(t *testing.T) *floorplan.Plan {
	t.Helper()
	b := floorplan.NewBuilder()
	a := b.AddLocation("A", floorplan.Room, 0, geom.RectWH(0, 0, 6, 4))
	c := b.AddLocation("B", floorplan.Room, 0, geom.RectWH(6, 0, 6, 4))
	b.AddDoor(a, c, geom.Pt(6, 2), 1.5)
	b.AddLocation("up", floorplan.Room, 1, geom.RectWH(0, 0, 6, 4))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRenderFloorBasics(t *testing.T) {
	p := testPlan(t)
	out := RenderFloor(p, 0, Options{})
	if !strings.Contains(out, "floor 0") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("no walls rendered:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
	// All grid rows have equal width.
	width := len(lines[1])
	for _, l := range lines[2:] {
		if len(l) != width {
			t.Fatalf("ragged rows:\n%s", out)
		}
	}
}

func TestRenderFloorDeterministic(t *testing.T) {
	p := testPlan(t)
	if RenderFloor(p, 0, Options{}) != RenderFloor(p, 0, Options{}) {
		t.Errorf("rendering not deterministic")
	}
}

func TestRenderFloorIntensityAndReaders(t *testing.T) {
	p := testPlan(t)
	out := RenderFloor(p, 0, Options{
		Intensity: []float64{1, 0.01, 0},
		Readers:   []geom.Point{{X: 1.2, Y: 1}},
		Labels:    true,
	})
	if !strings.Contains(out, "@") {
		t.Errorf("hot location not shaded:\n%s", out)
	}
	if !strings.Contains(out, "R") {
		t.Errorf("reader marker missing:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("labels missing:\n%s", out)
	}
}

func TestRenderOtherFloor(t *testing.T) {
	p := testPlan(t)
	out0 := RenderFloor(p, 0, Options{Labels: true})
	out1 := RenderFloor(p, 1, Options{Labels: true})
	if out0 == out1 {
		t.Errorf("floors render identically")
	}
	if !strings.Contains(out1, "c") {
		t.Errorf("floor-1 room missing:\n%s", out1)
	}
}

func TestLegend(t *testing.T) {
	if !strings.Contains(Legend("occupancy"), "occupancy") {
		t.Errorf("legend missing quantity")
	}
}

func TestRenderZeroIntensity(t *testing.T) {
	p := testPlan(t)
	// All-zero intensity must not divide by zero.
	out := RenderFloor(p, 0, Options{Intensity: []float64{0, 0, 0}})
	if out == "" {
		t.Fatal("empty render")
	}
}
