package query

import "fmt"

// TransitionMatrix returns the expected number of transitions between each
// ordered pair of locations under the conditioned distribution:
// out[a][b] = E[ #timestamps τ with X_τ = a and X_{τ+1} = b ]. Diagonal
// entries count stays. Row/column sums relate to expected occupancy, and the
// total over all entries is duration − 1.
//
// The expectation is computed edge-wise from the forward/backward masses:
// an edge (n, m) is traversed with probability α(n)·p_E(n,m)·β(m).
func (e *Engine) TransitionMatrix() [][]float64 {
	e.ensurePasses()
	out := make([][]float64, e.numLoc)
	for i := range out {
		out[i] = make([]float64, e.numLoc)
	}
	for t := 0; t+1 < e.g.Duration(); t++ {
		for _, n := range e.g.NodesAt(t) {
			a := e.alpha[t][n.Index()]
			if a == 0 {
				continue
			}
			for _, edge := range n.Out() {
				out[n.Loc][edge.To.Loc] += a * edge.P * e.beta[t+1][edge.To.Index()]
			}
		}
	}
	return out
}

// Event is a maximal run of timestamps whose most probable location is the
// same: the cleaned data segmented into human-readable stays.
type Event struct {
	// Loc is the location ID of the run.
	Loc int
	// From and To delimit the run (inclusive).
	From, To int
	// Confidence is the mean marginal probability of Loc over the run.
	Confidence float64
}

// Duration returns the number of timestamps the event spans.
func (ev Event) Duration() int { return ev.To - ev.From + 1 }

// String implements fmt.Stringer.
func (ev Event) String() string {
	return fmt.Sprintf("L%d@[%d,%d] (%.2f)", ev.Loc, ev.From, ev.To, ev.Confidence)
}

// Events segments the window into runs of the per-timestamp most probable
// location. Runs whose mean confidence falls below minConfidence are still
// reported (the caller decides what to trust); confidence is attached to
// every event.
func (e *Engine) Events() []Event {
	e.ensurePasses()
	duration := e.g.Duration()
	var events []Event
	var cur *Event
	var confSum float64
	for t := 0; t < duration; t++ {
		bestLoc, bestP := -1, -1.0
		// Aggregate node masses per location.
		byLoc := make(map[int]float64)
		for _, n := range e.g.NodesAt(t) {
			byLoc[n.Loc] += e.alpha[t][n.Index()] * e.beta[t][n.Index()]
		}
		for loc, p := range byLoc {
			if p > bestP || (p == bestP && loc < bestLoc) {
				bestLoc, bestP = loc, p
			}
		}
		if cur != nil && cur.Loc == bestLoc {
			cur.To = t
			confSum += bestP
			cur.Confidence = confSum / float64(cur.Duration())
			continue
		}
		if cur != nil {
			events = append(events, *cur)
		}
		cur = &Event{Loc: bestLoc, From: t, To: t, Confidence: bestP}
		confSum = bestP
	}
	if cur != nil {
		events = append(events, *cur)
	}
	return events
}
