// Package query implements the two query classes the paper evaluates over
// cleaned data (§6.6):
//
//   - stay queries: where was the object at time τ? Answered with the
//     conditioned marginal distribution over locations.
//   - trajectory queries: does the trajectory match a pattern? A pattern is
//     a sequence of location conditions — a location name `l` (a run of l of
//     length ≥ 1), `l[n]` (a run of length ≥ n) or the wildcard `?` (any,
//     possibly empty, sequence). The probabilistic answer is the total
//     conditioned probability of the matching trajectories.
//
// Patterns are compiled to an NFA and then determinized; the probability of
// a match is computed by dynamic programming over (ct-graph node, DFA state)
// pairs. Determinization matters for correctness: it guarantees every
// trajectory is counted exactly once even when the pattern is ambiguous.
package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Condition is one element of a trajectory pattern.
type Condition struct {
	// Wildcard marks the `?` condition, matching any (possibly empty)
	// sequence of locations. When set, Loc and MinLen are ignored.
	Wildcard bool
	// Loc is the location ID the condition requires.
	Loc int
	// MinLen is the minimum run length (>= 1).
	MinLen int
}

// Pattern is a trajectory pattern: the concatenation of its conditions'
// expansions must equal the trajectory's location sequence.
type Pattern []Condition

// Wild returns the wildcard condition.
func Wild() Condition { return Condition{Wildcard: true} }

// At returns the condition matching a run of loc of length at least minLen
// (clamped up to 1).
func At(loc, minLen int) Condition {
	if minLen < 1 {
		minLen = 1
	}
	return Condition{Loc: loc, MinLen: minLen}
}

// String renders the pattern in the paper's syntax with numeric location
// names (use Format for named locations).
func (p Pattern) String() string { return p.Format(nil) }

// Format renders the pattern, naming locations through the given function
// (nil falls back to L<id>).
func (p Pattern) Format(name func(int) string) string {
	if name == nil {
		name = func(id int) string { return "L" + strconv.Itoa(id) }
	}
	parts := make([]string, len(p))
	for i, c := range p {
		switch {
		case c.Wildcard:
			parts[i] = "?"
		case c.MinLen > 1:
			parts[i] = fmt.Sprintf("%s[%d]", name(c.Loc), c.MinLen)
		default:
			parts[i] = name(c.Loc)
		}
	}
	return strings.Join(parts, " ")
}

// ParsePattern parses the paper's pattern syntax: whitespace-separated
// conditions, each `?`, `name`, or `name[n]`. Location names are resolved
// through the supplied function.
func ParsePattern(s string, resolve func(name string) (int, error)) (Pattern, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("query: empty pattern")
	}
	var p Pattern
	for _, f := range fields {
		if f == "?" {
			p = append(p, Wild())
			continue
		}
		name := f
		minLen := 1
		if i := strings.IndexByte(f, '['); i >= 0 {
			if !strings.HasSuffix(f, "]") {
				return nil, fmt.Errorf("query: malformed condition %q", f)
			}
			n, err := strconv.Atoi(f[i+1 : len(f)-1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("query: bad run length in %q", f)
			}
			name, minLen = f[:i], n
		}
		if name == "" {
			return nil, fmt.Errorf("query: missing location name in %q", f)
		}
		loc, err := resolve(name)
		if err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
		p = append(p, At(loc, minLen))
	}
	return p, nil
}

// Validate checks the pattern for structural sanity.
func (p Pattern) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("query: empty pattern")
	}
	for i, c := range p {
		if !c.Wildcard {
			if c.MinLen < 1 {
				return fmt.Errorf("query: condition %d has run length %d", i, c.MinLen)
			}
			if c.Loc < 0 {
				return fmt.Errorf("query: condition %d has negative location", i)
			}
		}
	}
	return nil
}

// MinDuration returns the minimum trajectory length the pattern can match:
// the sum of the non-wildcard run lengths.
func (p Pattern) MinDuration() int {
	n := 0
	for _, c := range p {
		if !c.Wildcard {
			n += c.MinLen
		}
	}
	return n
}
