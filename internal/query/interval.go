package query

import (
	"fmt"

	"repro/internal/core"
)

// EverIn answers an interval-occupancy query: the probability that the
// object was at location loc at some timestamp in [from, to] (inclusive).
// It complements stay queries (a single timestamp) and pattern queries
// (which cannot anchor conditions to absolute times).
//
// The complement is computed with one forward pass that drops every
// loc-node inside the window: P(ever in loc during [from,to]) =
// 1 − P(no τ in [from,to] has X_τ = loc).
func (e *Engine) EverIn(loc, from, to int) (float64, error) {
	if from > to {
		return 0, fmt.Errorf("query: empty interval [%d, %d]", from, to)
	}
	if from < 0 || to >= e.g.Duration() {
		return 0, fmt.Errorf("query: interval [%d, %d] outside window [0, %d)", from, to, e.g.Duration())
	}
	avoid := func(n *core.Node) bool {
		return n.Loc == loc && n.Time >= from && n.Time <= to
	}
	// Forward mass restricted to paths avoiding loc within the window,
	// indexed by the nodes' dense per-level indices.
	alpha := make([][]float64, e.g.Duration())
	for t := range alpha {
		alpha[t] = make([]float64, len(e.g.NodesAt(t)))
	}
	for _, src := range e.g.Sources() {
		if !avoid(src) {
			alpha[0][src.Index()] = src.SourceProb()
		}
	}
	for t := 0; t+1 < e.g.Duration(); t++ {
		for _, n := range e.g.NodesAt(t) {
			a := alpha[t][n.Index()]
			if a == 0 {
				continue
			}
			for _, edge := range n.Out() {
				if !avoid(edge.To) {
					alpha[t+1][edge.To.Index()] += a * edge.P
				}
			}
		}
	}
	var never float64
	last := e.g.Duration() - 1
	for _, n := range e.g.Targets() {
		never += alpha[last][n.Index()]
	}
	if never > 1 {
		never = 1
	}
	return 1 - never, nil
}

// ExpectedVisitTime returns the expected number of timestamps spent at loc
// within [from, to] under the conditioned distribution (the sum of the stay
// marginals over the interval).
func (e *Engine) ExpectedVisitTime(loc, from, to int) (float64, error) {
	if from > to {
		return 0, fmt.Errorf("query: empty interval [%d, %d]", from, to)
	}
	if from < 0 || to >= e.g.Duration() {
		return 0, fmt.Errorf("query: interval [%d, %d] outside window [0, %d)", from, to, e.g.Duration())
	}
	e.ensurePasses()
	total := 0.0
	for t := from; t <= to; t++ {
		for _, n := range e.g.NodesAt(t) {
			if n.Loc == loc {
				total += e.alpha[t][n.Index()] * e.beta[t][n.Index()]
			}
		}
	}
	return total, nil
}
