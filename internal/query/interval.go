package query

import (
	"fmt"

	"repro/internal/core"
)

// EverIn answers an interval-occupancy query: the probability that the
// object was at location loc at some timestamp in [from, to] (inclusive).
// It complements stay queries (a single timestamp) and pattern queries
// (which cannot anchor conditions to absolute times).
//
// The complement is computed with one forward pass that drops every
// loc-node inside the window: P(ever in loc during [from,to]) =
// 1 − P(no τ in [from,to] has X_τ = loc).
func (e *Engine) EverIn(loc, from, to int) (float64, error) {
	if from > to {
		return 0, fmt.Errorf("query: empty interval [%d, %d]", from, to)
	}
	if from < 0 || to >= e.g.Duration() {
		return 0, fmt.Errorf("query: interval [%d, %d] outside window [0, %d)", from, to, e.g.Duration())
	}
	avoid := func(n *core.Node) bool {
		return n.Loc == loc && n.Time >= from && n.Time <= to
	}
	// Forward mass restricted to paths avoiding loc within the window.
	alpha := make(map[*core.Node]float64)
	for _, src := range e.g.Sources() {
		if !avoid(src) {
			alpha[src] = src.SourceProb()
		}
	}
	for t := 0; t+1 < e.g.Duration(); t++ {
		for _, n := range e.g.NodesAt(t) {
			a, ok := alpha[n]
			if !ok {
				continue
			}
			for _, edge := range n.Out() {
				if !avoid(edge.To) {
					alpha[edge.To] += a * edge.P
				}
			}
		}
	}
	var never float64
	for _, n := range e.g.Targets() {
		never += alpha[n]
	}
	if never > 1 {
		never = 1
	}
	return 1 - never, nil
}

// ExpectedVisitTime returns the expected number of timestamps spent at loc
// within [from, to] under the conditioned distribution (the sum of the stay
// marginals over the interval).
func (e *Engine) ExpectedVisitTime(loc, from, to int) (float64, error) {
	if from > to {
		return 0, fmt.Errorf("query: empty interval [%d, %d]", from, to)
	}
	if from < 0 || to >= e.g.Duration() {
		return 0, fmt.Errorf("query: interval [%d, %d] outside window [0, %d)", from, to, e.g.Duration())
	}
	e.ensurePasses()
	total := 0.0
	for t := from; t <= to; t++ {
		for _, n := range e.g.NodesAt(t) {
			if n.Loc == loc {
				total += e.alpha[n] * e.beta[n]
			}
		}
	}
	return total, nil
}
