package query

import (
	"errors"
	"math"
	"testing"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/stats"
)

func TestEverInAgainstEnumeration(t *testing.T) {
	rng := stats.NewRNG(4321)
	for trial := 0; trial < 200; trial++ {
		dists := make([][]float64, rng.IntRange(2, 5))
		for tau := range dists {
			row := make([]float64, 3)
			total := 0.0
			for l := range row {
				row[l] = rng.Range(0.05, 1)
				total += row[l]
			}
			for l := range row {
				row[l] /= total
			}
			dists[tau] = row
		}
		ic := constraints.NewSet()
		if rng.Bernoulli(0.5) {
			ic.AddDU(rng.Intn(3), rng.Intn(3))
		}
		g, err := core.Build(core.FromDistributions(dists), ic, nil)
		if errors.Is(err, core.ErrNoValidTrajectory) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(g, 3)
		loc := rng.Intn(3)
		from := rng.Intn(len(dists))
		to := rng.IntRange(from, len(dists)-1)

		got, err := e.EverIn(loc, from, to)
		if err != nil {
			t.Fatal(err)
		}
		wantEver := 0.0
		wantTime := 0.0
		err = g.WalkPaths(1<<20, func(path []*core.Node, p float64) {
			hit := false
			for tau := from; tau <= to; tau++ {
				if path[tau].Loc == loc {
					hit = true
					wantTime += p
				}
			}
			if hit {
				wantEver += p
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-wantEver) > 1e-9 {
			t.Fatalf("trial %d: EverIn(%d, %d, %d) = %v, want %v", trial, loc, from, to, got, wantEver)
		}
		gotTime, err := e.ExpectedVisitTime(loc, from, to)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotTime-wantTime) > 1e-9 {
			t.Fatalf("trial %d: ExpectedVisitTime = %v, want %v", trial, gotTime, wantTime)
		}
	}
}

func TestIntervalQueryValidation(t *testing.T) {
	g := buildGraph(t, [][]float64{{1}, {1}}, nil)
	e := NewEngine(g, 1)
	if _, err := e.EverIn(0, 1, 0); err == nil {
		t.Errorf("inverted interval accepted")
	}
	if _, err := e.EverIn(0, -1, 0); err == nil {
		t.Errorf("negative start accepted")
	}
	if _, err := e.EverIn(0, 0, 5); err == nil {
		t.Errorf("overlong interval accepted")
	}
	if _, err := e.ExpectedVisitTime(0, 1, 0); err == nil {
		t.Errorf("inverted interval accepted")
	}
	if _, err := e.ExpectedVisitTime(0, 0, 9); err == nil {
		t.Errorf("overlong interval accepted")
	}
	// Certain cases.
	p, err := e.EverIn(0, 0, 1)
	if err != nil || p != 1 {
		t.Errorf("certain EverIn = %v, %v", p, err)
	}
	tm, err := e.ExpectedVisitTime(0, 0, 1)
	if err != nil || math.Abs(tm-2) > 1e-12 {
		t.Errorf("certain ExpectedVisitTime = %v, %v", tm, err)
	}
}
