package query

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/stats"
)

// refMatches is an independent reference implementation of pattern matching
// by brute-force splitting, used to validate the DFA.
func refMatches(p Pattern, locs []int) bool {
	var rec func(ci, pos int) bool
	rec = func(ci, pos int) bool {
		if ci == len(p) {
			return pos == len(locs)
		}
		c := p[ci]
		if c.Wildcard {
			for skip := 0; pos+skip <= len(locs); skip++ {
				if rec(ci+1, pos+skip) {
					return true
				}
			}
			return false
		}
		// Consume a run of c.Loc of length >= c.MinLen.
		run := 0
		for pos+run < len(locs) && locs[pos+run] == c.Loc {
			run++
			if run >= c.MinLen && rec(ci+1, pos+run) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}

func TestMatchesBasics(t *testing.T) {
	cases := []struct {
		pattern Pattern
		locs    []int
		want    bool
	}{
		{Pattern{Wild()}, []int{1, 2, 3}, true},
		{Pattern{Wild()}, []int{}, true},
		{Pattern{At(1, 1)}, []int{1}, true},
		{Pattern{At(1, 1)}, []int{1, 1, 1}, true},
		{Pattern{At(1, 1)}, []int{1, 2}, false},
		{Pattern{At(1, 2)}, []int{1}, false},
		{Pattern{At(1, 2)}, []int{1, 1}, true},
		{Pattern{Wild(), At(1, 3), Wild()}, []int{0, 1, 1, 1, 2}, true},
		{Pattern{Wild(), At(1, 3), Wild()}, []int{0, 1, 1, 2, 1}, false},
		{Pattern{Wild(), At(1, 1), Wild(), At(2, 2), Wild()}, []int{1, 0, 2, 2}, true},
		{Pattern{Wild(), At(1, 1), Wild(), At(2, 2), Wild()}, []int{2, 2, 1}, false},
		{At(1, 1).asPattern(), []int{2}, false},
		// Adjacent same-location conditions: l[2] l[1] needs a run >= 3.
		{Pattern{At(1, 2), At(1, 1)}, []int{1, 1, 1}, true},
		{Pattern{At(1, 2), At(1, 1)}, []int{1, 1}, false},
		// Anchor at the very start/end without wildcards.
		{Pattern{At(1, 1), Wild(), At(2, 1)}, []int{1, 5, 5, 2}, true},
		{Pattern{At(1, 1), Wild(), At(2, 1)}, []int{5, 1, 2}, false},
	}
	for i, c := range cases {
		got, err := Matches(c.pattern, c.locs)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Errorf("case %d: Matches(%v, %v) = %v, want %v", i, c.pattern, c.locs, got, c.want)
		}
		if ref := refMatches(c.pattern, c.locs); ref != c.want {
			t.Errorf("case %d: reference matcher disagrees (%v)", i, ref)
		}
	}
}

// asPattern helps build single-condition patterns in table tests.
func (c Condition) asPattern() Pattern { return Pattern{c} }

func TestPropertyDFAEqualsReference(t *testing.T) {
	rng := stats.NewRNG(2024)
	for trial := 0; trial < 3000; trial++ {
		// Random pattern over locations {0,1,2}.
		var p Pattern
		n := rng.IntRange(1, 4)
		for i := 0; i < n; i++ {
			if rng.Bernoulli(0.4) {
				p = append(p, Wild())
			} else {
				p = append(p, At(rng.Intn(3), rng.IntRange(1, 3)))
			}
		}
		locs := make([]int, rng.IntRange(0, 8))
		for i := range locs {
			locs[i] = rng.Intn(4) // includes a location the pattern never names
		}
		got, err := Matches(p, locs)
		if err != nil {
			t.Fatal(err)
		}
		if want := refMatches(p, locs); got != want {
			t.Fatalf("trial %d: Matches(%q, %v) = %v, reference %v", trial, p.String(), locs, got, want)
		}
	}
}

func buildGraph(t *testing.T, dists [][]float64, ic *constraints.Set) *core.Graph {
	t.Helper()
	g, err := core.Build(core.FromDistributions(dists), ic, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStayMatchesMarginals(t *testing.T) {
	ic := constraints.NewSet()
	ic.AddDU(0, 2)
	g := buildGraph(t, [][]float64{
		{0.5, 0.5},
		{0.2, 0.3, 0.5},
		{1.0 / 3, 1.0 / 3, 1.0 / 3},
	}, ic)
	e := NewEngine(g, 3)
	m, err := g.Marginals(3)
	if err != nil {
		t.Fatal(err)
	}
	for tau := 0; tau < 3; tau++ {
		dist, err := e.Stay(tau)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for loc := range dist {
			if math.Abs(dist[loc]-m[tau][loc]) > 1e-12 {
				t.Errorf("Stay(%d)[%d] = %v, marginal %v", tau, loc, dist[loc], m[tau][loc])
			}
			sum += dist[loc]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("Stay(%d) sums to %v", tau, sum)
		}
	}
	if _, err := e.Stay(-1); err == nil {
		t.Errorf("negative timestamp accepted")
	}
	if _, err := e.Stay(3); err == nil {
		t.Errorf("out-of-window timestamp accepted")
	}
}

func TestTrajectoryProbabilityAgainstEnumeration(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 300; trial++ {
		// Random graph over 3 locations, 4 timestamps.
		dists := make([][]float64, 4)
		for tau := range dists {
			row := make([]float64, 3)
			total := 0.0
			for l := range row {
				row[l] = rng.Range(0.05, 1)
				total += row[l]
			}
			for l := range row {
				row[l] /= total
			}
			dists[tau] = row
		}
		ic := constraints.NewSet()
		if rng.Bernoulli(0.5) {
			ic.AddDU(rng.Intn(3), rng.Intn(3))
		}
		g, err := core.Build(core.FromDistributions(dists), ic, nil)
		if errors.Is(err, core.ErrNoValidTrajectory) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		p := RandomPattern(rng, []int{0, 1, 2}, rng.IntRange(1, 2))
		// Shrink run lengths so short windows can match sometimes.
		for i := range p {
			if !p[i].Wildcard && p[i].MinLen > 2 {
				p[i].MinLen = rng.IntRange(1, 2)
			}
		}
		e := NewEngine(g, 3)
		got, err := e.Trajectory(p)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		err = g.WalkPaths(1<<20, func(path []*core.Node, prob float64) {
			if refMatches(p, core.Trajectory(path)) {
				want += prob
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Trajectory(%q) = %v, enumeration %v", trial, p.String(), got, want)
		}
	}
}

func TestTrajectoryImpossiblePattern(t *testing.T) {
	g := buildGraph(t, [][]float64{{1}, {1}}, nil)
	e := NewEngine(g, 2)
	p, err := e.Trajectory(Pattern{At(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("impossible pattern has probability %v", p)
	}
	// Pattern longer than the window.
	p, err = e.Trajectory(Pattern{At(0, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("too-long pattern has probability %v", p)
	}
}

func TestTrajectoryInvalidPattern(t *testing.T) {
	g := buildGraph(t, [][]float64{{1}}, nil)
	e := NewEngine(g, 1)
	if _, err := e.Trajectory(nil); err == nil {
		t.Errorf("nil pattern accepted")
	}
	if _, err := e.Trajectory(Pattern{{Loc: -2, MinLen: 1}}); err == nil {
		t.Errorf("negative location accepted")
	}
}

func TestParsePattern(t *testing.T) {
	resolve := func(name string) (int, error) {
		switch name {
		case "lobby":
			return 0, nil
		case "lab":
			return 1, nil
		}
		return 0, fmt.Errorf("unknown location %q", name)
	}
	p, err := ParsePattern("? lobby[3] ? lab ?", resolve)
	if err != nil {
		t.Fatal(err)
	}
	want := Pattern{Wild(), At(0, 3), Wild(), At(1, 1), Wild()}
	if len(p) != len(want) {
		t.Fatalf("parsed %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("condition %d = %+v, want %+v", i, p[i], want[i])
		}
	}
	for _, bad := range []string{"", "lobby[", "lobby[0]", "lobby[x]", "[3]", "nowhere"} {
		if _, err := ParsePattern(bad, resolve); err == nil {
			t.Errorf("ParsePattern(%q) accepted", bad)
		}
	}
}

func TestPatternFormatRoundTrip(t *testing.T) {
	p := Pattern{Wild(), At(0, 3), Wild(), At(1, 1), Wild()}
	names := map[int]string{0: "lobby", 1: "lab"}
	s := p.Format(func(id int) string { return names[id] })
	if s != "? lobby[3] ? lab ?" {
		t.Errorf("Format = %q", s)
	}
	if !strings.Contains(p.String(), "L0[3]") {
		t.Errorf("String = %q", p.String())
	}
	resolve := func(name string) (int, error) {
		for id, n := range names {
			if n == name {
				return id, nil
			}
		}
		return 0, fmt.Errorf("unknown %q", name)
	}
	back, err := ParsePattern(s, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if back.Format(func(id int) string { return names[id] }) != s {
		t.Errorf("round trip failed: %v", back)
	}
}

func TestPatternValidateAndMinDuration(t *testing.T) {
	if err := (Pattern{}).Validate(); err == nil {
		t.Errorf("empty pattern valid")
	}
	if err := (Pattern{{Loc: 0, MinLen: 0}}).Validate(); err == nil {
		t.Errorf("zero run length valid")
	}
	p := Pattern{Wild(), At(0, 3), Wild(), At(1, 2)}
	if p.MinDuration() != 5 {
		t.Errorf("MinDuration = %d", p.MinDuration())
	}
}

func TestAccuracyHelpers(t *testing.T) {
	dist := []float64{0.2, 0.7, 0.1}
	if StayAccuracy(dist, 1) != 0.7 {
		t.Errorf("StayAccuracy wrong")
	}
	if StayAccuracy(dist, 5) != 0 || StayAccuracy(dist, -1) != 0 {
		t.Errorf("out-of-range StayAccuracy wrong")
	}
	if TrajectoryAccuracy(0.8, true) != 0.8 {
		t.Errorf("TrajectoryAccuracy(yes) wrong")
	}
	if math.Abs(TrajectoryAccuracy(0.8, false)-0.2) > 1e-12 {
		t.Errorf("TrajectoryAccuracy(no) wrong")
	}
}

func TestRandomPattern(t *testing.T) {
	rng := stats.NewRNG(1)
	locs := []int{3, 5, 9}
	for trial := 0; trial < 200; trial++ {
		anchors := rng.IntRange(2, 4)
		p := RandomPattern(rng, locs, anchors)
		if len(p) != 2*anchors+1 {
			t.Fatalf("pattern length %d for %d anchors", len(p), anchors)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		for i, c := range p {
			if i%2 == 0 {
				if !c.Wildcard {
					t.Fatalf("position %d should be a wildcard: %v", i, p)
				}
				continue
			}
			found := false
			for _, l := range locs {
				if c.Loc == l {
					found = true
				}
			}
			if !found {
				t.Fatalf("anchor location %d not among candidates", c.Loc)
			}
			okLen := c.MinLen == 1 || c.MinLen == 3 || c.MinLen == 5 || c.MinLen == 7 || c.MinLen == 9
			if !okLen {
				t.Fatalf("anchor run length %d unexpected", c.MinLen)
			}
		}
	}
	// Degenerate inputs.
	if p := RandomPattern(rng, nil, 2); len(p) != 1 || !p[0].Wildcard {
		t.Errorf("degenerate RandomPattern = %v", p)
	}
}
