package query

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/stats"
)

func TestTransitionMatrixAgainstEnumeration(t *testing.T) {
	rng := stats.NewRNG(1717)
	for trial := 0; trial < 150; trial++ {
		dists := make([][]float64, rng.IntRange(2, 5))
		for tau := range dists {
			row := make([]float64, 3)
			total := 0.0
			for l := range row {
				row[l] = rng.Range(0.05, 1)
				total += row[l]
			}
			for l := range row {
				row[l] /= total
			}
			dists[tau] = row
		}
		ic := constraints.NewSet()
		if rng.Bernoulli(0.5) {
			ic.AddDU(rng.Intn(3), rng.Intn(3))
		}
		g, err := core.Build(core.FromDistributions(dists), ic, nil)
		if errors.Is(err, core.ErrNoValidTrajectory) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(g, 3)
		got := e.TransitionMatrix()

		want := make([][]float64, 3)
		for i := range want {
			want[i] = make([]float64, 3)
		}
		err = g.WalkPaths(1<<20, func(path []*core.Node, p float64) {
			for i := 0; i+1 < len(path); i++ {
				want[path[i].Loc][path[i+1].Loc] += p
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for a := range want {
			for b := range want[a] {
				if math.Abs(got[a][b]-want[a][b]) > 1e-9 {
					t.Fatalf("trial %d: T[%d][%d] = %v, want %v", trial, a, b, got[a][b], want[a][b])
				}
				total += got[a][b]
			}
		}
		if math.Abs(total-float64(len(dists)-1)) > 1e-9 {
			t.Fatalf("trial %d: transitions sum to %v, want %d", trial, total, len(dists)-1)
		}
	}
}

func TestEventsSegmentation(t *testing.T) {
	// Deterministic graph: 0,0,1,1,1,2.
	g := buildGraph(t, [][]float64{
		{1}, {1}, {0, 1}, {0, 1}, {0, 1}, {0, 0, 1},
	}, nil)
	e := NewEngine(g, 3)
	events := e.Events()
	if len(events) != 3 {
		t.Fatalf("events = %v", events)
	}
	want := []Event{
		{Loc: 0, From: 0, To: 1, Confidence: 1},
		{Loc: 1, From: 2, To: 4, Confidence: 1},
		{Loc: 2, From: 5, To: 5, Confidence: 1},
	}
	for i := range want {
		if events[i].Loc != want[i].Loc || events[i].From != want[i].From || events[i].To != want[i].To {
			t.Errorf("event %d = %v, want %v", i, events[i], want[i])
		}
		if math.Abs(events[i].Confidence-1) > 1e-9 {
			t.Errorf("event %d confidence = %v", i, events[i].Confidence)
		}
	}
	if events[1].Duration() != 3 {
		t.Errorf("Duration = %d", events[1].Duration())
	}
	if !strings.Contains(events[0].String(), "L0@[0,1]") {
		t.Errorf("String = %q", events[0].String())
	}
}

func TestEventsCoverWindow(t *testing.T) {
	rng := stats.NewRNG(818)
	for trial := 0; trial < 50; trial++ {
		dists := make([][]float64, rng.IntRange(1, 8))
		for tau := range dists {
			row := make([]float64, 3)
			total := 0.0
			for l := range row {
				row[l] = rng.Range(0.05, 1)
				total += row[l]
			}
			for l := range row {
				row[l] /= total
			}
			dists[tau] = row
		}
		g, err := core.Build(core.FromDistributions(dists), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(g, 3)
		events := e.Events()
		// Events tile [0, duration) exactly.
		next := 0
		for _, ev := range events {
			if ev.From != next {
				t.Fatalf("trial %d: gap before event %v", trial, ev)
			}
			if ev.Confidence <= 0 || ev.Confidence > 1+1e-9 {
				t.Fatalf("trial %d: confidence %v", trial, ev.Confidence)
			}
			next = ev.To + 1
		}
		if next != len(dists) {
			t.Fatalf("trial %d: events end at %d, want %d", trial, next, len(dists))
		}
	}
}
