package query

import "repro/internal/stats"

// runLengthChoices are the run lengths the paper draws query anchors from
// (§6.6): −1 stands for a plain `l` condition (run length 1).
var runLengthChoices = []int{-1, 3, 5, 7, 9}

// RandomPattern draws a trajectory query the way the paper's workload
// generator does (§6.6): `anchors` locations are chosen uniformly from locs,
// each with a run length from {−1, 3, 5, 7, 9}, and the anchors are
// interleaved with wildcards: ? l1[n1] ? l2[n2] ... ?.
func RandomPattern(rng *stats.RNG, locs []int, anchors int) Pattern {
	if anchors < 1 || len(locs) == 0 {
		return Pattern{Wild()}
	}
	p := make(Pattern, 0, 2*anchors+1)
	p = append(p, Wild())
	for i := 0; i < anchors; i++ {
		loc := locs[rng.Intn(len(locs))]
		n := runLengthChoices[rng.Intn(len(runLengthChoices))]
		if n < 0 {
			p = append(p, At(loc, 1))
		} else {
			p = append(p, At(loc, n))
		}
		p = append(p, Wild())
	}
	return p
}
