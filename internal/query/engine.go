package query

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Engine answers stay and trajectory queries over one ct-graph. It caches
// the forward/backward passes; create a new Engine per graph. Engines are
// not safe for concurrent use.
type Engine struct {
	g      *core.Graph
	numLoc int

	alpha, beta [][]float64 // indexed [tau][node.Index()]
}

// NewEngine returns a query engine over the graph. numLocations must exceed
// every location ID appearing in the graph.
func NewEngine(g *core.Graph, numLocations int) *Engine {
	return &Engine{g: g, numLoc: numLocations}
}

func (e *Engine) ensurePasses() {
	if e.alpha == nil {
		e.alpha = e.g.Forward()
		e.beta = e.g.Backward()
	}
}

// Stay answers a stay query: the conditioned distribution over locations at
// time tau (§6.6). The returned slice is freshly allocated.
func (e *Engine) Stay(tau int) ([]float64, error) {
	if tau < 0 || tau >= e.g.Duration() {
		return nil, fmt.Errorf("query: timestamp %d outside window [0, %d)", tau, e.g.Duration())
	}
	e.ensurePasses()
	dist := make([]float64, e.numLoc)
	for _, n := range e.g.NodesAt(tau) {
		if n.Loc >= e.numLoc {
			return nil, fmt.Errorf("query: node location ID %d outside [0, %d)", n.Loc, e.numLoc)
		}
		dist[n.Loc] += e.alpha[tau][n.Index()] * e.beta[tau][n.Index()]
	}
	return dist, nil
}

// Trajectory answers a trajectory query: the probability that the object's
// trajectory matches the pattern, i.e. the total conditioned probability of
// the matching source-to-target paths (§6.6).
func (e *Engine) Trajectory(p Pattern) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	d := compile(p)

	// DP over (node, DFA state). DFA determinism guarantees each path
	// contributes to exactly one state, so probabilities add correctly.
	// Accumulation iterates nodes in graph order and states in sorted
	// order, keeping answers bit-for-bit reproducible across runs (map
	// iteration order would otherwise reassociate the float sums).
	cur := make(map[*core.Node]map[int]float64)
	addState := func(m map[*core.Node]map[int]float64, n *core.Node, q int, p float64) {
		states := m[n]
		if states == nil {
			states = make(map[int]float64)
			m[n] = states
		}
		states[q] += p
	}
	for _, src := range e.g.Sources() {
		if q := d.next(0, src.Loc); q >= 0 {
			addState(cur, src, q, src.SourceProb())
		}
	}
	sortedStates := func(states map[int]float64) []int {
		qs := make([]int, 0, len(states))
		for q := range states {
			qs = append(qs, q)
		}
		sort.Ints(qs)
		return qs
	}
	for tau := 0; tau+1 < e.g.Duration(); tau++ {
		next := make(map[*core.Node]map[int]float64)
		alive := false
		for _, n := range e.g.NodesAt(tau) {
			states := cur[n]
			if states == nil {
				continue
			}
			for _, q := range sortedStates(states) {
				p := states[q]
				for _, edge := range n.Out() {
					if nq := d.next(q, edge.To.Loc); nq >= 0 {
						addState(next, edge.To, nq, p*edge.P)
						alive = true
					}
				}
			}
		}
		cur = next
		if !alive {
			return 0, nil
		}
	}
	total := 0.0
	for _, n := range e.g.Targets() {
		states := cur[n]
		if states == nil {
			continue
		}
		for _, q := range sortedStates(states) {
			if d.accepting[q] {
				total += states[q]
			}
		}
	}
	return total, nil
}

// Matches evaluates the pattern on a concrete trajectory (e.g. the ground
// truth), returning the deterministic yes/no answer.
func Matches(p Pattern, locs []int) (bool, error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	return compile(p).matches(locs), nil
}

// StayAccuracy is the paper's accuracy measure for stay queries: the
// probability the answer assigns to the location the object actually
// occupied at the queried time (§6.6).
func StayAccuracy(dist []float64, trueLoc int) float64 {
	if trueLoc < 0 || trueLoc >= len(dist) {
		return 0
	}
	return dist[trueLoc]
}

// TrajectoryAccuracy is the paper's accuracy measure for trajectory queries:
// the probability mass the probabilistic answer puts on the ground-truth
// answer — p when the true trajectory matches, 1−p otherwise.
func TrajectoryAccuracy(pYes float64, truth bool) float64 {
	if truth {
		return pYes
	}
	return 1 - pYes
}
