package query

import "sort"

// otherSymbol stands for every location not mentioned by the pattern; the
// DFA treats all such locations identically, keeping the alphabet small.
const otherSymbol = -1

// nfa is the epsilon-NFA compiled from a pattern.
type nfa struct {
	numStates int
	// eps[q] lists epsilon successors of q.
	eps [][]int
	// step[q] maps a symbol (location ID or otherSymbol) to successors.
	step []map[int][]int
	// accept is the single accepting state (end of the pattern).
	accept int
	// symbols are the location IDs mentioned by the pattern, sorted.
	symbols []int
}

// compileNFA builds the NFA of a pattern:
//
//   - wildcard: one state with a self-loop on every symbol, skippable via ε;
//   - At(l, n): a chain of n consuming transitions on l ending in a state
//     with a self-loop on l (runs of length > n).
func compileNFA(p Pattern) *nfa {
	symSet := make(map[int]bool)
	for _, c := range p {
		if !c.Wildcard {
			symSet[c.Loc] = true
		}
	}
	a := &nfa{}
	newState := func() int {
		a.numStates++
		a.eps = append(a.eps, nil)
		a.step = append(a.step, make(map[int][]int))
		return a.numStates - 1
	}
	addSym := func(q, sym, to int) { a.step[q][sym] = append(a.step[q][sym], to) }

	cur := newState() // start
	for _, c := range p {
		if c.Wildcard {
			w := newState()
			a.eps[cur] = append(a.eps[cur], w)
			for sym := range symSet {
				addSym(w, sym, w)
			}
			addSym(w, otherSymbol, w)
			cur = w
			continue
		}
		for i := 0; i < c.MinLen; i++ {
			next := newState()
			addSym(cur, c.Loc, next)
			cur = next
		}
		addSym(cur, c.Loc, cur) // allow longer runs
	}
	a.accept = cur
	for sym := range symSet {
		a.symbols = append(a.symbols, sym)
	}
	sort.Ints(a.symbols)
	return a
}

// closure expands a set of states with epsilon transitions; states is a
// sorted, deduplicated slice.
func (a *nfa) closure(states []int) []int {
	seen := make(map[int]bool, len(states))
	stack := append([]int(nil), states...)
	for _, q := range states {
		seen[q] = true
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range a.eps[q] {
			if !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// dfa is the determinized automaton. State 0 is the start state.
type dfa struct {
	// trans[q] maps a symbol (mentioned location or otherSymbol) to the
	// next state; missing entries go to the dead state (-1).
	trans []map[int]int
	// accepting[q] reports whether q contains the NFA accept state.
	accepting []bool
	symbols   []int
}

// compile builds the DFA of a pattern via subset construction.
func compile(p Pattern) *dfa {
	a := compileNFA(p)
	d := &dfa{symbols: a.symbols}
	index := make(map[string]int)
	var subsets [][]int

	keyOf := func(states []int) string {
		b := make([]byte, 0, len(states)*3)
		for _, q := range states {
			b = append(b, byte(q), byte(q>>8), byte(q>>16))
		}
		return string(b)
	}
	intern := func(states []int) int {
		k := keyOf(states)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(subsets)
		index[k] = id
		subsets = append(subsets, states)
		d.trans = append(d.trans, make(map[int]int))
		acc := false
		for _, q := range states {
			if q == a.accept {
				acc = true
				break
			}
		}
		d.accepting = append(d.accepting, acc)
		return id
	}

	start := intern(a.closure([]int{0}))
	_ = start
	alphabet := append(append([]int(nil), a.symbols...), otherSymbol)
	for work := 0; work < len(subsets); work++ {
		states := subsets[work]
		for _, sym := range alphabet {
			var nextSet []int
			seen := make(map[int]bool)
			for _, q := range states {
				for _, r := range a.step[q][sym] {
					if !seen[r] {
						seen[r] = true
						nextSet = append(nextSet, r)
					}
				}
			}
			if len(nextSet) == 0 {
				continue // dead
			}
			sort.Ints(nextSet)
			d.trans[work][sym] = intern(a.closure(nextSet))
		}
	}
	return d
}

// symbolOf maps a location to the DFA's alphabet.
func (d *dfa) symbolOf(loc int) int {
	i := sort.SearchInts(d.symbols, loc)
	if i < len(d.symbols) && d.symbols[i] == loc {
		return loc
	}
	return otherSymbol
}

// next returns the state after consuming loc from state q, or -1 (dead).
func (d *dfa) next(q, loc int) int {
	if q < 0 {
		return -1
	}
	if to, ok := d.trans[q][d.symbolOf(loc)]; ok {
		return to
	}
	return -1
}

// matches runs the DFA over a concrete location sequence.
func (d *dfa) matches(locs []int) bool {
	q := 0
	for _, loc := range locs {
		q = d.next(q, loc)
		if q < 0 {
			return false
		}
	}
	return d.accepting[q]
}
