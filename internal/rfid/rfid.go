// Package rfid models the RFID substrate of the paper: readers placed over a
// floor plan, their detection behavior, the detection-rate matrix F[r,c]
// defined on a grid partitioning of the map (§6.2), and the readings
// (timestamp, set-of-readers) collected for a monitored object (§2).
//
// Detection follows a three-state antenna model in the spirit of the model
// the paper cites for building p*(l|R) physically: a tag within the major
// radius of a reader is detected with a high constant rate; between the
// major and minor radius the rate decays linearly to zero; beyond it the tag
// is never detected. Walls between tag and antenna attenuate the rate by a
// constant factor per wall.
package rfid

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/stats"
)

// Reader is an RFID reader antenna placed at a fixed position on a floor.
type Reader struct {
	ID    int        `json:"id"`
	Name  string     `json:"name"`
	Floor int        `json:"floor"`
	Pos   geom.Point `json:"pos"`
}

// Set is a set of reader IDs in canonical (sorted, deduplicated) order.
// The zero value is the empty set, which models "detected by no reader".
type Set struct {
	ids []int
}

// NewSet returns the canonical set of the given reader IDs.
func NewSet(ids ...int) Set {
	if len(ids) == 0 {
		return Set{}
	}
	cp := append([]int(nil), ids...)
	sort.Ints(cp)
	out := cp[:1]
	for _, id := range cp[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return Set{ids: out}
}

// IDs returns the reader IDs in ascending order. The returned slice must not
// be modified.
func (s Set) IDs() []int { return s.ids }

// Len returns the number of readers in the set.
func (s Set) Len() int { return len(s.ids) }

// IsEmpty reports whether the set is empty.
func (s Set) IsEmpty() bool { return len(s.ids) == 0 }

// Contains reports whether id is in the set.
func (s Set) Contains(id int) bool {
	i := sort.SearchInts(s.ids, id)
	return i < len(s.ids) && s.ids[i] == id
}

// Equal reports whether s and t contain the same readers.
func (s Set) Equal(t Set) bool {
	if len(s.ids) != len(t.ids) {
		return false
	}
	for i := range s.ids {
		if s.ids[i] != t.ids[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for the set, usable as a map key.
func (s Set) Key() string {
	if len(s.ids) == 0 {
		return ""
	}
	var b strings.Builder
	for i, id := range s.ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}

// String implements fmt.Stringer.
func (s Set) String() string { return "{" + s.Key() + "}" }

// Reading records that the monitored object was detected at time Time by all
// and only the readers in Readers (§2). An empty set means a missed read.
type Reading struct {
	Time    int `json:"time"`
	Readers Set `json:"readers"`
}

// Sequence is a reading sequence (r-sequence): exactly one reading per
// timestamp of the monitoring window [0, len-1].
type Sequence []Reading

// Validate checks that the sequence covers timestamps 0..len-1 contiguously.
func (q Sequence) Validate() error {
	if len(q) == 0 {
		return fmt.Errorf("rfid: empty reading sequence")
	}
	for i, r := range q {
		if r.Time != i {
			return fmt.Errorf("rfid: reading %d has timestamp %d, want %d", i, r.Time, i)
		}
	}
	return nil
}

// Duration returns the number of timestamps covered by the sequence.
func (q Sequence) Duration() int { return len(q) }

// CellSpace indexes the grid cells of every floor of a building with a
// single dense cell ID: id = floor*cellsPerFloor + cellWithinFloor. All
// floors share the same grid geometry (the building outline partitioned
// into square cells).
type CellSpace struct {
	Plan *floorplan.Plan
	Grid *geom.Grid

	cellsByLoc [][]int // location ID -> global cell IDs whose center is in it
	locByCell  []int   // global cell ID -> location ID or -1
}

// NewCellSpace partitions every floor of plan into square cells of the given
// size and precomputes the cell/location correspondence.
func NewCellSpace(plan *floorplan.Plan, cellSize float64) (*CellSpace, error) {
	grid, err := geom.NewGrid(plan.Outline(), cellSize)
	if err != nil {
		return nil, err
	}
	cs := &CellSpace{Plan: plan, Grid: grid}
	per := grid.NumCells()
	total := per * plan.NumFloors()
	cs.locByCell = make([]int, total)
	cs.cellsByLoc = make([][]int, plan.NumLocations())
	for id := 0; id < total; id++ {
		floor := id / per
		center := grid.CellCenter(id % per)
		loc := plan.LocationAt(floor, center)
		cs.locByCell[id] = loc
		if loc >= 0 {
			cs.cellsByLoc[loc] = append(cs.cellsByLoc[loc], id)
		}
	}
	return cs, nil
}

// NumCells returns the total number of cells over all floors.
func (cs *CellSpace) NumCells() int { return cs.Grid.NumCells() * cs.Plan.NumFloors() }

// CellsPerFloor returns the number of cells on a single floor.
func (cs *CellSpace) CellsPerFloor() int { return cs.Grid.NumCells() }

// CellOf returns the global cell ID containing the point on the given floor,
// or -1 when the point lies outside the building outline.
func (cs *CellSpace) CellOf(floor int, p geom.Point) int {
	idx := cs.Grid.CellIndex(p)
	if idx < 0 || floor < 0 || floor >= cs.Plan.NumFloors() {
		return -1
	}
	return floor*cs.Grid.NumCells() + idx
}

// CellCenter returns the floor and center point of a global cell ID.
func (cs *CellSpace) CellCenter(id int) (floor int, center geom.Point) {
	per := cs.Grid.NumCells()
	return id / per, cs.Grid.CellCenter(id % per)
}

// LocationOfCell returns the location whose area contains the cell's center,
// or -1 for cells inside walls or outside every location.
func (cs *CellSpace) LocationOfCell(id int) int { return cs.locByCell[id] }

// CellsOfLocation returns the global cell IDs whose centers lie inside the
// location. The returned slice must not be modified.
func (cs *CellSpace) CellsOfLocation(loc int) []int { return cs.cellsByLoc[loc] }

// DetectionModel yields the probability that a reader detects a tag located
// at a given cell center during one time unit.
type DetectionModel interface {
	// Rate returns the detection probability in [0, 1] for a tag at the
	// given floor and point, as seen by reader r.
	Rate(plan *floorplan.Plan, r Reader, floor int, p geom.Point) float64
}

// ThreeState is the three-state detection model: constant MajorRate within
// MajorRadius, linear decay to zero between MajorRadius and MinorRadius,
// zero beyond. Each wall crossed between antenna and tag multiplies the rate
// by WallFactor. A reader never detects tags on other floors.
type ThreeState struct {
	MajorRadius float64 // meters
	MinorRadius float64 // meters, > MajorRadius
	MajorRate   float64 // detection probability within MajorRadius
	WallFactor  float64 // per-wall attenuation in [0, 1]
}

// DefaultThreeState returns the detection model used by the synthetic
// datasets: reliable within 2 m, fading out at 4 m, and walls cutting the
// rate by 85% each.
func DefaultThreeState() ThreeState {
	return ThreeState{MajorRadius: 2, MinorRadius: 4, MajorRate: 0.95, WallFactor: 0.15}
}

// Rate implements DetectionModel.
func (m ThreeState) Rate(plan *floorplan.Plan, r Reader, floor int, p geom.Point) float64 {
	if floor != r.Floor {
		return 0
	}
	d := r.Pos.Dist(p)
	var rate float64
	switch {
	case d <= m.MajorRadius:
		rate = m.MajorRate
	case d <= m.MinorRadius:
		rate = m.MajorRate * (m.MinorRadius - d) / (m.MinorRadius - m.MajorRadius)
	default:
		return 0
	}
	if m.WallFactor < 1 {
		for i := plan.WallsBetween(floor, r.Pos, p); i > 0; i-- {
			rate *= m.WallFactor
		}
	}
	return rate
}

// Matrix is the detection-rate matrix F of §6.2: Rates[r][c] is the
// probability (or observed frequency) that a tag staying in cell c is
// detected by reader r in one time unit.
type Matrix struct {
	Readers []Reader
	Cells   *CellSpace
	Rates   [][]float64 // [reader][cell]
}

// NewTruthMatrix builds the ground-truth F from a detection model. This is
// the matrix the reading generator samples from.
func NewTruthMatrix(cells *CellSpace, readers []Reader, model DetectionModel) *Matrix {
	m := &Matrix{Readers: readers, Cells: cells, Rates: make([][]float64, len(readers))}
	for ri, r := range readers {
		row := make([]float64, cells.NumCells())
		for c := range row {
			floor, center := cells.CellCenter(c)
			row[c] = model.Rate(cells.Plan, r, floor, center)
		}
		m.Rates[ri] = row
	}
	return m
}

// Calibrate reproduces the paper's empirical construction of F (§6.2): a tag
// is (virtually) kept in each cell for `samples` time units and the number
// of detections by each reader is counted. The result is the learned matrix
// F̂ whose entries are observed frequencies — equal to truth in expectation
// but carrying the sampling noise a physical calibration would.
func Calibrate(truth *Matrix, samples int, rng *stats.RNG) *Matrix {
	if samples <= 0 {
		samples = 1
	}
	learned := &Matrix{
		Readers: truth.Readers,
		Cells:   truth.Cells,
		Rates:   make([][]float64, len(truth.Readers)),
	}
	for ri := range truth.Readers {
		row := make([]float64, truth.Cells.NumCells())
		for c, p := range truth.Rates[ri] {
			if p <= 0 {
				continue
			}
			hits := 0
			for s := 0; s < samples; s++ {
				if rng.Bernoulli(p) {
					hits++
				}
			}
			row[c] = float64(hits) / float64(samples)
		}
		learned.Rates[ri] = row
	}
	return learned
}

// DetectAt samples the set of readers detecting a tag in the given cell,
// assuming readers behave independently (§6.4).
func (m *Matrix) DetectAt(cell int, rng *stats.RNG) Set {
	var ids []int
	for ri := range m.Readers {
		if p := m.Rates[ri][cell]; p > 0 && rng.Bernoulli(p) {
			ids = append(ids, m.Readers[ri].ID)
		}
	}
	return NewSet(ids...)
}

// ReaderByID returns the reader with the given ID.
func (m *Matrix) ReaderByID(id int) (Reader, bool) {
	for _, r := range m.Readers {
		if r.ID == id {
			return r, true
		}
	}
	return Reader{}, false
}
