package rfid

import "encoding/json"

// MarshalJSON encodes the set as a JSON array of reader IDs.
func (s Set) MarshalJSON() ([]byte, error) {
	if s.ids == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(s.ids)
}

// UnmarshalJSON decodes a JSON array of reader IDs, canonicalizing it.
func (s *Set) UnmarshalJSON(data []byte) error {
	var ids []int
	if err := json.Unmarshal(data, &ids); err != nil {
		return err
	}
	*s = NewSet(ids...)
	return nil
}
