package rfid

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/stats"
)

func testPlan(t *testing.T) *floorplan.Plan {
	t.Helper()
	b := floorplan.NewBuilder()
	a := b.AddLocation("A", floorplan.Room, 0, geom.RectWH(0, 0, 4, 4))
	c := b.AddLocation("B", floorplan.Room, 0, geom.RectWH(4, 0, 4, 4))
	b.AddDoor(a, c, geom.Pt(4, 2), 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSetCanonicalization(t *testing.T) {
	s := NewSet(3, 1, 2, 3, 1)
	want := []int{1, 2, 3}
	ids := s.IDs()
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v", ids)
		}
	}
	if s.Key() != "1,2,3" {
		t.Errorf("Key = %q", s.Key())
	}
	if s.String() != "{1,2,3}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSetOps(t *testing.T) {
	empty := NewSet()
	if !empty.IsEmpty() || empty.Len() != 0 || empty.Key() != "" {
		t.Errorf("empty set misbehaves: %v", empty)
	}
	s := NewSet(5, 7)
	if !s.Contains(5) || !s.Contains(7) || s.Contains(6) {
		t.Errorf("Contains wrong")
	}
	if !s.Equal(NewSet(7, 5)) {
		t.Errorf("Equal should ignore order")
	}
	if s.Equal(NewSet(5)) || s.Equal(NewSet(5, 6)) {
		t.Errorf("Equal false positives")
	}
	var zero Set
	if !zero.Equal(empty) {
		t.Errorf("zero value should equal empty set")
	}
}

func TestSequenceValidate(t *testing.T) {
	if err := (Sequence{}).Validate(); err == nil {
		t.Errorf("empty sequence accepted")
	}
	ok := Sequence{{Time: 0}, {Time: 1}, {Time: 2}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	if ok.Duration() != 3 {
		t.Errorf("Duration = %d", ok.Duration())
	}
	bad := Sequence{{Time: 0}, {Time: 2}}
	if err := bad.Validate(); err == nil {
		t.Errorf("gap accepted")
	}
}

func TestCellSpace(t *testing.T) {
	p := testPlan(t)
	cs, err := NewCellSpace(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cs.NumCells() != cs.CellsPerFloor() {
		t.Errorf("one floor: NumCells %d != CellsPerFloor %d", cs.NumCells(), cs.CellsPerFloor())
	}
	id := cs.CellOf(0, geom.Pt(1, 1))
	if id < 0 {
		t.Fatalf("CellOf failed")
	}
	floor, center := cs.CellCenter(id)
	if floor != 0 {
		t.Errorf("floor = %d", floor)
	}
	if center.Dist(geom.Pt(1, 1)) > 0.5 {
		t.Errorf("center %v far from query point", center)
	}
	if cs.LocationOfCell(id) != 0 {
		t.Errorf("cell at (1,1) not in location A")
	}
	if got := cs.CellOf(5, geom.Pt(1, 1)); got != -1 {
		t.Errorf("bad floor accepted: %d", got)
	}
	if got := cs.CellOf(0, geom.Pt(100, 100)); got != -1 {
		t.Errorf("outside point accepted: %d", got)
	}
}

func TestCellsOfLocationPartition(t *testing.T) {
	p := testPlan(t)
	cs, err := NewCellSpace(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Every cell of location A must map back to A.
	for _, c := range cs.CellsOfLocation(0) {
		if cs.LocationOfCell(c) != 0 {
			t.Fatalf("cell %d not consistent", c)
		}
	}
	// Room A is 4x4 = 64 cells of 0.5m.
	if n := len(cs.CellsOfLocation(0)); n != 64 {
		t.Errorf("room A has %d cells, want 64", n)
	}
}

func TestThreeStateRate(t *testing.T) {
	p := testPlan(t)
	m := ThreeState{MajorRadius: 2, MinorRadius: 4, MajorRate: 0.9, WallFactor: 0.5}
	r := Reader{ID: 0, Floor: 0, Pos: geom.Pt(1, 1)}

	if got := m.Rate(p, r, 0, geom.Pt(1, 1)); got != 0.9 {
		t.Errorf("at antenna: %v", got)
	}
	if got := m.Rate(p, r, 0, geom.Pt(2.5, 1)); got != 0.9 {
		t.Errorf("inside major radius: %v", got)
	}
	mid := m.Rate(p, r, 0, geom.Pt(1, 3+1e-9)) // not through walls (same room): d=2..4
	if mid <= 0 || mid >= 0.9 {
		t.Errorf("decay zone rate = %v", mid)
	}
	if got := m.Rate(p, r, 0, geom.Pt(1, 3.9)); got >= mid {
		t.Errorf("rate should decrease with distance")
	}
	if got := m.Rate(p, r, 0, geom.Pt(1, 3.9)); got <= 0 {
		t.Errorf("decay zone rate should be positive: %v", got)
	}
	if got := m.Rate(p, r, 1, geom.Pt(1, 1)); got != 0 {
		t.Errorf("other floor detected: %v", got)
	}
	if got := m.Rate(p, r, 0, geom.Pt(1, 100)); got != 0 {
		t.Errorf("far point detected: %v", got)
	}
}

func TestThreeStateWallAttenuation(t *testing.T) {
	p := testPlan(t)
	m := ThreeState{MajorRadius: 3, MinorRadius: 6, MajorRate: 0.8, WallFactor: 0.25}
	r := Reader{ID: 0, Floor: 0, Pos: geom.Pt(3.5, 0.5)}
	// (4.5, 0.5) is across the solid part of the shared wall: one wall.
	through := m.Rate(p, r, 0, geom.Pt(4.5, 0.5))
	if math.Abs(through-0.8*0.25) > 1e-9 {
		t.Errorf("one-wall rate = %v, want %v", through, 0.8*0.25)
	}
	// Through the door at (4,2): no wall.
	rDoor := Reader{ID: 1, Floor: 0, Pos: geom.Pt(3.5, 2)}
	free := m.Rate(p, rDoor, 0, geom.Pt(4.5, 2))
	if free != 0.8 {
		t.Errorf("through-door rate = %v, want 0.8", free)
	}
}

func TestTruthMatrixAndDetect(t *testing.T) {
	p := testPlan(t)
	cs, err := NewCellSpace(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	readers := []Reader{
		{ID: 0, Name: "rA", Floor: 0, Pos: geom.Pt(2, 2)},
		{ID: 1, Name: "rB", Floor: 0, Pos: geom.Pt(6, 2)},
	}
	truth := NewTruthMatrix(cs, readers, DefaultThreeState())
	if len(truth.Rates) != 2 || len(truth.Rates[0]) != cs.NumCells() {
		t.Fatalf("matrix dims wrong")
	}
	cellNearA := cs.CellOf(0, geom.Pt(2, 2))
	if truth.Rates[0][cellNearA] < 0.9 {
		t.Errorf("reader A should see its own cell strongly: %v", truth.Rates[0][cellNearA])
	}

	rng := stats.NewRNG(99)
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		s := truth.DetectAt(cellNearA, rng)
		if s.Contains(0) {
			hits++
		}
		if s.Contains(1) && truth.Rates[1][cellNearA] == 0 {
			t.Fatalf("impossible detection")
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-truth.Rates[0][cellNearA]) > 0.05 {
		t.Errorf("detect frequency %v vs rate %v", frac, truth.Rates[0][cellNearA])
	}

	if _, ok := truth.ReaderByID(1); !ok {
		t.Errorf("ReaderByID(1) missing")
	}
	if _, ok := truth.ReaderByID(42); ok {
		t.Errorf("ReaderByID(42) found")
	}
}

func TestCalibrate(t *testing.T) {
	p := testPlan(t)
	cs, err := NewCellSpace(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	readers := []Reader{{ID: 0, Floor: 0, Pos: geom.Pt(2, 2)}}
	truth := NewTruthMatrix(cs, readers, DefaultThreeState())
	rng := stats.NewRNG(7)
	learned := Calibrate(truth, 30, rng)

	// Learned rates are frequencies with denominator 30.
	var maxErr float64
	for c := range learned.Rates[0] {
		lr, tr := learned.Rates[0][c], truth.Rates[0][c]
		if tr == 0 && lr != 0 {
			t.Fatalf("learned nonzero where truth is zero (cell %d)", c)
		}
		if e := math.Abs(lr - tr); e > maxErr {
			maxErr = e
		}
		if f := lr * 30; math.Abs(f-math.Round(f)) > 1e-9 {
			t.Fatalf("learned rate %v is not a multiple of 1/30", lr)
		}
	}
	if maxErr > 0.5 {
		t.Errorf("calibration wildly off: max err %v", maxErr)
	}

	// Degenerate sample count falls back to 1.
	l2 := Calibrate(truth, 0, rng)
	for c := range l2.Rates[0] {
		if v := l2.Rates[0][c]; v != 0 && v != 1 {
			t.Fatalf("samples=0 should yield 0/1 frequencies, got %v", v)
		}
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	cases := []Set{NewSet(), NewSet(3, 1, 2)}
	for _, s := range cases {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Set
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !back.Equal(s) {
			t.Errorf("round trip %v -> %s -> %v", s, data, back)
		}
	}
	// Readings embed sets.
	r := Reading{Time: 3, Readers: NewSet(5)}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Reading
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Time != 3 || !back.Readers.Equal(r.Readers) {
		t.Errorf("reading round trip failed: %+v", back)
	}
	// Malformed input errors.
	var s Set
	if err := json.Unmarshal([]byte(`"oops"`), &s); err == nil {
		t.Errorf("malformed set accepted")
	}
}
