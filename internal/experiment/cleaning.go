package experiment

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/stats"
)

// CleaningResult is one point of Fig. 8(a)/8(b): the average cleaning time
// for one (dataset, constraint set, duration) combination, plus the graph
// sizes §6.7 reports.
type CleaningResult struct {
	Dataset   string
	Selection dataset.Selection
	Duration  int // timestamps

	Trajectories int
	Skipped      int // instances where cleaning found no valid trajectory

	MeanSeconds float64
	MeanNodes   float64
	MeanEdges   float64
	MeanBytes   float64
}

// CleaningCost measures the average running time of the ct-graph
// construction (CTG in the paper's notation) over the dataset, for every
// constraint set and duration — the workload of Fig. 8(a) and 8(b). The
// same measurements yield the ct-graph sizes of §6.7.
func CleaningCost(d *dataset.Dataset, p Params) ([]CleaningResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	var out []CleaningResult
	for _, dur := range p.Durations {
		insts, err := d.Generate(dur, p.Trajectories, p.Stream)
		if err != nil {
			return nil, err
		}
		for _, sel := range dataset.Selections {
			res := CleaningResult{
				Dataset: d.Name, Selection: sel, Duration: dur,
				Trajectories: len(insts),
			}
			var secs, nodes, edges, bytes []float64
			for _, inst := range insts {
				start := time.Now()
				g, err := buildGraph(d, inst, sel, p.Mode)
				if errors.Is(err, core.ErrNoValidTrajectory) {
					res.Skipped++
					continue
				}
				if err != nil {
					return nil, err
				}
				secs = append(secs, time.Since(start).Seconds())
				st := g.Stats()
				nodes = append(nodes, float64(st.Nodes))
				edges = append(edges, float64(st.Edges))
				bytes = append(bytes, float64(st.Bytes))
			}
			res.MeanSeconds = stats.Mean(secs)
			res.MeanNodes = stats.Mean(nodes)
			res.MeanEdges = stats.Mean(edges)
			res.MeanBytes = stats.Mean(bytes)
			out = append(out, res)
		}
	}
	return out, nil
}

// CleaningTable renders cleaning-cost results as the series of Fig. 8(a)/(b).
func CleaningTable(results []CleaningResult) *Table {
	t := &Table{
		Title:  "Fig. 8(a)/(b) — average cleaning time (seconds) vs trajectory duration",
		Header: []string{"dataset", "constraints", "duration(s)", "mean time(s)", "nodes", "edges", "size(MB)", "skipped"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			"CTG(" + r.Selection.String() + ")",
			fmt.Sprintf("%d", r.Duration),
			fmt.Sprintf("%.4f", r.MeanSeconds),
			fmt.Sprintf("%.0f", r.MeanNodes),
			fmt.Sprintf("%.0f", r.MeanEdges),
			fmt.Sprintf("%.2f", r.MeanBytes/1e6),
			fmt.Sprintf("%d", r.Skipped),
		})
	}
	return t
}

// GraphSizeTable renders the §6.7 comparison: ct-graph memory for the
// longest duration under DU-only vs all constraints.
func GraphSizeTable(results []CleaningResult) *Table {
	t := &Table{
		Title:  "§6.7 — ct-graph size at the longest duration",
		Header: []string{"dataset", "constraints", "duration(s)", "size(MB)", "nodes"},
	}
	maxDur := 0
	for _, r := range results {
		if r.Duration > maxDur {
			maxDur = r.Duration
		}
	}
	for _, r := range results {
		if r.Duration != maxDur {
			continue
		}
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			"CTG(" + r.Selection.String() + ")",
			fmt.Sprintf("%d", r.Duration),
			fmt.Sprintf("%.3f", r.MeanBytes/1e6),
			fmt.Sprintf("%.0f", r.MeanNodes),
		})
	}
	return t
}

// QueryCostResult is one point of Fig. 8(c): average query execution time
// over cleaned data.
type QueryCostResult struct {
	Dataset   string
	Selection dataset.Selection
	Duration  int

	MeanStaySeconds float64
	MeanTrajSeconds float64
	Skipped         int
}

// QueryCost measures average stay- and trajectory-query times over the
// ct-graphs built from the dataset (Fig. 8(c)). Query workloads follow
// §6.6: random time points for stay queries, random 2-4 anchor patterns for
// trajectory queries.
func QueryCost(d *dataset.Dataset, p Params) ([]QueryCostResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	locIDs := allLocationIDs(d)
	var out []QueryCostResult
	for _, dur := range p.Durations {
		insts, err := d.Generate(dur, p.Trajectories, p.Stream)
		if err != nil {
			return nil, err
		}
		for _, sel := range dataset.Selections {
			res := QueryCostResult{Dataset: d.Name, Selection: sel, Duration: dur}
			var staySecs, trajSecs []float64
			rng := stats.NewRNG(d.Config.Seed ^ uint64(dur)<<16 ^ uint64(sel))
			for _, inst := range insts {
				g, err := buildGraph(d, inst, sel, p.Mode)
				if errors.Is(err, core.ErrNoValidTrajectory) {
					res.Skipped++
					continue
				}
				if err != nil {
					return nil, err
				}
				eng := query.NewEngine(g, d.Plan.NumLocations())
				start := time.Now()
				for q := 0; q < p.StayQueries; q++ {
					if _, err := eng.Stay(rng.Intn(dur)); err != nil {
						return nil, err
					}
				}
				staySecs = append(staySecs, time.Since(start).Seconds()/float64(p.StayQueries))

				start = time.Now()
				for q := 0; q < p.TrajQueries; q++ {
					pat := query.RandomPattern(rng, locIDs, rng.IntRange(2, 4))
					if _, err := eng.Trajectory(pat); err != nil {
						return nil, err
					}
				}
				trajSecs = append(trajSecs, time.Since(start).Seconds()/float64(p.TrajQueries))
			}
			res.MeanStaySeconds = stats.Mean(staySecs)
			res.MeanTrajSeconds = stats.Mean(trajSecs)
			out = append(out, res)
		}
	}
	return out, nil
}

// QueryCostTable renders query-cost results (Fig. 8(c)).
func QueryCostTable(results []QueryCostResult) *Table {
	t := &Table{
		Title:  "Fig. 8(c) — average query time (seconds) vs trajectory duration",
		Header: []string{"dataset", "constraints", "duration(s)", "stay query(s)", "trajectory query(s)", "skipped"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			"CTG(" + r.Selection.String() + ")",
			fmt.Sprintf("%d", r.Duration),
			fmt.Sprintf("%.6f", r.MeanStaySeconds),
			fmt.Sprintf("%.6f", r.MeanTrajSeconds),
			fmt.Sprintf("%d", r.Skipped),
		})
	}
	return t
}

func allLocationIDs(d *dataset.Dataset) []int {
	ids := make([]int, d.Plan.NumLocations())
	for i := range ids {
		ids[i] = i
	}
	return ids
}
