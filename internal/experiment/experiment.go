// Package experiment implements the paper's evaluation (§6): for every
// figure of the evaluation section there is a function that runs the
// corresponding workload over a dataset and returns the rows the paper
// plots, plus the ablation studies DESIGN.md calls out.
//
// Experiments are deterministic given the dataset seed and the Params'
// stream numbers, so runs are reproducible and comparable.
package experiment

import (
	"fmt"
	"io"
	"runtime"
	"strings"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/dataset"
)

// Params sets the scale of an experiment run. The paper's full scale (§6.1)
// is 25 trajectories per duration in {30, 60, 90, 120} minutes; Quick and
// Medium preserve every claim's shape (linearity in duration, constraint-set
// ordering, dataset ordering) at a fraction of the cost.
type Params struct {
	// Durations lists trajectory durations in timestamps (seconds).
	Durations []int
	// Trajectories is the number of trajectories per duration.
	Trajectories int
	// StayQueries is the number of random stay queries per trajectory
	// (the paper uses 100).
	StayQueries int
	// TrajQueries is the number of random trajectory queries per
	// trajectory (the paper uses 50).
	TrajQueries int
	// Mode is the end-of-window latency semantics; experiments default to
	// LenientEnd (Algorithm 1 as printed) because ground-truth
	// trajectories may legitimately end mid-stay.
	Mode constraints.EndLatencyMode
	// Stream decorrelates instance generation between experiments.
	Stream uint64
	// Workers bounds the number of goroutines used by experiments that
	// parallelize safely (accuracy and baseline workloads; timing
	// measurements always run serially). <= 1 means serial. Results are
	// deterministic regardless of the worker count: every instance has
	// its own random stream and results are reduced in a fixed order.
	Workers int
}

func (p Params) workers() int {
	if p.Workers <= 1 {
		return 1
	}
	return p.Workers
}

// Quick returns bench-sized parameters: 2-8 minute trajectories, 3 per
// duration.
func Quick() Params {
	return Params{
		Durations:    []int{120, 240, 360, 480},
		Trajectories: 3,
		StayQueries:  25,
		TrajQueries:  10,
		Mode:         constraints.LenientEnd,
		Workers:      defaultWorkers(),
	}
}

// defaultWorkers caps experiment parallelism at a modest level so timing
// numbers collected concurrently stay meaningful.
func defaultWorkers() int {
	n := runtime.NumCPU()
	if n > 8 {
		n = 8
	}
	return n
}

// Medium returns parameters an order of magnitude below the paper's.
func Medium() Params {
	return Params{
		Durations:    []int{600, 1200, 1800, 2400},
		Trajectories: 5,
		StayQueries:  50,
		TrajQueries:  25,
		Mode:         constraints.LenientEnd,
		Workers:      defaultWorkers(),
	}
}

// Full returns the paper's §6.1 scale. A full run over both datasets and all
// constraint sets takes hours.
func Full() Params {
	return Params{
		Durations:    dataset.Durations,
		Trajectories: dataset.TrajectoriesPerDuration,
		StayQueries:  100,
		TrajQueries:  50,
		Mode:         constraints.LenientEnd,
		Workers:      defaultWorkers(),
	}
}

func (p Params) validate() error {
	if len(p.Durations) == 0 {
		return fmt.Errorf("experiment: no durations")
	}
	for _, d := range p.Durations {
		if d <= 0 {
			return fmt.Errorf("experiment: non-positive duration %d", d)
		}
	}
	if p.Trajectories <= 0 {
		return fmt.Errorf("experiment: non-positive trajectory count")
	}
	return nil
}

// Table is a rendered experiment result: one header row plus data rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 { // no trailing padding on the last column
				for pad := len(c); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// buildGraph runs the cleaning pipeline for one instance under one
// constraint selection.
func buildGraph(d *dataset.Dataset, inst dataset.Instance, sel dataset.Selection, mode constraints.EndLatencyMode) (*core.Graph, error) {
	ls, err := d.Prior.LSequence(inst.Readings)
	if err != nil {
		return nil, err
	}
	return core.Build(ls, d.Constraints(sel), &core.Options{EndLatency: mode})
}
