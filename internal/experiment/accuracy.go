package experiment

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/stats"
)

// AccuracyResult aggregates query-answer accuracy for one (dataset,
// constraint set) pair, the quantity of Fig. 9(a) and 9(b). PriorStay is
// the baseline the introduction motivates against: answering stay queries
// straight from the unconditioned p*(l|R).
type AccuracyResult struct {
	Dataset   string
	Selection dataset.Selection

	Stay      float64 // mean stay-query accuracy over cleaned data
	PriorStay float64 // mean stay-query accuracy of the unconditioned prior
	Traj      float64 // mean trajectory-query accuracy over cleaned data

	StayQueries int
	TrajQueries int
	Skipped     int
}

// Accuracy measures average stay- and trajectory-query accuracy (§6.6): for
// each trajectory, StayQueries random time points and TrajQueries random
// patterns are evaluated over the cleaned data, and the probabilistic
// answers are scored against the ground truth trajectory.
func Accuracy(d *dataset.Dataset, p Params) ([]AccuracyResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	byLen, err := accuracyRun(d, p)
	if err != nil {
		return nil, err
	}
	return byLen.overall, nil
}

// AccuracyByQueryLength measures trajectory-query accuracy grouped by the
// number of location anchors in the pattern (2, 3 or 4) — Fig. 9(c).
type AccuracyByLength struct {
	Dataset   string
	Selection dataset.Selection
	Anchors   int
	Traj      float64
	Queries   int
}

// AccuracyWithLengths runs the accuracy workload and returns both the
// overall results (Fig. 9(a)/(b)) and the per-query-length breakdown
// (Fig. 9(c)).
func AccuracyWithLengths(d *dataset.Dataset, p Params) ([]AccuracyResult, []AccuracyByLength, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	r, err := accuracyRun(d, p)
	if err != nil {
		return nil, nil, err
	}
	return r.overall, r.byLength, nil
}

type accuracyAgg struct {
	overall  []AccuracyResult
	byLength []AccuracyByLength
}

// accuracyJob is the unit of parallel work: one instance under one
// constraint selection.
type accuracyJob struct {
	sel  dataset.Selection
	dur  int
	idx  int // instance index within its duration batch
	inst dataset.Instance
	slot *accuracyPartial
}

// accuracyPartial collects one job's measurements; jobs never share slots,
// and slots are reduced in deterministic order afterwards.
type accuracyPartial struct {
	stay, priorStay, traj []float64
	trajByLen             map[int][]float64
	skipped               bool
	err                   error
}

func accuracyRun(d *dataset.Dataset, p Params) (*accuracyAgg, error) {
	locIDs := allLocationIDs(d)

	// Materialize every job up front with its own slot and seed.
	var jobs []*accuracyJob
	for _, sel := range dataset.Selections {
		for _, dur := range p.Durations {
			insts, err := d.Generate(dur, p.Trajectories, p.Stream)
			if err != nil {
				return nil, err
			}
			for i, inst := range insts {
				jobs = append(jobs, &accuracyJob{
					sel: sel, dur: dur, idx: i, inst: inst,
					slot: &accuracyPartial{trajByLen: map[int][]float64{}},
				})
			}
		}
	}

	run := func(j *accuracyJob) {
		// One deterministic stream per (selection, duration, instance).
		rng := stats.NewRNG(d.Config.Seed ^ 0xACC ^ uint64(j.dur)<<20 ^ uint64(j.sel)<<4 ^ uint64(j.idx))
		g, err := buildGraph(d, j.inst, j.sel, p.Mode)
		if errors.Is(err, core.ErrNoValidTrajectory) {
			j.slot.skipped = true
			return
		}
		if err != nil {
			j.slot.err = err
			return
		}
		eng := query.NewEngine(g, d.Plan.NumLocations())
		truth := j.inst.Truth.Locations()
		for q := 0; q < p.StayQueries; q++ {
			tau := rng.Intn(j.dur)
			dist, err := eng.Stay(tau)
			if err != nil {
				j.slot.err = err
				return
			}
			j.slot.stay = append(j.slot.stay, query.StayAccuracy(dist, truth[tau]))
			pd := d.Prior.Dist(j.inst.Readings[tau].Readers)
			j.slot.priorStay = append(j.slot.priorStay, query.StayAccuracy(pd, truth[tau]))
		}
		for q := 0; q < p.TrajQueries; q++ {
			anchors := rng.IntRange(2, 4)
			pat := query.RandomPattern(rng, locIDs, anchors)
			pYes, err := eng.Trajectory(pat)
			if err != nil {
				j.slot.err = err
				return
			}
			truthYes, err := query.Matches(pat, truth)
			if err != nil {
				j.slot.err = err
				return
			}
			acc := query.TrajectoryAccuracy(pYes, truthYes)
			j.slot.traj = append(j.slot.traj, acc)
			j.slot.trajByLen[anchors] = append(j.slot.trajByLen[anchors], acc)
		}
	}
	runJobs(jobs, p.workers(), run)

	// Deterministic reduction in job order.
	agg := &accuracyAgg{}
	i := 0
	for _, sel := range dataset.Selections {
		res := AccuracyResult{Dataset: d.Name, Selection: sel}
		var stay, priorStay, traj []float64
		trajByLen := map[int][]float64{}
		for range p.Durations {
			for k := 0; k < p.Trajectories; k++ {
				slot := jobs[i].slot
				i++
				if slot.err != nil {
					return nil, slot.err
				}
				if slot.skipped {
					res.Skipped++
					continue
				}
				stay = append(stay, slot.stay...)
				priorStay = append(priorStay, slot.priorStay...)
				traj = append(traj, slot.traj...)
				for anchors, accs := range slot.trajByLen {
					trajByLen[anchors] = append(trajByLen[anchors], accs...)
				}
			}
		}
		res.Stay = stats.Mean(stay)
		res.PriorStay = stats.Mean(priorStay)
		res.Traj = stats.Mean(traj)
		res.StayQueries = len(stay)
		res.TrajQueries = len(traj)
		agg.overall = append(agg.overall, res)
		for anchors := 2; anchors <= 4; anchors++ {
			agg.byLength = append(agg.byLength, AccuracyByLength{
				Dataset: d.Name, Selection: sel, Anchors: anchors,
				Traj:    stats.Mean(trajByLen[anchors]),
				Queries: len(trajByLen[anchors]),
			})
		}
	}
	return agg, nil
}

// runJobs fans the jobs out over a bounded worker pool.
func runJobs(jobs []*accuracyJob, workers int, run func(*accuracyJob)) {
	if workers <= 1 || len(jobs) <= 1 {
		for _, j := range jobs {
			run(j)
		}
		return
	}
	ch := make(chan *accuracyJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				run(j)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// AccuracyTable renders Fig. 9(a) (stay queries) and 9(b) (trajectory
// queries) side by side, with the unconditioned prior as the baseline.
func AccuracyTable(results []AccuracyResult) *Table {
	t := &Table{
		Title: "Fig. 9(a)/(b) — average query-answer accuracy",
		Header: []string{"dataset", "constraints", "stay acc", "prior stay acc (baseline)",
			"trajectory acc", "queries", "skipped"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			"CTG(" + r.Selection.String() + ")",
			fmt.Sprintf("%.4f", r.Stay),
			fmt.Sprintf("%.4f", r.PriorStay),
			fmt.Sprintf("%.4f", r.Traj),
			fmt.Sprintf("%d+%d", r.StayQueries, r.TrajQueries),
			fmt.Sprintf("%d", r.Skipped),
		})
	}
	return t
}

// AccuracyByLengthTable renders Fig. 9(c): trajectory-query accuracy vs the
// number of anchors in the pattern.
func AccuracyByLengthTable(results []AccuracyByLength) *Table {
	t := &Table{
		Title:  "Fig. 9(c) — trajectory-query accuracy vs query length",
		Header: []string{"dataset", "constraints", "anchors", "trajectory acc", "queries"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			"CTG(" + r.Selection.String() + ")",
			fmt.Sprintf("%d", r.Anchors),
			fmt.Sprintf("%.4f", r.Traj),
			fmt.Sprintf("%d", r.Queries),
		})
	}
	return t
}
