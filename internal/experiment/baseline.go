package experiment

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/smurf"
	"repro/internal/stats"
)

// BaselineResult compares the cleaning approaches on stay-query accuracy:
// the raw prior (no cleaning), the SMURF-style per-reader smoothing baseline
// of the related work (§7), and the paper's conditioning under increasing
// constraint sets.
type BaselineResult struct {
	Dataset string
	Method  string
	// Stay is the mean probability assigned to the true location.
	Stay float64
	// Top1 is the fraction of queries whose argmax location is correct.
	Top1    float64
	Queries int
	Skipped int
}

// BaselineComparison runs the same stay-query workload through every
// cleaning method. SMURF smooths each reader's detection stream and then
// interprets the smoothed readings independently per timestamp through
// p*(l|R) — it repairs false negatives but cannot exploit the map or
// motility constraints, which is exactly the gap the paper's approach fills.
func BaselineComparison(d *dataset.Dataset, p Params) ([]BaselineResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	readerIDs := make([]int, len(d.Readers))
	for i, r := range d.Readers {
		readerIDs[i] = r.ID
	}

	type method struct {
		name string
		run  func(inst dataset.Instance, rng *stats.RNG, stay, top1 *[]float64) error
	}

	// stayFromDist scores one query against a per-timestamp distribution.
	score := func(dist []float64, truth int, stay, top1 *[]float64) {
		*stay = append(*stay, query.StayAccuracy(dist, truth))
		best, bestP := -1, -1.0
		for loc, pr := range dist {
			if pr > bestP {
				best, bestP = loc, pr
			}
		}
		hit := 0.0
		if best == truth {
			hit = 1
		}
		*top1 = append(*top1, hit)
	}

	methods := []method{
		{name: "prior (no cleaning)", run: func(inst dataset.Instance, rng *stats.RNG, stay, top1 *[]float64) error {
			truth := inst.Truth.Locations()
			for q := 0; q < p.StayQueries; q++ {
				tau := rng.Intn(inst.Truth.Duration())
				score(d.Prior.Dist(inst.Readings[tau].Readers), truth[tau], stay, top1)
			}
			return nil
		}},
		{name: "SMURF + prior", run: func(inst dataset.Instance, rng *stats.RNG, stay, top1 *[]float64) error {
			smoothed, err := smurf.Smooth(inst.Readings, readerIDs, smurf.DefaultOptions())
			if err != nil {
				return err
			}
			truth := inst.Truth.Locations()
			for q := 0; q < p.StayQueries; q++ {
				tau := rng.Intn(inst.Truth.Duration())
				score(d.Prior.Dist(smoothed[tau].Readers), truth[tau], stay, top1)
			}
			return nil
		}},
	}
	for _, sel := range dataset.Selections {
		sel := sel
		methods = append(methods, method{
			name: "CTG(" + sel.String() + ")",
			run: func(inst dataset.Instance, rng *stats.RNG, stay, top1 *[]float64) error {
				g, err := buildGraph(d, inst, sel, p.Mode)
				if err != nil {
					return err
				}
				eng := query.NewEngine(g, d.Plan.NumLocations())
				truth := inst.Truth.Locations()
				for q := 0; q < p.StayQueries; q++ {
					tau := rng.Intn(inst.Truth.Duration())
					dist, err := eng.Stay(tau)
					if err != nil {
						return err
					}
					score(dist, truth[tau], stay, top1)
				}
				return nil
			},
		})
	}

	var out []BaselineResult
	for _, m := range methods {
		res := BaselineResult{Dataset: d.Name, Method: m.name}
		var stay, top1 []float64
		for _, dur := range p.Durations {
			insts, err := d.Generate(dur, p.Trajectories, p.Stream)
			if err != nil {
				return nil, err
			}
			rng := stats.NewRNG(d.Config.Seed ^ 0xBA5E ^ uint64(dur))
			for _, inst := range insts {
				err := m.run(inst, rng, &stay, &top1)
				if errors.Is(err, core.ErrNoValidTrajectory) {
					res.Skipped++
					continue
				}
				if err != nil {
					return nil, err
				}
			}
		}
		res.Stay = stats.Mean(stay)
		res.Top1 = stats.Mean(top1)
		res.Queries = len(stay)
		out = append(out, res)
	}
	return out, nil
}

// BaselineTable renders the baseline comparison.
func BaselineTable(results []BaselineResult) *Table {
	t := &Table{
		Title:  "Baseline comparison — stay-query accuracy by cleaning method",
		Header: []string{"dataset", "method", "stay acc", "top-1 acc", "queries", "skipped"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset, r.Method,
			fmt.Sprintf("%.4f", r.Stay),
			fmt.Sprintf("%.4f", r.Top1),
			fmt.Sprintf("%d", r.Queries),
			fmt.Sprintf("%d", r.Skipped),
		})
	}
	return t
}
