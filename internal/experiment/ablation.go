package experiment

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/prior"
	"repro/internal/query"
	"repro/internal/stats"
)

// PriorAblationResult compares the paper's p*(l|R) formula against the full
// detection likelihood (ablation A1 in DESIGN.md).
type PriorAblationResult struct {
	Dataset  string
	Formula  prior.Formula
	Stay     float64 // mean stay accuracy over cleaned data (DU+LT)
	Prior    float64 // mean stay accuracy of the raw prior
	Cands    float64 // mean candidate locations per timestamp
	Queries  int
	Skipped  int
	Duration int
}

// PriorFormulaAblation measures how the cell-weight formula affects the
// a-priori ambiguity and the cleaned stay accuracy.
func PriorFormulaAblation(cfg dataset.Config, name string, p Params) ([]PriorAblationResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	dur := p.Durations[len(p.Durations)-1]
	var out []PriorAblationResult
	for _, formula := range []prior.Formula{prior.PaperFormula, prior.FullLikelihood} {
		c := cfg
		c.PriorOptions.Formula = formula
		d, err := dataset.Build(name, c)
		if err != nil {
			return nil, err
		}
		insts, err := d.Generate(dur, p.Trajectories, p.Stream)
		if err != nil {
			return nil, err
		}
		res := PriorAblationResult{Dataset: name, Formula: formula, Duration: dur}
		var stay, rawStay, cands []float64
		rng := stats.NewRNG(1)
		for _, inst := range insts {
			ls, err := d.Prior.LSequence(inst.Readings)
			if err != nil {
				return nil, err
			}
			for _, step := range ls.Steps {
				cands = append(cands, float64(len(step.Candidates)))
			}
			g, err := core.Build(ls, d.Constraints(dataset.SelDULT), &core.Options{EndLatency: p.Mode})
			if errors.Is(err, core.ErrNoValidTrajectory) {
				res.Skipped++
				continue
			}
			if err != nil {
				return nil, err
			}
			eng := query.NewEngine(g, d.Plan.NumLocations())
			truth := inst.Truth.Locations()
			for q := 0; q < p.StayQueries; q++ {
				tau := rng.Intn(dur)
				dist, err := eng.Stay(tau)
				if err != nil {
					return nil, err
				}
				stay = append(stay, query.StayAccuracy(dist, truth[tau]))
				rawStay = append(rawStay, query.StayAccuracy(d.Prior.Dist(inst.Readings[tau].Readers), truth[tau]))
			}
		}
		res.Stay = stats.Mean(stay)
		res.Prior = stats.Mean(rawStay)
		res.Cands = stats.Mean(cands)
		res.Queries = len(stay)
		out = append(out, res)
	}
	return out, nil
}

// PriorAblationTable renders ablation A1.
func PriorAblationTable(results []PriorAblationResult) *Table {
	t := &Table{
		Title:  "Ablation A1 — prior formula (cleaned with DU+LT)",
		Header: []string{"dataset", "formula", "stay acc", "raw prior acc", "mean candidates/step", "queries"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset, r.Formula.String(),
			fmt.Sprintf("%.4f", r.Stay),
			fmt.Sprintf("%.4f", r.Prior),
			fmt.Sprintf("%.2f", r.Cands),
			fmt.Sprintf("%d", r.Queries),
		})
	}
	return t
}

// EndLatencyAblationResult compares the strict (Definition 2) and lenient
// (Algorithm 1 as printed) end-of-window semantics (ablation A2).
type EndLatencyAblationResult struct {
	Dataset      string
	Mode         constraints.EndLatencyMode
	MeanSeconds  float64
	MeanNodes    float64
	Inconsistent int // instances whose readings admit no valid trajectory
	Trajectories int
}

// EndLatencyAblation builds DU+LT graphs under both end-of-window modes.
func EndLatencyAblation(d *dataset.Dataset, p Params) ([]EndLatencyAblationResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	dur := p.Durations[len(p.Durations)-1]
	insts, err := d.Generate(dur, p.Trajectories, p.Stream)
	if err != nil {
		return nil, err
	}
	var out []EndLatencyAblationResult
	for _, mode := range []constraints.EndLatencyMode{constraints.StrictEnd, constraints.LenientEnd} {
		res := EndLatencyAblationResult{Dataset: d.Name, Mode: mode, Trajectories: len(insts)}
		var secs, nodes []float64
		for _, inst := range insts {
			start := time.Now()
			g, err := buildGraph(d, inst, dataset.SelDULT, mode)
			if errors.Is(err, core.ErrNoValidTrajectory) {
				res.Inconsistent++
				continue
			}
			if err != nil {
				return nil, err
			}
			secs = append(secs, time.Since(start).Seconds())
			nodes = append(nodes, float64(g.Stats().Nodes))
		}
		res.MeanSeconds = stats.Mean(secs)
		res.MeanNodes = stats.Mean(nodes)
		out = append(out, res)
	}
	return out, nil
}

// EndLatencyAblationTable renders ablation A2.
func EndLatencyAblationTable(results []EndLatencyAblationResult) *Table {
	t := &Table{
		Title:  "Ablation A2 — end-of-window latency semantics (DU+LT)",
		Header: []string{"dataset", "mode", "mean time(s)", "mean nodes", "inconsistent/total"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset, r.Mode.String(),
			fmt.Sprintf("%.4f", r.MeanSeconds),
			fmt.Sprintf("%.0f", r.MeanNodes),
			fmt.Sprintf("%d/%d", r.Inconsistent, r.Trajectories),
		})
	}
	return t
}

// MinProbAblationResult measures candidate pruning (ablation A3).
type MinProbAblationResult struct {
	Dataset     string
	MinProb     float64
	MeanSeconds float64
	MeanNodes   float64
	Stay        float64
	Skipped     int
}

// MinProbAblation compares exact candidate sets against ε-pruned ones under
// DU+LT+TT, where the graph size is most sensitive to ambiguity.
func MinProbAblation(cfg dataset.Config, name string, p Params, thresholds []float64) ([]MinProbAblationResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	dur := p.Durations[len(p.Durations)-1]
	var out []MinProbAblationResult
	for _, th := range thresholds {
		c := cfg
		c.PriorOptions.MinProb = th
		d, err := dataset.Build(name, c)
		if err != nil {
			return nil, err
		}
		insts, err := d.Generate(dur, p.Trajectories, p.Stream)
		if err != nil {
			return nil, err
		}
		res := MinProbAblationResult{Dataset: name, MinProb: th}
		var secs, nodes, stay []float64
		rng := stats.NewRNG(3)
		for _, inst := range insts {
			start := time.Now()
			g, err := buildGraph(d, inst, dataset.SelDULTTT, p.Mode)
			if errors.Is(err, core.ErrNoValidTrajectory) {
				res.Skipped++
				continue
			}
			if err != nil {
				return nil, err
			}
			secs = append(secs, time.Since(start).Seconds())
			nodes = append(nodes, float64(g.Stats().Nodes))
			eng := query.NewEngine(g, d.Plan.NumLocations())
			truth := inst.Truth.Locations()
			for q := 0; q < p.StayQueries; q++ {
				tau := rng.Intn(dur)
				dist, err := eng.Stay(tau)
				if err != nil {
					return nil, err
				}
				stay = append(stay, query.StayAccuracy(dist, truth[tau]))
			}
		}
		res.MeanSeconds = stats.Mean(secs)
		res.MeanNodes = stats.Mean(nodes)
		res.Stay = stats.Mean(stay)
		out = append(out, res)
	}
	return out, nil
}

// MinProbAblationTable renders ablation A3.
func MinProbAblationTable(results []MinProbAblationResult) *Table {
	t := &Table{
		Title:  "Ablation A3 — candidate pruning threshold (DU+LT+TT)",
		Header: []string{"dataset", "min prob", "mean time(s)", "mean nodes", "stay acc", "skipped"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			fmt.Sprintf("%.3f", r.MinProb),
			fmt.Sprintf("%.4f", r.MeanSeconds),
			fmt.Sprintf("%.0f", r.MeanNodes),
			fmt.Sprintf("%.4f", r.Stay),
			fmt.Sprintf("%d", r.Skipped),
		})
	}
	return t
}

// OracleAblationResult compares the naive enumeration baseline against the
// ct-graph on short windows (ablation A4 — the introduction's infeasibility
// argument, measured).
type OracleAblationResult struct {
	Dataset       string
	Duration      int
	GraphSeconds  float64
	OracleSeconds float64
	OracleBlewUp  int // instances where enumeration exceeded the budget
	Trajectories  int
}

// OracleVsCTGraph measures both conditioners on short prefixes of real
// reading sequences under DU+LT constraints. The enumeration budget keeps
// the oracle from running forever; blow-ups are counted, not waited for.
func OracleVsCTGraph(d *dataset.Dataset, durations []int, trajectories, budget int, mode constraints.EndLatencyMode) ([]OracleAblationResult, error) {
	if len(durations) == 0 || trajectories <= 0 {
		return nil, fmt.Errorf("experiment: empty oracle ablation")
	}
	var out []OracleAblationResult
	for _, dur := range durations {
		insts, err := d.Generate(dur, trajectories, 11)
		if err != nil {
			return nil, err
		}
		res := OracleAblationResult{Dataset: d.Name, Duration: dur, Trajectories: len(insts)}
		var gs, os []float64
		ic := d.Constraints(dataset.SelDULT)
		for _, inst := range insts {
			ls, err := d.Prior.LSequence(inst.Readings)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			_, gErr := core.Build(ls, ic, &core.Options{EndLatency: mode})
			gTime := time.Since(start).Seconds()

			start = time.Now()
			_, oErr := core.EnumerateConditioned(ls, ic, mode, budget)
			oTime := time.Since(start).Seconds()

			switch {
			case oErr == nil && gErr == nil:
				gs = append(gs, gTime)
				os = append(os, oTime)
			case errors.Is(oErr, core.ErrNoValidTrajectory) && errors.Is(gErr, core.ErrNoValidTrajectory):
				// Both agree the readings are inconsistent.
			case oErr != nil && !errors.Is(oErr, core.ErrNoValidTrajectory):
				res.OracleBlewUp++
			default:
				return nil, fmt.Errorf("experiment: oracle and ct-graph disagree: %v vs %v", oErr, gErr)
			}
		}
		res.GraphSeconds = stats.Mean(gs)
		res.OracleSeconds = stats.Mean(os)
		out = append(out, res)
	}
	return out, nil
}

// OracleAblationTable renders ablation A4.
func OracleAblationTable(results []OracleAblationResult) *Table {
	t := &Table{
		Title:  "Ablation A4 — naive enumeration vs ct-graph (DU+LT)",
		Header: []string{"dataset", "duration(s)", "ct-graph time(s)", "oracle time(s)", "oracle blow-ups"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			fmt.Sprintf("%d", r.Duration),
			fmt.Sprintf("%.5f", r.GraphSeconds),
			fmt.Sprintf("%.5f", r.OracleSeconds),
			fmt.Sprintf("%d/%d", r.OracleBlewUp, r.Trajectories),
		})
	}
	return t
}
