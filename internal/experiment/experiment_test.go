package experiment

import (
	"strings"
	"testing"

	"repro/internal/constraints"
	"repro/internal/dataset"
)

// tinyParams keeps experiment tests fast.
func tinyParams() Params {
	return Params{
		Durations:    []int{60, 120},
		Trajectories: 2,
		StayQueries:  5,
		TrajQueries:  3,
		Mode:         constraints.LenientEnd,
	}
}

// tinyDataset is a single-floor dataset, cached across tests.
var tinyCache *dataset.Dataset

func tinyDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	if tinyCache != nil {
		return tinyCache
	}
	cfg := dataset.SYN1()
	cfg.Floors = 1
	d, err := dataset.Build("TINY", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tinyCache = d
	return d
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{},
		{Durations: []int{0}, Trajectories: 1},
		{Durations: []int{10}, Trajectories: 0},
	}
	for i, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("params %d accepted", i)
		}
	}
	for _, p := range []Params{Quick(), Medium(), Full()} {
		if err := p.validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
}

func TestCleaningCost(t *testing.T) {
	d := tinyDataset(t)
	p := tinyParams()
	results, err := CleaningCost(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(p.Durations)*len(dataset.Selections) {
		t.Fatalf("got %d results", len(results))
	}
	// Aggregate sanity: time and size grow with the constraint set at a
	// fixed duration (DU <= DU+LT+TT) and nodes grow with duration.
	byKey := map[string]CleaningResult{}
	for _, r := range results {
		if r.Skipped == r.Trajectories {
			t.Fatalf("every instance skipped for %v/%d", r.Selection, r.Duration)
		}
		if r.MeanNodes <= 0 || r.MeanSeconds < 0 {
			t.Errorf("degenerate result %+v", r)
		}
		byKey[r.Selection.String()+"@"+itoa(r.Duration)] = r
	}
	du := byKey["DU@120"]
	tt := byKey["DU+LT+TT@120"]
	if tt.MeanNodes < du.MeanNodes {
		t.Errorf("TT graphs smaller than DU graphs: %v vs %v", tt.MeanNodes, du.MeanNodes)
	}
	if byKey["DU@60"].MeanNodes >= byKey["DU@120"].MeanNodes {
		t.Errorf("nodes do not grow with duration")
	}

	table := CleaningTable(results)
	var sb strings.Builder
	if err := table.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CTG(DU+LT+TT)") {
		t.Errorf("table missing series:\n%s", sb.String())
	}
	size := GraphSizeTable(results)
	if len(size.Rows) != len(dataset.Selections) {
		t.Errorf("size table rows = %d", len(size.Rows))
	}
}

func TestQueryCost(t *testing.T) {
	d := tinyDataset(t)
	results, err := QueryCost(d, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range results {
		if r.MeanStaySeconds < 0 || r.MeanTrajSeconds < 0 {
			t.Errorf("negative time %+v", r)
		}
	}
	var sb strings.Builder
	if err := QueryCostTable(results).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stay query") {
		t.Errorf("table malformed")
	}
}

func TestAccuracy(t *testing.T) {
	d := tinyDataset(t)
	overall, byLen, err := AccuracyWithLengths(d, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(overall) != len(dataset.Selections) {
		t.Fatalf("overall results = %d", len(overall))
	}
	for _, r := range overall {
		if r.Stay < 0 || r.Stay > 1 || r.Traj < 0 || r.Traj > 1 || r.PriorStay < 0 || r.PriorStay > 1 {
			t.Errorf("accuracy out of range: %+v", r)
		}
		if r.StayQueries == 0 || r.TrajQueries == 0 {
			t.Errorf("no queries ran: %+v", r)
		}
		// The paper's headline: conditioning under constraints improves
		// stay accuracy over the unconditioned prior.
		if r.Stay < r.PriorStay-0.05 {
			t.Errorf("%v: cleaned accuracy %.3f worse than prior %.3f", r.Selection, r.Stay, r.PriorStay)
		}
	}
	if len(byLen) != 3*len(dataset.Selections) {
		t.Fatalf("by-length results = %d", len(byLen))
	}
	var sb strings.Builder
	if err := AccuracyTable(overall).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if err := AccuracyByLengthTable(byLen).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "anchors") {
		t.Errorf("by-length table malformed")
	}
	// Accuracy (without lengths) returns the same overall rows.
	again, err := Accuracy(d, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(overall) || again[0].Stay != overall[0].Stay {
		t.Errorf("Accuracy disagrees with AccuracyWithLengths")
	}
}

func TestPriorFormulaAblation(t *testing.T) {
	cfg := dataset.SYN1()
	cfg.Floors = 1
	results, err := PriorFormulaAblation(cfg, "TINY", tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Full likelihood is at least as sharp a prior: no more candidates.
	if results[1].Cands > results[0].Cands+1e-9 {
		t.Errorf("full likelihood has more candidates (%v) than paper formula (%v)",
			results[1].Cands, results[0].Cands)
	}
	var sb strings.Builder
	if err := PriorAblationTable(results).Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestEndLatencyAblation(t *testing.T) {
	d := tinyDataset(t)
	results, err := EndLatencyAblation(d, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	var sb strings.Builder
	if err := EndLatencyAblationTable(results).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "strict-end") || !strings.Contains(sb.String(), "lenient-end") {
		t.Errorf("modes missing:\n%s", sb.String())
	}
}

func TestMinProbAblation(t *testing.T) {
	cfg := dataset.SYN1()
	cfg.Floors = 1
	results, err := MinProbAblation(cfg, "TINY", tinyParams(), []float64{0, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	exact, pruned := results[0], results[1]
	if pruned.MeanNodes > exact.MeanNodes+1e-9 {
		t.Errorf("pruning increased graph size: %v vs %v", pruned.MeanNodes, exact.MeanNodes)
	}
	var sb strings.Builder
	if err := MinProbAblationTable(results).Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestOracleVsCTGraph(t *testing.T) {
	d := tinyDataset(t)
	results, err := OracleVsCTGraph(d, []int{6, 8}, 2, 1<<18, constraints.LenientEnd)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	var sb strings.Builder
	if err := OracleAblationTable(results).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := OracleVsCTGraph(d, nil, 2, 1, constraints.LenientEnd); err == nil {
		t.Errorf("empty durations accepted")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"xxxxxx", "1"}, {"y", "2"}},
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Errorf("title missing")
	}
	// Data lines align to the same width (modulo trailing padding).
	if len(strings.TrimRight(lines[2], " ")) == 0 {
		t.Errorf("separator missing:\n%s", out)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestBaselineComparison(t *testing.T) {
	d := tinyDataset(t)
	results, err := BaselineComparison(d, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2+len(dataset.Selections) {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]BaselineResult{}
	for _, r := range results {
		if r.Queries == 0 {
			t.Errorf("%s ran no queries", r.Method)
		}
		if r.Stay < 0 || r.Stay > 1 || r.Top1 < 0 || r.Top1 > 1 {
			t.Errorf("%s accuracy out of range: %+v", r.Method, r)
		}
		byName[r.Method] = r
	}
	// The paper's thesis: constraint-aware conditioning beats the
	// reader-local SMURF baseline on stay accuracy.
	if byName["CTG(DU+LT)"].Stay < byName["SMURF + prior"].Stay-0.05 {
		t.Errorf("conditioning (%.3f) worse than SMURF baseline (%.3f)",
			byName["CTG(DU+LT)"].Stay, byName["SMURF + prior"].Stay)
	}
	var sb strings.Builder
	if err := BaselineTable(results).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SMURF") {
		t.Errorf("table missing baseline:\n%s", sb.String())
	}
}

func TestMapSizeAblation(t *testing.T) {
	results, err := MapSizeAblation(60, 1, []int{15})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.MaxTT == 0 {
			t.Errorf("%s: no TT horizon measured", r.Dataset)
		}
	}
	var sb strings.Builder
	if err := MapSizeTable(results).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SYN2") {
		t.Errorf("table missing dataset")
	}
	if _, err := MapSizeAblation(0, 1, []int{1}); err == nil {
		t.Errorf("bad params accepted")
	}
}

func TestAccuracyDeterministicAcrossWorkerCounts(t *testing.T) {
	d := tinyDataset(t)
	serial := tinyParams()
	serial.Workers = 1
	parallel := tinyParams()
	parallel.Workers = 4
	a, err := Accuracy(d, serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Accuracy(d, parallel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker count changed results: %+v vs %+v", a[i], b[i])
		}
	}
}
