package experiment

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// MapSizeResult is one point of ablation A5: the effect of the map size on
// CTG(DU+LT+TT) when TT horizons are NOT capped — §6.5's third observation
// ("the larger the map, the longer the maximum duration of the generated TT
// constraints ... this may increase the number of location nodes").
type MapSizeResult struct {
	Dataset     string
	TTCap       int // 0 = uncapped, as in the paper
	Duration    int
	MeanSeconds float64
	MeanNodes   float64
	MaxTT       int // largest inferred TT horizon
	Skipped     int
}

// MapSizeAblation builds SYN1 and SYN2 with the given TT caps (0 reproduces
// the paper's uncapped inference) and measures CTG(DU+LT+TT) cleaning cost
// at the given duration. It demonstrates both the paper's map-size effect
// (uncapped: the 8-floor SYN2 is far more expensive than the 4-floor SYN1)
// and the engineering trade-off the TTCap knob buys back.
func MapSizeAblation(duration, trajectories int, ttCaps []int) ([]MapSizeResult, error) {
	if duration <= 0 || trajectories <= 0 || len(ttCaps) == 0 {
		return nil, fmt.Errorf("experiment: empty map-size ablation")
	}
	var out []MapSizeResult
	for _, cap := range ttCaps {
		for _, name := range []string{"SYN1", "SYN2"} {
			cfg, err := dataset.ConfigByName(name)
			if err != nil {
				return nil, err
			}
			cfg.TTCap = cap
			d, err := dataset.Build(name, cfg)
			if err != nil {
				return nil, err
			}
			insts, err := d.Generate(duration, trajectories, 21)
			if err != nil {
				return nil, err
			}
			res := MapSizeResult{Dataset: name, TTCap: cap, Duration: duration}
			ic := d.Constraints(dataset.SelDULTTT)
			for loc := 0; loc < d.Plan.NumLocations(); loc++ {
				if m := ic.MaxTravelingTime(loc); m > res.MaxTT {
					res.MaxTT = m
				}
			}
			var secs, nodes []float64
			for _, inst := range insts {
				ls, err := d.Prior.LSequence(inst.Readings)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				g, err := core.Build(ls, ic, nil)
				if errors.Is(err, core.ErrNoValidTrajectory) {
					res.Skipped++
					continue
				}
				if err != nil {
					return nil, err
				}
				secs = append(secs, time.Since(start).Seconds())
				nodes = append(nodes, float64(g.Stats().Nodes))
			}
			res.MeanSeconds = stats.Mean(secs)
			res.MeanNodes = stats.Mean(nodes)
			out = append(out, res)
		}
	}
	return out, nil
}

// MapSizeTable renders ablation A5.
func MapSizeTable(results []MapSizeResult) *Table {
	t := &Table{
		Title:  "Ablation A5 — map size vs CTG(DU+LT+TT) cost (§6.5's observation; TT cap 0 = the paper's uncapped inference)",
		Header: []string{"dataset", "TT cap", "max TT horizon", "duration(s)", "mean time(s)", "mean nodes", "skipped"},
	}
	for _, r := range results {
		cap := fmt.Sprintf("%d", r.TTCap)
		if r.TTCap == 0 {
			cap = "uncapped"
		}
		t.Rows = append(t.Rows, []string{
			r.Dataset, cap,
			fmt.Sprintf("%d", r.MaxTT),
			fmt.Sprintf("%d", r.Duration),
			fmt.Sprintf("%.4f", r.MeanSeconds),
			fmt.Sprintf("%.0f", r.MeanNodes),
			fmt.Sprintf("%d", r.Skipped),
		})
	}
	return t
}
