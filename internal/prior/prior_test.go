package prior

import (
	"math"
	"sync"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/rfid"
)

// fixture builds a two-room plan with one reader per room and returns the
// truth matrix. Reader 0 covers room A, reader 1 covers room B; coverage
// overlaps slightly near the door.
func fixture(t *testing.T) *rfid.Matrix {
	t.Helper()
	b := floorplan.NewBuilder()
	a := b.AddLocation("A", floorplan.Room, 0, geom.RectWH(0, 0, 4, 4))
	c := b.AddLocation("B", floorplan.Room, 0, geom.RectWH(4, 0, 4, 4))
	b.AddDoor(a, c, geom.Pt(4, 2), 1.5)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := rfid.NewCellSpace(plan, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	readers := []rfid.Reader{
		{ID: 0, Name: "rA", Floor: 0, Pos: geom.Pt(2, 2)},
		{ID: 1, Name: "rB", Floor: 0, Pos: geom.Pt(6, 2)},
	}
	return rfid.NewTruthMatrix(cells, readers, rfid.DefaultThreeState())
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestDistNormalized(t *testing.T) {
	m := New(fixture(t), Options{})
	for _, set := range []rfid.Set{
		rfid.NewSet(0),
		rfid.NewSet(1),
		rfid.NewSet(0, 1),
		rfid.NewSet(),
	} {
		d := m.Dist(set)
		if len(d) != 2 {
			t.Fatalf("dist len = %d", len(d))
		}
		if math.Abs(sum(d)-1) > 1e-9 {
			t.Errorf("dist(%v) sums to %v", set, sum(d))
		}
		for loc, p := range d {
			if p < 0 || p > 1 {
				t.Errorf("dist(%v)[%d] = %v", set, loc, p)
			}
		}
	}
}

func TestDistPointsToRightRoom(t *testing.T) {
	m := New(fixture(t), Options{})
	dA := m.Dist(rfid.NewSet(0))
	if dA[0] <= dA[1] {
		t.Errorf("reader 0 fired but room A not favored: %v", dA)
	}
	dB := m.Dist(rfid.NewSet(1))
	if dB[1] <= dB[0] {
		t.Errorf("reader 1 fired but room B not favored: %v", dB)
	}
}

func TestDistBothReadersMeansDoorZone(t *testing.T) {
	m := New(fixture(t), Options{})
	d := m.Dist(rfid.NewSet(0, 1))
	// Both rooms contain cells visible to both readers (near the door), so
	// both get mass.
	if d[0] == 0 || d[1] == 0 {
		t.Errorf("double detection should leave both rooms possible: %v", d)
	}
}

func TestDistEmptySetPaperFormula(t *testing.T) {
	// With the paper's formula, R = ∅ weights every cell 1, so the
	// distribution is proportional to location cell counts (equal rooms ->
	// 1/2 each).
	m := New(fixture(t), Options{})
	d := m.Dist(rfid.NewSet())
	if math.Abs(d[0]-0.5) > 1e-9 || math.Abs(d[1]-0.5) > 1e-9 {
		t.Errorf("empty-set dist = %v, want uniform by area", d)
	}
}

func TestDistImpossibleSetFallsBackUniform(t *testing.T) {
	// Construct a matrix where no cell is seen by both readers by using a
	// wall-heavy model: put the readers far apart with a tiny radius.
	b := floorplan.NewBuilder()
	a := b.AddLocation("A", floorplan.Room, 0, geom.RectWH(0, 0, 4, 4))
	c := b.AddLocation("B", floorplan.Room, 0, geom.RectWH(4, 0, 4, 4))
	b.AddDoor(a, c, geom.Pt(4, 2), 1)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := rfid.NewCellSpace(plan, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	readers := []rfid.Reader{
		{ID: 0, Floor: 0, Pos: geom.Pt(0.5, 0.5)},
		{ID: 1, Floor: 0, Pos: geom.Pt(7.5, 3.5)},
	}
	model := rfid.ThreeState{MajorRadius: 1, MinorRadius: 1.5, MajorRate: 0.9, WallFactor: 0}
	truth := rfid.NewTruthMatrix(cells, readers, model)
	m := New(truth, Options{})
	d := m.Dist(rfid.NewSet(0, 1))
	if math.Abs(d[0]-0.5) > 1e-9 || math.Abs(d[1]-0.5) > 1e-9 {
		t.Errorf("impossible set should fall back to uniform: %v", d)
	}
}

func TestFullLikelihoodSharpens(t *testing.T) {
	f := fixture(t)
	paper := New(f, Options{Formula: PaperFormula})
	full := New(f, Options{Formula: FullLikelihood})
	// Reader 0 fired, reader 1 silent: full likelihood penalizes door-zone
	// cells (visible to reader 1), so room A probability must not drop.
	dp := paper.Dist(rfid.NewSet(0))
	df := full.Dist(rfid.NewSet(0))
	if df[0] < dp[0]-1e-9 {
		t.Errorf("full likelihood should sharpen toward room A: paper %v, full %v", dp, df)
	}
	if math.Abs(sum(df)-1) > 1e-9 {
		t.Errorf("full-likelihood dist not normalized: %v", df)
	}
}

func TestMinProbPruning(t *testing.T) {
	f := fixture(t)
	m := New(f, Options{MinProb: 0.45})
	d := m.Dist(rfid.NewSet(0))
	// Whatever survives must be renormalized.
	if math.Abs(sum(d)-1) > 1e-9 {
		t.Errorf("pruned dist sums to %v", sum(d))
	}
	for _, p := range d {
		if p != 0 && p < 0.45 {
			t.Errorf("entry below threshold survived: %v", d)
		}
	}
}

func TestPruneKeepsArgmaxWhenAllBelow(t *testing.T) {
	d := prune([]float64{0.3, 0.4, 0.3}, 0.9)
	if d[1] != 1 || d[0] != 0 || d[2] != 0 {
		t.Errorf("prune fallback = %v", d)
	}
}

func TestDistCaching(t *testing.T) {
	m := New(fixture(t), Options{})
	a := m.Dist(rfid.NewSet(0))
	b := m.Dist(rfid.NewSet(0))
	if &a[0] != &b[0] {
		t.Errorf("cache miss on identical reader set")
	}
	if m.CacheSize() != 1 {
		t.Errorf("CacheSize = %d", m.CacheSize())
	}
	m.Dist(rfid.NewSet(1))
	if m.CacheSize() != 2 {
		t.Errorf("CacheSize = %d", m.CacheSize())
	}
}

func TestLSequence(t *testing.T) {
	m := New(fixture(t), Options{})
	seq := rfid.Sequence{
		{Time: 0, Readers: rfid.NewSet(0)},
		{Time: 1, Readers: rfid.NewSet(0, 1)},
		{Time: 2, Readers: rfid.NewSet()},
	}
	ls, err := m.LSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Validate(); err != nil {
		t.Errorf("produced l-sequence invalid: %v", err)
	}
	if ls.Duration() != 3 {
		t.Errorf("duration = %d", ls.Duration())
	}
	// Invalid sequence must be rejected.
	if _, err := m.LSequence(rfid.Sequence{{Time: 5}}); err == nil {
		t.Errorf("invalid sequence accepted")
	}
	if _, err := m.LSequence(nil); err == nil {
		t.Errorf("empty sequence accepted")
	}
}

func TestFormulaString(t *testing.T) {
	if PaperFormula.String() != "paper" || FullLikelihood.String() != "full-likelihood" {
		t.Errorf("formula strings wrong")
	}
}

func TestNumLocations(t *testing.T) {
	m := New(fixture(t), Options{})
	if m.NumLocations() != 2 {
		t.Errorf("NumLocations = %d", m.NumLocations())
	}
}

func TestDistConcurrent(t *testing.T) {
	m := New(fixture(t), Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d := m.Dist(rfid.NewSet(i % 2))
				if math.Abs(sum(d)-1) > 1e-9 {
					t.Errorf("goroutine %d: dist sums to %v", g, sum(d))
					return
				}
				if _, err := m.GroupDist([]rfid.Set{rfid.NewSet(0), rfid.NewSet(1)}); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m.CacheSize() == 0 {
		t.Errorf("cache empty after concurrent use")
	}
}
