package prior

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/rfid"
)

// GroupDist returns p*(l | R_1, …, R_k) for k tags known to move together
// (attached to the same object or pallet): the probability that the group is
// at location l given that member j was detected by exactly the readers in
// sets[j]. This is the group-correlation extension the paper's §8 names as
// future work for supply-chain scenarios.
//
// The combination happens at the cell level, where the independence actually
// holds: given the shared position c, the members' detections are
// independent, so the joint cell weight is the product of the members'
// per-cell weights under the model's formula. Summing per location and
// normalizing yields a sharper distribution than any single member's.
func (m *Model) GroupDist(sets []rfid.Set) ([]float64, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("prior: empty group")
	}
	if len(sets) == 1 {
		return m.Dist(sets[0]), nil
	}
	key := groupKey(sets)
	m.mu.Lock()
	d, ok := m.cache[key]
	m.mu.Unlock()
	if ok {
		return d, nil
	}
	d = m.computeGroup(sets)
	m.mu.Lock()
	m.cache[key] = d
	m.mu.Unlock()
	return d, nil
}

func groupKey(sets []rfid.Set) string {
	var b strings.Builder
	b.WriteString("G|")
	for i, s := range sets {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(s.Key())
	}
	return b.String()
}

func (m *Model) computeGroup(sets []rfid.Set) []float64 {
	plan := m.f.Cells.Plan
	numLoc := plan.NumLocations()
	dist := make([]float64, numLoc)

	// Per member: the matrix row indices of fired and silent readers.
	type member struct{ rows, silent []int }
	members := make([]member, len(sets))
	for j, set := range sets {
		for i, reader := range m.f.Readers {
			if set.Contains(reader.ID) {
				members[j].rows = append(members[j].rows, i)
			} else {
				members[j].silent = append(members[j].silent, i)
			}
		}
	}

	total := 0.0
	for loc := 0; loc < numLoc; loc++ {
		var sum float64
		for _, c := range m.f.Cells.CellsOfLocation(loc) {
			w := 1.0
			for _, mem := range members {
				for _, ri := range mem.rows {
					w *= m.f.Rates[ri][c]
					if w == 0 {
						break
					}
				}
				if w == 0 {
					break
				}
				if m.opts.Formula == FullLikelihood {
					for _, ri := range mem.silent {
						w *= 1 - m.f.Rates[ri][c]
						if w == 0 {
							break
						}
					}
					if w == 0 {
						break
					}
				}
			}
			sum += w
		}
		dist[loc] = sum
		total += sum
	}
	if total <= 0 {
		// The members' reader sets are mutually incompatible (no cell
		// explains all of them): fall back to uniform, as §6.2 does for
		// a single unexplainable set.
		for loc := range dist {
			dist[loc] = 1 / float64(numLoc)
		}
		return dist
	}
	for loc := range dist {
		dist[loc] /= total
	}
	if m.opts.MinProb > 0 {
		dist = prune(dist, m.opts.MinProb)
	}
	return dist
}

// GroupLSequence converts the reading sequences of a group of tags moving
// together into a single joint l-sequence. All sequences must cover the
// same window.
func (m *Model) GroupLSequence(seqs []rfid.Sequence) (*core.LSequence, error) {
	if len(seqs) == 0 {
		return nil, fmt.Errorf("prior: empty group")
	}
	duration := seqs[0].Duration()
	for j, seq := range seqs {
		if err := seq.Validate(); err != nil {
			return nil, fmt.Errorf("prior: group member %d: %w", j, err)
		}
		if seq.Duration() != duration {
			return nil, fmt.Errorf("prior: group member %d covers %d timestamps, member 0 covers %d",
				j, seq.Duration(), duration)
		}
	}
	ls := &core.LSequence{Steps: make([]core.Step, duration)}
	sets := make([]rfid.Set, len(seqs))
	for t := 0; t < duration; t++ {
		for j := range seqs {
			sets[j] = seqs[j][t].Readers
		}
		dist, err := m.GroupDist(sets)
		if err != nil {
			return nil, err
		}
		var cands []core.Candidate
		for loc, p := range dist {
			if p > 0 {
				cands = append(cands, core.Candidate{Loc: loc, P: p})
			}
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("prior: no candidate location at timestamp %d", t)
		}
		ls.Steps[t].Candidates = cands
	}
	return ls, nil
}
