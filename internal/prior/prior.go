// Package prior implements the a-priori probabilistic model of the paper:
// the distribution p*(l|R) mapping a set of detecting readers to a
// distribution over locations (§6.2), and the construction of the l-sequence
// Γ = (Λ, ρ) from a reading sequence (§2).
//
// The default formula is the paper's own:
//
//	p*(l|R) = Σ_{c ∈ Cells(l)} Π_{r ∈ R} F[r,c]  /  Σ_{c ∈ Cells} Π_{r ∈ R} F[r,c]
//
// with a uniform fallback over all locations when the denominator is zero
// (no cell is compatible with the observed reader set). Cells is the set of
// cells belonging to some location.
//
// A full-likelihood variant is provided as an ablation (DESIGN.md A1): it
// additionally multiplies by (1 − F[r',c]) for every reader r' that did NOT
// detect the object, making missed reads informative.
package prior

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/rfid"
)

// Formula selects how cell weights are computed from the detection matrix.
type Formula int

const (
	// PaperFormula is §6.2's formula: the weight of a cell is the product
	// of the detection rates of the readers that fired.
	PaperFormula Formula = iota
	// FullLikelihood additionally multiplies by (1 − F[r',c]) for every
	// silent reader r', i.e. the exact likelihood of the observed reader
	// set under independent readers.
	FullLikelihood
)

// String implements fmt.Stringer.
func (f Formula) String() string {
	if f == FullLikelihood {
		return "full-likelihood"
	}
	return "paper"
}

// Options configures a Model. The zero value reproduces the paper exactly.
type Options struct {
	// Formula selects the cell-weight formula (default PaperFormula).
	Formula Formula
	// MinProb, when positive, prunes candidate locations whose probability
	// falls below it and renormalizes the rest (ablation A3). The paper
	// keeps every non-zero candidate.
	MinProb float64
}

// Model computes p*(l|R) from a detection matrix (typically the calibrated
// F̂ of rfid.Calibrate) and converts reading sequences into l-sequences.
// A Model caches one distribution per distinct reader set and is safe for
// concurrent use.
type Model struct {
	f    *rfid.Matrix
	opts Options

	mu    sync.Mutex
	cache map[string][]float64
}

// New returns a model over the given detection matrix.
func New(f *rfid.Matrix, opts Options) *Model {
	return &Model{f: f, opts: opts, cache: make(map[string][]float64)}
}

// NumLocations returns the number of locations of the underlying plan.
func (m *Model) NumLocations() int { return m.f.Cells.Plan.NumLocations() }

// Dist returns p*(·|R): the probability, for each location ID, that the
// object is there given that it was detected by exactly the readers in R.
// The returned slice is owned by the model's cache and must not be modified.
func (m *Model) Dist(r rfid.Set) []float64 {
	key := r.Key()
	m.mu.Lock()
	d, ok := m.cache[key]
	m.mu.Unlock()
	if ok {
		return d
	}
	d = m.compute(r)
	m.mu.Lock()
	m.cache[key] = d
	m.mu.Unlock()
	return d
}

func (m *Model) compute(r rfid.Set) []float64 {
	plan := m.f.Cells.Plan
	numLoc := plan.NumLocations()
	dist := make([]float64, numLoc)

	// Row indices of the readers in R (matrix rows are positional).
	rows := make([]int, 0, r.Len())
	silent := make([]int, 0, len(m.f.Readers))
	for i, reader := range m.f.Readers {
		if r.Contains(reader.ID) {
			rows = append(rows, i)
		} else {
			silent = append(silent, i)
		}
	}

	total := 0.0
	for loc := 0; loc < numLoc; loc++ {
		var sum float64
		for _, c := range m.f.Cells.CellsOfLocation(loc) {
			w := 1.0
			for _, ri := range rows {
				w *= m.f.Rates[ri][c]
				if w == 0 {
					break
				}
			}
			if w == 0 {
				continue
			}
			if m.opts.Formula == FullLikelihood {
				for _, ri := range silent {
					w *= 1 - m.f.Rates[ri][c]
					if w == 0 {
						break
					}
				}
				if w == 0 {
					continue
				}
			}
			sum += w
		}
		dist[loc] = sum
		total += sum
	}
	if total <= 0 {
		// No a-priori knowledge for this reader set: uniform over all
		// locations (§6.2).
		for loc := range dist {
			dist[loc] = 1 / float64(numLoc)
		}
		return dist
	}
	for loc := range dist {
		dist[loc] /= total
	}
	if m.opts.MinProb > 0 {
		dist = prune(dist, m.opts.MinProb)
	}
	return dist
}

// prune zeroes entries below minProb and renormalizes. If everything falls
// below the threshold, the largest entry is kept.
func prune(dist []float64, minProb float64) []float64 {
	best, bestP := -1, 0.0
	for i, p := range dist {
		if p > bestP {
			best, bestP = i, p
		}
	}
	total := 0.0
	kept := 0
	for i, p := range dist {
		if p < minProb {
			dist[i] = 0
		} else {
			total += p
			kept++
		}
	}
	if kept == 0 {
		if best >= 0 {
			dist[best] = 1
		}
		return dist
	}
	for i := range dist {
		dist[i] /= total
	}
	return dist
}

// LSequence converts a reading sequence into the l-sequence Γ = (Λ, ρ): for
// each timestamp, the candidate locations with non-zero probability under
// p*(·|R_τ).
func (m *Model) LSequence(seq rfid.Sequence) (*core.LSequence, error) {
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	ls := &core.LSequence{Steps: make([]core.Step, len(seq))}
	for t, reading := range seq {
		dist := m.Dist(reading.Readers)
		var cands []core.Candidate
		for loc, p := range dist {
			if p > 0 {
				cands = append(cands, core.Candidate{Loc: loc, P: p})
			}
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("prior: no candidate location at timestamp %d (readers %v)", t, reading.Readers)
		}
		ls.Steps[t].Candidates = cands
	}
	return ls, nil
}

// CacheSize returns the number of distinct reader sets seen so far.
func (m *Model) CacheSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cache)
}
