package prior

import (
	"math"
	"testing"

	"repro/internal/rfid"
)

func entropy(dist []float64) float64 {
	h := 0.0
	for _, p := range dist {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

func TestGroupDistValidation(t *testing.T) {
	m := New(fixture(t), Options{})
	if _, err := m.GroupDist(nil); err != nil {
		// empty group is an error
	} else {
		t.Errorf("empty group accepted")
	}
}

func TestGroupDistSingletonEqualsDist(t *testing.T) {
	m := New(fixture(t), Options{})
	set := rfid.NewSet(0)
	single := m.Dist(set)
	group, err := m.GroupDist([]rfid.Set{set})
	if err != nil {
		t.Fatal(err)
	}
	for loc := range single {
		if single[loc] != group[loc] {
			t.Fatalf("singleton group differs at loc %d", loc)
		}
	}
}

func TestGroupDistSharper(t *testing.T) {
	m := New(fixture(t), Options{})
	// Two members both detected by reader 0 (room A's reader): the joint
	// evidence squares the cell weights, concentrating mass on room A
	// harder than the single observation does.
	single := m.Dist(rfid.NewSet(0))
	group, err := m.GroupDist([]rfid.Set{rfid.NewSet(0), rfid.NewSet(0)})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range group {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("group dist sums to %v", sum)
	}
	if group[0] < single[0]-1e-9 {
		t.Errorf("duplicated evidence weakened room A: group %v vs single %v", group[0], single[0])
	}
	if entropy(group) > entropy(single)+1e-9 {
		t.Errorf("group entropy %v not sharper than single %v", entropy(group), entropy(single))
	}
}

func TestGroupDistIncompatibleFallsBackUniform(t *testing.T) {
	// Two members detected by readers with disjoint coverage: no cell
	// explains both, so the joint distribution falls back to uniform.
	m2 := New(disjointFixture(t), Options{})
	dist, err := m2.GroupDist([]rfid.Set{rfid.NewSet(0), rfid.NewSet(1)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist[0]-0.5) > 1e-9 || math.Abs(dist[1]-0.5) > 1e-9 {
		t.Errorf("incompatible group should be uniform: %v", dist)
	}
}

// disjointFixture builds a plan whose two readers cover disjoint cells.
func disjointFixture(t *testing.T) *rfid.Matrix {
	t.Helper()
	f := fixture(t)
	// Zero out any cell covered by both readers.
	for c := range f.Rates[0] {
		if f.Rates[0][c] > 0 && f.Rates[1][c] > 0 {
			f.Rates[1][c] = 0
		}
	}
	return f
}

func TestGroupDistCaching(t *testing.T) {
	m := New(fixture(t), Options{})
	sets := []rfid.Set{rfid.NewSet(0), rfid.NewSet(1)}
	a, err := m.GroupDist(sets)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.GroupDist(sets)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Errorf("group cache miss")
	}
}

func TestGroupLSequence(t *testing.T) {
	m := New(fixture(t), Options{})
	seqA := rfid.Sequence{
		{Time: 0, Readers: rfid.NewSet(0)},
		{Time: 1, Readers: rfid.NewSet()},
	}
	seqB := rfid.Sequence{
		{Time: 0, Readers: rfid.NewSet(0)},
		{Time: 1, Readers: rfid.NewSet(1)},
	}
	ls, err := m.GroupLSequence([]rfid.Sequence{seqA, seqB})
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Validate(); err != nil {
		t.Fatal(err)
	}
	if ls.Duration() != 2 {
		t.Errorf("duration = %d", ls.Duration())
	}
	// Errors.
	if _, err := m.GroupLSequence(nil); err == nil {
		t.Errorf("empty group accepted")
	}
	if _, err := m.GroupLSequence([]rfid.Sequence{seqA, seqB[:1]}); err == nil {
		t.Errorf("length mismatch accepted")
	}
	if _, err := m.GroupLSequence([]rfid.Sequence{{{Time: 5}}}); err == nil {
		t.Errorf("invalid member accepted")
	}
}
