// Package smurf implements a SMURF-style adaptive smoothing baseline for
// RFID data cleaning, after Jeffery, Garofalakis and Franklin ("Adaptive
// cleaning for RFID data streams", VLDB 2006) — the technique the paper's
// related-work section (§7) identifies as the principal prior approach to
// cleaning RFID readings.
//
// SMURF treats each (tag, reader) pair as an independent binary detection
// stream sampled from a binomial process and smooths it with a sliding
// window whose size adapts per reader:
//
//   - completeness: the window must be long enough that a present tag is
//     detected with probability ≥ 1−δ, i.e. w ≥ ln(1/δ) / p̂ where p̂ is the
//     estimated per-epoch read rate;
//   - responsiveness: when the detection count falls statistically below
//     the binomial expectation (a likely transition), the window shrinks
//     multiplicatively so stale positives fade quickly.
//
// Unlike the paper's conditioning framework, SMURF operates reader by
// reader and knows nothing about the map or the motility of the monitored
// objects: it cannot exploit the spatio-temporal correlations that DU/LT/TT
// constraints encode. The experiment harness uses it as the baseline the
// ct-graph approach is compared against.
package smurf

import (
	"fmt"
	"math"

	"repro/internal/rfid"
)

// Options configures the smoother. The zero value is not valid; use
// DefaultOptions.
type Options struct {
	// Delta is the completeness failure probability δ (default 0.05).
	Delta float64
	// MinWindow and MaxWindow bound the adaptive window size in epochs.
	MinWindow, MaxWindow int
	// MinRate floors the estimated per-epoch read rate so required
	// windows stay finite for weak readers.
	MinRate float64
}

// DefaultOptions returns the standard SMURF parameters.
func DefaultOptions() Options {
	return Options{Delta: 0.05, MinWindow: 1, MaxWindow: 25, MinRate: 0.1}
}

func (o Options) validate() error {
	if o.Delta <= 0 || o.Delta >= 1 {
		return fmt.Errorf("smurf: delta must be in (0,1), got %g", o.Delta)
	}
	if o.MinWindow < 1 || o.MaxWindow < o.MinWindow {
		return fmt.Errorf("smurf: bad window bounds [%d, %d]", o.MinWindow, o.MaxWindow)
	}
	if o.MinRate <= 0 || o.MinRate > 1 {
		return fmt.Errorf("smurf: min rate must be in (0,1], got %g", o.MinRate)
	}
	return nil
}

// Smooth cleans a reading sequence reader by reader: the returned sequence
// reports reader r as detecting at epoch t when r's adaptive window ending
// at t contains at least one raw detection. readerIDs lists every reader
// that should be smoothed (readers absent from it pass through untouched —
// they can never appear in the output since they never appear in the input).
func Smooth(seq rfid.Sequence, readerIDs []int, opts Options) (rfid.Sequence, error) {
	if err := seq.Validate(); err != nil {
		return nil, err
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := seq.Duration()
	present := make([][]bool, n) // per epoch: smoothed presence per reader index
	for t := range present {
		present[t] = make([]bool, len(readerIDs))
	}
	for ri, id := range readerIDs {
		smoothOne(seq, id, opts, func(t int) { present[t][ri] = true })
	}
	out := make(rfid.Sequence, n)
	for t := 0; t < n; t++ {
		var ids []int
		for ri, on := range present[t] {
			if on {
				ids = append(ids, readerIDs[ri])
			}
		}
		out[t] = rfid.Reading{Time: t, Readers: rfid.NewSet(ids...)}
	}
	return out, nil
}

// smoothOne runs the adaptive window over one reader's binary stream,
// invoking mark(t) for every epoch at which the smoothed stream reports the
// tag as read by the reader.
func smoothOne(seq rfid.Sequence, readerID int, opts Options, mark func(int)) {
	w := opts.MinWindow
	// pEst is the running estimate of the per-epoch read rate while the
	// tag is in range (SMURF obtains this from the reader hardware's
	// response rates; we estimate it from the observed stream with an
	// exponential moving average updated only while detections arrive).
	pEst := math.Max(opts.MinRate, 0.5)
	for t := 0; t < seq.Duration(); t++ {
		start := t - w + 1
		if start < 0 {
			start = 0
		}
		count := 0
		for u := start; u <= t; u++ {
			if seq[u].Readers.Contains(readerID) {
				count++
			}
		}
		effLen := t - start + 1
		if count > 0 {
			mark(t)
			pEst = 0.9*pEst + 0.1*float64(count)/float64(effLen)
			if pEst < opts.MinRate {
				pEst = opts.MinRate
			}
		}
		// Completeness: the window a present tag needs to be caught
		// with probability >= 1-delta under the binomial model.
		required := int(math.Ceil(math.Log(1/opts.Delta) / pEst))
		if required > opts.MaxWindow {
			required = opts.MaxWindow
		}
		if required < opts.MinWindow {
			required = opts.MinWindow
		}
		// Transition detection: an observed count statistically below
		// the binomial expectation for a present tag signals that the
		// tag has likely left the reader's range; shrink to respond.
		mean := float64(effLen) * pEst
		sd := math.Sqrt(float64(effLen) * pEst * (1 - pEst))
		if count > 0 && float64(count) < mean-2*sd {
			w /= 2
			if w < opts.MinWindow {
				w = opts.MinWindow
			}
			continue
		}
		// Otherwise grow additively toward the completeness window.
		if w < required {
			w += 2
			if w > required {
				w = required
			}
		} else if w > required {
			w--
		}
	}
}
