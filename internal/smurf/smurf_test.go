package smurf

import (
	"testing"

	"repro/internal/rfid"
	"repro/internal/stats"
)

// seqFromBits builds a single-reader sequence from a 0/1 string.
func seqFromBits(bits string) rfid.Sequence {
	seq := make(rfid.Sequence, len(bits))
	for i, b := range bits {
		r := rfid.NewSet()
		if b == '1' {
			r = rfid.NewSet(0)
		}
		seq[i] = rfid.Reading{Time: i, Readers: r}
	}
	return seq
}

func detections(seq rfid.Sequence, reader int) string {
	out := make([]byte, len(seq))
	for i, r := range seq {
		if r.Readers.Contains(reader) {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{},
		{Delta: 1.5, MinWindow: 1, MaxWindow: 5, MinRate: 0.1},
		{Delta: 0.05, MinWindow: 0, MaxWindow: 5, MinRate: 0.1},
		{Delta: 0.05, MinWindow: 5, MaxWindow: 1, MinRate: 0.1},
		{Delta: 0.05, MinWindow: 1, MaxWindow: 5, MinRate: 0},
	}
	seq := seqFromBits("101")
	for i, o := range bad {
		if _, err := Smooth(seq, []int{0}, o); err == nil {
			t.Errorf("options %d accepted", i)
		}
	}
	if _, err := Smooth(rfid.Sequence{{Time: 3}}, []int{0}, DefaultOptions()); err == nil {
		t.Errorf("invalid sequence accepted")
	}
}

func TestSmoothFillsGaps(t *testing.T) {
	// A present tag with intermittent misses: smoothing must fill the
	// holes between detections.
	raw := "1101011011101101"
	smoothed, err := Smooth(seqFromBits(raw), []int{0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := detections(smoothed, 0)
	zeros := 0
	for _, b := range got[1:] { // first epoch may have no history
		if b == '0' {
			zeros++
		}
	}
	if zeros > 0 {
		t.Errorf("gaps not filled: raw %s -> %s", raw, got)
	}
}

func TestSmoothPreservesAbsence(t *testing.T) {
	// A tag never seen by the reader must never be reported.
	smoothed, err := Smooth(seqFromBits("0000000000"), []int{0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range smoothed {
		if !r.Readers.IsEmpty() {
			t.Fatalf("phantom detection: %v", smoothed)
		}
	}
}

func TestSmoothRespondsToDeparture(t *testing.T) {
	// Strong presence followed by a long absence: the smoothed stream must
	// stop reporting the tag within MaxWindow epochs of the departure.
	raw := "11111111110000000000000000000000000000"
	opts := DefaultOptions()
	smoothed, err := Smooth(seqFromBits(raw), []int{0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := detections(smoothed, 0)
	lastReported := -1
	for i, b := range got {
		if b == '1' {
			lastReported = i
		}
	}
	if lastReported < 9 {
		t.Fatalf("presence not reported at all: %s", got)
	}
	if lastReported >= 10+opts.MaxWindow {
		t.Errorf("departure reported too late (epoch %d): %s", lastReported, got)
	}
}

func TestSmoothMultipleReaders(t *testing.T) {
	// Two readers with complementary coverage stay independent.
	seq := rfid.Sequence{
		{Time: 0, Readers: rfid.NewSet(0)},
		{Time: 1, Readers: rfid.NewSet(0)},
		{Time: 2, Readers: rfid.NewSet(1)},
		{Time: 3, Readers: rfid.NewSet(1)},
	}
	smoothed, err := Smooth(seq, []int{0, 1}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !smoothed[0].Readers.Contains(0) || smoothed[0].Readers.Contains(1) {
		t.Errorf("epoch 0 wrong: %v", smoothed[0].Readers)
	}
	if !smoothed[3].Readers.Contains(1) {
		t.Errorf("epoch 3 wrong: %v", smoothed[3].Readers)
	}
}

func TestSmoothImprovesDetectionRecall(t *testing.T) {
	// Statistical sanity: under a lossy channel (40% per-epoch read rate)
	// the smoothed stream recovers most of the presence epochs while
	// keeping false positives bounded by the window length after the
	// departure.
	rng := stats.NewRNG(99)
	const present = 200
	const absent = 100
	bits := make([]byte, present+absent)
	truePresent := 0
	for i := 0; i < present; i++ {
		if rng.Bernoulli(0.4) {
			bits[i] = '1'
		} else {
			bits[i] = '0'
		}
		truePresent++
	}
	for i := present; i < present+absent; i++ {
		bits[i] = '0'
	}
	smoothed, err := Smooth(seqFromBits(string(bits)), []int{0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := detections(smoothed, 0)
	recovered := 0
	for i := 0; i < present; i++ {
		if got[i] == '1' {
			recovered++
		}
	}
	recall := float64(recovered) / float64(truePresent)
	if recall < 0.9 {
		t.Errorf("recall = %v, want >= 0.9", recall)
	}
	falseTail := 0
	for i := present + DefaultOptions().MaxWindow; i < present+absent; i++ {
		if got[i] == '1' {
			falseTail++
		}
	}
	if falseTail > 0 {
		t.Errorf("%d false positives beyond the window after departure", falseTail)
	}
}
