package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
	if !almostEq(Pt(3, 4).Norm(), 5) {
		t.Errorf("Norm = %v", Pt(3, 4).Norm())
	}
	if !almostEq(Pt(0, 0).Dist(Pt(3, 4)), 5) {
		t.Errorf("Dist wrong")
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestSegmentLengthMidpoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(6, 8))
	if !almostEq(s.Length(), 10) {
		t.Errorf("Length = %v", s.Length())
	}
	if s.Midpoint() != Pt(3, 4) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		name string
		s, u Segment
		want bool
	}{
		{"crossing", Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0)), true},
		{"parallel", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(0, 1), Pt(2, 1)), false},
		{"touching endpoint", Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(1, 1), Pt(2, 0)), true},
		{"collinear overlap", Seg(Pt(0, 0), Pt(3, 0)), Seg(Pt(2, 0), Pt(5, 0)), true},
		{"collinear disjoint", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(2, 0), Pt(3, 0)), false},
		{"T junction", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, -1), Pt(2, 0)), true},
		{"near miss", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, 0.001), Pt(2, 1)), false},
		{"disjoint diagonal", Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(3, 3), Pt(4, 5)), false},
	}
	for _, c := range cases {
		if got := c.s.Intersects(c.u); got != c.want {
			t.Errorf("%s: Intersects = %v, want %v", c.name, got, c.want)
		}
		// Intersection is symmetric.
		if got := c.u.Intersects(c.s); got != c.want {
			t.Errorf("%s (swapped): Intersects = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	if d := s.DistToPoint(Pt(5, 3)); !almostEq(d, 3) {
		t.Errorf("interior projection: %v", d)
	}
	if d := s.DistToPoint(Pt(-3, 4)); !almostEq(d, 5) {
		t.Errorf("before A: %v", d)
	}
	if d := s.DistToPoint(Pt(13, 4)); !almostEq(d, 5) {
		t.Errorf("past B: %v", d)
	}
	// Degenerate segment behaves like a point.
	d := Seg(Pt(1, 1), Pt(1, 1)).DistToPoint(Pt(4, 5))
	if !almostEq(d, 5) {
		t.Errorf("degenerate: %v", d)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(4, 6), Pt(1, 2)) // corners given out of order
	if r.Min != Pt(1, 2) || r.Max != Pt(4, 6) {
		t.Fatalf("normalize: %v", r)
	}
	if !almostEq(r.Width(), 3) || !almostEq(r.Height(), 4) || !almostEq(r.Area(), 12) {
		t.Errorf("dims wrong: %v %v %v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != Pt(2.5, 4) {
		t.Errorf("center = %v", r.Center())
	}
	if !r.Contains(Pt(1, 2)) || !r.Contains(Pt(2, 3)) || r.Contains(Pt(0, 0)) {
		t.Errorf("contains wrong")
	}
	if r.ContainsStrict(Pt(1, 2)) || !r.ContainsStrict(Pt(2, 3)) {
		t.Errorf("strict contains wrong")
	}
}

func TestRectOverlaps(t *testing.T) {
	a := RectWH(0, 0, 2, 2)
	if !a.Overlaps(RectWH(1, 1, 2, 2)) {
		t.Errorf("overlapping rects not detected")
	}
	if a.Overlaps(RectWH(2, 0, 2, 2)) {
		t.Errorf("edge-sharing rects should not overlap (no shared interior)")
	}
	if a.Overlaps(RectWH(5, 5, 1, 1)) {
		t.Errorf("disjoint rects overlap")
	}
}

func TestRectClampInsetUnion(t *testing.T) {
	r := RectWH(0, 0, 10, 10)
	if got := r.Clamp(Pt(-5, 3)); got != Pt(0, 3) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Clamp(Pt(4, 12)); got != Pt(4, 10) {
		t.Errorf("Clamp = %v", got)
	}
	in := r.Inset(2)
	if in.Min != Pt(2, 2) || in.Max != Pt(8, 8) {
		t.Errorf("Inset = %v", in)
	}
	collapsed := RectWH(0, 0, 1, 1).Inset(3)
	if collapsed.Width() != 0 || collapsed.Height() != 0 {
		t.Errorf("over-inset should collapse, got %v", collapsed)
	}
	u := r.Union(RectWH(8, 8, 5, 5))
	if u.Min != Pt(0, 0) || u.Max != Pt(13, 13) {
		t.Errorf("Union = %v", u)
	}
}

func TestRectEdges(t *testing.T) {
	r := RectWH(0, 0, 2, 3)
	edges := r.Edges()
	total := 0.0
	for _, e := range edges {
		total += e.Length()
	}
	if !almostEq(total, 10) {
		t.Errorf("perimeter = %v", total)
	}
}

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(RectWH(0, 0, 1, 1), 0); err == nil {
		t.Errorf("zero cell size accepted")
	}
	if _, err := NewGrid(RectWH(0, 0, 1, 1), -1); err == nil {
		t.Errorf("negative cell size accepted")
	}
	if _, err := NewGrid(Rect{}, 0.5); err == nil {
		t.Errorf("empty region accepted")
	}
}

func TestGridIndexing(t *testing.T) {
	g, err := NewGrid(RectWH(0, 0, 2, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cols != 4 || g.Rows != 2 {
		t.Fatalf("dims = %dx%d", g.Cols, g.Rows)
	}
	if g.NumCells() != 8 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	if idx := g.CellIndex(Pt(0.1, 0.1)); idx != 0 {
		t.Errorf("bottom-left cell = %d", idx)
	}
	if idx := g.CellIndex(Pt(1.9, 0.9)); idx != 7 {
		t.Errorf("top-right cell = %d", idx)
	}
	if idx := g.CellIndex(Pt(5, 5)); idx != -1 {
		t.Errorf("outside point got cell %d", idx)
	}
	// Boundary point must clamp into the last cell, not fall off.
	if idx := g.CellIndex(Pt(2, 1)); idx != 7 {
		t.Errorf("max corner cell = %d", idx)
	}
}

func TestGridRoundTrip(t *testing.T) {
	g, err := NewGrid(RectWH(-3, 2, 4.6, 3.2), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < g.NumCells(); idx++ {
		c := g.CellCenter(idx)
		got := g.CellIndex(c)
		if got != idx {
			t.Fatalf("cell %d center %v maps to %d", idx, c, got)
		}
		if !g.CellRect(idx).Contains(c) {
			t.Fatalf("cell %d rect does not contain its center", idx)
		}
	}
}

func TestGridCellsIn(t *testing.T) {
	g, err := NewGrid(RectWH(0, 0, 2, 2), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cells := g.CellsIn(RectWH(0, 0, 1, 1))
	if len(cells) != 4 {
		t.Errorf("CellsIn 1x1 = %d cells, want 4", len(cells))
	}
	all := g.CellsIn(g.Region)
	if len(all) != g.NumCells() {
		t.Errorf("CellsIn region = %d, want %d", len(all), g.NumCells())
	}
}

func TestGridNeighbors(t *testing.T) {
	g, err := NewGrid(RectWH(0, 0, 1.5, 1.5), 0.5) // 3x3
	if err != nil {
		t.Fatal(err)
	}
	center := 4
	n4 := g.Neighbors4(center, nil)
	if len(n4) != 4 {
		t.Errorf("center Neighbors4 = %v", n4)
	}
	n8 := g.Neighbors8(center, nil)
	if len(n8) != 8 {
		t.Errorf("center Neighbors8 = %v", n8)
	}
	corner := 0
	if n := g.Neighbors4(corner, nil); len(n) != 2 {
		t.Errorf("corner Neighbors4 = %v", n)
	}
	if n := g.Neighbors8(corner, nil); len(n) != 3 {
		t.Errorf("corner Neighbors8 = %v", n)
	}
}

func TestPropertyDistSymmetricAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(clampF(ax), clampF(ay)), Pt(clampF(bx), clampF(by)), Pt(clampF(cx), clampF(cy))
		if a.Dist(b) != b.Dist(a) {
			return false
		}
		// Triangle inequality with slack for float error.
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyGridRoundTrip(t *testing.T) {
	g, err := NewGrid(RectWH(0, 0, 7, 5), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y float64) bool {
		p := Pt(math.Mod(math.Abs(x), 7), math.Mod(math.Abs(y), 5))
		idx := g.CellIndex(p)
		if idx < 0 {
			return false
		}
		// The reported cell rect must contain p (up to eps slack on edges).
		r := g.CellRect(idx)
		grown := Rect{Min: r.Min.Add(Pt(-1e-6, -1e-6)), Max: r.Max.Add(Pt(1e-6, 1e-6))}
		return grown.Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampF maps arbitrary float64s (incl. NaN/Inf from quick) into a sane range.
func clampF(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}
