// Package geom provides the small 2-D geometry substrate used by the
// floor-plan model, the RFID detection model and the synthetic data
// generator: points, segments, axis-aligned rectangles, and a uniform grid
// partitioning of a rectangular region into square cells.
//
// All coordinates are in meters. The package is intentionally minimal and
// allocation-conscious: everything is a value type.
package geom

import (
	"fmt"
	"math"
)

// Point is a point in the plane, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p seen as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3g, %.3g)", p.X, p.Y) }

// Lerp returns the point p + t·(q−p).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the midpoint of s.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// At returns the point A + t·(B−A).
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

const eps = 1e-9

// Intersects reports whether segments s and t share at least one point.
// Collinear overlapping segments intersect; touching at endpoints counts.
func (s Segment) Intersects(t Segment) bool {
	d1 := direction(t.A, t.B, s.A)
	d2 := direction(t.A, t.B, s.B)
	d3 := direction(s.A, s.B, t.A)
	d4 := direction(s.A, s.B, t.B)
	if ((d1 > eps && d2 < -eps) || (d1 < -eps && d2 > eps)) &&
		((d3 > eps && d4 < -eps) || (d3 < -eps && d4 > eps)) {
		return true
	}
	switch {
	case math.Abs(d1) <= eps && onSegment(t.A, t.B, s.A):
		return true
	case math.Abs(d2) <= eps && onSegment(t.A, t.B, s.B):
		return true
	case math.Abs(d3) <= eps && onSegment(s.A, s.B, t.A):
		return true
	case math.Abs(d4) <= eps && onSegment(s.A, s.B, t.B):
		return true
	}
	return false
}

// direction returns the orientation of point p relative to the directed line
// a→b: positive when p is to the left, negative to the right, ~0 collinear.
func direction(a, b, p Point) float64 {
	return b.Sub(a).Cross(p.Sub(a))
}

// onSegment reports whether collinear point p lies within the bounding box of
// segment a–b.
func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X)-eps <= p.X && p.X <= math.Max(a.X, b.X)+eps &&
		math.Min(a.Y, b.Y)-eps <= p.Y && p.Y <= math.Max(a.Y, b.Y)+eps
}

// DistToPoint returns the distance from point p to the segment s.
func (s Segment) DistToPoint(p Point) float64 {
	ab := s.B.Sub(s.A)
	den := ab.Dot(ab)
	if den <= eps {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(ab) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(s.At(t))
}

// Rect is an axis-aligned rectangle. Min is the corner with the smallest
// coordinates, Max the one with the largest. A Rect with Min == Max is empty.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanned by the two corner points, normalizing
// the corner order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// RectWH returns the rectangle with minimum corner (x, y), width w and
// height h.
func RectWH(x, y, w, h float64) Rect {
	return NewRect(Pt(x, y), Pt(x+w, y+h))
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (boundary included).
func (r Rect) Contains(p Point) bool {
	return r.Min.X-eps <= p.X && p.X <= r.Max.X+eps &&
		r.Min.Y-eps <= p.Y && p.Y <= r.Max.Y+eps
}

// ContainsStrict reports whether p lies strictly inside r.
func (r Rect) ContainsStrict(p Point) bool {
	return r.Min.X+eps < p.X && p.X < r.Max.X-eps &&
		r.Min.Y+eps < p.Y && p.Y < r.Max.Y-eps
}

// Overlaps reports whether r and q share interior area.
func (r Rect) Overlaps(q Rect) bool {
	return r.Min.X < q.Max.X-eps && q.Min.X < r.Max.X-eps &&
		r.Min.Y < q.Max.Y-eps && q.Min.Y < r.Max.Y-eps
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(p.X, r.Max.X)),
		Y: math.Max(r.Min.Y, math.Min(p.Y, r.Max.Y)),
	}
}

// Inset returns r shrunk by d on every side. If r is too small the result
// collapses to its center.
func (r Rect) Inset(d float64) Rect {
	out := Rect{
		Min: Point{r.Min.X + d, r.Min.Y + d},
		Max: Point{r.Max.X - d, r.Max.Y - d},
	}
	if out.Min.X > out.Max.X {
		c := r.Center().X
		out.Min.X, out.Max.X = c, c
	}
	if out.Min.Y > out.Max.Y {
		c := r.Center().Y
		out.Min.Y, out.Max.Y = c, c
	}
	return out
}

// Edges returns the four boundary segments of r in counterclockwise order
// starting from the bottom edge.
func (r Rect) Edges() [4]Segment {
	bl := r.Min
	br := Pt(r.Max.X, r.Min.Y)
	tr := r.Max
	tl := Pt(r.Min.X, r.Max.Y)
	return [4]Segment{Seg(bl, br), Seg(br, tr), Seg(tr, tl), Seg(tl, bl)}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

// Union returns the smallest rectangle containing both r and q.
func (r Rect) Union(q Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, q.Min.X), math.Min(r.Min.Y, q.Min.Y)},
		Max: Point{math.Max(r.Max.X, q.Max.X), math.Max(r.Max.Y, q.Max.Y)},
	}
}
