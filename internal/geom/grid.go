package geom

import "fmt"

// Grid partitions a rectangular region into square cells of a fixed size,
// mirroring the paper's 0.5 m × 0.5 m partitioning of each floor map (§6.2).
// Cells are indexed row-major: index = row*Cols + col, with row 0 at the
// bottom (minimum Y) of the region.
type Grid struct {
	// Region is the rectangle being partitioned.
	Region Rect
	// CellSize is the side length of each square cell in meters.
	CellSize float64
	// Cols and Rows are the number of cells along X and Y.
	Cols, Rows int
}

// NewGrid partitions region into square cells of the given size. The region
// extent is covered completely: the last row/column may extend past the
// region boundary when the extent is not an exact multiple of cellSize.
func NewGrid(region Rect, cellSize float64) (*Grid, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("geom: cell size must be positive, got %g", cellSize)
	}
	if region.Width() <= 0 || region.Height() <= 0 {
		return nil, fmt.Errorf("geom: grid region %v has no area", region)
	}
	cols := int((region.Width() + cellSize - eps) / cellSize)
	rows := int((region.Height() + cellSize - eps) / cellSize)
	if cols == 0 {
		cols = 1
	}
	if rows == 0 {
		rows = 1
	}
	return &Grid{Region: region, CellSize: cellSize, Cols: cols, Rows: rows}, nil
}

// NumCells returns the total number of cells in the grid.
func (g *Grid) NumCells() int { return g.Cols * g.Rows }

// Extent returns the full rectangle covered by the grid cells, which may
// extend slightly past Region when the region size is not an exact multiple
// of the cell size.
func (g *Grid) Extent() Rect {
	return RectWH(g.Region.Min.X, g.Region.Min.Y,
		float64(g.Cols)*g.CellSize, float64(g.Rows)*g.CellSize)
}

// CellIndex returns the index of the cell containing p, or -1 when p lies
// outside the grid extent.
func (g *Grid) CellIndex(p Point) int {
	if !g.Extent().Contains(p) {
		return -1
	}
	col := int((p.X - g.Region.Min.X) / g.CellSize)
	row := int((p.Y - g.Region.Min.Y) / g.CellSize)
	if col >= g.Cols {
		col = g.Cols - 1
	}
	if row >= g.Rows {
		row = g.Rows - 1
	}
	if col < 0 {
		col = 0
	}
	if row < 0 {
		row = 0
	}
	return row*g.Cols + col
}

// CellRect returns the rectangle of the cell with the given index.
func (g *Grid) CellRect(idx int) Rect {
	row, col := idx/g.Cols, idx%g.Cols
	x := g.Region.Min.X + float64(col)*g.CellSize
	y := g.Region.Min.Y + float64(row)*g.CellSize
	return RectWH(x, y, g.CellSize, g.CellSize)
}

// CellCenter returns the center point of the cell with the given index.
func (g *Grid) CellCenter(idx int) Point { return g.CellRect(idx).Center() }

// CellsIn returns the indices of all cells whose center lies inside r.
func (g *Grid) CellsIn(r Rect) []int {
	var out []int
	for idx := 0; idx < g.NumCells(); idx++ {
		if r.Contains(g.CellCenter(idx)) {
			out = append(out, idx)
		}
	}
	return out
}

// Neighbors4 appends to dst the indices of the 4-connected neighbors of idx
// and returns the extended slice.
func (g *Grid) Neighbors4(idx int, dst []int) []int {
	row, col := idx/g.Cols, idx%g.Cols
	if col > 0 {
		dst = append(dst, idx-1)
	}
	if col < g.Cols-1 {
		dst = append(dst, idx+1)
	}
	if row > 0 {
		dst = append(dst, idx-g.Cols)
	}
	if row < g.Rows-1 {
		dst = append(dst, idx+g.Cols)
	}
	return dst
}

// Neighbors8 appends to dst the indices of the 8-connected neighbors of idx
// and returns the extended slice.
func (g *Grid) Neighbors8(idx int, dst []int) []int {
	row, col := idx/g.Cols, idx%g.Cols
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			r, c := row+dr, col+dc
			if r < 0 || r >= g.Rows || c < 0 || c >= g.Cols {
				continue
			}
			dst = append(dst, r*g.Cols+c)
		}
	}
	return dst
}
