package floorplan

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// twoRooms builds the simplest plan: two 4x4 rooms side by side sharing a
// wall at x=4 with a 1 m door in the middle.
func twoRooms(t *testing.T) *Plan {
	t.Helper()
	b := NewBuilder()
	a := b.AddLocation("A", Room, 0, geom.RectWH(0, 0, 4, 4))
	c := b.AddLocation("B", Room, 0, geom.RectWH(4, 0, 4, 4))
	b.AddDoor(a, c, geom.Pt(4, 2), 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// corridorPlan builds one floor in the style of the paper's Fig. 1(a):
// a corridor with three rooms above it, connected only through the corridor.
//
//	+----+----+----+
//	| R0 | R1 | R2 |   rooms y in [2,6]
//	+-d0-+-d1-+-d2-+
//	|   corridor   |   y in [0,2]
//	+----+----+----+
func corridorPlan(t *testing.T) *Plan {
	t.Helper()
	b := NewBuilder()
	cor := b.AddLocation("corridor", Corridor, 0, geom.RectWH(0, 0, 12, 2))
	r0 := b.AddLocation("R0", Room, 0, geom.RectWH(0, 2, 4, 4))
	r1 := b.AddLocation("R1", Room, 0, geom.RectWH(4, 2, 4, 4))
	r2 := b.AddLocation("R2", Room, 0, geom.RectWH(8, 2, 4, 4))
	b.AddDoor(cor, r0, geom.Pt(2, 2), 1)
	b.AddDoor(cor, r1, geom.Pt(6, 2), 1)
	b.AddDoor(cor, r2, geom.Pt(10, 2), 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Errorf("empty plan accepted")
	}

	b := NewBuilder()
	b.AddLocation("A", Room, 0, geom.RectWH(0, 0, 4, 4))
	b.AddLocation("A", Room, 0, geom.RectWH(10, 0, 4, 4))
	if _, err := b.Build(); err == nil {
		t.Errorf("duplicate names accepted")
	}

	b = NewBuilder()
	b.AddLocation("A", Room, 0, geom.RectWH(0, 0, 4, 4))
	b.AddLocation("B", Room, 0, geom.RectWH(2, 2, 4, 4))
	if _, err := b.Build(); err == nil {
		t.Errorf("overlapping rooms accepted")
	}

	b = NewBuilder()
	b.AddLocation("A", Room, 0, geom.Rect{})
	if _, err := b.Build(); err == nil {
		t.Errorf("zero-area location accepted")
	}

	b = NewBuilder()
	a := b.AddLocation("A", Room, 0, geom.RectWH(0, 0, 4, 4))
	b.AddDoor(a, a, geom.Pt(0, 0), 1)
	if _, err := b.Build(); err == nil {
		t.Errorf("self-door accepted")
	}

	b = NewBuilder()
	a = b.AddLocation("A", Room, 0, geom.RectWH(0, 0, 4, 4))
	c := b.AddLocation("B", Room, 1, geom.RectWH(0, 0, 4, 4))
	b.AddDoor(a, c, geom.Pt(0, 0), 1)
	if _, err := b.Build(); err == nil {
		t.Errorf("cross-floor door (not stairs) accepted")
	}

	b = NewBuilder()
	a = b.AddLocation("A", Room, 0, geom.RectWH(0, 0, 4, 4))
	b.AddDoor(a, 7, geom.Pt(0, 0), 1)
	if _, err := b.Build(); err == nil {
		t.Errorf("dangling door accepted")
	}
}

func TestLocationAt(t *testing.T) {
	p := twoRooms(t)
	if got := p.LocationAt(0, geom.Pt(1, 1)); got != 0 {
		t.Errorf("LocationAt(1,1) = %d", got)
	}
	if got := p.LocationAt(0, geom.Pt(5, 1)); got != 1 {
		t.Errorf("LocationAt(5,1) = %d", got)
	}
	if got := p.LocationAt(0, geom.Pt(20, 20)); got != -1 {
		t.Errorf("LocationAt outside = %d", got)
	}
	if got := p.LocationAt(1, geom.Pt(1, 1)); got != -1 {
		t.Errorf("LocationAt wrong floor = %d", got)
	}
	// Boundary point belongs to some location (not -1).
	if got := p.LocationAt(0, geom.Pt(4, 2)); got == -1 {
		t.Errorf("boundary point in no location")
	}
}

func TestLocationByName(t *testing.T) {
	p := twoRooms(t)
	l, ok := p.LocationByName("B")
	if !ok || l.ID != 1 {
		t.Errorf("LocationByName(B) = %+v, %v", l, ok)
	}
	if _, ok := p.LocationByName("nope"); ok {
		t.Errorf("unknown name found")
	}
}

func TestDirectlyConnected(t *testing.T) {
	p := corridorPlan(t)
	cor, _ := p.LocationByName("corridor")
	r0, _ := p.LocationByName("R0")
	r1, _ := p.LocationByName("R1")
	if !p.DirectlyConnected(cor.ID, r0.ID) || !p.DirectlyConnected(r0.ID, cor.ID) {
		t.Errorf("corridor-R0 should be connected")
	}
	if p.DirectlyConnected(r0.ID, r1.ID) {
		t.Errorf("R0-R1 should not be directly connected")
	}
	if !p.DirectlyConnected(r1.ID, r1.ID) {
		t.Errorf("a location is always connected to itself")
	}
}

func TestMinWalkDistance(t *testing.T) {
	p := corridorPlan(t)
	r0, _ := p.LocationByName("R0")
	r1, _ := p.LocationByName("R1")
	r2, _ := p.LocationByName("R2")
	cor, _ := p.LocationByName("corridor")

	if d := p.MinWalkDistance(r0.ID, r0.ID); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if d := p.MinWalkDistance(r0.ID, cor.ID); d != 0 {
		t.Errorf("adjacent distance = %v", d)
	}
	// R0 and R1 doors are at (2,2) and (6,2): distance 4 through corridor.
	if d := p.MinWalkDistance(r0.ID, r1.ID); math.Abs(d-4) > 1e-9 {
		t.Errorf("R0-R1 distance = %v, want 4", d)
	}
	if d := p.MinWalkDistance(r0.ID, r2.ID); math.Abs(d-8) > 1e-9 {
		t.Errorf("R0-R2 distance = %v, want 8", d)
	}
	// Symmetry.
	if p.MinWalkDistance(r2.ID, r0.ID) != p.MinWalkDistance(r0.ID, r2.ID) {
		t.Errorf("distance not symmetric")
	}
}

func TestMinWalkDistanceUnreachable(t *testing.T) {
	b := NewBuilder()
	a := b.AddLocation("A", Room, 0, geom.RectWH(0, 0, 4, 4))
	c := b.AddLocation("B", Room, 0, geom.RectWH(10, 0, 4, 4))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if d := p.MinWalkDistance(a, c); !math.IsInf(d, 1) {
		t.Errorf("unreachable distance = %v, want +Inf", d)
	}
}

func TestStairsDistance(t *testing.T) {
	b := NewBuilder()
	s0 := b.AddLocation("stairs0", Stairwell, 0, geom.RectWH(0, 0, 2, 2))
	s1 := b.AddLocation("stairs1", Stairwell, 1, geom.RectWH(0, 0, 2, 2))
	r0 := b.AddLocation("room0", Room, 0, geom.RectWH(2, 0, 4, 2))
	r1 := b.AddLocation("room1", Room, 1, geom.RectWH(2, 0, 4, 2))
	b.AddDoor(s0, r0, geom.Pt(2, 1), 1)
	b.AddDoor(s1, r1, geom.Pt(2, 1), 1)
	b.AddStairs(s0, s1, geom.Pt(1, 1), geom.Pt(1, 1), 5)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// room0 -> room1: door (2,1) -> landing (1,1) is 1m, stairs 5m,
	// landing -> door (2,1) is 1m. Total 7.
	if d := p.MinWalkDistance(r0, r1); math.Abs(d-7) > 1e-9 {
		t.Errorf("cross-floor distance = %v, want 7", d)
	}
	if !p.DirectlyConnected(s0, s1) {
		t.Errorf("stairwells joined by stairs should be directly connected")
	}
}

func TestWallsHaveDoorGaps(t *testing.T) {
	p := twoRooms(t)
	// The shared wall at x=4 must be split by the 1m door at y in [1.5,2.5].
	blocked := p.WallsBetween(0, geom.Pt(3, 0.5), geom.Pt(5, 0.5))
	if blocked == 0 {
		t.Errorf("ray through solid wall crossed no walls")
	}
	through := p.WallsBetween(0, geom.Pt(3, 2), geom.Pt(5, 2))
	if through != 0 {
		t.Errorf("ray through the door crossed %d walls, want 0", through)
	}
}

func TestWallsSharedEdgeCountsOnce(t *testing.T) {
	p := twoRooms(t)
	// A ray through the shared wall (away from the door) crosses exactly
	// one wall, not two, because the shared edge is merged.
	n := p.WallsBetween(0, geom.Pt(3.5, 0.5), geom.Pt(4.5, 0.5))
	if n != 1 {
		t.Errorf("shared wall counted %d times, want 1", n)
	}
}

func TestWallsWithinRoom(t *testing.T) {
	p := twoRooms(t)
	if n := p.WallsBetween(0, geom.Pt(0.5, 0.5), geom.Pt(3.5, 3.5)); n != 0 {
		t.Errorf("ray inside room crossed %d walls", n)
	}
}

func TestOutlineAndFloors(t *testing.T) {
	p := corridorPlan(t)
	if p.NumFloors() != 1 {
		t.Errorf("floors = %d", p.NumFloors())
	}
	o := p.Outline()
	if o.Min != geom.Pt(0, 0) || o.Max != geom.Pt(12, 6) {
		t.Errorf("outline = %v", o)
	}
	if p.NumLocations() != 4 {
		t.Errorf("locations = %d", p.NumLocations())
	}
}

func TestDoorAccessors(t *testing.T) {
	p := twoRooms(t)
	d := p.Door(0)
	if d.Other(0) != 1 || d.Other(1) != 0 || d.Other(5) != -1 {
		t.Errorf("Other wrong: %+v", d)
	}
	if d.PosIn(0) != d.PosA || d.PosIn(1) != d.PosB {
		t.Errorf("PosIn wrong")
	}
	if len(p.DoorsOf(0)) != 1 || len(p.DoorsOf(1)) != 1 {
		t.Errorf("DoorsOf wrong")
	}
}

func TestKindString(t *testing.T) {
	if Room.String() != "room" || Corridor.String() != "corridor" || Stairwell.String() != "stairwell" {
		t.Errorf("kind strings wrong")
	}
	if Kind(99).String() == "" {
		t.Errorf("unknown kind has empty string")
	}
}

func TestIntervalHelpers(t *testing.T) {
	merged := mergeIntervals([][2]float64{{0, 2}, {1, 3}, {5, 6}})
	if len(merged) != 2 || merged[0] != [2]float64{0, 3} || merged[1] != [2]float64{5, 6} {
		t.Errorf("mergeIntervals = %v", merged)
	}
	sub := subtractIntervals([][2]float64{{0, 10}}, [][2]float64{{2, 3}, {5, 7}})
	want := [][2]float64{{0, 2}, {3, 5}, {7, 10}}
	if len(sub) != len(want) {
		t.Fatalf("subtractIntervals = %v", sub)
	}
	for i := range want {
		if sub[i] != want[i] {
			t.Errorf("subtractIntervals[%d] = %v, want %v", i, sub[i], want[i])
		}
	}
	// Gap covering the whole span removes it.
	if got := subtractIntervals([][2]float64{{1, 2}}, [][2]float64{{0, 5}}); len(got) != 0 {
		t.Errorf("fully covered span not removed: %v", got)
	}
}
