// Package floorplan models the maps of locations the paper's framework
// reasons about: multi-floor buildings made of axis-aligned rectangular
// locations (rooms, corridors, stairwells) connected by doors and stairs.
//
// The package answers the two questions the cleaning framework asks of a map
// (§3, §6.3 and footnote 1 of the paper):
//
//   - which pairs of locations are directly connected (the complement yields
//     the direct-unreachability constraints), and
//   - what is the minimum walking distance between two locations (which,
//     divided by the objects' maximum speed, yields the traveling-time
//     constraints).
//
// It also supplies the physical detail needed by the RFID substrate and the
// synthetic generator: wall segments (for signal attenuation), door passage
// points (for movement), and point-in-location tests (for ground truth).
package floorplan

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Kind classifies a location.
type Kind int

// Location kinds.
const (
	Room Kind = iota
	Corridor
	Stairwell
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Room:
		return "room"
	case Corridor:
		return "corridor"
	case Stairwell:
		return "stairwell"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Location is one of the places an object may be at a time point. Locations
// are axis-aligned rectangles on a floor; because they are convex, the
// shortest path between two points inside a location is the straight line, a
// property the walking-distance computation relies on.
type Location struct {
	ID     int       `json:"id"`   // dense index into Plan.Locations
	Name   string    `json:"name"` // human-readable, unique within the plan
	Kind   Kind      `json:"kind"`
	Floor  int       `json:"floor"`
	Bounds geom.Rect `json:"bounds"`
}

// Door is a passage between two locations. For a same-floor door, PosA and
// PosB coincide: the point on the shared wall. For stairs between floors the
// positions differ and ExtraLength accounts for the stair run itself.
type Door struct {
	ID          int        `json:"id"`
	LocA        int        `json:"locA"`
	LocB        int        `json:"locB"`
	PosA        geom.Point `json:"posA"`
	PosB        geom.Point `json:"posB"`
	Width       float64    `json:"width"`       // opening width in meters (same-floor doors)
	ExtraLength float64    `json:"extraLength"` // additional walking length when crossing (stairs)
}

// Other returns the location on the other side of the door from loc, or -1
// when loc is not an endpoint of the door.
func (d Door) Other(loc int) int {
	switch loc {
	case d.LocA:
		return d.LocB
	case d.LocB:
		return d.LocA
	default:
		return -1
	}
}

// PosIn returns the door's passage point inside location loc.
func (d Door) PosIn(loc int) geom.Point {
	if loc == d.LocB {
		return d.PosB
	}
	return d.PosA
}

// Wall is an opaque wall segment on a floor. Walls attenuate RFID signals
// and block movement.
type Wall struct {
	Floor int          `json:"floor"`
	Seg   geom.Segment `json:"seg"`
}

// Plan is an immutable multi-floor building map. Construct one with a
// Builder; the zero value is an empty, useless plan.
type Plan struct {
	locations []Location
	doors     []Door
	walls     []Wall
	floors    int
	outline   geom.Rect // outline of a single floor (all floors share it)

	doorsByLoc [][]int // location ID -> door IDs

	distOnce bool
	dist     [][]float64 // all-pairs minimum walking distance, meters
}

// NumLocations returns the number of locations in the plan.
func (p *Plan) NumLocations() int { return len(p.locations) }

// NumFloors returns the number of floors.
func (p *Plan) NumFloors() int { return p.floors }

// Outline returns the rectangle every floor of the building fits in.
func (p *Plan) Outline() geom.Rect { return p.outline }

// Location returns the location with the given ID.
func (p *Plan) Location(id int) Location { return p.locations[id] }

// Locations returns all locations. The returned slice must not be modified.
func (p *Plan) Locations() []Location { return p.locations }

// Doors returns all doors. The returned slice must not be modified.
func (p *Plan) Doors() []Door { return p.doors }

// Walls returns all wall segments. The returned slice must not be modified.
func (p *Plan) Walls() []Wall { return p.walls }

// DoorsOf returns the IDs of the doors of location loc. The returned slice
// must not be modified.
func (p *Plan) DoorsOf(loc int) []int { return p.doorsByLoc[loc] }

// Door returns the door with the given ID.
func (p *Plan) Door(id int) Door { return p.doors[id] }

// LocationByName returns the location with the given name.
func (p *Plan) LocationByName(name string) (Location, bool) {
	for _, l := range p.locations {
		if l.Name == name {
			return l, true
		}
	}
	return Location{}, false
}

// LocationAt returns the ID of the location on the given floor containing
// point pt, or -1 when the point lies in no location (inside a wall or
// outside the building).
func (p *Plan) LocationAt(floor int, pt geom.Point) int {
	best := -1
	for _, l := range p.locations {
		if l.Floor != floor {
			continue
		}
		if l.Bounds.ContainsStrict(pt) {
			return l.ID
		}
		if best == -1 && l.Bounds.Contains(pt) {
			best = l.ID // boundary point: remember, prefer strict containment
		}
	}
	return best
}

// DirectlyConnected reports whether locations a and b share a door, or a ==
// b. It is the complement of the paper's direct-unreachability relation.
func (p *Plan) DirectlyConnected(a, b int) bool {
	if a == b {
		return true
	}
	for _, did := range p.doorsByLoc[a] {
		if p.doors[did].Other(a) == b {
			return true
		}
	}
	return false
}

// WallsBetween counts the wall segments crossed by the straight segment from
// a to b on the given floor. It is used by the RFID substrate to attenuate
// signal strength through walls.
func (p *Plan) WallsBetween(floor int, a, b geom.Point) int {
	ray := geom.Seg(a, b)
	n := 0
	for _, w := range p.walls {
		if w.Floor != floor {
			continue
		}
		if ray.Intersects(w.Seg) {
			n++
		}
	}
	return n
}

// MinWalkDistance returns the minimum walking distance in meters between
// locations a and b: the length of the shortest door-to-door path from the
// boundary of a to the boundary of b, walking straight lines inside
// (rectangular, hence convex) locations and climbing stairs at their extra
// length. Directly connected locations have distance 0. It returns +Inf when
// no path exists.
func (p *Plan) MinWalkDistance(a, b int) float64 {
	if !p.distOnce {
		p.computeDistances()
	}
	return p.dist[a][b]
}

// computeDistances fills the all-pairs location distance matrix by running a
// Dijkstra search over the door graph from every door.
func (p *Plan) computeDistances() {
	n := len(p.locations)
	p.dist = make([][]float64, n)
	for i := range p.dist {
		p.dist[i] = make([]float64, n)
		for j := range p.dist[i] {
			if i == j {
				p.dist[i][j] = 0
			} else {
				p.dist[i][j] = math.Inf(1)
			}
		}
	}

	// doorDist[i][j]: minimal walking distance between doors i and j,
	// where crossing a door costs its ExtraLength and moving between two
	// doors of the same location costs the straight-line distance between
	// their passage points in that location.
	nd := len(p.doors)
	for src := 0; src < nd; src++ {
		d := p.dijkstraFromDoor(src)
		for dst := 0; dst < nd; dst++ {
			if math.IsInf(d[dst], 1) {
				continue
			}
			// A path door src -> door dst connects every location
			// adjacent to src with every location adjacent to dst.
			for _, la := range [2]int{p.doors[src].LocA, p.doors[src].LocB} {
				for _, lb := range [2]int{p.doors[dst].LocA, p.doors[dst].LocB} {
					if d[dst] < p.dist[la][lb] {
						p.dist[la][lb] = d[dst]
						p.dist[lb][la] = d[dst]
					}
				}
			}
		}
	}
	p.distOnce = true
}

// dijkstraFromDoor returns the shortest distances from door src to all doors.
func (p *Plan) dijkstraFromDoor(src int) []float64 {
	nd := len(p.doors)
	dist := make([]float64, nd)
	done := make([]bool, nd)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = p.doors[src].ExtraLength
	// Simple O(n^2) Dijkstra; door counts are small (tens to hundreds).
	for {
		u, best := -1, math.Inf(1)
		for i := 0; i < nd; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u == -1 {
			return dist
		}
		done[u] = true
		du := p.doors[u]
		for _, loc := range [2]int{du.LocA, du.LocB} {
			from := du.PosIn(loc)
			for _, vid := range p.doorsByLoc[loc] {
				if vid == u || done[vid] {
					continue
				}
				dv := p.doors[vid]
				w := from.Dist(dv.PosIn(loc)) + dv.ExtraLength
				if dist[u]+w < dist[vid] {
					dist[vid] = dist[u] + w
				}
			}
		}
	}
}

// Builder assembles a Plan. Add locations and doors, then call Build, which
// validates the plan and derives the wall segments.
type Builder struct {
	locations []Location
	doors     []Door
	errs      []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddLocation adds a location and returns its ID.
func (b *Builder) AddLocation(name string, kind Kind, floor int, bounds geom.Rect) int {
	id := len(b.locations)
	b.locations = append(b.locations, Location{
		ID: id, Name: name, Kind: kind, Floor: floor, Bounds: bounds,
	})
	return id
}

// AddDoor adds a same-floor door between locations a and b at the given
// point (which should lie on their shared wall) with the given opening
// width, and returns its ID.
func (b *Builder) AddDoor(a, bLoc int, pos geom.Point, width float64) int {
	id := len(b.doors)
	b.doors = append(b.doors, Door{
		ID: id, LocA: a, LocB: bLoc, PosA: pos, PosB: pos, Width: width,
	})
	return id
}

// AddStairs adds a stair connection between locations a and b (typically
// stairwells on adjacent floors). posA and posB are the stair landings in
// each location; length is the walking length of the stair run.
func (b *Builder) AddStairs(a, bLoc int, posA, posB geom.Point, length float64) int {
	id := len(b.doors)
	b.doors = append(b.doors, Door{
		ID: id, LocA: a, LocB: bLoc, PosA: posA, PosB: posB, ExtraLength: length,
	})
	return id
}

// Build validates the accumulated plan, derives walls, and returns the Plan.
func (b *Builder) Build() (*Plan, error) {
	if len(b.locations) == 0 {
		return nil, fmt.Errorf("floorplan: plan has no locations")
	}
	names := make(map[string]bool, len(b.locations))
	floors := 0
	outline := b.locations[0].Bounds
	for _, l := range b.locations {
		if l.Bounds.Area() <= 0 {
			return nil, fmt.Errorf("floorplan: location %q has no area", l.Name)
		}
		if names[l.Name] {
			return nil, fmt.Errorf("floorplan: duplicate location name %q", l.Name)
		}
		names[l.Name] = true
		if l.Floor < 0 {
			return nil, fmt.Errorf("floorplan: location %q has negative floor", l.Name)
		}
		if l.Floor+1 > floors {
			floors = l.Floor + 1
		}
		outline = outline.Union(l.Bounds)
	}
	for i, l := range b.locations {
		for j := i + 1; j < len(b.locations); j++ {
			m := b.locations[j]
			if l.Floor == m.Floor && l.Bounds.Overlaps(m.Bounds) {
				return nil, fmt.Errorf("floorplan: locations %q and %q overlap", l.Name, m.Name)
			}
		}
	}
	for _, d := range b.doors {
		if d.LocA < 0 || d.LocA >= len(b.locations) || d.LocB < 0 || d.LocB >= len(b.locations) {
			return nil, fmt.Errorf("floorplan: door %d references unknown location", d.ID)
		}
		if d.LocA == d.LocB {
			return nil, fmt.Errorf("floorplan: door %d connects a location to itself", d.ID)
		}
		la, lb := b.locations[d.LocA], b.locations[d.LocB]
		if d.ExtraLength == 0 && la.Floor != lb.Floor {
			return nil, fmt.Errorf("floorplan: door %d joins different floors; use AddStairs", d.ID)
		}
	}

	p := &Plan{
		locations: b.locations,
		doors:     b.doors,
		floors:    floors,
		outline:   outline,
	}
	p.doorsByLoc = make([][]int, len(b.locations))
	for _, d := range b.doors {
		p.doorsByLoc[d.LocA] = append(p.doorsByLoc[d.LocA], d.ID)
		p.doorsByLoc[d.LocB] = append(p.doorsByLoc[d.LocB], d.ID)
	}
	p.walls = deriveWalls(b.locations, b.doors, floors)
	return p, nil
}

// deriveWalls computes the opaque wall segments of each floor: the union of
// all location boundary edges, with door openings removed and shared edges
// merged so that a wall between two adjacent rooms counts once.
func deriveWalls(locs []Location, doors []Door, floors int) []Wall {
	type lineKey struct {
		floor    int
		vertical bool
		coord    int64 // fixed-point (mm) position of the line
	}
	const scale = 1000 // millimeter resolution
	fix := func(x float64) int64 { return int64(math.Round(x * scale)) }

	spans := make(map[lineKey][][2]float64) // intervals along the line
	addSpan := func(k lineKey, lo, hi float64) {
		if hi > lo {
			spans[k] = append(spans[k], [2]float64{lo, hi})
		}
	}
	for _, l := range locs {
		r := l.Bounds
		addSpan(lineKey{l.Floor, false, fix(r.Min.Y)}, r.Min.X, r.Max.X)
		addSpan(lineKey{l.Floor, false, fix(r.Max.Y)}, r.Min.X, r.Max.X)
		addSpan(lineKey{l.Floor, true, fix(r.Min.X)}, r.Min.Y, r.Max.Y)
		addSpan(lineKey{l.Floor, true, fix(r.Max.X)}, r.Min.Y, r.Max.Y)
	}

	// Door openings to subtract, grouped by line.
	gaps := make(map[lineKey][][2]float64)
	for _, d := range doors {
		if d.ExtraLength > 0 || d.Width <= 0 {
			continue // stairs pierce no wall on a single line
		}
		la := locs[d.LocA]
		// A same-floor door lies on a shared vertical or horizontal wall
		// line through its position; carve the opening on both
		// orientations (only the matching one will have wall spans).
		half := d.Width / 2
		kv := lineKey{la.Floor, true, fix(d.PosA.X)}
		gaps[kv] = append(gaps[kv], [2]float64{d.PosA.Y - half, d.PosA.Y + half})
		kh := lineKey{la.Floor, false, fix(d.PosA.Y)}
		gaps[kh] = append(gaps[kh], [2]float64{d.PosA.X - half, d.PosA.X + half})
	}

	keys := make([]lineKey, 0, len(spans))
	for k := range spans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.floor != b.floor {
			return a.floor < b.floor
		}
		if a.vertical != b.vertical {
			return !a.vertical
		}
		return a.coord < b.coord
	})

	var walls []Wall
	for _, k := range keys {
		merged := mergeIntervals(spans[k])
		carved := subtractIntervals(merged, mergeIntervals(gaps[k]))
		for _, iv := range carved {
			coord := float64(k.coord) / scale
			var s geom.Segment
			if k.vertical {
				s = geom.Seg(geom.Pt(coord, iv[0]), geom.Pt(coord, iv[1]))
			} else {
				s = geom.Seg(geom.Pt(iv[0], coord), geom.Pt(iv[1], coord))
			}
			walls = append(walls, Wall{Floor: k.floor, Seg: s})
		}
	}
	return walls
}

// mergeIntervals unions a set of closed intervals.
func mergeIntervals(ivs [][2]float64) [][2]float64 {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
	out := [][2]float64{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv[0] <= last[1]+1e-9 {
			if iv[1] > last[1] {
				last[1] = iv[1]
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// subtractIntervals removes the (merged) gaps from the (merged) spans.
func subtractIntervals(spans, gaps [][2]float64) [][2]float64 {
	var out [][2]float64
	for _, s := range spans {
		lo := s[0]
		for _, g := range gaps {
			if g[1] <= lo || g[0] >= s[1] {
				continue
			}
			if g[0] > lo {
				out = append(out, [2]float64{lo, g[0]})
			}
			if g[1] > lo {
				lo = g[1]
			}
		}
		if lo < s[1]-1e-12 {
			out = append(out, [2]float64{lo, s[1]})
		}
	}
	return out
}
