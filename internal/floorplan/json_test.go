package floorplan

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestPlanEncodeDecodeRoundTrip(t *testing.T) {
	b := NewBuilder()
	s0 := b.AddLocation("stairs0", Stairwell, 0, geomRect(0, 0, 2, 2))
	s1 := b.AddLocation("stairs1", Stairwell, 1, geomRect(0, 0, 2, 2))
	r0 := b.AddLocation("room0", Room, 0, geomRect(2, 0, 4, 2))
	r1 := b.AddLocation("room1", Room, 1, geomRect(2, 0, 4, 2))
	b.AddDoor(s0, r0, geomPt(2, 1), 1)
	b.AddDoor(s1, r1, geomPt(2, 1), 1)
	b.AddStairs(s0, s1, geomPt(1, 1), geomPt(1, 1), 5)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumLocations() != p.NumLocations() || back.NumFloors() != p.NumFloors() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			back.NumLocations(), back.NumFloors(), p.NumLocations(), p.NumFloors())
	}
	for id := 0; id < p.NumLocations(); id++ {
		if p.Location(id) != back.Location(id) {
			t.Fatalf("location %d changed: %+v vs %+v", id, p.Location(id), back.Location(id))
		}
	}
	if len(back.Doors()) != len(p.Doors()) {
		t.Fatalf("door count changed")
	}
	// Derived structures must be re-derived identically.
	if len(back.Walls()) != len(p.Walls()) {
		t.Errorf("wall count changed: %d vs %d", len(back.Walls()), len(p.Walls()))
	}
	if d1, d2 := p.MinWalkDistance(r0, r1), back.MinWalkDistance(r0, r1); math.Abs(d1-d2) > 1e-9 {
		t.Errorf("walking distance changed: %v vs %v", d1, d2)
	}
}

func TestPlanDecodeRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"no locations":   `{"locations":[],"doors":[]}`,
		"sparse loc ids": `{"locations":[{"id":3,"name":"a","kind":0,"floor":0,"bounds":{"Min":{"X":0,"Y":0},"Max":{"X":1,"Y":1}}}],"doors":[]}`,
		"sparse door ids": `{"locations":[{"id":0,"name":"a","kind":0,"floor":0,"bounds":{"Min":{"X":0,"Y":0},"Max":{"X":4,"Y":4}}},` +
			`{"id":1,"name":"b","kind":0,"floor":0,"bounds":{"Min":{"X":4,"Y":0},"Max":{"X":8,"Y":4}}}],` +
			`"doors":[{"id":7,"locA":0,"locB":1,"posA":{"X":4,"Y":2},"posB":{"X":4,"Y":2},"width":1}]}`,
	}
	for name, body := range cases {
		if _, err := Decode(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func geomRect(x, y, w, h float64) geom.Rect { return geom.RectWH(x, y, w, h) }
func geomPt(x, y float64) geom.Point        { return geom.Pt(x, y) }
