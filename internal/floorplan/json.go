package floorplan

import (
	"encoding/json"
	"fmt"
	"io"
)

// planJSON is the serialized form of a Plan: locations and doors only (walls
// and distances are derived on load, exactly as Builder derives them).
type planJSON struct {
	Locations []Location `json:"locations"`
	Doors     []Door     `json:"doors"`
}

// Encode writes the plan as JSON.
func (p *Plan) Encode(w io.Writer) error {
	return json.NewEncoder(w).Encode(planJSON{Locations: p.locations, Doors: p.doors})
}

// Decode reads a plan written by Encode (or hand-authored in the same
// format) and rebuilds it through the Builder, re-running all validation and
// re-deriving walls.
func Decode(r io.Reader) (*Plan, error) {
	var in planJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("floorplan: decoding plan: %w", err)
	}
	b := NewBuilder()
	for i, l := range in.Locations {
		if l.ID != i {
			return nil, fmt.Errorf("floorplan: location %d has ID %d; IDs must be dense and ordered", i, l.ID)
		}
		b.AddLocation(l.Name, l.Kind, l.Floor, l.Bounds)
	}
	for i, d := range in.Doors {
		if d.ID != i {
			return nil, fmt.Errorf("floorplan: door %d has ID %d; IDs must be dense and ordered", i, d.ID)
		}
		if d.ExtraLength > 0 {
			b.AddStairs(d.LocA, d.LocB, d.PosA, d.PosB, d.ExtraLength)
		} else {
			b.AddDoor(d.LocA, d.LocB, d.PosA, d.Width)
		}
	}
	return b.Build()
}
