// Package flight implements a runtime flight recorder: a background sampler
// that snapshots cheap process health signals (goroutines, heap, GC pause
// totals, a scheduler-lag probe, plus caller-supplied gauges) into a fixed
// ring. The ring is always on and always bounded, so when something goes
// wrong — an eviction storm, a persistence error, an operator's SIGQUIT —
// the last few minutes of runtime behaviour are already captured and can be
// dumped or served as JSON.
package flight

import (
	"runtime"
	"sync"
	"time"
)

// Defaults used when the corresponding constructor argument is non-positive.
const (
	DefaultInterval = time.Second
	DefaultSize     = 300 // at DefaultInterval: a five-minute window
	maxEvents       = 64  // bounded ring of dump-triggering events
)

// Sample is one flight-recorder tick.
type Sample struct {
	UnixNanos         int64  `json:"unixNanos"`
	Goroutines        int    `json:"goroutines"`
	HeapAllocBytes    uint64 `json:"heapAllocBytes"`
	HeapObjects       uint64 `json:"heapObjects"`
	GCPauseTotalNanos uint64 `json:"gcPauseTotalNanos"`
	GCRuns            uint32 `json:"gcRuns"`
	// SchedLagNanos is the overshoot of a 1ms sleep: how much later than
	// asked the runtime woke the sampler, a direct probe of scheduler and
	// timer pressure.
	SchedLagNanos int64 `json:"schedLagNanos"`
	// Gauges carries application state (store bytes, open sessions, SSE
	// subscribers, ...) supplied by the owner's callback.
	Gauges map[string]int64 `json:"gauges,omitempty"`
}

// Event is a noted SLO-relevant occurrence (what triggered a dump and when).
type Event struct {
	UnixNanos int64  `json:"unixNanos"`
	Reason    string `json:"reason"`
	Detail    string `json:"detail,omitempty"`
}

// Snapshot is the serializable state of the recorder: the sampled window
// oldest-first plus the noted events.
type Snapshot struct {
	IntervalMillis int64    `json:"intervalMillis"`
	Samples        []Sample `json:"samples"`
	Events         []Event  `json:"events,omitempty"`
}

// Recorder runs the sampler. A nil *Recorder is valid and does nothing, so
// callers can wire it unconditionally and disable it with a flag.
type Recorder struct {
	interval time.Duration
	gauges   func() map[string]int64

	mu        sync.Mutex
	ring      []Sample
	next      int
	count     int
	events    []Event
	eventNext int
	eventLen  int

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a recorder sampling every interval into a ring of size slots.
// gauges, when non-nil, is called once per tick to attach application state;
// it must be safe for concurrent use and cheap.
func New(interval time.Duration, size int, gauges func() map[string]int64) *Recorder {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if size <= 0 {
		size = DefaultSize
	}
	return &Recorder{
		interval: interval,
		gauges:   gauges,
		ring:     make([]Sample, size),
		events:   make([]Event, maxEvents),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the background sampler (idempotent).
func (r *Recorder) Start() {
	if r == nil {
		return
	}
	r.startOnce.Do(func() { go r.loop() })
}

// Close stops the sampler and waits for it to exit (idempotent; safe even if
// Start was never called).
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.stopOnce.Do(func() { close(r.stop) })
	r.startOnce.Do(func() { close(r.done) }) // never started: unblock the wait
	<-r.done
}

func (r *Recorder) loop() {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	r.Sample() // one sample immediately so a fresh recorder is never empty
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.Sample()
		}
	}
}

// Sample takes one tick now. Exposed so owners can force a final sample into
// the window right before dumping.
func (r *Recorder) Sample() {
	if r == nil {
		return
	}
	// The scheduler-lag probe: ask for 1ms, measure what we got. Under a
	// healthy scheduler the overshoot is tens of microseconds; under CPU
	// starvation or timer pressure it stretches to milliseconds.
	probeStart := time.Now()
	time.Sleep(time.Millisecond)
	lag := time.Since(probeStart) - time.Millisecond
	if lag < 0 {
		lag = 0
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := Sample{
		UnixNanos:         time.Now().UnixNano(),
		Goroutines:        runtime.NumGoroutine(),
		HeapAllocBytes:    ms.HeapAlloc,
		HeapObjects:       ms.HeapObjects,
		GCPauseTotalNanos: ms.PauseTotalNs,
		GCRuns:            ms.NumGC,
		SchedLagNanos:     lag.Nanoseconds(),
	}
	if r.gauges != nil {
		s.Gauges = r.gauges()
	}

	r.mu.Lock()
	r.ring[r.next] = s
	r.next = (r.next + 1) % len(r.ring)
	if r.count < len(r.ring) {
		r.count++
	}
	r.mu.Unlock()
}

// Note records an SLO-relevant event into the bounded event ring.
func (r *Recorder) Note(reason, detail string) {
	if r == nil {
		return
	}
	e := Event{UnixNanos: time.Now().UnixNano(), Reason: reason, Detail: detail}
	r.mu.Lock()
	r.events[r.eventNext] = e
	r.eventNext = (r.eventNext + 1) % len(r.events)
	if r.eventLen < len(r.events) {
		r.eventLen++
	}
	r.mu.Unlock()
}

// Snapshot returns the current window, samples oldest-first.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		IntervalMillis: r.interval.Milliseconds(),
		Samples:        make([]Sample, 0, r.count),
	}
	for i := 0; i < r.count; i++ {
		snap.Samples = append(snap.Samples, r.ring[(r.next-r.count+i+len(r.ring))%len(r.ring)])
	}
	for i := 0; i < r.eventLen; i++ {
		snap.Events = append(snap.Events, r.events[(r.eventNext-r.eventLen+i+len(r.events))%len(r.events)])
	}
	return snap
}
