package flight

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSampleAndSnapshot(t *testing.T) {
	calls := 0
	r := New(time.Hour, 4, func() map[string]int64 {
		calls++
		return map[string]int64{"store_bytes": int64(calls)}
	})
	for i := 0; i < 6; i++ {
		r.Sample()
	}
	snap := r.Snapshot()
	if len(snap.Samples) != 4 {
		t.Fatalf("ring holds %d samples, want 4", len(snap.Samples))
	}
	// Oldest-first: the ring kept ticks 3..6.
	for i, s := range snap.Samples {
		if s.Gauges["store_bytes"] != int64(i+3) {
			t.Fatalf("sample %d gauge = %d, want %d", i, s.Gauges["store_bytes"], i+3)
		}
		if s.Goroutines <= 0 || s.UnixNanos <= 0 {
			t.Fatalf("sample %d missing runtime fields: %+v", i, s)
		}
		if i > 0 && s.UnixNanos < snap.Samples[i-1].UnixNanos {
			t.Fatalf("samples out of order at %d", i)
		}
	}
	if snap.IntervalMillis != time.Hour.Milliseconds() {
		t.Fatalf("IntervalMillis = %d", snap.IntervalMillis)
	}
}

func TestEventsRing(t *testing.T) {
	r := New(time.Hour, 2, nil)
	for i := 0; i < maxEvents+5; i++ {
		r.Note("eviction_storm", "synthetic")
	}
	snap := r.Snapshot()
	if len(snap.Events) != maxEvents {
		t.Fatalf("events ring holds %d, want %d", len(snap.Events), maxEvents)
	}
	if snap.Events[0].Reason != "eviction_storm" {
		t.Fatalf("event reason = %q", snap.Events[0].Reason)
	}
}

func TestStartCloseAndNil(t *testing.T) {
	r := New(time.Millisecond, 8, nil)
	r.Start()
	r.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for len(r.Snapshot().Samples) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sampler produced no samples")
		}
		time.Sleep(time.Millisecond)
	}
	r.Close()
	r.Close() // idempotent

	// Close without Start must not hang.
	New(time.Hour, 2, nil).Close()

	var nilRec *Recorder
	nilRec.Start()
	nilRec.Sample()
	nilRec.Note("x", "")
	if snap := nilRec.Snapshot(); len(snap.Samples) != 0 {
		t.Fatal("nil recorder returned samples")
	}
	nilRec.Close()
}

func TestSchedLagNonNegative(t *testing.T) {
	r := New(time.Hour, 2, nil)
	r.Sample()
	s := r.Snapshot().Samples[0]
	if s.SchedLagNanos < 0 {
		t.Fatalf("SchedLagNanos = %d, want >= 0", s.SchedLagNanos)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New(time.Hour, 16, func() map[string]int64 { return map[string]int64{"g": 1} })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				r.Sample()
				r.Note("persist_error", "t")
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if len(r.Snapshot().Samples) != 16 {
		t.Fatalf("ring not full after concurrent sampling")
	}
}

func TestSnapshotMarshals(t *testing.T) {
	r := New(time.Second, 2, nil)
	r.Sample()
	r.Note("sigquit", "")
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != 1 || len(back.Events) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
