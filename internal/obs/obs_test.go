package obs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeExport(t *testing.T) {
	tr := NewTrace("req-1")
	ctx := WithTrace(context.Background(), tr)

	ctx1, root := Start(ctx, "root")
	if root == nil {
		t.Fatal("Start with a trace attached returned a nil span")
	}
	_, childA := Start(ctx1, "a")
	childA.Int("n", 42).Str("kind", "test")
	childA.End()
	ctx2, childB := Start(ctx1, "b")
	_, grand := Start(ctx2, "b.1")
	grand.End()
	childB.End()
	root.End()

	if got := tr.SpanCount(); got != 4 {
		t.Fatalf("SpanCount = %d, want 4", got)
	}
	ex := tr.Export()
	if ex.ID != "req-1" {
		t.Fatalf("export ID = %q", ex.ID)
	}
	if len(ex.Spans) != 1 || ex.Spans[0].Name != "root" {
		t.Fatalf("want a single root span, got %+v", ex.Spans)
	}
	r := ex.Spans[0]
	if len(r.Spans) != 2 || r.Spans[0].Name != "a" || r.Spans[1].Name != "b" {
		t.Fatalf("root children = %+v", r.Spans)
	}
	if len(r.Spans[1].Spans) != 1 || r.Spans[1].Spans[0].Name != "b.1" {
		t.Fatalf("grandchildren = %+v", r.Spans[1].Spans)
	}
	a := r.Spans[0]
	if a.Attrs["n"] != int64(42) || a.Attrs["kind"] != "test" {
		t.Fatalf("attrs = %+v", a.Attrs)
	}
	if a.DurationMicros < 0 || a.StartMicros < 0 {
		t.Fatalf("negative timings: %+v", a)
	}
}

func TestEndTwiceKeepsFirstDuration(t *testing.T) {
	tr := NewTrace("x")
	ctx := WithTrace(context.Background(), tr)
	_, sp := Start(ctx, "s")
	sp.End()
	d1 := tr.Export().Spans[0].DurationMicros
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if d2 := tr.Export().Spans[0].DurationMicros; d2 != d1 {
		t.Fatalf("second End changed duration: %d -> %d", d1, d2)
	}
}

// TestNoRecorderZeroAlloc pins the tentpole's hot-path contract: starting,
// annotating and ending a span on a context with no trace attached must not
// allocate at all.
func TestNoRecorderZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := Start(ctx, "core.forward")
		sp.Int("nodes", 7)
		sp.Str("phase", "forward")
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("no-recorder span path allocates %v allocs/op, want 0", allocs)
	}
}

// TestConcurrentSpanRecording exercises many goroutines appending spans to
// one trace (the batch-clean shape) and is meant to run under -race.
func TestConcurrentSpanRecording(t *testing.T) {
	tr := NewTrace("concurrent")
	ctx := WithTrace(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, sp := Start(ctx, "worker")
				sp.Int("worker", int64(w)).End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got := tr.SpanCount(); got != 1+workers*perWorker {
		t.Fatalf("SpanCount = %d, want %d", got, 1+workers*perWorker)
	}
	ex := tr.Export()
	if len(ex.Spans) != 1 || len(ex.Spans[0].Spans) != workers*perWorker {
		t.Fatalf("export shape wrong: %d roots, %d children", len(ex.Spans), len(ex.Spans[0].Spans))
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	if r.Capacity() != 4 {
		t.Fatalf("Capacity = %d", r.Capacity())
	}
	for i := 0; i < 10; i++ {
		r.Record(NewTrace("t" + strconv.Itoa(i)))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Added() != 10 {
		t.Fatalf("Added = %d, want 10", r.Added())
	}
	snap := r.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("Snapshot holds %d traces, want 4", len(snap))
	}
	for i, tr := range snap {
		want := "t" + strconv.Itoa(9-i) // newest first
		if tr.ID() != want {
			t.Fatalf("snap[%d] = %q, want %q", i, tr.ID(), want)
		}
	}
	if got := r.Snapshot(2); len(got) != 2 || got[0].ID() != "t9" {
		t.Fatalf("Snapshot(2) = %v", got)
	}
	if tr := r.Find("t7"); tr == nil {
		t.Fatal("Find(t7) = nil, want the held trace")
	}
	if tr := r.Find("t2"); tr != nil {
		t.Fatal("Find(t2) returned an evicted trace")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(NewTrace(fmt.Sprintf("w%d-%d", w, i)))
				_ = r.Snapshot(3)
			}
		}(w)
	}
	wg.Wait()
	if r.Added() != 400 {
		t.Fatalf("Added = %d, want 400", r.Added())
	}
}

func TestNilRecorderAndNilSpanAreNoOps(t *testing.T) {
	var r *Recorder
	r.Record(NewTrace("x")) // must not panic
	if r.Snapshot(1) != nil || r.Len() != 0 || r.Added() != 0 || r.Capacity() != 0 || r.Find("x") != nil {
		t.Fatal("nil recorder should report empty")
	}
	var sp *Span
	sp.End()
	sp.Int("k", 1)
	sp.Str("k", "v") // must not panic
}

// TestTailRetentionSlowSurvivesFlood is the retention policy's core claim:
// a slow trace must survive an arbitrary flood of fast requests on the same
// endpoint instead of being FIFO-evicted.
func TestTailRetentionSlowSurvivesFlood(t *testing.T) {
	r := NewRecorder(4)
	slow := NewTrace("slow-one")
	if !r.RecordRequest(slow, "clean", 5*time.Second, 201) {
		t.Fatal("slow trace was not admitted")
	}
	for i := 0; i < 10000; i++ {
		r.RecordRequest(NewTrace("fast-"+strconv.Itoa(i)), "clean", time.Millisecond, 200)
	}
	if got := r.Find("slow-one"); got != slow {
		t.Fatal("slow trace evicted by fast-request flood")
	}
	if !r.Held("slow-one") {
		t.Fatal("Held(slow-one) = false for a retained trace")
	}
	heldFast := 0
	for i := 0; i < 10000; i++ {
		if r.Held("fast-" + strconv.Itoa(i)) {
			heldFast++
		}
	}
	if heldFast > tailReservoirSize+sampleRingSize {
		t.Fatalf("%d fast traces held, want <= %d (reservoir fill + sample)", heldFast, tailReservoirSize+sampleRingSize)
	}
	// Retention stays bounded: reservoir + sample + error tiers, not 10k.
	if held := r.Len(); held > tailReservoirSize+sampleRingSize+errorRingSize {
		t.Fatalf("Len = %d, want <= %d", held, tailReservoirSize+sampleRingSize+errorRingSize)
	}
	if r.Added() != 10001 {
		t.Fatalf("Added = %d, want 10001", r.Added())
	}
}

// TestTailRetentionConcurrent floods one endpoint from many goroutines while
// a reader snapshots — the -race version of the survival claim.
func TestTailRetentionConcurrent(t *testing.T) {
	r := NewRecorder(8)
	slow := NewTrace("slow-concurrent")
	r.RecordRequest(slow, "clean", 10*time.Second, 201)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1250; i++ {
				r.RecordRequest(NewTrace(fmt.Sprintf("f%d-%d", w, i)), "clean", time.Millisecond, 200)
				if i%100 == 0 {
					_ = r.Snapshot(5)
					_ = r.Held("slow-concurrent")
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Find("slow-concurrent") != slow {
		t.Fatal("slow trace evicted under concurrent flood")
	}
}

// TestErrorTraceRetention checks 5xx traces are always admitted and kept in
// a bounded per-endpoint ring, independent of their duration.
func TestErrorTraceRetention(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < tailReservoirSize+5; i++ {
		r.RecordRequest(NewTrace("pad-"+strconv.Itoa(i)), "clean", time.Hour, 200)
	}
	if !r.RecordRequest(NewTrace("err-1"), "clean", time.Microsecond, 500) {
		t.Fatal("fast 5xx trace rejected; every 5xx must be admitted")
	}
	if !r.Held("err-1") {
		t.Fatal("5xx trace not retained")
	}
	for i := 0; i < 3*errorRingSize; i++ {
		if !r.RecordRequest(NewTrace("err-flood-"+strconv.Itoa(i)), "clean", time.Microsecond, 503) {
			t.Fatalf("5xx trace %d rejected", i)
		}
	}
	if r.Held("err-1") {
		t.Fatal("oldest 5xx trace should have been displaced by newer errors")
	}
	if !r.Held("err-flood-" + strconv.Itoa(3*errorRingSize-1)) {
		t.Fatal("newest 5xx trace missing")
	}
}

// TestRecorderEndpointsIsolated checks one endpoint's flood cannot evict
// another endpoint's tail.
func TestRecorderEndpointsIsolated(t *testing.T) {
	r := NewRecorder(4)
	r.RecordRequest(NewTrace("stream-slow"), "stream_readings", 2*time.Second, 200)
	for i := 0; i < 5000; i++ {
		r.RecordRequest(NewTrace("c-"+strconv.Itoa(i)), "clean", time.Second, 200)
	}
	if !r.Held("stream-slow") {
		t.Fatal("clean-endpoint flood evicted a stream_readings tail trace")
	}
}

// TestRecordRequestNil covers the nil-recorder and nil-trace contracts.
func TestRecordRequestNil(t *testing.T) {
	var r *Recorder
	if r.RecordRequest(NewTrace("x"), "clean", time.Second, 200) {
		t.Fatal("nil recorder must not retain")
	}
	if r.Held("x") {
		t.Fatal("nil recorder Held must be false")
	}
	r2 := NewRecorder(2)
	if r2.RecordRequest(nil, "clean", time.Second, 200) {
		t.Fatal("nil trace must not be retained")
	}
}

// TestSnapshotMergesTiers checks Snapshot lists legacy and request traces
// together, newest first, and Find resolves duplicate IDs to the newest.
func TestSnapshotMergesTiers(t *testing.T) {
	r := NewRecorder(4)
	r.Record(NewTrace("legacy-1"))
	r.RecordRequest(NewTrace("req-1"), "clean", time.Second, 200)
	dup1 := NewTrace("persist.flush")
	dup2 := NewTrace("persist.flush")
	r.Record(dup1)
	r.Record(dup2)
	snap := r.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("Snapshot holds %d traces, want 4", len(snap))
	}
	if snap[0].ID() != "persist.flush" || snap[3].ID() != "legacy-1" {
		t.Fatalf("snapshot order wrong: %s ... %s", snap[0].ID(), snap[3].ID())
	}
	if got := r.Find("persist.flush"); got != dup2 {
		t.Fatal("Find(dup) should return the newest duplicate")
	}
	if !r.Held("persist.flush") || !r.Held("req-1") {
		t.Fatal("Held missing merged-tier traces")
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("request ID %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
	}
}

// BenchmarkStartNoRecorder measures the permanent instrumentation cost paid
// by every Build when no recorder is attached.
func BenchmarkStartNoRecorder(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := Start(ctx, "core.forward")
		sp.Int("nodes", int64(i))
		sp.End()
		_ = c
	}
}
