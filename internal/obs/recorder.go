package obs

import (
	"sort"
	"sync"
	"time"
)

// DefaultRecorderCapacity is the legacy ring size used when NewRecorder is
// given a non-positive capacity.
const DefaultRecorderCapacity = 256

// Per-endpoint retention tiers. The numbers are deliberately small: the
// recorder's job is to keep the *interesting* traces — the tail and the
// failures — not to archive the flood of fast, healthy requests.
const (
	// tailReservoirSize is the always-keep reservoir of an endpoint's
	// slowest requests. A trace admitted here is only displaced by a slower
	// one, so under any load the worst requests survive.
	tailReservoirSize = 16
	// errorRingSize bounds the per-endpoint ring of recent 5xx traces.
	// Every 5xx is admitted; only older 5xx traces are displaced.
	errorRingSize = 16
	// sampleRingSize is the FIFO ring holding the probabilistic sample of
	// normal (fast, non-error) requests per endpoint.
	sampleRingSize = 32
	// sampleMask keeps ~1/8 of normal requests in the sample ring.
	sampleMask = 7
)

// heldTrace is one retained trace plus the admission metadata Snapshot and
// the tail policy need.
type heldTrace struct {
	t   *Trace
	seq uint64 // global admission order (newest-first listing)
	dur int64  // request duration in nanoseconds (0 for legacy records)
}

// endpointGroup is one endpoint's two-tier retention state.
type endpointGroup struct {
	sample     []*heldTrace // FIFO ring of sampled normal requests
	sampleNext int
	slow       []*heldTrace // slowest-N reservoir, unordered
	errs       []*heldTrace // FIFO ring of 5xx traces
	errsNext   int
	rng        uint64 // xorshift64 state for the admission sample
}

// Recorder retains completed traces with a tail-biased, per-endpoint policy:
// every 5xx, the slowest N per endpoint, and a small probabilistic sample of
// normal requests — so a slow trace survives any number of fast requests
// instead of being flooded out of a shared FIFO. Traces recorded through the
// legacy Record (internal operations such as persistence flushes) go to a
// separate FIFO ring of the configured capacity. A nil *Recorder is valid
// and drops everything.
type Recorder struct {
	mu       sync.Mutex
	capacity int

	legacy     []*heldTrace // FIFO ring for Record()
	legacyNext int
	legacyLen  int

	groups map[string]*endpointGroup
	ids    map[string]int // held-trace ID refcounts (duplicate IDs allowed)
	seq    uint64
	added  uint64 // traces ever offered (held + dropped + evicted)
	held   int    // traces currently retained across all tiers
}

// NewRecorder returns a recorder whose legacy ring holds up to capacity
// traces (DefaultRecorderCapacity when capacity <= 0). The per-endpoint tail
// tiers are fixed-size and come on top.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{
		capacity: capacity,
		legacy:   make([]*heldTrace, capacity),
		groups:   make(map[string]*endpointGroup),
		ids:      make(map[string]int),
	}
}

func (r *Recorder) holdLocked(t *Trace, dur int64) *heldTrace {
	r.seq++
	r.held++
	r.ids[t.id]++
	return &heldTrace{t: t, seq: r.seq, dur: dur}
}

func (r *Recorder) dropLocked(h *heldTrace) {
	if h == nil {
		return
	}
	r.held--
	if n := r.ids[h.t.id] - 1; n > 0 {
		r.ids[h.t.id] = n
	} else {
		delete(r.ids, h.t.id)
	}
}

// Record adds a completed trace to the legacy FIFO ring, evicting the oldest
// when full. Request traces should go through RecordRequest instead so the
// tail policy applies.
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.added++
	r.dropLocked(r.legacy[r.legacyNext])
	r.legacy[r.legacyNext] = r.holdLocked(t, 0)
	r.legacyNext = (r.legacyNext + 1) % len(r.legacy)
	if r.legacyLen < len(r.legacy) {
		r.legacyLen++
	}
	r.mu.Unlock()
}

// RecordRequest offers a completed request trace under the two-tier policy
// and reports whether the trace was retained: 5xx traces always are (bounded
// by a per-endpoint ring), then the slowest-N reservoir, then a ~1/8
// probabilistic sample of everything else.
func (r *Recorder) RecordRequest(t *Trace, endpoint string, d time.Duration, status int) bool {
	if r == nil || t == nil {
		return false
	}
	dur := d.Nanoseconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.added++
	g := r.groups[endpoint]
	if g == nil {
		// Seed the sampler from the endpoint name so admission is
		// deterministic per endpoint (stable tests, reproducible runs).
		var seed uint64 = 0xcbf29ce484222325
		for i := 0; i < len(endpoint); i++ {
			seed = (seed ^ uint64(endpoint[i])) * 0x100000001b3
		}
		g = &endpointGroup{rng: seed | 1}
		r.groups[endpoint] = g
	}

	if status >= 500 {
		if len(g.errs) < errorRingSize {
			g.errs = append(g.errs, r.holdLocked(t, dur))
			return true
		}
		r.dropLocked(g.errs[g.errsNext])
		g.errs[g.errsNext] = r.holdLocked(t, dur)
		g.errsNext = (g.errsNext + 1) % errorRingSize
		return true
	}

	// Slowest-N reservoir: admit while not full, then displace the current
	// fastest member only for a strictly slower request.
	if len(g.slow) < tailReservoirSize {
		g.slow = append(g.slow, r.holdLocked(t, dur))
		return true
	}
	min := 0
	for i := 1; i < len(g.slow); i++ {
		if g.slow[i].dur < g.slow[min].dur {
			min = i
		}
	}
	if dur > g.slow[min].dur {
		r.dropLocked(g.slow[min])
		g.slow[min] = r.holdLocked(t, dur)
		return true
	}

	// Probabilistic sample of normal traffic (xorshift64).
	g.rng ^= g.rng << 13
	g.rng ^= g.rng >> 7
	g.rng ^= g.rng << 17
	if g.rng&sampleMask != 0 {
		return false
	}
	if len(g.sample) < sampleRingSize {
		g.sample = append(g.sample, r.holdLocked(t, dur))
		return true
	}
	r.dropLocked(g.sample[g.sampleNext])
	g.sample[g.sampleNext] = r.holdLocked(t, dur)
	g.sampleNext = (g.sampleNext + 1) % sampleRingSize
	return true
}

// allLocked collects every held trace, unsorted.
func (r *Recorder) allLocked() []*heldTrace {
	out := make([]*heldTrace, 0, r.held)
	for i := 0; i < r.legacyLen; i++ {
		out = append(out, r.legacy[i])
	}
	for _, g := range r.groups {
		out = append(out, g.sample...)
		out = append(out, g.slow...)
		out = append(out, g.errs...)
	}
	return out
}

// Snapshot returns up to limit traces, newest first by admission order (all
// held traces when limit <= 0).
func (r *Recorder) Snapshot(limit int) []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	all := r.allLocked()
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	if limit > 0 && limit < len(all) {
		all = all[:limit]
	}
	if len(all) == 0 {
		return nil
	}
	out := make([]*Trace, len(all))
	for i, h := range all {
		out[i] = h.t
	}
	return out
}

// Find returns the most recently admitted held trace with the given ID, or
// nil.
func (r *Recorder) Find(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ids[id] == 0 {
		return nil
	}
	var best *heldTrace
	for _, h := range r.allLocked() {
		if h.t.id == id && (best == nil || h.seq > best.seq) {
			best = h
		}
	}
	if best == nil {
		return nil
	}
	return best.t
}

// Held reports whether a trace with the given ID is currently retained. It
// is the exemplar renderer's O(1) check that a bucket's linked request ID
// still resolves at /debug/traces.
func (r *Recorder) Held(id string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ids[id] > 0
}

// Len returns how many traces the recorder currently holds across all tiers.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.held
}

// Added returns how many traces have ever been offered (held, sampled away
// or evicted).
func (r *Recorder) Added() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.added
}

// Capacity returns the legacy ring size.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return r.capacity
}
