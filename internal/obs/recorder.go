package obs

import "sync"

// DefaultRecorderCapacity is the trace ring size used when NewRecorder is
// given a non-positive capacity.
const DefaultRecorderCapacity = 256

// Recorder keeps the most recent completed traces in a fixed-size ring.
// Recording past the capacity overwrites the oldest trace, so memory stays
// bounded under any request rate. A nil *Recorder is valid and drops
// everything.
type Recorder struct {
	mu    sync.Mutex
	ring  []*Trace
	next  int    // ring slot the next Record writes
	count int    // traces currently held (<= len(ring))
	added uint64 // traces ever recorded
}

// NewRecorder returns a recorder holding up to capacity traces
// (DefaultRecorderCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{ring: make([]*Trace, capacity)}
}

// Record adds a completed trace, evicting the oldest when full.
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.ring[r.next] = t
	r.next = (r.next + 1) % len(r.ring)
	if r.count < len(r.ring) {
		r.count++
	}
	r.added++
	r.mu.Unlock()
}

// Snapshot returns up to limit traces, newest first (all held traces when
// limit <= 0).
func (r *Recorder) Snapshot(limit int) []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.count
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.ring[(r.next-i+len(r.ring))%len(r.ring)])
	}
	return out
}

// Find returns the most recent held trace with the given ID, or nil.
func (r *Recorder) Find(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 1; i <= r.count; i++ {
		if t := r.ring[(r.next-i+len(r.ring))%len(r.ring)]; t.id == id {
			return t
		}
	}
	return nil
}

// Len returns how many traces the recorder currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Added returns how many traces have ever been recorded (held + evicted).
func (r *Recorder) Added() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.added
}

// Capacity returns the ring size.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}
