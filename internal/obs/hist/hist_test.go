package hist

import (
	"math"
	"testing"
)

func TestIndexBoundsRoundTrip(t *testing.T) {
	// Every bucket's bounds must contain exactly the values that index into
	// it, and consecutive buckets must tile the value range with no gaps.
	var prevHi int64
	for idx := 0; idx < 40*sub; idx++ {
		lo, hi := Bounds(idx)
		if lo >= hi {
			t.Fatalf("bucket %d: empty range [%d, %d)", idx, lo, hi)
		}
		if idx > 0 && lo != prevHi {
			t.Fatalf("bucket %d: lower bound %d does not continue previous upper bound %d", idx, lo, prevHi)
		}
		prevHi = hi
		for _, v := range []int64{lo, hi - 1} {
			if got := Index(v); got != idx {
				t.Fatalf("Index(%d) = %d, want %d (bounds [%d, %d))", v, got, idx, lo, hi)
			}
		}
	}
}

func TestIndexExtremes(t *testing.T) {
	if got := Index(-5); got != 0 {
		t.Fatalf("negative values must clamp to bucket 0, got %d", got)
	}
	idx := Index(math.MaxInt64)
	if idx < 0 || idx >= NumBuckets {
		t.Fatalf("Index(MaxInt64) = %d out of [0, %d)", idx, NumBuckets)
	}
	lo, hi := Bounds(idx)
	if math.MaxInt64 < lo || (hi > lo && math.MaxInt64 >= hi && hi > 0) {
		t.Fatalf("MaxInt64 not inside its bucket [%d, %d)", lo, hi)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	// Record 1..100000 ns; every quantile estimate must be within the
	// documented relative error (2^-(SubBits+1), under 0.8%).
	var h Hist
	const n = 100000
	for v := int64(1); v <= n; v++ {
		h.Observe(v)
	}
	maxRel := 1.0 / float64(int64(2)<<SubBits)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		want := q * n
		got := float64(h.Quantile(q))
		if rel := math.Abs(got-want) / want; rel > maxRel {
			t.Errorf("Quantile(%g) = %g, want ~%g (relative error %g > %g)", q, got, want, rel, maxRel)
		}
	}
	if got := h.Max(); got != n {
		t.Errorf("Max = %d, want %d", got, n)
	}
	if mean := h.Mean(); math.Abs(mean-(n+1)/2) > 1 {
		t.Errorf("Mean = %g, want %g", mean, float64(n+1)/2)
	}
	if h.Count() != n {
		t.Errorf("Count = %d, want %d", h.Count(), uint64(n))
	}
	if h.Sum() != n*(n+1)/2 {
		t.Errorf("Sum = %d, want %d", h.Sum(), int64(n*(n+1)/2))
	}
}

func TestEmpty(t *testing.T) {
	var h Hist
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("empty Mean = %g, want 0", got)
	}
	cum := h.Cumulative([]float64{0.001, 1})
	for i, c := range cum {
		if c != 0 {
			t.Errorf("empty Cumulative[%d] = %d, want 0", i, c)
		}
	}
}

func TestCumulativeLadder(t *testing.T) {
	var h Hist
	// 3 below 1ms, 2 between 1ms and 5ms, 1 above 5ms.
	for _, v := range []int64{100_000, 200_000, 900_000, 2_000_000, 4_000_000, 10_000_000} {
		h.Observe(v)
	}
	cum := h.Cumulative([]float64{0.001, 0.005})
	want := []uint64{3, 5, 6}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("Cumulative[%d] = %d, want %d (full: %v)", i, cum[i], want[i], cum)
		}
	}
}
