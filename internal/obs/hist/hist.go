// Package hist provides an HDR-style log-bucketed latency histogram shared
// by the server's /metrics exposition and the load harness. Values are
// nanoseconds.
//
// The bucket ladder is the classic HDR layout: values below 2*2^SubBits are
// recorded exactly; above that, each power-of-two octave is split into
// 2^SubBits linear sub-buckets, bounding the relative quantile error at
// 2^-(SubBits+1) (under 0.8% here). Recording is a handful of atomic adds,
// so many goroutines share one histogram without locks.
package hist

import (
	"math/bits"
	"sync/atomic"
)

const (
	// SubBits is the number of linear sub-bucket bits per octave.
	SubBits = 6
	sub     = 1 << SubBits
	// NumBuckets covers every non-negative int64: the widest index is
	// (shift+1)*sub + s with shift <= 62-SubBits.
	NumBuckets = (64 - SubBits) * sub
)

// Hist is a fixed-size lock-free histogram. The zero value is ready to use.
type Hist struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// Index maps a nanosecond value to its bucket.
func Index(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 2*sub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // position of the top set bit, >= SubBits+1
	shift := exp - SubBits           // >= 1
	s := int(v>>shift) - sub         // in [0, sub)
	return (shift+1)*sub + s
}

// Bounds returns the half-open value range [lo, hi) of a bucket.
func Bounds(idx int) (lo, hi int64) {
	if idx < 2*sub {
		return int64(idx), int64(idx) + 1
	}
	shift := idx/sub - 1
	s := int64(idx % sub)
	lo = (sub + s) << shift
	return lo, lo + 1<<shift
}

// Observe records one value.
func (h *Hist) Observe(v int64) {
	h.counts[Index(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of recorded values.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Sum returns the sum of recorded values in nanoseconds.
func (h *Hist) Sum() int64 { return h.sum.Load() }

// Max returns the largest recorded value, or 0 when empty.
func (h *Hist) Max() int64 { return h.max.Load() }

// BucketCount returns the raw count of a single fine-grained bucket.
func (h *Hist) BucketCount(idx int) uint64 { return h.counts[idx].Load() }

// Quantile returns the value at quantile q in [0, 1] (the midpoint of the
// bucket holding the rank), or 0 for an empty histogram.
func (h *Hist) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			lo, hi := Bounds(i)
			return lo + (hi-lo-1)/2
		}
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean in nanoseconds, or 0 when empty.
func (h *Hist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Cumulative folds the fine-grained buckets onto a coarse bound ladder given
// in seconds (internal/server's scheme), returning cumulative counts per
// bound plus the +Inf total — so client-side distributions line up with the
// daemon's /metrics histograms.
func (h *Hist) Cumulative(boundsSeconds []float64) []uint64 {
	out := make([]uint64, len(boundsSeconds)+1)
	for i := 0; i < NumBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		lo, hi := Bounds(i)
		mid := float64(lo+(hi-lo-1)/2) / 1e9
		j := len(boundsSeconds)
		for k, b := range boundsSeconds {
			if mid <= b {
				j = k
				break
			}
		}
		out[j] += c
	}
	for i := 1; i < len(out); i++ {
		out[i] += out[i-1]
	}
	return out
}
