package obs

import "context"

type traceKey struct{}
type parentKey struct{}

// WithTrace returns a context carrying the trace; spans started under it
// record into the trace. A nil trace detaches recording.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace attached to ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// Start begins a span named name under the trace (and parent span) carried
// by ctx, returning a derived context for child spans and the span handle.
// When ctx carries no trace it returns ctx unchanged and a nil span — the
// whole call allocates nothing, which keeps permanently instrumented hot
// paths free for callers that never attach a recorder.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	if tr == nil {
		return ctx, nil
	}
	parent := int32(-1)
	if p, ok := ctx.Value(parentKey{}).(int32); ok {
		parent = p
	}
	idx := tr.start(name, parent)
	return context.WithValue(ctx, parentKey{}, idx), &Span{tr: tr, idx: idx}
}
