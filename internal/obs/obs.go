// Package obs is the stdlib-only observability layer shared by the cleaning
// core and the HTTP query head: context-propagated spans recorded into
// per-request traces, a bounded ring of recent traces, and request-ID
// generation.
//
// The design optimizes for the uninstrumented case. A span is started with
//
//	ctx, span := obs.Start(ctx, "core.forward")
//	defer span.End()
//
// and when the context carries no *Trace, Start returns the context
// unchanged and a nil *Span whose methods are all no-ops — zero allocations,
// a few nanoseconds — so the cleaning hot path can be instrumented
// permanently without taxing library users or benchmarks that never attach a
// recorder. When a trace is attached (the server's middleware does this per
// request), spans append into the trace under a mutex, so concurrent
// goroutines sharing one request context (batch-clean workers) record
// safely.
//
// Timing uses time.Now/time.Since, whose monotonic-clock reading makes span
// durations immune to wall-clock steps.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Exactly one of Str and Int is
// meaningful, selected by IsInt; the two-field shape avoids boxing values
// into interfaces on the recording path.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Trace is the span tree of one unit of work (typically one HTTP request),
// identified by its request ID. Spans are stored flat with parent indices
// and assembled into a tree on export. All methods are safe for concurrent
// use.
type Trace struct {
	id    string
	begin time.Time

	mu    sync.Mutex
	spans []spanRecord
}

type spanRecord struct {
	name     string
	parent   int32 // index into Trace.spans, -1 for roots
	start    time.Time
	duration time.Duration
	ended    bool
	attrs    []Attr
}

// NewTrace returns an empty trace identified by id (typically the request
// ID), beginning now.
func NewTrace(id string) *Trace {
	return &Trace{id: id, begin: time.Now()}
}

// ID returns the trace's identifier.
func (t *Trace) ID() string { return t.id }

// Begin returns the trace's start time.
func (t *Trace) Begin() time.Time { return t.begin }

// SpanCount returns how many spans have been started on the trace.
func (t *Trace) SpanCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// start appends a new span record and returns its index.
func (t *Trace) start(name string, parent int32) int32 {
	t.mu.Lock()
	idx := int32(len(t.spans))
	t.spans = append(t.spans, spanRecord{name: name, parent: parent, start: time.Now()})
	t.mu.Unlock()
	return idx
}

// Span is a handle on one span of a trace. The zero of usefulness: a nil
// *Span (returned by Start when no trace is attached) accepts every method
// call as a no-op, so instrumentation sites never branch on whether
// recording is active.
type Span struct {
	tr  *Trace
	idx int32
}

// End stamps the span's duration. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	r := &s.tr.spans[s.idx]
	if !r.ended {
		r.ended = true
		r.duration = time.Since(r.start)
	}
	s.tr.mu.Unlock()
}

// Int attaches an integer attribute and returns the span for chaining.
func (s *Span) Int(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	r := &s.tr.spans[s.idx]
	r.attrs = append(r.attrs, Attr{Key: key, Int: v, IsInt: true})
	s.tr.mu.Unlock()
	return s
}

// Str attaches a string attribute and returns the span for chaining.
func (s *Span) Str(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	r := &s.tr.spans[s.idx]
	r.attrs = append(r.attrs, Attr{Key: key, Str: v})
	s.tr.mu.Unlock()
	return s
}

// SpanExport is the JSON shape of one span: timings as microsecond offsets
// from the trace begin, attributes flattened to a map, children nested.
type SpanExport struct {
	Name           string         `json:"name"`
	StartMicros    int64          `json:"startMicros"`
	DurationMicros int64          `json:"durationMicros"`
	Attrs          map[string]any `json:"attrs,omitempty"`
	Spans          []*SpanExport  `json:"spans,omitempty"`
}

// TraceExport is the JSON shape of a whole trace.
type TraceExport struct {
	ID    string        `json:"id"`
	Begin time.Time     `json:"begin"`
	Spans []*SpanExport `json:"spans"`
}

// Export snapshots the trace as a span tree. Spans not yet ended report
// their elapsed time so far. Children appear in start order.
func (t *Trace) Export() TraceExport {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceExport{ID: t.id, Begin: t.begin, Spans: []*SpanExport{}}
	nodes := make([]*SpanExport, len(t.spans))
	for i := range t.spans {
		r := &t.spans[i]
		d := r.duration
		if !r.ended {
			d = time.Since(r.start)
		}
		n := &SpanExport{
			Name:           r.name,
			StartMicros:    r.start.Sub(t.begin).Microseconds(),
			DurationMicros: d.Microseconds(),
		}
		if len(r.attrs) > 0 {
			n.Attrs = make(map[string]any, len(r.attrs))
			for _, a := range r.attrs {
				if a.IsInt {
					n.Attrs[a.Key] = a.Int
				} else {
					n.Attrs[a.Key] = a.Str
				}
			}
		}
		nodes[i] = n
		if p := r.parent; p >= 0 {
			nodes[p].Spans = append(nodes[p].Spans, n)
		} else {
			out.Spans = append(out.Spans, n)
		}
	}
	return out
}

// NewRequestID returns a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// time-derived ID rather than panicking in a serving path.
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}
