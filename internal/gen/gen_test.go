package gen

import (
	"testing"

	"repro/internal/constraints"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/rfid"
	"repro/internal/stats"
)

// testBuilding returns a two-floor building: each floor has a corridor and
// two rooms; stairwells connect the floors.
func testBuilding(t *testing.T) *floorplan.Plan {
	t.Helper()
	b := floorplan.NewBuilder()
	var stairs [2]int
	for f := 0; f < 2; f++ {
		cor := b.AddLocation(name("corridor", f), floorplan.Corridor, f, geom.RectWH(0, 0, 14, 3))
		r0 := b.AddLocation(name("R0", f), floorplan.Room, f, geom.RectWH(0, 3, 5, 5))
		r1 := b.AddLocation(name("R1", f), floorplan.Room, f, geom.RectWH(5, 3, 5, 5))
		st := b.AddLocation(name("stairs", f), floorplan.Stairwell, f, geom.RectWH(10, 3, 4, 5))
		b.AddDoor(cor, r0, geom.Pt(2.5, 3), 1)
		b.AddDoor(cor, r1, geom.Pt(7.5, 3), 1)
		b.AddDoor(cor, st, geom.Pt(12, 3), 1)
		stairs[f] = st
	}
	b.AddStairs(stairs[0], stairs[1], geom.Pt(12, 5.5), geom.Pt(12, 5.5), 6)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func name(base string, floor int) string {
	return base + "-" + string(rune('0'+floor))
}

func TestConfigValidation(t *testing.T) {
	plan := testBuilding(t)
	rng := stats.NewRNG(1)
	bad := []TrajectoryConfig{
		{},
		{Duration: -5, MinSpeed: 1, MaxSpeed: 2, MinStay: 30, MaxStay: 60, PassMinStay: 2, PassMaxStay: 5},
		{Duration: 10, MinSpeed: 0, MaxSpeed: 2, MinStay: 30, MaxStay: 60, PassMinStay: 2, PassMaxStay: 5},
		{Duration: 10, MinSpeed: 2, MaxSpeed: 1, MinStay: 30, MaxStay: 60, PassMinStay: 2, PassMaxStay: 5},
		{Duration: 10, MinSpeed: 1, MaxSpeed: 2, MinStay: 0, MaxStay: 60, PassMinStay: 2, PassMaxStay: 5},
		{Duration: 10, MinSpeed: 1, MaxSpeed: 2, MinStay: 30, MaxStay: 60, PassMinStay: 0, PassMaxStay: 5},
	}
	for i, cfg := range bad {
		if _, err := GenerateTrajectory(plan, cfg, rng); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestTrajectoryShape(t *testing.T) {
	plan := testBuilding(t)
	rng := stats.NewRNG(42)
	cfg := NewConfig(600)
	traj, err := GenerateTrajectory(plan, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if traj.Duration() != 600 {
		t.Fatalf("duration = %d", traj.Duration())
	}
	for i, p := range traj.Points {
		if p.Time != i {
			t.Fatalf("point %d has time %d", i, p.Time)
		}
		if p.Loc < 0 || p.Loc >= plan.NumLocations() {
			t.Fatalf("point %d has location %d", i, p.Loc)
		}
		// The claimed location must contain the position.
		loc := plan.Location(p.Loc)
		if loc.Floor != p.Pos.Floor {
			t.Fatalf("point %d floor mismatch", i)
		}
		if !loc.Bounds.Contains(p.Pos.P) {
			t.Fatalf("point %d at %v outside its location %q %v", i, p.Pos.P, loc.Name, loc.Bounds)
		}
	}
}

func TestTrajectorySpeedBound(t *testing.T) {
	plan := testBuilding(t)
	rng := stats.NewRNG(7)
	cfg := NewConfig(900)
	traj, err := GenerateTrajectory(plan, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(traj.Points); i++ {
		a, b := traj.Points[i-1], traj.Points[i]
		if a.Pos.Floor != b.Pos.Floor {
			continue // stair transition teleports between landings
		}
		d := a.Pos.P.Dist(b.Pos.P)
		if d > cfg.MaxSpeed+1e-6 {
			t.Fatalf("step %d moved %.3f m in 1 s (max speed %g)", i, d, cfg.MaxSpeed)
		}
	}
}

func TestTrajectoryRespectsInferredConstraints(t *testing.T) {
	plan := testBuilding(t)
	du := constraints.InferDU(plan)
	lt := constraints.InferLT(plan, 5, floorplan.Corridor)
	tt, err := constraints.InferTT(plan, 2, 0) // generator's max speed
	if err != nil {
		t.Fatal(err)
	}
	ic := constraints.NewSet()
	ic.Merge(du)
	ic.Merge(lt)
	ic.Merge(tt)

	rng := stats.NewRNG(20140324)
	for trial := 0; trial < 25; trial++ {
		traj, err := GenerateTrajectory(plan, NewConfig(1200), rng)
		if err != nil {
			t.Fatal(err)
		}
		locs := traj.Locations()
		if !ic.ValidTrajectory(locs, constraints.LenientEnd) {
			t.Fatalf("trial %d: ground truth violates inferred constraints", trial)
		}
	}
}

func TestTrajectoryVisitsMultipleLocations(t *testing.T) {
	plan := testBuilding(t)
	rng := stats.NewRNG(3)
	traj, err := GenerateTrajectory(plan, NewConfig(1800), rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, l := range traj.Locations() {
		seen[l] = true
	}
	if len(seen) < 3 {
		t.Errorf("30-minute trajectory visited only %d locations", len(seen))
	}
}

func TestTrajectoryDeterministicPerSeed(t *testing.T) {
	plan := testBuilding(t)
	a, err := GenerateTrajectory(plan, NewConfig(300), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrajectory(plan, NewConfig(300), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("same seed diverged at point %d", i)
		}
	}
}

func TestDeadEndLocation(t *testing.T) {
	b := floorplan.NewBuilder()
	b.AddLocation("only", floorplan.Room, 0, geom.RectWH(0, 0, 5, 5))
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	traj, err := GenerateTrajectory(plan, NewConfig(120), stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if traj.Duration() != 120 {
		t.Fatalf("duration = %d", traj.Duration())
	}
	for _, p := range traj.Points {
		if p.Loc != 0 {
			t.Fatalf("left a doorless room")
		}
	}
}

func TestGenerateReadings(t *testing.T) {
	plan := testBuilding(t)
	cells, err := rfid.NewCellSpace(plan, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var readers []rfid.Reader
	id := 0
	for _, loc := range plan.Locations() {
		readers = append(readers, rfid.Reader{
			ID: id, Name: loc.Name, Floor: loc.Floor, Pos: loc.Bounds.Center(),
		})
		id++
	}
	truth := rfid.NewTruthMatrix(cells, readers, rfid.DefaultThreeState())

	rng := stats.NewRNG(11)
	traj, err := GenerateTrajectory(plan, NewConfig(600), rng)
	if err != nil {
		t.Fatal(err)
	}
	seq := GenerateReadings(traj, truth, rng)
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	if seq.Duration() != traj.Duration() {
		t.Fatalf("reading/trajectory duration mismatch")
	}
	// Readings must be physically possible: a reader that fires must have a
	// non-zero rate at the object's cell.
	detections := 0
	for i, r := range seq {
		cell := cells.CellOf(traj.Points[i].Pos.Floor, traj.Points[i].Pos.P)
		if cell < 0 {
			t.Fatalf("sample %d outside cell space", i)
		}
		for _, rid := range r.Readers.IDs() {
			detections++
			if truth.Rates[rid][cell] <= 0 {
				t.Fatalf("reader %d fired at cell with zero rate", rid)
			}
		}
	}
	if detections == 0 {
		t.Errorf("no detections in a 10-minute trajectory")
	}
}

func TestReadingsIncludeMissesAndAmbiguity(t *testing.T) {
	plan := testBuilding(t)
	cells, err := rfid.NewCellSpace(plan, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Sparse, weak readers: misses must occur.
	readers := []rfid.Reader{{ID: 0, Floor: 0, Pos: geom.Pt(2.5, 5.5)}}
	weak := rfid.ThreeState{MajorRadius: 1.5, MinorRadius: 3, MajorRate: 0.5, WallFactor: 0.1}
	truth := rfid.NewTruthMatrix(cells, readers, weak)
	rng := stats.NewRNG(13)
	traj, err := GenerateTrajectory(plan, NewConfig(600), rng)
	if err != nil {
		t.Fatal(err)
	}
	seq := GenerateReadings(traj, truth, rng)
	empty := 0
	for _, r := range seq {
		if r.Readers.IsEmpty() {
			empty++
		}
	}
	if empty == 0 {
		t.Errorf("expected missed reads with a single weak reader")
	}
}
