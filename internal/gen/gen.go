// Package gen implements the paper's synthetic data generator (§6.4): a
// trajectory generator producing ground-truth movement over a floor plan,
// and a reading generator sampling RFID detections from the ground-truth
// detection matrix F.
//
// A trajectory is built leg by leg exactly as §6.4 describes: inside the
// current location the object walks from an entrance point to a random
// rest point, pauses there for a random latency, walks to a randomly chosen
// exit door, and crosses into the next location — at a velocity drawn per
// trajectory from [MinSpeed, MaxSpeed]. Positions are sampled once per
// timestamp (1 second).
//
// Two details guarantee the ground truth satisfies the constraint sets that
// internal/constraints infers from the same plan (so cleaning never has to
// discard the true trajectory):
//
//   - every location visit spans at least one emitted sample (pass-through
//     locations pause at least PassMinStay seconds), keeping consecutive
//     samples door-adjacent (DU-sound);
//   - movement is along straight lines within (convex) locations through
//     doors, so travel times dominate the minimum walking distances TT
//     constraints are derived from (TT-sound).
package gen

import (
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/rfid"
	"repro/internal/stats"
)

// Position is a point on a specific floor.
type Position struct {
	Floor int        `json:"floor"`
	P     geom.Point `json:"p"`
}

// TrackPoint is one ground-truth sample: where the object was at an integer
// timestamp, and the location containing that point.
type TrackPoint struct {
	Time int      `json:"time"`
	Pos  Position `json:"pos"`
	Loc  int      `json:"loc"`
}

// Trajectory is a ground-truth trajectory: one TrackPoint per timestamp.
type Trajectory struct {
	Points []TrackPoint `json:"points"`
}

// Duration returns the number of timestamps covered.
func (t *Trajectory) Duration() int { return len(t.Points) }

// Locations returns the per-timestamp location IDs.
func (t *Trajectory) Locations() []int {
	out := make([]int, len(t.Points))
	for i, p := range t.Points {
		out[i] = p.Loc
	}
	return out
}

// TrajectoryConfig parameterizes the trajectory generator. NewConfig returns
// the paper's values.
type TrajectoryConfig struct {
	// Duration is the trajectory length in timestamps (seconds).
	Duration int
	// MinSpeed and MaxSpeed bound the walking speed in m/s; the paper
	// draws each trajectory's speed from [1, 2].
	MinSpeed, MaxSpeed float64
	// MinStay and MaxStay bound the rest-point latency in seconds at
	// rooms and stairwells; the paper uses [30, 60].
	MinStay, MaxStay int
	// PassMinStay and PassMaxStay bound the pause in pass-through
	// locations (corridors), which the paper's room-centric generator
	// does not dwell in. At least 2 seconds keeps the ground truth
	// DU-sound under 1-second sampling.
	PassMinStay, PassMaxStay int
	// DoorInset is how far inside a location the object aims past a door
	// before continuing (meters).
	DoorInset float64
}

// NewConfig returns the paper's generator parameters for the given duration.
func NewConfig(duration int) TrajectoryConfig {
	return TrajectoryConfig{
		Duration:    duration,
		MinSpeed:    1,
		MaxSpeed:    2,
		MinStay:     30,
		MaxStay:     60,
		PassMinStay: 2,
		PassMaxStay: 5,
		DoorInset:   0.4,
	}
}

func (c *TrajectoryConfig) validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("gen: duration must be positive, got %d", c.Duration)
	}
	if c.MinSpeed <= 0 || c.MaxSpeed < c.MinSpeed {
		return fmt.Errorf("gen: bad speed range [%g, %g]", c.MinSpeed, c.MaxSpeed)
	}
	if c.MinStay < 1 || c.MaxStay < c.MinStay {
		return fmt.Errorf("gen: bad stay range [%d, %d]", c.MinStay, c.MaxStay)
	}
	if c.PassMinStay < 1 || c.PassMaxStay < c.PassMinStay {
		return fmt.Errorf("gen: bad pass-through stay range [%d, %d]", c.PassMinStay, c.PassMaxStay)
	}
	return nil
}

// GenerateTrajectory produces one ground-truth trajectory over the plan.
func GenerateTrajectory(plan *floorplan.Plan, cfg TrajectoryConfig, rng *stats.RNG) (*Trajectory, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &simulator{plan: plan, cfg: cfg, rng: rng, traj: &Trajectory{}}
	s.speed = rng.Range(cfg.MinSpeed, cfg.MaxSpeed)

	// Random initial location and entrance point (§6.4).
	s.loc = rng.Intn(plan.NumLocations())
	s.floor = plan.Location(s.loc).Floor
	s.pos = s.randomPointIn(s.loc)

	for !s.done() {
		loc := plan.Location(s.loc)

		// Walk to a random rest point and pause there.
		s.walk(s.randomPointIn(s.loc))
		if loc.Kind == floorplan.Corridor {
			s.wait(float64(rng.IntRange(cfg.PassMinStay, cfg.PassMaxStay)))
		} else {
			s.wait(float64(rng.IntRange(cfg.MinStay, cfg.MaxStay)))
		}
		if s.done() {
			break
		}

		// Choose an exit door; a dead-end location just keeps the
		// object in place until the window fills.
		doors := plan.DoorsOf(s.loc)
		if len(doors) == 0 {
			s.wait(float64(cfg.Duration))
			break
		}
		door := plan.Door(doors[rng.Intn(len(doors))])
		s.cross(door)
	}
	s.traj.Points = s.traj.Points[:cfg.Duration]
	return s.traj, nil
}

// simulator advances continuous time, emitting one sample per integer tick.
type simulator struct {
	plan  *floorplan.Plan
	cfg   TrajectoryConfig
	rng   *stats.RNG
	traj  *Trajectory
	speed float64

	now      float64
	nextTick int
	floor    int
	loc      int
	pos      geom.Point
}

func (s *simulator) done() bool { return s.nextTick >= s.cfg.Duration }

// emitThrough records samples for every integer tick in [nextTick, limit]
// using pos interpolated between from (at time t0) and s.pos (at time s.now).
func (s *simulator) emitThrough(limit float64, from geom.Point, t0 float64) {
	for !s.done() && float64(s.nextTick) <= limit+1e-9 {
		p := s.pos
		if s.now > t0+1e-12 {
			frac := (float64(s.nextTick) - t0) / (s.now - t0)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			p = from.Lerp(s.pos, frac)
		}
		s.traj.Points = append(s.traj.Points, TrackPoint{
			Time: s.nextTick,
			Pos:  Position{Floor: s.floor, P: p},
			Loc:  s.loc,
		})
		s.nextTick++
	}
}

// walk moves in a straight line (legal inside a convex location) to the
// target point at the trajectory speed.
func (s *simulator) walk(to geom.Point) {
	from, t0 := s.pos, s.now
	d := from.Dist(to)
	s.pos = to
	s.now = t0 + d/s.speed
	s.emitThrough(s.now, from, t0)
}

// wait keeps the object in place for the given number of seconds.
func (s *simulator) wait(seconds float64) {
	t0 := s.now
	s.now += seconds
	s.emitThrough(s.now, s.pos, t0)
}

// cross walks to the door and through it into the adjacent location. Stairs
// add their extra length at walking speed, splitting the time between the
// two landings.
func (s *simulator) cross(d floorplan.Door) {
	s.walk(d.PosIn(s.loc))
	next := d.Other(s.loc)
	if d.ExtraLength > 0 {
		// Stairs: first half of the climb counts as the current
		// stairwell, the second half as the next one.
		half := d.ExtraLength / s.speed / 2
		s.wait(half)
		s.loc = next
		s.floor = s.plan.Location(next).Floor
		s.pos = d.PosIn(next)
		s.wait(half)
	} else {
		s.loc = next
		s.floor = s.plan.Location(next).Floor
	}
	// Step clear of the doorway so samples fall strictly inside.
	s.walk(s.insetPoint(next, s.pos))
	// Guarantee at least one emitted sample inside the location, keeping
	// consecutive samples door-adjacent.
	for !s.done() && len(s.traj.Points) > 0 && s.traj.Points[len(s.traj.Points)-1].Loc != s.loc {
		s.wait(1)
	}
}

// randomPointIn draws a point inside the location, inset from its walls.
func (s *simulator) randomPointIn(loc int) geom.Point {
	r := s.plan.Location(loc).Bounds.Inset(s.cfg.DoorInset)
	return geom.Pt(s.rng.Range(r.Min.X, r.Max.X+1e-12), s.rng.Range(r.Min.Y, r.Max.Y+1e-12))
}

// insetPoint nudges a boundary point toward the location's interior.
func (s *simulator) insetPoint(loc int, p geom.Point) geom.Point {
	b := s.plan.Location(loc).Bounds
	c := b.Center()
	dir := c.Sub(p)
	n := dir.Norm()
	if n < 1e-9 {
		return p
	}
	step := s.cfg.DoorInset
	if step > n {
		step = n
	}
	return b.Inset(s.cfg.DoorInset / 2).Clamp(p.Add(dir.Scale(step / n)))
}

// GenerateReadings converts a ground-truth trajectory into a reading
// sequence by sampling each reader independently with probability F[r, c]
// for the cell c containing the object (§6.4). Samples falling outside the
// cell space (which a well-formed plan never produces) yield empty readings.
func GenerateReadings(traj *Trajectory, f *rfid.Matrix, rng *stats.RNG) rfid.Sequence {
	seq := make(rfid.Sequence, 0, traj.Duration())
	for _, tp := range traj.Points {
		cell := f.Cells.CellOf(tp.Pos.Floor, tp.Pos.P)
		var set rfid.Set
		if cell >= 0 {
			set = f.DetectAt(cell, rng)
		}
		seq = append(seq, rfid.Reading{Time: tp.Time, Readers: set})
	}
	return seq
}
