// Package stats provides the small numeric substrate shared by the synthetic
// data generator and the experiment harness: a seeded, reproducible random
// number generator and summary statistics.
//
// A dedicated RNG (rather than math/rand's global state) keeps every dataset
// and experiment bit-reproducible from a seed, which the paper's evaluation
// methodology (fixed synthetic datasets SYN1/SYN2) depends on.
package stats

import "math"

// RNG is a small, fast, seedable pseudo-random number generator
// (xorshift64*). The zero value is not usable; construct with NewRNG.
// RNG is not safe for concurrent use; give each goroutine its own, split off
// with Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Any seed is acceptable;
// seed 0 is remapped internally to a fixed non-zero constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r := &RNG{state: seed}
	// Warm up so that nearby seeds diverge immediately.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
	return r
}

// Split returns a new independent generator derived from r's stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() | 1)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand's contract.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi). When hi <= lo it returns lo.
func (r *RNG) Range(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*r.Float64()
}

// IntRange returns a uniform integer in [lo, hi] inclusive. When hi < lo it
// returns lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Pick returns a uniformly chosen index weighted by the non-negative weights.
// It returns -1 when the weights are empty or sum to zero.
func (r *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N           int
	Mean        float64
	StdDev      float64
	Min, Max    float64
	Sum         float64
	SampleCount int // alias of N kept for clarity in reports
}

// Summarize computes descriptive statistics of xs. It returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), SampleCount: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
