package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds agree on %d/100 draws", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Errorf("zero seed produced degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of range: %v", x)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(7)
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Errorf("bucket %d has fraction %v", i, frac)
		}
	}
}

func TestIntn(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn(5) only produced %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRangeAndIntRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		x := r.Range(2, 5)
		if x < 2 || x >= 5 {
			t.Fatalf("Range out of bounds: %v", x)
		}
		n := r.IntRange(3, 7)
		if n < 3 || n > 7 {
			t.Fatalf("IntRange out of bounds: %d", n)
		}
	}
	if r.Range(4, 4) != 4 {
		t.Errorf("empty Range should return lo")
	}
	if r.IntRange(4, 2) != 4 {
		t.Errorf("inverted IntRange should return lo")
	}
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", frac)
	}
	if r.Bernoulli(0) {
		t.Errorf("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1.1) {
		t.Errorf("Bernoulli(>1) returned false")
	}
}

func TestPick(t *testing.T) {
	r := NewRNG(13)
	if got := r.Pick(nil); got != -1 {
		t.Errorf("Pick(nil) = %d", got)
	}
	if got := r.Pick([]float64{0, 0}); got != -1 {
		t.Errorf("Pick(zeros) = %d", got)
	}
	// Weight 0 entries must never be picked.
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight entry picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(17)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	// Same multiset.
	seen := make(map[int]int)
	for _, x := range xs {
		seen[x]++
	}
	for _, x := range orig {
		if seen[x] != 1 {
			t.Fatalf("shuffle changed contents: %v", xs)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(23)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams agree on %d/100 draws", same)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
	s = Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	// Sample stddev of this classic dataset is ~2.138.
	if math.Abs(s.StdDev-2.13809) > 1e-4 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	one := Summarize([]float64{3})
	if one.StdDev != 0 || one.Mean != 3 {
		t.Errorf("singleton summary = %+v", one)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Errorf("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Errorf("Mean wrong")
	}
}
