// Package constraints implements the three families of integrity constraints
// the paper's cleaning framework conditions on (§3):
//
//   - direct unreachability: unreachable(l1, l2) — no object can reach l2
//     from l1 in one time point;
//   - traveling time: travelingTime(l1, l2, ν) — moving from l1 to l2 takes
//     at least ν time points;
//   - latency: latency(l, δ) — every stay at l lasts at least δ time points.
//
// It also provides the automatic inference the paper's experiments use
// (§6.3 and footnote 1): DU constraints from the map's door structure, TT
// constraints from minimum walking distances and the objects' maximum speed,
// and LT constraints from a minimum-stay policy.
//
// Finally, it implements Definition 2 directly: a trajectory-validity check
// that is independent of the ct-graph construction, used as the ground-truth
// oracle in the core package's property tests.
package constraints

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/floorplan"
)

// EndLatencyMode selects how latency constraints treat a stay truncated by
// the end of the monitoring window (a corner Definition 2 and Algorithm 1
// resolve differently; see DESIGN.md §3).
type EndLatencyMode int

const (
	// StrictEnd follows Definition 2 literally: a stay that starts too
	// close to the end of the window to reach its required length makes
	// the trajectory invalid.
	StrictEnd EndLatencyMode = iota
	// LenientEnd follows Algorithm 1 as printed: the window end truncates
	// the obligation, so a trailing short stay is allowed.
	LenientEnd
)

// String implements fmt.Stringer.
func (m EndLatencyMode) String() string {
	if m == LenientEnd {
		return "lenient-end"
	}
	return "strict-end"
}

// Set is a set of integrity constraints over locations identified by dense
// integer IDs (as assigned by a floorplan.Plan). The zero value is an empty
// set; use NewSet for a set sized to a known number of locations.
type Set struct {
	unreach map[[2]int]bool
	latency map[int]int
	tt      map[int]map[int]int // from -> to -> min traveling time ν
	maxTT   map[int]int         // from -> max ν over its TT constraints
}

// NewSet returns an empty constraint set.
func NewSet() *Set {
	return &Set{
		unreach: make(map[[2]int]bool),
		latency: make(map[int]int),
		tt:      make(map[int]map[int]int),
		maxTT:   make(map[int]int),
	}
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := NewSet()
	for k, v := range s.unreach {
		c.unreach[k] = v
	}
	for k, v := range s.latency {
		c.latency[k] = v
	}
	for from, m := range s.tt {
		cm := make(map[int]int, len(m))
		for to, v := range m {
			cm[to] = v
		}
		c.tt[from] = cm
	}
	for k, v := range s.maxTT {
		c.maxTT[k] = v
	}
	return c
}

// AddDU adds unreachable(from, to). DU constraints are directional; add both
// orders for a symmetric wall. from == to is allowed and means the object
// can never remain at the location for two consecutive time points.
func (s *Set) AddDU(from, to int) {
	s.unreach[[2]int{from, to}] = true
}

// AddLT adds latency(loc, minStay). Constraints with minStay <= 1 are
// vacuous (every stay lasts at least one time point) and are dropped.
func (s *Set) AddLT(loc, minStay int) {
	if minStay > 1 {
		s.latency[loc] = minStay
	}
}

// AddTT adds travelingTime(from, to, ν). Constraints with ν <= 1 are vacuous
// and dropped. from == to with ν > 1 would forbid any stay of length two and
// is rejected as pathological.
func (s *Set) AddTT(from, to, nu int) error {
	if nu <= 1 {
		return nil
	}
	if from == to {
		return fmt.Errorf("constraints: travelingTime(%d,%d,%d) forbids staying at %d; use AddDU for that",
			from, to, nu, from)
	}
	m := s.tt[from]
	if m == nil {
		m = make(map[int]int)
		s.tt[from] = m
	}
	if nu > m[to] {
		m[to] = nu
	}
	if nu > s.maxTT[from] {
		s.maxTT[from] = nu
	}
	return nil
}

// Unreachable reports whether unreachable(from, to) holds.
func (s *Set) Unreachable(from, to int) bool {
	if s == nil || s.unreach == nil {
		return false
	}
	return s.unreach[[2]int{from, to}]
}

// Latency returns the minimum stay length for loc and whether a (non-vacuous)
// latency constraint exists.
func (s *Set) Latency(loc int) (minStay int, ok bool) {
	if s == nil || s.latency == nil {
		return 0, false
	}
	minStay, ok = s.latency[loc]
	return minStay, ok
}

// TT returns the minimum traveling time from one location to another and
// whether such a constraint exists.
func (s *Set) TT(from, to int) (nu int, ok bool) {
	if s == nil || s.tt == nil {
		return 0, false
	}
	m, ok := s.tt[from]
	if !ok {
		return 0, false
	}
	nu, ok = m[to]
	return nu, ok
}

// HasTTFrom reports whether any TT constraint has from as its first argument.
func (s *Set) HasTTFrom(from int) bool {
	if s == nil {
		return false
	}
	return len(s.tt[from]) > 0
}

// MaxTravelingTime returns the paper's maxTravelingTime(from): the maximum ν
// over all TT constraints leaving from, or 0 when there are none.
func (s *Set) MaxTravelingTime(from int) int {
	if s == nil {
		return 0
	}
	return s.maxTT[from]
}

// Compiled is a slice-backed, read-only view of a Set for hot paths: every
// lookup is a bounds check plus an array index instead of a map probe.
// Locations at or beyond the compiled range simply have no constraints, so
// the view answers correctly for any location ID.
type Compiled struct {
	n       int
	unreach []bool  // [from*n+to]
	latency []int32 // [loc], 0 = no constraint
	tt      []int32 // [from*n+to], 0 = no constraint
	maxTT   []int32 // [from]
	hasTT   []bool  // [from]
}

// Compile builds the dense view. The result is immutable and must be rebuilt
// if the set changes.
func (s *Set) Compile() *Compiled {
	n := 0
	track := func(loc int) {
		if loc+1 > n {
			n = loc + 1
		}
	}
	for k := range s.unreach {
		track(k[0])
		track(k[1])
	}
	for loc := range s.latency {
		track(loc)
	}
	for from, m := range s.tt {
		track(from)
		for to := range m {
			track(to)
		}
	}
	c := &Compiled{
		n:       n,
		unreach: make([]bool, n*n),
		latency: make([]int32, n),
		tt:      make([]int32, n*n),
		maxTT:   make([]int32, n),
		hasTT:   make([]bool, n),
	}
	for k, v := range s.unreach {
		if v {
			c.unreach[k[0]*n+k[1]] = true
		}
	}
	for loc, d := range s.latency {
		c.latency[loc] = int32(d)
	}
	for from, m := range s.tt {
		for to, nu := range m {
			c.tt[from*n+to] = int32(nu)
		}
		c.hasTT[from] = len(m) > 0
		c.maxTT[from] = int32(s.maxTT[from])
	}
	return c
}

// Unreachable mirrors Set.Unreachable.
func (c *Compiled) Unreachable(from, to int) bool {
	return uint(from) < uint(c.n) && uint(to) < uint(c.n) && c.unreach[from*c.n+to]
}

// Latency mirrors Set.Latency.
func (c *Compiled) Latency(loc int) (minStay int, ok bool) {
	if uint(loc) >= uint(c.n) || c.latency[loc] == 0 {
		return 0, false
	}
	return int(c.latency[loc]), true
}

// TT mirrors Set.TT.
func (c *Compiled) TT(from, to int) (nu int, ok bool) {
	if uint(from) >= uint(c.n) || uint(to) >= uint(c.n) {
		return 0, false
	}
	if v := c.tt[from*c.n+to]; v != 0 {
		return int(v), true
	}
	return 0, false
}

// HasTTFrom mirrors Set.HasTTFrom.
func (c *Compiled) HasTTFrom(from int) bool {
	return uint(from) < uint(c.n) && c.hasTT[from]
}

// MaxTravelingTime mirrors Set.MaxTravelingTime.
func (c *Compiled) MaxTravelingTime(from int) int {
	if uint(from) >= uint(c.n) {
		return 0
	}
	return int(c.maxTT[from])
}

// Counts returns the number of DU, LT and TT constraints in the set.
func (s *Set) Counts() (du, lt, tt int) {
	du = len(s.unreach)
	lt = len(s.latency)
	for _, m := range s.tt {
		tt += len(m)
	}
	return du, lt, tt
}

// String summarizes the set.
func (s *Set) String() string {
	du, lt, tt := s.Counts()
	var parts []string
	if du > 0 {
		parts = append(parts, fmt.Sprintf("%d DU", du))
	}
	if lt > 0 {
		parts = append(parts, fmt.Sprintf("%d LT", lt))
	}
	if tt > 0 {
		parts = append(parts, fmt.Sprintf("%d TT", tt))
	}
	if len(parts) == 0 {
		return "constraints{}"
	}
	return "constraints{" + strings.Join(parts, ", ") + "}"
}

// Merge adds all constraints of other into s.
func (s *Set) Merge(other *Set) {
	if other == nil {
		return
	}
	for k := range other.unreach {
		s.unreach[k] = true
	}
	for loc, d := range other.latency {
		if d > s.latency[loc] {
			s.latency[loc] = d
		}
	}
	for from, m := range other.tt {
		for to, nu := range m {
			// Only same-location TT can error, and other was validated.
			_ = s.AddTT(from, to, nu)
		}
	}
}

// ValidTrajectory implements Definition 2 directly: it reports whether the
// trajectory (locs[τ] is the object's location at time τ) satisfies every
// constraint in the set, under the given end-of-window latency mode.
func (s *Set) ValidTrajectory(locs []int, mode EndLatencyMode) bool {
	n := len(locs)
	if n == 0 {
		return true
	}
	// DU: consecutive steps.
	for i := 0; i+1 < n; i++ {
		if s.Unreachable(locs[i], locs[i+1]) {
			return false
		}
	}
	// LT: every stay starting at τ (τ=0 or a location change) must run at
	// least δ time points.
	for i := 0; i < n; i++ {
		if i > 0 && locs[i] == locs[i-1] {
			continue // not a stay start
		}
		delta, ok := s.Latency(locs[i])
		if !ok {
			continue
		}
		runEnd := i
		for runEnd+1 < n && locs[runEnd+1] == locs[i] {
			runEnd++
		}
		length := runEnd - i + 1
		if length >= delta {
			continue
		}
		// Stay shorter than required: invalid unless it was truncated
		// by the window end and we are lenient about that.
		if mode == LenientEnd && runEnd == n-1 {
			continue
		}
		return false
	}
	// TT: no pair (τ1, l1), (τ2, l2) with τ1 < τ2 and τ2 − τ1 < ν.
	// It suffices to look back maxTT(l1)−1 steps from each τ2.
	for t2 := 1; t2 < n; t2++ {
		l2 := locs[t2]
		for back := 1; back < t2+1; back++ {
			t1 := t2 - back
			l1 := locs[t1]
			if nu, ok := s.TT(l1, l2); ok && back < nu {
				return false
			}
			// Early exit: nothing reaching further back can bind
			// if even the largest ν from any location is exceeded.
			// (Conservative: we just cap at the global max.)
			if back >= s.globalMaxTT() {
				break
			}
		}
	}
	return true
}

// globalMaxTT returns the maximum ν over all TT constraints.
func (s *Set) globalMaxTT() int {
	max := 0
	for _, v := range s.maxTT {
		if v > max {
			max = v
		}
	}
	return max
}

// InferDU derives all direct-unreachability constraints implied by the map:
// unreachable(a, b) for every ordered pair of distinct locations not sharing
// a door (§6.3, set DU).
func InferDU(plan *floorplan.Plan) *Set {
	s := NewSet()
	n := plan.NumLocations()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && !plan.DirectlyConnected(a, b) {
				s.AddDU(a, b)
			}
		}
	}
	return s
}

// InferLT derives latency constraints imposing a minimum stay of minStay
// time points at every location whose kind is not among the excluded ones
// (§6.3 uses 5 seconds for every location but the corridors).
func InferLT(plan *floorplan.Plan, minStay int, exclude ...floorplan.Kind) *Set {
	s := NewSet()
	skip := make(map[floorplan.Kind]bool, len(exclude))
	for _, k := range exclude {
		skip[k] = true
	}
	for _, l := range plan.Locations() {
		if !skip[l.Kind] {
			s.AddLT(l.ID, minStay)
		}
	}
	return s
}

// InferTT derives traveling-time constraints for every ordered pair of
// locations that are connected but not directly connected: ν is the minimum
// walking distance divided by the maximum speed (meters per time point),
// rounded down so the constraint is sound (§6.3, set TT). Vacuous
// constraints (ν <= 1) are dropped.
//
// A positive cap truncates every ν at that many time points. Capping keeps
// the constraints sound (they only get weaker) while bounding the lifetime
// of the TT bookkeeping the ct-graph carries per node, which §6.5 identifies
// as the cost driver on large maps: maxTravelingTime grows with the map
// diameter, and with it the number of location nodes per (timestamp,
// location) pair. Pass cap <= 0 for the paper's uncapped inference.
func InferTT(plan *floorplan.Plan, maxSpeed float64, cap int) (*Set, error) {
	if maxSpeed <= 0 {
		return nil, fmt.Errorf("constraints: max speed must be positive, got %g", maxSpeed)
	}
	s := NewSet()
	n := plan.NumLocations()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b || plan.DirectlyConnected(a, b) {
				continue
			}
			d := plan.MinWalkDistance(a, b)
			if math.IsInf(d, 1) {
				continue // unreachable pairs are covered by DU only
			}
			nu := int(d / maxSpeed)
			if cap > 0 && nu > cap {
				nu = cap
			}
			if nu > 1 {
				if err := s.AddTT(a, b, nu); err != nil {
					return nil, err
				}
			}
		}
	}
	return s, nil
}

// Describe renders the constraints readably using the plan's location names,
// in a deterministic order. Intended for debugging and the CLI tools.
func (s *Set) Describe(plan *floorplan.Plan) []string {
	name := func(id int) string {
		if plan != nil && id >= 0 && id < plan.NumLocations() {
			return plan.Location(id).Name
		}
		return fmt.Sprintf("L%d", id)
	}
	var out []string
	for k := range s.unreach {
		out = append(out, fmt.Sprintf("unreachable(%s, %s)", name(k[0]), name(k[1])))
	}
	for loc, d := range s.latency {
		out = append(out, fmt.Sprintf("latency(%s, %d)", name(loc), d))
	}
	for from, m := range s.tt {
		for to, nu := range m {
			out = append(out, fmt.Sprintf("travelingTime(%s, %s, %d)", name(from), name(to), nu))
		}
	}
	sort.Strings(out)
	return out
}
