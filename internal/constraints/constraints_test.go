package constraints

import (
	"strings"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
)

func TestAddAndLookup(t *testing.T) {
	s := NewSet()
	s.AddDU(1, 2)
	if !s.Unreachable(1, 2) {
		t.Errorf("DU not stored")
	}
	if s.Unreachable(2, 1) {
		t.Errorf("DU should be directional")
	}

	s.AddLT(3, 5)
	if d, ok := s.Latency(3); !ok || d != 5 {
		t.Errorf("LT = %d, %v", d, ok)
	}
	s.AddLT(4, 1) // vacuous
	if _, ok := s.Latency(4); ok {
		t.Errorf("vacuous LT stored")
	}

	if err := s.AddTT(1, 3, 7); err != nil {
		t.Fatal(err)
	}
	if nu, ok := s.TT(1, 3); !ok || nu != 7 {
		t.Errorf("TT = %d, %v", nu, ok)
	}
	if _, ok := s.TT(3, 1); ok {
		t.Errorf("TT should be directional")
	}
	if err := s.AddTT(1, 3, 4); err != nil {
		t.Fatal(err)
	}
	if nu, _ := s.TT(1, 3); nu != 7 {
		t.Errorf("weaker TT overwrote stronger: %d", nu)
	}
	if err := s.AddTT(5, 5, 3); err == nil {
		t.Errorf("self TT accepted")
	}
	if err := s.AddTT(5, 6, 1); err != nil || s.HasTTFrom(5) {
		t.Errorf("vacuous TT stored")
	}
	if s.MaxTravelingTime(1) != 7 {
		t.Errorf("MaxTravelingTime = %d", s.MaxTravelingTime(1))
	}
	if s.MaxTravelingTime(99) != 0 {
		t.Errorf("MaxTravelingTime of unconstrained loc should be 0")
	}

	du, lt, tt := s.Counts()
	if du != 1 || lt != 1 || tt != 1 {
		t.Errorf("Counts = %d %d %d", du, lt, tt)
	}
	if got := s.String(); !strings.Contains(got, "1 DU") {
		t.Errorf("String = %q", got)
	}
	if NewSet().String() != "constraints{}" {
		t.Errorf("empty String wrong")
	}
}

func TestNilSafety(t *testing.T) {
	var s *Set
	if s.Unreachable(1, 2) {
		t.Errorf("nil Unreachable true")
	}
	if _, ok := s.Latency(1); ok {
		t.Errorf("nil Latency found")
	}
	if _, ok := s.TT(1, 2); ok {
		t.Errorf("nil TT found")
	}
	if s.MaxTravelingTime(0) != 0 || s.HasTTFrom(0) {
		t.Errorf("nil TT helpers wrong")
	}
}

func TestCloneAndMerge(t *testing.T) {
	s := NewSet()
	s.AddDU(0, 1)
	s.AddLT(2, 4)
	if err := s.AddTT(0, 2, 5); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.AddDU(1, 0)
	if s.Unreachable(1, 0) {
		t.Errorf("clone not independent")
	}

	other := NewSet()
	other.AddLT(2, 6)
	if err := other.AddTT(0, 2, 9); err != nil {
		t.Fatal(err)
	}
	s.Merge(other)
	if d, _ := s.Latency(2); d != 6 {
		t.Errorf("merge kept weaker LT: %d", d)
	}
	if nu, _ := s.TT(0, 2); nu != 9 {
		t.Errorf("merge kept weaker TT: %d", nu)
	}
	s.Merge(nil) // no-op
}

func TestValidTrajectoryDU(t *testing.T) {
	s := NewSet()
	s.AddDU(0, 2)
	if !s.ValidTrajectory([]int{0, 1, 2}, StrictEnd) {
		t.Errorf("legal path rejected")
	}
	if s.ValidTrajectory([]int{0, 2}, StrictEnd) {
		t.Errorf("DU violation accepted")
	}
	// DU(l,l) forbids staying.
	s2 := NewSet()
	s2.AddDU(1, 1)
	if s2.ValidTrajectory([]int{1, 1}, StrictEnd) {
		t.Errorf("stay under DU(l,l) accepted")
	}
	if !s2.ValidTrajectory([]int{1, 0, 1}, StrictEnd) {
		t.Errorf("bouncing should be fine")
	}
}

func TestValidTrajectoryLT(t *testing.T) {
	s := NewSet()
	s.AddLT(1, 3)
	if !s.ValidTrajectory([]int{0, 1, 1, 1, 0}, StrictEnd) {
		t.Errorf("satisfied stay rejected")
	}
	if s.ValidTrajectory([]int{0, 1, 1, 0}, StrictEnd) {
		t.Errorf("2-long stay accepted with latency 3")
	}
	// Stay in progress at τ=0 counts as starting at 0.
	if s.ValidTrajectory([]int{1, 1, 0}, StrictEnd) {
		t.Errorf("short initial stay accepted")
	}
	if !s.ValidTrajectory([]int{1, 1, 1, 0}, StrictEnd) {
		t.Errorf("full initial stay rejected")
	}
	// End-of-window truncation: strict vs lenient.
	if s.ValidTrajectory([]int{0, 1, 1}, StrictEnd) {
		t.Errorf("strict mode accepted trailing short stay")
	}
	if !s.ValidTrajectory([]int{0, 1, 1}, LenientEnd) {
		t.Errorf("lenient mode rejected trailing short stay")
	}
	// Mid-trajectory short stay is invalid in both modes.
	if s.ValidTrajectory([]int{1, 0, 1, 0}, LenientEnd) {
		t.Errorf("lenient mode accepted mid short stay")
	}
}

func TestValidTrajectoryTT(t *testing.T) {
	s := NewSet()
	if err := s.AddTT(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	// 0 at τ=0, 2 at τ=2: gap 2 < 3 → invalid.
	if s.ValidTrajectory([]int{0, 1, 2}, StrictEnd) {
		t.Errorf("TT violation accepted")
	}
	// gap 3 → valid.
	if !s.ValidTrajectory([]int{0, 1, 1, 2}, StrictEnd) {
		t.Errorf("TT-satisfying path rejected")
	}
	// Direct move 0->2 in one step also violates TT.
	if s.ValidTrajectory([]int{0, 2}, StrictEnd) {
		t.Errorf("direct move violating TT accepted")
	}
	// The LAST visit binds: revisiting 0 resets the clock.
	if s.ValidTrajectory([]int{0, 1, 1, 0, 1, 2}, StrictEnd) {
		t.Errorf("TT should bind on the most recent visit")
	}
	if !s.ValidTrajectory([]int{0, 1, 1, 0, 1, 1, 2}, StrictEnd) {
		t.Errorf("TT after full gap from last visit rejected")
	}
	// Direction matters: 2 -> 0 is unconstrained.
	if !s.ValidTrajectory([]int{2, 0}, StrictEnd) {
		t.Errorf("reverse direction rejected")
	}
}

func TestValidTrajectoryEmpty(t *testing.T) {
	s := NewSet()
	if !s.ValidTrajectory(nil, StrictEnd) {
		t.Errorf("empty trajectory invalid")
	}
	if !s.ValidTrajectory([]int{3}, StrictEnd) {
		t.Errorf("unconstrained singleton invalid")
	}
}

// paperPlan builds the corridor plan used across packages:
// corridor (id 0) with rooms R0,R1,R2 (ids 1..3) connected only to it.
func paperPlan(t *testing.T) *floorplan.Plan {
	t.Helper()
	b := floorplan.NewBuilder()
	cor := b.AddLocation("corridor", floorplan.Corridor, 0, geom.RectWH(0, 0, 12, 2))
	r0 := b.AddLocation("R0", floorplan.Room, 0, geom.RectWH(0, 2, 4, 4))
	r1 := b.AddLocation("R1", floorplan.Room, 0, geom.RectWH(4, 2, 4, 4))
	r2 := b.AddLocation("R2", floorplan.Room, 0, geom.RectWH(8, 2, 4, 4))
	b.AddDoor(cor, r0, geom.Pt(2, 2), 1)
	b.AddDoor(cor, r1, geom.Pt(6, 2), 1)
	b.AddDoor(cor, r2, geom.Pt(10, 2), 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInferDU(t *testing.T) {
	p := paperPlan(t)
	s := InferDU(p)
	// Rooms are pairwise unreachable directly; corridor reaches all.
	if !s.Unreachable(1, 2) || !s.Unreachable(2, 1) || !s.Unreachable(1, 3) {
		t.Errorf("room-room DU missing")
	}
	if s.Unreachable(0, 1) || s.Unreachable(1, 0) {
		t.Errorf("corridor-room wrongly unreachable")
	}
	du, lt, tt := s.Counts()
	if du != 6 || lt != 0 || tt != 0 {
		t.Errorf("Counts = %d %d %d, want 6 0 0", du, lt, tt)
	}
}

func TestInferLT(t *testing.T) {
	p := paperPlan(t)
	s := InferLT(p, 5, floorplan.Corridor)
	if _, ok := s.Latency(0); ok {
		t.Errorf("corridor got a latency constraint")
	}
	for id := 1; id <= 3; id++ {
		if d, ok := s.Latency(id); !ok || d != 5 {
			t.Errorf("room %d latency = %d, %v", id, d, ok)
		}
	}
}

func TestInferTT(t *testing.T) {
	p := paperPlan(t)
	// Door positions: R0@(2,2), R1@(6,2), R2@(10,2). Distances: R0-R1 = 4,
	// R0-R2 = 8. With max speed 2 m/s: ν = 2 and 4.
	s, err := InferTT(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nu, ok := s.TT(1, 2); !ok || nu != 2 {
		t.Errorf("TT(R0,R1) = %d, %v", nu, ok)
	}
	if nu, ok := s.TT(1, 3); !ok || nu != 4 {
		t.Errorf("TT(R0,R2) = %d, %v", nu, ok)
	}
	if _, ok := s.TT(0, 1); ok {
		t.Errorf("directly connected pair got TT")
	}
	// Higher speed: R0-R1 becomes vacuous (4/4 = 1).
	s2, err := InferTT(p, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.TT(1, 2); ok {
		t.Errorf("vacuous inferred TT stored")
	}
	if _, err := InferTT(p, 0, 0); err == nil {
		t.Errorf("zero speed accepted")
	}
}

func TestInferTTUnreachablePair(t *testing.T) {
	b := floorplan.NewBuilder()
	b.AddLocation("A", floorplan.Room, 0, geom.RectWH(0, 0, 4, 4))
	b.AddLocation("B", floorplan.Room, 0, geom.RectWH(10, 0, 4, 4))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := InferTT(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.TT(0, 1); ok {
		t.Errorf("TT for physically unreachable pair")
	}
}

func TestDescribe(t *testing.T) {
	p := paperPlan(t)
	s := NewSet()
	s.AddDU(1, 2)
	s.AddLT(1, 5)
	if err := s.AddTT(1, 3, 4); err != nil {
		t.Fatal(err)
	}
	lines := s.Describe(p)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"unreachable(R0, R1)", "latency(R0, 5)", "travelingTime(R0, R2, 4)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Describe missing %q in:\n%s", want, joined)
		}
	}
	// Without a plan, numeric names are used.
	lines = s.Describe(nil)
	if !strings.Contains(strings.Join(lines, "\n"), "unreachable(L1, L2)") {
		t.Errorf("Describe(nil) = %v", lines)
	}
}

func TestEndLatencyModeString(t *testing.T) {
	if StrictEnd.String() != "strict-end" || LenientEnd.String() != "lenient-end" {
		t.Errorf("mode strings wrong")
	}
}
