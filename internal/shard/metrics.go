package shard

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Router-side metrics: a deliberately tiny stdlib-only registry in the same
// Prometheus text format internal/server emits. The router's series are all
// keyed by shard, so an operator reading the router's /metrics sees at a
// glance which worker is slow, erroring, or unreachable — the per-shard
// health view next to the aggregate /healthz. The instruments mirror the
// server's (same bucket ladder, same rendering) but are re-implemented here:
// the server's primitives are unexported by design, and the router needs
// only a fraction of them.

// requestClasses are the outcome classes of one forwarded request.
const (
	classOK        = "2xx"
	class3xx       = "3xx"
	class4xx       = "4xx"
	class5xx       = "5xx"
	classTransport = "transport" // no response: dial/read failure or timeout
)

// counter is a monotonically increasing metric.
type counter struct{ n atomic.Uint64 }

func (c *counter) inc()          { c.n.Add(1) }
func (c *counter) value() uint64 { return c.n.Load() }

// labeled fans a counter out over the value combinations of a fixed label
// list.
type labeled struct {
	labels []string
	mu     sync.Mutex
	vals   map[string]*counter // key = label values joined with \x00
}

func newLabeled(labels ...string) *labeled {
	return &labeled{labels: labels, vals: make(map[string]*counter)}
}

func (l *labeled) inc(values ...string) {
	if len(values) != len(l.labels) {
		panic("shard: labeled counter arity mismatch")
	}
	key := strings.Join(values, "\x00")
	l.mu.Lock()
	c := l.vals[key]
	if c == nil {
		c = &counter{}
		l.vals[key] = c
	}
	l.mu.Unlock()
	c.inc()
}

// get returns one series' count (tests; missing series read as zero).
func (l *labeled) get(values ...string) uint64 {
	key := strings.Join(values, "\x00")
	l.mu.Lock()
	defer l.mu.Unlock()
	if c := l.vals[key]; c != nil {
		return c.value()
	}
	return 0
}

// labeledGauge fans a gauge out over the values of a single label.
type labeledGauge struct {
	label string
	mu    sync.Mutex
	vals  map[string]*atomic.Int64
}

func newLabeledGauge(label string) *labeledGauge {
	return &labeledGauge{label: label, vals: make(map[string]*atomic.Int64)}
}

func (g *labeledGauge) set(value string, v int64) {
	g.mu.Lock()
	n := g.vals[value]
	if n == nil {
		n = &atomic.Int64{}
		g.vals[value] = n
	}
	g.mu.Unlock()
	n.Store(v)
}

// histogram is a cumulative histogram with fixed bounds.
type histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []uint64 // per-bucket; counts[len(bounds)] = +Inf
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// labeledHistogram fans a histogram out over the values of a single label;
// every series shares one bound list.
type labeledHistogram struct {
	label  string
	bounds []float64
	mu     sync.Mutex
	vals   map[string]*histogram
}

func newLabeledHistogram(label string, bounds []float64) *labeledHistogram {
	return &labeledHistogram{label: label, bounds: bounds, vals: make(map[string]*histogram)}
}

func (lh *labeledHistogram) observe(value string, v float64) {
	lh.mu.Lock()
	h := lh.vals[value]
	if h == nil {
		h = newHistogram(lh.bounds)
		lh.vals[value] = h
	}
	lh.mu.Unlock()
	h.observe(v)
}

// latencyBounds is the request-latency bucket ladder (seconds), matching the
// server's so router-side and worker-side distributions line up.
var latencyBounds = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// routerMetrics is the router's registry.
type routerMetrics struct {
	// requests counts every forwarded sub-request by shard and outcome
	// class (2xx..5xx, or transport when no response came back).
	requests *labeled
	// seconds is the per-shard forwarded-request latency.
	seconds *labeledHistogram
	// retries counts connection-error retries across all shards.
	retries counter
	// shardUp is 1/0 per shard as of its last contact.
	shardUp *labeledGauge
	// partials counts scatter-gather reads answered degraded (some shard
	// unreachable; response carries the partial marker).
	partials counter
	// replicationFailures counts deployment register/delete fan-outs that
	// could not reach every shard.
	replicationFailures counter
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{
		requests: newLabeled("shard", "class"),
		seconds:  newLabeledHistogram("shard", latencyBounds),
		shardUp:  newLabeledGauge("shard"),
	}
}

// observe records one forwarded sub-request's outcome for a shard.
func (m *routerMetrics) observe(shard int, class string, seconds float64) {
	s := strconv.Itoa(shard)
	m.requests.inc(s, class)
	m.seconds.observe(s, seconds)
	up := int64(1)
	if class == classTransport {
		up = 0
	}
	m.shardUp.set(s, up)
}

// ServeHTTP renders the registry in the Prometheus text format.
func (m *routerMetrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.writeTo(w)
}

func (m *routerMetrics) writeTo(w io.Writer) {
	writeHeader(w, "rfidclean_router_requests_total",
		"Requests the router forwarded to worker shards, by shard and outcome class.", "counter")
	writeLabeledValues(w, "rfidclean_router_requests_total", m.requests)
	writeHeader(w, "rfidclean_router_request_duration_seconds",
		"Latency of requests forwarded to worker shards, by shard.", "histogram")
	m.writeLatencies(w)
	writeHeader(w, "rfidclean_router_retries_total",
		"Forwarded requests retried after a connection-level error.", "counter")
	fmt.Fprintf(w, "rfidclean_router_retries_total %d\n", m.retries.value())
	writeHeader(w, "rfidclean_router_shard_up",
		"1 when the shard answered its most recent forwarded request, 0 when it was unreachable.", "gauge")
	m.shardUp.mu.Lock()
	keys := make([]string, 0, len(m.shardUp.vals))
	for k := range m.shardUp.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "rfidclean_router_shard_up{%s=%q} %d\n", m.shardUp.label, k, m.shardUp.vals[k].Load())
	}
	m.shardUp.mu.Unlock()
	writeHeader(w, "rfidclean_router_partial_reads_total",
		"Scatter-gather reads answered degraded because a shard was unreachable.", "counter")
	fmt.Fprintf(w, "rfidclean_router_partial_reads_total %d\n", m.partials.value())
	writeHeader(w, "rfidclean_router_replication_failures_total",
		"Deployment register/delete fan-outs that could not reach every shard.", "counter")
	fmt.Fprintf(w, "rfidclean_router_replication_failures_total %d\n", m.replicationFailures.value())
}

func (m *routerMetrics) writeLatencies(w io.Writer) {
	m.seconds.mu.Lock()
	keys := make([]string, 0, len(m.seconds.vals))
	for k := range m.seconds.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]*histogram, len(keys))
	for i, k := range keys {
		series[i] = m.seconds.vals[k]
	}
	m.seconds.mu.Unlock()
	name := "rfidclean_router_request_duration_seconds"
	for i, k := range keys {
		h := series[i]
		label := fmt.Sprintf("%s=%q", m.seconds.label, k)
		h.mu.Lock()
		cum := uint64(0)
		for j, b := range h.bounds {
			cum += h.counts[j]
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, label, formatFloat(b), cum)
		}
		cum += h.counts[len(h.bounds)]
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, label, cum)
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, label, formatFloat(h.sum))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, h.count)
		h.mu.Unlock()
	}
}

func writeLabeledValues(w io.Writer, name string, l *labeled) {
	l.mu.Lock()
	keys := make([]string, 0, len(l.vals))
	for k := range l.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts := strings.Split(k, "\x00")
		pairs := make([]string, len(parts))
		for i, v := range parts {
			pairs[i] = fmt.Sprintf("%s=%q", l.labels[i], v)
		}
		fmt.Fprintf(w, "%s{%s} %d\n", name, strings.Join(pairs, ","), l.vals[k].value())
	}
	l.mu.Unlock()
}

func writeHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
