// Package shard turns a set of independent rfidcleand worker processes into
// one sharded query head. It provides the three building blocks of
// cmd/rfidcleand's router mode:
//
//   - Ring: a consistent-hash ring that places *new* work (cleans keyed by
//     tag or body, stream opens keyed by tag) on a shard.
//   - Client: a per-shard HTTP client with request timeouts and bounded
//     retry on connection-level errors.
//   - Router: the http.Handler that fronts the workers — forwarding
//     id-addressed traffic to the owning shard, scatter-gathering
//     cross-shard reads, replicating deployment registration/deletion, and
//     surfacing a per-shard health view at /healthz and /metrics.
//
// The placement contract has two halves. New resources are placed by the
// ring; but once a worker has minted an id, the id itself names its owner:
// workers run with shard-scoped id namespaces (internal/server's
// ShardCount/ShardIndex options), minting only ids congruent to their index
// mod the shard count, so the router resolves any existing trajectory,
// session or batch slot to its shard by the id's numeric residue alone — no
// routing table, no shared state, and no cross-shard id collisions by
// construction.
package shard

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVnodes is how many virtual nodes each shard contributes to the
// ring. 128 points per shard keeps the expected load imbalance across a
// handful of shards in the low single-digit percent range while the ring
// stays a few KB.
const defaultVnodes = 128

// Ring is a consistent-hash ring over shard indices [0, n). Lookup cost is
// one 64-bit FNV-1a hash plus a binary search; the ring is immutable after
// construction and safe for concurrent use.
type Ring struct {
	n      int
	hashes []uint64 // sorted vnode positions
	owners []int    // owners[i] is the shard owning hashes[i]
}

// NewRing builds a ring of n shards with vnodes virtual nodes per shard
// (<= 0 uses the default). n must be >= 1.
func NewRing(n, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	type point struct {
		h     uint64
		owner int
	}
	points := make([]point, 0, n*vnodes)
	for shard := 0; shard < n; shard++ {
		for v := 0; v < vnodes; v++ {
			points = append(points, point{
				h:     hash64("vnode\x00" + strconv.Itoa(shard) + "\x00" + strconv.Itoa(v)),
				owner: shard,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].h < points[j].h })
	r := &Ring{n: n, hashes: make([]uint64, len(points)), owners: make([]int, len(points))}
	for i, p := range points {
		r.hashes[i] = p.h
		r.owners[i] = p.owner
	}
	return r
}

// Shards returns the ring's shard count.
func (r *Ring) Shards() int { return r.n }

// Lookup returns the shard owning key: the owner of the first vnode at or
// after the key's hash, wrapping at the top of the ring.
func (r *Ring) Lookup(key string) int {
	if r.n == 1 {
		return 0
	}
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[i]
}

func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	// FNV-1a alone clusters on short, similar keys (vnode labels differ in
	// a couple of trailing digits), which skews the ring badly; a
	// splitmix64-style finisher restores avalanche so vnode positions
	// spread uniformly.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// splitNum separates an id like "t12" into its non-digit prefix and numeric
// suffix (the same grammar internal/server's ids use). ok is false when the
// suffix is missing or not all digits.
func splitNum(id string) (prefix string, n int, ok bool) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	if i == len(id) {
		return id, 0, false
	}
	n, err := strconv.Atoi(id[i:])
	if err != nil {
		return id, 0, false
	}
	return id[:i], n, true
}

// OwnerOfID resolves an existing resource id ("t42", "s7") to its shard
// under n shard-scoped id namespaces: the worker that minted the id is the
// one whose index matches the id's numeric residue mod n. ok is false for
// ids without a numeric suffix or whose prefix does not match.
func OwnerOfID(prefix, id string, n int) (int, bool) {
	p, num, ok := splitNum(id)
	if !ok || p != prefix || n < 1 {
		return 0, false
	}
	return num % n, true
}

// idLess orders ids numerically within a shared prefix ("t2" before "t10"),
// matching internal/server's listing order so a scatter-gathered merge is
// indistinguishable from a single node's.
func idLess(a, b string) bool {
	ap, an, aok := splitNum(a)
	bp, bn, bok := splitNum(b)
	if aok && bok && ap == bp {
		if an != bn {
			return an < bn
		}
		return a < b
	}
	return a < b
}
