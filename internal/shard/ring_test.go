package shard

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: placement is a pure function of (key, shard count)
// — two rings built with the same parameters agree on every key, which is
// what lets a restarted router keep routing tags to the shards that hold
// their sessions' history.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(5, 0)
	b := NewRing(5, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("tag\x00obj-%d", i)
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("ring lookup for %q differs between identically built rings", key)
		}
	}
}

// TestRingBalance: 128 vnodes per shard keeps the load split close enough
// to uniform that no shard sees more than ~2x its fair share over a large
// key population.
func TestRingBalance(t *testing.T) {
	const shards, keys = 4, 20000
	r := NewRing(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	fair := keys / shards
	for s, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("shard %d got %d of %d keys (fair share %d): imbalance beyond 2x", s, c, keys, fair)
		}
	}
}

// TestRingSingleShard: a one-shard ring sends everything to shard 0.
func TestRingSingleShard(t *testing.T) {
	r := NewRing(1, 0)
	for _, key := range []string{"", "a", "tag\x00x"} {
		if got := r.Lookup(key); got != 0 {
			t.Fatalf("Lookup(%q) = %d on a single-shard ring", key, got)
		}
	}
}

// TestRingStability: adding a shard moves only part of the keyspace — the
// consistent-hashing property. With 3 -> 4 shards roughly 1/4 of keys
// should move; assert well under half do.
func TestRingStability(t *testing.T) {
	const keys = 10000
	before, after := NewRing(3, 0), NewRing(4, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		if before.Lookup(key) != after.Lookup(key) {
			moved++
		}
	}
	if moved > keys/2 {
		t.Fatalf("%d of %d keys moved when growing 3 -> 4 shards; consistent hashing should move ~1/4", moved, keys)
	}
	if moved == 0 {
		t.Fatal("no keys moved when growing 3 -> 4 shards; the new shard owns nothing")
	}
}

func TestOwnerOfID(t *testing.T) {
	cases := []struct {
		prefix, id string
		n          int
		want       int
		ok         bool
	}{
		{"t", "t1", 3, 1, true},
		{"t", "t3", 3, 0, true},
		{"t", "t17", 3, 2, true},
		{"s", "s4", 2, 0, true},
		{"t", "s4", 3, 0, false}, // wrong prefix
		{"t", "t", 3, 0, false},  // no numeric suffix
		{"t", "tx", 3, 0, false},
		{"t", "t1", 0, 0, false}, // no shards
	}
	for _, c := range cases {
		got, ok := OwnerOfID(c.prefix, c.id, c.n)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("OwnerOfID(%q, %q, %d) = (%d, %v), want (%d, %v)", c.prefix, c.id, c.n, got, ok, c.want, c.ok)
		}
	}
}

// TestIDLess: the merge order matches the worker's listing order, so a
// scatter-gathered listing reads like a single node's.
func TestIDLess(t *testing.T) {
	if !idLess("t2", "t10") {
		t.Error("t2 should sort before t10 (numeric, not lexicographic)")
	}
	if idLess("t10", "t2") {
		t.Error("t10 should not sort before t2")
	}
	if !idLess("d1", "t1") {
		t.Error("cross-prefix falls back to lexicographic")
	}
}
