package shard

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Client default knobs, applied when the corresponding Options fields are
// zero.
const (
	// DefaultTimeout bounds one forwarded request end to end (dial through
	// body read). Generous: a cold constraint inference on a worker can
	// take seconds.
	DefaultTimeout = 30 * time.Second
	// DefaultRetries is how many times a request is re-sent after a
	// connection-level error.
	DefaultRetries = 2
	// retryBaseDelay spaces retry attempts (doubled per attempt). Small on
	// purpose: the retryable failures are connection-level, where backoff
	// is about riding out a worker restart, not load shedding.
	retryBaseDelay = 25 * time.Millisecond
)

// Client issues requests to one worker shard. Request bodies are []byte —
// replayable by construction — so retrying after a connection error can
// never truncate or double-send a stream. Only connection-level errors are
// retried: a timeout means the worker is slow (retrying doubles its load),
// and any received response — even a 5xx — means the request was delivered,
// where a blind retry could re-execute a non-idempotent operation.
type Client struct {
	index   int
	base    string // http://host:port, no trailing slash
	timeout time.Duration
	retries int
	http    *http.Client
	stream  *http.Client // no timeout: SSE responses outlive any fixed budget

	// onRetry and onResult feed the router's metrics; nil is fine.
	onRetry  func(shard int)
	onResult func(shard int, class string, seconds float64)
}

// NewClient builds a client for shard index at base (e.g.
// "http://127.0.0.1:9001"). timeout <= 0 uses DefaultTimeout; retries < 0
// uses DefaultRetries (0 disables retrying).
func NewClient(index int, base string, timeout time.Duration, retries int) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if retries < 0 {
		retries = DefaultRetries
	}
	return &Client{
		index:   index,
		base:    base,
		timeout: timeout,
		retries: retries,
		http:    &http.Client{},
		stream:  &http.Client{},
	}
}

// Base returns the shard's base URL.
func (c *Client) Base() string { return c.base }

// Do issues one request with the per-request timeout and bounded
// connection-error retry. uri is the path plus query ("/v1/clean",
// "/v1/trajectories?x=y"); header may be nil. The caller owns the response
// body.
func (c *Client) Do(ctx context.Context, method, uri string, header http.Header, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	resp, err := c.send(ctx, c.http, method, uri, header, body)
	if err != nil {
		cancel()
		return nil, err
	}
	// The timeout covers the body read too: wrap the body so cancel fires
	// when the caller closes it.
	resp.Body = &cancelBody{rc: resp.Body, cancel: cancel}
	return resp, nil
}

// Stream issues a request with no overall timeout — for SSE event
// subscriptions, whose responses are open-ended by design. The request
// context alone bounds it (the router passes the client connection's
// context, so a vanished subscriber tears the upstream request down).
// Connection-error retry still applies to the dial: no response bytes have
// flowed until the worker answers the headers.
func (c *Client) Stream(ctx context.Context, method, uri string, header http.Header, body []byte) (*http.Response, error) {
	return c.send(ctx, c.stream, method, uri, header, body)
}

func (c *Client) send(ctx context.Context, hc *http.Client, method, uri string, header http.Header, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, method, c.base+uri, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		for k, vs := range header {
			if hopByHop(k) {
				continue
			}
			req.Header[k] = vs
		}
		resp, err := hc.Do(req)
		if err == nil {
			if c.onResult != nil {
				c.onResult(c.index, classOf(resp.StatusCode), time.Since(start).Seconds())
			}
			return resp, nil
		}
		lastErr = err
		if attempt >= c.retries || !retryable(err) {
			break
		}
		if c.onRetry != nil {
			c.onRetry(c.index)
		}
		select {
		case <-time.After(retryBaseDelay << attempt):
		case <-ctx.Done():
			attempt = c.retries // context gone: report what we have
		}
		if ctx.Err() != nil {
			break
		}
	}
	if c.onResult != nil {
		c.onResult(c.index, classTransport, 0)
	}
	return nil, lastErr
}

// retryable reports whether err is a connection-level failure worth
// re-sending: the request never reached a worker (dial refused, connection
// reset before the response). Context expiry — the per-request timeout or a
// vanished client — is final.
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	var opErr *net.OpError
	return errors.As(err, &opErr)
}

func classOf(status int) string {
	switch {
	case status < 300:
		return classOK
	case status < 400:
		return class3xx
	case status < 500:
		return class4xx
	default:
		return class5xx
	}
}

// hopByHop filters connection-scoped request headers out of forwarding.
func hopByHop(k string) bool {
	switch http.CanonicalHeaderKey(k) {
	case "Connection", "Keep-Alive", "Proxy-Connection", "Te", "Trailer",
		"Transfer-Encoding", "Upgrade", "Content-Length", "Host":
		return true
	}
	return false
}

// cancelBody releases the request's timeout context when the response body
// is closed.
type cancelBody struct {
	rc interface {
		Read([]byte) (int, error)
		Close() error
	}
	cancel context.CancelFunc
}

func (b *cancelBody) Read(p []byte) (int, error) { return b.rc.Read(p) }

func (b *cancelBody) Close() error {
	err := b.rc.Close()
	b.cancel()
	return err
}
