package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// fakeShard is a scripted worker backend recording what the router sends.
type fakeShard struct {
	mu       sync.Mutex
	requests []*http.Request
	assigned []string // AssignIDHeader values seen on deployment POSTs
	deletes  []string // deployment ids DELETEd
	srv      *httptest.Server
}

func (f *fakeShard) record(r *http.Request) {
	f.mu.Lock()
	f.requests = append(f.requests, r)
	f.mu.Unlock()
}

func (f *fakeShard) paths() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.requests))
	for i, r := range f.requests {
		out[i] = r.Method + " " + r.URL.Path
	}
	return out
}

// newTestRouter builds a router over n fake shards driven by handler(shard).
func newTestRouter(t *testing.T, n int, handler func(shard int) http.Handler) (*Router, []*fakeShard) {
	t.Helper()
	fakes := make([]*fakeShard, n)
	bases := make([]string, n)
	for i := 0; i < n; i++ {
		f := &fakeShard{}
		h := handler(i)
		f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			f.record(r)
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(f.srv.Close)
		fakes[i] = f
		bases[i] = f.srv.URL
	}
	rt, err := NewRouter(Options{Shards: bases, Timeout: 5 * time.Second, Retries: 0})
	if err != nil {
		t.Fatal(err)
	}
	return rt, fakes
}

// listingHandler answers GET /v1/trajectories with fixed rows and empty
// deployment listings (for the id-counter seed).
func listingHandler(rows []server.TrajectoryRow) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/trajectories", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rows)
	})
	mux.HandleFunc("/v1/deployments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, []any{})
	})
	return mux
}

// countingWriter asserts the single-WriteHeader contract: a partial
// scatter-gather failure must never produce a second header write.
type countingWriter struct {
	*httptest.ResponseRecorder
	headerWrites int
}

func (c *countingWriter) WriteHeader(status int) {
	c.headerWrites++
	c.ResponseRecorder.WriteHeader(status)
}

// TestRouterListingMergesAcrossShards: the scatter-gathered listing is one
// id-ordered slice, indistinguishable from a single node's.
func TestRouterListingMergesAcrossShards(t *testing.T) {
	rowsFor := map[int][]server.TrajectoryRow{
		0: {{ID: "t3"}, {ID: "t9"}},
		1: {{ID: "t1"}, {ID: "t10"}},
		2: {{ID: "t2"}},
	}
	rt, _ := newTestRouter(t, 3, func(i int) http.Handler { return listingHandler(rowsFor[i]) })

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/trajectories", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", rec.Code, rec.Body)
	}
	var rows []server.TrajectoryRow
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(rows))
	for i, r := range rows {
		got[i] = r.ID
	}
	want := "t1,t2,t3,t9,t10"
	if strings.Join(got, ",") != want {
		t.Fatalf("merged listing = %s, want %s", strings.Join(got, ","), want)
	}
}

// TestRouterListingDegradedShard: one shard down -> 206, the partial
// header names it, the reachable shards' rows still come back, and the
// degradation is counted. (Satellite S5: one-shard-down degraded listing.)
func TestRouterListingDegradedShard(t *testing.T) {
	rowsFor := map[int][]server.TrajectoryRow{
		0: {{ID: "t3"}},
		1: {{ID: "t1"}},
		2: {{ID: "t2"}},
	}
	rt, fakes := newTestRouter(t, 3, func(i int) http.Handler { return listingHandler(rowsFor[i]) })
	fakes[1].srv.Close()

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/trajectories", nil))
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("status = %d, want 206; body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(PartialHeader); got != "1" {
		t.Fatalf("%s = %q, want %q", PartialHeader, got, "1")
	}
	var rows []server.TrajectoryRow
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].ID != "t2" || rows[1].ID != "t3" {
		t.Fatalf("degraded listing = %+v, want [t2 t3]", rows)
	}
	if got := rt.m.partials.value(); got != 1 {
		t.Fatalf("partial metric = %d, want 1", got)
	}
}

// TestRouterBatchScatterGather: a batch's sequences fan out to their ring
// shards and the per-slot results reassemble in request order, even when
// one shard fails mid-gather — its slots carry errors, the response is a
// single well-formed 200, and exactly one header write happens.
// (Satellites S4 + S5.)
func TestRouterBatchScatterGather(t *testing.T) {
	const n = 3
	batchHandler := func(shard int) http.Handler {
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/clean/batch", func(w http.ResponseWriter, r *http.Request) {
			var req struct {
				Sequences []json.RawMessage `json:"sequences"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			out := make([]server.BatchCleanResult, len(req.Sequences))
			for i := range out {
				out[i] = server.BatchCleanResult{ID: fmt.Sprintf("shard%d-pos%d", shard, i)}
			}
			writeJSON(w, http.StatusOK, out)
		})
		return mux
	}
	rt, fakes := newTestRouter(t, n, func(i int) http.Handler { return batchHandler(i) })

	const seqs = 12
	sequences := make([]string, seqs)
	for i := range sequences {
		sequences[i] = fmt.Sprintf(`[{"time":%d,"readers":[0]}]`, i)
	}
	body := fmt.Sprintf(`{"deployment":"d1","maxSpeed":2,"sequences":[%s]}`, strings.Join(sequences, ","))

	// First pass with every shard up: results must land in request order at
	// the position the ring assigned them.
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/clean/batch", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", rec.Code, rec.Body)
	}
	var out []server.BatchCleanResult
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != seqs {
		t.Fatalf("got %d results for %d sequences", len(out), seqs)
	}
	// Recompute the expected placement with the same ring the router uses.
	pos := make([]int, n)
	shardsSeen := map[int]bool{}
	for i, seq := range sequences {
		// The envelope re-encodes sequences via json.RawMessage, preserving
		// the original bytes, so the key matches byte-for-byte.
		sh := rt.ring.Lookup("seq\x00d1\x00" + seq)
		shardsSeen[sh] = true
		want := fmt.Sprintf("shard%d-pos%d", sh, pos[sh])
		pos[sh]++
		if out[i].ID != want {
			t.Fatalf("slot %d = %q, want %q (wrong shard or order)", i, out[i].ID, want)
		}
	}
	if len(shardsSeen) < 2 {
		t.Fatalf("test batch only exercised %d shards; need cross-shard coverage", len(shardsSeen))
	}

	// Second pass with one participating shard down: its slots error, the
	// others still succeed, and the response writes headers exactly once.
	var downShard int
	for sh := range shardsSeen {
		downShard = sh
		break
	}
	fakes[downShard].srv.Close()
	cw := &countingWriter{ResponseRecorder: httptest.NewRecorder()}
	rt.ServeHTTP(cw, httptest.NewRequest(http.MethodPost, "/v1/clean/batch", strings.NewReader(body)))
	if cw.headerWrites != 1 {
		t.Fatalf("WriteHeader called %d times after a partial shard failure, want exactly 1", cw.headerWrites)
	}
	if cw.Code != http.StatusOK {
		t.Fatalf("degraded batch status = %d, want 200 with per-slot errors; body %s", cw.Code, cw.Body)
	}
	var degraded []server.BatchCleanResult
	if err := json.Unmarshal(cw.Body.Bytes(), &degraded); err != nil {
		t.Fatalf("degraded batch response is not valid JSON: %v", err)
	}
	for i, seq := range sequences {
		sh := rt.ring.Lookup("seq\x00d1\x00" + seq)
		if sh == downShard {
			if degraded[i].Error == "" || degraded[i].ID != "" {
				t.Fatalf("slot %d (down shard %d) = %+v, want an error", i, sh, degraded[i])
			}
		} else if degraded[i].Error != "" {
			t.Fatalf("slot %d (healthy shard %d) errored: %s", i, sh, degraded[i].Error)
		}
	}
}

// TestRouterDeploymentReplication: one POST registers on every shard under
// one router-assigned id, seeded past the ids the shards already hold.
func TestRouterDeploymentReplication(t *testing.T) {
	depHandler := func(shard int) http.Handler {
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/deployments", func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodGet {
				// Shard 1 already holds d4 (pre-existing single-node state).
				if shard == 1 {
					writeJSON(w, http.StatusOK, []map[string]string{{"id": "d4"}})
					return
				}
				writeJSON(w, http.StatusOK, []any{})
				return
			}
			writeJSON(w, http.StatusCreated, map[string]string{"id": r.Header.Get(server.AssignIDHeader)})
		})
		return mux
	}
	rt, fakes := newTestRouter(t, 3, func(i int) http.Handler { return depHandler(i) })

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/deployments", strings.NewReader(`{"name":"x"}`)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("status = %d, want 201; body %s", rec.Code, rec.Body)
	}
	var created map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created["id"] != "d5" {
		t.Fatalf("assigned id = %q, want d5 (past shard 1's existing d4)", created["id"])
	}
	for i, f := range fakes {
		f.mu.Lock()
		var posts int
		for _, r := range f.requests {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/deployments" {
				posts++
				if got := r.Header.Get(server.AssignIDHeader); got != "d5" {
					t.Errorf("shard %d saw %s = %q, want d5", i, server.AssignIDHeader, got)
				}
			}
		}
		f.mu.Unlock()
		if posts != 1 {
			t.Errorf("shard %d saw %d registration POSTs, want 1", i, posts)
		}
	}
}

// TestRouterDeploymentReplicationPartialFailure: when a shard is down the
// registration rolls back on the shards that accepted it and the caller
// gets a 502, not a silently half-replicated deployment.
func TestRouterDeploymentReplicationPartialFailure(t *testing.T) {
	depHandler := func(shard int) http.Handler {
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/deployments", func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodGet {
				writeJSON(w, http.StatusOK, []any{})
				return
			}
			writeJSON(w, http.StatusCreated, map[string]string{"id": r.Header.Get(server.AssignIDHeader)})
		})
		mux.HandleFunc("/v1/deployments/", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]any{"deleted": strings.TrimPrefix(r.URL.Path, "/v1/deployments/")})
		})
		return mux
	}
	rt, fakes := newTestRouter(t, 2, func(i int) http.Handler { return depHandler(i) })
	// Seed the id counter while everything is reachable, then lose shard 1.
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/deployments", strings.NewReader(`{"name":"a"}`)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("seed registration status = %d; body %s", rec.Code, rec.Body)
	}
	fakes[1].srv.Close()

	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/deployments", strings.NewReader(`{"name":"b"}`)))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("partial replication status = %d, want 502; body %s", rec.Code, rec.Body)
	}
	if got := rt.m.replicationFailures.value(); got != 1 {
		t.Fatalf("replication failures metric = %d, want 1", got)
	}
	var sawRollback bool
	fakes[0].mu.Lock()
	for _, r := range fakes[0].requests {
		if r.Method == http.MethodDelete && strings.HasPrefix(r.URL.Path, "/v1/deployments/") {
			sawRollback = true
		}
	}
	fakes[0].mu.Unlock()
	if !sawRollback {
		t.Fatal("surviving shard saw no compensating DELETE after partial replication")
	}
}

// TestRouterRoutesByIDResidue: id-addressed traffic goes only to the shard
// whose index matches the id's numeric residue.
func TestRouterRoutesByIDResidue(t *testing.T) {
	okHandler := func(int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]string{"ok": "1"})
		})
	}
	rt, fakes := newTestRouter(t, 3, okHandler)

	cases := []struct {
		path string
		want int
	}{
		{"/v1/trajectories/t7/stay?t=0", 1}, // 7 mod 3
		{"/v1/stream/s5", 2},                // 5 mod 3
		{"/v1/stream/s6/readings", 0},       // 6 mod 3
	}
	for _, c := range cases {
		method := http.MethodGet
		var body *strings.Reader = strings.NewReader("")
		if strings.HasSuffix(c.path, "/readings") {
			method = http.MethodPost
			body = strings.NewReader(`{"readings":[]}`)
		}
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, httptest.NewRequest(method, c.path, body))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status = %d; body %s", c.path, rec.Code, rec.Body)
		}
	}
	wantCounts := []int{1, 1, 1}
	for i, f := range fakes {
		if got := len(f.paths()); got != wantCounts[i] {
			t.Errorf("shard %d saw %d requests (%v), want %d", i, got, f.paths(), wantCounts[i])
		}
	}

	// A malformed id resolves nowhere and answers 404 without touching any
	// shard.
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/trajectories/bogus", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("bogus id status = %d, want 404", rec.Code)
	}
}

// TestRouterCleanTagAffinity: the same tag always lands on the same shard,
// so one object's cleans share that worker's constraint cache.
func TestRouterCleanTagAffinity(t *testing.T) {
	okHandler := func(int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusCreated, map[string]string{"id": "t1"})
		})
	}
	rt, fakes := newTestRouter(t, 3, okHandler)
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"deployment":"d1","tag":"obj-42","readings":[],"maxSpeed":2,"nonce":%d}`, i)
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/clean", strings.NewReader(body)))
		if rec.Code != http.StatusCreated {
			t.Fatalf("clean %d: status = %d", i, rec.Code)
		}
	}
	hit := 0
	for _, f := range fakes {
		if n := len(f.paths()); n > 0 {
			hit++
			if n != 4 {
				t.Fatalf("tagged cleans split across shards: %v", f.paths())
			}
		}
	}
	if hit != 1 {
		t.Fatalf("tagged cleans reached %d shards, want exactly 1", hit)
	}
}

// TestRouterHealthzDegraded: the aggregate health view flips to 503
// "degraded" when a shard is unreachable and names it.
func TestRouterHealthzDegraded(t *testing.T) {
	okHandler := func(int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		})
	}
	rt, fakes := newTestRouter(t, 2, okHandler)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy status = %d, want 200; body %s", rec.Code, rec.Body)
	}

	fakes[1].srv.Close()
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded status = %d, want 503; body %s", rec.Code, rec.Body)
	}
	var health struct {
		Status string        `json:"status"`
		Shards []shardHealth `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("status = %q, want degraded", health.Status)
	}
	if len(health.Shards) != 2 || health.Shards[0].Status != "ok" || health.Shards[1].Status != "unreachable" {
		t.Fatalf("per-shard view = %+v", health.Shards)
	}
}

// TestRouterMetricsPerShard: the router's /metrics carries per-shard series
// after traffic has flowed, including shard_up 0 for a dead shard.
func TestRouterMetricsPerShard(t *testing.T) {
	rt, fakes := newTestRouter(t, 2, func(i int) http.Handler { return listingHandler(nil) })
	fakes[1].srv.Close()
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/trajectories", nil))

	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`rfidclean_router_requests_total{shard="0",class="2xx"} 1`,
		`rfidclean_router_requests_total{shard="1",class="transport"} 1`,
		`rfidclean_router_shard_up{shard="0"} 1`,
		`rfidclean_router_shard_up{shard="1"} 0`,
		`rfidclean_router_request_duration_seconds_count{shard="0"} 1`,
		`rfidclean_router_partial_reads_total 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n---\n%s", want, body)
		}
	}
}
