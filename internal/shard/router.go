package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// PartialHeader marks a scatter-gather response assembled while one or more
// shards were unreachable: the body is what the reachable shards returned,
// and the header value lists the missing shard indices ("1,3"). Paired with
// a 206 status so clients that only look at the code notice too.
const PartialHeader = "X-Rfidclean-Partial"

// Options configures a Router.
type Options struct {
	// Shards are the worker base URLs ("http://127.0.0.1:9001"), in shard
	// index order. The order is the sharding contract: shard i must be the
	// worker running with -shard-index i, or id residues resolve to the
	// wrong process.
	Shards []string
	// Timeout bounds each forwarded request (0 = DefaultTimeout).
	Timeout time.Duration
	// Retries is the per-request retry budget for connection-level errors
	// (< 0 = DefaultRetries).
	Retries int
	// MaxBodyBytes caps request bodies read by the router (0 = the server's
	// default cap, negative = no cap). The router reads bodies fully — they
	// must be replayable for retry — so the cap guards router memory exactly
	// like the worker's cap guards its own.
	MaxBodyBytes int64
	// Logger receives replication and degradation warnings; nil discards.
	Logger *slog.Logger
}

// Router fronts N rfidcleand workers as one endpoint. Placement follows the
// package contract: new cleans and stream opens land on a shard via the
// consistent-hash ring (keyed by the request's tag when present, else the
// body), while everything addressed by id routes by the id's numeric
// residue, which shard-scoped id namespaces make authoritative. Deployments
// are replicated to every shard so any shard can clean against any
// deployment; cross-shard reads scatter-gather with an explicit partial
// marker when a shard is down.
type Router struct {
	clients []*Client
	ring    *Ring
	m       *routerMetrics
	log     *slog.Logger
	maxBody int64
	mux     *http.ServeMux

	// rr spreads un-keyed stream opens round-robin; tagged opens use the
	// ring so the same tag's sessions co-locate with its cleans.
	rr atomic.Uint64

	// nextDep is the router-assigned deployment id counter, initialized
	// lazily from the shards' current listings so a restarted router never
	// re-mints a live id.
	depMu   sync.Mutex
	nextDep int
	depInit bool
}

// NewRouter builds a router over the given worker shards.
func NewRouter(opts Options) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one shard")
	}
	maxBody := opts.MaxBodyBytes
	if maxBody == 0 {
		maxBody = server.DefaultMaxBodyBytes
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	rt := &Router{
		ring:    NewRing(len(opts.Shards), 0),
		m:       newRouterMetrics(),
		log:     logger,
		maxBody: maxBody,
		mux:     http.NewServeMux(),
	}
	for i, base := range opts.Shards {
		c := NewClient(i, strings.TrimRight(base, "/"), opts.Timeout, opts.Retries)
		c.onRetry = func(int) { rt.m.retries.inc() }
		c.onResult = rt.m.observe
		rt.clients = append(rt.clients, c)
	}
	rt.mux.HandleFunc("/v1/deployments", rt.handleDeployments)
	rt.mux.HandleFunc("/v1/deployments/", rt.handleDeploymentByID)
	rt.mux.HandleFunc("/v1/clean", rt.handleClean)
	rt.mux.HandleFunc("/v1/clean/batch", rt.handleCleanBatch)
	rt.mux.HandleFunc("/v1/stream", rt.handleStreamOpen)
	rt.mux.HandleFunc("/v1/stream/", rt.handleStream)
	rt.mux.HandleFunc("/v1/trajectories", rt.handleTrajectoryList)
	rt.mux.HandleFunc("/v1/trajectories/", rt.handleTrajectory)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/debug/traces", rt.handleDebugTraces)
	rt.mux.HandleFunc("/debug/flight", rt.handleDebugFlight)
	rt.mux.Handle("/metrics", rt.m)
	return rt, nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Shards returns the number of worker shards.
func (rt *Router) Shards() int { return len(rt.clients) }

// ---- forwarding primitives -------------------------------------------------

// reply is one shard's fully buffered response. Buffering before writing is
// what makes partial-failure handling safe: no handler touches the
// ResponseWriter until it holds everything it will send, so a shard failing
// mid-gather can never leave a half-written response or a second
// WriteHeader (the SSE proxy is the one deliberate exception).
type reply struct {
	status int
	header http.Header
	body   []byte
	err    error // transport failure; status/header/body are zero
}

// roundTrip forwards one request to a shard and buffers the full response.
func (rt *Router) roundTrip(ctx context.Context, shard int, method, uri string, header http.Header, body []byte) reply {
	resp, err := rt.clients[shard].Do(ctx, method, uri, header, body)
	if err != nil {
		return reply{err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return reply{err: err}
	}
	return reply{status: resp.StatusCode, header: resp.Header, body: b}
}

// write sends a buffered reply downstream verbatim.
func (rt *Router) write(w http.ResponseWriter, rp reply) {
	for k, vs := range rp.header {
		if hopByHop(k) {
			continue
		}
		w.Header()[k] = vs
	}
	w.WriteHeader(rp.status)
	w.Write(rp.body)
}

// forward proxies one request to a single shard, mapping transport failure
// to 502.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, shard int, body []byte) {
	rp := rt.roundTrip(r.Context(), shard, r.Method, requestURI(r), r.Header, body)
	if rp.err != nil {
		writeError(w, http.StatusBadGateway, "shard %d unreachable: %v", shard, rp.err)
		return
	}
	rt.write(w, rp)
}

// fanOut issues the same request to every shard concurrently and returns
// the replies indexed by shard.
func (rt *Router) fanOut(ctx context.Context, method, uri string, header http.Header, body []byte) []reply {
	replies := make([]reply, len(rt.clients))
	var wg sync.WaitGroup
	for i := range rt.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i] = rt.roundTrip(ctx, i, method, uri, header, body)
		}(i)
	}
	wg.Wait()
	return replies
}

// firstHealthy forwards a read to shards in order until one answers, for
// state replicated on every shard (deployment listings). Any HTTP response
// is authoritative — only transport failures move on to the next shard.
func (rt *Router) firstHealthy(w http.ResponseWriter, r *http.Request, body []byte) {
	var lastErr error
	for i := range rt.clients {
		rp := rt.roundTrip(r.Context(), i, r.Method, requestURI(r), r.Header, body)
		if rp.err != nil {
			lastErr = rp.err
			continue
		}
		rt.write(w, rp)
		return
	}
	writeError(w, http.StatusBadGateway, "all %d shards unreachable: %v", len(rt.clients), lastErr)
}

// readBody drains the request body under the router's cap. ok is false when
// the cap was exceeded (an error response has been written).
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	rd := r.Body
	if rt.maxBody > 0 {
		rd = http.MaxBytesReader(w, r.Body, rt.maxBody)
	}
	body, err := io.ReadAll(rd)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return nil, false
		}
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return nil, false
	}
	return body, true
}

func requestURI(r *http.Request) string {
	uri := r.URL.Path
	if r.URL.RawQuery != "" {
		uri += "?" + r.URL.RawQuery
	}
	return uri
}

// ---- deployments -----------------------------------------------------------

// handleDeployments replicates POST (register) to every shard under a
// router-assigned id and serves GET (list) from the first healthy shard.
func (rt *Router) handleDeployments(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		rt.firstHealthy(w, r, nil)
	case http.MethodPost:
		body, ok := rt.readBody(w, r)
		if !ok {
			return
		}
		id, err := rt.assignDeploymentID(r.Context())
		if err != nil {
			writeError(w, http.StatusBadGateway, "assigning deployment id: %v", err)
			return
		}
		header := r.Header.Clone()
		header.Set(server.AssignIDHeader, id)
		replies := rt.fanOut(r.Context(), http.MethodPost, "/v1/deployments", header, body)
		created, failed := 0, 0
		var firstReject reply
		for i, rp := range replies {
			switch {
			case rp.err != nil:
				failed++
				rt.log.Warn("router: deployment replication failed",
					slog.Int("shard", i), slog.String("error", rp.err.Error()))
			case rp.status == http.StatusCreated || rp.status == http.StatusOK:
				created++
			default:
				failed++
				if firstReject.status == 0 {
					firstReject = rp
				}
			}
		}
		if failed == 0 {
			writeJSON(w, http.StatusCreated, map[string]string{"id": id})
			return
		}
		rt.m.replicationFailures.inc()
		// Partial registration would leave shards disagreeing on the
		// deployment set, so roll back the shards that accepted it. The
		// compensating deletes are best-effort — an unreachable shard stays
		// inconsistent until it is re-registered — which is why the failure
		// is surfaced as a 502 rather than masked.
		if created > 0 {
			rt.fanOut(r.Context(), http.MethodDelete, "/v1/deployments/"+id, nil, nil)
		}
		if created == 0 && firstReject.status != 0 {
			// Every shard rejected the body the same way (invalid
			// deployment): that is the caller's error, not a replication
			// failure — forward the shard's verdict.
			rt.write(w, firstReject)
			return
		}
		writeError(w, http.StatusBadGateway,
			"deployment registration reached %d/%d shards; rolled back", created, len(replies))
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// assignDeploymentID mints the next router-scoped deployment id. The
// counter starts above the max id any shard currently lists, so restarts
// and pre-existing single-node state never collide.
func (rt *Router) assignDeploymentID(ctx context.Context) (string, error) {
	rt.depMu.Lock()
	defer rt.depMu.Unlock()
	if !rt.depInit {
		max := 0
		replies := rt.fanOut(ctx, http.MethodGet, "/v1/deployments", nil, nil)
		for i, rp := range replies {
			if rp.err != nil {
				// Refuse to guess: an unreachable shard may hold higher ids.
				return "", fmt.Errorf("shard %d unreachable while seeding id counter: %w", i, rp.err)
			}
			var rows []struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(rp.body, &rows); err != nil {
				return "", fmt.Errorf("shard %d deployment listing: %w", i, err)
			}
			for _, row := range rows {
				if _, n, ok := splitNum(row.ID); ok && n > max {
					max = n
				}
			}
		}
		rt.nextDep = max
		rt.depInit = true
	}
	rt.nextDep++
	return "d" + strconv.Itoa(rt.nextDep), nil
}

// handleDeploymentByID forwards GET to the first healthy shard and
// replicates DELETE to every shard.
func (rt *Router) handleDeploymentByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/deployments/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "unknown deployment path %q", r.URL.Path)
		return
	}
	switch r.Method {
	case http.MethodGet:
		rt.firstHealthy(w, r, nil)
	case http.MethodDelete:
		replies := rt.fanOut(r.Context(), http.MethodDelete, requestURI(r), r.Header, nil)
		deleted, trajectories, notFound := 0, 0, 0
		for i, rp := range replies {
			switch {
			case rp.err != nil:
				rt.m.replicationFailures.inc()
				rt.log.Warn("router: deployment delete replication failed",
					slog.Int("shard", i), slog.String("error", rp.err.Error()))
			case rp.status == http.StatusOK:
				deleted++
				var res struct {
					Trajectories int `json:"trajectories"`
				}
				if json.Unmarshal(rp.body, &res) == nil {
					trajectories += res.Trajectories
				}
			case rp.status == http.StatusNotFound:
				notFound++
			}
		}
		switch {
		case deleted == len(replies) || (deleted > 0 && deleted+notFound == len(replies)):
			writeJSON(w, http.StatusOK, map[string]any{"deleted": id, "trajectories": trajectories})
		case notFound == len(replies):
			writeError(w, http.StatusNotFound, "unknown deployment %q", id)
		default:
			// A shard kept the deployment (transport failure or refusal):
			// report the delete as incomplete instead of claiming success.
			writeError(w, http.StatusBadGateway,
				"deployment delete reached %d/%d shards", deleted+notFound, len(replies))
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// ---- cleans ----------------------------------------------------------------

// cleanKey extracts the placement key for a clean or stream-open body: the
// request's tag when the client set one (so one object's requests
// co-locate), else empty.
type cleanKey struct {
	Tag string `json:"tag"`
}

// handleClean places the clean on the ring — by tag when present, else by
// body hash so identical requests land identically — and forwards it.
func (rt *Router) handleClean(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var key cleanKey
	_ = json.Unmarshal(body, &key) // malformed bodies route anywhere; the worker rejects them
	shard := 0
	if key.Tag != "" {
		shard = rt.ring.Lookup("tag\x00" + key.Tag)
	} else {
		shard = rt.ring.Lookup("body\x00" + string(body))
	}
	rt.forward(w, r, shard, body)
}

// batchEnvelope is the part of a batch-clean body the router needs to see:
// the sequences to split by shard, and every other field verbatim so the
// per-shard sub-bodies re-encode without the router knowing the schema.
type batchEnvelope struct {
	fields    map[string]json.RawMessage
	sequences []json.RawMessage
}

// handleCleanBatch splits the batch into per-shard sub-batches (each
// sequence placed on the ring like a single clean would be), fans them out
// concurrently, and reassembles the per-slot results in request order.
func (rt *Router) handleCleanBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	env, err := decodeBatch(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid batch request: %v", err)
		return
	}
	if len(env.sequences) == 0 {
		// Let the worker produce its canonical validation error.
		rt.forward(w, r, 0, body)
		return
	}
	dep := ""
	if raw, okd := env.fields["deployment"]; okd {
		_ = json.Unmarshal(raw, &dep)
	}
	// slots[i] remembers where sequence i went: shard and position within
	// that shard's sub-batch, for positional reassembly.
	type slotRef struct{ shard, pos int }
	slots := make([]slotRef, len(env.sequences))
	perShard := make([][]json.RawMessage, len(rt.clients))
	for i, seq := range env.sequences {
		sh := rt.ring.Lookup("seq\x00" + dep + "\x00" + string(seq))
		slots[i] = slotRef{shard: sh, pos: len(perShard[sh])}
		perShard[sh] = append(perShard[sh], seq)
	}

	type shardResult struct {
		rp      reply
		results []server.BatchCleanResult
	}
	results := make([]*shardResult, len(rt.clients))
	var wg sync.WaitGroup
	for sh, seqs := range perShard {
		if len(seqs) == 0 {
			continue
		}
		sub, err := env.encodeWith(seqs)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "re-encoding batch: %v", err)
			return
		}
		wg.Add(1)
		go func(sh int, sub []byte) {
			defer wg.Done()
			sr := &shardResult{rp: rt.roundTrip(r.Context(), sh, http.MethodPost, "/v1/clean/batch", r.Header, sub)}
			if sr.rp.err == nil && sr.rp.status == http.StatusOK {
				if err := json.Unmarshal(sr.rp.body, &sr.results); err != nil {
					sr.rp.err = fmt.Errorf("decoding batch response: %w", err)
				}
			}
			results[sh] = sr
		}(sh, sub)
	}
	wg.Wait()

	// If every participating shard answered with the same non-200 status
	// (unknown deployment, bad parameters), that verdict is about the
	// request, not the sharding — forward it as a single node would.
	uniformStatus, uniform := 0, true
	for _, sr := range results {
		if sr == nil {
			continue
		}
		if sr.rp.err != nil || sr.rp.status == http.StatusOK {
			uniform = false
			break
		}
		if uniformStatus == 0 {
			uniformStatus = sr.rp.status
		} else if sr.rp.status != uniformStatus {
			uniform = false
		}
	}
	if uniform && uniformStatus != 0 {
		for _, sr := range results {
			if sr != nil {
				rt.write(w, sr.rp)
				return
			}
		}
	}

	out := make([]server.BatchCleanResult, len(env.sequences))
	for i, ref := range slots {
		sr := results[ref.shard]
		switch {
		case sr == nil:
			out[i] = server.BatchCleanResult{Error: "internal: sequence not dispatched"}
		case sr.rp.err != nil:
			out[i] = server.BatchCleanResult{Error: fmt.Sprintf("shard %d unreachable: %v", ref.shard, sr.rp.err)}
		case sr.rp.status != http.StatusOK:
			out[i] = server.BatchCleanResult{Error: fmt.Sprintf("shard %d: %s", ref.shard, errorBody(sr.rp))}
		case ref.pos >= len(sr.results):
			out[i] = server.BatchCleanResult{Error: fmt.Sprintf("shard %d returned %d results for %d sequences", ref.shard, len(sr.results), ref.pos+1)}
		default:
			out[i] = sr.results[ref.pos]
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func decodeBatch(body []byte) (*batchEnvelope, error) {
	env := &batchEnvelope{fields: make(map[string]json.RawMessage)}
	if err := json.Unmarshal(body, &env.fields); err != nil {
		return nil, err
	}
	if raw, ok := env.fields["sequences"]; ok {
		if err := json.Unmarshal(raw, &env.sequences); err != nil {
			return nil, fmt.Errorf("sequences: %w", err)
		}
	}
	return env, nil
}

// encodeWith re-encodes the batch body with only the given sequences,
// leaving every other field byte-identical.
func (e *batchEnvelope) encodeWith(seqs []json.RawMessage) ([]byte, error) {
	fields := make(map[string]json.RawMessage, len(e.fields))
	for k, v := range e.fields {
		fields[k] = v
	}
	raw, err := json.Marshal(seqs)
	if err != nil {
		return nil, err
	}
	fields["sequences"] = raw
	return json.Marshal(fields)
}

// errorBody extracts the error string from a worker's apiError body,
// falling back to the status text.
func errorBody(rp reply) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(rp.body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return http.StatusText(rp.status)
}

// ---- streaming sessions ----------------------------------------------------

// handleStreamOpen pins a new session to one shard: by its tag's ring
// position when the client set one, else round-robin. Every subsequent
// request for the session resolves back to that shard by the session id's
// residue.
func (rt *Router) handleStreamOpen(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var key cleanKey
	_ = json.Unmarshal(body, &key)
	var shard int
	if key.Tag != "" {
		shard = rt.ring.Lookup("tag\x00" + key.Tag)
	} else {
		shard = int(rt.rr.Add(1)-1) % len(rt.clients)
	}
	rt.forward(w, r, shard, body)
}

// handleStream routes /v1/stream/{id}[/{op}] to the session's shard. The
// events op streams; everything else forwards buffered.
func (rt *Router) handleStream(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/stream/")
	id, op, _ := strings.Cut(rest, "/")
	shard, ok := OwnerOfID("s", id, len(rt.clients))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream session %q", id)
		return
	}
	if op == "events" && r.Method == http.MethodGet {
		rt.proxyStream(w, r, shard)
		return
	}
	var body []byte
	if r.Method == http.MethodPost {
		var okb bool
		body, okb = rt.readBody(w, r)
		if !okb {
			return
		}
	}
	rt.forward(w, r, shard, body)
}

// proxyStream forwards an SSE subscription and relays its bytes as they
// arrive, flushing per chunk so events and the hub's comment lines (": ok",
// ": resume gap", heartbeats) pass through with their timing intact. The
// Last-Event-ID header forwards with the request, so reconnect-resume
// semantics through the router match a direct worker connection.
func (rt *Router) proxyStream(w http.ResponseWriter, r *http.Request, shard int) {
	resp, err := rt.clients[shard].Stream(r.Context(), r.Method, requestURI(r), r.Header, nil)
	if err != nil {
		writeError(w, http.StatusBadGateway, "shard %d unreachable: %v", shard, err)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		if hopByHop(k) {
			continue
		}
		w.Header()[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	rc := http.NewResponseController(w)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // subscriber went away
			}
			_ = rc.Flush()
		}
		if err == io.EOF {
			return
		}
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			// Upstream died mid-stream. Headers are long gone, so the only
			// honest signal is tearing the downstream connection down —
			// EventSource clients then reconnect with Last-Event-ID and the
			// worker's resume ring picks them back up.
			panic(http.ErrAbortHandler)
		}
	}
}

// ---- trajectories ----------------------------------------------------------

// handleTrajectoryList scatter-gathers GET /v1/trajectories from every
// shard and merges the rows into one id-ordered listing. Unreachable
// shards degrade the response — 206 plus the partial marker — rather than
// failing it or silently shrinking it.
func (rt *Router) handleTrajectoryList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	replies := rt.fanOut(r.Context(), http.MethodGet, requestURI(r), r.Header, nil)
	rows := make([]server.TrajectoryRow, 0)
	var down []string
	for i, rp := range replies {
		if rp.err != nil {
			down = append(down, strconv.Itoa(i))
			rt.log.Warn("router: trajectory listing degraded",
				slog.Int("shard", i), slog.String("error", rp.err.Error()))
			continue
		}
		if rp.status != http.StatusOK {
			rt.write(w, rp)
			return
		}
		var part []server.TrajectoryRow
		if err := json.Unmarshal(rp.body, &part); err != nil {
			writeError(w, http.StatusBadGateway, "shard %d listing: %v", i, err)
			return
		}
		rows = append(rows, part...)
	}
	if len(down) == len(replies) {
		writeError(w, http.StatusBadGateway, "all %d shards unreachable", len(replies))
		return
	}
	sort.Slice(rows, func(i, j int) bool { return idLess(rows[i].ID, rows[j].ID) })
	status := http.StatusOK
	if len(down) > 0 {
		rt.m.partials.inc()
		w.Header().Set(PartialHeader, strings.Join(down, ","))
		status = http.StatusPartialContent
	}
	writeJSON(w, status, rows)
}

// handleTrajectory routes /v1/trajectories/{id}[/{op}] to the owning shard
// by id residue.
func (rt *Router) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/trajectories/")
	id, _, _ := strings.Cut(rest, "/")
	shard, ok := OwnerOfID("t", id, len(rt.clients))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown trajectory %q", id)
		return
	}
	rt.forward(w, r, shard, nil)
}

// ---- health and debug ------------------------------------------------------

// shardHealth is one shard's entry in the router's /healthz view.
type shardHealth struct {
	Shard  int            `json:"shard"`
	Base   string         `json:"base"`
	Status string         `json:"status"` // ok | error | unreachable
	Error  string         `json:"error,omitempty"`
	Detail map[string]any `json:"detail,omitempty"` // the worker's own healthz body
}

// handleHealthz fans /healthz out to every shard and aggregates: 200 "ok"
// when every shard answered ok, 503 "degraded" otherwise, with the
// per-shard detail either way.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	replies := rt.fanOut(r.Context(), http.MethodGet, "/healthz", nil, nil)
	shards := make([]shardHealth, len(replies))
	healthy := 0
	for i, rp := range replies {
		sh := shardHealth{Shard: i, Base: rt.clients[i].Base()}
		switch {
		case rp.err != nil:
			sh.Status = "unreachable"
			sh.Error = rp.err.Error()
		case rp.status != http.StatusOK:
			sh.Status = "error"
			sh.Error = errorBody(rp)
		default:
			sh.Status = "ok"
			healthy++
			_ = json.Unmarshal(rp.body, &sh.Detail)
		}
		shards[i] = sh
	}
	status, label := http.StatusOK, "ok"
	if healthy < len(replies) {
		status, label = http.StatusServiceUnavailable, "degraded"
	}
	writeJSON(w, status, map[string]any{
		"status":  label,
		"mode":    "router",
		"healthy": healthy,
		"shards":  shards,
	})
}

// handleDebugTraces fans the trace lookup out — the shard that served the
// request holds its trace — and forwards the first hit.
func (rt *Router) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	replies := rt.fanOut(r.Context(), http.MethodGet, requestURI(r), r.Header, nil)
	var fallback *reply
	for i := range replies {
		rp := replies[i]
		if rp.err != nil {
			continue
		}
		if rp.status == http.StatusOK {
			rt.write(w, rp)
			return
		}
		if fallback == nil {
			fallback = &replies[i]
		}
	}
	if fallback != nil {
		rt.write(w, *fallback)
		return
	}
	writeError(w, http.StatusBadGateway, "all %d shards unreachable", len(rt.clients))
}

// handleDebugFlight forwards the flight-recorder dump to one shard,
// selected with ?shard=i (default 0); the shard param is stripped before
// forwarding.
func (rt *Router) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	shard := 0
	if v := q.Get("shard"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n >= len(rt.clients) {
			writeError(w, http.StatusBadRequest, "invalid ?shard=%q (have %d shards)", v, len(rt.clients))
			return
		}
		shard = n
		q.Del("shard")
	}
	uri := r.URL.Path
	if enc := q.Encode(); enc != "" {
		uri += "?" + enc
	}
	rp := rt.roundTrip(r.Context(), shard, r.Method, uri, r.Header, nil)
	if rp.err != nil {
		writeError(w, http.StatusBadGateway, "shard %d unreachable: %v", shard, rp.err)
		return
	}
	rt.write(w, rp)
}

// ---- shared response helpers ----------------------------------------------

// apiError matches internal/server's uniform error body, so clients see one
// error shape whether the router or a worker answered.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}
