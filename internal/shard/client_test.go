package shard

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// deadPort reserves a TCP port and closes it, so dialing it is a
// deterministic connection-refused.
func deadPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

// TestClientRetriesConnectionRefused: a refused connection is retried up to
// the budget, each retry is reported, and the final error still surfaces.
func TestClientRetriesConnectionRefused(t *testing.T) {
	c := NewClient(0, deadPort(t), time.Second, 2)
	var retries atomic.Int32
	c.onRetry = func(int) { retries.Add(1) }
	var transport atomic.Int32
	c.onResult = func(_ int, class string, _ float64) {
		if class == classTransport {
			transport.Add(1)
		}
	}
	_, err := c.Do(context.Background(), http.MethodGet, "/healthz", nil, nil)
	if err == nil {
		t.Fatal("Do against a closed port succeeded")
	}
	if got := retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2 (the full budget)", got)
	}
	if got := transport.Load(); got != 1 {
		t.Fatalf("transport outcomes = %d, want exactly 1 for the whole attempt", got)
	}
}

// TestClientNoRetryOnTimeout: a shard that accepts the connection but is
// too slow hits the per-request deadline, and the deadline is final — no
// retry doubles the slow shard's load.
func TestClientNoRetryOnTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()

	c := NewClient(0, slow.URL, 50*time.Millisecond, 3)
	var retries atomic.Int32
	c.onRetry = func(int) { retries.Add(1) }
	start := time.Now()
	_, err := c.Do(context.Background(), http.MethodGet, "/healthz", nil, nil)
	if err == nil {
		t.Fatal("Do against a stalled shard succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want a deadline error", err)
	}
	if got := retries.Load(); got != 0 {
		t.Fatalf("retries = %d, want 0: timeouts must not be retried", got)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Do took %s; the 50ms deadline did not bound it", elapsed)
	}
}

// TestClientSuccessAfterWorkerComesBack: the happy path reports the status
// class and no retries.
func TestClientSuccessAfterWorkerComesBack(t *testing.T) {
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ok.Close()
	c := NewClient(3, ok.URL, time.Second, 2)
	var gotShard atomic.Int32
	var gotClass atomic.Value
	c.onResult = func(shard int, class string, _ float64) {
		gotShard.Store(int32(shard))
		gotClass.Store(class)
	}
	resp, err := c.Do(context.Background(), http.MethodGet, "/healthz", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gotShard.Load() != 3 || gotClass.Load() != classOK {
		t.Fatalf("observed (shard=%d, class=%v), want (3, %s)", gotShard.Load(), gotClass.Load(), classOK)
	}
}

// TestRetryableClassification: only connection-level errors qualify.
func TestRetryableClassification(t *testing.T) {
	if retryable(context.DeadlineExceeded) {
		t.Error("deadline exceeded must not be retryable")
	}
	if retryable(context.Canceled) {
		t.Error("cancellation must not be retryable")
	}
	if retryable(errors.New("decode failed")) {
		t.Error("arbitrary errors must not be retryable")
	}
	if !retryable(&net.OpError{Op: "dial", Err: errors.New("connection refused")}) {
		t.Error("a dial error must be retryable")
	}
}
