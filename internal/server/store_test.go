package server

import (
	"testing"

	rfidclean "repro"
)

// testCleaneds cleans the same short sequence n times against the small test
// deployment, yielding n distinct graphs of identical (known) size.
func testCleaneds(t *testing.T, n int) []*rfidclean.Cleaned {
	t.Helper()
	_, sys := testDeployment(t)
	rng := rfidclean.NewRNG(21)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*rfidclean.Cleaned, n)
	for i := range out {
		c, err := sys.Clean(readings, ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = c
	}
	return out
}

func TestTrajStoreLRUEviction(t *testing.T) {
	cs := testCleaneds(t, 4)
	one := int64(cs[0].Stats().Bytes)
	if one == 0 {
		t.Fatal("empty graph")
	}
	m := newMetrics()
	// Budget for two graphs, not three.
	st := newTrajStore(2*one+one/2, m)

	idA := st.add("d1", cs[0])
	idB := st.add("d1", cs[1])
	if st.get(idA) == nil || st.get(idB) == nil {
		t.Fatal("stored graphs not retrievable")
	}
	// Touch A so B is the LRU victim.
	st.get(idA)
	idC := st.add("d1", cs[2])
	if st.get(idB) != nil {
		t.Error("LRU graph survived eviction")
	}
	if st.get(idA) == nil || st.get(idC) == nil {
		t.Error("recently used / fresh graphs were evicted")
	}
	if m.storeEvictions.value() != 1 {
		t.Errorf("evictions = %d, want 1", m.storeEvictions.value())
	}
	count, bytes := st.stats()
	if count != 2 || bytes != 2*one {
		t.Errorf("stats = (%d, %d), want (2, %d)", count, bytes, 2*one)
	}
	if m.storeCount.value() != 2 || m.storeBytes.value() != 2*one {
		t.Errorf("gauges = (%d, %d), want (2, %d)", m.storeCount.value(), m.storeBytes.value(), 2*one)
	}
}

func TestTrajStoreBatchIDsConsecutive(t *testing.T) {
	cs := testCleaneds(t, 3)
	st := newTrajStore(0, newMetrics())
	ids := st.addBatch("d1", []*rfidclean.Cleaned{cs[0], nil, cs[1], cs[2]})
	want := []string{"t1", "", "t2", "t3"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if st.get("t2").depID != "d1" {
		t.Error("stored trajectory lost its deployment")
	}
}

func TestTrajStoreFreshBatchNotSelfEvicting(t *testing.T) {
	cs := testCleaneds(t, 3)
	one := int64(cs[0].Stats().Bytes)
	m := newMetrics()
	st := newTrajStore(one, m) // budget for a single graph
	ids := st.addBatch("d1", cs)
	for i, id := range ids {
		if st.get(id) == nil {
			t.Fatalf("fresh batch slot %d evicted by its own admission", i)
		}
	}
	// The next add sheds the overshoot down to the budget.
	idNew := st.add("d1", testCleaneds(t, 1)[0])
	if st.get(idNew) == nil {
		t.Fatal("fresh single add evicted")
	}
	if _, bytes := st.stats(); bytes > one {
		t.Errorf("store bytes = %d, want <= %d after re-eviction", bytes, one)
	}
}

func TestTrajStoreDelete(t *testing.T) {
	cs := testCleaneds(t, 1)
	m := newMetrics()
	st := newTrajStore(0, m)
	id := st.add("d1", cs[0])
	if !st.delete(id) {
		t.Fatal("delete of existing trajectory failed")
	}
	if st.delete(id) {
		t.Fatal("double delete reported success")
	}
	if count, bytes := st.stats(); count != 0 || bytes != 0 {
		t.Errorf("stats after delete = (%d, %d)", count, bytes)
	}
	if m.storeBytes.value() != 0 || m.storeCount.value() != 0 {
		t.Errorf("gauges after delete = (%d, %d)", m.storeCount.value(), m.storeBytes.value())
	}
}
