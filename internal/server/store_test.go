package server

import (
	"strconv"
	"testing"

	rfidclean "repro"
)

// testCleaneds cleans the same short sequence n times against the small test
// deployment, yielding n distinct graphs of identical (known) size.
func testCleaneds(t *testing.T, n int) []*rfidclean.Cleaned {
	t.Helper()
	_, sys := testDeployment(t)
	rng := rfidclean.NewRNG(21)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*rfidclean.Cleaned, n)
	for i := range out {
		c, err := sys.Clean(readings, ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = c
	}
	return out
}

func TestTrajStoreLRUEviction(t *testing.T) {
	cs := testCleaneds(t, 4)
	one := int64(cs[0].Stats().Bytes)
	if one == 0 {
		t.Fatal("empty graph")
	}
	m := newMetrics()
	// Budget for two graphs, not three.
	st := newTrajStore(2*one+one/2, 1, 0, m)

	idA := st.add("d1", cs[0])
	idB := st.add("d1", cs[1])
	if st.get(idA) == nil || st.get(idB) == nil {
		t.Fatal("stored graphs not retrievable")
	}
	// Touch A so B is the LRU victim.
	st.get(idA)
	idC := st.add("d1", cs[2])
	if st.get(idB) != nil {
		t.Error("LRU graph survived eviction")
	}
	if st.get(idA) == nil || st.get(idC) == nil {
		t.Error("recently used / fresh graphs were evicted")
	}
	if m.storeEvictions.value() != 1 {
		t.Errorf("evictions = %d, want 1", m.storeEvictions.value())
	}
	count, bytes := st.stats()
	if count != 2 || bytes != 2*one {
		t.Errorf("stats = (%d, %d), want (2, %d)", count, bytes, 2*one)
	}
	if m.storeCount.value() != 2 || m.storeBytes.value() != 2*one {
		t.Errorf("gauges = (%d, %d), want (2, %d)", m.storeCount.value(), m.storeBytes.value(), 2*one)
	}
}

func TestTrajStoreBatchIDsConsecutive(t *testing.T) {
	cs := testCleaneds(t, 3)
	st := newTrajStore(0, 1, 0, newMetrics())
	ids := st.addBatch("d1", []*rfidclean.Cleaned{cs[0], nil, cs[1], cs[2]})
	want := []string{"t1", "", "t2", "t3"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if st.get("t2").depID != "d1" {
		t.Error("stored trajectory lost its deployment")
	}
}

func TestTrajStoreFreshBatchNotSelfEvicting(t *testing.T) {
	cs := testCleaneds(t, 3)
	one := int64(cs[0].Stats().Bytes)
	m := newMetrics()
	st := newTrajStore(one, 1, 0, m) // budget for a single graph
	ids := st.addBatch("d1", cs)
	for i, id := range ids {
		if st.get(id) == nil {
			t.Fatalf("fresh batch slot %d evicted by its own admission", i)
		}
	}
	// The next add sheds the overshoot down to the budget.
	idNew := st.add("d1", testCleaneds(t, 1)[0])
	if st.get(idNew) == nil {
		t.Fatal("fresh single add evicted")
	}
	if _, bytes := st.stats(); bytes > one {
		t.Errorf("store bytes = %d, want <= %d after re-eviction", bytes, one)
	}
}

func TestTrajStoreDelete(t *testing.T) {
	cs := testCleaneds(t, 1)
	m := newMetrics()
	st := newTrajStore(0, 1, 0, m)
	id := st.add("d1", cs[0])
	if !st.delete(id) {
		t.Fatal("delete of existing trajectory failed")
	}
	if st.delete(id) {
		t.Fatal("double delete reported success")
	}
	if count, bytes := st.stats(); count != 0 || bytes != 0 {
		t.Errorf("stats after delete = (%d, %d)", count, bytes)
	}
	if m.storeBytes.value() != 0 || m.storeCount.value() != 0 {
		t.Errorf("gauges after delete = (%d, %d)", m.storeCount.value(), m.storeBytes.value())
	}
}

// syntheticStore builds a store of n one-byte items with monotonically
// increasing recency stamps, without paying for n real cleans.
func syntheticStore(n int, maxBytes int64, m *metrics) *trajStore {
	st := newTrajStore(maxBytes, 1, 0, m)
	for i := 0; i < n; i++ {
		id := "t" + strconv.Itoa(i+1)
		it := &storeItem{traj: &trajectory{id: id, depID: "d1"}, bytes: 1}
		it.lastUsed.Store(st.clock.Add(1))
		st.items[id] = it
	}
	st.bytes = int64(n)
	st.next = n
	return st
}

// BenchmarkStoreEviction measures evicting half the store in one call — the
// single-pass collect+sort that replaced the per-victim full map scan
// (O(n log n) vs O(k·n); at n=8192, k=4096 the old shape walked ~33M entries
// per call).
func BenchmarkStoreEviction(b *testing.B) {
	const n = 8192
	m := newMetrics()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := syntheticStore(n, n/2, m)
		b.StartTimer()
		st.mu.Lock()
		victims := st.evictLocked(nil)
		st.mu.Unlock()
		if len(victims) != n/2 {
			b.Fatalf("evicted %d, want %d", len(victims), n/2)
		}
	}
}

// TestEvictLockedOrderAndReturn pins the eviction contract the persistence
// layer relies on: victims come back oldest-first and exactly cover the
// overshoot.
func TestEvictLockedOrderAndReturn(t *testing.T) {
	st := syntheticStore(10, 4, newMetrics())
	st.mu.Lock()
	victims := st.evictLocked(nil)
	st.mu.Unlock()
	if len(victims) != 6 {
		t.Fatalf("evicted %d, want 6", len(victims))
	}
	for i, id := range victims {
		if want := "t" + strconv.Itoa(i+1); id != want {
			t.Fatalf("victim %d = %s, want %s (oldest first)", i, id, want)
		}
	}
	if count, bytes := st.stats(); count != 4 || bytes != 4 {
		t.Fatalf("post-eviction stats = (%d, %d), want (4, 4)", count, bytes)
	}
}
