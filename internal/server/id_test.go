package server

import (
	"bytes"
	"net/http/httptest"
	"sort"
	"strconv"
	"testing"

	rfidclean "repro"
)

func TestSplitIDAndIDLess(t *testing.T) {
	ordered := []string{"d1", "d2", "d9", "d10", "d11", "d100"}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := idLess(ordered[i], ordered[j])
			if want := i < j; got != want {
				t.Errorf("idLess(%s, %s) = %v, want %v", ordered[i], ordered[j], got, want)
			}
		}
	}
	// Mixed prefixes and non-numeric ids fall back to lexicographic order.
	if !idLess("d2", "t1") || idLess("t1", "d2") {
		t.Error("cross-prefix ids should order lexicographically")
	}
	if !idLess("abc", "abd") {
		t.Error("non-numeric ids should order lexicographically")
	}
	if n, ok := idNum("t", "t42"); !ok || n != 42 {
		t.Errorf("idNum(t, t42) = %d, %v", n, ok)
	}
	if _, ok := idNum("t", "d42"); ok {
		t.Error("idNum should reject a mismatched prefix")
	}
	if _, ok := idNum("t", "t"); ok {
		t.Error("idNum should reject a missing suffix")
	}
}

// TestDeploymentListNumericOrder: with ten-plus deployments the listing must
// read d2 before d10 — the lexicographic sort the endpoint used to apply put
// d10 between d1 and d2.
func TestDeploymentListNumericOrder(t *testing.T) {
	srv := New()
	defer srv.Close()
	depJSON, _ := testDeployment(t)
	dep, err := rfidclean.DecodeDeployment(bytes.NewReader(depJSON))
	if err != nil {
		t.Fatal(err)
	}
	// Alias one decoded deployment under ids d1..d12 directly — the ordering
	// under test lives in the handler, not in registration, and re-running
	// calibration twelve times buys nothing.
	for i := 1; i <= 12; i++ {
		id := "d" + strconv.Itoa(i)
		srv.deployments[id] = &deployment{id: id, dep: dep}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var rows []struct {
		ID string `json:"id"`
	}
	if code := getJSON(t, ts.URL+"/v1/deployments", &rows); code != 200 {
		t.Fatalf("list status = %d", code)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for i, r := range rows {
		if want := "d" + strconv.Itoa(i+1); r.ID != want {
			t.Fatalf("row %d = %s, want %s (full order %v)", i, r.ID, want, ids(rows))
		}
	}
}

// TestTrajectoryListNumericOrder mirrors the deployment check on the
// trajectory listing: t2 before t10.
func TestTrajectoryListNumericOrder(t *testing.T) {
	cs := testCleaneds(t, 11)
	st := newTrajStore(0, 1, 0, newMetrics())
	st.addBatch("d1", cs)
	rows := st.list()
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	for i, r := range rows {
		if want := "t" + strconv.Itoa(i+1); r.ID != want {
			t.Fatalf("row %d = %s, want %s", i, r.ID, want)
		}
	}
	// The same ids under a plain string sort would interleave (t10 < t2) —
	// guard against the regression re-appearing via sort.Strings.
	plain := make([]string, len(rows))
	for i, r := range rows {
		plain[i] = r.ID
	}
	sort.Strings(plain)
	if plain[1] != "t10" {
		t.Fatalf("test premise broken: lexicographic order gave %v", plain)
	}
}

func ids(rows []struct {
	ID string `json:"id"`
}) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.ID
	}
	return out
}
