package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"log/slog"

	"repro/internal/obs/flight"
)

// TestDebugFlightEndpoint checks GET /debug/flight serves the sampled window
// with runtime stats and the server's application gauges.
func TestDebugFlightEndpoint(t *testing.T) {
	srv := NewWithOptions(Options{FlightInterval: time.Hour}) // one boot sample, no ticking
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// The boot sample lands asynchronously (the sampler goroutine runs a 1ms
	// scheduler probe first), so poll briefly.
	var snap flight.Snapshot
	deadline := time.Now().Add(5 * time.Second)
	for {
		if status := getJSON(t, ts.URL+"/debug/flight", &snap); status != http.StatusOK {
			t.Fatalf("flight status = %d", status)
		}
		if len(snap.Samples) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flight window has no samples")
		}
		time.Sleep(10 * time.Millisecond)
	}
	s := snap.Samples[0]
	if s.Goroutines <= 0 || s.HeapAllocBytes == 0 || s.UnixNanos == 0 {
		t.Fatalf("boot sample looks empty: %+v", s)
	}
	for _, gauge := range []string{"store_bytes", "stream_sessions", "inflight_requests", "persist_errors_total"} {
		if _, ok := s.Gauges[gauge]; !ok {
			t.Fatalf("sample missing gauge %q: %v", gauge, s.Gauges)
		}
	}

	resp, err := http.Post(ts.URL+"/debug/flight", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/flight = %d, want 405", resp.StatusCode)
	}
}

// TestDebugFlightDisabled checks a negative interval turns the recorder off.
func TestDebugFlightDisabled(t *testing.T) {
	srv := NewWithOptions(Options{FlightInterval: -1})
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	if status := getJSON(t, ts.URL+"/debug/flight", nil); status != http.StatusNotFound {
		t.Fatalf("disabled flight status = %d, want 404", status)
	}
}

func flightDumps(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// waitForDump polls for an asynchronous dump file to land.
func waitForDump(t *testing.T, dir string, want int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		paths := flightDumps(t, dir)
		if len(paths) >= want {
			return paths
		}
		if time.Now().After(deadline) {
			t.Fatalf("dump files = %d, want %d", len(paths), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func testSink(t *testing.T, dir string) *flightSink {
	t.Helper()
	f := &flightSink{
		rec:     flight.New(time.Hour, 8, nil),
		dataDir: dir,
		logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	f.rec.Start()
	t.Cleanup(func() { f.rec.Close() })
	return f
}

// TestFlightDumpOnEvictionStorm checks the storm detector: evictions below
// the threshold dump nothing, crossing it writes exactly one throttled dump.
func TestFlightDumpOnEvictionStorm(t *testing.T) {
	dir := t.TempDir()
	f := testSink(t, dir)

	f.noteEvictions(stormEvictions - 1)
	time.Sleep(50 * time.Millisecond)
	if got := flightDumps(t, dir); len(got) != 0 {
		t.Fatalf("sub-threshold evictions dumped: %v", got)
	}

	f.noteEvictions(1) // crosses the threshold
	paths := waitForDump(t, dir, 1)

	var snap flight.Snapshot
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("dump is not a flight snapshot: %v", err)
	}
	found := false
	for _, ev := range snap.Events {
		if ev.Reason == "eviction_storm" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dump events missing eviction_storm: %+v", snap.Events)
	}

	// Another storm inside the throttle window must not write a second file.
	f.noteEvictions(stormEvictions)
	time.Sleep(100 * time.Millisecond)
	if got := flightDumps(t, dir); len(got) != 1 {
		t.Fatalf("throttle failed: %d dump files", len(got))
	}
}

// TestFlightDumpOnPersistError checks the persister hook writes a dump noting
// the failed step.
func TestFlightDumpOnPersistError(t *testing.T) {
	dir := t.TempDir()
	f := testSink(t, dir)

	f.notePersistError("flush")
	paths := waitForDump(t, dir, 1)

	var snap flight.Snapshot
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range snap.Events {
		if ev.Reason == "persist_error" && ev.Detail == "flush" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dump events missing persist_error/flush: %+v", snap.Events)
	}
}

// TestDumpFlightUnthrottled checks the SIGQUIT path bypasses the throttle and
// returns the written path.
func TestDumpFlightUnthrottled(t *testing.T) {
	dir := t.TempDir()
	srv, err := Open(Options{FlightInterval: time.Hour, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	p1, err := srv.DumpFlight("sigquit")
	if err != nil || p1 == "" {
		t.Fatalf("first dump: path %q, err %v", p1, err)
	}
	p2, err := srv.DumpFlight("sigquit")
	if err != nil || p2 == "" || p2 == p1 {
		t.Fatalf("second dump throttled or reused path: %q vs %q, err %v", p2, p1, err)
	}
	for _, p := range []string{p1, p2} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("dump path %s: %v", p, err)
		}
	}
}
