package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"log/slog"

	"repro/internal/obs/flight"
)

// This file wires the runtime flight recorder (internal/obs/flight) into the
// server: the sampler's application gauges, the GET /debug/flight endpoint,
// and the dump triggers — an eviction storm, a persistence error, or the
// daemon's SIGQUIT handler — that write the sampled window to the data dir
// right when the process is misbehaving.

const (
	// stormEvictions within stormWindow counts as an eviction storm worth a
	// flight dump: sustained cache pressure, not a one-off budget trim.
	stormEvictions = 10
	stormWindow    = 10 * time.Second
	// dumpThrottle spaces automatic dumps so a persistent error loop cannot
	// fill the data dir. Operator-requested dumps (SIGQUIT) bypass it.
	dumpThrottle = 30 * time.Second
)

// flightSink owns the recorder plus the dump policy. Nil when the flight
// recorder is disabled.
type flightSink struct {
	rec     *flight.Recorder
	dataDir string // "" disables dumps (ring still serves /debug/flight)
	logger  *slog.Logger

	mu        sync.Mutex
	lastDump  time.Time
	evictions []time.Time // sliding storm-detection window
}

// flightGauges is the sampler's application-state callback.
func (s *Server) flightGauges() map[string]int64 {
	count, bytes := s.store.stats()
	return map[string]int64{
		"store_bytes":           bytes,
		"store_trajectories":    int64(count),
		"store_evictions_total": int64(s.metrics.storeEvictions.value()),
		"stream_sessions":       s.metrics.streamSessions.value(),
		"stream_subscribers":    s.metrics.streamSubscribers.value(),
		"inflight_requests":     s.metrics.inflight.value(),
		"persist_errors_total":  int64(s.metrics.persistErrors.value()),
	}
}

// noteEvictions feeds the storm detector with n fresh evictions (store or
// session). On a storm it dumps asynchronously — callers may hold locks.
func (f *flightSink) noteEvictions(n int) {
	if f == nil || n <= 0 {
		return
	}
	now := time.Now()
	f.mu.Lock()
	for i := 0; i < n; i++ {
		f.evictions = append(f.evictions, now)
	}
	cut := 0
	for cut < len(f.evictions) && now.Sub(f.evictions[cut]) > stormWindow {
		cut++
	}
	f.evictions = f.evictions[cut:]
	storm := len(f.evictions) >= stormEvictions
	if storm {
		f.evictions = f.evictions[:0] // re-arm: the next storm needs fresh evidence
	}
	f.mu.Unlock()
	if storm {
		go f.dump("eviction_storm", fmt.Sprintf("%d evictions within %s", stormEvictions, stormWindow), true)
	}
}

// notePersistError is the persister's error hook.
func (f *flightSink) notePersistError(step string) {
	if f == nil {
		return
	}
	go f.dump("persist_error", step, true)
}

// dump notes the event, forces a final sample and writes the window to the
// data dir as flight-<unixnanos>.json. throttled dumps are dropped when one
// happened within dumpThrottle. Returns the written path ("" when only the
// in-memory ring was updated).
func (f *flightSink) dump(reason, detail string, throttled bool) (string, error) {
	if f == nil {
		return "", nil
	}
	f.rec.Note(reason, detail)
	f.rec.Sample()
	if f.dataDir == "" {
		return "", nil
	}
	now := time.Now()
	f.mu.Lock()
	if throttled && now.Sub(f.lastDump) < dumpThrottle {
		f.mu.Unlock()
		return "", nil
	}
	f.lastDump = now
	f.mu.Unlock()

	data, err := json.MarshalIndent(f.rec.Snapshot(), "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(f.dataDir, fmt.Sprintf("flight-%d.json", now.UnixNano()))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		f.logger.Error("flight: dump failed", slog.String("error", err.Error()))
		return "", err
	}
	f.logger.Info("flight: dumped recorder window",
		slog.String("reason", reason), slog.String("detail", detail), slog.String("path", path))
	return path, nil
}

// DumpFlight writes the flight-recorder window to the data dir immediately
// (no throttle) — the daemon calls this on SIGQUIT. It returns the written
// file path, "" when the server has no data dir or no flight recorder.
func (s *Server) DumpFlight(reason string) (string, error) {
	return s.flight.dump(reason, "", false)
}

// handleDebugFlight serves the sampled window as JSON.
func (s *Server) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "flight recorder is disabled (negative flight interval)")
		return
	}
	writeJSON(w, http.StatusOK, s.flight.rec.Snapshot())
}
