package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"log/slog"
)

// ---------------------------------------------------------------------------
// Hub unit tests (no HTTP).

func TestHubPublishSubscribe(t *testing.T) {
	m := newMetrics()
	h := newSessionHub("s1", 4, 8, m)
	sub, replay, gap := h.subscribe(0, false)
	if sub == nil || len(replay) != 0 || gap {
		t.Fatalf("fresh subscribe = (%v, %d, %v)", sub, len(replay), gap)
	}
	if got := m.streamSubscribers.value(); got != 1 {
		t.Fatalf("subscriber gauge = %d, want 1", got)
	}
	h.publish(eventKindDelta, StreamDeltaEvent{ID: "s1", Time: 0})
	h.publish(eventKindSmooth, StreamSmoothEvent{ID: "s1"})
	ev := <-sub.ch
	if ev.id != 1 || ev.kind != eventKindDelta {
		t.Fatalf("first event = id %d kind %s", ev.id, ev.kind)
	}
	ev = <-sub.ch
	if ev.id != 2 || ev.kind != eventKindSmooth {
		t.Fatalf("second event = id %d kind %s", ev.id, ev.kind)
	}
	if got := m.streamEvents.get(eventKindDelta); got != 1 {
		t.Fatalf("delta event counter = %d, want 1", got)
	}
	h.unsubscribe(sub)
	h.unsubscribe(sub) // idempotent: the gauge moves exactly once
	if got := m.streamSubscribers.value(); got != 0 {
		t.Fatalf("subscriber gauge after unsubscribe = %d, want 0", got)
	}
	if h.subscribers() != 0 {
		t.Fatalf("subscribers() = %d, want 0", h.subscribers())
	}
}

// TestHubResume covers the Last-Event-ID replay contract: a cursor inside
// the ring replays exactly the missed suffix; a cursor the ring no longer
// reaches gets a partial replay flagged as a gap.
func TestHubResume(t *testing.T) {
	h := newSessionHub("s1", 4, 4, newMetrics())
	for i := 0; i < 6; i++ { // ids 1..6; ring holds 3..6
		h.publish(eventKindDelta, StreamDeltaEvent{Time: i})
	}
	for _, tc := range []struct {
		lastID  uint64
		wantIDs []uint64
		wantGap bool
	}{
		{6, nil, false},            // fully caught up
		{4, []uint64{5, 6}, false}, // contiguous resume
		{2, []uint64{3, 4, 5, 6}, false},
		{0, []uint64{3, 4, 5, 6}, true}, // ids 1..2 fell off the ring
		{1, []uint64{3, 4, 5, 6}, true}, // id 2 fell off the ring
		{9, nil, false},                 // cursor from the future: nothing to say
	} {
		sub, replay, gap := h.subscribe(tc.lastID, true)
		if sub == nil {
			t.Fatalf("lastID %d: hub refused subscribe", tc.lastID)
		}
		var ids []uint64
		for _, ev := range replay {
			ids = append(ids, ev.id)
		}
		if fmt.Sprint(ids) != fmt.Sprint(tc.wantIDs) || gap != tc.wantGap {
			t.Errorf("lastID %d: replay %v gap %v, want %v gap %v", tc.lastID, ids, gap, tc.wantIDs, tc.wantGap)
		}
		h.unsubscribe(sub)
	}
}

// TestHubSlowSubscriberEvicted is the non-blocking-publish contract: a
// subscriber that stops draining is dropped the moment its buffer overflows,
// and the publisher never waits.
func TestHubSlowSubscriberEvicted(t *testing.T) {
	m := newMetrics()
	h := newSessionHub("s1", 8, 0, m)
	stalled, _, _ := h.subscribe(0, false)
	live, _, _ := h.subscribe(0, false)
	// Publish one past the stalled subscriber's buffer, draining the live
	// subscriber in lockstep so only the stalled one can overflow.
	for i := 0; i < 9; i++ {
		published := make(chan struct{})
		go func() {
			h.publish(eventKindDelta, StreamDeltaEvent{Time: i})
			close(published)
		}()
		select {
		case <-published:
		case <-time.After(5 * time.Second):
			t.Fatal("publish blocked on a stalled subscriber")
		}
		select {
		case ev := <-live.ch:
			if ev.id != uint64(i+1) {
				t.Fatalf("live subscriber got id %d, want %d", ev.id, i+1)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("live subscriber starved")
		}
	}
	n := 0
	for range stalled.ch { // closed by the hub after eviction
		n++
	}
	if !stalled.evicted {
		t.Fatal("stalled subscriber not marked evicted")
	}
	if n != 8 {
		t.Fatalf("stalled subscriber drained %d buffered events, want 8", n)
	}
	if h.subscribers() != 1 {
		t.Fatalf("subscribers after eviction = %d, want 1 (the live one)", h.subscribers())
	}
	if got := m.streamSubsEvicted.value(); got != 1 {
		t.Fatalf("evicted counter = %d, want 1", got)
	}
	if got := m.streamEventsDropped.value(); got != 1 {
		t.Fatalf("dropped counter = %d, want 1", got)
	}
	h.shutdown(closeReasonClosed)
	if ev, ok := <-live.ch; !ok || ev.kind != eventKindClose {
		t.Fatalf("live subscriber after shutdown: %+v ok=%v, want close event", ev, ok)
	}
	if _, ok := <-live.ch; ok {
		t.Fatal("live channel still open after shutdown")
	}
	if got := m.streamSubscribers.value(); got != 0 {
		t.Fatalf("subscriber gauge after shutdown = %d, want 0", got)
	}
}

func TestHubShutdownIdempotent(t *testing.T) {
	m := newMetrics()
	h := newSessionHub("s1", 4, 8, m)
	sub, _, _ := h.subscribe(0, false)
	h.shutdown(closeReasonReaped)
	h.shutdown(closeReasonClosed) // no-op: no double close, no second event
	ev, ok := <-sub.ch
	if !ok || ev.kind != eventKindClose || !strings.Contains(string(ev.data), closeReasonReaped) {
		t.Fatalf("close event = %+v ok=%v, want reaped close", ev, ok)
	}
	if _, ok := <-sub.ch; ok {
		t.Fatal("channel still open after shutdown")
	}
	if sub.evicted {
		t.Fatal("shutdown must not read as eviction")
	}
	h.publish(eventKindDelta, StreamDeltaEvent{}) // dropped, not panicking
	if got := m.streamEvents.get(eventKindDelta); got != 0 {
		t.Fatalf("post-shutdown publish counted: %d", got)
	}
	if sub2, _, _ := h.subscribe(0, false); sub2 != nil {
		t.Fatal("subscribe succeeded on a closed hub")
	}
}

// ---------------------------------------------------------------------------
// SSE endpoint tests.

// sseEvent is one parsed wire event; comments accumulate separately.
type sseEvent struct {
	id, kind, data string
}

// sseReader incrementally parses an SSE response body.
type sseReader struct {
	br       *bufio.Reader
	cur      sseEvent
	comments []string
}

func newSSEReader(body io.Reader) *sseReader {
	return &sseReader{br: bufio.NewReader(body)}
}

// step consumes one wire line: comments accumulate in sr.comments, field
// lines build the current event, and a blank line completes it (returned
// non-nil). A blank line after only comments completes nothing.
func (sr *sseReader) step() (*sseEvent, error) {
	line, err := sr.br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	line = strings.TrimRight(line, "\n")
	switch {
	case line == "":
		if sr.cur.kind != "" || sr.cur.data != "" || sr.cur.id != "" {
			ev := sr.cur
			sr.cur = sseEvent{}
			return &ev, nil
		}
	case strings.HasPrefix(line, ":"):
		sr.comments = append(sr.comments, strings.TrimSpace(line[1:]))
	case strings.HasPrefix(line, "id:"):
		sr.cur.id = strings.TrimSpace(line[3:])
	case strings.HasPrefix(line, "event:"):
		sr.cur.kind = strings.TrimSpace(line[6:])
	case strings.HasPrefix(line, "data:"):
		sr.cur.data = strings.TrimSpace(line[5:])
	}
	return nil, nil
}

// next returns the next full event, buffering any comment lines seen on the
// way. io.EOF means the server ended the stream.
func (sr *sseReader) next() (sseEvent, error) {
	for {
		ev, err := sr.step()
		if err != nil {
			return sseEvent{}, err
		}
		if ev != nil {
			return *ev, nil
		}
	}
}

// waitComment reads until a comment containing substr arrives (events
// completed on the way are discarded).
func (sr *sseReader) waitComment(t *testing.T, substr string) {
	t.Helper()
	for {
		for _, c := range sr.comments {
			if strings.Contains(c, substr) {
				return
			}
		}
		sr.comments = nil
		if _, err := sr.step(); err != nil {
			t.Fatalf("stream ended while waiting for comment %q: %v", substr, err)
		}
	}
}

// subscribeSSE opens GET /v1/stream/{id}/events and waits for the connected
// handshake comment.
func subscribeSSE(t *testing.T, base, sid, lastEventID string) (*sseReader, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stream/"+sid+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		cancel()
		t.Fatalf("subscribe = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		cancel()
		t.Fatalf("Content-Type = %q", ct)
	}
	sr := newSSEReader(resp.Body)
	sr.waitComment(t, "connected session="+sid)
	return sr, cancel
}

// TestStreamEventsSSE drives the full push loop over HTTP: readings POSTs
// produce delta events, a smooth produces a smooth event, and DELETE ends
// the stream with a final smooth, a terminal close event, and EOF.
func TestStreamEventsSSE(t *testing.T) {
	base, _, depID, sys := streamHarness(t, Options{SSEHeartbeat: -1})
	sid := openStream(t, base, depID, 0)
	readings := testReadings(t, sys, 21, 30)

	sr, cancel := subscribeSSE(t, base, sid, "")
	defer cancel()

	resp, body := postJSON(t, base+"/v1/stream/"+sid+"/readings", StreamReadingsRequest{Readings: readings[:10]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readings POST = %d: %s", resp.StatusCode, body)
	}
	ev, err := sr.next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.id != "1" || ev.kind != eventKindDelta {
		t.Fatalf("first event = %+v, want id 1 delta", ev)
	}
	for _, want := range []string{`"id":"` + sid + `"`, `"readings":10`, `"accepted":10`, `"time":9`, `"current":[{"location":"`} {
		if !strings.Contains(ev.data, want) {
			t.Errorf("delta payload %s missing %s", ev.data, want)
		}
	}

	resp, body = postJSON(t, base+"/v1/stream/"+sid+"/smooth", nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("smooth POST = %d: %s", resp.StatusCode, body)
	}
	if ev, err = sr.next(); err != nil || ev.kind != eventKindSmooth {
		t.Fatalf("after smooth: event %+v err %v, want smooth", ev, err)
	}
	if !strings.Contains(ev.data, `"trajectory":{"id":"t`) || !strings.Contains(ev.data, `"mode":`) {
		t.Errorf("smooth payload %s missing trajectory handle or mode", ev.data)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/stream/"+sid, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", dresp.StatusCode)
	}
	// The close smooths once more (the buffer is non-empty), so the stream
	// ends smooth → close → EOF.
	if ev, err = sr.next(); err != nil || ev.kind != eventKindSmooth {
		t.Fatalf("after close: event %+v err %v, want the closing smooth", ev, err)
	}
	if ev, err = sr.next(); err != nil || ev.kind != eventKindClose {
		t.Fatalf("terminal event = %+v err %v, want close", ev, err)
	}
	if !strings.Contains(ev.data, `"reason":"closed"`) {
		t.Errorf("close payload = %s, want reason closed", ev.data)
	}
	if _, err = sr.next(); err != io.EOF {
		t.Fatalf("after close event: %v, want EOF", err)
	}

	// The session is now a tombstone: a late subscriber gets 410, not 404.
	gresp, err := http.Get(base + "/v1/stream/" + sid + "/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusGone {
		t.Fatalf("subscribe to closed session = %d, want 410", gresp.StatusCode)
	}
}

// TestStreamEventsResume checks Last-Event-ID: a reconnecting subscriber
// replays the events it missed, and a cursor older than the ring is told
// about the gap.
func TestStreamEventsResume(t *testing.T) {
	base, _, depID, sys := streamHarness(t, Options{SSEHeartbeat: -1, EventHistory: 4})
	sid := openStream(t, base, depID, 0)
	readings := testReadings(t, sys, 22, 30)
	for i := 0; i < 6; i++ { // publishes delta ids 1..6; ring keeps 3..6
		resp, body := postJSON(t, base+"/v1/stream/"+sid+"/readings", StreamReadingsRequest{Readings: readings[i : i+1]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readings POST %d = %d: %s", i, resp.StatusCode, body)
		}
	}

	sr, cancel := subscribeSSE(t, base, sid, "4")
	ev, err := sr.next()
	if err != nil || ev.id != "5" {
		t.Fatalf("resume from 4: first replayed = %+v err %v, want id 5", ev, err)
	}
	if ev, err = sr.next(); err != nil || ev.id != "6" {
		t.Fatalf("resume from 4: second replayed = %+v err %v, want id 6", ev, err)
	}
	cancel()

	// Last-Event-ID: 0 asks for everything; the ring only reaches back to id
	// 3, so the replay starts there and is flagged as partial.
	sr2, cancel2 := subscribeSSE(t, base, sid, "0")
	defer cancel2()
	if ev, err = sr2.next(); err != nil || ev.id != "3" {
		t.Fatalf("resume from 0: first replayed = %+v err %v, want id 3", ev, err)
	}
	sr2.waitComment(t, "resume gap")

	// An unparsable cursor is a client bug worth a loud answer.
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/stream/"+sid+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID = %d, want 400", bresp.StatusCode)
	}
}

// TestStreamEventsHeartbeat checks that an idle stream carries heartbeat
// comments and that each one counts as session activity — a watched session
// outlives its idle TTL.
func TestStreamEventsHeartbeat(t *testing.T) {
	base, srv, depID, _ := streamHarness(t, Options{SSEHeartbeat: 20 * time.Millisecond, SessionTTL: 80 * time.Millisecond})
	sid := openStream(t, base, depID, 0)
	sr, cancel := subscribeSSE(t, base, sid, "")
	defer cancel()
	deadline := time.Now().Add(5 * time.Second)
	beats := 0
	for beats < 10 && time.Now().Before(deadline) {
		sr.comments = nil
		sr.waitComment(t, "hb")
		beats++
	}
	if beats < 10 {
		t.Fatalf("saw %d heartbeats before the deadline", beats)
	}
	// 10 beats at 20ms spans well past the 80ms TTL; the session must still
	// be there because every heartbeat touched it.
	if srv.sessions.get(sid) == nil {
		t.Fatal("session reaped under a live subscriber")
	}
}

// TestDrainSubscribers is the graceful-shutdown hook: draining ends every
// subscriber stream with a shutdown close event while sessions stay open.
func TestDrainSubscribers(t *testing.T) {
	base, srv, depID, _ := streamHarness(t, Options{SSEHeartbeat: -1})
	sid := openStream(t, base, depID, 0)
	sr, cancel := subscribeSSE(t, base, sid, "")
	defer cancel()
	srv.DrainSubscribers()
	ev, err := sr.next()
	if err != nil || ev.kind != eventKindClose || !strings.Contains(ev.data, `"reason":"shutdown"`) {
		t.Fatalf("drained stream ended with %+v err %v, want shutdown close", ev, err)
	}
	if _, err := sr.next(); err != io.EOF {
		t.Fatalf("after drain: %v, want EOF", err)
	}
	if srv.sessions.get(sid) == nil {
		t.Fatal("drain closed the session itself")
	}
	// The session's hub is gone, so a new subscriber is told 410 and can
	// re-open; the readings path keeps working.
	resp, err := http.Get(base + "/v1/stream/" + sid + "/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("subscribe after drain = %d, want 410", resp.StatusCode)
	}
}

// ---------------------------------------------------------------------------
// Load: the acceptance bar is 2000 concurrent subscribers on one session
// without the ingest path noticing (p99 within 2x of the no-subscriber
// baseline). loadSubscribers is scaled down under -race (hub_race_test.go),
// where the goroutine budget and instrumentation overhead would drown the
// measurement.

func TestHubLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	base, srv, depID, sys := streamHarness(t, Options{
		SSEHeartbeat:       -1,
		MaxSessionReadings: 1 << 17,
	})
	sid := openStream(t, base, depID, 0)
	readings := testReadings(t, sys, 23, 260)

	post := func(i int) time.Duration {
		t.Helper()
		start := time.Now()
		resp, body := postJSON(t, base+"/v1/stream/"+sid+"/readings", StreamReadingsRequest{Readings: readings[i : i+1]})
		elapsed := time.Since(start)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readings POST %d = %d: %s", i, resp.StatusCode, body)
		}
		return elapsed
	}
	p99 := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)*99/100]
	}
	// The acceptance gate is the Observe hot path itself, read off the
	// rfidclean_observe_duration histogram: snapshot the buckets around each
	// phase and take the p99 bucket bound of the delta.
	obsHist := srv.metrics.observeSeconds
	snapshot := func() []uint64 {
		obsHist.mu.Lock()
		defer obsHist.mu.Unlock()
		return append([]uint64(nil), obsHist.counts...)
	}
	histP99 := func(before, after []uint64) float64 {
		var total, cum uint64
		for i := range after {
			total += after[i] - before[i]
		}
		if total == 0 {
			t.Fatal("no observations recorded in this phase")
		}
		need := total - total/100
		for i := range after {
			cum += after[i] - before[i]
			if cum >= need {
				if i < len(obsHist.bounds) {
					return obsHist.bounds[i]
				}
				return math.Inf(1)
			}
		}
		return 0
	}

	// Baseline: observe latency with nobody listening.
	pre := snapshot()
	var baseline []time.Duration
	for i := 0; i < 100; i++ {
		baseline = append(baseline, post(i))
	}
	postBaseline := snapshot()

	// Attach the fleet. Each subscriber drains its stream and counts deltas,
	// bumping the shared counter the pacing loop below synchronizes on.
	var seen atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &http.Transport{MaxIdleConns: 0, MaxConnsPerHost: 0}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()
	var wg sync.WaitGroup
	errs := make(chan error, loadSubscribers)
	deltas := make(chan int, loadSubscribers)
	for i := 0; i < loadSubscribers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stream/"+sid+"/events", nil)
			if err != nil {
				errs <- err
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			sr := newSSEReader(resp.Body)
			n := 0
			for {
				ev, err := sr.next()
				if err != nil {
					break // EOF (hub shutdown) or cancelled context
				}
				if ev.kind == eventKindDelta {
					n++
					seen.Add(1)
				}
				if ev.kind == eventKindClose {
					break
				}
			}
			deltas <- n
		}()
	}
	hub := srv.sessions.get(sid).hub
	for deadline := time.Now().Add(30 * time.Second); hub.subscribers() < loadSubscribers; {
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d subscribers attached", hub.subscribers(), loadSubscribers)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// One stalled subscriber attached directly: it never drains, so the 100
	// loaded posts must overflow its 64-slot buffer and evict it while
	// everyone else keeps flowing.
	stalled, _, _ := hub.subscribe(0, false)

	// Measure with the fleet attached, letting each delta drain to every
	// subscriber before timing the next POST. The whole fleet plus its
	// clients runs on this one box, so an unpaced loop would measure the
	// test starving itself of CPU, not the publish overhead the contract is
	// about — publish must not block, but it cannot conjure cores.
	var loaded []time.Duration
	for i := 0; i < 100; i++ {
		loaded = append(loaded, post(100+i))
		want := int64(loadSubscribers) * int64(i+1)
		for deadline := time.Now().Add(30 * time.Second); seen.Load() < want; {
			if time.Now().After(deadline) {
				t.Fatalf("post %d: fleet saw %d/%d deltas", i, seen.Load(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Drain the stalled subscriber's channel: the hub closed it on eviction,
	// and that close orders its buffered tail and the evicted flag before us.
	drainedEvents := 0
	for range stalled.ch {
		drainedEvents++
	}
	if !stalled.evicted {
		t.Fatalf("stalled subscriber was never evicted (%d buffered)", drainedEvents)
	}
	if drainedEvents > DefaultSubscriberBuffer {
		t.Fatalf("stalled subscriber held %d events, beyond its %d buffer", drainedEvents, DefaultSubscriberBuffer)
	}

	postLoaded := snapshot()
	baseObs := histP99(pre, postBaseline)
	loadObs := histP99(postBaseline, postLoaded)
	t.Logf("p99 Observe bucket: baseline <=%gs, with %d subscribers <=%gs", baseObs, loadSubscribers, loadObs)
	t.Logf("p99 readings POST round-trip: baseline %v, with %d subscribers %v (includes fan-out drain on this box)", p99(baseline), loadSubscribers, p99(loaded))
	// 2x is the acceptance bar; the absolute grace covers a one-bucket jump
	// from scheduler noise when both numbers sit in the microsecond buckets.
	if loadObs > 2*baseObs+0.010 {
		t.Errorf("p99 Observe with subscribers <=%gs, over 2x baseline <=%gs", loadObs, baseObs)
	}

	// Tear down: close the session so every subscriber sees a close event
	// and finishes before the harness shuts the listener down.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/stream/"+sid+"?smooth=no", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatal("subscribers did not finish after session close")
	}
	close(deltas)
	total, n := 0, 0
	for d := range deltas {
		total += d
		n++
	}
	if n != loadSubscribers {
		t.Fatalf("%d subscribers reported, want %d", n, loadSubscribers)
	}
	// Every subscriber was attached for all 100 loaded posts.
	if total < loadSubscribers*100 {
		t.Errorf("subscribers saw %d deltas in total, want >= %d", total, loadSubscribers*100)
	}
}

// BenchmarkHubFanout measures one publish fanned out to 128 drained
// subscribers — the per-batch overhead the Observe path pays when a session
// is being watched.
func BenchmarkHubFanout(b *testing.B) {
	h := newSessionHub("s1", 1024, 0, newMetrics())
	const subs = 128
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		sub, _, _ := h.subscribe(0, false)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range sub.ch {
			}
		}()
	}
	payload := StreamDeltaEvent{
		ID: "s1", Time: 42, Readings: 43, Accepted: 1, Frontier: 7,
		Current: []LocationProb{{Location: "corridor", P: 0.5}, {Location: "lab", P: 0.3}, {Location: "office", P: 0.2}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.publish(eventKindDelta, payload)
	}
	b.StopTimer()
	h.shutdown(closeReasonClosed)
	wg.Wait()
	if got := h.subscribers(); got != 0 {
		b.Fatalf("%d subscribers left", got)
	}
}

// TestSSEAccessLogDelivery checks an events stream's access line reports
// time-to-first-event and delivered event/byte counts once the subscriber
// disconnects (satellite of the tail-attribution work: the one endpoint whose
// total duration is meaningless gets delivery stats instead).
func TestSSEAccessLogDelivery(t *testing.T) {
	var logs syncBuffer
	base, _, depID, sys := streamHarness(t, Options{
		SSEHeartbeat: -1,
		Logger:       slog.New(slog.NewTextHandler(&logs, &slog.HandlerOptions{Level: slog.LevelInfo})),
	})
	sid := openStream(t, base, depID, 0)
	sr, cancel := subscribeSSE(t, base, sid, "")

	readings := testReadings(t, sys, 21, 30)
	resp, body := postJSON(t, base+"/v1/stream/"+sid+"/readings", StreamReadingsRequest{Readings: readings[:5]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readings POST = %d: %s", resp.StatusCode, body)
	}
	if _, err := sr.next(); err != nil {
		t.Fatal(err)
	}
	cancel() // disconnect: the events handler returns and logs its access line

	deadline := time.Now().Add(5 * time.Second)
	for {
		got := logs.String()
		if strings.Contains(got, "path=/v1/stream/"+sid+"/events") &&
			strings.Contains(got, "eventsDelivered=1") {
			if !strings.Contains(got, "timeToFirstEvent=") || strings.Contains(got, "timeToFirstEvent=0s") {
				t.Fatalf("SSE access line missing a non-zero timeToFirstEvent:\n%s", got)
			}
			if !regexp.MustCompile(`bytesDelivered=[1-9]\d*`).MatchString(got) {
				t.Fatalf("SSE access line missing non-zero bytesDelivered:\n%s", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no SSE access line with delivery stats:\n%s", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
