package server

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	rfidclean "repro"
)

// This file is a minimal, stdlib-only metrics registry for the query head.
// It knows exactly the instruments the server needs — counters, gauges, one
// kind of histogram, and counters fanned out over a small label set — and
// renders them in the Prometheus text exposition format at GET /metrics.
// Pulling in a client library for a handful of gauges would dwarf the server
// itself; the format is simple enough to emit directly.

// counter is a monotonically increasing metric.
type counter struct{ n atomic.Uint64 }

func (c *counter) inc()          { c.n.Add(1) }
func (c *counter) add(d uint64)  { c.n.Add(d) }
func (c *counter) value() uint64 { return c.n.Load() }

// gauge is a metric that can go up and down.
type gauge struct{ n atomic.Int64 }

func (g *gauge) set(v int64)  { g.n.Store(v) }
func (g *gauge) add(d int64)  { g.n.Add(d) }
func (g *gauge) value() int64 { return g.n.Load() }

// labeled fans a counter out over the value combinations of a fixed label
// list (e.g. {mode, outcome}).
type labeled struct {
	labels []string
	mu     sync.Mutex
	vals   map[string]*counter // key = label values joined with \x00
}

func newLabeled(labels ...string) *labeled {
	return &labeled{labels: labels, vals: make(map[string]*counter)}
}

func (l *labeled) inc(values ...string) { l.add(1, values...) }

func (l *labeled) add(d uint64, values ...string) {
	if len(values) != len(l.labels) {
		panic("server: labeled counter arity mismatch")
	}
	key := strings.Join(values, "\x00")
	l.mu.Lock()
	c := l.vals[key]
	if c == nil {
		c = &counter{}
		l.vals[key] = c
	}
	l.mu.Unlock()
	c.add(d)
}

// get returns the current count for one label-value combination (testing and
// health reporting; missing series read as zero).
func (l *labeled) get(values ...string) uint64 {
	key := strings.Join(values, "\x00")
	l.mu.Lock()
	c := l.vals[key]
	l.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.value()
}

// histogram is a Prometheus-style cumulative histogram with fixed bounds.
type histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []uint64 // per-bucket (not cumulative); counts[len(bounds)] = +Inf
	sum    float64
	count  uint64
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// labeledHistogram fans a histogram out over the values of a single label
// (e.g. {phase}); every series shares one bound list.
type labeledHistogram struct {
	label  string
	bounds []float64
	mu     sync.Mutex
	vals   map[string]*histogram
}

func newLabeledHistogram(label string, bounds ...float64) *labeledHistogram {
	return &labeledHistogram{label: label, bounds: bounds, vals: make(map[string]*histogram)}
}

func (lh *labeledHistogram) observe(value string, v float64) {
	lh.mu.Lock()
	h := lh.vals[value]
	if h == nil {
		h = newHistogram(lh.bounds...)
		lh.vals[value] = h
	}
	lh.mu.Unlock()
	h.observe(v)
}

// series returns the histogram of one label value (testing; nil when the
// series has never been observed).
func (lh *labeledHistogram) series(value string) *histogram {
	lh.mu.Lock()
	defer lh.mu.Unlock()
	return lh.vals[value]
}

// metrics is the server's registry. All fields are safe for concurrent use.
type metrics struct {
	// Request counters.
	cleanRequests *labeled // {mode: single|group|batch, outcome}
	batchSlots    *labeled // {outcome: ok|error}
	queryOps      *labeled // {op: stay|match|top|occupancy|stats|delete}

	// Constraint cache.
	cacheHits   counter
	cacheMisses counter

	// Latency and size distributions.
	cleanSeconds *histogram
	graphBytes   *histogram

	// Per-endpoint request latency with exemplars linking high buckets to
	// retained traces (exemplar.go).
	requestSeconds *requestHistograms

	// Cleaning explain aggregates: where clean time goes, phase by phase,
	// and how many candidate successors each constraint family pruned.
	phaseSeconds     *labeledHistogram // {phase: derive|compile|forward|backward|revise}
	prunedCandidates *labeled          // {constraint: DU|LT|TT}

	// Trajectory store.
	storeBytes     gauge
	storeCount     gauge
	storeEvictions counter

	// Streaming sessions.
	streamSessions gauge    // currently open sessions
	streamReadings *labeled // {outcome: ok|out_of_order|gap|budget|bad_reading|dead_end|dead_session}
	observeSeconds *histogram
	streamReaped   counter
	streamEvicted  counter
	streamSmooths  *labeled // {mode: incremental|full}

	// Event fan-out (hub.go).
	streamSubscribers   gauge    // SSE subscribers currently attached
	streamEvents        *labeled // {kind: delta|smooth|close}
	streamEventsDropped counter  // events a subscriber's buffer could not take
	streamSubsEvicted   counter  // subscribers dropped for falling behind
	fanoutSeconds       *histogram

	// Resource bounds and liveness.
	deployments    gauge
	bodyRejections counter
	inflight       gauge // /v1/ requests currently being served

	// Durability (persist.go); all zero when the server runs without a data
	// directory.
	persistFlushes        counter
	persistCompactions    counter
	persistErrors         counter
	persistBytes          gauge // total bytes of the on-disk data files
	persistFlushSeconds   *histogram
	recoveredDeployments  gauge
	recoveredTrajectories gauge
	recoveryDropped       gauge // records dropped at boot (unknown dep, undecodable, over budget)
	recoveryTruncated     gauge // 1 when the last boot found a corrupt/truncated log tail
}

// LatencyBucketBounds returns the canonical request-latency bucket ladder
// (seconds) used by the server's clean-duration histogram. It is exported so
// external harnesses (cmd/rfidload) can render their per-endpoint results on
// the same ladder and line up client-side and server-side distributions.
func LatencyBucketBounds() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

func newMetrics() *metrics {
	return &metrics{
		cleanRequests:  newLabeled("mode", "outcome"),
		batchSlots:     newLabeled("outcome"),
		queryOps:       newLabeled("op"),
		cleanSeconds:   newHistogram(LatencyBucketBounds()...),
		requestSeconds: newRequestHistograms(LatencyBucketBounds()),
		graphBytes: newHistogram(
			1<<10, 4<<10, 16<<10, 64<<10, 256<<10, 1<<20, 4<<20, 16<<20,
		),
		phaseSeconds: newLabeledHistogram("phase",
			0.00001, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1, 5,
		),
		prunedCandidates: newLabeled("constraint"),
		streamReadings:   newLabeled("outcome"),
		observeSeconds: newHistogram(
			0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05, 0.25, 1,
		),
		streamSmooths: newLabeled("mode"),
		streamEvents:  newLabeled("kind"),
		fanoutSeconds: newHistogram(
			0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005, 0.0001,
			0.00025, 0.0005, 0.001, 0.0025, 0.01, 0.05, 0.25,
		),
		persistFlushSeconds: newHistogram(
			0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1,
		),
	}
}

// recordExplain folds one clean's explain report into the per-phase latency
// histograms and the per-constraint prune counters.
func (m *metrics) recordExplain(ex *rfidclean.Explain) {
	if ex == nil {
		return
	}
	m.phaseSeconds.observe("derive", float64(ex.DeriveNanos)/1e9)
	m.phaseSeconds.observe("compile", float64(ex.Build.CompileNanos)/1e9)
	m.phaseSeconds.observe("forward", float64(ex.Build.ForwardNanos)/1e9)
	m.phaseSeconds.observe("backward", float64(ex.Build.BackwardNanos)/1e9)
	m.phaseSeconds.observe("revise", float64(ex.Build.ReviseNanos)/1e9)
	m.prunedCandidates.add(uint64(ex.Build.PrunedDU), "DU")
	m.prunedCandidates.add(uint64(ex.Build.PrunedLT), "LT")
	m.prunedCandidates.add(uint64(ex.Build.PrunedTT), "TT")
}

// ServeHTTP renders the registry in the Prometheus text format.
func (m *metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.writeTo(w)
}

func (m *metrics) writeTo(w io.Writer) {
	writeLabeled(w, "rfidclean_clean_requests_total",
		"Clean requests served, by mode and outcome.", m.cleanRequests)
	writeLabeled(w, "rfidclean_batch_slots_total",
		"Individual batch-clean slots, by outcome.", m.batchSlots)
	writeLabeled(w, "rfidclean_query_ops_total",
		"Trajectory query operations served, by operation.", m.queryOps)
	writeCounter(w, "rfidclean_constraint_cache_hits_total",
		"Clean requests that reused a cached constraint set.", &m.cacheHits)
	writeCounter(w, "rfidclean_constraint_cache_misses_total",
		"Clean requests that ran DU/LT/TT constraint inference.", &m.cacheMisses)
	writeHistogram(w, "rfidclean_clean_duration_seconds",
		"End-to-end latency of successful clean requests.", m.cleanSeconds)
	writeHistogram(w, "rfidclean_graph_bytes",
		"Estimated size of stored conditioned trajectory graphs.", m.graphBytes)
	m.requestSeconds.writeTo(w, "rfidclean_request_duration_seconds",
		"Per-endpoint request latency; buckets carry exemplars linking to retained traces at /debug/traces.")
	writeLabeledHistogram(w, "rfidclean_clean_phase_duration_seconds",
		"Per-phase latency of cleans (derive, compile, forward, backward, revise).", m.phaseSeconds)
	writeLabeled(w, "rfidclean_pruned_candidates_total",
		"Candidate successors pruned by integrity constraints, by constraint family.", m.prunedCandidates)
	writeGauge(w, "rfidclean_store_bytes",
		"Estimated bytes of trajectory graphs currently stored.", &m.storeBytes)
	writeGauge(w, "rfidclean_store_trajectories",
		"Trajectory graphs currently stored.", &m.storeCount)
	writeCounter(w, "rfidclean_store_evictions_total",
		"Trajectory graphs evicted to fit the store byte budget.", &m.storeEvictions)
	writeGauge(w, "rfidclean_stream_sessions",
		"Streaming sessions currently open.", &m.streamSessions)
	writeLabeled(w, "rfidclean_stream_readings_total",
		"Streaming readings processed, by outcome.", m.streamReadings)
	writeHistogram(w, "rfidclean_stream_observe_duration_seconds",
		"Per-reading latency of streaming filter observations.", m.observeSeconds)
	writeCounter(w, "rfidclean_stream_reaped_total",
		"Streaming sessions closed by the idle-TTL reaper.", &m.streamReaped)
	writeCounter(w, "rfidclean_stream_evicted_total",
		"Streaming sessions evicted to admit new ones at the session cap.", &m.streamEvicted)
	writeLabeled(w, "rfidclean_stream_smooths_total",
		"Stream smoothing operations, by rebuild mode (incremental reuses the session's live forward state; full rebuilds from the buffered readings).", m.streamSmooths)
	writeGauge(w, "rfidclean_stream_subscribers",
		"SSE event subscribers currently attached across all streaming sessions.", &m.streamSubscribers)
	writeLabeled(w, "rfidclean_stream_events_total",
		"Events published to streaming-session hubs, by kind.", m.streamEvents)
	writeCounter(w, "rfidclean_stream_events_dropped_total",
		"Events a slow subscriber's buffer could not accept (each drop also evicts the subscriber).", &m.streamEventsDropped)
	writeCounter(w, "rfidclean_stream_subscribers_evicted_total",
		"SSE subscribers dropped for falling behind their event buffer.", &m.streamSubsEvicted)
	writeHistogram(w, "rfidclean_stream_fanout_duration_seconds",
		"Time to enqueue one published event to every subscriber of a session.", m.fanoutSeconds)
	writeGauge(w, "rfidclean_deployments",
		"Deployments currently registered.", &m.deployments)
	writeCounter(w, "rfidclean_body_rejections_total",
		"POST bodies rejected for exceeding the size limit.", &m.bodyRejections)
	writeGauge(w, "rfidclean_inflight_requests",
		"API (/v1/) requests currently being served.", &m.inflight)
	writeCounter(w, "rfidclean_persist_flushes_total",
		"Durability flushes: WAL append+fsync batches plus deployments snapshots.", &m.persistFlushes)
	writeCounter(w, "rfidclean_persist_compactions_total",
		"WAL compactions into the trajectory snapshot.", &m.persistCompactions)
	writeCounter(w, "rfidclean_persist_errors_total",
		"Persistence operations that failed (logged, not fatal).", &m.persistErrors)
	writeGauge(w, "rfidclean_persist_bytes",
		"Total bytes of the on-disk data files (WAL, snapshots).", &m.persistBytes)
	writeHistogram(w, "rfidclean_persist_flush_duration_seconds",
		"Latency of durability flushes.", m.persistFlushSeconds)
	writeGauge(w, "rfidclean_persist_recovered_deployments",
		"Deployments recovered from the data directory at boot.", &m.recoveredDeployments)
	writeGauge(w, "rfidclean_persist_recovered_trajectories",
		"Trajectory graphs recovered from snapshot+WAL at boot.", &m.recoveredTrajectories)
	writeGauge(w, "rfidclean_persist_recovery_dropped",
		"Recovered records dropped at boot (unknown deployment, undecodable, over budget).", &m.recoveryDropped)
	writeGauge(w, "rfidclean_persist_recovery_truncated",
		"1 when the last boot found a corrupt or truncated log tail.", &m.recoveryTruncated)
	writeRuntimeGauges(w)
}

// writeRuntimeGauges samples the Go runtime at scrape time. The series are
// emitted in sorted name order so scrapes are deterministic and diffable.
func writeRuntimeGauges(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeHeader(w, "go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", "counter")
	fmt.Fprintf(w, "go_gc_pause_seconds_total %s\n", formatFloat(float64(ms.PauseTotalNs)/1e9))
	writeHeader(w, "go_gc_runs_total", "Completed GC cycles.", "counter")
	fmt.Fprintf(w, "go_gc_runs_total %d\n", ms.NumGC)
	writeHeader(w, "go_gomaxprocs", "Value of GOMAXPROCS.", "gauge")
	fmt.Fprintf(w, "go_gomaxprocs %d\n", runtime.GOMAXPROCS(0))
	writeHeader(w, "go_goroutines", "Number of live goroutines.", "gauge")
	fmt.Fprintf(w, "go_goroutines %d\n", runtime.NumGoroutine())
	writeHeader(w, "go_heap_alloc_bytes", "Bytes of allocated heap objects.", "gauge")
	fmt.Fprintf(w, "go_heap_alloc_bytes %d\n", ms.HeapAlloc)
}

func writeHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func writeCounter(w io.Writer, name, help string, c *counter) {
	writeHeader(w, name, help, "counter")
	fmt.Fprintf(w, "%s %d\n", name, c.value())
}

func writeGauge(w io.Writer, name, help string, g *gauge) {
	writeHeader(w, name, help, "gauge")
	fmt.Fprintf(w, "%s %d\n", name, g.value())
}

func writeLabeled(w io.Writer, name, help string, l *labeled) {
	writeHeader(w, name, help, "counter")
	l.mu.Lock()
	keys := make([]string, 0, len(l.vals))
	for k := range l.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts := strings.Split(k, "\x00")
		pairs := make([]string, len(parts))
		for i, v := range parts {
			pairs[i] = fmt.Sprintf("%s=%q", l.labels[i], v)
		}
		fmt.Fprintf(w, "%s{%s} %d\n", name, strings.Join(pairs, ","), l.vals[k].value())
	}
	l.mu.Unlock()
}

func writeHistogram(w io.Writer, name, help string, h *histogram) {
	writeHeader(w, name, help, "histogram")
	writeHistogramSeries(w, name, "", h)
}

// writeHistogramSeries emits one histogram's buckets/sum/count; extraLabel
// ('phase="forward"') is prepended to each bucket's label set when non-empty.
func writeHistogramSeries(w io.Writer, name, extraLabel string, h *histogram) {
	sep := ""
	if extraLabel != "" {
		sep = ","
	}
	h.mu.Lock()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, extraLabel, sep, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, extraLabel, sep, cum)
	if extraLabel != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, extraLabel, formatFloat(h.sum))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, extraLabel, h.count)
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.sum))
		fmt.Fprintf(w, "%s_count %d\n", name, h.count)
	}
	h.mu.Unlock()
}

func writeLabeledHistogram(w io.Writer, name, help string, lh *labeledHistogram) {
	writeHeader(w, name, help, "histogram")
	lh.mu.Lock()
	keys := make([]string, 0, len(lh.vals))
	for k := range lh.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]*histogram, len(keys))
	for i, k := range keys {
		series[i] = lh.vals[k]
	}
	lh.mu.Unlock()
	for i, k := range keys {
		writeHistogramSeries(w, name, fmt.Sprintf("%s=%q", lh.label, k), series[i])
	}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
