package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	rfidclean "repro"
)

// streamHarness boots a server with the given options and registers the test
// deployment, returning the base URL, the server itself (for shutdown and
// reaper checks), the deployment id, and the System for generating readings.
func streamHarness(t *testing.T, opts Options) (base string, srv *Server, depID string, sys *rfidclean.System) {
	t.Helper()
	depJSON, sys := testDeployment(t)
	srv = NewWithOptions(opts)
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/deployments", "application/json", bytes.NewReader(depJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	var created map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	return ts.URL, srv, created["id"], sys
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func openStream(t *testing.T, base, depID string, beam int) string {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/stream", StreamOpenRequest{
		Deployment: depID, MaxSpeed: 2, MinStay: 5, Beam: beam,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open stream status = %d: %s", resp.StatusCode, body)
	}
	var created map[string]string
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	return created["id"]
}

func testReadings(t *testing.T, sys *rfidclean.System, seed uint64, duration int) rfidclean.ReadingSequence {
	t.Helper()
	rng := rfidclean.NewRNG(seed)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(duration), rng)
	if err != nil {
		t.Fatal(err)
	}
	return rfidclean.GenerateReadings(truth, sys.Truth, rng)
}

// offlineFinalDistribution cleans the full sequence offline under LenientEnd
// and returns the last timestamp's marginal keyed by location name — the
// reference answer the streaming filter must converge to.
func offlineFinalDistribution(t *testing.T, sys *rfidclean.System, readings rfidclean.ReadingSequence) map[string]float64 {
	t.Helper()
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	cleaned, err := sys.Clean(readings, ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := cleaned.StayDistribution(len(readings) - 1)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]float64)
	for loc, p := range dist {
		if p > 0 {
			want[sys.Plan.Location(loc).Name] = p
		}
	}
	return want
}

// streamStatus GETs the session, optionally with ?top=k (k <= 0 omits it).
func streamStatus(t *testing.T, base, sid string, top int) StreamStatus {
	t.Helper()
	url := base + "/v1/stream/" + sid
	if top > 0 {
		url += fmt.Sprintf("?top=%d", top)
	}
	var st StreamStatus
	if code := getJSON(t, url, &st); code != http.StatusOK {
		t.Fatalf("stream status = %d", code)
	}
	return st
}

// feedOneByOne posts each reading in its own request — the live-tracking
// access pattern — and returns the final status.
func feedOneByOne(t *testing.T, base, sid string, readings rfidclean.ReadingSequence) StreamStatus {
	t.Helper()
	var st StreamStatus
	for i, r := range readings {
		resp, body := postJSON(t, base+"/v1/stream/"+sid+"/readings", StreamReadingsRequest{
			Readings: []rfidclean.Reading{r},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reading %d status = %d: %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Time != i || st.Readings != i+1 {
			t.Fatalf("after reading %d: status %+v", i, st)
		}
	}
	return st
}

// checkDistribution asserts a streamed Current distribution matches the
// offline reference within floating-point noise.
func checkDistribution(t *testing.T, got []LocationProb, want map[string]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("distribution support: got %v, want %v", got, want)
	}
	for i, lp := range got {
		w, ok := want[lp.Location]
		if !ok {
			t.Fatalf("unexpected location %q in %v", lp.Location, got)
		}
		if math.Abs(lp.P-w) > 1e-9 {
			t.Errorf("P(%s) = %v, offline ct-graph says %v", lp.Location, lp.P, w)
		}
		if i > 0 && lp.P > got[i-1].P {
			t.Errorf("distribution not sorted descending: %v", got)
		}
	}
}

// TestStreamEndToEnd is the tentpole acceptance test: feed a sequence one
// timestamp at a time through the HTTP session API and check the final
// filtered distribution equals the offline ct-graph's last-timestamp marginal
// under LenientEnd. Then smooth, query the stored trajectory, and close.
func TestStreamEndToEnd(t *testing.T) {
	base, _, depID, sys := streamHarness(t, Options{})
	readings := testReadings(t, sys, 77, 60)
	want := offlineFinalDistribution(t, sys, readings)
	sid := openStream(t, base, depID, 0)

	// A fresh session has observed nothing.
	if st := streamStatus(t, base, sid, 0); st.Time != -1 || len(st.Current) != 0 {
		t.Fatalf("fresh session status = %+v", st)
	}

	st := feedOneByOne(t, base, sid, readings)
	if st.Readings != len(readings) || st.Frontier <= 0 || st.Dead {
		t.Fatalf("final status = %+v", st)
	}

	// The filtered distribution at the last timestamp IS the smoothed one:
	// there is no future left to condition on.
	st = streamStatus(t, base, sid, 0)
	checkDistribution(t, st.Current, want)

	// ?top=1 returns the head of the same ranking.
	top := streamStatus(t, base, sid, 1)
	if len(top.Current) != 1 || top.Current[0] != st.Current[0] {
		t.Fatalf("top=1 gave %v, want head of %v", top.Current, st.Current)
	}

	// Mid-session smoothing stores a queryable ct-graph and keeps the
	// session open.
	resp, body := postJSON(t, base+"/v1/stream/"+sid+"/smooth", nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("smooth status = %d: %s", resp.StatusCode, body)
	}
	var smoothed CleanResponse
	if err := json.Unmarshal(body, &smoothed); err != nil {
		t.Fatal(err)
	}
	if smoothed.ID == "" || smoothed.Nodes == 0 {
		t.Fatalf("smooth response = %+v", smoothed)
	}
	var stay []LocationProb
	url := fmt.Sprintf("%s/v1/trajectories/%s/stay?t=%d", base, smoothed.ID, len(readings)-1)
	if code := getJSON(t, url, &stay); code != http.StatusOK {
		t.Fatalf("stay on smoothed trajectory = %d", code)
	}
	checkDistribution(t, stay, want)

	// Closing smooths once more by default and then the session is gone.
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/stream/"+sid, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var closed StreamCloseResponse
	if err := json.NewDecoder(dresp.Body).Decode(&closed); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || closed.Trajectory == nil || closed.Trajectory.ID == "" {
		t.Fatalf("close status = %d, body %+v", dresp.StatusCode, closed)
	}
	if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s", base, closed.Trajectory.ID), nil); code != http.StatusOK {
		t.Fatalf("close-time trajectory not queryable (%d)", code)
	}
	if code := getJSON(t, base+"/v1/stream/"+sid, nil); code != http.StatusGone {
		t.Fatalf("closed session answered %d, want 410 Gone", code)
	}

	// The stream metrics series are all exposed.
	m := scrape(t, base)
	for _, series := range []string{
		"rfidclean_stream_sessions",
		`rfidclean_stream_readings_total{outcome="ok"}`,
		"rfidclean_stream_observe_duration_seconds_count",
		"rfidclean_stream_reaped_total",
		"rfidclean_stream_evicted_total",
		`rfidclean_clean_requests_total{mode="stream",outcome="ok"} 2`,
	} {
		if !strings.Contains(m, series) {
			t.Errorf("metrics missing %s", series)
		}
	}
}

// TestStreamBatchMatchesOneByOne: posting readings in chunks lands on the
// same filtered distribution as posting them one at a time.
func TestStreamBatchMatchesOneByOne(t *testing.T) {
	base, _, depID, sys := streamHarness(t, Options{})
	readings := testReadings(t, sys, 21, 40)

	one := openStream(t, base, depID, 0)
	feedOneByOne(t, base, one, readings)

	chunked := openStream(t, base, depID, 0)
	for i := 0; i < len(readings); i += 7 {
		end := i + 7
		if end > len(readings) {
			end = len(readings)
		}
		resp, body := postJSON(t, base+"/v1/stream/"+chunked+"/readings", StreamReadingsRequest{
			Readings: readings[i:end],
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk at %d status = %d: %s", i, resp.StatusCode, body)
		}
	}

	a := streamStatus(t, base, one, 0)
	b := streamStatus(t, base, chunked, 0)
	if len(a.Current) != len(b.Current) {
		t.Fatalf("support differs: %v vs %v", a.Current, b.Current)
	}
	for i := range a.Current {
		if a.Current[i].Location != b.Current[i].Location || math.Abs(a.Current[i].P-b.Current[i].P) > 1e-12 {
			t.Fatalf("distributions differ at %d: %v vs %v", i, a.Current, b.Current)
		}
	}
}

// TestStreamValidation covers the typed rejections: bad opens, duplicate and
// out-of-order timestamps (409), gaps (422), and routing errors.
func TestStreamValidation(t *testing.T) {
	base, _, depID, sys := streamHarness(t, Options{})
	readings := testReadings(t, sys, 5, 20)

	// Open-time validation.
	for name, tc := range map[string]struct {
		req  StreamOpenRequest
		want int
	}{
		"unknown deployment": {StreamOpenRequest{Deployment: "d999", MaxSpeed: 2}, http.StatusNotFound},
		"zero speed":         {StreamOpenRequest{Deployment: depID}, http.StatusBadRequest},
		"negative beam":      {StreamOpenRequest{Deployment: depID, MaxSpeed: 2, Beam: -1}, http.StatusBadRequest},
	} {
		if resp, _ := postJSON(t, base+"/v1/stream", tc.req); resp.StatusCode != tc.want {
			t.Errorf("%s: open status = %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
	if resp, err := http.Get(base + "/v1/stream"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/stream = %d, want 405", resp.StatusCode)
		}
	}

	sid := openStream(t, base, depID, 0)
	feedOneByOne(t, base, sid, readings[:3])

	post := func(rs ...rfidclean.Reading) int {
		resp, _ := postJSON(t, base+"/v1/stream/"+sid+"/readings", StreamReadingsRequest{Readings: rs})
		return resp.StatusCode
	}
	// Duplicate, out-of-order, gap, empty.
	if code := post(readings[2]); code != http.StatusConflict {
		t.Errorf("duplicate timestamp status = %d, want 409", code)
	}
	if code := post(rfidclean.Reading{Time: 0, Readers: readings[0].Readers}); code != http.StatusConflict {
		t.Errorf("out-of-order timestamp status = %d, want 409", code)
	}
	if code := post(rfidclean.Reading{Time: 7, Readers: readings[7].Readers}); code != http.StatusUnprocessableEntity {
		t.Errorf("timestamp gap status = %d, want 422", code)
	}
	if code := post(); code != http.StatusBadRequest {
		t.Errorf("empty readings status = %d, want 400", code)
	}
	// A mid-batch rejection keeps the already-observed prefix.
	if code := post(readings[3], readings[3]); code != http.StatusConflict {
		t.Errorf("mid-batch duplicate status = %d, want 409", code)
	}
	if st := streamStatus(t, base, sid, 0); st.Readings != 4 || st.Time != 3 {
		t.Errorf("prefix after mid-batch rejection: %+v", st)
	}

	// Routing.
	if code := getJSON(t, base+"/v1/stream/s999", nil); code != http.StatusNotFound {
		t.Errorf("unknown session status = %d", code)
	}
	if code := getJSON(t, base+"/v1/stream/"+sid+"/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown op status = %d", code)
	}
	if code := getJSON(t, base+"/v1/stream/"+sid+"?top=0", nil); code != http.StatusBadRequest {
		t.Errorf("bad top status = %d", code)
	}
	if resp, _ := postJSON(t, base+"/v1/stream/"+sid, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST to session root = %d, want 405", resp.StatusCode)
	}

	// Smoothing an empty session is a 422.
	empty := openStream(t, base, depID, 0)
	if resp, _ := postJSON(t, base+"/v1/stream/"+empty+"/smooth", nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("smooth empty session = %d, want 422", resp.StatusCode)
	}
}

// TestStreamDeadEnd forces a constraint dead end over HTTP. The deployment
// is three rooms in a row (A-B-C, doors only A-B and B-C) with readers only
// in A and C, and the rooms are wide enough that neither reader's range
// (MinorRadius = 4m) reaches a neighboring room — so an A-only reading pins
// the object to A and a C-only reading to C. Jumping A to C in one timestep
// has no door path, the session dies with 422, the buffered prefix stays
// smoothable, and further readings get 410.
func TestStreamDeadEnd(t *testing.T) {
	b := rfidclean.NewMapBuilder()
	ra := b.AddLocation("a", rfidclean.Room, 0, rfidclean.RectWH(0, 0, 10, 6))
	rb := b.AddLocation("b", rfidclean.Room, 0, rfidclean.RectWH(10, 0, 10, 6))
	rc := b.AddLocation("c", rfidclean.Room, 0, rfidclean.RectWH(20, 0, 10, 6))
	b.AddDoor(ra, rb, rfidclean.Pt(10, 3), 1)
	b.AddDoor(rb, rc, rfidclean.Pt(20, 3), 1)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dep := &rfidclean.Deployment{
		Name: "row",
		Plan: plan,
		Readers: []rfidclean.Reader{
			{ID: 0, Name: "r-a", Floor: 0, Pos: rfidclean.Pt(5, 3)},
			{ID: 1, Name: "r-c", Floor: 0, Pos: rfidclean.Pt(25, 3)},
		},
		Detection:          rfidclean.DefaultThreeState(),
		CellSize:           0.5,
		CalibrationSamples: 30,
		Seed:               3,
	}
	var buf bytes.Buffer
	if err := dep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(Options{})
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	base := ts.URL
	resp0, err := http.Post(base+"/v1/deployments", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var created map[string]string
	if err := json.NewDecoder(resp0.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	sid := openStream(t, base, created["id"], 0)

	inA := rfidclean.NewReaderSet(0)
	inC := rfidclean.NewReaderSet(1)
	post := func(tm int, rs rfidclean.ReaderSet) (int, []byte) {
		resp, body := postJSON(t, base+"/v1/stream/"+sid+"/readings", StreamReadingsRequest{
			Readings: []rfidclean.Reading{{Time: tm, Readers: rs}},
		})
		return resp.StatusCode, body
	}
	const prefix = 6
	for i := 0; i < prefix; i++ {
		if code, body := post(i, inA); code != http.StatusOK {
			t.Fatalf("room-A reading %d status = %d: %s", i, code, body)
		}
	}
	code, body := post(prefix, inC)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("teleport reading status = %d (%s), want 422", code, body)
	}
	// The session is dead: further readings are refused ...
	if code, _ := post(prefix, inA); code != http.StatusGone {
		t.Errorf("reading after dead end status = %d, want 410", code)
	}
	if st := streamStatus(t, base, sid, 0); !st.Dead || st.Readings != prefix {
		t.Errorf("dead session status = %+v", st)
	}
	// ... but the prefix still smooths.
	resp, body := postJSON(t, base+"/v1/stream/"+sid+"/smooth", nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("smoothing dead session prefix = %d: %s", resp.StatusCode, body)
	}
}

// TestStreamReadingBudget: the per-session buffer cap answers 429 and the
// buffered prefix still smooths.
func TestStreamReadingBudget(t *testing.T) {
	base, _, depID, sys := streamHarness(t, Options{MaxSessionReadings: 3})
	readings := testReadings(t, sys, 9, 10)
	sid := openStream(t, base, depID, 0)
	feedOneByOne(t, base, sid, readings[:3])

	resp, _ := postJSON(t, base+"/v1/stream/"+sid+"/readings", StreamReadingsRequest{
		Readings: readings[3:4],
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget reading status = %d, want 429", resp.StatusCode)
	}
	if resp, _ := postJSON(t, base+"/v1/stream/"+sid+"/smooth", nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("smoothing at budget = %d", resp.StatusCode)
	}
}

// TestStreamEviction: at the session cap the least-recently-active session
// is evicted to admit a new one.
func TestStreamEviction(t *testing.T) {
	base, srv, depID, _ := streamHarness(t, Options{MaxSessions: 2})
	first := openStream(t, base, depID, 0)
	time.Sleep(2 * time.Millisecond) // order the activity stamps
	second := openStream(t, base, depID, 0)
	time.Sleep(2 * time.Millisecond)
	// Touch the first so the second is now the stalest.
	streamStatus(t, base, first, 0)
	time.Sleep(2 * time.Millisecond)
	third := openStream(t, base, depID, 0)

	if srv.sessions.count() != 2 {
		t.Fatalf("open sessions = %d, want 2", srv.sessions.count())
	}
	if code := getJSON(t, base+"/v1/stream/"+second, nil); code != http.StatusGone {
		t.Errorf("evicted session answered %d, want 410 Gone", code)
	}
	for _, id := range []string{first, third} {
		if code := getJSON(t, base+"/v1/stream/"+id, nil); code != http.StatusOK {
			t.Errorf("session %s evicted, want kept (%d)", id, code)
		}
	}
	if !strings.Contains(scrape(t, base), "rfidclean_stream_evicted_total 1") {
		t.Error("metrics missing the eviction")
	}
}

// TestStreamReaperAndClose proves the idle reaper fires and that Server.Close
// drains it deterministically and refuses new sessions.
func TestStreamReaperAndClose(t *testing.T) {
	base, srv, depID, _ := streamHarness(t, Options{SessionTTL: 30 * time.Millisecond})
	openStream(t, base, depID, 0)
	openStream(t, base, depID, 0)

	deadline := time.Now().Add(5 * time.Second)
	for srv.sessions.count() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reaper never fired; %d sessions still open", srv.sessions.count())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(scrape(t, base), "rfidclean_stream_reaped_total 2") {
		t.Error("metrics missing the reaps")
	}

	// Close is idempotent, waits for the reaper goroutine, and flips opens
	// to 503.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.sessions.(*sessionStore).done:
	default:
		t.Fatal("reaper goroutine still running after Close")
	}
	resp, _ := postJSON(t, base+"/v1/stream", StreamOpenRequest{Deployment: depID, MaxSpeed: 2})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open after Close = %d, want 503", resp.StatusCode)
	}
}

// TestStreamConcurrentSessions runs independent sessions in parallel — under
// -race this is the locking-discipline check for the session store and the
// per-session mutexes — and checks each one still lands exactly on its own
// offline reference distribution.
func TestStreamConcurrentSessions(t *testing.T) {
	base, _, depID, sys := streamHarness(t, Options{})

	const n = 6
	type tc struct {
		readings rfidclean.ReadingSequence
		want     map[string]float64
	}
	cases := make([]tc, n)
	for i := range cases {
		r := testReadings(t, sys, uint64(100+i), 40)
		cases[i] = tc{readings: r, want: offlineFinalDistribution(t, sys, r)}
	}

	var wg sync.WaitGroup
	for i := range cases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sid := openStream(t, base, depID, 0)
			for j, r := range cases[i].readings {
				resp, body := postJSON(t, base+"/v1/stream/"+sid+"/readings", StreamReadingsRequest{
					Readings: []rfidclean.Reading{r},
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("session %d reading %d status = %d: %s", i, j, resp.StatusCode, body)
					return
				}
			}
			st := streamStatus(t, base, sid, 0)
			checkDistribution(t, st.Current, cases[i].want)
			resp, _ := postJSON(t, base+"/v1/stream/"+sid+"/smooth", nil)
			if resp.StatusCode != http.StatusCreated {
				t.Errorf("session %d smooth status = %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	// All sessions filtered under one deployment and one parameter set:
	// constraint inference ran exactly once.
	if !strings.Contains(scrape(t, base), "rfidclean_constraint_cache_misses_total 1") {
		t.Error("constraint inference ran more than once across concurrent sessions")
	}
}

// TestStreamBeamSession: a beam-limited session bounds its frontier and
// still produces a normalized, sorted distribution.
func TestStreamBeamSession(t *testing.T) {
	base, _, depID, sys := streamHarness(t, Options{})
	readings := testReadings(t, sys, 55, 50)
	sid := openStream(t, base, depID, 2)

	st := feedOneByOne(t, base, sid, readings)
	if st.Beam != 2 {
		t.Fatalf("status beam = %d, want 2", st.Beam)
	}
	if st.Frontier > 2 {
		t.Fatalf("frontier %d exceeds beam 2", st.Frontier)
	}
	st = streamStatus(t, base, sid, 0)
	total := 0.0
	for _, lp := range st.Current {
		total += lp.P
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("beamed distribution sums to %v", total)
	}
}

// TestStreamHealthz: open sessions are visible in the health payload.
func TestStreamHealthz(t *testing.T) {
	base, _, depID, _ := streamHarness(t, Options{})
	openStream(t, base, depID, 0)
	openStream(t, base, depID, 0)
	var health map[string]any
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if health["sessions"].(float64) != 2 {
		t.Fatalf("healthz sessions = %v, want 2", health["sessions"])
	}
}

// TestStreamIncrementalSmoothMatchesBatchClean is the server-level half of
// the bit-identity property: smoothing a live session (which reuses the
// incremental build state) must store a trajectory whose marginals equal the
// batch /v1/clean answer over the same readings, and the smooth must be
// counted under the incremental mode.
func TestStreamIncrementalSmoothMatchesBatchClean(t *testing.T) {
	base, _, depID, sys := streamHarness(t, Options{})
	readings := testReadings(t, sys, 131, 45)

	sid := openStream(t, base, depID, 0)
	feedOneByOne(t, base, sid, readings)
	resp, body := postJSON(t, base+"/v1/stream/"+sid+"/smooth", nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("smooth status = %d: %s", resp.StatusCode, body)
	}
	var smoothed CleanResponse
	if err := json.Unmarshal(body, &smoothed); err != nil {
		t.Fatal(err)
	}

	// Batch clean under the same constraints and LenientEnd (the stream
	// smoothing semantics).
	resp, body = postJSON(t, base+"/v1/clean", CleanRequest{
		Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 5,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("batch clean status = %d: %s", resp.StatusCode, body)
	}
	var batch CleanResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if smoothed.Nodes != batch.Nodes || smoothed.Edges != batch.Edges {
		t.Fatalf("graph shape differs: stream %+v vs batch %+v", smoothed, batch)
	}
	for _, tau := range []int{0, 1, len(readings) / 2, len(readings) - 1} {
		var a, b []LocationProb
		if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s/stay?t=%d", base, smoothed.ID, tau), &a); code != http.StatusOK {
			t.Fatalf("stream stay t=%d status = %d", tau, code)
		}
		if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s/stay?t=%d", base, batch.ID, tau), &b); code != http.StatusOK {
			t.Fatalf("batch stay t=%d status = %d", tau, code)
		}
		if len(a) != len(b) {
			t.Fatalf("t=%d support differs: %v vs %v", tau, a, b)
		}
		for i := range a {
			// JSON float round-trips are exact, so equality here is bit
			// equality of the underlying marginals.
			if a[i] != b[i] {
				t.Errorf("t=%d entry %d: stream %+v vs batch %+v", tau, i, a[i], b[i])
			}
		}
	}

	if m := scrape(t, base); !strings.Contains(m, `rfidclean_stream_smooths_total{mode="incremental"} 1`) {
		t.Errorf("metrics missing the incremental smooth count")
	}
}

// TestStreamBinaryCodec drives the readings POST and status GET through the
// binary codec and checks the answers agree bit-for-bit with a JSON twin
// session fed the same readings.
func TestStreamBinaryCodec(t *testing.T) {
	base, _, depID, sys := streamHarness(t, Options{})
	readings := testReadings(t, sys, 909, 30)

	jsonSid := openStream(t, base, depID, 0)
	feedOneByOne(t, base, jsonSid, readings)
	want := streamStatus(t, base, jsonSid, 0)

	binSid := openStream(t, base, depID, 0)
	for i := 0; i < len(readings); i += 5 {
		end := i + 5
		if end > len(readings) {
			end = len(readings)
		}
		req, err := http.NewRequest(http.MethodPost, base+"/v1/stream/"+binSid+"/readings",
			bytes.NewReader(EncodeStreamReadings(readings[i:end])))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ContentTypeBinary)
		req.Header.Set("Accept", ContentTypeBinary)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("binary chunk at %d status = %d", i, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != ContentTypeBinary {
			t.Fatalf("response Content-Type = %q", ct)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		st, err := DecodeStreamStatus(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if st.Time != end-1 || st.Readings != end {
			t.Fatalf("binary status after chunk at %d = %+v", i, st)
		}
	}

	// GET with Accept negotiation.
	req, err := http.NewRequest(http.MethodGet, base+"/v1/stream/"+binSid, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", ContentTypeBinary)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary GET status = %d", resp.StatusCode)
	}
	got, err := DecodeStreamStatus(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != want.Time || got.Readings != want.Readings || got.Frontier != want.Frontier ||
		len(got.Current) != len(want.Current) {
		t.Fatalf("binary status %+v, JSON twin %+v", got, want)
	}
	for i := range want.Current {
		if got.Current[i].Location != want.Current[i].Location ||
			math.Float64bits(got.Current[i].P) != math.Float64bits(want.Current[i].P) {
			t.Errorf("entry %d: binary %+v vs JSON %+v", i, got.Current[i], want.Current[i])
		}
	}

	// A malformed binary body is a plain 400, not a hang or a 500.
	req, err = http.NewRequest(http.MethodPost, base+"/v1/stream/"+binSid+"/readings",
		bytes.NewReader([]byte{0x01, 0x02, 0x03}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentTypeBinary)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage binary body status = %d, want 400", resp.StatusCode)
	}
}

// TestStreamCloseSmoothParam: the ?smooth= flag accepts only yes/no spellings;
// junk is 400 and leaves the session open (a typo like ?smooth=nope used to
// silently smooth — the opposite of what was asked).
func TestStreamCloseSmoothParam(t *testing.T) {
	base, _, depID, sys := streamHarness(t, Options{})
	readings := testReadings(t, sys, 14, 10)

	del := func(sid, query string) (int, StreamCloseResponse) {
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/stream/"+sid+query, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out StreamCloseResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, out
	}

	sid := openStream(t, base, depID, 0)
	feedOneByOne(t, base, sid, readings)
	for _, junk := range []string{"?smooth=nope", "?smooth=yess", "?smooth=2"} {
		if code, _ := del(sid, junk); code != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", junk, code)
		}
	}
	// The rejected closes must not have closed the session.
	if st := streamStatus(t, base, sid, 0); st.Readings != len(readings) {
		t.Fatalf("session state after rejected closes: %+v", st)
	}
	if code, out := del(sid, "?smooth=no"); code != http.StatusOK || out.Trajectory != nil {
		t.Fatalf("smooth=no close: status %d, %+v", code, out)
	}

	sid = openStream(t, base, depID, 0)
	feedOneByOne(t, base, sid, readings)
	if code, out := del(sid, "?smooth=TRUE"); code != http.StatusOK || out.Trajectory == nil {
		t.Fatalf("smooth=TRUE close: status %d, %+v", code, out)
	}
}

// TestStreamStatusTopParam: unparseable and non-positive ?top= values are
// typed 400s, not silently treated as "no cap".
func TestStreamStatusTopParam(t *testing.T) {
	base, _, depID, sys := streamHarness(t, Options{})
	sid := openStream(t, base, depID, 0)
	feedOneByOne(t, base, sid, testReadings(t, sys, 3, 5))
	for _, junk := range []string{"abc", "1.5", "0", "-3", "%20"} {
		resp, err := http.Get(base + "/v1/stream/" + sid + "?top=" + junk)
		if err != nil {
			t.Fatal(err)
		}
		var e apiError
		decErr := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?top=%s status = %d, want 400", junk, resp.StatusCode)
		} else if decErr != nil || e.Error == "" {
			t.Errorf("?top=%s: missing apiError body (%v)", junk, decErr)
		}
	}
	if st := streamStatus(t, base, sid, 2); len(st.Current) > 2 {
		t.Errorf("?top=2 returned %d entries", len(st.Current))
	}
}

// TestEvictOldestDeterministic pins the cap-eviction tie-break: when every
// session has the same activity stamp (a burst of opens within the clock's
// resolution), the victim is the numerically lowest session id — not
// whatever the map iterator happens to visit first — and its subscribers get
// a terminal "evicted" close event.
func TestEvictOldestDeterministic(t *testing.T) {
	base, srv, depID, _ := streamHarness(t, Options{MaxSessions: 3, SessionTTL: -1})
	st := srv.sessions.(*sessionStore)
	for round := 0; round < 8; round++ {
		for st.count() < 3 {
			openStream(t, base, depID, 0)
		}
		// Flatten every stamp so only the tie-break decides.
		st.mu.Lock()
		lowest, lowestID := int(^uint(0)>>1), ""
		for id, s := range st.sessions {
			s.lastActive.Store(42)
			if n, ok := idNum("s", id); ok && n < lowest {
				lowest, lowestID = n, id
			}
		}
		victim := st.sessions[lowestID]
		st.mu.Unlock()
		sub, _, _ := victim.hub.subscribe(0, false)

		openStream(t, base, depID, 0) // at the cap: must displace the victim
		if st.get(lowestID) != nil {
			t.Fatalf("round %d: session %s survived eviction", round, lowestID)
		}
		if !st.isGone(lowestID) {
			t.Fatalf("round %d: evicted session %s was not tombstoned", round, lowestID)
		}
		if got := srv.metrics.streamSessions.value(); got != 3 {
			t.Fatalf("round %d: session gauge = %d, want 3", round, got)
		}
		ev, ok := <-sub.ch
		if !ok || ev.kind != eventKindClose || !strings.Contains(string(ev.data), closeReasonEvicted) {
			t.Fatalf("round %d: victim subscriber got %+v ok=%v, want evicted close", round, ev, ok)
		}
	}
}

// TestTombstoneRingWraparound closes far more sessions than the tombstone
// ring holds: recent closures still answer 410 Gone, while ids older than
// the ring honestly degrade to 404.
func TestTombstoneRingWraparound(t *testing.T) {
	base, srv, _, _ := streamHarness(t, Options{})
	st := srv.sessions.(*sessionStore)
	const closed = sessionTombstones + 904
	st.mu.Lock()
	for i := 1; i <= closed; i++ {
		st.markGoneLocked(fmt.Sprintf("s%d", i))
	}
	ringLen, goneLen := len(st.goneRing), len(st.gone)
	st.mu.Unlock()
	if ringLen != sessionTombstones || goneLen != sessionTombstones {
		t.Fatalf("ring %d / set %d entries, want %d each", ringLen, goneLen, sessionTombstones)
	}
	// The oldest 904 fell off; everything newer is still remembered.
	if st.isGone("s1") || st.isGone(fmt.Sprintf("s%d", closed-sessionTombstones)) {
		t.Error("pre-wraparound tombstones still present")
	}
	if !st.isGone(fmt.Sprintf("s%d", closed-sessionTombstones+1)) || !st.isGone(fmt.Sprintf("s%d", closed)) {
		t.Error("post-wraparound tombstones missing")
	}
	// And the HTTP mapping: remembered id → 410, forgotten id → 404.
	for _, tc := range []struct {
		id   string
		want int
	}{
		{fmt.Sprintf("s%d", closed), http.StatusGone},
		{"s1", http.StatusNotFound},
	} {
		resp, err := http.Get(base + "/v1/stream/" + tc.id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET closed session %s = %d, want %d", tc.id, resp.StatusCode, tc.want)
		}
	}
}

// TestReapVsInflightReadings races the idle reaper against in-flight
// readings POSTs and live SSE subscribers on several sessions at once (run
// under -race in CI). Every feeder must eventually lose its session to the
// reaper and see 410, never a hang, panic, or torn state.
func TestReapVsInflightReadings(t *testing.T) {
	base, _, depID, sys := streamHarness(t, Options{SessionTTL: 20 * time.Millisecond, SSEHeartbeat: -1})
	readings := testReadings(t, sys, 33, 120)
	errc := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSONQuiet(base+"/v1/stream", StreamOpenRequest{Deployment: depID, MaxSpeed: 2, MinStay: 5})
			if resp == nil || resp.StatusCode != http.StatusCreated {
				errc <- fmt.Errorf("open failed: %s", body)
				return
			}
			var created map[string]string
			if err := json.Unmarshal(body, &created); err != nil {
				errc <- err
				return
			}
			sid := created["id"]
			// A subscriber whose stream the reaper will sever mid-watch.
			drained := make(chan struct{})
			go func() {
				defer close(drained)
				resp, err := http.Get(base + "/v1/stream/" + sid + "/events")
				if err != nil {
					return
				}
				defer resp.Body.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := resp.Body.Read(buf); err != nil {
						return
					}
				}
			}()
			deadline := time.Now().Add(20 * time.Second)
			for i := 0; ; i++ {
				if time.Now().After(deadline) {
					errc <- fmt.Errorf("session %s: reaper never fired", sid)
					return
				}
				resp, body := postJSONQuiet(base+"/v1/stream/"+sid+"/readings",
					StreamReadingsRequest{Readings: readings[i%len(readings) : i%len(readings)+1]})
				switch {
				case resp == nil:
					errc <- fmt.Errorf("session %s: %s", sid, body)
					return
				case resp.StatusCode == http.StatusGone:
					<-drained // the reaper also ended the event stream
					return
				case resp.StatusCode == http.StatusOK, resp.StatusCode == http.StatusConflict:
					// Conflict: the wrapped reading index lapped the session.
				default:
					errc <- fmt.Errorf("session %s: POST %d = %d: %s", sid, i, resp.StatusCode, body)
					return
				}
				if i%10 == 9 {
					time.Sleep(25 * time.Millisecond) // idle past the TTL
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// postJSONQuiet is postJSON without t.Fatal, safe for use off the test
// goroutine; a nil response carries the error text in body.
func postJSONQuiet(url string, body any) (*http.Response, []byte) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return nil, []byte(err.Error())
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		return nil, []byte(err.Error())
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return nil, []byte(err.Error())
	}
	return resp, out.Bytes()
}
