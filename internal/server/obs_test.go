package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"log/slog"

	rfidclean "repro"
	"repro/internal/obs"
)

func isHex16(s string) bool {
	if len(s) != 16 {
		return false
	}
	for _, c := range s {
		if !strings.ContainsRune("0123456789abcdef", c) {
			return false
		}
	}
	return true
}

// TestRequestIDGeneratedAndEchoed checks every response carries X-Request-ID:
// generated when the client sends none, echoed verbatim when it does, and
// present in error bodies too.
func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	base, _, _, _ := harness(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); !isHex16(id) {
		t.Fatalf("generated request ID %q is not 16 hex chars", id)
	}

	req, _ := http.NewRequest(http.MethodGet, base+"/v1/trajectories/nope", nil)
	req.Header.Set("X-Request-ID", "client-chosen-id")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-chosen-id" {
		t.Fatalf("echoed request ID = %q, want client-chosen-id", got)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	var body apiError
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID != "client-chosen-id" {
		t.Fatalf("error body requestId = %q, want client-chosen-id", body.RequestID)
	}
}

// TestRequestIDOn413 pins the request ID onto the body-too-large error path,
// which short-circuits before any handler logic runs.
func TestRequestIDOn413(t *testing.T) {
	ts := httptest.NewServer(NewWithOptions(Options{MaxBodyBytes: 64}))
	defer ts.Close()
	// Valid JSON, so the size cap (not a syntax error) is what trips.
	big := []byte(`{"deployment":"` + strings.Repeat("x", 4096) + `"}`)
	resp, err := http.Post(ts.URL+"/v1/clean", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	hdr := resp.Header.Get("X-Request-ID")
	if !isHex16(hdr) {
		t.Fatalf("413 response request ID %q is not 16 hex chars", hdr)
	}
	var body apiError
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID != hdr {
		t.Fatalf("413 body requestId %q != header %q", body.RequestID, hdr)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAccessLog checks the slog access line carries the request ID, method,
// path and status, and that probe endpoints log at debug only.
func TestAccessLog(t *testing.T) {
	var logs syncBuffer
	srv := NewWithOptions(Options{
		Logger: slog.New(slog.NewTextHandler(&logs, &slog.HandlerOptions{Level: slog.LevelInfo})),
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/deployments", nil)
	req.Header.Set("X-Request-ID", "log-probe")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp, err = http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	got := logs.String()
	for _, want := range []string{"requestId=log-probe", "method=GET", "path=/v1/deployments", "status=200"} {
		if !strings.Contains(got, want) {
			t.Fatalf("access log missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "/healthz") {
		t.Fatalf("healthz should only be logged at debug level:\n%s", got)
	}
}

// cleanWithID posts a clean request stamped with a chosen request ID.
func cleanWithID(t *testing.T, base, reqID string, cr CleanRequest) CleanResponse {
	t.Helper()
	body, err := json.Marshal(cr)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/clean", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("clean status = %d: %s", resp.StatusCode, b)
	}
	var out CleanResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDebugTraces drives a clean with a known request ID and reads its span
// tree back from /debug/traces, checking the cleaning phases appear.
func TestDebugTraces(t *testing.T) {
	base, depID, _, readings := harness(t)
	cleanWithID(t, base, "deadbeefdeadbeef", CleanRequest{
		Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 3,
	})

	var tr obs.TraceExport
	if status := getJSON(t, base+"/debug/traces?id=deadbeefdeadbeef", &tr); status != http.StatusOK {
		t.Fatalf("trace fetch status = %d", status)
	}
	if tr.ID != "deadbeefdeadbeef" {
		t.Fatalf("trace id = %q", tr.ID)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "http.request" {
		t.Fatalf("want one http.request root span, got %+v", tr.Spans)
	}
	names := map[string]bool{}
	var walk func(sp *obs.SpanExport)
	walk = func(sp *obs.SpanExport) {
		names[sp.Name] = true
		for _, c := range sp.Spans {
			walk(c)
		}
	}
	walk(tr.Spans[0])
	for _, want := range []string{
		"constraints.lookup", "prior.lsequence",
		"core.build", "core.compile", "core.forward", "core.backward", "core.revise",
		"store.add",
	} {
		if !names[want] {
			t.Fatalf("trace missing span %q; have %v", want, names)
		}
	}
	if tr.Spans[0].Attrs["status"] != float64(http.StatusCreated) {
		t.Fatalf("http.request status attr = %v", tr.Spans[0].Attrs["status"])
	}

	// The listing endpoint serves the same trace newest-first.
	var listing debugTracesResponse
	if status := getJSON(t, base+"/debug/traces?limit=5", &listing); status != http.StatusOK {
		t.Fatalf("trace list status = %d", status)
	}
	if listing.Capacity != obs.DefaultRecorderCapacity || listing.Recorded == 0 || len(listing.Traces) == 0 {
		t.Fatalf("listing = capacity %d, recorded %d, %d traces", listing.Capacity, listing.Recorded, len(listing.Traces))
	}

	if status := getJSON(t, base+"/debug/traces?id=unknown-id", nil); status != http.StatusNotFound {
		t.Fatalf("unknown trace id status = %d, want 404", status)
	}
}

// TestTracingDisabled checks a negative TraceBuffer turns /debug/traces off
// without breaking request serving.
func TestTracingDisabled(t *testing.T) {
	ts := httptest.NewServer(NewWithOptions(Options{TraceBuffer: -1}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Request-ID"); !isHex16(id) {
		t.Fatalf("request ID still expected with tracing off, got %q", id)
	}
}

// TestExplainEndpoint is the acceptance E2E: the explain report's
// per-constraint prune counts must sum consistently with the ct-graph's
// candidate counts, and its node tallies must match the stored graph.
func TestExplainEndpoint(t *testing.T) {
	base, depID, _, readings := harness(t)
	created := cleanWithID(t, base, "explain-e2e", CleanRequest{
		Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 3,
	})

	var er ExplainResponse
	if status := getJSON(t, base+"/v1/trajectories/"+created.ID+"/explain", &er); status != http.StatusOK {
		t.Fatalf("explain status = %d", status)
	}
	if er.ID != created.ID || er.Deployment != depID || er.Explain == nil {
		t.Fatalf("explain envelope = %+v", er)
	}
	b := er.Explain.Build
	if len(b.Steps) != len(readings) {
		t.Fatalf("explain has %d steps, window has %d timestamps", len(b.Steps), len(readings))
	}
	var gap, nodes int64
	for i, st := range b.Steps {
		if st.Considered < st.Accepted || st.NodesFinal > st.NodesBuilt {
			t.Fatalf("step %d inconsistent: %+v", i, st)
		}
		gap += int64(st.Considered - st.Accepted)
		nodes += int64(st.NodesFinal)
	}
	if pruned := b.PrunedDU + b.PrunedLT + b.PrunedTT; pruned != gap {
		t.Fatalf("prune counters sum to %d, considered-accepted gap is %d", pruned, gap)
	}
	if nodes != int64(er.Nodes) || er.Nodes != created.Nodes {
		t.Fatalf("Σ NodesFinal = %d, graph nodes = %d (created %d)", nodes, er.Nodes, created.Nodes)
	}
	if b.ForwardNanos <= 0 || b.BackwardNanos <= 0 {
		t.Fatalf("per-phase timings missing: %+v", b)
	}
	if b.Normalizer <= 0 {
		t.Fatalf("normalizer = %v", b.Normalizer)
	}
	if er.Explain.DeriveNanos <= 0 {
		t.Fatalf("derive timing missing: %d", er.Explain.DeriveNanos)
	}
}

// TestExplainStabilityOverHTTP cleans the same readings twice and requires
// identical counters (wall times excluded) — the report must be a function
// of the input.
func TestExplainStabilityOverHTTP(t *testing.T) {
	base, depID, _, readings := harness(t)
	req := CleanRequest{Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 3}

	fetch := func(label string) rfidclean.BuildExplain {
		created := cleanWithID(t, base, label, req)
		var er ExplainResponse
		if status := getJSON(t, base+"/v1/trajectories/"+created.ID+"/explain", &er); status != http.StatusOK {
			t.Fatalf("explain status = %d", status)
		}
		b := er.Explain.Build
		b.CompileNanos, b.ForwardNanos, b.BackwardNanos, b.ReviseNanos = 0, 0, 0, 0
		return b
	}
	a, b := fetch("stability-1"), fetch("stability-2")
	if a.PrunedDU != b.PrunedDU || a.PrunedLT != b.PrunedLT || a.PrunedTT != b.PrunedTT ||
		a.TargetsCondemned != b.TargetsCondemned || a.BackwardRemoved != b.BackwardRemoved ||
		a.GhostsRemoved != b.GhostsRemoved || a.Normalizer != b.Normalizer {
		t.Fatalf("explain counters differ across identical cleans:\n%+v\n%+v", a, b)
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, a.Steps[i], b.Steps[i])
		}
	}
}

// TestMetricsObservability checks the new /metrics series: runtime gauges in
// sorted order, per-phase histograms and per-constraint prune counters after
// a clean.
func TestMetricsObservability(t *testing.T) {
	base, depID, _, readings := harness(t)
	cleanWithID(t, base, "metrics-probe", CleanRequest{
		Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 3,
	})

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	gauges := []string{
		"go_gc_pause_seconds_total",
		"go_gc_runs_total",
		"go_gomaxprocs",
		"go_goroutines",
		"go_heap_alloc_bytes",
	}
	last := -1
	for _, g := range gauges {
		idx := strings.Index(body, "\n"+g+" ")
		if idx < 0 {
			t.Fatalf("/metrics missing runtime gauge %s", g)
		}
		if idx < last {
			t.Fatalf("runtime gauge %s out of sorted order", g)
		}
		last = idx
	}
	for _, want := range []string{
		`rfidclean_clean_phase_duration_seconds_bucket{phase="backward",le=`,
		`rfidclean_clean_phase_duration_seconds_bucket{phase="forward",le=`,
		`rfidclean_clean_phase_duration_seconds_count{phase="derive"} 1`,
		`rfidclean_pruned_candidates_total{constraint="DU"}`,
		`rfidclean_pruned_candidates_total{constraint="LT"}`,
		`rfidclean_pruned_candidates_total{constraint="TT"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestServerCloseIdempotent is the regression test for the double-Close fix:
// a second (or concurrent) Close must neither panic nor return before the
// reaper goroutine has drained.
func TestServerCloseIdempotent(t *testing.T) {
	srv := New()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// With a running reaper: every closer must wait for the drain.
	st := newSessionStore(Options{SessionTTL: time.Hour}, 1, 0, newMetrics())
	if st.open(&deployment{id: "d"}, rfidclean.ConstraintParams{}, nil, nil, nil) == nil {
		t.Fatal("open returned nil before close")
	}
	if !st.reaping {
		t.Fatal("reaper did not start")
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.close()
			select {
			case <-st.done:
			default:
				t.Error("close returned before the reaper drained")
			}
		}()
	}
	wg.Wait()
	if st.open(&deployment{id: "d"}, rfidclean.ConstraintParams{}, nil, nil, nil) != nil {
		t.Fatal("open succeeded after close")
	}
}
