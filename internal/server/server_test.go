package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	rfidclean "repro"
)

// testDeployment returns a small serialized deployment and the System it
// describes (for generating readings).
func testDeployment(t testing.TB) ([]byte, *rfidclean.System) {
	t.Helper()
	b := rfidclean.NewMapBuilder()
	cor := b.AddLocation("corridor", rfidclean.Corridor, 0, rfidclean.RectWH(0, 0, 12, 3))
	lab := b.AddLocation("lab", rfidclean.Room, 0, rfidclean.RectWH(0, 3, 6, 5))
	office := b.AddLocation("office", rfidclean.Room, 0, rfidclean.RectWH(6, 3, 6, 5))
	b.AddDoor(cor, lab, rfidclean.Pt(3, 3), 1)
	b.AddDoor(cor, office, rfidclean.Pt(9, 3), 1)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dep := &rfidclean.Deployment{
		Name: "test",
		Plan: plan,
		Readers: []rfidclean.Reader{
			{ID: 0, Name: "r-lab", Floor: 0, Pos: rfidclean.Pt(3, 5.5)},
			{ID: 1, Name: "r-office", Floor: 0, Pos: rfidclean.Pt(9, 5.5)},
			{ID: 2, Name: "r-cor", Floor: 0, Pos: rfidclean.Pt(6, 1.5)},
		},
		Detection:          rfidclean.DefaultThreeState(),
		CellSize:           0.5,
		CalibrationSamples: 30,
		Seed:               5,
	}
	var buf bytes.Buffer
	if err := dep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	sys, err := dep.System()
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sys
}

// harness spins up the server and registers the test deployment, returning
// the base URL, the deployment id, and readings for a known trajectory.
func harness(t *testing.T) (base string, depID string, sys *rfidclean.System, readings rfidclean.ReadingSequence) {
	t.Helper()
	depJSON, sys := testDeployment(t)
	ts := httptest.NewServer(New())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/deployments", "application/json", bytes.NewReader(depJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	var created map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}

	rng := rfidclean.NewRNG(77)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(90), rng)
	if err != nil {
		t.Fatal(err)
	}
	return ts.URL, created["id"], sys, rfidclean.GenerateReadings(truth, sys.Truth, rng)
}

func postClean(t *testing.T, base string, req CleanRequest) (*http.Response, CleanResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/clean", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out CleanResponse
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, out
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestServerEndToEnd(t *testing.T) {
	base, depID, _, readings := harness(t)

	// List deployments.
	var list []map[string]any
	if code := getJSON(t, base+"/v1/deployments", &list); code != http.StatusOK {
		t.Fatalf("list status = %d", code)
	}
	if len(list) != 1 {
		t.Fatalf("deployments = %v", list)
	}

	// Clean.
	resp, cleaned := postClean(t, base, CleanRequest{
		Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 5,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("clean status = %d", resp.StatusCode)
	}
	if cleaned.Nodes == 0 || cleaned.Edges == 0 {
		t.Fatalf("empty graph: %+v", cleaned)
	}

	// Stay query.
	var stay []LocationProb
	if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s/stay?t=45", base, cleaned.ID), &stay); code != http.StatusOK {
		t.Fatalf("stay status = %d", code)
	}
	total := 0.0
	for _, lp := range stay {
		total += lp.P
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("stay distribution sums to %v", total)
	}
	if len(stay) > 1 && stay[0].P < stay[1].P {
		t.Errorf("stay answer not sorted")
	}

	// Pattern query.
	var match map[string]float64
	url := fmt.Sprintf("%s/v1/trajectories/%s/match?pattern=%s", base, cleaned.ID, "%3F+lab+%3F")
	if code := getJSON(t, url, &match); code != http.StatusOK {
		t.Fatalf("match status = %d", code)
	}
	if p := match["p"]; p < 0 || p > 1 {
		t.Errorf("match p = %v", p)
	}

	// Top-k.
	var top []TopTrajectory
	if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s/top?k=3", base, cleaned.ID), &top); code != http.StatusOK {
		t.Fatalf("top status = %d", code)
	}
	if len(top) == 0 || len(top[0].Runs) == 0 {
		t.Fatalf("top = %v", top)
	}
	for i := 1; i < len(top); i++ {
		if top[i].P > top[i-1].P {
			t.Errorf("top-k not sorted")
		}
	}

	// Occupancy.
	var occ []LocationProb
	if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s/occupancy", base, cleaned.ID), &occ); code != http.StatusOK {
		t.Fatalf("occupancy status = %d", code)
	}
	total = 0
	for _, lp := range occ {
		total += lp.P
	}
	if total < 89.9 || total > 90.1 {
		t.Errorf("occupancy sums to %v, want ~90", total)
	}

	// Graph stats endpoint.
	var stats CleanResponse
	if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s", base, cleaned.ID), &stats); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if stats.Nodes != cleaned.Nodes {
		t.Errorf("stats mismatch")
	}

	// Delete, then queries 404.
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/trajectories/%s", base, cleaned.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", dresp.StatusCode)
	}
	if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s/stay?t=1", base, cleaned.ID), nil); code != http.StatusNotFound {
		t.Errorf("deleted trajectory still queryable (%d)", code)
	}
}

func TestServerGroupCleaning(t *testing.T) {
	base, depID, sys, readings := harness(t)
	rng := rfidclean.NewRNG(3)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(90), rng)
	if err != nil {
		t.Fatal(err)
	}
	second := rfidclean.GenerateReadings(truth, sys.Truth, rng)
	_ = readings
	first := rfidclean.GenerateReadings(truth, sys.Truth, rng)

	resp, cleaned := postClean(t, base, CleanRequest{
		Deployment: depID, Readings: first,
		Group:    []rfidclean.ReadingSequence{second},
		MaxSpeed: 2, MinStay: 5,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("group clean status = %d", resp.StatusCode)
	}
	if cleaned.Nodes == 0 {
		t.Fatalf("empty group graph")
	}
}

func TestServerErrors(t *testing.T) {
	base, depID, _, readings := harness(t)

	// Bad deployment body.
	resp, err := http.Post(base+"/v1/deployments", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad deployment status = %d", resp.StatusCode)
	}

	// Unknown deployment.
	if r, _ := postClean(t, base, CleanRequest{Deployment: "d999", Readings: readings, MaxSpeed: 2}); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown deployment status = %d", r.StatusCode)
	}
	// Missing speed.
	if r, _ := postClean(t, base, CleanRequest{Deployment: depID, Readings: readings}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("zero speed status = %d", r.StatusCode)
	}
	// Invalid readings.
	bad := rfidclean.ReadingSequence{{Time: 7}}
	if r, _ := postClean(t, base, CleanRequest{Deployment: depID, Readings: bad, MaxSpeed: 2}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid readings status = %d", r.StatusCode)
	}
	// Unknown trajectory.
	if code := getJSON(t, base+"/v1/trajectories/t999/stay?t=1", nil); code != http.StatusNotFound {
		t.Errorf("unknown trajectory status = %d", code)
	}
	// Clean something for the remaining checks.
	_, cleaned := postClean(t, base, CleanRequest{Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 5})
	// Bad stay timestamp.
	if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s/stay?t=oops", base, cleaned.ID), nil); code != http.StatusBadRequest {
		t.Errorf("bad stay status = %d", code)
	}
	if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s/stay?t=9999", base, cleaned.ID), nil); code != http.StatusBadRequest {
		t.Errorf("out-of-window stay status = %d", code)
	}
	// Missing pattern.
	if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s/match", base, cleaned.ID), nil); code != http.StatusBadRequest {
		t.Errorf("missing pattern status = %d", code)
	}
	// Pattern naming an unknown location.
	if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s/match?pattern=%s", base, cleaned.ID, "%3F+mars+%3F"), nil); code != http.StatusBadRequest {
		t.Errorf("unknown pattern location status = %d", code)
	}
	// Bad k.
	if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s/top?k=0", base, cleaned.ID), nil); code != http.StatusBadRequest {
		t.Errorf("bad k status = %d", code)
	}
	// Unknown op.
	if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s/nope", base, cleaned.ID), nil); code != http.StatusNotFound {
		t.Errorf("unknown op status = %d", code)
	}
	// Wrong methods.
	resp, err = http.Post(fmt.Sprintf("%s/v1/trajectories/%s/stay?t=1", base, cleaned.ID), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST to stay status = %d", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodPut, base+"/v1/deployments", nil)
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT deployments status = %d", presp.StatusCode)
	}
	gresp, err := http.Get(base + "/v1/clean")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET clean status = %d", gresp.StatusCode)
	}
}

func TestServerBatchClean(t *testing.T) {
	base, depID, sys, _ := harness(t)

	// Three healthy sequences plus one empty one: the healthy slots store
	// trajectories, the empty slot reports its own error.
	rng := rfidclean.NewRNG(11)
	seqs := make([]rfidclean.ReadingSequence, 4)
	for i := range seqs {
		if i == 2 {
			continue // leave slot 2 empty
		}
		truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(60), rng)
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = rfidclean.GenerateReadings(truth, sys.Truth, rng)
	}
	body, err := json.Marshal(BatchCleanRequest{
		Deployment: depID, Sequences: seqs, MaxSpeed: 2, MinStay: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/clean/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var out []BatchCleanResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(seqs) {
		t.Fatalf("batch returned %d slots, want %d", len(out), len(seqs))
	}
	for i, res := range out {
		if i == 2 {
			if res.Error == "" || res.ID != "" {
				t.Errorf("empty slot %d: %+v, want error", i, res)
			}
			continue
		}
		if res.Error != "" || res.ID == "" || res.Nodes == 0 {
			t.Errorf("slot %d: %+v, want stored trajectory", i, res)
			continue
		}
		// Each stored trajectory is individually queryable.
		var stats CleanResponse
		if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/%s", base, res.ID), &stats); code != http.StatusOK {
			t.Errorf("slot %d trajectory %s not queryable (%d)", i, res.ID, code)
		}
	}

	// Error paths.
	for name, req := range map[string]BatchCleanRequest{
		"unknown deployment": {Deployment: "d999", Sequences: seqs[:1], MaxSpeed: 2},
		"zero speed":         {Deployment: depID, Sequences: seqs[:1]},
		"no sequences":       {Deployment: depID, MaxSpeed: 2},
	} {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		r, err := http.Post(base+"/v1/clean/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			t.Errorf("%s: batch accepted (%d)", name, r.StatusCode)
		}
	}
	g, err := http.Get(base + "/v1/clean/batch")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET batch status = %d", g.StatusCode)
	}
}

func TestServerInconsistentReadings(t *testing.T) {
	// A rooms-only deployment (no LT-exempt corridor): a minimum stay far
	// longer than the window makes every interpretation invalid under
	// strict end-of-window semantics.
	b := rfidclean.NewMapBuilder()
	a := b.AddLocation("east", rfidclean.Room, 0, rfidclean.RectWH(0, 0, 5, 5))
	c := b.AddLocation("west", rfidclean.Room, 0, rfidclean.RectWH(5, 0, 5, 5))
	b.AddDoor(a, c, rfidclean.Pt(5, 2.5), 1)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dep := &rfidclean.Deployment{
		Name: "rooms-only",
		Plan: plan,
		Readers: []rfidclean.Reader{
			{ID: 0, Name: "r-east", Floor: 0, Pos: rfidclean.Pt(2.5, 2.5)},
			{ID: 1, Name: "r-west", Floor: 0, Pos: rfidclean.Pt(7.5, 2.5)},
		},
		Detection:          rfidclean.DefaultThreeState(),
		CellSize:           0.5,
		CalibrationSamples: 30,
		Seed:               2,
	}
	var buf bytes.Buffer
	if err := dep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New())
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/v1/deployments", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var created map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	readings := make(rfidclean.ReadingSequence, 30)
	for i := range readings {
		readings[i] = rfidclean.Reading{Time: i, Readers: rfidclean.NewReaderSet(0)}
	}
	cresp, _ := postClean(t, ts.URL, CleanRequest{
		Deployment: created["id"], Readings: readings,
		MaxSpeed: 2, MinStay: 10000, StrictEnd: true,
	})
	if cresp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("inconsistent clean status = %d, want 422", cresp.StatusCode)
	}
}

func TestServerHealthz(t *testing.T) {
	base, depID, _, readings := harness(t)
	var health map[string]any
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if health["status"] != "ok" || health["deployments"].(float64) != 1 {
		t.Fatalf("healthz = %v", health)
	}
	if resp, _ := postClean(t, base, CleanRequest{Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 5}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("clean status = %d", resp.StatusCode)
	}
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if health["trajectories"].(float64) != 1 || health["storeBytes"].(float64) <= 0 {
		t.Fatalf("healthz after clean = %v", health)
	}
}

func TestServerBodyLimit(t *testing.T) {
	depJSON, sys := testDeployment(t)
	ts := httptest.NewServer(NewWithOptions(Options{MaxBodyBytes: 512}))
	t.Cleanup(ts.Close)

	// The deployment itself exceeds 512 bytes: registering it trips the cap.
	resp, err := http.Post(ts.URL+"/v1/deployments", "application/json", bytes.NewReader(depJSON))
	if err != nil {
		t.Fatal(err)
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized deployment status = %d, want 413", resp.StatusCode)
	}
	if apiErr.Error == "" {
		t.Error("413 response missing uniform apiError body")
	}

	// Oversized clean bodies get the same treatment.
	rng := rfidclean.NewRNG(4)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(400), rng)
	if err != nil {
		t.Fatal(err)
	}
	big, err := json.Marshal(CleanRequest{
		Deployment: "d1",
		Readings:   rfidclean.GenerateReadings(truth, sys.Truth, rng),
		MaxSpeed:   2, MinStay: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(big) <= 512 {
		t.Fatalf("test body only %d bytes; grow the trajectory", len(big))
	}
	resp, err = http.Post(ts.URL+"/v1/clean", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized clean status = %d, want 413", resp.StatusCode)
	}

	// The rejections are visible on /metrics.
	m := scrape(t, ts.URL)
	if !strings.Contains(m, "rfidclean_body_rejections_total 2") {
		t.Errorf("metrics missing body rejections:\n%s", m)
	}
}

// TestServerBatchIDsDoNotInterleave: all of a batch's trajectory ids are
// allocated in one critical section, so they are consecutive even when
// single cleans run concurrently.
func TestServerBatchIDsDoNotInterleave(t *testing.T) {
	base, depID, sys, readings := harness(t)
	rng := rfidclean.NewRNG(13)
	seqs := make([]rfidclean.ReadingSequence, 6)
	for i := range seqs {
		truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(40), rng)
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = rfidclean.GenerateReadings(truth, sys.Truth, rng)
	}
	body, err := json.Marshal(BatchCleanRequest{Deployment: depID, Sequences: seqs, MaxSpeed: 2, MinStay: 5})
	if err != nil {
		t.Fatal(err)
	}

	// Hammer single cleans while the batch runs.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					postClean(t, base, CleanRequest{Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 5})
				}
			}
		}()
	}
	resp, err := http.Post(base+"/v1/clean/batch", "application/json", bytes.NewReader(body))
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var out []BatchCleanResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	prev := -1
	for i, res := range out {
		if res.Error != "" {
			t.Fatalf("slot %d failed: %s", i, res.Error)
		}
		n, err := strconv.Atoi(strings.TrimPrefix(res.ID, "t"))
		if err != nil {
			t.Fatalf("slot %d id %q", i, res.ID)
		}
		if prev != -1 && n != prev+1 {
			t.Fatalf("batch ids interleaved with concurrent cleans: %v", out)
		}
		prev = n
	}
}

// TestServerConcurrentAccess exercises every mutating and read-only path at
// once; run under -race it is the locking-discipline check for the RWMutex
// deployment table and the trajectory store.
func TestServerConcurrentAccess(t *testing.T) {
	base, depID, sys, readings := harness(t)

	// Seed a trajectory that the query goroutines can always hit.
	resp, seeded := postClean(t, base, CleanRequest{Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 5})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("seed clean status = %d", resp.StatusCode)
	}

	rng := rfidclean.NewRNG(31)
	seqs := make([]rfidclean.ReadingSequence, 4)
	for i := range seqs {
		truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(40), rng)
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = rfidclean.GenerateReadings(truth, sys.Truth, rng)
	}
	batchBody, err := json.Marshal(BatchCleanRequest{Deployment: depID, Sequences: seqs, MaxSpeed: 2, MinStay: 5})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		// Single cleans (cache hits after the first inference).
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				r, _ := postClean(t, base, CleanRequest{Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 5})
				if r.StatusCode != http.StatusCreated {
					t.Errorf("concurrent clean status = %d", r.StatusCode)
				}
			}
		}()
		// Read-only queries against the seeded trajectory.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				for _, path := range []string{
					fmt.Sprintf("/v1/trajectories/%s/stay?t=12", seeded.ID),
					fmt.Sprintf("/v1/trajectories/%s/occupancy", seeded.ID),
					fmt.Sprintf("/v1/trajectories/%s/top?k=2", seeded.ID),
					fmt.Sprintf("/v1/trajectories/%s", seeded.ID),
					"/v1/deployments",
					"/healthz",
					"/metrics",
				} {
					r, err := http.Get(base + path)
					if err != nil {
						t.Error(err)
						return
					}
					r.Body.Close()
					if r.StatusCode != http.StatusOK {
						t.Errorf("GET %s = %d", path, r.StatusCode)
					}
				}
			}
		}()
	}
	// Batch cleans.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			r, err := http.Post(base+"/v1/clean/batch", "application/json", bytes.NewReader(batchBody))
			if err != nil {
				t.Error(err)
				return
			}
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				t.Errorf("concurrent batch status = %d", r.StatusCode)
			}
		}
	}()
	// Create-then-delete churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			r, created := postClean(t, base, CleanRequest{Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 5})
			if r.StatusCode != http.StatusCreated {
				t.Errorf("churn clean status = %d", r.StatusCode)
				return
			}
			req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/trajectories/%s", base, created.ID), nil)
			if err != nil {
				t.Error(err)
				return
			}
			dr, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			dr.Body.Close()
			if dr.StatusCode != http.StatusOK {
				t.Errorf("churn delete status = %d", dr.StatusCode)
			}
		}
	}()
	wg.Wait()

	// With one deployment and fixed parameters, inference ran exactly once
	// across every goroutine above.
	if !strings.Contains(scrape(t, base), "rfidclean_constraint_cache_misses_total 1") {
		t.Error("constraint inference ran more than once under concurrency")
	}
}

// BenchmarkServerCleanCached measures the repeated-clean steady state: every
// iteration after the first hits the constraint cache, so the cost is the
// prior + Algorithm 1, not DU/LT/TT inference.
func BenchmarkServerCleanCached(b *testing.B) {
	depJSON, sys := testDeployment(b)
	ts := httptest.NewServer(New())
	b.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/v1/deployments", "application/json", bytes.NewReader(depJSON))
	if err != nil {
		b.Fatal(err)
	}
	var created map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	rng := rfidclean.NewRNG(77)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(90), rng)
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(CleanRequest{
		Deployment: created["id"],
		Readings:   rfidclean.GenerateReadings(truth, sys.Truth, rng),
		MaxSpeed:   2, MinStay: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := http.Post(ts.URL+"/v1/clean", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusCreated {
			b.Fatalf("clean status = %d", r.StatusCode)
		}
	}
}
