package server

import (
	"container/list"
	"fmt"
	"sync"

	rfidclean "repro"
)

// constraintCache memoizes constraint inference for one deployment, keyed by
// the request parameters that drive it. DU/LT/TT inference walks the whole
// map (all-pairs shortest travel times for TT), so repeated cleans against
// the same deployment with the same parameters — the warehouse steady state
// — should pay for it once. Entries are LRU-evicted past maxEntries.
//
// Concurrent misses on the same key run inference exactly once: the entry is
// published under the cache lock and computed under its own sync.Once, so a
// slow inference never blocks lookups of other keys.
type constraintCache struct {
	maxEntries int

	mu      sync.Mutex
	entries map[rfidclean.ConstraintParams]*cacheEntry
	lru     *list.List // of *cacheEntry; front = most recently used
}

type cacheEntry struct {
	key  rfidclean.ConstraintParams
	elem *list.Element

	once sync.Once
	ic   *rfidclean.ConstraintSet
	err  error
}

const defaultCacheEntries = 64

func newConstraintCache(maxEntries int) *constraintCache {
	if maxEntries <= 0 {
		maxEntries = defaultCacheEntries
	}
	return &constraintCache{
		maxEntries: maxEntries,
		entries:    make(map[rfidclean.ConstraintParams]*cacheEntry),
		lru:        list.New(),
	}
}

// get returns the constraint set for p, running infer only on a miss. The
// error (deterministic for fixed parameters and map) is cached alongside the
// set. hit reports whether the entry already existed, whether or not its
// computation had finished.
func (c *constraintCache) get(p rfidclean.ConstraintParams, infer func() (*rfidclean.ConstraintSet, error)) (ic *rfidclean.ConstraintSet, err error, hit bool) {
	c.mu.Lock()
	e := c.entries[p]
	hit = e != nil
	if hit {
		c.lru.MoveToFront(e.elem)
	} else {
		e = &cacheEntry{key: p}
		e.elem = c.lru.PushFront(e)
		c.entries[p] = e
		for c.lru.Len() > c.maxEntries {
			old := c.lru.Remove(c.lru.Back()).(*cacheEntry)
			delete(c.entries, old.key)
		}
	}
	c.mu.Unlock()
	// An entry evicted while still being computed stays valid for the
	// goroutines already holding it; it just won't be found again.
	//
	// sync.Once marks itself done even when its function panics, so a
	// panicking infer would otherwise poison the entry: every later hit
	// would read the zero values — a nil constraint set with a nil error —
	// and crash far from the cause. Convert the panic into a cached error
	// instead; retrying is pointless, since inference is deterministic for
	// fixed parameters and map.
	e.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				e.ic, e.err = nil, fmt.Errorf("constraint inference panicked: %v", r)
			}
		}()
		e.ic, e.err = infer()
	})
	return e.ic, e.err, hit
}

// len reports the number of cached entries.
func (c *constraintCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
