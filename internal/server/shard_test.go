package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	rfidclean "repro"
)

func TestNextStridedID(t *testing.T) {
	cases := []struct {
		cur, stride, offset, want int
	}{
		{0, 1, 0, 1}, // single-node: plain increment
		{5, 0, 0, 6}, // stride <= 1 degrades to increment
		{0, 3, 0, 3}, // first id in residue class 0 is 3, not 0
		{0, 3, 1, 1}, // shard 1 of 3 starts at 1
		{0, 3, 2, 2}, // shard 2 of 3 starts at 2
		{1, 3, 1, 4}, // next in class
		{3, 3, 1, 4}, // cur outside the class rounds up into it
		{5, 3, 1, 7}, // restored counter in the wrong class strides past
		{7, 2, 0, 8}, // even namespace
		{7, 2, 1, 9}, // odd namespace
		{99, 10, 4, 104},
	}
	for _, c := range cases {
		got := nextStridedID(c.cur, c.stride, c.offset)
		if got != c.want {
			t.Errorf("nextStridedID(%d, %d, %d) = %d, want %d", c.cur, c.stride, c.offset, got, c.want)
		}
		if c.stride > 1 {
			if got%c.stride != c.offset {
				t.Errorf("nextStridedID(%d, %d, %d) = %d: not in residue class %d", c.cur, c.stride, c.offset, got, c.offset)
			}
			if got <= c.cur {
				t.Errorf("nextStridedID(%d, %d, %d) = %d: not monotonic", c.cur, c.stride, c.offset, got)
			}
		}
	}
}

// TestOpenRejectsBadShardConfig: an out-of-range shard index is a
// configuration error, not a silently collapsed namespace.
func TestOpenRejectsBadShardConfig(t *testing.T) {
	for _, idx := range []int{-1, 3, 7} {
		if _, err := Open(Options{ShardCount: 3, ShardIndex: idx}); err == nil {
			t.Errorf("Open(ShardCount: 3, ShardIndex: %d) succeeded, want error", idx)
		}
	}
	if srv, err := Open(Options{ShardCount: 3, ShardIndex: 2}); err != nil {
		t.Errorf("Open(ShardCount: 3, ShardIndex: 2) = %v", err)
	} else {
		srv.Close()
	}
}

// TestCrossShardIDNamespacesDisjoint (satellite S1): two workers configured
// as shards 0 and 1 of 2 mint ids from disjoint residue classes — no
// trajectory, session or deployment id can collide across shards no matter
// how requests interleave, which is the invariant routing-by-residue rests
// on.
func TestCrossShardIDNamespacesDisjoint(t *testing.T) {
	depJSON, sys := testDeployment(t)
	rng := rfidclean.NewRNG(7)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)

	seen := map[string]int{} // id -> shard that minted it
	for shardIdx := 0; shardIdx < 2; shardIdx++ {
		srv := NewWithOptions(Options{ShardCount: 2, ShardIndex: shardIdx})
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()

		resp, err := http.Post(ts.URL+"/v1/deployments", "application/json", bytes.NewReader(depJSON))
		if err != nil {
			t.Fatal(err)
		}
		var created map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		depID := created["id"]
		checkResidue(t, seen, depID, "d", shardIdx, 2)

		// A mix of single cleans and a batch, so both allocation paths are
		// covered.
		for i := 0; i < 2; i++ {
			resp, out := postClean(t, ts.URL, CleanRequest{Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 5})
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("shard %d clean status = %d", shardIdx, resp.StatusCode)
			}
			checkResidue(t, seen, out.ID, "t", shardIdx, 2)
		}
		batchBody, _ := json.Marshal(BatchCleanRequest{
			Deployment: depID,
			Sequences:  []rfidclean.ReadingSequence{readings, readings, readings},
			MaxSpeed:   2, MinStay: 5,
		})
		resp, err = http.Post(ts.URL+"/v1/clean/batch", "application/json", bytes.NewReader(batchBody))
		if err != nil {
			t.Fatal(err)
		}
		var results []BatchCleanResult
		if err := json.NewDecoder(resp.Body).Decode(&results); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, r := range results {
			if r.Error != "" {
				t.Fatalf("shard %d batch slot error: %s", shardIdx, r.Error)
			}
			checkResidue(t, seen, r.ID, "t", shardIdx, 2)
		}

		// Session ids share the discipline.
		openBody, _ := json.Marshal(StreamOpenRequest{Deployment: depID, MaxSpeed: 2, MinStay: 5})
		resp, err = http.Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(openBody))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		checkResidue(t, seen, created["id"], "s", shardIdx, 2)
	}
}

// checkResidue asserts the id's numeric suffix lives in the shard's residue
// class and has never been minted by another shard.
func checkResidue(t *testing.T, seen map[string]int, id, prefix string, shardIdx, shards int) {
	t.Helper()
	n, ok := idNum(prefix, id)
	if !ok {
		t.Fatalf("shard %d minted id %q, want %s<number>", shardIdx, id, prefix)
	}
	if n%shards != shardIdx {
		t.Fatalf("shard %d minted %q: residue %d, want %d — cross-shard collision possible", shardIdx, id, n%shards, shardIdx)
	}
	if prev, dup := seen[id]; dup {
		t.Fatalf("id %q minted by both shard %d and shard %d", id, prev, shardIdx)
	}
	seen[id] = shardIdx
}

// TestStridedCounterAfterRestore (satellite S1): a counter recovered from
// persisted state may sit in another shard's residue class (single-node
// history resharded later); the next mint must stride past it into this
// shard's class instead of continuing the old sequence.
func TestStridedCounterAfterRestore(t *testing.T) {
	cs := testCleaneds(t, 2)
	st := newTrajStore(0, 3, 1, newMetrics())
	// Simulate recovery having advanced the counter to 5 (class 2 of 3).
	st.mu.Lock()
	st.next = 5
	st.mu.Unlock()
	ids := st.addBatch("d1", cs)
	if ids[0] != "t7" || ids[1] != "t10" {
		t.Fatalf("post-restore mints = %v, want [t7 t10] (class 1 mod 3, past 5)", ids)
	}
}

// TestAssignIDHeaderContract: router-assigned deployment ids are accepted
// only in worker mode, replay idempotently when the body matches, and 409
// when it does not.
func TestAssignIDHeaderContract(t *testing.T) {
	depJSON, _ := testDeployment(t)

	post := func(ts *httptest.Server, id string, body []byte) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/deployments", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set(AssignIDHeader, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Single-node mode refuses the header outright: nothing should be able
	// to inject ids into an unsharded namespace.
	single := httptest.NewServer(New())
	defer single.Close()
	resp := post(single, "d9", depJSON)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("single-node assigned-id status = %d, want 400", resp.StatusCode)
	}

	worker := httptest.NewServer(NewWithOptions(Options{ShardCount: 2, ShardIndex: 0}))
	defer worker.Close()

	resp = post(worker, "d9", depJSON)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("worker assigned-id status = %d, want 201", resp.StatusCode)
	}
	// Replay with the same body: idempotent 200, same id.
	resp = post(worker, "d9", depJSON)
	var replay map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&replay); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || replay["id"] != "d9" {
		t.Fatalf("replay = (%d, %v), want (200, d9)", resp.StatusCode, replay)
	}
	// Same id, different definition: conflict.
	other := bytes.Replace(depJSON, []byte(`"test"`), []byte(`"other"`), 1)
	if bytes.Equal(other, depJSON) {
		t.Fatal("test premise broken: body rewrite had no effect")
	}
	resp = post(worker, "d9", other)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting replay status = %d, want 409", resp.StatusCode)
	}
	// An invalid id is rejected before touching the registry.
	resp = post(worker, "x9", depJSON)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed assigned id status = %d, want 400", resp.StatusCode)
	}
	// The counter moved past the assigned id: the next locally minted id
	// must not collide with d9.
	resp = post(worker, "", depJSON)
	var minted map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&minted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("local mint status = %d, want 201", resp.StatusCode)
	}
	if n, ok := idNum("d", minted["id"]); !ok || n <= 9 || n%2 != 0 {
		t.Fatalf("local mint after assigned d9 = %q, want an even id > 9", minted["id"])
	}
}

// TestDeleteDeploymentDuringClean (satellite S2): deleting a deployment
// while cleans and batches are in flight must never leave orphaned
// trajectories in the store — whichever of the delete sweep and the
// post-store check runs second removes the graph. Run with -race to also
// exercise the dead-flag ordering.
func TestDeleteDeploymentDuringClean(t *testing.T) {
	depJSON, sys := testDeployment(t)
	rng := rfidclean.NewRNG(31)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)

	srv := New()
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cleanBody, _ := json.Marshal(CleanRequest{Deployment: "PLACEHOLDER", Readings: readings, MaxSpeed: 2, MinStay: 5})
	batchBody, _ := json.Marshal(BatchCleanRequest{
		Deployment: "PLACEHOLDER",
		Sequences:  []rfidclean.ReadingSequence{readings, readings},
		MaxSpeed:   2, MinStay: 5,
	})

	for iter := 0; iter < 8; iter++ {
		resp, err := http.Post(ts.URL+"/v1/deployments", "application/json", bytes.NewReader(depJSON))
		if err != nil {
			t.Fatal(err)
		}
		var created map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		depID := created["id"]

		cb := bytes.Replace(cleanBody, []byte("PLACEHOLDER"), []byte(depID), 1)
		bb := bytes.Replace(batchBody, []byte("PLACEHOLDER"), []byte(depID), 1)

		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/clean", "application/json", bytes.NewReader(cb))
				if err == nil {
					resp.Body.Close()
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/clean/batch", "application/json", bytes.NewReader(bb))
			if err == nil {
				resp.Body.Close()
			}
		}()

		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/deployments/"+depID, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		wg.Wait()

		// Invariant: once both sides have finished, the store holds nothing
		// cleaned under the deleted deployment, regardless of interleaving.
		for _, row := range srv.store.list() {
			if row.Deployment == depID {
				t.Fatalf("iteration %d: orphan trajectory %s survives deletion of %s", iter, row.ID, depID)
			}
		}
	}
}

// TestDeleteDeploymentDuringStream (satellite S2): the same no-orphan
// invariant holds for the streaming paths — a session opened against a
// deployment that is deleted concurrently either fails its open or loses
// its smoothed trajectories with the deployment.
func TestDeleteDeploymentDuringStream(t *testing.T) {
	depJSON, sys := testDeployment(t)
	rng := rfidclean.NewRNG(33)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)

	srv := New()
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for iter := 0; iter < 6; iter++ {
		resp, err := http.Post(ts.URL+"/v1/deployments", "application/json", bytes.NewReader(depJSON))
		if err != nil {
			t.Fatal(err)
		}
		var created map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		depID := created["id"]

		openBody, _ := json.Marshal(StreamOpenRequest{Deployment: depID, MaxSpeed: 2, MinStay: 5})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(openBody))
			if err != nil {
				return
			}
			var opened map[string]any
			ok := resp.StatusCode == http.StatusCreated && json.NewDecoder(resp.Body).Decode(&opened) == nil
			resp.Body.Close()
			if !ok {
				return
			}
			sessID, _ := opened["id"].(string)
			// Feed readings and smooth — the smooth stores a trajectory,
			// which must not survive the delete.
			rb, _ := json.Marshal(StreamReadingsRequest{Readings: readings})
			if resp, err := http.Post(ts.URL+"/v1/stream/"+sessID+"/readings", "application/json", bytes.NewReader(rb)); err == nil {
				resp.Body.Close()
			}
			if resp, err := http.Post(ts.URL+"/v1/stream/"+sessID+"/smooth", "application/json", nil); err == nil {
				resp.Body.Close()
			}
		}()

		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/deployments/"+depID, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		wg.Wait()

		for _, row := range srv.store.list() {
			if row.Deployment == depID {
				t.Fatalf("iteration %d: orphan trajectory %s survives deletion of %s", iter, row.ID, depID)
			}
		}
	}
}
