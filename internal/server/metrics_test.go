package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.observe(v)
	}
	var buf bytes.Buffer
	writeHistogram(&buf, "x", "help", h)
	got := buf.String()
	for _, want := range []string{
		`x_bucket{le="1"} 2`, // 0.5 and the boundary value 1
		`x_bucket{le="10"} 3`,
		`x_bucket{le="100"} 4`,
		`x_bucket{le="+Inf"} 5`,
		`x_count 5`,
		`x_sum 556.5`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestLabeledCounterRendering(t *testing.T) {
	l := newLabeled("mode", "outcome")
	l.inc("single", "ok")
	l.inc("single", "ok")
	l.inc("batch", "error")
	var buf bytes.Buffer
	writeLabeled(&buf, "reqs", "help", l)
	got := buf.String()
	if !strings.Contains(got, `reqs{mode="single",outcome="ok"} 2`) ||
		!strings.Contains(got, `reqs{mode="batch",outcome="error"} 1`) {
		t.Errorf("unexpected rendering:\n%s", got)
	}
	if l.get("single", "ok") != 2 || l.get("nope", "nope") != 0 {
		t.Error("labeled get mismatch")
	}
}

// scrape fetches /metrics and returns the text body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// mustContain asserts every wanted sample line appears in the scrape.
func mustContain(t *testing.T, got string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(got, w) {
			t.Errorf("metrics missing %q", w)
		}
	}
}

// TestMetricsReflectServedCleans is the observability acceptance check: a
// served clean shows up in /metrics, and a repeated clean with identical
// parameters is a constraint-cache hit — i.e. the second request performed
// zero DU/LT/TT inference work.
func TestMetricsReflectServedCleans(t *testing.T) {
	base, depID, _, readings := harness(t)

	req := CleanRequest{Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 5}
	if resp, _ := postClean(t, base, req); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first clean status = %d", resp.StatusCode)
	}
	if resp, _ := postClean(t, base, req); resp.StatusCode != http.StatusCreated {
		t.Fatalf("second clean status = %d", resp.StatusCode)
	}

	got := scrape(t, base)
	mustContain(t, got,
		`rfidclean_clean_requests_total{mode="single",outcome="ok"} 2`,
		"rfidclean_constraint_cache_misses_total 1",
		"rfidclean_constraint_cache_hits_total 1",
		"rfidclean_store_trajectories 2",
		"rfidclean_deployments 1",
		"rfidclean_clean_duration_seconds_count 2",
	)

	// A different parameter set is a miss again.
	req.MinStay = 7
	if resp, _ := postClean(t, base, req); resp.StatusCode != http.StatusCreated {
		t.Fatalf("third clean status = %d", resp.StatusCode)
	}
	mustContain(t, scrape(t, base), "rfidclean_constraint_cache_misses_total 2")

	// Queries and deletes are counted too.
	var stay []LocationProb
	if code := getJSON(t, fmt.Sprintf("%s/v1/trajectories/t1/stay?t=10", base), &stay); code != http.StatusOK {
		t.Fatalf("stay status = %d", code)
	}
	dreq, err := http.NewRequest(http.MethodDelete, base+"/v1/trajectories/t2", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	mustContain(t, scrape(t, base),
		`rfidclean_query_ops_total{op="stay"} 1`,
		`rfidclean_query_ops_total{op="delete"} 1`,
		"rfidclean_store_trajectories 2", // 3 stored - 1 deleted
	)
}

func TestMetricsMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(New())
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status = %d", resp.StatusCode)
	}
}
