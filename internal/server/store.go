package server

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	rfidclean "repro"
)

// trajStore holds the cleaned trajectory graphs the query head serves. It is
// the one piece of mutable shared state on the hot path, so it gets its own
// RWMutex: GET queries take only read locks and run concurrently, while
// writes (store, delete, eviction) serialize.
//
// The store enforces an optional byte budget using each graph's estimated
// footprint (Cleaned.Stats().Bytes). Past the budget, the least-recently-
// queried graphs are evicted — the warehousing trade: a re-clean can always
// regenerate an evicted graph, but memory cannot grow without bound under
// heavy traffic. Recency is stamped with a lock-free logical clock so reads
// never upgrade to write locks.
//
// When the server runs with a data directory, every mutation is mirrored to
// the persister's write-ahead log: stores enqueue "put" records, deletions
// and evictions enqueue "del" tombstones. persist is nil otherwise, keeping
// persistence entirely off the in-memory hot path.
type trajStore struct {
	maxBytes int64 // <= 0 means unlimited
	stride   int   // id-allocation stride (shard count; <= 1: single-node)
	offset   int   // this shard's residue class
	m        *metrics
	persist  *persister  // nil when -data-dir is unset
	onEvict  func(n int) // flight-recorder storm detector; nil when disabled

	clock atomic.Int64 // logical access clock for LRU stamps

	mu    sync.RWMutex
	items map[string]*storeItem
	bytes int64
	next  int
}

type storeItem struct {
	traj     *trajectory
	bytes    int64
	lastUsed atomic.Int64
}

func newTrajStore(maxBytes int64, stride, offset int, m *metrics) *trajStore {
	return &trajStore{maxBytes: maxBytes, stride: stride, offset: offset, m: m, items: make(map[string]*storeItem)}
}

// add stores one cleaned graph and returns its id.
func (st *trajStore) add(depID string, c *rfidclean.Cleaned) string {
	return st.addBatch(depID, []*rfidclean.Cleaned{c})[0]
}

// addBatch stores every non-nil graph under a single critical section, so a
// batch's ids are consecutive and can never interleave with a concurrent
// single clean's. ids is positional; nil slots get "".
func (st *trajStore) addBatch(depID string, cs []*rfidclean.Cleaned) []string {
	ids := make([]string, len(cs))
	fresh := make(map[string]bool, len(cs))
	st.mu.Lock()
	for i, c := range cs {
		if c == nil {
			continue
		}
		st.next = nextStridedID(st.next, st.stride, st.offset)
		id := "t" + strconv.Itoa(st.next)
		it := &storeItem{
			traj:  &trajectory{id: id, depID: depID, cleaned: c},
			bytes: int64(c.Stats().Bytes),
		}
		it.lastUsed.Store(st.clock.Add(1))
		st.items[id] = it
		st.bytes += it.bytes
		ids[i] = id
		fresh[id] = true
	}
	victims := st.evictLocked(fresh)
	count, bytes := len(st.items), st.bytes
	st.mu.Unlock()
	st.m.storeCount.set(int64(count))
	st.m.storeBytes.set(bytes)
	if st.onEvict != nil {
		st.onEvict(len(victims))
	}
	if st.persist != nil {
		for i, id := range ids {
			if id != "" {
				st.persist.put(id, depID, cs[i])
			}
		}
		for _, v := range victims {
			st.persist.del(v)
		}
	}
	return ids
}

// evictLocked drops least-recently-used items until the store fits its
// budget, returning the evicted ids. Items stored by the current call are
// exempt, so a large batch is admitted whole (possibly overshooting the
// budget until the next add) rather than evicting itself.
//
// The map is scanned exactly once per call: eviction candidates are
// collected in a single pass and sorted by recency stamp, so evicting k
// items under pressure costs O(n log n) instead of the k full scans —
// O(k·n) — a per-victim search would.
func (st *trajStore) evictLocked(fresh map[string]bool) []string {
	if st.maxBytes <= 0 || st.bytes <= st.maxBytes {
		return nil
	}
	type candidate struct {
		id   string
		it   *storeItem
		used int64
	}
	cands := make([]candidate, 0, len(st.items))
	for id, it := range st.items {
		if fresh[id] {
			continue
		}
		cands = append(cands, candidate{id: id, it: it, used: it.lastUsed.Load()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].used < cands[j].used })
	var victims []string
	for _, c := range cands {
		if st.bytes <= st.maxBytes {
			break
		}
		delete(st.items, c.id)
		st.bytes -= c.it.bytes
		st.m.storeEvictions.inc()
		victims = append(victims, c.id)
	}
	return victims
}

// get returns the trajectory with the given id, or nil. It touches the LRU
// stamp without taking the write lock.
func (st *trajStore) get(id string) *trajectory {
	st.mu.RLock()
	it := st.items[id]
	st.mu.RUnlock()
	if it == nil {
		return nil
	}
	it.lastUsed.Store(st.clock.Add(1))
	return it.traj
}

// delete removes a trajectory, reporting whether it existed.
func (st *trajStore) delete(id string) bool {
	st.mu.Lock()
	it := st.items[id]
	if it != nil {
		delete(st.items, id)
		st.bytes -= it.bytes
	}
	count, bytes := len(st.items), st.bytes
	st.mu.Unlock()
	if it != nil {
		st.m.storeCount.set(int64(count))
		st.m.storeBytes.set(bytes)
		if st.persist != nil {
			st.persist.del(id)
		}
	}
	return it != nil
}

// deleteByDep removes every trajectory belonging to a deployment (used when
// the deployment itself is deleted), returning how many were dropped.
func (st *trajStore) deleteByDep(depID string) int {
	st.mu.Lock()
	var removed []string
	for id, it := range st.items {
		if it.traj.depID == depID {
			delete(st.items, id)
			st.bytes -= it.bytes
			removed = append(removed, id)
		}
	}
	count, bytes := len(st.items), st.bytes
	st.mu.Unlock()
	if len(removed) > 0 {
		st.m.storeCount.set(int64(count))
		st.m.storeBytes.set(bytes)
		if st.persist != nil {
			for _, id := range removed {
				st.persist.del(id)
			}
		}
	}
	return len(removed)
}

// stats reports the current item count and estimated bytes.
func (st *trajStore) stats() (count int, bytes int64) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.items), st.bytes
}

// snapshot returns the live contents oldest-first (by recency stamp) plus
// the id counter — the compaction source. Graph encoding happens in the
// caller, outside the store lock.
func (st *trajStore) snapshot() ([]snapItem, int) {
	type stamped struct {
		item snapItem
		used int64
	}
	st.mu.RLock()
	out := make([]stamped, 0, len(st.items))
	for id, it := range st.items {
		out = append(out, stamped{
			item: snapItem{id: id, depID: it.traj.depID, c: it.traj.cleaned},
			used: it.lastUsed.Load(),
		})
	}
	next := st.next
	st.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].used < out[j].used })
	items := make([]snapItem, len(out))
	for i, s := range out {
		items[i] = s.item
	}
	return items, next
}

// restore installs recovered trajectories (oldest first) at boot, then
// enforces the byte budget: past it the oldest recovered entries are dropped
// first, each counted as an eviction (and tombstoned, so a subsequent crash
// does not resurrect them). The id counter is forced to at least next so
// fresh ids never collide with recovered or tombstoned ones. It returns how
// many recovered items the budget dropped.
func (st *trajStore) restore(items []snapItem, next int) int {
	st.mu.Lock()
	for _, it := range items {
		si := &storeItem{
			traj:  &trajectory{id: it.id, depID: it.depID, cleaned: it.c},
			bytes: int64(it.c.Stats().Bytes),
		}
		si.lastUsed.Store(st.clock.Add(1))
		st.items[it.id] = si
		st.bytes += si.bytes
	}
	if st.next < next {
		st.next = next
	}
	victims := st.evictLocked(nil)
	count, bytes := len(st.items), st.bytes
	st.mu.Unlock()
	st.m.storeCount.set(int64(count))
	st.m.storeBytes.set(bytes)
	if st.persist != nil {
		for _, v := range victims {
			st.persist.del(v)
		}
	}
	return len(victims)
}

// list returns one row per stored trajectory, ids in numeric order.
func (st *trajStore) list() []TrajectoryRow {
	st.mu.RLock()
	rows := make([]TrajectoryRow, 0, len(st.items))
	for id, it := range st.items {
		s := it.traj.cleaned.Stats()
		rows = append(rows, TrajectoryRow{
			ID: id, Deployment: it.traj.depID,
			Nodes: s.Nodes, Edges: s.Edges, Bytes: s.Bytes,
		})
	}
	st.mu.RUnlock()
	sort.Slice(rows, func(i, j int) bool { return idLess(rows[i].ID, rows[j].ID) })
	return rows
}
