package server

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	rfidclean "repro"
)

// trajStore holds the cleaned trajectory graphs the query head serves. It is
// the one piece of mutable shared state on the hot path, so it gets its own
// RWMutex: GET queries take only read locks and run concurrently, while
// writes (store, delete, eviction) serialize.
//
// The store enforces an optional byte budget using each graph's estimated
// footprint (Cleaned.Stats().Bytes). Past the budget, the least-recently-
// queried graphs are evicted — the warehousing trade: a re-clean can always
// regenerate an evicted graph, but memory cannot grow without bound under
// heavy traffic. Recency is stamped with a lock-free logical clock so reads
// never upgrade to write locks.
type trajStore struct {
	maxBytes int64 // <= 0 means unlimited
	m        *metrics

	clock atomic.Int64 // logical access clock for LRU stamps

	mu    sync.RWMutex
	items map[string]*storeItem
	bytes int64
	next  int
}

type storeItem struct {
	traj     *trajectory
	bytes    int64
	lastUsed atomic.Int64
}

func newTrajStore(maxBytes int64, m *metrics) *trajStore {
	return &trajStore{maxBytes: maxBytes, m: m, items: make(map[string]*storeItem)}
}

// add stores one cleaned graph and returns its id.
func (st *trajStore) add(depID string, c *rfidclean.Cleaned) string {
	return st.addBatch(depID, []*rfidclean.Cleaned{c})[0]
}

// addBatch stores every non-nil graph under a single critical section, so a
// batch's ids are consecutive and can never interleave with a concurrent
// single clean's. ids is positional; nil slots get "".
func (st *trajStore) addBatch(depID string, cs []*rfidclean.Cleaned) []string {
	ids := make([]string, len(cs))
	fresh := make(map[string]bool, len(cs))
	st.mu.Lock()
	for i, c := range cs {
		if c == nil {
			continue
		}
		st.next++
		id := "t" + strconv.Itoa(st.next)
		it := &storeItem{
			traj:  &trajectory{id: id, depID: depID, cleaned: c},
			bytes: int64(c.Stats().Bytes),
		}
		it.lastUsed.Store(st.clock.Add(1))
		st.items[id] = it
		st.bytes += it.bytes
		ids[i] = id
		fresh[id] = true
	}
	st.evictLocked(fresh)
	count, bytes := len(st.items), st.bytes
	st.mu.Unlock()
	st.m.storeCount.set(int64(count))
	st.m.storeBytes.set(bytes)
	return ids
}

// evictLocked drops least-recently-used items until the store fits its
// budget. Items stored by the current call are exempt, so a large batch is
// admitted whole (possibly overshooting the budget until the next add)
// rather than evicting itself.
func (st *trajStore) evictLocked(fresh map[string]bool) {
	if st.maxBytes <= 0 {
		return
	}
	for st.bytes > st.maxBytes {
		var victimID string
		var victim *storeItem
		oldest := int64(math.MaxInt64)
		for id, it := range st.items {
			if fresh[id] {
				continue
			}
			if u := it.lastUsed.Load(); u < oldest {
				oldest, victimID, victim = u, id, it
			}
		}
		if victim == nil {
			return
		}
		delete(st.items, victimID)
		st.bytes -= victim.bytes
		st.m.storeEvictions.inc()
	}
}

// get returns the trajectory with the given id, or nil. It touches the LRU
// stamp without taking the write lock.
func (st *trajStore) get(id string) *trajectory {
	st.mu.RLock()
	it := st.items[id]
	st.mu.RUnlock()
	if it == nil {
		return nil
	}
	it.lastUsed.Store(st.clock.Add(1))
	return it.traj
}

// delete removes a trajectory, reporting whether it existed.
func (st *trajStore) delete(id string) bool {
	st.mu.Lock()
	it := st.items[id]
	if it != nil {
		delete(st.items, id)
		st.bytes -= it.bytes
	}
	count, bytes := len(st.items), st.bytes
	st.mu.Unlock()
	if it != nil {
		st.m.storeCount.set(int64(count))
		st.m.storeBytes.set(bytes)
	}
	return it != nil
}

// stats reports the current item count and estimated bytes.
func (st *trajStore) stats() (count int, bytes int64) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.items), st.bytes
}
