package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"mime"
	"net/http"
	"strconv"
	"strings"

	rfidclean "repro"
	"repro/internal/persist"
)

// Binary wire codec for the hot stream endpoints. JSON dominates the cost of
// a small readings POST — a reading is two uvarints plus its reader IDs here,
// against ~40 bytes of object syntax there — so high-rate feeders can opt in
// with Content-Type: application/x-rfidclean on the request and Accept:
// application/x-rfidclean for the response. A message is one persist frame
// (4-byte little-endian length, 4-byte CRC32 of the payload — the exact
// format the durability log uses on disk), whose payload starts with a kind
// tag byte:
//
//	0x01 readings: uvarint count, then per reading a varint timestamp, a
//	     uvarint reader count, and that many varint reader IDs
//	0x02 status:   uvarint-prefixed id and deployment strings, varint time,
//	     uvarint readings/frontier/beam, a flags byte (bit 0 = dead), then
//	     a uvarint entry count of (uvarint-prefixed location name, 8-byte
//	     little-endian IEEE-754 probability) pairs
//
// Integers are encoding/binary varints. Error responses are always JSON
// apiError regardless of negotiation — a client that cannot parse them is
// debugging blind.

// ContentTypeBinary is the media type that selects the binary stream codec.
const ContentTypeBinary = "application/x-rfidclean"

// Payload kind tags, the first byte of every frame payload.
const (
	codecKindReadings byte = 0x01
	codecKindStatus   byte = 0x02
)

// requestIsBinary reports whether the request body is binary-codec encoded.
func requestIsBinary(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == ContentTypeBinary
}

// acceptsBinary reports whether the client asked for a binary-codec
// response. Only an explicit mention opts in; wildcards keep JSON, and so
// does an explicit refusal: per RFC 9110 §12.4.2 a quality value of 0 means
// "not acceptable", so Accept: application/x-rfidclean;q=0 must select JSON.
// A malformed q is treated as no opt-in rather than guessed at.
func acceptsBinary(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, params, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err != nil || mt != ContentTypeBinary {
			continue
		}
		if q, ok := params["q"]; ok {
			v, err := strconv.ParseFloat(q, 64)
			if err != nil || v <= 0 {
				continue
			}
		}
		return true
	}
	return false
}

// EncodeStreamReadings encodes a readings batch as one binary-codec frame —
// the body cmd/datagen -encode-stream writes and POST readings accepts.
func EncodeStreamReadings(readings []rfidclean.Reading) []byte {
	p := []byte{codecKindReadings}
	p = binary.AppendUvarint(p, uint64(len(readings)))
	for _, rd := range readings {
		p = binary.AppendVarint(p, int64(rd.Time))
		ids := rd.Readers.IDs()
		p = binary.AppendUvarint(p, uint64(len(ids)))
		for _, id := range ids {
			p = binary.AppendVarint(p, int64(id))
		}
	}
	return persist.AppendFrame(nil, p)
}

// DecodeStreamReadings parses a binary-codec readings frame.
func DecodeStreamReadings(body []byte) ([]rfidclean.Reading, error) {
	c, err := openFrame(body, codecKindReadings)
	if err != nil {
		return nil, err
	}
	count := c.uvarint()
	if c.err == nil && count > uint64(len(c.buf)) {
		// Each reading costs at least one byte, so a count beyond the
		// remaining payload is corrupt, not a huge allocation request.
		return nil, fmt.Errorf("server: reading count %d exceeds payload", count)
	}
	readings := make([]rfidclean.Reading, 0, count)
	for i := uint64(0); i < count && c.err == nil; i++ {
		t := int(c.varint())
		n := c.uvarint()
		if c.err == nil && n > uint64(len(c.buf)) {
			return nil, fmt.Errorf("server: reader count %d exceeds payload", n)
		}
		ids := make([]int, 0, n)
		for j := uint64(0); j < n && c.err == nil; j++ {
			ids = append(ids, int(c.varint()))
		}
		readings = append(readings, rfidclean.Reading{Time: t, Readers: rfidclean.NewReaderSet(ids...)})
	}
	return readings, c.close()
}

// EncodeStreamStatus encodes a StreamStatus as one binary-codec frame.
func EncodeStreamStatus(st StreamStatus) []byte {
	p := []byte{codecKindStatus}
	p = appendCodecString(p, st.ID)
	p = appendCodecString(p, st.Deployment)
	p = binary.AppendVarint(p, int64(st.Time))
	p = binary.AppendUvarint(p, uint64(st.Readings))
	p = binary.AppendUvarint(p, uint64(st.Frontier))
	p = binary.AppendUvarint(p, uint64(st.Beam))
	var flags byte
	if st.Dead {
		flags |= 1
	}
	p = append(p, flags)
	p = binary.AppendUvarint(p, uint64(len(st.Current)))
	for _, lp := range st.Current {
		p = appendCodecString(p, lp.Location)
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(lp.P))
	}
	return persist.AppendFrame(nil, p)
}

// DecodeStreamStatus parses a binary-codec status frame — the client-side
// half, used by tests and external consumers.
func DecodeStreamStatus(body []byte) (StreamStatus, error) {
	c, err := openFrame(body, codecKindStatus)
	if err != nil {
		return StreamStatus{}, err
	}
	var st StreamStatus
	st.ID = c.str()
	st.Deployment = c.str()
	st.Time = int(c.varint())
	st.Readings = int(c.uvarint())
	st.Frontier = int(c.uvarint())
	st.Beam = int(c.uvarint())
	st.Dead = c.byte()&1 != 0
	count := c.uvarint()
	if c.err == nil && count > uint64(len(c.buf)) {
		return StreamStatus{}, fmt.Errorf("server: entry count %d exceeds payload", count)
	}
	if count > 0 {
		st.Current = make([]LocationProb, 0, count)
	}
	for i := uint64(0); i < count && c.err == nil; i++ {
		name := c.str()
		bits := binary.LittleEndian.Uint64(c.bytes(8))
		st.Current = append(st.Current, LocationProb{Location: name, P: math.Float64frombits(bits)})
	}
	return st, c.close()
}

// appendCodecString appends a uvarint-length-prefixed string.
func appendCodecString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

// openFrame unwraps one persist frame, checks the kind tag, and returns a
// cursor over the rest of the payload. Trailing bytes after the frame are
// rejected — a stream message is exactly one frame.
func openFrame(body []byte, kind byte) (*codecCursor, error) {
	payload, rest, err := persist.ParseFrame(body)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("server: %d trailing bytes after the frame", len(rest))
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("server: empty frame payload")
	}
	if payload[0] != kind {
		return nil, fmt.Errorf("server: payload kind 0x%02x, want 0x%02x", payload[0], kind)
	}
	return &codecCursor{buf: payload[1:]}, nil
}

// codecCursor reads varint-encoded fields off a payload, latching the first
// error so callers can decode a whole message and check once.
type codecCursor struct {
	buf []byte
	err error
}

func (c *codecCursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("server: truncated or malformed %s", what)
	}
}

func (c *codecCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.buf)
	if n <= 0 {
		c.fail("uvarint")
		return 0
	}
	c.buf = c.buf[n:]
	return v
}

func (c *codecCursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.buf)
	if n <= 0 {
		c.fail("varint")
		return 0
	}
	c.buf = c.buf[n:]
	return v
}

func (c *codecCursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if len(c.buf) == 0 {
		c.fail("byte")
		return 0
	}
	b := c.buf[0]
	c.buf = c.buf[1:]
	return b
}

// bytes returns the next n payload bytes (aliasing, not copied); on underrun
// it latches an error and returns a zero-filled slice so fixed-width decodes
// stay in bounds.
func (c *codecCursor) bytes(n int) []byte {
	if c.err == nil && len(c.buf) >= n {
		b := c.buf[:n]
		c.buf = c.buf[n:]
		return b
	}
	c.fail("bytes")
	return make([]byte, n)
}

func (c *codecCursor) str() string {
	n := c.uvarint()
	if c.err == nil && n > uint64(len(c.buf)) {
		c.fail("string")
		return ""
	}
	return string(c.bytes(int(n)))
}

// close finishes a decode: the latched error if any, else an error for
// unconsumed payload bytes.
func (c *codecCursor) close() error {
	if c.err != nil {
		return c.err
	}
	if len(c.buf) != 0 {
		return fmt.Errorf("server: %d unconsumed payload bytes", len(c.buf))
	}
	return nil
}
