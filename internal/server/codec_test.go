package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	rfidclean "repro"
	"repro/internal/persist"
)

func TestCodecReadingsRoundTrip(t *testing.T) {
	want := []rfidclean.Reading{
		{Time: 0, Readers: rfidclean.NewReaderSet(2, 0, 7)},
		{Time: 1, Readers: rfidclean.NewReaderSet()}, // missed read
		{Time: 2, Readers: rfidclean.NewReaderSet(5)},
		{Time: 300, Readers: rfidclean.NewReaderSet(1, 2, 3, 4, 128)},
	}
	got, err := DecodeStreamReadings(EncodeStreamReadings(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d readings, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Time != want[i].Time || !got[i].Readers.Equal(want[i].Readers) {
			t.Errorf("reading %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got, err := DecodeStreamReadings(EncodeStreamReadings(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}

func TestCodecStatusRoundTrip(t *testing.T) {
	want := StreamStatus{
		ID:         "s42",
		Deployment: "d1",
		Time:       17,
		Readings:   18,
		Frontier:   5,
		Beam:       3,
		Dead:       true,
		Current: []LocationProb{
			{Location: "corridor", P: 0.625},
			{Location: "lab", P: 0.375},
			{Location: "office", P: math.Nextafter(0, 1)}, // smallest subnormal survives
		},
	}
	got, err := DecodeStreamStatus(EncodeStreamStatus(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Deployment != want.Deployment || got.Time != want.Time ||
		got.Readings != want.Readings || got.Frontier != want.Frontier ||
		got.Beam != want.Beam || got.Dead != want.Dead || len(got.Current) != len(want.Current) {
		t.Fatalf("status = %+v, want %+v", got, want)
	}
	for i := range want.Current {
		if got.Current[i].Location != want.Current[i].Location ||
			math.Float64bits(got.Current[i].P) != math.Float64bits(want.Current[i].P) {
			t.Errorf("entry %d = %+v, want bit-identical %+v", i, got.Current[i], want.Current[i])
		}
	}

	// A fresh session: Time -1, no distribution.
	fresh := StreamStatus{ID: "s1", Deployment: "d1", Time: -1}
	got, err = DecodeStreamStatus(EncodeStreamStatus(fresh))
	if err != nil || got.Time != -1 || got.Current != nil {
		t.Fatalf("fresh status round trip = %+v, %v", got, err)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	good := EncodeStreamReadings([]rfidclean.Reading{{Time: 0, Readers: rfidclean.NewReaderSet(1)}})
	cases := map[string][]byte{
		"empty body":      nil,
		"truncated frame": good[:len(good)-1],
		"trailing bytes":  append(append([]byte(nil), good...), 0x00),
		"status frame":    EncodeStreamStatus(StreamStatus{ID: "s1"}),
	}
	// A payload claiming more readings than bytes remain must error, not
	// allocate gigabytes.
	absurd := persist.AppendFrame(nil, []byte{codecKindReadings, 0xff, 0xff, 0xff, 0xff, 0x0f})
	cases["absurd count"] = absurd
	// Truncated inside the varint stream (CRC recomputed so only the codec
	// layer can object).
	payload := []byte{codecKindReadings, 2, 0, 1, 2} // says 2 readings, carries ~1
	cases["short payload"] = persist.AppendFrame(nil, payload)
	for name, buf := range cases {
		if _, err := DecodeStreamReadings(buf); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	if _, err := DecodeStreamStatus(good); err == nil {
		t.Error("status decode accepted a readings frame")
	}
}

func TestCodecNegotiation(t *testing.T) {
	req := func(ct, accept string) *http.Request {
		r, err := http.NewRequest(http.MethodPost, "/v1/stream/s1/readings", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		if ct != "" {
			r.Header.Set("Content-Type", ct)
		}
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		return r
	}
	for _, tc := range []struct {
		ct, accept   string
		body, answer bool
	}{
		{"", "", false, false},
		{"application/json", "application/json", false, false},
		{ContentTypeBinary, "", true, false},
		{ContentTypeBinary + "; q=1", ContentTypeBinary, true, true},
		{"", "application/json, " + ContentTypeBinary, false, true},
		{"", "*/*", false, false}, // wildcard keeps JSON
		// RFC 9110 §12.4.2: q=0 means "not acceptable" — an explicit refusal
		// of the binary codec must select JSON, whether alone or buried in a
		// multi-part header.
		{"", ContentTypeBinary + ";q=0", false, false},
		{"", ContentTypeBinary + "; q=0.0", false, false},
		{"", "application/json;q=1, " + ContentTypeBinary + ";q=0", false, false},
		// Any positive q opts in; a malformed q is no opt-in, not a guess.
		{"", ContentTypeBinary + "; q=0.5", false, true},
		{"", "application/json, " + ContentTypeBinary + ";q=0.001", false, true},
		{"", ContentTypeBinary + ";q=oops", false, false},
	} {
		r := req(tc.ct, tc.accept)
		if got := requestIsBinary(r); got != tc.body {
			t.Errorf("requestIsBinary(ct=%q) = %v, want %v", tc.ct, got, tc.body)
		}
		if got := acceptsBinary(r); got != tc.answer {
			t.Errorf("acceptsBinary(accept=%q) = %v, want %v", tc.accept, got, tc.answer)
		}
	}
}

// benchReadings builds a 500-reading batch shaped like real traffic: mostly
// single-reader detections with some multi-reader overlaps and missed reads.
func benchReadings() []rfidclean.Reading {
	rs := make([]rfidclean.Reading, 500)
	for i := range rs {
		switch i % 7 {
		case 0:
			rs[i] = rfidclean.Reading{Time: i, Readers: rfidclean.NewReaderSet()}
		case 3:
			rs[i] = rfidclean.Reading{Time: i, Readers: rfidclean.NewReaderSet(i%5, (i+1)%5)}
		default:
			rs[i] = rfidclean.Reading{Time: i, Readers: rfidclean.NewReaderSet(i % 5)}
		}
	}
	return rs
}

// BenchmarkCodecEncodeReadings measures framing a 500-reading batch into the
// binary wire format (the hot ingestion path under application/x-rfidclean).
func BenchmarkCodecEncodeReadings(b *testing.B) {
	rs := benchReadings()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf := EncodeStreamReadings(rs); len(buf) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

// BenchmarkCodecDecodeReadings measures parsing and CRC-checking the same
// batch back out.
func BenchmarkCodecDecodeReadings(b *testing.B) {
	buf := EncodeStreamReadings(benchReadings())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeStreamReadings(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBinaryBodyOnJSONEndpoints checks that the JSON-only POST endpoints
// refuse an application/x-rfidclean body with 415 and an error that points
// the client at the endpoints that do speak binary — instead of feeding
// frame bytes to the JSON decoder and answering with a baffling parse error.
func TestBinaryBodyOnJSONEndpoints(t *testing.T) {
	base, _, depID, _ := streamHarness(t, Options{})
	frame := EncodeStreamReadings([]rfidclean.Reading{{Time: 0, Readers: rfidclean.NewReaderSet(0)}})
	for _, path := range []string{"/v1/stream", "/v1/clean", "/v1/clean/batch", "/v1/deployments"} {
		resp, err := http.Post(base+path, ContentTypeBinary, bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		var apiErr struct {
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&apiErr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Errorf("POST %s with binary body = %d, want 415", path, resp.StatusCode)
			continue
		}
		if err != nil {
			t.Errorf("POST %s: 415 body is not a JSON apiError: %v", path, err)
			continue
		}
		if !strings.Contains(apiErr.Error, "/v1/stream/{id}/readings") {
			t.Errorf("POST %s: 415 error %q does not name the binary-speaking endpoint", path, apiErr.Error)
		}
	}

	// Positive control: the same frame is welcome where binary is spoken.
	sid := openStream(t, base, depID, 0)
	resp, err := http.Post(base+"/v1/stream/"+sid+"/readings", ContentTypeBinary, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary POST readings = %d, want 200", resp.StatusCode)
	}
}
