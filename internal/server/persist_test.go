package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	rfidclean "repro"
)

// durable opens a server against dir and mounts it on a test listener.
// Periodic compaction is disabled by default so tests control exactly when
// snapshots happen (opts.SnapshotInterval left zero gets -1).
func durable(t *testing.T, dir string, opts Options) (base string, srv *Server, ts *httptest.Server) {
	t.Helper()
	opts.DataDir = dir
	if opts.SnapshotInterval == 0 {
		opts.SnapshotInterval = -1
	}
	srv, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	ts = httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Close() })
	return ts.URL, srv, ts
}

// crash simulates a hard stop: the WAL writer drains and the files close, but
// no final compaction runs — on disk it looks exactly like a kill right after
// the last fsync. The listener is shut down too so nothing keeps writing.
func crash(srv *Server, ts *httptest.Server) {
	srv.persist.shutdown(false)
	srv.sessions.close()
	ts.Close()
}

// registerDeployment posts the small test deployment and returns its id.
func registerDeployment(t *testing.T, base string, depJSON []byte) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/deployments", "application/json", bytes.NewReader(depJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	var created map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	return created["id"]
}

// getBody fetches a URL and returns the status and raw body bytes, for
// bit-identical comparisons across restarts.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// cleanOne posts one clean request and returns the stored trajectory.
func cleanOne(t *testing.T, base, depID string, readings rfidclean.ReadingSequence) CleanResponse {
	t.Helper()
	resp, out := postClean(t, base, CleanRequest{
		Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 5,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("clean status = %d", resp.StatusCode)
	}
	return out
}

// testReadingsSeed generates a readings sequence off the shared test plan.
func testReadingsSeed(t *testing.T, sys *rfidclean.System, seed uint64, duration int) rfidclean.ReadingSequence {
	t.Helper()
	rng := rfidclean.NewRNG(seed)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(duration), rng)
	if err != nil {
		t.Fatal(err)
	}
	return rfidclean.GenerateReadings(truth, sys.Truth, rng)
}

// queryURLs are the endpoints whose answers must be bit-identical after a
// restart.
func queryURLs(base, id string) []string {
	return []string{
		fmt.Sprintf("%s/v1/trajectories/%s/stay?t=10", base, id),
		fmt.Sprintf("%s/v1/trajectories/%s/match?pattern=%s", base, id, "%3F+lab+%3F"),
		fmt.Sprintf("%s/v1/trajectories/%s/top?k=3", base, id),
		fmt.Sprintf("%s/v1/trajectories/%s/occupancy", base, id),
		fmt.Sprintf("%s/v1/trajectories/%s", base, id),
	}
}

// TestDurableCrashRecovery is the core durability proof: clean trajectories,
// hard-stop the server, reopen the same data directory, and demand the exact
// bytes the first process served — then show fresh ids never collide with
// recovered ones.
func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	depJSON, sys := testDeployment(t)
	base, srv, ts := durable(t, dir, Options{})
	depID := registerDeployment(t, base, depJSON)

	r1 := testReadingsSeed(t, sys, 11, 40)
	r2 := testReadingsSeed(t, sys, 12, 40)
	c1 := cleanOne(t, base, depID, r1)
	c2 := cleanOne(t, base, depID, r2)

	before := make(map[string][]byte)
	for _, id := range []string{c1.ID, c2.ID} {
		for _, u := range queryURLs(base, id) {
			code, body := getBody(t, u)
			if code != http.StatusOK {
				t.Fatalf("pre-crash GET %s = %d", u, code)
			}
			before[strings.TrimPrefix(u, base)] = body
		}
	}
	_, depsBefore := getBody(t, base+"/v1/deployments")
	_, trajsBefore := getBody(t, base+"/v1/trajectories")

	srv.persist.drain()
	crash(srv, ts)

	base2, srv2, _ := durable(t, dir, Options{})
	for path, want := range before {
		code, got := getBody(t, base2+path)
		if code != http.StatusOK {
			t.Fatalf("post-crash GET %s = %d", path, code)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("GET %s changed across restart:\n  before: %s\n  after:  %s", path, want, got)
		}
	}
	if _, got := getBody(t, base2+"/v1/deployments"); !bytes.Equal(got, depsBefore) {
		t.Errorf("deployment list changed across restart: %s vs %s", depsBefore, got)
	}
	if _, got := getBody(t, base2+"/v1/trajectories"); !bytes.Equal(got, trajsBefore) {
		t.Errorf("trajectory list changed across restart: %s vs %s", trajsBefore, got)
	}

	// Fresh ids continue past the recovered counters.
	c3 := cleanOne(t, base2, depID, r1)
	if c3.ID == c1.ID || c3.ID == c2.ID {
		t.Fatalf("fresh trajectory id %s collides with a recovered one", c3.ID)
	}
	if n, ok := idNum("t", c3.ID); !ok || n != 3 {
		t.Fatalf("fresh trajectory id = %s, want t3", c3.ID)
	}
	if got := registerDeployment(t, base2, depJSON); got != "d2" {
		t.Fatalf("fresh deployment id = %s, want d2", got)
	}

	m := scrape(t, base2)
	for _, series := range []string{
		"rfidclean_persist_recovered_deployments 1",
		"rfidclean_persist_recovered_trajectories 2",
		"rfidclean_persist_recovery_dropped 0",
		"rfidclean_persist_recovery_truncated 0",
	} {
		if !strings.Contains(m, series) {
			t.Errorf("metrics missing %q", series)
		}
	}

	// A graceful close compacts; a third boot recovers from the snapshot.
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(filepath.Join(dir, trajSnapshotFile)); err != nil || st.Size() == 0 {
		t.Fatalf("close did not write a snapshot: %v", err)
	}
	base3, _, _ := durable(t, dir, Options{})
	if _, got := getBody(t, base3+"/v1/deployments"); len(got) == 0 {
		t.Fatal("third boot lost the deployments")
	}
	var rows []TrajectoryRow
	if code := getJSON(t, base3+"/v1/trajectories", &rows); code != http.StatusOK || len(rows) != 3 {
		t.Fatalf("third boot trajectories = %d rows (status %d), want 3", len(rows), code)
	}
}

// TestDurableCorruptWALTail chops the last WAL frame short: recovery must
// keep the valid prefix, flag the truncation, and keep serving.
func TestDurableCorruptWALTail(t *testing.T) {
	dir := t.TempDir()
	depJSON, sys := testDeployment(t)
	base, srv, ts := durable(t, dir, Options{})
	depID := registerDeployment(t, base, depJSON)
	c1 := cleanOne(t, base, depID, testReadingsSeed(t, sys, 21, 40))
	srv.persist.drain()
	c2 := cleanOne(t, base, depID, testReadingsSeed(t, sys, 22, 40))
	srv.persist.drain()
	crash(srv, ts)

	walPath := filepath.Join(dir, trajWALFile)
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, st.Size()-7); err != nil {
		t.Fatal(err)
	}

	base2, _, _ := durable(t, dir, Options{})
	if code, _ := getBody(t, fmt.Sprintf("%s/v1/trajectories/%s", base2, c1.ID)); code != http.StatusOK {
		t.Fatalf("prefix trajectory %s lost (%d)", c1.ID, code)
	}
	if code, _ := getBody(t, fmt.Sprintf("%s/v1/trajectories/%s", base2, c2.ID)); code != http.StatusNotFound {
		t.Fatalf("chopped trajectory %s should be gone, got %d", c2.ID, code)
	}
	if !strings.Contains(scrape(t, base2), "rfidclean_persist_recovery_truncated 1") {
		t.Error("metrics missing the truncation flag")
	}
}

// TestDurableGarbageWALTail appends junk after the last valid frame; every
// record before it survives.
func TestDurableGarbageWALTail(t *testing.T) {
	dir := t.TempDir()
	depJSON, sys := testDeployment(t)
	base, srv, ts := durable(t, dir, Options{})
	depID := registerDeployment(t, base, depJSON)
	c1 := cleanOne(t, base, depID, testReadingsSeed(t, sys, 31, 40))
	srv.persist.drain()
	crash(srv, ts)

	f, err := os.OpenFile(filepath.Join(dir, trajWALFile), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x99garbage-not-a-frame")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	base2, _, _ := durable(t, dir, Options{})
	if code, _ := getBody(t, fmt.Sprintf("%s/v1/trajectories/%s", base2, c1.ID)); code != http.StatusOK {
		t.Fatalf("trajectory %s lost to a garbage tail (%d)", c1.ID, code)
	}
	if !strings.Contains(scrape(t, base2), "rfidclean_persist_recovery_truncated 1") {
		t.Error("metrics missing the truncation flag")
	}
}

// TestDurableDeleteTombstones: deletions survive a crash — neither a deleted
// trajectory nor a deleted deployment (and its trajectories) resurrect, and
// their ids are never reissued.
func TestDurableDeleteTombstones(t *testing.T) {
	dir := t.TempDir()
	depJSON, sys := testDeployment(t)
	base, srv, ts := durable(t, dir, Options{})
	depID := registerDeployment(t, base, depJSON)
	c1 := cleanOne(t, base, depID, testReadingsSeed(t, sys, 41, 40))
	c2 := cleanOne(t, base, depID, testReadingsSeed(t, sys, 42, 40))

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/trajectories/"+c1.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	srv.persist.drain()
	crash(srv, ts)

	base2, srv2, ts2 := durable(t, dir, Options{})
	if code, _ := getBody(t, fmt.Sprintf("%s/v1/trajectories/%s", base2, c1.ID)); code != http.StatusNotFound {
		t.Fatalf("deleted trajectory %s resurrected (%d)", c1.ID, code)
	}
	if code, _ := getBody(t, fmt.Sprintf("%s/v1/trajectories/%s", base2, c2.ID)); code != http.StatusOK {
		t.Fatalf("surviving trajectory %s lost (%d)", c2.ID, code)
	}
	if c3 := cleanOne(t, base2, depID, testReadingsSeed(t, sys, 43, 40)); c3.ID != "t3" {
		t.Fatalf("post-restart id = %s, want t3 (t1 tombstoned, t2 live)", c3.ID)
	}

	// Now delete the deployment itself; its trajectories go with it.
	req, _ = http.NewRequest(http.MethodDelete, base2+"/v1/deployments/"+depID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var deleted struct {
		Deleted      string `json:"deleted"`
		Trajectories int    `json:"trajectories"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&deleted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || deleted.Trajectories != 2 {
		t.Fatalf("deployment delete = %d, %+v; want 200 dropping 2 trajectories", resp.StatusCode, deleted)
	}
	srv2.persist.drain()
	crash(srv2, ts2)

	base3, _, _ := durable(t, dir, Options{})
	var rows []json.RawMessage
	if code := getJSON(t, base3+"/v1/deployments", &rows); code != http.StatusOK || len(rows) != 0 {
		t.Fatalf("deleted deployment resurrected: %d rows (status %d)", len(rows), code)
	}
	var trows []TrajectoryRow
	if code := getJSON(t, base3+"/v1/trajectories", &trows); code != http.StatusOK || len(trows) != 0 {
		t.Fatalf("deleted deployment's trajectories resurrected: %d rows", len(trows))
	}
	if got := registerDeployment(t, base3, depJSON); got != "d2" {
		t.Fatalf("deployment id after delete+restart = %s, want d2 (d1 spent)", got)
	}
}

// TestDurableBudgetOnRecovery reopens a full data directory under a byte
// budget: the oldest recovered graphs are dropped first, counted as
// evictions, and stay dead on the next boot.
func TestDurableBudgetOnRecovery(t *testing.T) {
	dir := t.TempDir()
	depJSON, sys := testDeployment(t)
	base, srv, ts := durable(t, dir, Options{})
	depID := registerDeployment(t, base, depJSON)
	var cs []CleanResponse
	for seed := uint64(51); seed < 55; seed++ {
		cs = append(cs, cleanOne(t, base, depID, testReadingsSeed(t, sys, seed, 40)))
	}
	srv.persist.drain()
	crash(srv, ts)

	// Budget for roughly the two largest graphs: the two oldest must go.
	budget := int64(cs[2].Bytes + cs[3].Bytes)
	base2, srv2, ts2 := durable(t, dir, Options{MaxStoreBytes: budget})
	var rows []TrajectoryRow
	if code := getJSON(t, base2+"/v1/trajectories", &rows); code != http.StatusOK {
		t.Fatalf("list status = %d", code)
	}
	if len(rows) != 2 || rows[0].ID != cs[2].ID || rows[1].ID != cs[3].ID {
		t.Fatalf("budgeted recovery kept %+v, want the two newest (%s, %s)", rows, cs[2].ID, cs[3].ID)
	}
	m := scrape(t, base2)
	for _, series := range []string{
		"rfidclean_persist_recovery_dropped 2",
		"rfidclean_store_evictions_total 2",
	} {
		if !strings.Contains(m, series) {
			t.Errorf("metrics missing %q", series)
		}
	}

	// The drops were tombstoned: a third boot does not resurrect them and
	// reports nothing newly dropped.
	srv2.persist.drain()
	crash(srv2, ts2)
	base3, _, _ := durable(t, dir, Options{MaxStoreBytes: budget})
	rows = nil
	if code := getJSON(t, base3+"/v1/trajectories", &rows); code != http.StatusOK || len(rows) != 2 {
		t.Fatalf("third boot rows = %+v (status %d), want the same 2", rows, code)
	}
	if !strings.Contains(scrape(t, base3), "rfidclean_persist_recovery_dropped 0") {
		t.Error("third boot re-dropped tombstoned trajectories")
	}
}

// TestDurableCompaction drives an explicit flush+compact cycle and proves a
// crash afterwards recovers from snapshot plus the post-compaction WAL.
func TestDurableCompaction(t *testing.T) {
	dir := t.TempDir()
	depJSON, sys := testDeployment(t)
	base, srv, ts := durable(t, dir, Options{})
	depID := registerDeployment(t, base, depJSON)
	c1 := cleanOne(t, base, depID, testReadingsSeed(t, sys, 61, 40))
	c2 := cleanOne(t, base, depID, testReadingsSeed(t, sys, 62, 40))
	srv.persist.drain()
	if srv.persist.wal.Size() == 0 {
		t.Fatal("WAL empty after two cleans")
	}
	srv.persist.compactNow()
	if srv.persist.wal.Size() != 0 {
		t.Fatalf("WAL not truncated by compaction (size %d)", srv.persist.wal.Size())
	}
	if st, err := os.Stat(filepath.Join(dir, trajSnapshotFile)); err != nil || st.Size() == 0 {
		t.Fatalf("compaction wrote no snapshot: %v", err)
	}
	if !strings.Contains(scrape(t, base), "rfidclean_persist_compactions_total 1") {
		t.Error("metrics missing the compaction")
	}

	// Post-compaction mutations land in the fresh WAL.
	c3 := cleanOne(t, base, depID, testReadingsSeed(t, sys, 63, 40))
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/trajectories/"+c1.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.persist.drain()
	crash(srv, ts)

	base2, _, _ := durable(t, dir, Options{})
	var rows []TrajectoryRow
	if code := getJSON(t, base2+"/v1/trajectories", &rows); code != http.StatusOK {
		t.Fatalf("list status = %d", code)
	}
	want := []string{c2.ID, c3.ID}
	if len(rows) != 2 || rows[0].ID != want[0] || rows[1].ID != want[1] {
		t.Fatalf("recovered %+v, want %v", rows, want)
	}
	if c4 := cleanOne(t, base2, depID, testReadingsSeed(t, sys, 64, 40)); c4.ID != "t4" {
		t.Fatalf("post-compaction fresh id = %s, want t4", c4.ID)
	}
}

// TestDurableIDCountersSurviveEmptyState: even after everything is deleted
// and compacted away, the meta records keep the counters monotonic.
func TestDurableIDCountersSurviveEmptyState(t *testing.T) {
	dir := t.TempDir()
	depJSON, sys := testDeployment(t)
	base, srv, _ := durable(t, dir, Options{})
	depID := registerDeployment(t, base, depJSON)
	c1 := cleanOne(t, base, depID, testReadingsSeed(t, sys, 71, 40))
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/trajectories/"+c1.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, base+"/v1/deployments/"+depID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := srv.Close(); err != nil { // graceful: final compaction erases the tombstones
		t.Fatal(err)
	}

	base2, _, _ := durable(t, dir, Options{})
	if got := registerDeployment(t, base2, depJSON); got != "d2" {
		t.Fatalf("deployment id = %s, want d2", got)
	}
	if c := cleanOne(t, base2, "d2", testReadingsSeed(t, sys, 72, 40)); c.ID != "t2" {
		t.Fatalf("trajectory id = %s, want t2", c.ID)
	}
}

// TestDurableCorruptDeploymentsFailsBoot: deployments.json is written
// atomically, so corruption means something external went wrong — boot must
// fail loudly rather than silently serve an empty registry over a data
// directory full of trajectories.
func TestDurableCorruptDeploymentsFailsBoot(t *testing.T) {
	dir := t.TempDir()
	depJSON, _ := testDeployment(t)
	base, srv, ts := durable(t, dir, Options{})
	registerDeployment(t, base, depJSON)
	srv.persist.drain()
	crash(srv, ts)

	if err := os.WriteFile(filepath.Join(dir, deploymentsFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{DataDir: dir, SnapshotInterval: -1}); err == nil {
		t.Fatal("Open succeeded over a corrupt deployments snapshot")
	}
}

// TestPersistenceOffByDefault: without a data directory nothing is wired in —
// the hot path never sees the persister and no files appear.
func TestPersistenceOffByDefault(t *testing.T) {
	srv, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.persist != nil || srv.store.(*trajStore).persist != nil {
		t.Fatal("persistence wired in without DataDir")
	}
}
