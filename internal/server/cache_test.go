package server

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	rfidclean "repro"
)

func TestConstraintCacheHitMiss(t *testing.T) {
	var calls atomic.Int64
	infer := func() (*rfidclean.ConstraintSet, error) {
		calls.Add(1)
		return rfidclean.NewConstraintSet(), nil
	}
	c := newConstraintCache(2)
	p1 := rfidclean.ConstraintParams{MaxSpeed: 2, MinStay: 5}
	p2 := rfidclean.ConstraintParams{MaxSpeed: 2, MinStay: 10}
	p3 := rfidclean.ConstraintParams{MaxSpeed: 3, MinStay: 5, TTCap: 7}

	ic1, err, hit := c.get(p1, infer)
	if err != nil || hit || ic1 == nil {
		t.Fatalf("first get: ic=%v err=%v hit=%v", ic1, err, hit)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d after first get", calls.Load())
	}
	ic1b, err, hit := c.get(p1, infer)
	if err != nil || !hit || ic1b != ic1 {
		t.Fatalf("second get: same-pointer hit expected (hit=%v)", hit)
	}
	if calls.Load() != 1 {
		t.Fatalf("cache hit ran inference (calls = %d)", calls.Load())
	}

	// Fill past capacity: p1 (LRU after p2/p3 insertions) is evicted.
	if _, _, hit := c.get(p2, infer); hit {
		t.Fatal("p2 unexpectedly hit")
	}
	if _, _, hit := c.get(p3, infer); hit {
		t.Fatal("p3 unexpectedly hit")
	}
	if n := c.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	if _, _, hit := c.get(p3, infer); !hit {
		t.Fatal("p3 should still be cached")
	}
	if _, _, hit := c.get(p1, infer); hit {
		t.Fatal("p1 should have been LRU-evicted")
	}
	if calls.Load() != 4 {
		t.Fatalf("calls = %d, want 4 (p1, p2, p3, p1 again)", calls.Load())
	}
}

func TestConstraintCacheRecencyOrder(t *testing.T) {
	infer := func() (*rfidclean.ConstraintSet, error) { return rfidclean.NewConstraintSet(), nil }
	c := newConstraintCache(2)
	p1 := rfidclean.ConstraintParams{MaxSpeed: 1}
	p2 := rfidclean.ConstraintParams{MaxSpeed: 2}
	p3 := rfidclean.ConstraintParams{MaxSpeed: 3}
	c.get(p1, infer)
	c.get(p2, infer)
	c.get(p1, infer) // touch p1 so p2 becomes LRU
	c.get(p3, infer) // evicts p2
	if _, _, hit := c.get(p1, infer); !hit {
		t.Error("recently used p1 was evicted")
	}
	if _, _, hit := c.get(p2, infer); hit {
		t.Error("LRU p2 survived eviction")
	}
}

func TestConstraintCacheSingleInference(t *testing.T) {
	var calls atomic.Int64
	c := newConstraintCache(0)
	p := rfidclean.ConstraintParams{MaxSpeed: 2, MinStay: 5}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ic, err, _ := c.get(p, func() (*rfidclean.ConstraintSet, error) {
				calls.Add(1)
				return rfidclean.NewConstraintSet(), nil
			})
			if err != nil || ic == nil {
				t.Errorf("concurrent get: ic=%v err=%v", ic, err)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("concurrent misses ran inference %d times, want 1", calls.Load())
	}
}

func TestConstraintCacheCachesErrors(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	infer := func() (*rfidclean.ConstraintSet, error) {
		calls.Add(1)
		return nil, boom
	}
	c := newConstraintCache(0)
	p := rfidclean.ConstraintParams{MaxSpeed: -1}
	if _, err, _ := c.get(p, infer); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err, hit := c.get(p, infer); !errors.Is(err, boom) || !hit {
		t.Fatalf("second err = %v hit = %v; deterministic error should be cached", err, hit)
	}
	if calls.Load() != 1 {
		t.Fatalf("error recomputed (%d calls)", calls.Load())
	}
}

// TestConstraintCacheRecoversPanic: sync.Once marks itself done even when
// its function panics, so before the recover() guard a panicking inference
// permanently poisoned the entry — every later hit read the zero values (nil
// set, nil error) and crashed the handler far from the cause. Now the panic
// is converted into a cached error, for the first caller and all later hits.
func TestConstraintCacheRecoversPanic(t *testing.T) {
	var calls atomic.Int64
	infer := func() (*rfidclean.ConstraintSet, error) {
		calls.Add(1)
		panic("inference exploded")
	}
	c := newConstraintCache(0)
	p := rfidclean.ConstraintParams{MaxSpeed: 1}
	ic, err, _ := c.get(p, infer)
	if ic != nil || err == nil || !strings.Contains(err.Error(), "inference exploded") {
		t.Fatalf("first get = (%v, %v), want nil set and the panic as an error", ic, err)
	}
	ic, err, hit := c.get(p, infer)
	if ic != nil || err == nil || !hit {
		t.Fatalf("second get = (%v, %v, hit=%v); the panic-error should be cached", ic, err, hit)
	}
	if calls.Load() != 1 {
		t.Fatalf("panicking inference ran %d times, want 1", calls.Load())
	}
}
