package server

import (
	rfidclean "repro"
)

// This file defines the narrow seams between the HTTP handlers and the
// server's stateful subsystems. Handlers program against these interfaces;
// the concrete implementations (trajStore, sessionStore, constraintCache)
// stay package-private and are wired up in Open, which also owns the
// persistence and flight-recorder hooks that need the concrete types.
// Keeping the handler surface this small is what lets cmd/rfidcleand run
// the same server code as one worker shard of a sharded deployment
// (internal/shard): everything a shard must agree on — id allocation,
// lookup, deletion — is visible here, and nothing else leaks.

// trajectoryStore is the handler-facing surface of the cleaned-graph store:
// allocate ids and admit graphs, resolve and delete them, and report
// occupancy for /healthz. Persistence, recovery, eviction wiring and
// snapshotting are deliberately absent — they belong to Open and the
// persister, not to request handlers.
type trajectoryStore interface {
	// add stores one cleaned graph under a fresh id and returns it.
	add(depID string, c *rfidclean.Cleaned) string
	// addBatch stores every non-nil graph in one critical section; the
	// returned slice is positional, "" for nil slots.
	addBatch(depID string, cs []*rfidclean.Cleaned) []string
	// get resolves an id, touching its LRU stamp; nil when unknown.
	get(id string) *trajectory
	// delete removes one trajectory, reporting whether it existed.
	delete(id string) bool
	// deleteByDep removes every trajectory of a deployment, returning how
	// many were dropped.
	deleteByDep(depID string) int
	// stats reports the live item count and estimated bytes.
	stats() (count int, bytes int64)
	// list returns one row per stored trajectory, ids in numeric order.
	list() []TrajectoryRow
}

// sessionRegistry is the handler-facing surface of the streaming-session
// layer: open/resolve/close sessions and answer the liveness questions the
// stream endpoints ask. The reaper, tombstone ring and eviction policy are
// implementation details of sessionStore.
type sessionRegistry interface {
	// open creates a session pinned to dep and the given constraint state;
	// nil when the registry has shut down.
	open(dep *deployment, prms rfidclean.ConstraintParams, ic *rfidclean.ConstraintSet, state *rfidclean.BuildState, f *rfidclean.Filter) *streamSession
	// get resolves a session id; nil when unknown or closed.
	get(id string) *streamSession
	// remove deletes a session, reporting whether it existed.
	remove(id string) bool
	// isGone reports that the id names a session that existed and closed
	// (the 410-vs-404 distinction).
	isGone(id string) bool
	// count returns the number of open sessions.
	count() int
	// readingBudget is the per-session smoothing-buffer cap (<= 0:
	// unlimited).
	readingBudget() int
	// drainSubscribers force-closes every SSE subscriber without closing
	// the sessions (graceful-shutdown hook).
	drainSubscribers()
	// close stops the reaper and drops every session; idempotent.
	close()
}

// constraintSource memoizes constraint inference for one deployment. get
// runs infer at most once per parameter set (concurrent misses share the
// computation); hit reports whether the entry already existed.
type constraintSource interface {
	get(p rfidclean.ConstraintParams, infer func() (*rfidclean.ConstraintSet, error)) (ic *rfidclean.ConstraintSet, err error, hit bool)
	len() int
}

// Interface conformance is pinned at compile time so a drifting method set
// fails here, next to the contract, rather than at the call sites.
var (
	_ trajectoryStore  = (*trajStore)(nil)
	_ sessionRegistry  = (*sessionStore)(nil)
	_ constraintSource = (*constraintCache)(nil)
)

// nextStridedID returns the smallest n > cur with n % stride == offset;
// stride <= 1 degenerates to cur+1. Id counters in a sharded deployment
// advance through this so worker shard i of N mints ids congruent to i mod
// N: two shards can never mint the same id, and the router derives the
// owner of an existing id from its residue alone — no ring lookup, no
// shared counter. It also rounds counters recovered from a pre-sharding
// data directory (or a different shard assignment) up to the shard's own
// residue class instead of trusting their residue.
func nextStridedID(cur, stride, offset int) int {
	n := cur + 1
	if stride <= 1 {
		return n
	}
	rem := n % stride
	if rem <= offset {
		return n + offset - rem
	}
	return n + stride - rem + offset
}
