package server

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"log/slog"

	"repro/internal/obs"
)

// statusWriter captures the status code written by a handler so the access
// log and trace can report it. Unwrap lets http.ResponseController reach the
// underlying writer (flush, deadlines).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// sseLogInfo carries SSE delivery stats from the hub's write loop back to
// the access log: an events stream is effectively unbounded, so its log line
// reports time-to-first-event and delivered volume, not just total duration.
type sseLogInfo struct {
	start      time.Time
	firstNanos atomic.Int64 // attach-to-first-event latency; 0 until an event lands
	events     atomic.Int64
	bytes      atomic.Int64
}

// noteEvent books one delivered event of n bytes. Nil-safe so the hub can
// call it unconditionally.
func (i *sseLogInfo) noteEvent(n int) {
	if i == nil {
		return
	}
	if i.events.Add(1) == 1 {
		i.firstNanos.Store(time.Since(i.start).Nanoseconds())
	}
	i.bytes.Add(int64(n))
}

type sseLogKey struct{}

// sseInfoFrom returns the request's SSE log carrier, or nil.
func sseInfoFrom(ctx context.Context) *sseLogInfo {
	info, _ := ctx.Value(sseLogKey{}).(*sseLogInfo)
	return info
}

// ServeHTTP implements http.Handler. Every request gets a request ID (echoed
// from the client's X-Request-ID or generated) that appears on the response,
// in error bodies, and in the access log; /v1/ requests additionally record
// a span trace addressable by that ID at /debug/traces, retained under the
// recorder's tail-biased policy, and feed the per-endpoint exemplar
// histogram on /metrics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	// Setting the response header before dispatch lets every write site
	// (including writeError deep in handlers) read the ID back off the
	// header map without threading it through call signatures.
	w.Header().Set("X-Request-ID", reqID)
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()

	api := strings.HasPrefix(r.URL.Path, "/v1/")
	var endpoint string
	if api {
		endpoint = classifyEndpoint(r.Method, r.URL.Path)
		s.metrics.inflight.add(1)
		defer s.metrics.inflight.add(-1)
	}
	var sse *sseLogInfo
	if endpoint == "stream_events" {
		sse = &sseLogInfo{start: start}
		r = r.WithContext(context.WithValue(r.Context(), sseLogKey{}, sse))
	}
	if api {
		var tr *obs.Trace
		var root *obs.Span
		if s.recorder != nil {
			tr = obs.NewTrace(reqID)
			var ctx context.Context
			ctx, root = obs.Start(obs.WithTrace(r.Context(), tr), "http.request")
			root.Str("method", r.Method).Str("path", r.URL.Path)
			r = r.WithContext(ctx)
		}
		defer func() {
			d := time.Since(start)
			root.Int("status", int64(sw.status))
			root.End()
			kept := s.recorder.RecordRequest(tr, endpoint, d, sw.status)
			exID := reqID
			if tr == nil {
				exID = "" // tracing off: no exemplar to link
			}
			s.metrics.requestSeconds.observe(endpoint, d, exID, kept)
		}()
	}
	defer func() {
		// Probe endpoints are scraped constantly; keep them out of the
		// Info-level log.
		level := slog.LevelInfo
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			level = slog.LevelDebug
		}
		attrs := []slog.Attr{
			slog.String("requestId", reqID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", time.Since(start)),
		}
		if sse != nil {
			attrs = append(attrs,
				slog.Duration("timeToFirstEvent", time.Duration(sse.firstNanos.Load())),
				slog.Int64("eventsDelivered", sse.events.Load()),
				slog.Int64("bytesDelivered", sse.bytes.Load()),
			)
		}
		s.logger.LogAttrs(r.Context(), level, "request", attrs...)
	}()
	s.mux.ServeHTTP(sw, r)
}

// debugTracesResponse is the GET /debug/traces body.
type debugTracesResponse struct {
	// Capacity is the trace ring size; Recorded counts traces ever recorded
	// (held + evicted).
	Capacity int    `json:"capacity"`
	Recorded uint64 `json:"recorded"`
	// Traces are the requested span trees, newest first.
	Traces []obs.TraceExport `json:"traces"`
}

// handleDebugTraces serves recent request traces: all held traces newest
// first, ?limit=N to cap the count, ?id=<request id> to fetch one.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	if s.recorder == nil {
		writeError(w, http.StatusNotFound, "tracing is disabled (negative trace buffer)")
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		tr := s.recorder.Find(id)
		if tr == nil {
			writeError(w, http.StatusNotFound, "no recorded trace for request id %q", id)
			return
		}
		writeJSON(w, http.StatusOK, tr.Export())
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		var err error
		if limit, err = strconv.Atoi(q); err != nil || limit < 1 {
			writeError(w, http.StatusBadRequest, "invalid ?limit=")
			return
		}
	}
	held := s.recorder.Snapshot(limit)
	out := debugTracesResponse{
		Capacity: s.recorder.Capacity(),
		Recorded: s.recorder.Added(),
		Traces:   make([]obs.TraceExport, len(held)),
	}
	for i, tr := range held {
		out.Traces[i] = tr.Export()
	}
	writeJSON(w, http.StatusOK, out)
}
