package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"log/slog"

	"repro/internal/obs"
)

// statusWriter captures the status code written by a handler so the access
// log and trace can report it. Unwrap lets http.ResponseController reach the
// underlying writer (flush, deadlines).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// ServeHTTP implements http.Handler. Every request gets a request ID (echoed
// from the client's X-Request-ID or generated) that appears on the response,
// in error bodies, and in the access log; /v1/ requests additionally record
// a span trace addressable by that ID at /debug/traces.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	// Setting the response header before dispatch lets every write site
	// (including writeError deep in handlers) read the ID back off the
	// header map without threading it through call signatures.
	w.Header().Set("X-Request-ID", reqID)
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()

	api := strings.HasPrefix(r.URL.Path, "/v1/")
	if api {
		s.metrics.inflight.add(1)
		defer s.metrics.inflight.add(-1)
	}
	var tr *obs.Trace
	if api && s.recorder != nil {
		tr = obs.NewTrace(reqID)
		ctx, root := obs.Start(obs.WithTrace(r.Context(), tr), "http.request")
		root.Str("method", r.Method).Str("path", r.URL.Path)
		r = r.WithContext(ctx)
		defer func() {
			root.Int("status", int64(sw.status))
			root.End()
			s.recorder.Record(tr)
		}()
	}
	defer func() {
		// Probe endpoints are scraped constantly; keep them out of the
		// Info-level log.
		level := slog.LevelInfo
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			level = slog.LevelDebug
		}
		s.logger.LogAttrs(r.Context(), level, "request",
			slog.String("requestId", reqID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", time.Since(start)),
		)
	}()
	s.mux.ServeHTTP(sw, r)
}

// debugTracesResponse is the GET /debug/traces body.
type debugTracesResponse struct {
	// Capacity is the trace ring size; Recorded counts traces ever recorded
	// (held + evicted).
	Capacity int    `json:"capacity"`
	Recorded uint64 `json:"recorded"`
	// Traces are the requested span trees, newest first.
	Traces []obs.TraceExport `json:"traces"`
}

// handleDebugTraces serves recent request traces: all held traces newest
// first, ?limit=N to cap the count, ?id=<request id> to fetch one.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	if s.recorder == nil {
		writeError(w, http.StatusNotFound, "tracing is disabled (negative trace buffer)")
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		tr := s.recorder.Find(id)
		if tr == nil {
			writeError(w, http.StatusNotFound, "no recorded trace for request id %q", id)
			return
		}
		writeJSON(w, http.StatusOK, tr.Export())
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		var err error
		if limit, err = strconv.Atoi(q); err != nil || limit < 1 {
			writeError(w, http.StatusBadRequest, "invalid ?limit=")
			return
		}
	}
	held := s.recorder.Snapshot(limit)
	out := debugTracesResponse{
		Capacity: s.recorder.Capacity(),
		Recorded: s.recorder.Added(),
		Traces:   make([]obs.TraceExport, len(held)),
	}
	for i, tr := range held {
		out.Traces[i] = tr.Export()
	}
	writeJSON(w, http.StatusOK, out)
}
