//go:build race

package server

// loadSubscribers under the race detector: each SSE subscriber costs several
// goroutines (handler, transport read/write loops, the test's reader), and
// the detector budgets ~8k goroutines and slows everything ~10x — 2000
// subscribers would trip the budget before measuring anything. The full-size
// fleet runs in the regular (non-race) test job.
const loadSubscribers = 256
