// Package server exposes the cleaning framework as an HTTP service: upload
// a deployment (map + readers), post reading sequences to be cleaned, then
// query the resulting conditioned trajectory graphs — the warehousing
// workflow the paper's §5 remark sketches (clean once, query many times).
//
// The API is JSON over HTTP:
//
//	POST   /v1/deployments                 deployment JSON -> {"id": ...}
//	GET    /v1/deployments                 list deployments
//	POST   /v1/clean                       CleanRequest -> CleanResponse
//	POST   /v1/clean/batch                 BatchCleanRequest -> []BatchCleanResult
//	GET    /v1/trajectories/{id}/stay?t=N  stay-query distribution
//	GET    /v1/trajectories/{id}/match?pattern=...  trajectory query
//	GET    /v1/trajectories/{id}/top?k=N   k most probable trajectories
//	GET    /v1/trajectories/{id}/occupancy expected seconds per location
//	DELETE /v1/trajectories/{id}           evict a cleaned graph
//
// The server keeps everything in memory; it is a query head, not a durable
// store.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	rfidclean "repro"
)

// Server is the HTTP query head. Create one with New and mount it as an
// http.Handler.
type Server struct {
	mu           sync.Mutex
	deployments  map[string]*deployment
	trajectories map[string]*trajectory
	nextDep      int
	nextTraj     int
	workers      int

	mux *http.ServeMux
}

// Options configures a Server.
type Options struct {
	// Workers caps how many sequences a batch clean processes concurrently.
	// Zero or negative uses GOMAXPROCS.
	Workers int
}

type deployment struct {
	id  string
	dep *rfidclean.Deployment
	sys *rfidclean.System
}

type trajectory struct {
	id      string
	depID   string
	cleaned *rfidclean.Cleaned
}

// New returns a ready-to-serve Server with default options.
func New() *Server { return NewWithOptions(Options{}) }

// NewWithOptions returns a ready-to-serve Server.
func NewWithOptions(opts Options) *Server {
	s := &Server{
		deployments:  make(map[string]*deployment),
		trajectories: make(map[string]*trajectory),
		workers:      opts.Workers,
		mux:          http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/deployments", s.handleDeployments)
	s.mux.HandleFunc("/v1/clean", s.handleClean)
	s.mux.HandleFunc("/v1/clean/batch", s.handleCleanBatch)
	s.mux.HandleFunc("/v1/trajectories/", s.handleTrajectory)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleDeployments serves POST (register) and GET (list).
func (s *Server) handleDeployments(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		dep, err := rfidclean.DecodeDeployment(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid deployment: %v", err)
			return
		}
		sys, err := dep.System()
		if err != nil {
			writeError(w, http.StatusBadRequest, "deployment rejected: %v", err)
			return
		}
		s.mu.Lock()
		s.nextDep++
		id := "d" + strconv.Itoa(s.nextDep)
		s.deployments[id] = &deployment{id: id, dep: dep, sys: sys}
		s.mu.Unlock()
		writeJSON(w, http.StatusCreated, map[string]string{"id": id})
	case http.MethodGet:
		type row struct {
			ID        string `json:"id"`
			Name      string `json:"name"`
			Locations int    `json:"locations"`
			Readers   int    `json:"readers"`
		}
		s.mu.Lock()
		rows := make([]row, 0, len(s.deployments))
		for id, d := range s.deployments {
			rows = append(rows, row{
				ID: id, Name: d.dep.Name,
				Locations: d.dep.Plan.NumLocations(),
				Readers:   len(d.dep.Readers),
			})
		}
		s.mu.Unlock()
		sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
		writeJSON(w, http.StatusOK, rows)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// CleanRequest asks the server to clean one reading sequence against a
// registered deployment.
type CleanRequest struct {
	// Deployment is the id returned by POST /v1/deployments.
	Deployment string `json:"deployment"`
	// Readings is the sequence to clean (one reading per timestamp).
	Readings rfidclean.ReadingSequence `json:"readings"`
	// Group optionally carries additional sequences of tags moving
	// together with Readings; all are fused before conditioning.
	Group []rfidclean.ReadingSequence `json:"group,omitempty"`
	// MaxSpeed (m/s) drives TT inference; required, > 0.
	MaxSpeed float64 `json:"maxSpeed"`
	// MinStay (s) drives LT inference on non-corridor locations.
	MinStay int `json:"minStay"`
	// TTCap optionally truncates TT horizons (0 = uncapped).
	TTCap int `json:"ttCap"`
	// StrictEnd selects Definition 2's end-of-window latency semantics.
	StrictEnd bool `json:"strictEnd"`
}

// CleanResponse reports the cleaned trajectory handle and its graph size.
type CleanResponse struct {
	ID    string `json:"id"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Bytes int    `json:"bytes"`
}

func (s *Server) handleClean(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req CleanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	s.mu.Lock()
	dep := s.deployments[req.Deployment]
	s.mu.Unlock()
	if dep == nil {
		writeError(w, http.StatusNotFound, "unknown deployment %q", req.Deployment)
		return
	}
	if req.MaxSpeed <= 0 {
		writeError(w, http.StatusBadRequest, "maxSpeed must be positive")
		return
	}
	ic, err := dep.sys.InferConstraints(req.MaxSpeed, req.MinStay, req.TTCap)
	if err != nil {
		writeError(w, http.StatusBadRequest, "constraint inference: %v", err)
		return
	}
	mode := rfidclean.LenientEnd
	if req.StrictEnd {
		mode = rfidclean.StrictEnd
	}
	opts := &rfidclean.BuildOptions{EndLatency: mode}
	var cleaned *rfidclean.Cleaned
	if len(req.Group) > 0 {
		group := append([]rfidclean.ReadingSequence{req.Readings}, req.Group...)
		cleaned, err = dep.sys.CleanGroup(group, ic, opts)
	} else {
		cleaned, err = dep.sys.Clean(req.Readings, ic, opts)
	}
	switch {
	case errors.Is(err, rfidclean.ErrNoValidTrajectory):
		writeError(w, http.StatusUnprocessableEntity, "readings are inconsistent with the constraints")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "cleaning failed: %v", err)
		return
	}
	s.mu.Lock()
	s.nextTraj++
	id := "t" + strconv.Itoa(s.nextTraj)
	s.trajectories[id] = &trajectory{id: id, depID: dep.id, cleaned: cleaned}
	s.mu.Unlock()
	st := cleaned.Stats()
	writeJSON(w, http.StatusCreated, CleanResponse{ID: id, Nodes: st.Nodes, Edges: st.Edges, Bytes: st.Bytes})
}

// BatchCleanRequest asks the server to clean many independent reading
// sequences against one deployment in a single call. The sequences are
// cleaned concurrently (bounded by the server's worker option) and each
// slot succeeds or fails on its own.
type BatchCleanRequest struct {
	// Deployment is the id returned by POST /v1/deployments.
	Deployment string `json:"deployment"`
	// Sequences are the independent objects' reading sequences.
	Sequences []rfidclean.ReadingSequence `json:"sequences"`
	// MaxSpeed, MinStay, TTCap and StrictEnd mirror CleanRequest and apply
	// to every sequence in the batch.
	MaxSpeed  float64 `json:"maxSpeed"`
	MinStay   int     `json:"minStay"`
	TTCap     int     `json:"ttCap"`
	StrictEnd bool    `json:"strictEnd"`
}

// BatchCleanResult is the outcome for one slot of a batch clean: either a
// stored trajectory (Error empty) or a per-slot failure (ID empty).
type BatchCleanResult struct {
	ID    string `json:"id,omitempty"`
	Nodes int    `json:"nodes,omitempty"`
	Edges int    `json:"edges,omitempty"`
	Bytes int    `json:"bytes,omitempty"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleCleanBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req BatchCleanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	s.mu.Lock()
	dep := s.deployments[req.Deployment]
	s.mu.Unlock()
	if dep == nil {
		writeError(w, http.StatusNotFound, "unknown deployment %q", req.Deployment)
		return
	}
	if req.MaxSpeed <= 0 {
		writeError(w, http.StatusBadRequest, "maxSpeed must be positive")
		return
	}
	if len(req.Sequences) == 0 {
		writeError(w, http.StatusBadRequest, "sequences must be non-empty")
		return
	}
	ic, err := dep.sys.InferConstraints(req.MaxSpeed, req.MinStay, req.TTCap)
	if err != nil {
		writeError(w, http.StatusBadRequest, "constraint inference: %v", err)
		return
	}
	mode := rfidclean.LenientEnd
	if req.StrictEnd {
		mode = rfidclean.StrictEnd
	}
	cleaned, errs := dep.sys.CleanAll(req.Sequences, ic, &rfidclean.BatchOptions{
		Build:   &rfidclean.BuildOptions{EndLatency: mode},
		Workers: s.workers,
	})
	out := make([]BatchCleanResult, len(req.Sequences))
	for i := range req.Sequences {
		if errs[i] != nil {
			out[i] = BatchCleanResult{Error: errs[i].Error()}
			continue
		}
		s.mu.Lock()
		s.nextTraj++
		id := "t" + strconv.Itoa(s.nextTraj)
		s.trajectories[id] = &trajectory{id: id, depID: dep.id, cleaned: cleaned[i]}
		s.mu.Unlock()
		st := cleaned[i].Stats()
		out[i] = BatchCleanResult{ID: id, Nodes: st.Nodes, Edges: st.Edges, Bytes: st.Bytes}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTrajectory routes /v1/trajectories/{id}[/{op}].
func (s *Server) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/trajectories/")
	parts := strings.SplitN(rest, "/", 2)
	id := parts[0]
	op := ""
	if len(parts) == 2 {
		op = parts[1]
	}
	s.mu.Lock()
	traj := s.trajectories[id]
	s.mu.Unlock()
	if traj == nil {
		writeError(w, http.StatusNotFound, "unknown trajectory %q", id)
		return
	}
	if r.Method == http.MethodDelete && op == "" {
		s.mu.Lock()
		delete(s.trajectories, id)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	switch op {
	case "stay":
		s.handleStay(w, r, traj)
	case "match":
		s.handleMatch(w, r, traj)
	case "top":
		s.handleTop(w, r, traj)
	case "occupancy":
		s.handleOccupancy(w, traj)
	case "":
		st := traj.cleaned.Stats()
		writeJSON(w, http.StatusOK, CleanResponse{ID: traj.id, Nodes: st.Nodes, Edges: st.Edges, Bytes: st.Bytes})
	default:
		writeError(w, http.StatusNotFound, "unknown operation %q", op)
	}
}

// LocationProb is one entry of a distribution, labeled with the location
// name.
type LocationProb struct {
	Location string  `json:"location"`
	P        float64 `json:"p"`
}

func (s *Server) handleStay(w http.ResponseWriter, r *http.Request, traj *trajectory) {
	tau, err := strconv.Atoi(r.URL.Query().Get("t"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "missing or invalid ?t= timestamp")
		return
	}
	dist, err := traj.cleaned.StayDistribution(tau)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]LocationProb, 0)
	for loc, p := range dist {
		if p > 0 {
			out = append(out, LocationProb{Location: traj.cleaned.LocationName(loc), P: p})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P > out[j].P })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request, traj *trajectory) {
	pattern := r.URL.Query().Get("pattern")
	if pattern == "" {
		writeError(w, http.StatusBadRequest, "missing ?pattern=")
		return
	}
	p, err := traj.cleaned.Match(pattern)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"p": p})
}

// TopTrajectory is one entry of the top-k answer, rendered as location runs.
type TopTrajectory struct {
	P    float64  `json:"p"`
	Runs []string `json:"runs"` // "location x seconds"
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request, traj *trajectory) {
	k := 1
	if q := r.URL.Query().Get("k"); q != "" {
		var err error
		if k, err = strconv.Atoi(q); err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "invalid ?k=")
			return
		}
	}
	if k > 100 {
		k = 100
	}
	trajs, probs := traj.cleaned.TopK(k)
	out := make([]TopTrajectory, len(trajs))
	for i := range trajs {
		out[i] = TopTrajectory{P: probs[i], Runs: runs(traj.cleaned, trajs[i])}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleOccupancy(w http.ResponseWriter, traj *trajectory) {
	occ, err := traj.cleaned.ExpectedOccupancy()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := make([]LocationProb, 0)
	for loc, sec := range occ {
		if sec > 1e-9 {
			out = append(out, LocationProb{Location: traj.cleaned.LocationName(loc), P: sec})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P > out[j].P })
	writeJSON(w, http.StatusOK, out)
}

// runs renders a trajectory as "location xN" segments.
func runs(c *rfidclean.Cleaned, locs []int) []string {
	var out []string
	start := 0
	for i := 1; i <= len(locs); i++ {
		if i == len(locs) || locs[i] != locs[start] {
			out = append(out, fmt.Sprintf("%s x%d", c.LocationName(locs[start]), i-start))
			start = i
		}
	}
	return out
}
