// Package server exposes the cleaning framework as an HTTP service: upload
// a deployment (map + readers), post reading sequences to be cleaned, then
// query the resulting conditioned trajectory graphs — the warehousing
// workflow the paper's §5 remark sketches (clean once, query many times).
//
// The API is JSON over HTTP:
//
//	POST   /v1/deployments                 deployment JSON -> {"id": ...}
//	GET    /v1/deployments                 list deployments
//	GET    /v1/deployments/{id}            one deployment's row
//	DELETE /v1/deployments/{id}            delete it (and its trajectories)
//	POST   /v1/clean                       CleanRequest -> CleanResponse
//	POST   /v1/clean/batch                 BatchCleanRequest -> []BatchCleanResult
//	POST   /v1/stream                      open a streaming session -> {"id": ...}
//	POST   /v1/stream/{id}/readings        append readings -> StreamStatus
//	GET    /v1/stream/{id}?top=k           current filtered distribution
//	GET    /v1/stream/{id}/events          SSE: delta/smooth/close events
//	POST   /v1/stream/{id}/smooth          offline re-clean of the buffer
//	DELETE /v1/stream/{id}                 close (final smooth unless ?smooth=no)
//	GET    /v1/trajectories                list stored trajectories
//	GET    /v1/trajectories/{id}/stay?t=N  stay-query distribution
//	GET    /v1/trajectories/{id}/match?pattern=...  trajectory query
//	GET    /v1/trajectories/{id}/top?k=N   k most probable trajectories
//	GET    /v1/trajectories/{id}/occupancy expected seconds per location
//	GET    /v1/trajectories/{id}/explain   cleaning explain report
//	DELETE /v1/trajectories/{id}           evict a cleaned graph
//	GET    /healthz                        liveness + store occupancy
//	GET    /metrics                        Prometheus text metrics
//	GET    /debug/traces                   recent request span trees
//
// By default the server keeps everything in memory. With Options.DataDir
// set (the daemon's -data-dir flag) it becomes a system of record:
// deployments and cleaned trajectory graphs are persisted — snapshot plus
// write-ahead log, compacted periodically — and recovered on the next boot
// (see persist.go for the protocol). Constraint inference is memoized per
// deployment (keyed by the clean parameters), POST bodies are size-limited,
// and the trajectory store can run under a byte budget with
// least-recently-queried eviction.
//
// Observability: every response carries an X-Request-ID (echoed or
// generated), each /v1/ request records a span trace addressable by that ID
// at /debug/traces, access lines go to the configured slog logger, and every
// server-side clean collects an explain report that feeds the explain
// endpoint plus the per-phase latency histograms and per-constraint prune
// counters on /metrics.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"log/slog"

	rfidclean "repro"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// Server is the HTTP query head. Create one with New and mount it as an
// http.Handler.
type Server struct {
	workers      int
	maxBody      int64         // <= 0 disables the body cap
	cacheEntries int           // per-deployment constraint cache capacity
	sseHeartbeat time.Duration // comment interval on idle SSE streams (<= 0 disables)
	idStride     int           // id-allocation stride (Options.ShardCount; <= 1: single-node)
	idOffset     int           // this shard's residue class (Options.ShardIndex)

	mu          sync.RWMutex // guards deployments and nextDep
	deployments map[string]*deployment
	nextDep     int

	store    trajectoryStore
	sessions sessionRegistry
	metrics  *metrics
	logger   *slog.Logger
	recorder *obs.Recorder // nil when tracing is disabled
	persist  *persister    // nil when Options.DataDir is unset
	flight   *flightSink   // nil when the flight recorder is disabled
	mux      *http.ServeMux
}

// Options configures a Server.
type Options struct {
	// Workers caps how many sequences a batch clean processes concurrently.
	// Zero or negative uses GOMAXPROCS.
	Workers int
	// MaxBodyBytes caps the size of POST request bodies; oversized requests
	// are rejected with 413. Zero uses the default (32 MiB); negative
	// disables the cap.
	MaxBodyBytes int64
	// MaxStoreBytes caps the total estimated size of stored trajectory
	// graphs; past it, the least-recently-queried graphs are evicted. Zero
	// or negative means unlimited.
	MaxStoreBytes int64
	// ConstraintCacheEntries caps the per-deployment constraint cache
	// (zero or negative uses the default, 64 entries).
	ConstraintCacheEntries int
	// MaxSessions caps concurrently open streaming sessions; at capacity
	// the least-recently-active session is evicted. Zero uses the default
	// (1024); negative removes the cap.
	MaxSessions int
	// SessionTTL is how long an idle streaming session lives before the
	// background reaper closes it. Zero uses the default (15 minutes);
	// negative disables reaping.
	SessionTTL time.Duration
	// MaxSessionReadings caps the readings a session buffers for offline
	// smoothing. Zero uses the default (65536); negative removes the cap.
	MaxSessionReadings int
	// SubscriberBuffer caps the events buffered per SSE subscriber; a
	// subscriber whose buffer is full when an event arrives is evicted so
	// it can never block the ingestion hot path. Zero uses the default
	// (64); values below 1 are clamped to 1.
	SubscriberBuffer int
	// EventHistory is how many recent events each session retains for
	// Last-Event-ID resume. Zero uses the default (256); negative disables
	// resume.
	EventHistory int
	// SSEHeartbeat is the comment interval on idle event streams (also the
	// cadence at which a live subscriber refreshes its session's idle
	// clock). Zero uses the default (15s); negative disables heartbeats.
	SSEHeartbeat time.Duration
	// Logger receives structured access logs and server events. Nil
	// discards them.
	Logger *slog.Logger
	// TraceBuffer is how many recent request traces GET /debug/traces can
	// serve (the span-tree ring size). Zero uses the default
	// (obs.DefaultRecorderCapacity); negative disables tracing entirely.
	TraceBuffer int
	// FlightInterval is the runtime flight recorder's sampling cadence
	// (GET /debug/flight; dumped to DataDir on eviction storms, persistence
	// errors and SIGQUIT). Zero uses the default (1s); negative disables the
	// flight recorder entirely.
	FlightInterval time.Duration
	// FlightBuffer is how many samples the flight ring holds. Zero uses the
	// default (300 — a five-minute window at the default interval).
	FlightBuffer int
	// ShardCount and ShardIndex configure the server as worker shard
	// ShardIndex of ShardCount in a sharded deployment (cmd/rfidcleand
	// router mode). Resource ids — trajectories, stream sessions and
	// locally-minted deployment ids — are then allocated in the arithmetic
	// progression {n : n mod ShardCount == ShardIndex}, so no two shards
	// can ever mint the same id and the router derives the owner of an id
	// from its numeric residue. Worker mode also accepts router-assigned
	// deployment ids via the X-Rfidclean-Assign-Id header. ShardCount <= 1
	// is single-node: every id, stride 1, assigned ids refused.
	ShardCount int
	// ShardIndex must be in [0, ShardCount) when ShardCount > 1.
	ShardIndex int
	// DataDir, when non-empty, makes the server durable: deployments and
	// cleaned trajectory graphs are persisted under this directory and
	// recovered at construction (Open). Empty keeps everything in memory.
	DataDir string
	// SnapshotInterval is how often the trajectory write-ahead log is
	// compacted into a snapshot. Zero uses the default (1 minute); negative
	// disables periodic compaction (Close still compacts once). Ignored
	// without DataDir.
	SnapshotInterval time.Duration
}

// DefaultMaxBodyBytes is the POST body cap applied when Options.MaxBodyBytes
// is zero.
const DefaultMaxBodyBytes = 32 << 20

// AssignIDHeader carries a router-allocated deployment id on
// POST /v1/deployments. Only servers running in sharded worker mode
// (Options.ShardCount > 1) accept it: the router registers one deployment
// under the same id on every shard, and replays after a retried replication
// are answered idempotently (200 with the same id when the body matches,
// 409 when it does not).
const AssignIDHeader = "X-Rfidclean-Assign-Id"

type deployment struct {
	id    string
	dep   *rfidclean.Deployment
	sys   *rfidclean.System
	raw   []byte // canonical encoded form, reused by persistence snapshots
	cache constraintSource
	// dead flips when DELETE /v1/deployments/{id} removes the deployment.
	// A clean or smooth that looked the deployment up before the delete
	// checks it after storing its graph: either the delete's store sweep
	// removes the graph, or the writer observes dead and removes it itself
	// — so an in-flight clean can never leave an orphan trajectory behind
	// a deleted deployment.
	dead atomic.Bool
}

type trajectory struct {
	id      string
	depID   string
	cleaned *rfidclean.Cleaned
}

// New returns a ready-to-serve Server with default options.
func New() *Server { return NewWithOptions(Options{}) }

// NewWithOptions returns a ready-to-serve Server. It panics when recovery
// from Options.DataDir fails — only reachable with DataDir set; durable
// callers should prefer Open and handle the error.
func NewWithOptions(opts Options) *Server {
	s, err := Open(opts)
	if err != nil {
		panic("server: " + err.Error())
	}
	return s
}

// Open returns a ready-to-serve Server. With Options.DataDir set it first
// recovers the persisted state (deployments, then the trajectory snapshot
// and write-ahead log — tolerating a corrupt or truncated log tail by
// keeping the valid prefix) and starts the background persistence writer;
// the error is non-nil only when the data directory is unusable or the
// atomically-written deployments snapshot is corrupt.
func Open(opts Options) (*Server, error) {
	maxBody := opts.MaxBodyBytes
	if maxBody == 0 {
		maxBody = DefaultMaxBodyBytes
	}
	stride, offset := opts.ShardCount, opts.ShardIndex
	if stride <= 1 {
		stride, offset = 1, 0
	} else if offset < 0 || offset >= stride {
		return nil, fmt.Errorf("server: ShardIndex %d out of range for ShardCount %d", opts.ShardIndex, opts.ShardCount)
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	var recorder *obs.Recorder
	if opts.TraceBuffer >= 0 {
		recorder = obs.NewRecorder(opts.TraceBuffer)
	}
	heartbeat := opts.SSEHeartbeat
	if heartbeat == 0 {
		heartbeat = DefaultSSEHeartbeat
	}
	m := newMetrics()
	if recorder != nil {
		// Exemplars are only emitted while their trace is still retained, so
		// every /metrics exemplar resolves at /debug/traces?id=.
		m.requestSeconds.held = recorder.Held
	}
	// The handler fields are interface-typed (ifaces.go); the concrete
	// stores stay in scope here for the persistence and flight-recorder
	// hooks only Open wires.
	ts := newTrajStore(opts.MaxStoreBytes, stride, offset, m)
	ss := newSessionStore(opts, stride, offset, m)
	s := &Server{
		deployments:  make(map[string]*deployment),
		workers:      opts.Workers,
		maxBody:      maxBody,
		cacheEntries: opts.ConstraintCacheEntries,
		sseHeartbeat: heartbeat,
		idStride:     stride,
		idOffset:     offset,
		store:        ts,
		sessions:     ss,
		metrics:      m,
		logger:       logger,
		recorder:     recorder,
		mux:          http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/deployments", s.handleDeployments)
	s.mux.HandleFunc("/v1/deployments/", s.handleDeploymentByID)
	s.mux.HandleFunc("/v1/clean", s.handleClean)
	s.mux.HandleFunc("/v1/clean/batch", s.handleCleanBatch)
	s.mux.HandleFunc("/v1/stream", s.handleStreamOpen)
	s.mux.HandleFunc("/v1/stream/", s.handleStream)
	s.mux.HandleFunc("/v1/trajectories", s.handleTrajectoryList)
	s.mux.HandleFunc("/v1/trajectories/", s.handleTrajectory)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/traces", s.handleDebugTraces)
	s.mux.HandleFunc("/debug/flight", s.handleDebugFlight)
	s.mux.Handle("/metrics", m)
	if opts.FlightInterval >= 0 {
		s.flight = &flightSink{
			rec:     flight.New(opts.FlightInterval, opts.FlightBuffer, s.flightGauges),
			dataDir: opts.DataDir,
			logger:  logger,
		}
	}
	if opts.DataDir != "" {
		p, err := newPersister(opts.DataDir, opts.SnapshotInterval, m, logger, recorder)
		if err != nil {
			return nil, err
		}
		s.persist = p
		ts.persist = p
		p.source = ts.snapshot
		if err := s.recoverFrom(opts.DataDir, ts); err != nil {
			p.wal.Close()
			return nil, err
		}
		p.start()
	}
	// Dump triggers attach after recovery so boot-time eviction of an
	// over-budget snapshot is not mistaken for a live storm.
	if s.flight != nil {
		ts.onEvict = s.flight.noteEvictions
		ss.onEvict = s.flight.noteEvictions
		if s.persist != nil {
			s.persist.onError = s.flight.notePersistError
		}
		s.flight.rec.Start()
	}
	return s, nil
}

// Close releases the server's background resources: it stops the streaming
// session reaper (waiting for the goroutine to exit), drops every open
// session, and — when persistence is enabled — drains the write-ahead-log
// writer, runs a final compaction, and closes the data files, so everything
// acknowledged before Close survives the process. Serving after Close
// answers stream opens with 503. It is idempotent and safe to call while
// requests are in flight.
func (s *Server) Close() error {
	s.sessions.close()
	if s.persist != nil {
		s.persist.shutdown(true)
	}
	if s.flight != nil {
		s.flight.rec.Close()
	}
	return nil
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
	// RequestID echoes the response's X-Request-ID so a client holding only
	// the body can still quote the failing request to /debug/traces.
	RequestID string `json:"requestId,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{
		Error:     fmt.Sprintf(format, args...),
		RequestID: w.Header().Get("X-Request-ID"),
	})
}

// limitBody applies the configured POST body cap.
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) {
	if s.maxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
}

// bodyError writes the uniform error for a failed body decode: 413 when the
// size cap was hit, 400 otherwise. It returns the status written.
func (s *Server) bodyError(w http.ResponseWriter, err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.metrics.bodyRejections.inc()
		writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
		return http.StatusRequestEntityTooLarge
	}
	writeError(w, http.StatusBadRequest, "invalid request: %v", err)
	return http.StatusBadRequest
}

// rejectBinaryBody answers 415 when a binary-codec body is posted to an
// endpoint that only speaks JSON. Without this check the frame bytes fall
// into the JSON decoder and die with a misleading 400 parse error; the typed
// answer names the endpoints that do accept the codec.
func rejectBinaryBody(w http.ResponseWriter, r *http.Request) bool {
	if !requestIsBinary(r) {
		return false
	}
	writeError(w, http.StatusUnsupportedMediaType,
		"%s only accepts application/json; %s bodies are spoken only by POST /v1/stream/{id}/readings (and %s responses by GET /v1/stream/{id} and POST /v1/stream/{id}/readings via Accept)",
		r.URL.Path, ContentTypeBinary, ContentTypeBinary)
	return true
}

// decodeBody decodes a size-limited JSON POST body into v, writing the error
// response itself when decoding fails. Binary-codec bodies are refused with
// 415 — every decodeBody caller is a JSON-only endpoint.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if rejectBinaryBody(w, r) {
		return false
	}
	s.limitBody(w, r)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		s.bodyError(w, err)
		return false
	}
	return true
}

// handleDeployments serves POST (register) and GET (list).
func (s *Server) handleDeployments(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		if rejectBinaryBody(w, r) {
			return
		}
		s.limitBody(w, r)
		dep, err := rfidclean.DecodeDeployment(r.Body)
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				s.bodyError(w, err)
				return
			}
			writeError(w, http.StatusBadRequest, "invalid deployment: %v", err)
			return
		}
		sys, err := dep.System()
		if err != nil {
			writeError(w, http.StatusBadRequest, "deployment rejected: %v", err)
			return
		}
		raw, err := dep.EncodeBytes()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encoding deployment: %v", err)
			return
		}
		assigned := r.Header.Get(AssignIDHeader)
		if assigned != "" && s.idStride <= 1 {
			writeError(w, http.StatusBadRequest,
				"%s is only accepted in sharded worker mode (ShardCount > 1)", AssignIDHeader)
			return
		}
		var assignedNum int
		if assigned != "" {
			n, ok := idNum("d", assigned)
			if !ok || n < 1 {
				writeError(w, http.StatusBadRequest, "invalid %s %q (want d<number>)", AssignIDHeader, assigned)
				return
			}
			assignedNum = n
		}
		s.mu.Lock()
		var id string
		if assigned != "" {
			// Router-assigned registration. The router replicates one
			// registration to every shard with retry, so a replay of an id
			// this shard already holds is expected — idempotent when the
			// body matches, a 409 when it does not (two routers, or a
			// counter that went backwards).
			if existing := s.deployments[assigned]; existing != nil {
				match := bytes.Equal(existing.raw, raw)
				s.mu.Unlock()
				if match {
					writeJSON(w, http.StatusOK, map[string]string{"id": assigned})
					return
				}
				writeError(w, http.StatusConflict,
					"deployment id %q is already registered with a different definition", assigned)
				return
			}
			id = assigned
			if assignedNum > s.nextDep {
				s.nextDep = assignedNum
			}
		} else {
			s.nextDep = nextStridedID(s.nextDep, s.idStride, s.idOffset)
			id = "d" + strconv.Itoa(s.nextDep)
		}
		s.deployments[id] = &deployment{
			id: id, dep: dep, sys: sys, raw: raw,
			cache: newConstraintCache(s.cacheEntries),
		}
		n := len(s.deployments)
		s.mu.Unlock()
		s.metrics.deployments.set(int64(n))
		s.persistDeployments()
		writeJSON(w, http.StatusCreated, map[string]string{"id": id})
	case http.MethodGet:
		type row struct {
			ID        string `json:"id"`
			Name      string `json:"name"`
			Locations int    `json:"locations"`
			Readers   int    `json:"readers"`
		}
		s.mu.RLock()
		rows := make([]row, 0, len(s.deployments))
		for id, d := range s.deployments {
			rows = append(rows, row{
				ID: id, Name: d.dep.Name,
				Locations: d.dep.Plan.NumLocations(),
				Readers:   len(d.dep.Readers),
			})
		}
		s.mu.RUnlock()
		sort.Slice(rows, func(i, j int) bool { return idLess(rows[i].ID, rows[j].ID) })
		writeJSON(w, http.StatusOK, rows)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// handleDeploymentByID serves GET (one row) and DELETE (drop the deployment
// and its stored trajectories) on /v1/deployments/{id}.
func (s *Server) handleDeploymentByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/deployments/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "unknown deployment path %q", r.URL.Path)
		return
	}
	switch r.Method {
	case http.MethodGet:
		d := s.lookupDeployment(id)
		if d == nil {
			writeError(w, http.StatusNotFound, "unknown deployment %q", id)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id":        d.id,
			"name":      d.dep.Name,
			"locations": d.dep.Plan.NumLocations(),
			"readers":   len(d.dep.Readers),
		})
	case http.MethodDelete:
		s.mu.Lock()
		d, ok := s.deployments[id]
		if ok {
			// Flip dead before the store sweep below: a clean that resolved
			// this deployment before the delete re-checks dead after storing
			// its graph, so whichever of {sweep, post-add check} runs second
			// removes the graph (see the deployment.dead field comment).
			d.dead.Store(true)
			delete(s.deployments, id)
		}
		n := len(s.deployments)
		s.mu.Unlock()
		if !ok {
			writeError(w, http.StatusNotFound, "unknown deployment %q", id)
			return
		}
		s.metrics.deployments.set(int64(n))
		// Trajectories cleaned under the deployment go with it: they could
		// not be recovered after a restart (no plan to decode against), so
		// keeping them live would make restart behavior diverge.
		dropped := s.store.deleteByDep(id)
		s.persistDeployments()
		writeJSON(w, http.StatusOK, map[string]any{"deleted": id, "trajectories": dropped})
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// TrajectoryRow is one entry of the GET /v1/trajectories listing.
type TrajectoryRow struct {
	ID         string `json:"id"`
	Deployment string `json:"deployment"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	Bytes      int    `json:"bytes"`
}

// handleTrajectoryList serves GET /v1/trajectories: every stored trajectory,
// ids in numeric order.
func (s *Server) handleTrajectoryList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	s.metrics.queryOps.inc("list")
	writeJSON(w, http.StatusOK, s.store.list())
}

// splitID separates an id like "t12" into its non-digit prefix and numeric
// suffix. ok is false when the suffix is missing or not all digits.
func splitID(id string) (prefix string, n int, ok bool) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	if i == len(id) {
		return id, 0, false
	}
	n, err := strconv.Atoi(id[i:])
	if err != nil {
		return id, 0, false
	}
	return id[:i], n, true
}

// idLess orders ids numerically within a shared prefix ("d2" before "d10"),
// falling back to lexicographic order across prefixes or for ids without a
// numeric suffix.
func idLess(a, b string) bool {
	ap, an, aok := splitID(a)
	bp, bn, bok := splitID(b)
	if aok && bok && ap == bp {
		if an != bn {
			return an < bn
		}
		return a < b
	}
	return a < b
}

// idNum extracts the numeric suffix of an id with the given prefix ("t",
// "d") — used to restore id counters from recovered state. ok is false when
// the id does not match the prefix or has no numeric suffix.
func idNum(prefix, id string) (int, bool) {
	p, n, ok := splitID(id)
	if !ok || p != prefix {
		return 0, false
	}
	return n, true
}

// lookupDeployment resolves a deployment id under a read lock.
func (s *Server) lookupDeployment(id string) *deployment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.deployments[id]
}

// constraints resolves the constraint set for a clean request through the
// deployment's cache, recording the hit/miss.
func (s *Server) constraints(ctx context.Context, dep *deployment, p rfidclean.ConstraintParams) (*rfidclean.ConstraintSet, error) {
	_, sp := obs.Start(ctx, "constraints.lookup")
	ic, err, hit := dep.cache.get(p, func() (*rfidclean.ConstraintSet, error) {
		return dep.sys.Constraints(p)
	})
	if hit {
		s.metrics.cacheHits.inc()
		sp.Str("cache", "hit")
	} else {
		s.metrics.cacheMisses.inc()
		sp.Str("cache", "miss")
	}
	sp.End()
	return ic, err
}

// CleanRequest asks the server to clean one reading sequence against a
// registered deployment.
type CleanRequest struct {
	// Deployment is the id returned by POST /v1/deployments.
	Deployment string `json:"deployment"`
	// Tag optionally names the monitored object. The server itself ignores
	// it, but a sharding router keys placement on it so one object's
	// requests co-locate on a shard.
	Tag string `json:"tag,omitempty"`
	// Readings is the sequence to clean (one reading per timestamp).
	Readings rfidclean.ReadingSequence `json:"readings"`
	// Group optionally carries additional sequences of tags moving
	// together with Readings; all are fused before conditioning.
	Group []rfidclean.ReadingSequence `json:"group,omitempty"`
	// MaxSpeed (m/s) drives TT inference; required, > 0.
	MaxSpeed float64 `json:"maxSpeed"`
	// MinStay (s) drives LT inference on non-corridor locations.
	MinStay int `json:"minStay"`
	// TTCap optionally truncates TT horizons (0 = uncapped).
	TTCap int `json:"ttCap"`
	// StrictEnd selects Definition 2's end-of-window latency semantics.
	StrictEnd bool `json:"strictEnd"`
}

// CleanResponse reports the cleaned trajectory handle and its graph size.
type CleanResponse struct {
	ID    string `json:"id"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Bytes int    `json:"bytes"`
}

func (s *Server) handleClean(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	start := time.Now()
	mode, outcome := "single", "error"
	defer func() { s.metrics.cleanRequests.inc(mode, outcome) }()

	var req CleanRequest
	if !s.decodeBody(w, r, &req) {
		outcome = "bad_request"
		return
	}
	if len(req.Group) > 0 {
		mode = "group"
	}
	dep := s.lookupDeployment(req.Deployment)
	if dep == nil {
		outcome = "not_found"
		writeError(w, http.StatusNotFound, "unknown deployment %q", req.Deployment)
		return
	}
	if req.MaxSpeed <= 0 {
		outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "maxSpeed must be positive")
		return
	}
	ctx := r.Context()
	ic, err := s.constraints(ctx, dep, rfidclean.ConstraintParams{
		MaxSpeed: req.MaxSpeed, MinStay: req.MinStay, TTCap: req.TTCap,
	})
	if err != nil {
		outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "constraint inference: %v", err)
		return
	}
	// Explain reports are always collected on server cleans: they feed the
	// per-phase/per-constraint metrics and the explain endpoint, and cost a
	// few hundred bytes next to the graph itself.
	opts := &rfidclean.BuildOptions{EndLatency: endMode(req.StrictEnd), Explain: &rfidclean.BuildExplain{}}
	// Profiler labels tie CPU/heap samples from the conditioning passes back
	// to the API surface and deployment that caused them.
	var cleaned *rfidclean.Cleaned
	pprof.Do(ctx, pprof.Labels("endpoint", "clean", "deployment", dep.id), func(ctx context.Context) {
		if mode == "group" {
			group := append([]rfidclean.ReadingSequence{req.Readings}, req.Group...)
			cleaned, err = dep.sys.CleanGroupCtx(ctx, group, ic, opts)
		} else {
			cleaned, err = dep.sys.CleanCtx(ctx, req.Readings, ic, opts)
		}
	})
	switch {
	case errors.Is(err, rfidclean.ErrNoValidTrajectory):
		outcome = "inconsistent"
		writeError(w, http.StatusUnprocessableEntity, "readings are inconsistent with the constraints")
		return
	case err != nil:
		outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "cleaning failed: %v", err)
		return
	}
	s.metrics.recordExplain(cleaned.Explain())
	_, sp := obs.Start(ctx, "store.add")
	id := s.store.add(dep.id, cleaned)
	sp.End()
	if dep.dead.Load() {
		// The deployment was deleted while this clean ran; its sweep may
		// have missed the graph we just stored, so remove it ourselves
		// (delete is idempotent) and answer as the lookup now would.
		s.store.delete(id)
		outcome = "not_found"
		writeError(w, http.StatusNotFound, "deployment %q was deleted while cleaning", dep.id)
		return
	}
	st := cleaned.Stats()
	outcome = "ok"
	s.metrics.cleanSeconds.observe(time.Since(start).Seconds())
	s.metrics.graphBytes.observe(float64(st.Bytes))
	writeJSON(w, http.StatusCreated, CleanResponse{ID: id, Nodes: st.Nodes, Edges: st.Edges, Bytes: st.Bytes})
}

func endMode(strict bool) rfidclean.EndLatencyMode {
	if strict {
		return rfidclean.StrictEnd
	}
	return rfidclean.LenientEnd
}

// BatchCleanRequest asks the server to clean many independent reading
// sequences against one deployment in a single call. The sequences are
// cleaned concurrently (bounded by the server's worker option) and each
// slot succeeds or fails on its own.
type BatchCleanRequest struct {
	// Deployment is the id returned by POST /v1/deployments.
	Deployment string `json:"deployment"`
	// Sequences are the independent objects' reading sequences.
	Sequences []rfidclean.ReadingSequence `json:"sequences"`
	// MaxSpeed, MinStay, TTCap and StrictEnd mirror CleanRequest and apply
	// to every sequence in the batch.
	MaxSpeed  float64 `json:"maxSpeed"`
	MinStay   int     `json:"minStay"`
	TTCap     int     `json:"ttCap"`
	StrictEnd bool    `json:"strictEnd"`
}

// BatchCleanResult is the outcome for one slot of a batch clean: either a
// stored trajectory (Error empty) or a per-slot failure (ID empty).
type BatchCleanResult struct {
	ID    string `json:"id,omitempty"`
	Nodes int    `json:"nodes,omitempty"`
	Edges int    `json:"edges,omitempty"`
	Bytes int    `json:"bytes,omitempty"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleCleanBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	start := time.Now()
	outcome := "error"
	defer func() { s.metrics.cleanRequests.inc("batch", outcome) }()

	var req BatchCleanRequest
	if !s.decodeBody(w, r, &req) {
		outcome = "bad_request"
		return
	}
	dep := s.lookupDeployment(req.Deployment)
	if dep == nil {
		outcome = "not_found"
		writeError(w, http.StatusNotFound, "unknown deployment %q", req.Deployment)
		return
	}
	if req.MaxSpeed <= 0 {
		outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "maxSpeed must be positive")
		return
	}
	if len(req.Sequences) == 0 {
		outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "sequences must be non-empty")
		return
	}
	ctx := r.Context()
	ic, err := s.constraints(ctx, dep, rfidclean.ConstraintParams{
		MaxSpeed: req.MaxSpeed, MinStay: req.MinStay, TTCap: req.TTCap,
	})
	if err != nil {
		outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "constraint inference: %v", err)
		return
	}
	// CleanAll clones these options per slot (fresh Explain each), so the
	// concurrent workers never share a report; their spans all record into
	// this request's trace, which is safe for concurrent use.
	var (
		cleaned []*rfidclean.Cleaned
		errs    []error
	)
	// The batch workers inherit these labels, so a profile attributes every
	// slot's conditioning to the batch endpoint and its deployment.
	pprof.Do(ctx, pprof.Labels("endpoint", "clean_batch", "deployment", dep.id), func(ctx context.Context) {
		cleaned, errs = dep.sys.CleanAll(req.Sequences, ic, &rfidclean.BatchOptions{
			Build:   &rfidclean.BuildOptions{EndLatency: endMode(req.StrictEnd), Explain: &rfidclean.BuildExplain{}},
			Workers: s.workers,
			Context: ctx, // a vanished client stops burning CPU on unstarted slots
		})
	})
	// Allocate all ids in one critical section so a batch's ids are
	// consecutive and never interleave with concurrent single cleans.
	_, sp := obs.Start(ctx, "store.add")
	ids := s.store.addBatch(dep.id, cleaned)
	sp.End()
	if dep.dead.Load() {
		// Deployment deleted mid-batch: compensate like handleClean does.
		for _, id := range ids {
			if id != "" {
				s.store.delete(id)
			}
		}
		outcome = "not_found"
		writeError(w, http.StatusNotFound, "deployment %q was deleted while cleaning", dep.id)
		return
	}
	out := make([]BatchCleanResult, len(req.Sequences))
	for i := range req.Sequences {
		if errs[i] != nil {
			s.metrics.batchSlots.inc("error")
			out[i] = BatchCleanResult{Error: errs[i].Error()}
			continue
		}
		s.metrics.batchSlots.inc("ok")
		s.metrics.recordExplain(cleaned[i].Explain())
		st := cleaned[i].Stats()
		s.metrics.graphBytes.observe(float64(st.Bytes))
		out[i] = BatchCleanResult{ID: ids[i], Nodes: st.Nodes, Edges: st.Edges, Bytes: st.Bytes}
	}
	outcome = "ok"
	s.metrics.cleanSeconds.observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, out)
}

// handleTrajectory routes /v1/trajectories/{id}[/{op}].
func (s *Server) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/trajectories/")
	parts := strings.SplitN(rest, "/", 2)
	id := parts[0]
	op := ""
	if len(parts) == 2 {
		op = parts[1]
	}
	if r.Method == http.MethodDelete && op == "" {
		if !s.store.delete(id) {
			writeError(w, http.StatusNotFound, "unknown trajectory %q", id)
			return
		}
		s.metrics.queryOps.inc("delete")
		writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
		return
	}
	traj := s.store.get(id)
	if traj == nil {
		writeError(w, http.StatusNotFound, "unknown trajectory %q", id)
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	switch op {
	case "stay", "match", "top", "occupancy", "explain":
		s.metrics.queryOps.inc(op)
		_, sp := obs.Start(r.Context(), "query."+op)
		switch op {
		case "stay":
			s.handleStay(w, r, traj)
		case "match":
			s.handleMatch(w, r, traj)
		case "top":
			s.handleTop(w, r, traj)
		case "occupancy":
			s.handleOccupancy(w, traj)
		case "explain":
			s.handleExplain(w, traj)
		}
		sp.End()
	case "":
		s.metrics.queryOps.inc("stats")
		st := traj.cleaned.Stats()
		writeJSON(w, http.StatusOK, CleanResponse{ID: traj.id, Nodes: st.Nodes, Edges: st.Edges, Bytes: st.Bytes})
	default:
		writeError(w, http.StatusNotFound, "unknown operation %q", op)
	}
}

// ExplainResponse is the GET /v1/trajectories/{id}/explain body: the cleaning
// explain report collected when the trajectory was cleaned, labeled with the
// graph it produced.
type ExplainResponse struct {
	ID         string `json:"id"`
	Deployment string `json:"deployment"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	// Explain is the report: per-phase wall times, per-timestamp candidate
	// counts before/after pruning, per-constraint prune counters, removal
	// tallies and the conditioning normalizer.
	Explain *rfidclean.Explain `json:"explain"`
}

func (s *Server) handleExplain(w http.ResponseWriter, traj *trajectory) {
	ex := traj.cleaned.Explain()
	if ex == nil {
		writeError(w, http.StatusNotFound, "trajectory %q has no explain report", traj.id)
		return
	}
	st := traj.cleaned.Stats()
	writeJSON(w, http.StatusOK, ExplainResponse{
		ID: traj.id, Deployment: traj.depID,
		Nodes: st.Nodes, Edges: st.Edges,
		Explain: ex,
	})
}

// handleHealthz reports liveness plus store occupancy, cheap enough for a
// load balancer to poll.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	s.mu.RLock()
	deps := len(s.deployments)
	s.mu.RUnlock()
	count, bytes := s.store.stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"deployments":  deps,
		"trajectories": count,
		"storeBytes":   bytes,
		"sessions":     s.sessions.count(),
	})
}

// LocationProb is one entry of a distribution, labeled with the location
// name.
type LocationProb struct {
	Location string  `json:"location"`
	P        float64 `json:"p"`
}

func (s *Server) handleStay(w http.ResponseWriter, r *http.Request, traj *trajectory) {
	tau, err := strconv.Atoi(r.URL.Query().Get("t"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "missing or invalid ?t= timestamp")
		return
	}
	dist, err := traj.cleaned.StayDistribution(tau)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]LocationProb, 0)
	for loc, p := range dist {
		if p > 0 {
			out = append(out, LocationProb{Location: traj.cleaned.LocationName(loc), P: p})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P > out[j].P })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request, traj *trajectory) {
	pattern := r.URL.Query().Get("pattern")
	if pattern == "" {
		writeError(w, http.StatusBadRequest, "missing ?pattern=")
		return
	}
	p, err := traj.cleaned.Match(pattern)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"p": p})
}

// TopTrajectory is one entry of the top-k answer, rendered as location runs.
type TopTrajectory struct {
	P    float64  `json:"p"`
	Runs []string `json:"runs"` // "location x seconds"
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request, traj *trajectory) {
	k := 1
	if q := r.URL.Query().Get("k"); q != "" {
		var err error
		if k, err = strconv.Atoi(q); err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "invalid ?k=")
			return
		}
	}
	if k > 100 {
		k = 100
	}
	trajs, probs := traj.cleaned.TopK(k)
	out := make([]TopTrajectory, len(trajs))
	for i := range trajs {
		out[i] = TopTrajectory{P: probs[i], Runs: runs(traj.cleaned, trajs[i])}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleOccupancy(w http.ResponseWriter, traj *trajectory) {
	occ, err := traj.cleaned.ExpectedOccupancy()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := make([]LocationProb, 0)
	for loc, sec := range occ {
		if sec > 1e-9 {
			out = append(out, LocationProb{Location: traj.cleaned.LocationName(loc), P: sec})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P > out[j].P })
	writeJSON(w, http.StatusOK, out)
}

// runs renders a trajectory as "location xN" segments.
func runs(c *rfidclean.Cleaned, locs []int) []string {
	var out []string
	start := 0
	for i := 1; i <= len(locs); i++ {
		if i == len(locs) || locs[i] != locs[start] {
			out = append(out, fmt.Sprintf("%s x%d", c.LocationName(locs[start]), i-start))
			start = i
		}
	}
	return out
}
