package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	rfidclean "repro"
	"repro/internal/obs"
)

// This file implements streaming ingestion sessions — the live-tracking
// counterpart of the batch /v1/clean endpoints. A session pins a deployment
// and a constraint set and feeds timestamped reader sets, as they arrive,
// through the deployment prior into a per-session incremental build state
// (core.BuildState), which keeps Algorithm 1's forward pass alive across
// readings. At any point the client can read the *filtered* distribution of
// the object's current location (conditioned on the past only — the best an
// online cleaner can do); on demand, or when the session closes, smoothing
// re-runs only the backward/revise suffix the newest readings can
// invalidate and yields a ct-graph bit-identical to a full offline rebuild,
// stored in the trajectory store where the usual query endpoints apply.
// Sessions opened with a beam width route filtering through a core.Filter
// (the beam cap is a frontier approximation BuildState does not make) but
// still smooth incrementally through the exact state.
//
//	POST   /v1/stream                     StreamOpenRequest -> {"id": ...}
//	POST   /v1/stream/{id}/readings      append readings -> StreamStatus
//	GET    /v1/stream/{id}[?top=k]       current filtered distribution
//	GET    /v1/stream/{id}/events        SSE event subscription (hub.go)
//	POST   /v1/stream/{id}/smooth        offline re-clean -> CleanResponse
//	DELETE /v1/stream/{id}[?smooth=no]   close (smoothing by default)
//
// The readings POST and the status GET also speak a compact binary codec
// (see codec.go), negotiated per request via Content-Type / Accept:
// application/x-rfidclean.
//
// Sessions are bounded three ways: a beam width caps each filter's frontier
// (an approximation trade documented on FilterOptions), a per-session
// reading budget caps the smoothing buffer, and a server-wide session cap
// evicts the least-recently-active session when full. Idle sessions are
// reaped by a background goroutine after a TTL; the reaper is wired into
// Server.Close so a graceful shutdown drains it deterministically.

// Streaming session defaults, applied when the corresponding Options fields
// are zero.
const (
	DefaultMaxSessions        = 1024
	DefaultSessionTTL         = 15 * time.Minute
	DefaultMaxSessionReadings = 1 << 16
)

// streamSession is one live-tracking session. Its mutex serializes state
// advancement and buffer appends; lastActive is atomic so the reaper can
// scan sessions without contending with a slow Observe.
type streamSession struct {
	id   string
	dep  *deployment
	prms rfidclean.ConstraintParams
	// ic pins the constraint set the session's state was built under.
	// smoothLocked compares it against the cache's current answer for prms:
	// a pointer change means the cache was recalibrated or cycled under us,
	// so the incremental state is stale and smoothing falls back to a full
	// rebuild.
	ic *rfidclean.ConstraintSet

	// hub fans the session's delta/smooth/close events out to SSE
	// subscribers (hub.go). It is created with the session and closed by
	// whichever path removes the session.
	hub *sessionHub

	mu sync.Mutex
	// state is the incremental build: one forward level per accepted
	// reading, smoothed on demand. It also answers frontier queries for
	// exact (beam-less) sessions.
	state *rfidclean.BuildState
	// filter is non-nil only for beam-capped sessions, where the bounded
	// frontier it maintains is the distribution the client asked for.
	filter   *rfidclean.Filter
	readings rfidclean.ReadingSequence // buffered for smoothing fallback
	dead     bool                      // constraints ruled out every continuation

	lastActive atomic.Int64 // unix nanoseconds
}

// time returns the last observed timestamp (-1 before the first reading);
// the caller holds ss.mu.
func (ss *streamSession) time() int {
	if ss.filter != nil {
		return ss.filter.Time()
	}
	return ss.state.Time()
}

func (ss *streamSession) touch() { ss.lastActive.Store(time.Now().UnixNano()) }

// sessionTombstones caps how many closed-session ids the store remembers so
// late requests can be answered with 410 Gone instead of 404. The ring is
// bounded: at capacity the oldest tombstone falls back to 404, which is the
// honest answer for an id nobody has mentioned in thousands of closures.
const sessionTombstones = 4096

// sessionStore owns the open sessions, the id counter, and the idle reaper.
// Ids of sessions that existed but were closed (client close, idle reaping,
// cap eviction, server shutdown) are kept in a bounded tombstone ring so a
// client racing its own reaper gets 410 Gone — "re-open and re-send" — rather
// than the 404 it would get for an id that never existed.
type sessionStore struct {
	maxSessions int           // <= 0: unlimited
	ttl         time.Duration // <= 0: sessions are never reaped
	maxReadings int           // <= 0: unlimited buffering
	subBuffer   int           // per-subscriber event buffer (hub.go)
	history     int           // per-session resume ring (hub.go)
	stride      int           // id-allocation stride (shard count; <= 1: single-node)
	offset      int           // this shard's residue class
	m           *metrics
	onEvict     func(n int) // flight-recorder storm detector; nil when disabled

	mu       sync.Mutex
	sessions map[string]*streamSession
	next     int
	gone     map[string]bool // tombstoned session ids
	goneRing []string        // circular id buffer backing gone
	goneHead int
	reaping  bool          // reaper goroutine started
	stop     chan struct{} // closed by close()
	done     chan struct{} // closed when the reaper goroutine exits
	closed   bool
}

func newSessionStore(opts Options, stride, offset int, m *metrics) *sessionStore {
	maxSessions := opts.MaxSessions
	if maxSessions == 0 {
		maxSessions = DefaultMaxSessions
	}
	ttl := opts.SessionTTL
	if ttl == 0 {
		ttl = DefaultSessionTTL
	}
	maxReadings := opts.MaxSessionReadings
	if maxReadings == 0 {
		maxReadings = DefaultMaxSessionReadings
	}
	subBuffer := opts.SubscriberBuffer
	if subBuffer == 0 {
		subBuffer = DefaultSubscriberBuffer
	}
	history := opts.EventHistory
	if history == 0 {
		history = DefaultEventHistory
	}
	if history < 0 {
		history = 0 // resume disabled
	}
	return &sessionStore{
		maxSessions: maxSessions,
		ttl:         ttl,
		maxReadings: maxReadings,
		subBuffer:   subBuffer,
		history:     history,
		stride:      stride,
		offset:      offset,
		m:           m,
		sessions:    make(map[string]*streamSession),
		gone:        make(map[string]bool),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
}

// markGoneLocked tombstones a closed session id; the caller holds st.mu.
func (st *sessionStore) markGoneLocked(id string) {
	if st.gone[id] {
		return
	}
	if len(st.goneRing) < sessionTombstones {
		st.goneRing = append(st.goneRing, id)
	} else {
		delete(st.gone, st.goneRing[st.goneHead])
		st.goneRing[st.goneHead] = id
		st.goneHead = (st.goneHead + 1) % sessionTombstones
	}
	st.gone[id] = true
}

// isGone reports whether the id names a session that existed and was closed.
func (st *sessionStore) isGone(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.gone[id]
}

// open creates a session. At capacity the least-recently-active session is
// evicted to make room — live tracking favors fresh streams over stale ones,
// and an evicted client can always re-open and re-send. Returns nil when the
// store has been closed.
func (st *sessionStore) open(dep *deployment, prms rfidclean.ConstraintParams, ic *rfidclean.ConstraintSet, state *rfidclean.BuildState, f *rfidclean.Filter) *streamSession {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	if st.maxSessions > 0 && len(st.sessions) >= st.maxSessions {
		st.evictOldestLocked()
	}
	st.next = nextStridedID(st.next, st.stride, st.offset)
	s := &streamSession{
		id:     "s" + strconv.Itoa(st.next),
		dep:    dep,
		prms:   prms,
		ic:     ic,
		state:  state,
		filter: f,
	}
	s.hub = newSessionHub(s.id, st.subBuffer, st.history, st.m)
	s.touch()
	st.sessions[s.id] = s
	st.m.streamSessions.set(int64(len(st.sessions)))
	if st.ttl > 0 && !st.reaping {
		st.reaping = true
		go st.reapLoop()
	}
	return s
}

// evictOldestLocked removes the session with the stalest activity stamp.
// Equal stamps — common when sessions are opened in a burst within the
// clock's resolution — are broken by numeric session id, oldest id first, so
// the victim is deterministic rather than whatever the map iterator happens
// to visit first. It maintains the open-session gauge itself so any future
// caller beyond open leaves it consistent.
func (st *sessionStore) evictOldestLocked() {
	var victim *streamSession
	oldest := int64(1<<63 - 1)
	victimNum := 0
	for id, s := range st.sessions {
		a := s.lastActive.Load()
		n, _ := idNum("s", id)
		if a < oldest || (a == oldest && victim != nil && n < victimNum) {
			oldest, victim, victimNum = a, s, n
		}
	}
	if victim == nil {
		return
	}
	delete(st.sessions, victim.id)
	st.markGoneLocked(victim.id)
	st.m.streamSessions.set(int64(len(st.sessions)))
	st.m.streamEvicted.inc()
	if st.onEvict != nil {
		st.onEvict(1)
	}
	victim.hub.shutdown(closeReasonEvicted)
}

// get returns the session with the given id, or nil.
func (st *sessionStore) get(id string) *streamSession {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sessions[id]
}

// remove deletes a session, reporting whether it existed.
func (st *sessionStore) remove(id string) bool {
	st.mu.Lock()
	_, ok := st.sessions[id]
	if ok {
		delete(st.sessions, id)
		st.markGoneLocked(id)
		st.m.streamSessions.set(int64(len(st.sessions)))
	}
	st.mu.Unlock()
	return ok
}

// count returns the number of open sessions.
func (st *sessionStore) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// readingBudget reports the per-session smoothing-buffer cap (<= 0:
// unlimited).
func (st *sessionStore) readingBudget() int { return st.maxReadings }

// reapLoop periodically drops sessions idle past the TTL. It exits when the
// store closes; the tick is a fraction of the TTL so a session outlives its
// TTL by at most ~25%.
func (st *sessionStore) reapLoop() {
	defer close(st.done)
	tick := st.ttl / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > time.Minute {
		tick = time.Minute
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-st.stop:
			return
		case now := <-ticker.C:
			st.reap(now)
		}
	}
}

// reap removes sessions whose last activity is older than the TTL,
// returning how many it dropped.
func (st *sessionStore) reap(now time.Time) int {
	cutoff := now.Add(-st.ttl).UnixNano()
	st.mu.Lock()
	var victims []*streamSession
	for id, s := range st.sessions {
		if s.lastActive.Load() < cutoff {
			delete(st.sessions, id)
			st.markGoneLocked(id)
			victims = append(victims, s)
		}
	}
	if len(victims) > 0 {
		st.m.streamSessions.set(int64(len(st.sessions)))
	}
	st.mu.Unlock()
	for _, s := range victims {
		s.hub.shutdown(closeReasonReaped)
		st.m.streamReaped.inc()
	}
	return len(victims)
}

// close stops the reaper (waiting for it to exit) and drops every session.
// It is idempotent: only the first call closes the stop channel (a second
// close would panic), and every call — not just the first — waits until the
// reaper goroutine has actually exited, so any caller returning from close
// may rely on the reaper being gone.
func (st *sessionStore) close() {
	st.mu.Lock()
	first := !st.closed
	st.closed = true
	reaping := st.reaping
	if first {
		for id, s := range st.sessions {
			st.markGoneLocked(id)
			s.hub.shutdown(closeReasonShutdown)
		}
		st.sessions = make(map[string]*streamSession)
		st.m.streamSessions.set(0)
	}
	st.mu.Unlock()
	if first {
		close(st.stop)
	}
	if reaping {
		<-st.done
	}
}

// StreamOpenRequest opens a streaming session against a registered
// deployment. MaxSpeed/MinStay/TTCap select the constraint set exactly like
// CleanRequest (and share its per-deployment cache).
type StreamOpenRequest struct {
	// Deployment is the id returned by POST /v1/deployments.
	Deployment string `json:"deployment"`
	// Tag optionally names the monitored object. The server itself ignores
	// it, but a sharding router keys session placement on it so a tag's
	// sessions co-locate with its cleans.
	Tag string `json:"tag,omitempty"`
	// MaxSpeed (m/s) drives TT inference; required, > 0.
	MaxSpeed float64 `json:"maxSpeed"`
	// MinStay (s) drives LT inference on non-corridor locations.
	MinStay int `json:"minStay"`
	// TTCap optionally truncates TT horizons (0 = uncapped).
	TTCap int `json:"ttCap"`
	// Beam optionally caps the filter's frontier (0 = exact filtering).
	// Long, highly ambiguous streams trade a little exactness for a hard
	// per-session memory bound.
	Beam int `json:"beam"`
}

// StreamReadingsRequest appends readings to a session, in timestamp order.
type StreamReadingsRequest struct {
	Readings []rfidclean.Reading `json:"readings"`
}

// StreamStatus reports a session's progress and, on GET, its current
// filtered distribution.
type StreamStatus struct {
	ID         string `json:"id"`
	Deployment string `json:"deployment"`
	// Time is the last observed timestamp (-1 before the first reading).
	Time int `json:"time"`
	// Readings is how many readings the session has buffered for smoothing.
	Readings int `json:"readings"`
	// Frontier is the filter's live node count (memory gauge).
	Frontier int `json:"frontier"`
	// Beam echoes the session's beam width (0 = exact).
	Beam int `json:"beam,omitempty"`
	// Dead reports that the constraints ruled out every continuation; the
	// session only serves its buffered prefix from here on.
	Dead bool `json:"dead,omitempty"`
	// Current is the filtered distribution over locations, descending
	// (GET only; capped by ?top=k).
	Current []LocationProb `json:"current,omitempty"`
}

// handleStreamOpen serves POST /v1/stream.
func (s *Server) handleStreamOpen(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req StreamOpenRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	dep := s.lookupDeployment(req.Deployment)
	if dep == nil {
		writeError(w, http.StatusNotFound, "unknown deployment %q", req.Deployment)
		return
	}
	if req.MaxSpeed <= 0 {
		writeError(w, http.StatusBadRequest, "maxSpeed must be positive")
		return
	}
	if req.Beam < 0 {
		writeError(w, http.StatusBadRequest, "beam must be >= 0")
		return
	}
	prms := rfidclean.ConstraintParams{MaxSpeed: req.MaxSpeed, MinStay: req.MinStay, TTCap: req.TTCap}
	ic, err := s.constraints(r.Context(), dep, prms)
	if err != nil {
		writeError(w, http.StatusBadRequest, "constraint inference: %v", err)
		return
	}
	state := rfidclean.NewBuildState(ic)
	var f *rfidclean.Filter
	if req.Beam > 0 {
		f = rfidclean.NewFilter(ic, &rfidclean.FilterOptions{Beam: req.Beam})
	}
	sess := s.sessions.open(dep, prms, ic, state, f)
	if sess == nil {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if dep.dead.Load() {
		// The deployment was deleted between lookup and open: the session
		// would pin a dead deployment and every smooth would orphan its
		// graphs. Close it as if it were never opened.
		s.sessions.remove(sess.id)
		sess.hub.shutdown(closeReasonClosed)
		writeError(w, http.StatusNotFound, "deployment %q was deleted", dep.id)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": sess.id})
}

// handleStream routes /v1/stream/{id}[/{op}].
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/stream/")
	parts := strings.SplitN(rest, "/", 2)
	id := parts[0]
	op := ""
	if len(parts) == 2 {
		op = parts[1]
	}
	sess := s.sessions.get(id)
	if sess == nil {
		if s.sessions.isGone(id) {
			writeError(w, http.StatusGone, "stream session %q is closed; open a new session and re-send", id)
		} else {
			writeError(w, http.StatusNotFound, "unknown stream session %q", id)
		}
		return
	}
	switch {
	case op == "" && r.Method == http.MethodGet:
		s.handleStreamStatus(w, r, sess)
	case op == "" && r.Method == http.MethodDelete:
		s.handleStreamClose(w, r, sess)
	case op == "readings" && r.Method == http.MethodPost:
		s.handleStreamReadings(w, r, sess)
	case op == "smooth" && r.Method == http.MethodPost:
		s.handleStreamSmooth(w, r, sess)
	case op == "events" && r.Method == http.MethodGet:
		s.handleStreamEvents(w, r, sess)
	case op == "" || op == "readings" || op == "smooth" || op == "events":
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	default:
		writeError(w, http.StatusNotFound, "unknown operation %q", op)
	}
}

// statusLocked renders the session's progress; the caller holds sess.mu.
func statusLocked(sess *streamSession) StreamStatus {
	st := StreamStatus{
		ID:         sess.id,
		Deployment: sess.dep.id,
		Time:       sess.time(),
		Readings:   len(sess.readings),
		Dead:       sess.dead,
	}
	if sess.filter != nil {
		st.Frontier = sess.filter.FrontierSize()
		st.Beam = sess.filter.Beam()
	} else {
		st.Frontier = sess.state.FrontierSize()
	}
	return st
}

// writeStreamStatus writes a status response in the negotiated codec.
func writeStreamStatus(w http.ResponseWriter, r *http.Request, code int, st StreamStatus) {
	if acceptsBinary(r) {
		buf := EncodeStreamStatus(st)
		w.Header().Set("Content-Type", ContentTypeBinary)
		w.WriteHeader(code)
		w.Write(buf)
		return
	}
	writeJSON(w, code, st)
}

// handleStreamReadings appends readings to the session and advances the
// filter one timestamp per reading. Timestamps must arrive densely and in
// order: reading N is timestamp N. A duplicate or out-of-order timestamp is
// rejected with 409, a gap with 422, and a reading the constraints rule out
// kills the session (422; the buffered prefix remains smoothable). On a
// mid-batch error the already-observed prefix is kept.
func (s *Server) handleStreamReadings(w http.ResponseWriter, r *http.Request, sess *streamSession) {
	var req StreamReadingsRequest
	if requestIsBinary(r) {
		s.limitBody(w, r)
		body, err := io.ReadAll(r.Body)
		if err != nil {
			s.bodyError(w, err)
			return
		}
		if req.Readings, err = DecodeStreamReadings(body); err != nil {
			writeError(w, http.StatusBadRequest, "invalid binary readings: %v", err)
			return
		}
	} else if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Readings) == 0 {
		writeError(w, http.StatusBadRequest, "readings must be non-empty")
		return
	}
	_, sp := obs.Start(r.Context(), "stream.observe")
	defer sp.End()
	sp.Int("readings", int64(len(req.Readings)))
	// Label the whole observe loop once (set/restore, not a per-reading
	// pprof.Do) so profile samples from the filter and state updates carry
	// the endpoint and deployment.
	labeled := pprof.WithLabels(r.Context(), pprof.Labels("endpoint", "stream_readings", "deployment", sess.dep.id))
	pprof.SetGoroutineLabels(labeled)
	defer pprof.SetGoroutineLabels(r.Context())
	sess.mu.Lock()
	defer sess.mu.Unlock()
	defer sess.touch()
	if sess.dead {
		s.metrics.streamReadings.inc("dead_session")
		writeError(w, http.StatusGone, "session %s hit a dead end at timestamp %d and accepts no more readings", sess.id, sess.time()+1)
		return
	}
	// One delta event per batch that moved the session — readings accepted,
	// or the dead-end transition — even when a later reading in the batch
	// failed; the accepted prefix is real and subscribers should see it.
	// Runs before the deferred unlock, so deltaLocked still holds sess.mu.
	accepted := 0
	defer func() {
		if accepted > 0 || sess.dead {
			sess.hub.publish(eventKindDelta, deltaLocked(sess, accepted))
		}
	}()
	for _, reading := range req.Readings {
		next := len(sess.readings)
		if reading.Time < next {
			s.metrics.streamReadings.inc("out_of_order")
			writeError(w, http.StatusConflict, "duplicate or out-of-order timestamp %d (already observed through %d)", reading.Time, next-1)
			return
		}
		if reading.Time > next {
			s.metrics.streamReadings.inc("gap")
			writeError(w, http.StatusUnprocessableEntity, "timestamp gap: got %d, next expected %d", reading.Time, next)
			return
		}
		if budget := s.sessions.readingBudget(); budget > 0 && next >= budget {
			s.metrics.streamReadings.inc("budget")
			writeError(w, http.StatusTooManyRequests, "session reading budget (%d) exhausted; smooth and close, or open a new session", budget)
			return
		}
		cands, err := sess.dep.sys.Candidates(reading.Readers)
		if err != nil {
			s.metrics.streamReadings.inc("bad_reading")
			writeError(w, http.StatusBadRequest, "timestamp %d: %v", reading.Time, err)
			return
		}
		// Beam sessions observe the filter first: its frontier is a subset
		// of the exact state's, so a reading the filter accepts cannot
		// dead-end the state, and a reading the filter rejects leaves the
		// state covering exactly the buffered prefix. (A beam dead end is
		// an approximation artifact — the exact state may still be alive —
		// but the session dies either way: its filtered answers are gone.)
		start := time.Now()
		if sess.filter != nil {
			err = sess.filter.Observe(cands)
		}
		if err == nil {
			err = sess.state.Observe(cands)
		}
		s.metrics.observeSeconds.observe(time.Since(start).Seconds())
		if errors.Is(err, rfidclean.ErrNoValidTrajectory) {
			sess.dead = true
			s.metrics.streamReadings.inc("dead_end")
			writeError(w, http.StatusUnprocessableEntity, "timestamp %d is inconsistent with the constraints; session is dead (buffered prefix of %d readings remains smoothable)", reading.Time, len(sess.readings))
			return
		}
		if err != nil {
			s.metrics.streamReadings.inc("bad_reading")
			writeError(w, http.StatusBadRequest, "timestamp %d: %v", reading.Time, err)
			return
		}
		sess.readings = append(sess.readings, reading)
		accepted++
		s.metrics.streamReadings.inc("ok")
	}
	writeStreamStatus(w, r, http.StatusOK, statusLocked(sess))
}

// handleStreamStatus serves the current filtered distribution; ?top=k caps
// the entries to the k most probable current locations.
func (s *Server) handleStreamStatus(w http.ResponseWriter, r *http.Request, sess *streamSession) {
	top := 0
	if q := r.URL.Query().Get("top"); q != "" {
		var err error
		if top, err = strconv.Atoi(q); err != nil || top < 1 {
			writeError(w, http.StatusBadRequest, "invalid ?top=")
			return
		}
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.touch()
	st := statusLocked(sess)
	if sess.time() >= 0 {
		var (
			dist []rfidclean.LocProb
			err  error
		)
		switch {
		case sess.filter != nil && top > 0:
			dist, err = sess.filter.TopLocations(top)
		case sess.filter != nil:
			dist, err = sess.filter.Distribution()
		case top > 0:
			dist, err = sess.state.TopLocations(top)
		default:
			dist, err = sess.state.Distribution()
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		st.Current = make([]LocationProb, len(dist))
		for i, lp := range dist {
			st.Current[i] = LocationProb{Location: sess.dep.sys.Plan.Location(lp.Loc).Name, P: lp.P}
		}
	}
	writeStreamStatus(w, r, http.StatusOK, st)
}

// smoothLocked conditions the buffered sequence (LenientEnd, so the final
// timestamp agrees with the filtered answer) and stores the ct-graph in the
// trajectory store. The fast path reuses the session's incremental build
// state — only the backward/revise suffix the newest readings can
// invalidate is recomputed, and the result is bit-identical to a full
// rebuild. It falls back to a full offline CleanCtx when the constraint
// cache no longer returns the set the state was built under (recalibration
// or cache cycling) or when the state does not cover the whole buffer. The
// caller holds sess.mu.
func (s *Server) smoothLocked(ctx context.Context, sess *streamSession) (CleanResponse, int, error) {
	if len(sess.readings) == 0 {
		return CleanResponse{}, http.StatusUnprocessableEntity,
			errors.New("session has no readings to smooth")
	}
	start := time.Now()
	outcome := "error"
	defer func() { s.metrics.cleanRequests.inc("stream", outcome) }()
	ic, err := s.constraints(ctx, sess.dep, sess.prms)
	if err != nil {
		return CleanResponse{}, http.StatusInternalServerError, err
	}
	opts := &rfidclean.BuildOptions{
		EndLatency: rfidclean.LenientEnd,
		Explain:    &rfidclean.BuildExplain{},
	}
	var cleaned *rfidclean.Cleaned
	mode := "full"
	// Smoothing work is labeled stream_smooth regardless of which route
	// triggered it (the smooth endpoint or the closing smooth).
	pprof.Do(ctx, pprof.Labels("endpoint", "stream_smooth", "deployment", sess.dep.id), func(ctx context.Context) {
		if sess.state != nil && sess.ic == ic && sess.state.Duration() == len(sess.readings) {
			mode = "incremental"
			cleaned, err = sess.dep.sys.SmoothState(sess.state, opts)
		} else {
			cleaned, err = sess.dep.sys.CleanCtx(ctx, sess.readings, ic, opts)
		}
	})
	s.metrics.streamSmooths.inc(mode)
	if err != nil {
		// The forward pass accepted this prefix, so conditioning can only
		// fail on internal errors, not on constraint violations.
		return CleanResponse{}, http.StatusInternalServerError, err
	}
	s.metrics.recordExplain(cleaned.Explain())
	_, sp := obs.Start(ctx, "store.add")
	id := s.store.add(sess.dep.id, cleaned)
	sp.End()
	if sess.dep.dead.Load() {
		// The session outlived its deployment (deleted mid-stream). The
		// graph just stored would be an orphan — remove it (idempotent
		// against the delete's own sweep) and report the deployment gone.
		s.store.delete(id)
		return CleanResponse{}, http.StatusNotFound,
			errors.New("deployment " + sess.dep.id + " was deleted")
	}
	st := cleaned.Stats()
	outcome = "ok"
	s.metrics.cleanSeconds.observe(time.Since(start).Seconds())
	s.metrics.graphBytes.observe(float64(st.Bytes))
	resp := CleanResponse{ID: id, Nodes: st.Nodes, Edges: st.Edges, Bytes: st.Bytes}
	sess.hub.publish(eventKindSmooth, StreamSmoothEvent{ID: sess.id, Trajectory: resp, Mode: mode})
	return resp, http.StatusCreated, nil
}

// handleStreamSmooth serves POST /v1/stream/{id}/smooth: the on-demand
// offline re-clean. The session stays open and keeps accepting readings.
func (s *Server) handleStreamSmooth(w http.ResponseWriter, r *http.Request, sess *streamSession) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.touch()
	resp, status, err := s.smoothLocked(r.Context(), sess)
	if err != nil {
		writeError(w, status, "smoothing failed: %v", err)
		return
	}
	writeJSON(w, status, resp)
}

// StreamCloseResponse is the DELETE /v1/stream/{id} answer.
type StreamCloseResponse struct {
	Closed string `json:"closed"`
	// Trajectory holds the final smoothed ct-graph (unless smoothing was
	// skipped); query it under /v1/trajectories/{id}.
	Trajectory *CleanResponse `json:"trajectory,omitempty"`
}

// handleStreamClose serves DELETE /v1/stream/{id}. By default the buffered
// sequence is smoothed one last time so the client walks away with the
// ct-graph answer; ?smooth=no (or false/0) skips that, as does an empty
// buffer. Any other ?smooth= value is rejected up front — a typo like
// ?smooth=nope used to silently smooth, the opposite of what was asked.
func (s *Server) handleStreamClose(w http.ResponseWriter, r *http.Request, sess *streamSession) {
	smooth := true
	switch q := strings.ToLower(r.URL.Query().Get("smooth")); q {
	case "", "yes", "true", "1":
	case "no", "false", "0":
		smooth = false
	default:
		writeError(w, http.StatusBadRequest, "invalid ?smooth=%q (want yes/true/1 or no/false/0)", q)
		return
	}
	if !s.sessions.remove(sess.id) {
		// Lost the race with the reaper, an eviction, or a concurrent close:
		// the session existed moments ago, so it is gone, not unknown.
		writeError(w, http.StatusGone, "stream session %q is closed; open a new session and re-send", sess.id)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	// The hub outlives remove just long enough for the final smooth event,
	// then broadcasts the terminal close and drops every subscriber.
	defer sess.hub.shutdown(closeReasonClosed)
	out := StreamCloseResponse{Closed: sess.id}
	if smooth && len(sess.readings) > 0 {
		resp, status, err := s.smoothLocked(r.Context(), sess)
		if err != nil {
			writeError(w, status, "session closed, but final smoothing failed: %v", err)
			return
		}
		out.Trajectory = &resp
	}
	writeJSON(w, http.StatusOK, out)
}
