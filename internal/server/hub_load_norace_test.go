//go:build !race

package server

// loadSubscribers is the fleet size for TestHubLoad: the acceptance bar is
// 2000 concurrent SSE subscribers on one session.
const loadSubscribers = 2000
