package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	rfidclean "repro"
)

// This file implements push-based event fan-out for streaming sessions —
// the subscriber-facing half of the hardware loop (readers push readings in
// through cmd/rfidedge, clients get distribution deltas pushed back out).
// Every session owns a broadcast hub; GET /v1/stream/{id}/events attaches a
// subscriber and serves the hub's events as Server-Sent Events:
//
//	id: 7
//	event: delta
//	data: {"id":"s1","time":6,"readings":7,"accepted":1,"frontier":3,
//	       "current":[{"location":"lab","p":0.91}, ...]}
//
// One delta event is published per accepted readings batch (carrying the
// session's progress and its top-k filtered distribution), one smooth event
// per completed smooth (carrying the stored trajectory handle), and a single
// terminal close event when the session goes away — client close, idle
// reaping, cap eviction, or server shutdown; the reason says which.
//
// The contract that keeps the Observe hot path fast: publishing never
// blocks. Each subscriber has a bounded buffer (a channel); an event that
// finds the buffer full evicts that subscriber on the spot — the hub closes
// its channel, the handler goroutine notices and ends the response, and the
// client is expected to reconnect with a Last-Event-ID header. The hub keeps
// a bounded ring of recent events so a reconnecting subscriber replays what
// it missed; if the gap outran the ring, a comment warns that the resume is
// partial and the client should re-read GET /v1/stream/{id} for a full
// snapshot. Heartbeat comments flow on an idle stream so proxies keep the
// connection alive and dead peers are detected by write deadlines; each
// successfully-written heartbeat also counts as session activity, so a
// session with a live subscriber is not reaped under it.

// Event fan-out defaults, applied when the corresponding Options fields are
// zero.
const (
	DefaultSubscriberBuffer = 64
	DefaultEventHistory     = 256
	DefaultSSEHeartbeat     = 15 * time.Second
)

// sseWriteTimeout bounds every write to a subscriber's connection; a peer
// that stops draining its socket is disconnected rather than pinning the
// handler goroutine forever.
const sseWriteTimeout = 10 * time.Second

// Event kinds, as they appear on the SSE "event:" line and the
// rfidclean_stream_events_total metric.
const (
	eventKindDelta  = "delta"
	eventKindSmooth = "smooth"
	eventKindClose  = "close"
)

// Close reasons carried by the terminal close event.
const (
	closeReasonClosed   = "closed"   // client DELETE
	closeReasonReaped   = "reaped"   // idle past the session TTL
	closeReasonEvicted  = "evicted"  // displaced at the session cap
	closeReasonShutdown = "shutdown" // server closing
)

// streamEvent is one fan-out message: a session-scoped monotonic id (the SSE
// event id, which Last-Event-ID resume is keyed on), a kind, and the encoded
// JSON payload.
type streamEvent struct {
	id   uint64
	kind string
	data []byte
}

// subscriber is one attached event consumer. The hub owns ch: only the hub
// closes it (on eviction or hub shutdown), and only after removing the
// subscriber from its set, so a close can never race a send.
type subscriber struct {
	ch chan streamEvent
	// evicted is set (under hub.mu, before ch closes) when the subscriber
	// was dropped for falling behind; the handler reads it after ch closes
	// to tell eviction apart from session close.
	evicted bool
}

// sessionHub is one session's broadcast hub. Publishing is non-blocking by
// construction — the only lock is hub.mu, which no publisher holds across
// anything slower than a failed channel send — so a stalled subscriber can
// never back-pressure the Observe hot path.
type sessionHub struct {
	sessionID string
	buffer    int // per-subscriber channel capacity
	history   int // resume ring capacity (0 disables resume)
	m         *metrics

	mu     sync.Mutex
	nextID uint64
	ring   []streamEvent // recent events; ring[(head+i) % len] is i-th oldest
	head   int
	subs   map[*subscriber]struct{}
	closed bool
}

func newSessionHub(sessionID string, buffer, history int, m *metrics) *sessionHub {
	if buffer < 1 {
		buffer = 1
	}
	return &sessionHub{
		sessionID: sessionID,
		buffer:    buffer,
		history:   history,
		m:         m,
		subs:      make(map[*subscriber]struct{}),
	}
}

// subscribe attaches a consumer and returns the events it should replay
// first (those after lastID still held in the ring, when hasLast). gap
// reports that the ring no longer reaches back to lastID+1, so the replay is
// partial. A nil subscriber means the hub is closed.
func (h *sessionHub) subscribe(lastID uint64, hasLast bool) (sub *subscriber, replay []streamEvent, gap bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil, false
	}
	sub = &subscriber{ch: make(chan streamEvent, h.buffer)}
	h.subs[sub] = struct{}{}
	h.m.streamSubscribers.add(1)
	if hasLast {
		n := len(h.ring)
		for i := 0; i < n; i++ {
			ev := h.ring[(h.head+i)%n]
			if ev.id > lastID {
				replay = append(replay, ev)
			}
		}
		// The resume has a hole when events past the client's cursor exist
		// but the ring no longer reaches back to lastID+1.
		if len(replay) > 0 {
			gap = replay[0].id != lastID+1
		} else {
			gap = h.nextID > lastID
		}
	}
	return sub, replay, gap
}

// unsubscribe detaches a consumer when its handler exits. It is a no-op for
// subscribers the hub already removed (eviction, shutdown), so the
// subscriber gauge moves exactly once per attachment.
func (h *sessionHub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		h.m.streamSubscribers.add(-1)
	}
	h.mu.Unlock()
}

// subscribers returns the current attachment count (tests, load checks).
func (h *sessionHub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// publish broadcasts one event: assign the next id, remember it in the
// resume ring, and offer it to every subscriber without ever blocking — a
// full buffer evicts its subscriber instead of stalling the publisher.
func (h *sessionHub) publish(kind string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		// Payloads are our own structs; this is unreachable short of a bug.
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.nextID++
	ev := streamEvent{id: h.nextID, kind: kind, data: data}
	h.remember(ev)
	start := time.Now()
	h.offerLocked(ev)
	elapsed := time.Since(start)
	h.mu.Unlock()
	h.m.streamEvents.inc(kind)
	h.m.fanoutSeconds.observe(elapsed.Seconds())
}

// remember appends an event to the bounded resume ring; the caller holds
// h.mu.
func (h *sessionHub) remember(ev streamEvent) {
	if h.history <= 0 {
		return
	}
	if len(h.ring) < h.history {
		h.ring = append(h.ring, ev)
		return
	}
	h.ring[h.head] = ev
	h.head = (h.head + 1) % h.history
}

// offerLocked enqueues ev to every subscriber, evicting any whose buffer is
// full; the caller holds h.mu.
func (h *sessionHub) offerLocked(ev streamEvent) {
	for sub := range h.subs {
		select {
		case sub.ch <- ev:
		default:
			delete(h.subs, sub)
			sub.evicted = true
			close(sub.ch)
			h.m.streamSubscribers.add(-1)
			h.m.streamEventsDropped.inc()
			h.m.streamSubsEvicted.inc()
		}
	}
}

// StreamCloseEvent is the terminal close event's payload.
type StreamCloseEvent struct {
	ID string `json:"id"`
	// Reason is why the session went away: closed (client DELETE), reaped
	// (idle TTL), evicted (session cap), or shutdown (server closing).
	Reason string `json:"reason"`
}

// shutdown publishes the terminal close event and then closes every
// subscriber channel, ending their handlers once the buffered tail drains.
// It is idempotent; subsequent publishes and subscribes are refused.
func (h *sessionHub) shutdown(reason string) {
	data, _ := json.Marshal(StreamCloseEvent{ID: h.sessionID, Reason: reason})
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.nextID++
	ev := streamEvent{id: h.nextID, kind: eventKindClose, data: data}
	h.remember(ev)
	h.offerLocked(ev)
	n := len(h.subs)
	for sub := range h.subs {
		delete(h.subs, sub)
		close(sub.ch)
	}
	h.mu.Unlock()
	h.m.streamSubscribers.add(int64(-n))
	h.m.streamEvents.inc(eventKindClose)
}

// StreamDeltaEvent is the payload published after each accepted readings
// batch: the session's progress plus its current top-k filtered
// distribution.
type StreamDeltaEvent struct {
	ID       string `json:"id"`
	Time     int    `json:"time"`
	Readings int    `json:"readings"`
	// Accepted is how many readings this batch contributed.
	Accepted int  `json:"accepted"`
	Frontier int  `json:"frontier"`
	Dead     bool `json:"dead,omitempty"`
	// Current is the top-k filtered distribution after the batch.
	Current []LocationProb `json:"current,omitempty"`
}

// StreamSmoothEvent is the payload published when a smooth completes.
type StreamSmoothEvent struct {
	ID         string        `json:"id"`
	Trajectory CleanResponse `json:"trajectory"`
	// Mode is incremental (live BuildState suffix re-run) or full rebuild.
	Mode string `json:"mode"`
}

// deltaTopK caps the distribution entries carried by a delta event; a
// subscriber that wants the full support polls GET /v1/stream/{id}.
const deltaTopK = 5

// deltaLocked builds the delta payload for the batch just accepted; the
// caller holds sess.mu.
func deltaLocked(sess *streamSession, accepted int) StreamDeltaEvent {
	ev := StreamDeltaEvent{
		ID:       sess.id,
		Time:     sess.time(),
		Readings: len(sess.readings),
		Accepted: accepted,
		Dead:     sess.dead,
	}
	var (
		dist []rfidclean.LocProb
		err  error
	)
	if sess.filter != nil {
		ev.Frontier = sess.filter.FrontierSize()
		dist, err = sess.filter.TopLocations(deltaTopK)
	} else {
		ev.Frontier = sess.state.FrontierSize()
		dist, err = sess.state.TopLocations(deltaTopK)
	}
	if err == nil {
		ev.Current = make([]LocationProb, len(dist))
		for i, lp := range dist {
			ev.Current[i] = LocationProb{Location: sess.dep.sys.Plan.Location(lp.Loc).Name, P: lp.P}
		}
	}
	return ev
}

// DrainSubscribers closes every attached event subscriber with a shutdown
// close event, without closing the sessions themselves. Register it with
// http.Server.RegisterOnShutdown so a graceful drain is not held open for
// the full timeout by subscribers that would otherwise never finish their
// response.
func (s *Server) DrainSubscribers() {
	s.sessions.drainSubscribers()
}

func (st *sessionStore) drainSubscribers() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, sess := range st.sessions {
		sess.hub.shutdown(closeReasonShutdown)
	}
}

// handleStreamEvents serves GET /v1/stream/{id}/events: an SSE stream of the
// session's delta/smooth/close events. A Last-Event-ID header (as sent by
// EventSource reconnects) resumes from the hub's ring; Last-Event-ID: 0
// replays everything the ring still holds.
func (s *Server) handleStreamEvents(w http.ResponseWriter, r *http.Request, sess *streamSession) {
	var lastID uint64
	hasLast := false
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid Last-Event-ID %q", v)
			return
		}
		lastID, hasLast = n, true
	}
	sub, replay, gap := sess.hub.subscribe(lastID, hasLast)
	if sub == nil {
		// The session was looked up alive but its hub closed in between:
		// it is gone, not unknown.
		writeError(w, http.StatusGone, "stream session %q is closed; open a new session and re-send", sess.id)
		return
	}
	defer sess.hub.unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	sse := sseInfoFrom(r.Context())
	write := func(p []byte) bool {
		// A deadline error just means the writer can't enforce one (test
		// recorders); the write itself still decides the stream's fate.
		if err := rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout)); err != nil && !errors.Is(err, http.ErrNotSupported) {
			return false
		}
		if _, err := w.Write(p); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	// writeEvent is the counted path: comments and heartbeats go through
	// write() directly and are not billed as delivered events.
	writeEvent := func(ev streamEvent) bool {
		p := formatEvent(ev)
		if !write(p) {
			return false
		}
		sse.noteEvent(len(p))
		return true
	}
	if !write([]byte(fmt.Sprintf(": connected session=%s replay=%d\n\n", sess.id, len(replay)))) {
		return
	}
	if gap {
		if !write([]byte(": resume gap — events before the replayed window were dropped; GET /v1/stream/" + sess.id + " for a full snapshot\n\n")) {
			return
		}
	}
	for _, ev := range replay {
		if !writeEvent(ev) {
			return
		}
	}

	heartbeat := s.sseHeartbeat
	if heartbeat <= 0 {
		heartbeat = time.Duration(1<<62 - 1) // disabled: effectively never fires
	}
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				if sub.evicted {
					// Best effort: the peer is slow, but the socket may
					// still take a short diagnostic before we hang up.
					write([]byte(": dropped — subscriber fell behind its event buffer; reconnect with Last-Event-ID to resume\n\n"))
				}
				return
			}
			if !writeEvent(ev) {
				return
			}
		case <-ticker.C:
			if !write([]byte(": hb\n\n")) {
				return
			}
			// A live subscriber counts as session activity: don't reap a
			// session someone is actively watching.
			sess.touch()
		case <-r.Context().Done():
			return
		}
	}
}

// formatEvent renders one event in the SSE wire format.
func formatEvent(ev streamEvent) []byte {
	buf := make([]byte, 0, len(ev.data)+len(ev.kind)+32)
	buf = append(buf, "id: "...)
	buf = strconv.AppendUint(buf, ev.id, 10)
	buf = append(buf, "\nevent: "...)
	buf = append(buf, ev.kind...)
	buf = append(buf, "\ndata: "...)
	buf = append(buf, ev.data...)
	buf = append(buf, "\n\n"...)
	return buf
}
