package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"log/slog"

	rfidclean "repro"
	"repro/internal/obs"
	"repro/internal/persist"
)

// This file wires the durability layer (internal/persist) into the query
// head. With Options.DataDir set, the server is a system of record instead of
// a cache:
//
//   - Deployments are snapshotted to deployments.json on every register and
//     delete — an atomic whole-file rewrite on the request path (registration
//     is rare and the file is small).
//   - The trajectory store gets an append-oriented write-ahead log
//     (trajectories.wal): stores append "put" records carrying the encoded
//     ct-graph, deletions and evictions append "del" tombstones. Appends are
//     queued by request handlers and flushed (write + fsync) by a single
//     background writer goroutine, so the clean hot path never blocks on the
//     disk; the durability window is one flush cycle (the writer wakes
//     immediately on enqueue).
//   - Every SnapshotInterval the WAL is compacted: the live store contents
//     are rewritten atomically into trajectories.snap (prefixed by a "meta"
//     record pinning the id counter) and the WAL is truncated. Recovery cost
//     stays proportional to the live data, not to the write history.
//
// On boot, recovery replays snapshot then WAL — tolerating a corrupt or
// truncated log tail by keeping the valid prefix — rebuilds the store within
// its byte budget (oldest entries dropped first, counted as evictions), and
// restores the deployment and trajectory id counters so fresh ids can never
// collide with recovered (or tombstoned-then-compacted) ones.
//
// Server.Close drains the writer deterministically: the queue is flushed, a
// final compaction runs, and the files are closed before Close returns.
//
// What is not persisted: streaming sessions (clients re-open and re-send;
// closed ids answer 410 from the in-memory tombstone ring only) and explain
// reports (the explain endpoint answers 404 for recovered trajectories).

// File names inside Options.DataDir.
const (
	deploymentsFile  = "deployments.json"
	trajSnapshotFile = "trajectories.snap"
	trajWALFile      = "trajectories.wal"
)

// DefaultSnapshotInterval is how often the trajectory WAL is compacted into
// a snapshot when Options.SnapshotInterval is zero.
const DefaultSnapshotInterval = time.Minute

// persistFormatVersion versions the data-dir layout as a whole.
const persistFormatVersion = 1

// depsDoc is the deployments.json schema: the registered deployments plus
// the id counter, so ids of deleted deployments are never reissued.
type depsDoc struct {
	Version     int        `json:"version"`
	Next        int        `json:"next"`
	Deployments []depEntry `json:"deployments"`
}

type depEntry struct {
	ID   string          `json:"id"`
	Data json.RawMessage `json:"data"`
}

// metaPayload rides "meta" snapshot records; Next pins the trajectory id
// counter across compactions that erased all numbered records.
type metaPayload struct {
	Next int `json:"next"`
}

// walEntry is one queued trajectory-store mutation. Graphs are carried as
// *Cleaned and encoded in the writer goroutine, keeping JSON marshalling off
// the request path.
type walEntry struct {
	op  string // "put" | "del"
	id  string
	dep string
	c   *rfidclean.Cleaned // nil for tombstones
}

// snapItem is one live store entry handed to compaction (and recovery),
// oldest first.
type snapItem struct {
	id    string
	depID string
	c     *rfidclean.Cleaned
}

// persister owns the data directory: the WAL, the background writer, the
// compaction cycle, and the deployments snapshot. All WAL writes funnel
// through writerLoop; deployments.json rewrites are serialized by depMu and
// happen synchronously on the (rare) register/delete path.
type persister struct {
	dir          string
	snapInterval time.Duration
	m            *metrics
	logger       *slog.Logger
	recorder     *obs.Recorder
	onError      func(step string) // flight-recorder dump trigger; nil when disabled

	wal *persist.Log // owned by writerLoop once start has been called

	depMu sync.Mutex // serializes deployments.json collect+write cycles

	mu     sync.Mutex
	queue  []walEntry
	closed bool

	finalCompact bool // set before stop closes; read by writerLoop after

	notify  chan struct{}      // nudges the writer (buffered, coalescing)
	barrier chan chan struct{} // flush barriers for drain()
	force   chan chan struct{} // compaction requests for compactNow()
	stop    chan struct{}
	done    chan struct{}

	// source snapshots the live trajectory store for compaction: contents
	// oldest-first plus the id counter.
	source func() ([]snapItem, int)
}

func newPersister(dir string, snapInterval time.Duration, m *metrics, logger *slog.Logger, recorder *obs.Recorder) (*persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating data dir: %w", err)
	}
	if snapInterval == 0 {
		snapInterval = DefaultSnapshotInterval
	}
	wal, err := persist.OpenLog(filepath.Join(dir, trajWALFile))
	if err != nil {
		return nil, err
	}
	return &persister{
		dir:          dir,
		snapInterval: snapInterval,
		m:            m,
		logger:       logger,
		recorder:     recorder,
		wal:          wal,
		notify:       make(chan struct{}, 1),
		barrier:      make(chan chan struct{}),
		force:        make(chan chan struct{}),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}, nil
}

// start launches the background writer. Recovery must be complete first —
// the writer assumes sole ownership of the WAL from here on.
func (p *persister) start() { go p.writerLoop() }

// put queues a trajectory append.
func (p *persister) put(id, depID string, c *rfidclean.Cleaned) {
	p.enqueue(walEntry{op: "put", id: id, dep: depID, c: c})
}

// del queues a deletion/eviction tombstone.
func (p *persister) del(id string) {
	p.enqueue(walEntry{op: "del", id: id})
}

func (p *persister) enqueue(e walEntry) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.queue = append(p.queue, e)
	p.mu.Unlock()
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// drain blocks until every entry enqueued before the call has been flushed
// to the WAL. Used by tests and by shutdown; a no-op once the writer exited.
func (p *persister) drain() {
	done := make(chan struct{})
	select {
	case p.barrier <- done:
		<-done
	case <-p.done:
	}
}

// compactNow runs one flush+compaction cycle on the writer goroutine and
// waits for it. A no-op once the writer exited.
func (p *persister) compactNow() {
	done := make(chan struct{})
	select {
	case p.force <- done:
		<-done
	case <-p.done:
	}
}

// shutdown stops the writer after a final flush (and, when compact is true,
// a final compaction) and closes the WAL. It is idempotent and safe to call
// concurrently; every call waits until the writer is gone. Tests call
// shutdown(false) to simulate a crash that leaves only WAL + snapshots.
func (p *persister) shutdown(compact bool) {
	p.mu.Lock()
	first := !p.closed
	p.closed = true
	if first {
		p.finalCompact = compact
	}
	p.mu.Unlock()
	if first {
		close(p.stop)
	}
	<-p.done
}

func (p *persister) writerLoop() {
	defer close(p.done)
	var tickC <-chan time.Time
	if p.snapInterval > 0 {
		tick := time.NewTicker(p.snapInterval)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case <-p.stop:
			p.flush()
			if p.finalCompact {
				p.compact()
			}
			if err := p.wal.Close(); err != nil {
				p.logError("closing wal", err)
			}
			return
		case <-p.notify:
			p.flush()
		case done := <-p.barrier:
			p.flush()
			close(done)
		case done := <-p.force:
			p.flush()
			p.compact()
			close(done)
		case <-tickC:
			p.flush()
			p.compact()
		}
	}
}

// flush appends and fsyncs everything queued so far. Runs on the writer
// goroutine only.
func (p *persister) flush() {
	p.mu.Lock()
	batch := p.queue
	p.queue = nil
	p.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	start := time.Now()
	tr := obs.NewTrace("persist.flush")
	_, sp := obs.Start(obs.WithTrace(context.Background(), tr), "persist.flush")
	sp.Int("records", int64(len(batch)))
	for _, e := range batch {
		rec := persist.Record{Op: e.op, ID: e.id, Dep: e.dep}
		if e.c != nil {
			var buf bytes.Buffer
			if err := e.c.Encode(&buf); err != nil {
				p.logError("encoding graph "+e.id, err)
				continue
			}
			rec.Data = bytes.TrimSpace(buf.Bytes())
		}
		if err := p.wal.Append(rec); err != nil {
			p.logError("appending to wal", err)
		}
	}
	if err := p.wal.Sync(); err != nil {
		p.logError("fsyncing wal", err)
	}
	sp.End()
	p.recorder.Record(tr)
	p.m.persistFlushes.inc()
	p.m.persistFlushSeconds.observe(time.Since(start).Seconds())
	p.updateBytesGauge()
}

// compact rewrites the snapshot from the live store and truncates the WAL.
// Runs on the writer goroutine only, always after a flush, so every WAL
// record is subsumed by the snapshot it writes (the store is updated before
// entries are enqueued). A crash between the snapshot rename and the WAL
// truncation merely replays puts/dels the snapshot already reflects —
// both are idempotent.
func (p *persister) compact() {
	if p.source == nil {
		return
	}
	items, next := p.source()
	tr := obs.NewTrace("persist.compact")
	_, sp := obs.Start(obs.WithTrace(context.Background(), tr), "persist.compact")
	sp.Int("trajectories", int64(len(items)))
	defer func() {
		sp.End()
		p.recorder.Record(tr)
	}()
	meta, err := json.Marshal(metaPayload{Next: next})
	if err != nil {
		p.logError("encoding snapshot meta", err)
		return
	}
	recs := make([]persist.Record, 0, len(items)+1)
	recs = append(recs, persist.Record{Op: "meta", Data: meta})
	for _, it := range items {
		var buf bytes.Buffer
		if err := it.c.Encode(&buf); err != nil {
			p.logError("encoding graph "+it.id, err)
			continue
		}
		recs = append(recs, persist.Record{
			Op: "put", ID: it.id, Dep: it.depID, Data: bytes.TrimSpace(buf.Bytes()),
		})
	}
	if _, err := persist.WriteLogAtomic(filepath.Join(p.dir, trajSnapshotFile), recs); err != nil {
		p.logError("writing snapshot", err)
		return
	}
	if err := p.wal.Reset(); err != nil {
		p.logError("truncating wal", err)
		return
	}
	p.m.persistCompactions.inc()
	p.updateBytesGauge()
}

// saveDeployments snapshots the registered deployments. collect runs inside
// the same critical section as the write, so concurrent register/delete
// calls serialize into file states that each reflect a consistent (and
// monotonically advancing) view.
func (p *persister) saveDeployments(collect func() depsDoc) error {
	p.depMu.Lock()
	defer p.depMu.Unlock()
	start := time.Now()
	doc := collect()
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("server: encoding deployments snapshot: %w", err)
	}
	if err := persist.WriteFileAtomic(filepath.Join(p.dir, deploymentsFile), data); err != nil {
		return err
	}
	p.m.persistFlushes.inc()
	p.m.persistFlushSeconds.observe(time.Since(start).Seconds())
	p.updateBytesGauge()
	return nil
}

// updateBytesGauge re-stats the data files and publishes their total size.
func (p *persister) updateBytesGauge() {
	total := p.wal.Size()
	for _, name := range []string{deploymentsFile, trajSnapshotFile} {
		if st, err := os.Stat(filepath.Join(p.dir, name)); err == nil {
			total += st.Size()
		}
	}
	p.m.persistBytes.set(total)
}

func (p *persister) logError(step string, err error) {
	p.m.persistErrors.inc()
	p.logger.Error("persist: "+step+" failed", slog.String("error", err.Error()))
	if p.onError != nil {
		p.onError(step)
	}
}

// persistDeployments snapshots the current deployments if persistence is
// enabled, logging (not failing) on error: the in-memory registration stands
// either way, and the next successful snapshot heals the file.
func (s *Server) persistDeployments() {
	if s.persist == nil {
		return
	}
	if err := s.persist.saveDeployments(s.deploymentsDoc); err != nil {
		s.persist.logError("deployments snapshot", err)
	}
}

// deploymentsDoc collects the registered deployments for the snapshot file,
// ids in numeric order so the file is stable across rewrites.
func (s *Server) deploymentsDoc() depsDoc {
	s.mu.RLock()
	doc := depsDoc{Version: persistFormatVersion, Next: s.nextDep}
	for id, d := range s.deployments {
		doc.Deployments = append(doc.Deployments, depEntry{ID: id, Data: d.raw})
	}
	s.mu.RUnlock()
	sort.Slice(doc.Deployments, func(i, j int) bool {
		return idLess(doc.Deployments[i].ID, doc.Deployments[j].ID)
	})
	return doc
}

// recoverFrom rebuilds the server's state from a data directory: the
// deployments snapshot first (trajectories need their plans), then the
// trajectory snapshot and WAL. A corrupt or truncated log tail degrades to
// recovering the valid prefix; a corrupt deployments.json fails the boot
// loudly, since it is written atomically and everything hangs off it.
// It runs before the persister's writer starts, so tombstones it enqueues
// (for budget-dropped entries) are flushed once serving begins. ts is the
// concrete trajectory store (restore is a recovery concern, deliberately off
// the handler-facing trajectoryStore interface).
func (s *Server) recoverFrom(dir string, ts *trajStore) error {
	start := time.Now()
	tr := obs.NewTrace("persist.recover")
	_, root := obs.Start(obs.WithTrace(context.Background(), tr), "persist.recover")
	defer func() {
		root.End()
		s.recorder.Record(tr)
	}()

	recoveredDeps, err := s.recoverDeployments(dir)
	if err != nil {
		return err
	}

	// Fold snapshot + WAL into the latest state per id. seq orders surviving
	// records by their last write, approximating storage recency; maxT tracks
	// every trajectory id ever mentioned (tombstones included) plus the
	// compaction meta counter, so fresh ids can never collide.
	type pending struct {
		rec persist.Record
		seq int
	}
	latest := make(map[string]pending)
	seq, maxT := 0, 0
	apply := func(rec persist.Record) error {
		switch rec.Op {
		case "meta":
			var mp metaPayload
			if json.Unmarshal(rec.Data, &mp) == nil && mp.Next > maxT {
				maxT = mp.Next
			}
		case "put":
			seq++
			latest[rec.ID] = pending{rec: rec, seq: seq}
			if n, ok := idNum("t", rec.ID); ok && n > maxT {
				maxT = n
			}
		case "del":
			delete(latest, rec.ID)
			if n, ok := idNum("t", rec.ID); ok && n > maxT {
				maxT = n
			}
		}
		return nil
	}
	_, snapTrunc, err := persist.ReplayLog(filepath.Join(dir, trajSnapshotFile), apply)
	if err != nil {
		return err
	}
	walN, walTrunc, err := persist.ReplayLog(filepath.Join(dir, trajWALFile), apply)
	if err != nil {
		return err
	}
	truncated := snapTrunc || walTrunc
	if truncated {
		s.logger.Warn("persist: log tail corrupt or truncated; recovered the valid prefix",
			slog.Bool("snapshot", snapTrunc), slog.Bool("wal", walTrunc))
	}

	// Rehydrate surviving records oldest-first. Records whose deployment is
	// gone (deleted after the graph was stored, tombstone not yet flushed at
	// crash time) or whose graph no longer decodes are dropped, not fatal.
	ordered := make([]pending, 0, len(latest))
	for _, pe := range latest {
		ordered = append(ordered, pe)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	items := make([]snapItem, 0, len(ordered))
	dropped := 0
	for _, pe := range ordered {
		d := s.deployments[pe.rec.Dep] // pre-serving: no lock needed
		if d == nil {
			dropped++
			s.logger.Warn("persist: dropping trajectory of unknown deployment",
				slog.String("id", pe.rec.ID), slog.String("deployment", pe.rec.Dep))
			continue
		}
		c, err := rfidclean.DecodeCleaned(bytes.NewReader(pe.rec.Data), d.dep.Plan)
		if err != nil {
			dropped++
			s.logger.Warn("persist: dropping undecodable trajectory",
				slog.String("id", pe.rec.ID), slog.String("error", err.Error()))
			continue
		}
		items = append(items, snapItem{id: pe.rec.ID, depID: pe.rec.Dep, c: c})
	}
	budgetDropped := ts.restore(items, maxT)

	recoveredTraj := len(items) - budgetDropped
	s.metrics.recoveredDeployments.set(int64(recoveredDeps))
	s.metrics.recoveredTrajectories.set(int64(recoveredTraj))
	s.metrics.recoveryDropped.set(int64(dropped + budgetDropped))
	if truncated {
		s.metrics.recoveryTruncated.set(1)
	}
	root.Int("deployments", int64(recoveredDeps)).
		Int("trajectories", int64(recoveredTraj)).
		Int("dropped", int64(dropped+budgetDropped)).
		Int("walRecords", int64(walN))
	if recoveredDeps > 0 || recoveredTraj > 0 || truncated {
		s.logger.Info("persist: recovery complete",
			slog.Int("deployments", recoveredDeps),
			slog.Int("trajectories", recoveredTraj),
			slog.Int("dropped", dropped+budgetDropped),
			slog.Bool("truncated", truncated),
			slog.Duration("took", time.Since(start)))
	}
	return nil
}

// recoverDeployments loads deployments.json, registering each deployment
// under its original id and restoring the id counter.
func (s *Server) recoverDeployments(dir string) (int, error) {
	raw, err := os.ReadFile(filepath.Join(dir, deploymentsFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("server: reading deployments snapshot: %w", err)
	}
	var doc depsDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, fmt.Errorf("server: corrupt %s: %w", deploymentsFile, err)
	}
	if doc.Version != persistFormatVersion {
		return 0, fmt.Errorf("server: unsupported %s version %d", deploymentsFile, doc.Version)
	}
	for _, de := range doc.Deployments {
		dep, err := rfidclean.DecodeDeployment(bytes.NewReader(de.Data))
		if err != nil {
			return 0, fmt.Errorf("server: recovering deployment %s: %w", de.ID, err)
		}
		sys, err := dep.System()
		if err != nil {
			return 0, fmt.Errorf("server: rebuilding deployment %s: %w", de.ID, err)
		}
		s.deployments[de.ID] = &deployment{
			id: de.ID, dep: dep, sys: sys, raw: de.Data,
			cache: newConstraintCache(s.cacheEntries),
		}
		if n, ok := idNum("d", de.ID); ok && n > s.nextDep {
			s.nextDep = n
		}
	}
	if doc.Next > s.nextDep {
		s.nextDep = doc.Next
	}
	s.metrics.deployments.set(int64(len(s.deployments)))
	return len(doc.Deployments), nil
}
