package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs/hist"
)

// This file is the tail-attribution half of /metrics: a per-endpoint request
// latency histogram backed by the shared HDR histogram, with OpenMetrics-
// style exemplars on its buckets. An exemplar links a bucket to the request
// ID of a concrete request that landed in it — and the renderer only emits
// exemplars whose trace is still retained by the recorder, so following one
// to /debug/traces?id= always resolves.

// classifyEndpoint maps a request to the fixed endpoint taxonomy shared with
// cmd/rfidload's SLO vocabulary. Unknown /v1/ shapes fall into "other".
func classifyEndpoint(method, path string) string {
	switch path {
	case "/v1/clean":
		return "clean"
	case "/v1/clean/batch":
		return "clean_batch"
	case "/v1/stream":
		return "stream_open"
	case "/v1/deployments", "/v1/deployments/":
		return "deployments"
	case "/v1/trajectories", "/v1/trajectories/":
		return "trajectory"
	}
	if rest, ok := strings.CutPrefix(path, "/v1/stream/"); ok {
		switch {
		case strings.HasSuffix(rest, "/readings"):
			return "stream_readings"
		case strings.HasSuffix(rest, "/smooth"):
			return "stream_smooth"
		case strings.HasSuffix(rest, "/events"):
			return "stream_events"
		case method == "DELETE":
			return "stream_close"
		default:
			return "stream_status"
		}
	}
	if rest, ok := strings.CutPrefix(path, "/v1/trajectories/"); ok {
		if i := strings.LastIndexByte(rest, '/'); i >= 0 {
			switch rest[i+1:] {
			case "stay":
				return "query_stay"
			case "match":
				return "query_pattern"
			case "top":
				return "query_top"
			case "occupancy":
				return "query_occupancy"
			case "explain":
				return "query_explain"
			}
		}
		return "trajectory"
	}
	if strings.HasPrefix(path, "/v1/deployments/") {
		return "deployments"
	}
	return "other"
}

// exemplar is one bucket's linked request.
type exemplar struct {
	requestID    string
	traced       bool
	valueSeconds float64
	unixNanos    int64
}

// endpointHist is one endpoint's latency distribution: a lock-free HDR
// histogram for the counts plus a mutex-guarded exemplar slot per coarse
// bucket. The slot is only touched for requests whose trace the recorder
// retained, so the common (sampled-away) request pays a single atomic-add
// observe and never takes the lock.
type endpointHist struct {
	hist hist.Hist
	mu   sync.Mutex
	ex   []exemplar // len(bounds)+1, last slot is +Inf
}

// requestHistograms fans endpointHist out over the endpoint taxonomy.
type requestHistograms struct {
	bounds []float64
	mu     sync.Mutex
	eps    map[string]*endpointHist
	// held reports whether a request ID's trace is still retained; nil
	// disables exemplar rendering entirely (tracing off).
	held func(id string) bool
}

func newRequestHistograms(bounds []float64) *requestHistograms {
	return &requestHistograms{bounds: bounds, eps: make(map[string]*endpointHist)}
}

func (rh *requestHistograms) endpoint(name string) *endpointHist {
	rh.mu.Lock()
	eh := rh.eps[name]
	if eh == nil {
		eh = &endpointHist{ex: make([]exemplar, len(rh.bounds)+1)}
		rh.eps[name] = eh
	}
	rh.mu.Unlock()
	return eh
}

// bucketIndex returns the coarse bucket an observation (seconds) falls in;
// len(bounds) is +Inf.
func (rh *requestHistograms) bucketIndex(seconds float64) int {
	return sort.SearchFloat64s(rh.bounds, seconds)
}

// observe records one request. When kept is true (the recorder retained the
// request's trace) the bucket's exemplar is overwritten to point at it —
// bucket overwrite is the exemplar eviction policy, so each bucket links to
// the most recent retained request that landed in it.
func (rh *requestHistograms) observe(endpoint string, d time.Duration, reqID string, kept bool) {
	eh := rh.endpoint(endpoint)
	eh.hist.Observe(d.Nanoseconds())
	if !kept || reqID == "" {
		return
	}
	seconds := d.Seconds()
	idx := rh.bucketIndex(seconds)
	eh.mu.Lock()
	eh.ex[idx] = exemplar{requestID: reqID, traced: true, valueSeconds: seconds, unixNanos: time.Now().UnixNano()}
	eh.mu.Unlock()
}

// writeTo renders the per-endpoint series with exemplar suffixes:
//
//	name_bucket{endpoint="clean",le="2.5"} 40 # {request_id="…",traced="true"} 2.31 1717…
//
// Exemplars whose trace the recorder has since dropped are omitted rather
// than emitted as dead links.
func (rh *requestHistograms) writeTo(w io.Writer, name, help string) {
	writeHeader(w, name, help, "histogram")
	rh.mu.Lock()
	names := make([]string, 0, len(rh.eps))
	for k := range rh.eps {
		names = append(names, k)
	}
	sort.Strings(names)
	eps := make([]*endpointHist, len(names))
	for i, k := range names {
		eps[i] = rh.eps[k]
	}
	rh.mu.Unlock()

	for i, ep := range names {
		eh := eps[i]
		cum := eh.hist.Cumulative(rh.bounds)
		eh.mu.Lock()
		ex := make([]exemplar, len(eh.ex))
		copy(ex, eh.ex)
		eh.mu.Unlock()
		for j, b := range rh.bounds {
			fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=%q} %d", name, ep, formatFloat(b), cum[j])
			rh.writeExemplar(w, ex[j])
			io.WriteString(w, "\n")
		}
		fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=\"+Inf\"} %d", name, ep, cum[len(rh.bounds)])
		rh.writeExemplar(w, ex[len(rh.bounds)])
		io.WriteString(w, "\n")
		fmt.Fprintf(w, "%s_sum{endpoint=%q} %s\n", name, ep, formatFloat(float64(eh.hist.Sum())/1e9))
		fmt.Fprintf(w, "%s_count{endpoint=%q} %d\n", name, ep, eh.hist.Count())
	}
}

func (rh *requestHistograms) writeExemplar(w io.Writer, ex exemplar) {
	if ex.requestID == "" || rh.held == nil || !rh.held(ex.requestID) {
		return
	}
	fmt.Fprintf(w, " # {request_id=%q,traced=\"%t\"} %s %s",
		ex.requestID, ex.traced, formatFloat(ex.valueSeconds),
		formatFloat(float64(ex.unixNanos)/1e9))
}

// quantile exposes an endpoint's latency quantile in seconds (health
// reporting and tests; 0 when the endpoint saw no traffic).
func (rh *requestHistograms) quantile(endpoint string, q float64) float64 {
	rh.mu.Lock()
	eh := rh.eps[endpoint]
	rh.mu.Unlock()
	if eh == nil {
		return 0
	}
	return float64(eh.hist.Quantile(q)) / 1e9
}
