package server

import (
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestClassifyEndpoint(t *testing.T) {
	cases := []struct {
		method, path, want string
	}{
		{"POST", "/v1/clean", "clean"},
		{"POST", "/v1/clean/batch", "clean_batch"},
		{"POST", "/v1/stream", "stream_open"},
		{"POST", "/v1/stream/s1/readings", "stream_readings"},
		{"POST", "/v1/stream/s1/smooth", "stream_smooth"},
		{"GET", "/v1/stream/s1/events", "stream_events"},
		{"DELETE", "/v1/stream/s1", "stream_close"},
		{"GET", "/v1/stream/s1", "stream_status"},
		{"GET", "/v1/trajectories/t1/stay", "query_stay"},
		{"GET", "/v1/trajectories/t1/match", "query_pattern"},
		{"GET", "/v1/trajectories/t1/top", "query_top"},
		{"GET", "/v1/trajectories/t1/occupancy", "query_occupancy"},
		{"GET", "/v1/trajectories/t1/explain", "query_explain"},
		{"GET", "/v1/trajectories/t1", "trajectory"},
		{"GET", "/v1/trajectories", "trajectory"},
		{"DELETE", "/v1/trajectories/t1", "trajectory"},
		{"GET", "/v1/deployments", "deployments"},
		{"GET", "/v1/deployments/d1", "deployments"},
		{"POST", "/v1/deployments", "deployments"},
		{"GET", "/v1/nonsense", "other"},
	}
	for _, c := range cases {
		if got := classifyEndpoint(c.method, c.path); got != c.want {
			t.Errorf("classifyEndpoint(%s %s) = %q, want %q", c.method, c.path, got, c.want)
		}
	}
}

// exemplarLine matches an OpenMetrics bucket line carrying an exemplar:
//
//	name_bucket{endpoint="...",le="..."} N # {request_id="...",traced="true"} <value> <timestamp>
var exemplarLine = regexp.MustCompile(
	`^[a-z_]+_bucket\{endpoint="[a-z_]+",le="[^"]+"\} \d+ # \{request_id="[^"]+",traced="(true|false)"\} [0-9.e+-]+ [0-9.e+-]+$`)

// TestExemplarRendering drives the unit renderer: buckets whose retained
// request landed in them carry a well-formed exemplar, buckets without a
// retained request (sampled away, no request ID, or since dropped by the
// recorder) render bare.
func TestExemplarRendering(t *testing.T) {
	rh := newRequestHistograms(LatencyBucketBounds())
	held := map[string]bool{"req-fast": true, "req-slow": true}
	rh.held = func(id string) bool { return held[id] }

	rh.observe("clean", 700*time.Microsecond, "req-fast", true) // le="0.001"
	rh.observe("clean", 7*time.Second, "req-slow", true)        // le="10"
	rh.observe("clean", 20*time.Second, "req-dropped", true)    // +Inf, but not held
	rh.observe("clean", 300*time.Microsecond, "", true)         // no request ID

	var buf strings.Builder
	rh.writeTo(&buf, "rfidclean_request_duration_seconds", "request latency")
	out := buf.String()

	wantExemplar := map[string]string{`le="0.001"`: "req-fast", `le="10"`: "req-slow"}
	sawSum, sawCount := false, false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "_sum{") {
			sawSum = true
		}
		if strings.Contains(line, "_count{") {
			sawCount = true
		}
		if !strings.Contains(line, " # ") {
			continue
		}
		if !exemplarLine.MatchString(line) {
			t.Errorf("malformed exemplar line: %s", line)
		}
		matched := false
		for le, id := range wantExemplar {
			if strings.Contains(line, le) {
				if !strings.Contains(line, `request_id="`+id+`"`) {
					t.Errorf("bucket %s links %s, want %s", le, line, id)
				}
				delete(wantExemplar, le)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected exemplar on line: %s", line)
		}
	}
	if len(wantExemplar) != 0 {
		t.Errorf("buckets missing exemplars: %v\n%s", wantExemplar, out)
	}
	if !sawSum || !sawCount {
		t.Errorf("_sum/_count series missing:\n%s", out)
	}
	if strings.Contains(out, "req-dropped") {
		t.Errorf("dropped trace rendered as a dead exemplar link:\n%s", out)
	}

	// With no held callback (tracing off) no exemplars render at all.
	rh.held = nil
	buf.Reset()
	rh.writeTo(&buf, "rfidclean_request_duration_seconds", "request latency")
	if strings.Contains(buf.String(), " # ") {
		t.Error("exemplars rendered with tracing disabled")
	}
}

// TestExemplarBucketOverwrite pins the eviction policy: a bucket's exemplar
// slot holds the most recent retained request, so a second request in the
// same bucket replaces the first.
func TestExemplarBucketOverwrite(t *testing.T) {
	rh := newRequestHistograms(LatencyBucketBounds())
	rh.held = func(string) bool { return true }
	rh.observe("clean", 700*time.Microsecond, "first", true)
	rh.observe("clean", 800*time.Microsecond, "second", true)
	// A non-retained request must NOT displace the retained exemplar.
	rh.observe("clean", 900*time.Microsecond, "sampled-away", false)

	var buf strings.Builder
	rh.writeTo(&buf, "h", "help")
	out := buf.String()
	if strings.Contains(out, `request_id="first"`) {
		t.Errorf("overwritten exemplar still rendered:\n%s", out)
	}
	if !strings.Contains(out, `request_id="second"`) {
		t.Errorf("latest retained exemplar missing:\n%s", out)
	}
	if strings.Contains(out, "sampled-away") {
		t.Errorf("non-retained request claimed the exemplar slot:\n%s", out)
	}
}

// TestMetricsExemplarResolves is the acceptance loop: a clean's latency
// bucket on /metrics carries an exemplar whose request_id fetches a concrete
// trace at /debug/traces?id=.
func TestMetricsExemplarResolves(t *testing.T) {
	base, depID, _, readings := harness(t)
	cleanWithID(t, base, "cafebabecafebabe", CleanRequest{
		Deployment: depID, Readings: readings, MaxSpeed: 2, MinStay: 3,
	})

	body := scrape(t, base)
	var exID string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `rfidclean_request_duration_seconds_bucket{endpoint="clean"`) &&
			strings.Contains(line, " # ") {
			m := regexp.MustCompile(`request_id="([^"]+)"`).FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("exemplar without request_id: %s", line)
			}
			exID = m[1]
			break
		}
	}
	if exID == "" {
		t.Fatalf("no exemplar on any clean latency bucket:\n%s", body)
	}
	if exID != "cafebabecafebabe" {
		t.Fatalf("exemplar request_id = %q, want the clean's request ID", exID)
	}
	if status := getJSON(t, base+"/debug/traces?id="+exID, nil); status != http.StatusOK {
		t.Fatalf("exemplar %q does not resolve at /debug/traces: status %d", exID, status)
	}
}

// BenchmarkObserveWithExemplars measures the per-request observe cost with
// the realistic retention mix: roughly one in eight requests keeps its trace
// and takes the exemplar-slot lock, the rest ride the lock-free histogram.
func BenchmarkObserveWithExemplars(b *testing.B) {
	rh := newRequestHistograms(LatencyBucketBounds())
	rh.held = func(string) bool { return true }
	// Warm the endpoint so its one-time histogram allocation stays outside
	// the timer: the steady state is what the zero-alloc contract covers.
	rh.observe("clean", 3*time.Millisecond, "warm", true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rh.observe("clean", 3*time.Millisecond, "bench-request-id", i%8 == 0)
	}
}
