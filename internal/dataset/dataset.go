// Package dataset assembles the paper's two synthetic datasets (§6.1): SYN1
// (a four-floor building) and SYN2 (an eight-floor building), both with
// floors modeled on Fig. 1(a): a corridor serving a row of rooms, a
// stairwell linking the floors, one pair of directly connected rooms per
// floor, and RFID readers placed so that coverage overlaps near doors
// (making readings ambiguous, which is the problem the paper sets out to
// clean).
//
// A Dataset bundles everything an experiment needs: the plan, the readers,
// the ground-truth detection matrix F (used by the reading generator), the
// calibrated matrix F̂ and the prior p*(l|R) built from it (§6.2), and the
// three constraint sets of §6.3 (DU, DU+LT, DU+LT+TT).
package dataset

import (
	"fmt"

	"repro/internal/constraints"
	"repro/internal/floorplan"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/prior"
	"repro/internal/rfid"
	"repro/internal/stats"
)

// Selection names one of the paper's three constraint sets (§6.3, §6.5).
type Selection int

const (
	// SelDU uses only the direct-unreachability constraints implied by
	// the map.
	SelDU Selection = iota
	// SelDULT adds the latency constraints (5 s minimum stay everywhere
	// but the corridors).
	SelDULT
	// SelDULTTT adds the traveling-time constraints derived from minimum
	// walking distances and the maximum walking speed.
	SelDULTTT
)

// String implements fmt.Stringer using the paper's notation.
func (s Selection) String() string {
	switch s {
	case SelDU:
		return "DU"
	case SelDULT:
		return "DU+LT"
	case SelDULTTT:
		return "DU+LT+TT"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// Selections lists the paper's constraint sets in increasing strength.
var Selections = []Selection{SelDU, SelDULT, SelDULTTT}

// Config parameterizes dataset construction. Use SYN1/SYN2 for the paper's
// datasets.
type Config struct {
	Floors             int
	Seed               uint64
	CellSize           float64         // grid cell side (§6.2 uses 0.5 m)
	Detection          rfid.ThreeState // ground-truth antenna model
	CalibrationSamples int             // §6.2 keeps a tag 30 s per cell
	MaxSpeed           float64         // m/s, for TT inference and the generator
	MinStay            int             // LT minimum stay (§6.3 uses 5 s)
	TTCap              int             // cap on inferred TT horizons (0 = uncapped; see constraints.InferTT)
	PriorOptions       prior.Options   // formula/pruning (defaults reproduce the paper)
}

// SYN1 returns the configuration of the paper's four-floor dataset.
func SYN1() Config { return synConfig(4, 0x5751) }

// SYN2 returns the configuration of the paper's eight-floor dataset.
func SYN2() Config { return synConfig(8, 0x5752) }

func synConfig(floors int, seed uint64) Config {
	return Config{
		Floors:             floors,
		Seed:               seed,
		CellSize:           0.5,
		Detection:          rfid.DefaultThreeState(),
		CalibrationSamples: 30,
		MaxSpeed:           2,
		MinStay:            5,
		TTCap:              15,
	}
}

// Durations lists the paper's trajectory durations in seconds
// ({30, 60, 90, 120} minutes, §6.1).
var Durations = []int{30 * 60, 60 * 60, 90 * 60, 120 * 60}

// TrajectoriesPerDuration is the paper's 25 trajectories per duration (§6.1).
const TrajectoriesPerDuration = 25

// Dataset is a fully assembled synthetic dataset.
type Dataset struct {
	Name    string
	Config  Config
	Plan    *floorplan.Plan
	Cells   *rfid.CellSpace
	Readers []rfid.Reader
	// Truth is the ground-truth detection matrix the reading generator
	// samples from.
	Truth *rfid.Matrix
	// Learned is the calibrated matrix F̂ the prior is built on (§6.2).
	Learned *rfid.Matrix
	// Prior is p*(l|R) over Learned.
	Prior *prior.Model

	du, lt, tt *constraints.Set
}

// Instance pairs a ground-truth trajectory with the readings it produced.
type Instance struct {
	Truth    *gen.Trajectory
	Readings rfid.Sequence
}

// Build assembles a dataset from a configuration.
func Build(name string, cfg Config) (*Dataset, error) {
	if cfg.Floors < 1 {
		return nil, fmt.Errorf("dataset: need at least one floor, got %d", cfg.Floors)
	}
	if cfg.CellSize <= 0 {
		return nil, fmt.Errorf("dataset: cell size must be positive")
	}
	if cfg.MaxSpeed <= 0 {
		return nil, fmt.Errorf("dataset: max speed must be positive")
	}
	plan, readers, err := buildBuilding(cfg.Floors)
	if err != nil {
		return nil, err
	}
	cells, err := rfid.NewCellSpace(plan, cfg.CellSize)
	if err != nil {
		return nil, err
	}
	truth := rfid.NewTruthMatrix(cells, readers, cfg.Detection)
	rng := stats.NewRNG(cfg.Seed)
	learned := rfid.Calibrate(truth, cfg.CalibrationSamples, rng.Split())

	d := &Dataset{
		Name:    name,
		Config:  cfg,
		Plan:    plan,
		Cells:   cells,
		Readers: readers,
		Truth:   truth,
		Learned: learned,
		Prior:   prior.New(learned, cfg.PriorOptions),
	}
	d.du = constraints.InferDU(plan)
	d.lt = constraints.InferLT(plan, cfg.MinStay, floorplan.Corridor)
	d.tt, err = constraints.InferTT(plan, cfg.MaxSpeed, cfg.TTCap)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Constraints returns a fresh constraint set for the given selection.
func (d *Dataset) Constraints(sel Selection) *constraints.Set {
	out := d.du.Clone()
	if sel >= SelDULT {
		out.Merge(d.lt)
	}
	if sel >= SelDULTTT {
		out.Merge(d.tt)
	}
	return out
}

// Generate produces n trajectory/reading instances of the given duration
// (in timestamps), deterministically from the dataset seed and the caller's
// stream index so experiments are reproducible.
func (d *Dataset) Generate(duration, n int, stream uint64) ([]Instance, error) {
	rng := stats.NewRNG(d.Config.Seed ^ (0x9E3779B97F4A7C15 * (stream + uint64(duration) + 1)))
	cfg := gen.NewConfig(duration)
	cfg.MaxSpeed = d.Config.MaxSpeed
	out := make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		traj, err := gen.GenerateTrajectory(d.Plan, cfg, rng.Split())
		if err != nil {
			return nil, err
		}
		readings := gen.GenerateReadings(traj, d.Truth, rng.Split())
		out = append(out, Instance{Truth: traj, Readings: readings})
	}
	return out, nil
}

// Floor geometry constants (meters), modeled on Fig. 1(a).
const (
	floorW    = 22.0
	floorH    = 10.0
	corridorH = 3.0
	doorWidth = 1.2
	stairLen  = 7.0
)

// buildBuilding constructs the multi-floor plan and its readers. Each floor:
//
//	+------+------+------+-----+-----+
//	|  L1  d  L2  |  L3  | L4  | ST  |   rooms, y in [3, 10]
//	+--d---+--d---+--d---+--d--+--d--+
//	|            corridor            |   y in [0, 3]
//	+--------------------------------+
//
// L1 and L2 are also joined by a direct room-to-room door (d), giving the
// map non-trivial DU structure; ST is the stairwell, linked to the next
// floor's stairwell.
func buildBuilding(floors int) (*floorplan.Plan, []rfid.Reader, error) {
	b := floorplan.NewBuilder()
	var readers []rfid.Reader
	readerID := 0
	addReader := func(name string, floor int, p geom.Point) {
		readers = append(readers, rfid.Reader{ID: readerID, Name: name, Floor: floor, Pos: p})
		readerID++
	}
	prevStairs := -1
	for f := 0; f < floors; f++ {
		fl := fmt.Sprintf("F%d", f)
		cor := b.AddLocation(fl+".corridor", floorplan.Corridor, f, geom.RectWH(0, 0, floorW, corridorH))
		l1 := b.AddLocation(fl+".L1", floorplan.Room, f, geom.RectWH(0, corridorH, 5, floorH-corridorH))
		l2 := b.AddLocation(fl+".L2", floorplan.Room, f, geom.RectWH(5, corridorH, 5, floorH-corridorH))
		l3 := b.AddLocation(fl+".L3", floorplan.Room, f, geom.RectWH(10, corridorH, 5, floorH-corridorH))
		l4 := b.AddLocation(fl+".L4", floorplan.Room, f, geom.RectWH(15, corridorH, 4, floorH-corridorH))
		st := b.AddLocation(fl+".stairs", floorplan.Stairwell, f, geom.RectWH(19, corridorH, 3, floorH-corridorH))

		b.AddDoor(cor, l1, geom.Pt(2.5, corridorH), doorWidth)
		b.AddDoor(cor, l2, geom.Pt(7.5, corridorH), doorWidth)
		b.AddDoor(cor, l3, geom.Pt(12.5, corridorH), doorWidth)
		b.AddDoor(cor, l4, geom.Pt(17, corridorH), doorWidth)
		b.AddDoor(cor, st, geom.Pt(20.5, corridorH), doorWidth)
		// Direct room-to-room door between L1 and L2.
		b.AddDoor(l1, l2, geom.Pt(5, 7), doorWidth)

		if prevStairs >= 0 {
			b.AddStairs(prevStairs, st, geom.Pt(20.5, 6.5), geom.Pt(20.5, 6.5), stairLen)
		}
		prevStairs = st

		// Readers: one just inside each room near its corridor door
		// (seeing both sides of the doorway), one deeper in each room,
		// four along the corridor, and one in the stairwell. Overlap
		// near doors is what makes readings ambiguous; the in-room
		// readers keep missed reads (empty reader sets, which leave
		// every location possible a priori) reasonably rare.
		addReader(fl+".r1", f, geom.Pt(2.5, corridorH+1))
		addReader(fl+".r2", f, geom.Pt(7.5, corridorH+1))
		addReader(fl+".r3", f, geom.Pt(12.5, corridorH+1))
		addReader(fl+".r4", f, geom.Pt(17, corridorH+1))
		addReader(fl+".r1b", f, geom.Pt(2.5, 8))
		addReader(fl+".r2b", f, geom.Pt(7.5, 8))
		addReader(fl+".r3b", f, geom.Pt(12.5, 8))
		addReader(fl+".r4b", f, geom.Pt(17, 8))
		addReader(fl+".rc1", f, geom.Pt(3, 1.5))
		addReader(fl+".rc2", f, geom.Pt(8.5, 1.5))
		addReader(fl+".rc3", f, geom.Pt(14, 1.5))
		addReader(fl+".rc4", f, geom.Pt(19.5, 1.5))
		addReader(fl+".rs", f, geom.Pt(20.5, 6.5))
	}
	plan, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return plan, readers, nil
}
