package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfigByName(t *testing.T) {
	for _, name := range []string{"SYN1", "SYN2"} {
		cfg, err := ConfigByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Floors == 0 {
			t.Errorf("%s: zero config", name)
		}
	}
	if _, err := ConfigByName("SYN9"); err == nil {
		t.Errorf("unknown dataset accepted")
	}
}

func TestSelectionByName(t *testing.T) {
	for _, sel := range Selections {
		got, err := SelectionByName(sel.String())
		if err != nil || got != sel {
			t.Errorf("round trip %v failed: %v %v", sel, got, err)
		}
	}
	if _, err := SelectionByName("ALL"); err == nil {
		t.Errorf("unknown selection accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := buildSYN1(t)
	insts, err := d.Generate(60, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, fullPoints := range []bool{false, true} {
		var buf bytes.Buffer
		if err := Save(&buf, "SYN1", insts, fullPoints); err != nil {
			t.Fatal(err)
		}
		f, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Dataset != "SYN1" || len(f.Instances) != 2 {
			t.Fatalf("loaded %+v", f)
		}
		for i, fi := range f.Instances {
			if fi.Duration != 60 {
				t.Errorf("instance %d duration = %d", i, fi.Duration)
			}
			truth := insts[i].Truth.Locations()
			for tau := range truth {
				if fi.TruthLocations[tau] != truth[tau] {
					t.Fatalf("instance %d truth diverged at %d", i, tau)
				}
				if !fi.Readings[tau].Readers.Equal(insts[i].Readings[tau].Readers) {
					t.Fatalf("instance %d readings diverged at %d", i, tau)
				}
			}
			if fullPoints && len(fi.TruthPoints) != 60 {
				t.Errorf("instance %d missing points", i)
			}
			if !fullPoints && len(fi.TruthPoints) != 0 {
				t.Errorf("instance %d has unexpected points", i)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"unknown dataset": `{"dataset":"NOPE","instances":[{"duration":1,"readings":[{"time":0,"readers":[]}],"truthLocations":[0]}]}`,
		"empty":           `{"dataset":"SYN1","instances":[]}`,
		"bad readings":    `{"dataset":"SYN1","instances":[{"duration":2,"readings":[{"time":5,"readers":[]}],"truthLocations":[0]}]}`,
		"length mismatch": `{"dataset":"SYN1","instances":[{"duration":1,"readings":[{"time":0,"readers":[]}],"truthLocations":[0,1]}]}`,
	}
	for name, body := range cases {
		if _, err := Load(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
