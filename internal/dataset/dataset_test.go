package dataset

import (
	"math"
	"strings"
	"testing"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/rfid"
)

func buildSYN1(t *testing.T) *Dataset {
	t.Helper()
	d, err := Build("SYN1", SYN1())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildSYN1Shape(t *testing.T) {
	d := buildSYN1(t)
	if d.Plan.NumFloors() != 4 {
		t.Errorf("floors = %d", d.Plan.NumFloors())
	}
	if got := d.Plan.NumLocations(); got != 4*6 {
		t.Errorf("locations = %d, want 24", got)
	}
	if got := len(d.Readers); got != 4*13 {
		t.Errorf("readers = %d, want 52", got)
	}
	if d.Cells.NumCells() != d.Cells.CellsPerFloor()*4 {
		t.Errorf("cell space inconsistent")
	}
	// Every location must contain at least one grid cell.
	for _, l := range d.Plan.Locations() {
		if len(d.Cells.CellsOfLocation(l.ID)) == 0 {
			t.Errorf("location %q has no cells", l.Name)
		}
	}
}

func TestBuildSYN2Shape(t *testing.T) {
	d, err := Build("SYN2", SYN2())
	if err != nil {
		t.Fatal(err)
	}
	if d.Plan.NumFloors() != 8 {
		t.Errorf("floors = %d", d.Plan.NumFloors())
	}
	if got := d.Plan.NumLocations(); got != 8*6 {
		t.Errorf("locations = %d, want 48", got)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build("bad", Config{}); err == nil {
		t.Errorf("zero config accepted")
	}
	cfg := SYN1()
	cfg.Floors = 0
	if _, err := Build("bad", cfg); err == nil {
		t.Errorf("zero floors accepted")
	}
	cfg = SYN1()
	cfg.MaxSpeed = -1
	if _, err := Build("bad", cfg); err == nil {
		t.Errorf("negative speed accepted")
	}
	cfg = SYN1()
	cfg.CellSize = 0
	if _, err := Build("bad", cfg); err == nil {
		t.Errorf("zero cell size accepted")
	}
}

func TestConstraintSelections(t *testing.T) {
	d := buildSYN1(t)
	duCount := func(s *constraints.Set) int { du, _, _ := s.Counts(); return du }
	ltCount := func(s *constraints.Set) int { _, lt, _ := s.Counts(); return lt }
	ttCount := func(s *constraints.Set) int { _, _, tt := s.Counts(); return tt }

	du := d.Constraints(SelDU)
	if duCount(du) == 0 || ltCount(du) != 0 || ttCount(du) != 0 {
		t.Errorf("SelDU counts = %v", du)
	}
	dult := d.Constraints(SelDULT)
	if ltCount(dult) == 0 || ttCount(dult) != 0 {
		t.Errorf("SelDULT counts = %v", dult)
	}
	all := d.Constraints(SelDULTTT)
	if ttCount(all) == 0 {
		t.Errorf("SelDULTTT has no TT constraints")
	}
	// LT excludes corridors.
	cor, ok := d.Plan.LocationByName("F0.corridor")
	if !ok {
		t.Fatal("corridor missing")
	}
	if _, has := all.Latency(cor.ID); has {
		t.Errorf("corridor has a latency constraint")
	}
	// Directly connected rooms L1-L2 must not be DU.
	l1, _ := d.Plan.LocationByName("F0.L1")
	l2, _ := d.Plan.LocationByName("F0.L2")
	l3, _ := d.Plan.LocationByName("F0.L3")
	if all.Unreachable(l1.ID, l2.ID) {
		t.Errorf("adjacent rooms marked unreachable")
	}
	if !all.Unreachable(l1.ID, l3.ID) {
		t.Errorf("non-adjacent rooms not marked unreachable")
	}
	// Cross-floor rooms get TT constraints.
	f1l1, _ := d.Plan.LocationByName("F1.L1")
	if _, ok := all.TT(l1.ID, f1l1.ID); !ok {
		t.Errorf("no TT constraint between floors")
	}
	// Selections are independent clones.
	du.AddDU(l1.ID, l2.ID)
	if d.Constraints(SelDU).Unreachable(l1.ID, l2.ID) {
		t.Errorf("Constraints returned a shared set")
	}
}

func TestSelectionString(t *testing.T) {
	if SelDU.String() != "DU" || SelDULT.String() != "DU+LT" || SelDULTTT.String() != "DU+LT+TT" {
		t.Errorf("selection strings wrong")
	}
	if !strings.Contains(Selection(9).String(), "9") {
		t.Errorf("unknown selection string wrong")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	d := buildSYN1(t)
	a, err := d.Generate(120, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Generate(120, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("instance counts = %d, %d", len(a), len(b))
	}
	for i := range a {
		la, lb := a[i].Truth.Locations(), b[i].Truth.Locations()
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("instance %d diverged at %d", i, j)
			}
		}
		for j := range a[i].Readings {
			if !a[i].Readings[j].Readers.Equal(b[i].Readings[j].Readers) {
				t.Fatalf("readings %d diverged at %d", i, j)
			}
		}
	}
	c, err := d.Generate(120, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j, l := range c[0].Truth.Locations() {
		if l != a[0].Truth.Locations()[j] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different streams produced identical trajectories")
	}
}

func TestGroundTruthSatisfiesAllSelections(t *testing.T) {
	d := buildSYN1(t)
	insts, err := d.Generate(600, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range Selections {
		ic := d.Constraints(sel)
		for i, inst := range insts {
			if !ic.ValidTrajectory(inst.Truth.Locations(), constraints.LenientEnd) {
				t.Errorf("instance %d violates %v", i, sel)
			}
		}
	}
}

// TestEndToEndCleaning runs the full pipeline on a short trajectory: prior ->
// l-sequence -> ct-graph -> queries, checking structural invariants and that
// conditioning does not hurt stay accuracy on average.
func TestEndToEndCleaning(t *testing.T) {
	d := buildSYN1(t)
	insts, err := d.Generate(180, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		ls, err := d.Prior.LSequence(inst.Readings)
		if err != nil {
			t.Fatal(err)
		}
		g, err := core.Build(ls, d.Constraints(SelDULT), &core.Options{EndLatency: constraints.LenientEnd})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckInvariants(1e-6); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		e := query.NewEngine(g, d.Plan.NumLocations())
		truthLocs := inst.Truth.Locations()
		var condAcc, priorAcc float64
		for tau := 0; tau < 180; tau += 10 {
			dist, err := e.Stay(tau)
			if err != nil {
				t.Fatal(err)
			}
			condAcc += query.StayAccuracy(dist, truthLocs[tau])
			// Prior accuracy: the unconditioned per-step distribution.
			pd := d.Prior.Dist(inst.Readings[tau].Readers)
			priorAcc += query.StayAccuracy(pd, truthLocs[tau])
		}
		if condAcc < 0 || math.IsNaN(condAcc) {
			t.Fatalf("broken accuracy %v", condAcc)
		}
		t.Logf("conditioned stay accuracy %.3f vs prior %.3f (sum over 18 queries)", condAcc, priorAcc)
	}
}

// TestReaderOutageRobustness injects a hard reader failure: every reading
// from the failed readers is dropped (as if the antennas went dark), and the
// learned matrix is rebuilt without them. Cleaning must still succeed and
// accuracy must degrade gracefully rather than collapse.
func TestReaderOutageRobustness(t *testing.T) {
	cfg := SYN1()
	cfg.Floors = 1
	d, err := Build("TINY", cfg)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := d.Generate(180, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the two in-room readers of L1 (door + deep) — the object loses
	// direct coverage there.
	failed := map[int]bool{}
	for _, r := range d.Readers {
		if r.Name == "F0.r1" || r.Name == "F0.r1b" {
			failed[r.ID] = true
		}
	}
	if len(failed) != 2 {
		t.Fatalf("expected to fail 2 readers, found %d", len(failed))
	}
	for _, inst := range insts {
		// Drop failed readers from the observed data.
		broken := make(rfid.Sequence, len(inst.Readings))
		for i, rd := range inst.Readings {
			var keep []int
			for _, id := range rd.Readers.IDs() {
				if !failed[id] {
					keep = append(keep, id)
				}
			}
			broken[i] = rfid.Reading{Time: rd.Time, Readers: rfid.NewSet(keep...)}
		}
		ls, err := d.Prior.LSequence(broken)
		if err != nil {
			t.Fatal(err)
		}
		g, err := core.Build(ls, d.Constraints(SelDULT), &core.Options{EndLatency: constraints.LenientEnd})
		if err != nil {
			t.Fatalf("cleaning failed under reader outage: %v", err)
		}
		eng := query.NewEngine(g, d.Plan.NumLocations())
		truth := inst.Truth.Locations()
		acc := 0.0
		n := 0
		for tau := 0; tau < 180; tau += 10 {
			dist, err := eng.Stay(tau)
			if err != nil {
				t.Fatal(err)
			}
			acc += query.StayAccuracy(dist, truth[tau])
			n++
		}
		if acc/float64(n) < 0.2 {
			t.Errorf("accuracy collapsed under outage: %.3f", acc/float64(n))
		}
	}
}

// TestAllReadersDark: an object outside all coverage (every reading empty)
// still cleans — the prior falls back to area-proportional candidates and
// the constraints do the rest.
func TestAllReadersDark(t *testing.T) {
	cfg := SYN1()
	cfg.Floors = 1
	d, err := Build("TINY", cfg)
	if err != nil {
		t.Fatal(err)
	}
	dark := make(rfid.Sequence, 60)
	for i := range dark {
		dark[i] = rfid.Reading{Time: i}
	}
	ls, err := d.Prior.LSequence(dark)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Build(ls, d.Constraints(SelDULT), &core.Options{EndLatency: constraints.LenientEnd})
	if err != nil {
		t.Fatalf("cleaning failed on all-dark readings: %v", err)
	}
	if err := g.CheckInvariants(1e-6); err != nil {
		t.Fatal(err)
	}
}
