package dataset

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/gen"
	"repro/internal/rfid"
)

// File is the on-disk JSON format shared by cmd/datagen (writer) and
// cmd/rfidclean (reader): a batch of instances generated from one of the
// built-in datasets. The dataset name lets the consumer rebuild the matching
// plan, prior and constraints.
type File struct {
	// Dataset is "SYN1" or "SYN2".
	Dataset string `json:"dataset"`
	// Instances holds the generated trajectories and their readings.
	Instances []FileInstance `json:"instances"`
}

// FileInstance is one serialized trajectory/reading pair. TruthLocations is
// the per-timestamp ground truth (location IDs), kept so downstream tools
// can score cleaning accuracy; TruthPoints carries the full positions.
type FileInstance struct {
	Duration       int              `json:"duration"`
	Readings       rfid.Sequence    `json:"readings"`
	TruthLocations []int            `json:"truthLocations"`
	TruthPoints    []gen.TrackPoint `json:"truthPoints,omitempty"`
}

// ConfigByName resolves the built-in dataset configurations.
func ConfigByName(name string) (Config, error) {
	switch name {
	case "SYN1":
		return SYN1(), nil
	case "SYN2":
		return SYN2(), nil
	default:
		return Config{}, fmt.Errorf("dataset: unknown dataset %q (want SYN1 or SYN2)", name)
	}
}

// SelectionByName resolves the paper's constraint-set names.
func SelectionByName(name string) (Selection, error) {
	for _, sel := range Selections {
		if sel.String() == name {
			return sel, nil
		}
	}
	return 0, fmt.Errorf("dataset: unknown constraint set %q (want DU, DU+LT or DU+LT+TT)", name)
}

// Save writes instances as JSON. When fullPoints is false the (bulky)
// per-timestamp positions are omitted and only ground-truth location IDs are
// kept.
func Save(w io.Writer, name string, instances []Instance, fullPoints bool) error {
	f := File{Dataset: name}
	for _, inst := range instances {
		fi := FileInstance{
			Duration:       inst.Truth.Duration(),
			Readings:       inst.Readings,
			TruthLocations: inst.Truth.Locations(),
		}
		if fullPoints {
			fi.TruthPoints = inst.Truth.Points
		}
		f.Instances = append(f.Instances, fi)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// Load reads a File written by Save and validates it.
func Load(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("dataset: decoding instance file: %w", err)
	}
	if _, err := ConfigByName(f.Dataset); err != nil {
		return nil, err
	}
	if len(f.Instances) == 0 {
		return nil, fmt.Errorf("dataset: instance file is empty")
	}
	for i, inst := range f.Instances {
		if err := inst.Readings.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: instance %d: %w", i, err)
		}
		if len(inst.TruthLocations) != inst.Readings.Duration() {
			return nil, fmt.Errorf("dataset: instance %d: truth/readings length mismatch", i)
		}
	}
	return &f, nil
}
