package core

import (
	"fmt"

	"repro/internal/constraints"
)

// OracleResult is the exact conditioned distribution over valid trajectories
// computed by brute-force enumeration.
type OracleResult struct {
	// Trajectories holds every valid trajectory (one location per
	// timestamp), parallel to Probs.
	Trajectories [][]int
	// Probs holds the conditioned probabilities, summing to 1.
	Probs []float64
	// TotalPrior is the total a-priori probability of the valid
	// trajectories (the denominator of the conditioning).
	TotalPrior float64
	// Enumerated counts all trajectories considered, valid or not.
	Enumerated int
}

// Distribution returns the result keyed by TrajectoryKey.
func (r *OracleResult) Distribution() map[string]float64 {
	out := make(map[string]float64, len(r.Trajectories))
	for i, t := range r.Trajectories {
		out[TrajectoryKey(t)] = r.Probs[i]
	}
	return out
}

// EnumerateConditioned computes p*(t | IC) exactly, the way §3.1 defines it:
// enumerate every trajectory over the l-sequence, keep the ones valid per
// Definition 2, and divide each a-priori probability by their total. This is
// the naive approach the introduction shows to be infeasible in general
// (2^100 trajectories for 100 ambiguous timestamps); it exists as the
// correctness oracle for Build and as the baseline of ablation A4.
//
// It aborts with an error once more than limit trajectories have been
// enumerated. It returns ErrNoValidTrajectory when no trajectory is valid.
func EnumerateConditioned(ls *LSequence, ic *constraints.Set, mode constraints.EndLatencyMode, limit int) (*OracleResult, error) {
	if err := ls.Validate(); err != nil {
		return nil, err
	}
	if ic == nil {
		ic = constraints.NewSet()
	}
	res := &OracleResult{}
	locs := make([]int, ls.Duration())
	var rec func(t int, prior float64) error
	rec = func(t int, prior float64) error {
		if t == ls.Duration() {
			res.Enumerated++
			if res.Enumerated > limit {
				return fmt.Errorf("core: oracle enumeration exceeded %d trajectories", limit)
			}
			if ic.ValidTrajectory(locs, mode) {
				res.Trajectories = append(res.Trajectories, append([]int(nil), locs...))
				res.Probs = append(res.Probs, prior)
				res.TotalPrior += prior
			}
			return nil
		}
		for _, c := range ls.Steps[t].Candidates {
			locs[t] = c.Loc
			if err := rec(t+1, prior*c.P); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 1); err != nil {
		return nil, err
	}
	if res.TotalPrior <= 0 {
		return nil, ErrNoValidTrajectory
	}
	for i := range res.Probs {
		res.Probs[i] /= res.TotalPrior
	}
	return res, nil
}
