package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/constraints"
	"repro/internal/stats"
)

func buildSimple(t *testing.T) *Graph {
	t.Helper()
	ls := FromDistributions([][]float64{
		{0.6, 0.4},
		{0.5, 0.5},
	})
	g, err := Build(ls, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphAccessors(t *testing.T) {
	g := buildSimple(t)
	if g.Duration() != 2 {
		t.Errorf("Duration = %d", g.Duration())
	}
	if len(g.Sources()) != 2 || len(g.Targets()) != 2 {
		t.Errorf("sources/targets = %d/%d", len(g.Sources()), len(g.Targets()))
	}
	s := g.Stats()
	if s.Nodes != 4 || s.Edges != 4 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Bytes <= 0 {
		t.Errorf("Bytes = %d", s.Bytes)
	}
}

func TestPathProbability(t *testing.T) {
	g := buildSimple(t)
	src := g.Sources()[0]
	dst := src.Out()[0].To
	p, err := g.PathProbability([]*Node{src, dst})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-src.SourceProb()*src.Out()[0].P) > 1e-12 {
		t.Errorf("PathProbability = %v", p)
	}
	if _, err := g.PathProbability([]*Node{src}); err == nil {
		t.Errorf("short path accepted")
	}
	if _, err := g.PathProbability([]*Node{dst, src}); err == nil {
		t.Errorf("path not starting at source accepted")
	}
	// Disconnected pair.
	other := g.Sources()[1]
	disconnected := []*Node{src, other}
	if _, err := g.PathProbability(disconnected); err == nil {
		t.Errorf("non-edge accepted")
	}
}

func TestWalkPathsLimit(t *testing.T) {
	g := buildSimple(t)
	if err := g.WalkPaths(2, func([]*Node, float64) {}); err == nil {
		t.Errorf("limit not enforced (4 paths, limit 2)")
	}
	count := 0
	if err := g.WalkPaths(10, func([]*Node, float64) { count++ }); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("walked %d paths, want 4", count)
	}
}

func TestForwardBackwardMass(t *testing.T) {
	ls := FromDistributions([][]float64{
		{0.5, 0.5},
		{0.25, 0.75},
		{1},
	})
	ic := constraints.NewSet()
	ic.AddDU(1, 0)
	g, err := Build(ls, ic, nil)
	if err != nil {
		t.Fatal(err)
	}
	alpha := g.Forward()
	beta := g.Backward()
	for tau := 0; tau < g.Duration(); tau++ {
		var mass float64
		for _, n := range g.NodesAt(tau) {
			mass += alpha[tau][n.Index()] * beta[tau][n.Index()]
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Errorf("mass at %d = %v", tau, mass)
		}
	}
}

func TestMarginalsSumToOne(t *testing.T) {
	ls, ic := runningExample(t)
	g, err := Build(ls, ic, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Marginals(6)
	if err != nil {
		t.Fatal(err)
	}
	for tau, row := range m {
		var sum float64
		for _, p := range row {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("marginals at %d sum to %v", tau, sum)
		}
	}
	// Running example: the object is at L1 then L3, L3 with certainty.
	if m[0][l1] != 1 || m[1][l3] != 1 || m[2][l3] != 1 {
		t.Errorf("marginals = %v", m)
	}
}

func TestNodeString(t *testing.T) {
	n := &Node{Time: 3, Loc: 2, Stay: StayUntracked, TL: []TLEntry{{Time: 1, Loc: 0}}}
	s := n.String()
	if !strings.Contains(s, "L2") || !strings.Contains(s, "⊥") || !strings.Contains(s, "(1,L0)") {
		t.Errorf("String = %q", s)
	}
	n.Stay = 2
	if !strings.Contains(n.String(), "2") {
		t.Errorf("String = %q", n.String())
	}
}

func TestNodeKeyDistinguishes(t *testing.T) {
	in := newTLInterner()
	key := func(loc, stay int, tl []TLEntry) nodeKey {
		return nodeKey{loc: int32(loc), stay: int32(stay), tl: in.intern(tl)}
	}
	a := key(2, 1, nil)
	b := key(2, StayUntracked, nil)
	if a == b {
		t.Errorf("keys should differ on stay counter")
	}
	c := key(2, 1, []TLEntry{{Time: 0, Loc: 5}})
	if a == c {
		t.Errorf("keys should differ on TL")
	}
	d := key(2, 1, []TLEntry{{Time: 0, Loc: 5}})
	if c != d {
		t.Errorf("identical nodes should share a key")
	}
	// Same locations at different leave times are different histories.
	e := key(2, 1, []TLEntry{{Time: 1, Loc: 5}})
	if c == e {
		t.Errorf("keys should differ on TL leave time")
	}
}

func TestTLInternerCanonicalizes(t *testing.T) {
	in := newTLInterner()
	tl := []TLEntry{{Time: 3, Loc: 1}, {Time: 5, Loc: 4}}
	id := in.intern(tl)
	// Mutating the caller's slice must not affect the canonical copy.
	tl[0] = TLEntry{Time: 9, Loc: 9}
	again := in.intern([]TLEntry{{Time: 3, Loc: 1}, {Time: 5, Loc: 4}})
	if id != again {
		t.Errorf("equal TLs interned to %d and %d", id, again)
	}
	seq := in.seq(id)
	if len(seq) != 2 || seq[0] != (TLEntry{Time: 3, Loc: 1}) || seq[1] != (TLEntry{Time: 5, Loc: 4}) {
		t.Errorf("canonical seq = %v", seq)
	}
	if in.intern(nil) != 0 {
		t.Errorf("empty TL should intern to ID 0")
	}
	if in.size() == 0 {
		t.Errorf("interner reports zero size after interning")
	}
	// A proper prefix is a distinct ID sharing the chain.
	pre := in.intern([]TLEntry{{Time: 3, Loc: 1}})
	if pre == id || len(in.seq(pre)) != 1 {
		t.Errorf("prefix interning broken: pre=%d id=%d seq=%v", pre, id, in.seq(pre))
	}
}

func TestNodeIndexMatchesPosition(t *testing.T) {
	ls, ic := runningExample(t)
	g, err := Build(ls, ic, nil)
	if err != nil {
		t.Fatal(err)
	}
	for tau := 0; tau < g.Duration(); tau++ {
		for i, n := range g.NodesAt(tau) {
			if n.Index() != i {
				t.Errorf("node %v at position %d has Index %d", n, i, n.Index())
			}
		}
	}
}

func TestSampleSingleton(t *testing.T) {
	ls := FromDistributions([][]float64{{0, 1}})
	g, err := Build(ls, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	locs := g.Sample(rng)
	if len(locs) != 1 || locs[0] != 1 {
		t.Errorf("Sample = %v", locs)
	}
}

func TestMostProbableSimple(t *testing.T) {
	g := buildSimple(t)
	locs, p := g.MostProbable()
	// Highest-prob path: source 0 (0.6) then either (0.5 each) -> 0.3.
	if math.Abs(p-0.3) > 1e-12 {
		t.Errorf("MostProbable p = %v", p)
	}
	if locs[0] != 0 {
		t.Errorf("MostProbable start = %d", locs[0])
	}
}

func TestTrajectoryKeyAndTrajectory(t *testing.T) {
	if TrajectoryKey([]int{1, 2, 3}) != "1,2,3" {
		t.Errorf("TrajectoryKey wrong")
	}
	if TrajectoryKey(nil) != "" {
		t.Errorf("empty TrajectoryKey wrong")
	}
	g := buildSimple(t)
	src := g.Sources()[0]
	path := []*Node{src, src.Out()[0].To}
	locs := Trajectory(path)
	if len(locs) != 2 || locs[0] != src.Loc {
		t.Errorf("Trajectory = %v", locs)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	g := buildSimple(t)
	// Corrupt an edge probability.
	g.Sources()[0].out[0].P = 0.9
	if err := g.CheckInvariants(1e-9); err == nil {
		t.Errorf("corrupted graph passed invariants")
	}
	if err := (&Graph{}).CheckInvariants(1e-9); err == nil {
		t.Errorf("empty graph passed invariants")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o *Options
	if o.endLatency() != constraints.StrictEnd {
		t.Errorf("nil end latency = %v", o.endLatency())
	}
	o = &Options{EndLatency: constraints.LenientEnd}
	if o.endLatency() != constraints.LenientEnd {
		t.Errorf("options not honored")
	}
}
