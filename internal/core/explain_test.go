package core

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// TestExplainConsistency checks the explain report's bookkeeping against the
// graph it describes: pruned pairs account exactly for the considered-minus-
// accepted gap, per constraint family, and the final node counts match the
// compacted graph.
func TestExplainConsistency(t *testing.T) {
	ls, ic := benchScenario()
	ex := &BuildExplain{}
	g, err := Build(ls, ic, &Options{Explain: ex})
	if err != nil {
		t.Fatal(err)
	}

	if len(ex.Steps) != ls.Duration() {
		t.Fatalf("Steps has %d entries, want %d", len(ex.Steps), ls.Duration())
	}
	var gap int64
	for t2, st := range ex.Steps {
		if st.Considered < st.Accepted {
			t.Fatalf("step %d: accepted %d > considered %d", t2, st.Accepted, st.Considered)
		}
		if t2 > 0 {
			wantConsidered := len(g.NodesAt(t2-1))*st.Candidates + 0
			// NodesAt reflects the compacted graph; Considered counts pairs
			// over the pre-backward level, so only a lower bound holds.
			if st.Considered < wantConsidered {
				t.Fatalf("step %d: considered %d < final-node lower bound %d", t2, st.Considered, wantConsidered)
			}
		}
		if st.NodesFinal != len(g.NodesAt(t2)) {
			t.Fatalf("step %d: NodesFinal %d, graph has %d", t2, st.NodesFinal, len(g.NodesAt(t2)))
		}
		if st.NodesFinal > st.NodesBuilt {
			t.Fatalf("step %d: NodesFinal %d > NodesBuilt %d", t2, st.NodesFinal, st.NodesBuilt)
		}
		gap += int64(st.Considered - st.Accepted)
	}
	if got := ex.PrunedTotal(); got != gap {
		t.Fatalf("prune counters sum to %d, considered-accepted gap is %d", got, gap)
	}
	if ex.PrunedDU == 0 || ex.PrunedLT == 0 || ex.PrunedTT == 0 {
		t.Fatalf("scenario has DU+LT+TT constraints but some counter is zero: %+v", ex)
	}
	total := 0
	for _, st := range ex.Steps {
		total += st.NodesFinal
	}
	if stats := g.Stats(); total != stats.Nodes {
		t.Fatalf("Σ NodesFinal = %d, Stats().Nodes = %d", total, stats.Nodes)
	}
	if ex.Normalizer <= 0 || ex.Normalizer > 1+1e-9 {
		t.Fatalf("Normalizer = %v, want in (0, 1]", ex.Normalizer)
	}
	if ex.ForwardNanos < 0 || ex.BackwardNanos < 0 || ex.ReviseNanos < 0 || ex.CompileNanos < 0 {
		t.Fatalf("negative phase timing: %+v", ex)
	}
}

// TestExplainStability runs the same clean twice and requires every counter
// (everything except wall times) to match: the report must be a function of
// the input, not of scheduling.
func TestExplainStability(t *testing.T) {
	ls, ic := benchScenario()
	run := func() *BuildExplain {
		ex := &BuildExplain{}
		if _, err := Build(ls, ic, &Options{Explain: ex}); err != nil {
			t.Fatal(err)
		}
		ex.CompileNanos, ex.ForwardNanos, ex.BackwardNanos, ex.ReviseNanos = 0, 0, 0, 0
		return ex
	}
	a, b := run(), run()
	if a.PrunedDU != b.PrunedDU || a.PrunedLT != b.PrunedLT || a.PrunedTT != b.PrunedTT {
		t.Fatalf("prune counters differ across identical cleans:\n%+v\n%+v", a, b)
	}
	if a.TargetsCondemned != b.TargetsCondemned || a.BackwardRemoved != b.BackwardRemoved ||
		a.GhostsRemoved != b.GhostsRemoved || a.Normalizer != b.Normalizer {
		t.Fatalf("removal counters differ across identical cleans:\n%+v\n%+v", a, b)
	}
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, a.Steps[i], b.Steps[i])
		}
	}
}

// TestExplainReuse checks that a report handed to a second build is fully
// reset rather than accumulated into.
func TestExplainReuse(t *testing.T) {
	ls, ic := benchScenario()
	ex := &BuildExplain{}
	opts := &Options{Explain: ex}
	if _, err := Build(ls, ic, opts); err != nil {
		t.Fatal(err)
	}
	first := ex.PrunedTotal()
	if _, err := Build(ls, ic, opts); err != nil {
		t.Fatal(err)
	}
	if ex.PrunedTotal() != first {
		t.Fatalf("reused report accumulated: %d after first build, %d after second", first, ex.PrunedTotal())
	}
}

// TestBuildCtxRecordsSpans checks the phase spans land in an attached trace.
func TestBuildCtxRecordsSpans(t *testing.T) {
	ls, ic := benchScenario()
	tr := obs.NewTrace("build-test")
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := BuildCtx(ctx, ls, ic, nil); err != nil {
		t.Fatal(err)
	}
	exp := tr.Export()
	if len(exp.Spans) != 1 || exp.Spans[0].Name != "core.build" {
		t.Fatalf("want one core.build root span, got %+v", exp.Spans)
	}
	names := map[string]bool{}
	for _, sp := range exp.Spans[0].Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"core.compile", "core.forward", "core.backward", "core.revise"} {
		if !names[want] {
			t.Fatalf("missing %s span under core.build; have %v", want, names)
		}
	}
	if exp.Spans[0].Attrs["timestamps"] != int64(ls.Duration()) {
		t.Fatalf("core.build timestamps attr = %v", exp.Spans[0].Attrs["timestamps"])
	}
}

// TestBuildAllocParity pins the zero-overhead contract: the permanently
// instrumented BuildCtx with no trace and no explain report allocates exactly
// as much as plain Build.
func TestBuildAllocParity(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is slow")
	}
	ls, ic := benchScenario()
	base := testing.AllocsPerRun(5, func() {
		if _, err := Build(ls, ic, nil); err != nil {
			t.Fatal(err)
		}
	})
	ctx := context.Background()
	instrumented := testing.AllocsPerRun(5, func() {
		if _, err := BuildCtx(ctx, ls, ic, nil); err != nil {
			t.Fatal(err)
		}
	})
	if instrumented > base {
		t.Fatalf("BuildCtx with no recorder allocates more than Build: %v > %v allocs/op", instrumented, base)
	}
}

// BenchmarkBuildNoRecorder is the instrumented hot path with no recorder
// attached — the acceptance bench for the zero-overhead contract. It must
// stay within the baseline-noise band of BenchmarkBuild.
func BenchmarkBuildNoRecorder(b *testing.B) {
	ls, ic := benchScenario()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildCtx(ctx, ls, ic, nil); err != nil {
			b.Fatal(err)
		}
	}
}
