package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/constraints"
)

// TestQuickFromDistributionsNormalized: for arbitrary non-negative rows,
// normalizing then building an l-sequence always validates, and the prior of
// any trajectory assembled from per-step candidates is the product of its
// step probabilities.
func TestQuickFromDistributionsNormalized(t *testing.T) {
	f := func(raw [3][4]float64, picks [3]uint8) bool {
		dists := make([][]float64, 3)
		for i, row := range raw {
			r := make([]float64, len(row))
			total := 0.0
			for j, v := range row {
				v = math.Abs(v)
				if math.IsNaN(v) || math.IsInf(v, 0) || v > 1e9 {
					v = 1
				}
				r[j] = v
				total += v
			}
			if total == 0 {
				r[0], total = 1, 1
			}
			for j := range r {
				r[j] /= total
			}
			dists[i] = r
		}
		ls := FromDistributions(dists)
		if err := ls.Validate(); err != nil {
			return false
		}
		// Assemble a trajectory from per-step candidate picks and check
		// PriorProbability multiplies the step probabilities.
		locs := make([]int, 3)
		want := 1.0
		for i := range locs {
			cands := ls.Steps[i].Candidates
			c := cands[int(picks[i])%len(cands)]
			locs[i] = c.Loc
			want *= c.P
		}
		got := ls.PriorProbability(locs)
		return math.Abs(got-want) <= 1e-12*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickTrajectoryKeyInjective: distinct short trajectories get distinct
// keys.
func TestQuickTrajectoryKeyInjective(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		la := []int{int(a[0]), int(a[1]), int(a[2]), int(a[3])}
		lb := []int{int(b[0]), int(b[1]), int(b[2]), int(b[3])}
		same := la[0] == lb[0] && la[1] == lb[1] && la[2] == lb[2] && la[3] == lb[3]
		return (TrajectoryKey(la) == TrajectoryKey(lb)) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickNodeKeyReflectsIdentity: interned node keys agree exactly with
// field equality over a bounded domain.
func TestQuickNodeKeyReflectsIdentity(t *testing.T) {
	in := newTLInterner()
	mk := func(loc, stay uint8, tlLoc, tlTime uint8, hasTL bool) (*Node, nodeKey) {
		n := &Node{Time: 1, Loc: int(loc % 8), Stay: int(stay % 3)}
		if hasTL {
			n.TL = []TLEntry{{Time: int(tlTime % 4), Loc: int(tlLoc % 8)}}
		}
		k := nodeKey{loc: int32(n.Loc), stay: int32(n.Stay), tl: in.intern(n.TL)}
		return n, k
	}
	f := func(l1, s1, tl1, tt1 uint8, h1 bool, l2, s2, tl2, tt2 uint8, h2 bool) bool {
		a, ka := mk(l1, s1, tl1, tt1, h1)
		b, kb := mk(l2, s2, tl2, tt2, h2)
		equal := a.Loc == b.Loc && a.Stay == b.Stay && len(a.TL) == len(b.TL)
		if equal && len(a.TL) == 1 {
			equal = a.TL[0] == b.TL[0]
		}
		return (ka == kb) == equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickConditioningPreservesRatios: for random two-step scenarios where
// some trajectories die, the conditioned probabilities of any two surviving
// trajectories keep their a-priori ratio (§3.1).
func TestQuickConditioningPreservesRatios(t *testing.T) {
	f := func(w [3]float64, du uint8) bool {
		row := make([]float64, 3)
		total := 0.0
		for i, v := range w {
			v = math.Abs(v)
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 1e-3 || v > 1e3 {
				v = 1
			}
			row[i] = v
			total += v
		}
		for i := range row {
			row[i] /= total
		}
		ls := FromDistributions([][]float64{row, row})
		ic := constraints.NewSet()
		ic.AddDU(int(du%3), int(du/3)%3)
		g, err := Build(ls, ic, nil)
		if err != nil {
			return true // everything died: nothing to compare
		}
		dist, err := g.ConditionedDistribution(100)
		if err != nil {
			return false
		}
		var keys []string
		for k := range dist {
			keys = append(keys, k)
		}
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				pa, pb := dist[keys[i]], dist[keys[j]]
				qa := priorOf(ls, keys[i])
				qb := priorOf(ls, keys[j])
				if math.Abs(pa*qb-pb*qa) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// priorOf parses a trajectory key back into locations and returns its prior.
func priorOf(ls *LSequence, key string) float64 {
	locs := make([]int, 0, ls.Duration())
	cur := 0
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == ',' {
			locs = append(locs, cur)
			cur = 0
			continue
		}
		cur = cur*10 + int(key[i]-'0')
	}
	return ls.PriorProbability(locs)
}
