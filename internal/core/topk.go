package core

import "sort"

// TopK returns the up-to-k most probable valid trajectories and their
// conditioned probabilities, in descending probability order. TopK(1) is
// MostProbable. It generalizes Viterbi decoding with per-node k-best lists,
// so its cost is O(k·|E|·log k) regardless of how many trajectories the
// graph encodes.
func (g *Graph) TopK(k int) ([][]int, []float64) {
	if k <= 0 || g.Duration() == 0 {
		return nil, nil
	}
	type hyp struct {
		p    float64
		prev *hyp
		node *Node
	}
	best := make(map[*Node][]*hyp)
	push := func(n *Node, h *hyp) {
		list := append(best[n], h)
		sort.Slice(list, func(i, j int) bool { return list[i].p > list[j].p })
		if len(list) > k {
			list = list[:k]
		}
		best[n] = list
	}
	for _, src := range g.Sources() {
		push(src, &hyp{p: src.prob, node: src})
	}
	for t := 0; t+1 < g.Duration(); t++ {
		for _, n := range g.byTime[t] {
			for _, h := range best[n] {
				for _, e := range n.out {
					push(e.To, &hyp{p: h.p * e.P, prev: h, node: e.To})
				}
			}
		}
	}
	var finals []*hyp
	for _, tgt := range g.Targets() {
		finals = append(finals, best[tgt]...)
	}
	sort.Slice(finals, func(i, j int) bool { return finals[i].p > finals[j].p })
	if len(finals) > k {
		finals = finals[:k]
	}
	trajectories := make([][]int, len(finals))
	probs := make([]float64, len(finals))
	for i, h := range finals {
		locs := make([]int, g.Duration())
		for cur := h; cur != nil; cur = cur.prev {
			locs[cur.node.Time] = cur.node.Loc
		}
		trajectories[i] = locs
		probs[i] = h.p
	}
	return trajectories, probs
}
