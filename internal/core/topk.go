package core

import "sort"

// TopK returns the up-to-k most probable valid trajectories and their
// conditioned probabilities, in descending probability order. TopK(1) is
// MostProbable. It generalizes Viterbi decoding with per-node k-best lists,
// so its cost is O(k·|E|·log k) regardless of how many trajectories the
// graph encodes. The k-best lists are addressed by the nodes' dense
// per-level indices, kept sorted by a bounded insertion (the lists hold at
// most k entries), and hypotheses that cannot enter a full list are
// rejected before anything is allocated.
func (g *Graph) TopK(k int) ([][]int, []float64) {
	if k <= 0 || g.Duration() == 0 {
		return nil, nil
	}
	type hyp struct {
		p    float64
		prev *hyp
		node *Node
	}
	// Hypotheses come from an arena: blocks are never reallocated, so the
	// prev pointers stay stable.
	var arena []hyp
	newHyp := func(p float64, prev *hyp, node *Node) *hyp {
		if len(arena) == cap(arena) {
			arena = make([]hyp, 0, 1024)
		}
		arena = arena[:len(arena)+1]
		h := &arena[len(arena)-1]
		*h = hyp{p: p, prev: prev, node: node}
		return h
	}
	best := make([][][]*hyp, g.Duration())
	for t := range best {
		best[t] = make([][]*hyp, len(g.byTime[t]))
	}
	push := func(n *Node, p float64, prev *hyp) {
		list := best[n.Time][n.idx]
		if len(list) == k {
			if p <= list[k-1].p {
				return
			}
			list[k-1] = newHyp(p, prev, n)
		} else {
			list = append(list, newHyp(p, prev, n))
		}
		for i := len(list) - 1; i > 0 && list[i].p > list[i-1].p; i-- {
			list[i], list[i-1] = list[i-1], list[i]
		}
		best[n.Time][n.idx] = list
	}
	for _, src := range g.Sources() {
		push(src, src.prob, nil)
	}
	for t := 0; t+1 < g.Duration(); t++ {
		for _, n := range g.byTime[t] {
			for _, h := range best[t][n.idx] {
				for _, e := range n.out {
					push(e.To, h.p*e.P, h)
				}
			}
		}
	}
	var finals []*hyp
	for _, tgt := range g.Targets() {
		finals = append(finals, best[tgt.Time][tgt.idx]...)
	}
	sort.Slice(finals, func(i, j int) bool { return finals[i].p > finals[j].p })
	if len(finals) > k {
		finals = finals[:k]
	}
	trajectories := make([][]int, len(finals))
	probs := make([]float64, len(finals))
	for i, h := range finals {
		locs := make([]int, g.Duration())
		for cur := h; cur != nil; cur = cur.prev {
			locs[cur.node.Time] = cur.node.Loc
		}
		trajectories[i] = locs
		probs[i] = h.p
	}
	return trajectories, probs
}
