package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// StayUntracked is the ⊥ value of a location node's stay counter: the
// location has no latency constraint, or the current stay already satisfies
// it (§4.1, fact B with the paper's normalization).
const StayUntracked = 0

// TLEntry records that the object was last at location Loc at time Time and
// that a traveling-time constraint leaving Loc may still bind (§4.1, fact C).
type TLEntry struct {
	Time int
	Loc  int
}

// Node is a location node (τ, l, δ, TL) of §4.1. Two nodes with equal
// exported fields are the same node; the graph never materializes duplicates.
type Node struct {
	Time int       // timestamp τ
	Loc  int       // location l
	Stay int       // δ: length of the current stay while a latency constraint is pending, or StayUntracked (⊥)
	TL   []TLEntry // sorted by Loc; relevant recent leave times for TT checks

	out []*Edge
	in  []*Edge

	surv    float64 // surviving (valid) fraction of compatible mass, rescaled per level
	prob    float64 // p_N for source nodes
	removed bool
}

// Out returns the node's outgoing edges. The slice must not be modified.
func (n *Node) Out() []*Edge { return n.out }

// In returns the node's incoming edges. The slice must not be modified.
func (n *Node) In() []*Edge { return n.in }

// SourceProb returns p_N(n) for a source node (0 for non-source nodes).
func (n *Node) SourceProb() float64 { return n.prob }

// key returns the canonical identity string of the node.
func (n *Node) key() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(n.Loc))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(n.Stay))
	for _, e := range n.TL {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(e.Loc))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(e.Time))
	}
	return b.String()
}

// String implements fmt.Stringer.
func (n *Node) String() string {
	stay := "⊥"
	if n.Stay != StayUntracked {
		stay = strconv.Itoa(n.Stay)
	}
	var tl []string
	for _, e := range n.TL {
		tl = append(tl, fmt.Sprintf("(%d,L%d)", e.Time, e.Loc))
	}
	return fmt.Sprintf("(%d, L%d, %s, {%s})", n.Time, n.Loc, stay, strings.Join(tl, ","))
}

// Edge is a ct-graph edge from a node to one of its successors, carrying the
// (initially a-priori, finally conditioned) probability p_E.
type Edge struct {
	From, To *Node
	P        float64
}

// Graph is a conditioned trajectory graph (Definition 4): source-to-target
// paths correspond one-to-one to valid trajectories, and the product of a
// path's source probability and edge probabilities is the conditioned
// probability of its trajectory.
type Graph struct {
	byTime [][]*Node // alive nodes per timestamp
}

// Duration returns the number of timestamps spanned by the graph.
func (g *Graph) Duration() int { return len(g.byTime) }

// NodesAt returns the alive nodes at timestamp t. The slice must not be
// modified.
func (g *Graph) NodesAt(t int) []*Node { return g.byTime[t] }

// Sources returns the source nodes (timestamp 0).
func (g *Graph) Sources() []*Node { return g.byTime[0] }

// Targets returns the target nodes (last timestamp).
func (g *Graph) Targets() []*Node { return g.byTime[len(g.byTime)-1] }

// Stats summarizes the size of a ct-graph (§6.7 discusses the memory
// footprint of ct-graphs under different constraint sets).
type Stats struct {
	Nodes int
	Edges int
	// Bytes estimates the in-memory footprint: node struct + TL entries +
	// edge structs + adjacency slots.
	Bytes int
}

// Stats returns size statistics for the graph.
func (g *Graph) Stats() Stats {
	var s Stats
	const nodeBytes = 96 // struct + slice headers, approximate
	const edgeBytes = 24 + 16
	for _, nodes := range g.byTime {
		for _, n := range nodes {
			s.Nodes++
			s.Bytes += nodeBytes + 16*len(n.TL)
			s.Edges += len(n.out)
			s.Bytes += edgeBytes * len(n.out)
		}
	}
	return s
}

// PathProbability returns the probability of the source-to-target path given
// as a slice of nodes: p_N of the first node times the probabilities of the
// traversed edges. It returns an error when the slice is not a
// source-to-target path of the graph.
func (g *Graph) PathProbability(path []*Node) (float64, error) {
	if len(path) != g.Duration() {
		return 0, fmt.Errorf("core: path has %d nodes, graph spans %d timestamps", len(path), g.Duration())
	}
	if path[0].Time != 0 {
		return 0, fmt.Errorf("core: path does not start at a source node")
	}
	p := path[0].prob
	for i := 0; i+1 < len(path); i++ {
		var e *Edge
		for _, cand := range path[i].out {
			if cand.To == path[i+1] {
				e = cand
				break
			}
		}
		if e == nil {
			return 0, fmt.Errorf("core: no edge from %v to %v", path[i], path[i+1])
		}
		p *= e.P
	}
	return p, nil
}

// Trajectory returns the location sequence traversed by a path of nodes.
func Trajectory(path []*Node) []int {
	locs := make([]int, len(path))
	for i, n := range path {
		locs[i] = n.Loc
	}
	return locs
}

// WalkPaths calls fn for every source-to-target path with its conditioned
// probability, stopping early (with an error) after more than limit paths.
// It is intended for tests and small graphs; real consumers should use
// Marginals, queries, sampling or MostProbable instead.
func (g *Graph) WalkPaths(limit int, fn func(path []*Node, p float64)) error {
	count := 0
	var rec func(path []*Node, p float64) error
	rec = func(path []*Node, p float64) error {
		n := path[len(path)-1]
		if n.Time == g.Duration()-1 {
			count++
			if count > limit {
				return fmt.Errorf("core: more than %d paths", limit)
			}
			fn(path, p)
			return nil
		}
		for _, e := range n.out {
			if err := rec(append(path, e.To), p*e.P); err != nil {
				return err
			}
		}
		return nil
	}
	for _, src := range g.Sources() {
		if err := rec([]*Node{src}, src.prob); err != nil {
			return err
		}
	}
	return nil
}

// ConditionedDistribution enumerates every valid trajectory with its
// conditioned probability, keyed by the comma-separated location sequence.
// Intended for tests; fails beyond limit paths.
func (g *Graph) ConditionedDistribution(limit int) (map[string]float64, error) {
	out := make(map[string]float64)
	err := g.WalkPaths(limit, func(path []*Node, p float64) {
		out[TrajectoryKey(Trajectory(path))] += p
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TrajectoryKey renders a location sequence as a canonical map key.
func TrajectoryKey(locs []int) string {
	var b strings.Builder
	for i, l := range locs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(l))
	}
	return b.String()
}

// Forward returns, for every node, the total probability of source-prefixes
// reaching it: α(n) = Σ over partial paths from a source to n of the product
// of the source probability and edge probabilities.
func (g *Graph) Forward() map[*Node]float64 {
	alpha := make(map[*Node]float64)
	for _, src := range g.Sources() {
		alpha[src] = src.prob
	}
	for t := 0; t+1 < g.Duration(); t++ {
		for _, n := range g.byTime[t] {
			a := alpha[n]
			for _, e := range n.out {
				alpha[e.To] += a * e.P
			}
		}
	}
	return alpha
}

// Backward returns, for every node, the total probability of suffixes from
// it to a target: β(n) = Σ over partial paths from n to a target of the
// product of edge probabilities (1 for targets).
func (g *Graph) Backward() map[*Node]float64 {
	beta := make(map[*Node]float64)
	for _, n := range g.Targets() {
		beta[n] = 1
	}
	for t := g.Duration() - 2; t >= 0; t-- {
		for _, n := range g.byTime[t] {
			var b float64
			for _, e := range n.out {
				b += e.P * beta[e.To]
			}
			beta[n] = b
		}
	}
	return beta
}

// Marginals returns, for each timestamp, the conditioned distribution over
// locations: out[τ][l] is the probability that the object was at location l
// at time τ given the readings and the constraints. numLocations sizes the
// rows; location IDs must be smaller.
func (g *Graph) Marginals(numLocations int) [][]float64 {
	alpha := g.Forward()
	beta := g.Backward()
	out := make([][]float64, g.Duration())
	for t := range out {
		row := make([]float64, numLocations)
		for _, n := range g.byTime[t] {
			row[n.Loc] += alpha[n] * beta[n]
		}
		out[t] = row
	}
	return out
}

// MostProbable returns the valid trajectory with the highest conditioned
// probability and that probability (Viterbi decoding over the ct-graph).
func (g *Graph) MostProbable() ([]int, float64) {
	best := make(map[*Node]float64)
	back := make(map[*Node]*Node)
	for _, src := range g.Sources() {
		best[src] = src.prob
	}
	for t := 0; t+1 < g.Duration(); t++ {
		for _, n := range g.byTime[t] {
			b, ok := best[n]
			if !ok {
				continue
			}
			for _, e := range n.out {
				if v := b * e.P; v > best[e.To] {
					best[e.To] = v
					back[e.To] = n
				}
			}
		}
	}
	var argmax *Node
	bestP := -1.0
	for _, n := range g.Targets() {
		if best[n] > bestP {
			bestP = best[n]
			argmax = n
		}
	}
	if argmax == nil {
		return nil, 0
	}
	locs := make([]int, g.Duration())
	for n := argmax; n != nil; n = back[n] {
		locs[n.Time] = n.Loc
	}
	return locs, bestP
}

// Sample draws a valid trajectory from the conditioned distribution. Because
// edge probabilities are already conditioned, a simple ancestral walk from a
// source suffices — the property §7 highlights as an advantage of ct-graphs
// over rejection-style "sampling under constraints".
func (g *Graph) Sample(rng *stats.RNG) []int {
	srcs := g.Sources()
	weights := make([]float64, len(srcs))
	for i, s := range srcs {
		weights[i] = s.prob
	}
	idx := rng.Pick(weights)
	if idx < 0 {
		return nil
	}
	n := srcs[idx]
	locs := make([]int, 0, g.Duration())
	locs = append(locs, n.Loc)
	for n.Time+1 < g.Duration() {
		w := make([]float64, len(n.out))
		for i, e := range n.out {
			w[i] = e.P
		}
		i := rng.Pick(w)
		if i < 0 {
			return nil // defensive: dead end cannot happen in a well-formed graph
		}
		n = n.out[i].To
		locs = append(locs, n.Loc)
	}
	return locs
}

// CheckInvariants verifies the structural invariants of a well-formed
// ct-graph: per-node outgoing probabilities sum to 1 (non-targets), source
// probabilities sum to 1, every node lies on some source-to-target path, and
// edge endpoints agree on adjacency. It is used by tests and returns the
// first violation found.
func (g *Graph) CheckInvariants(tol float64) error {
	if g.Duration() == 0 {
		return fmt.Errorf("core: empty graph")
	}
	var srcSum float64
	for _, s := range g.Sources() {
		srcSum += s.prob
	}
	if math.Abs(srcSum-1) > tol {
		return fmt.Errorf("core: source probabilities sum to %g", srcSum)
	}
	for t, nodes := range g.byTime {
		if len(nodes) == 0 {
			return fmt.Errorf("core: no nodes at timestamp %d", t)
		}
		for _, n := range nodes {
			if n.removed {
				return fmt.Errorf("core: removed node %v still listed", n)
			}
			if t < g.Duration()-1 {
				if len(n.out) == 0 {
					return fmt.Errorf("core: non-target node %v has no successors", n)
				}
				var sum float64
				for _, e := range n.out {
					if e.From != n {
						return fmt.Errorf("core: edge list corruption at %v", n)
					}
					if e.P <= 0 || e.P > 1+tol {
						return fmt.Errorf("core: edge %v->%v has probability %g", e.From, e.To, e.P)
					}
					sum += e.P
				}
				if math.Abs(sum-1) > tol {
					return fmt.Errorf("core: out-probabilities of %v sum to %g", n, sum)
				}
			}
			if t > 0 && len(n.in) == 0 {
				return fmt.Errorf("core: non-source node %v has no predecessors", n)
			}
		}
	}
	// Marginal mass must be 1 at every timestamp.
	alpha := g.Forward()
	beta := g.Backward()
	for t, nodes := range g.byTime {
		var mass float64
		for _, n := range nodes {
			mass += alpha[n] * beta[n]
		}
		if math.Abs(mass-1) > tol {
			return fmt.Errorf("core: probability mass at timestamp %d is %g", t, mass)
		}
	}
	return nil
}

// sortTL keeps TL entries in canonical order (by location).
func sortTL(tl []TLEntry) {
	sort.Slice(tl, func(i, j int) bool { return tl[i].Loc < tl[j].Loc })
}
