package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// StayUntracked is the ⊥ value of a location node's stay counter: the
// location has no latency constraint, or the current stay already satisfies
// it (§4.1, fact B with the paper's normalization).
const StayUntracked = 0

// TLEntry records that the object was last at location Loc at time Time and
// that a traveling-time constraint leaving Loc may still bind (§4.1, fact C).
type TLEntry struct {
	Time int
	Loc  int
}

// Node is a location node (τ, l, δ, TL) of §4.1. Two nodes with equal
// exported fields are the same node; the graph never materializes duplicates.
type Node struct {
	Time int       // timestamp τ
	Loc  int       // location l
	Stay int       // δ: length of the current stay while a latency constraint is pending, or StayUntracked (⊥)
	TL   []TLEntry // sorted by Loc; relevant recent leave times for TT checks; interned, do not modify

	idx int32 // dense index within the node's timestamp level

	out []*Edge
	in  []*Edge

	surv    float64 // surviving (valid) fraction of compatible mass, rescaled per level
	prob    float64 // p_N for source nodes
	removed bool
}

// Out returns the node's outgoing edges. The slice must not be modified.
func (n *Node) Out() []*Edge { return n.out }

// In returns the node's incoming edges. The slice must not be modified.
func (n *Node) In() []*Edge { return n.in }

// SourceProb returns p_N(n) for a source node (0 for non-source nodes).
func (n *Node) SourceProb() float64 { return n.prob }

// Index returns the node's dense index within its timestamp level: the
// position of the node in NodesAt(n.Time). Indices let query passes address
// per-node state with slices instead of map[*Node] lookups.
func (n *Node) Index() int { return int(n.idx) }

// String implements fmt.Stringer.
func (n *Node) String() string {
	stay := "⊥"
	if n.Stay != StayUntracked {
		stay = strconv.Itoa(n.Stay)
	}
	var tl []string
	for _, e := range n.TL {
		tl = append(tl, fmt.Sprintf("(%d,L%d)", e.Time, e.Loc))
	}
	return fmt.Sprintf("(%d, L%d, %s, {%s})", n.Time, n.Loc, stay, strings.Join(tl, ","))
}

// Edge is a ct-graph edge from a node to one of its successors, carrying the
// (initially a-priori, finally conditioned) probability p_E.
type Edge struct {
	From, To *Node
	P        float64
}

// Graph is a conditioned trajectory graph (Definition 4): source-to-target
// paths correspond one-to-one to valid trajectories, and the product of a
// path's source probability and edge probabilities is the conditioned
// probability of its trajectory.
type Graph struct {
	byTime [][]*Node // alive nodes per timestamp; byTime[t][i].Index() == i
}

// Duration returns the number of timestamps spanned by the graph.
func (g *Graph) Duration() int { return len(g.byTime) }

// NodesAt returns the alive nodes at timestamp t. The slice must not be
// modified.
func (g *Graph) NodesAt(t int) []*Node { return g.byTime[t] }

// Sources returns the source nodes (timestamp 0).
func (g *Graph) Sources() []*Node { return g.byTime[0] }

// Targets returns the target nodes (last timestamp).
func (g *Graph) Targets() []*Node { return g.byTime[len(g.byTime)-1] }

// levels allocates one float64 slot per alive node, shaped like byTime.
func (g *Graph) levels() [][]float64 {
	out := make([][]float64, len(g.byTime))
	for t, nodes := range g.byTime {
		out[t] = make([]float64, len(nodes))
	}
	return out
}

// Stats summarizes the size of a ct-graph (§6.7 discusses the memory
// footprint of ct-graphs under different constraint sets).
type Stats struct {
	Nodes int
	Edges int
	// Bytes estimates the in-memory footprint: node struct + TL entries +
	// edge structs + adjacency slots.
	Bytes int
}

// Stats returns size statistics for the graph.
func (g *Graph) Stats() Stats {
	var s Stats
	const nodeBytes = 96 // struct + slice headers, approximate
	const edgeBytes = 24 + 16
	for _, nodes := range g.byTime {
		for _, n := range nodes {
			s.Nodes++
			s.Bytes += nodeBytes + 16*len(n.TL)
			s.Edges += len(n.out)
			s.Bytes += edgeBytes * len(n.out)
		}
	}
	return s
}

// PathProbability returns the probability of the source-to-target path given
// as a slice of nodes: p_N of the first node times the probabilities of the
// traversed edges. It returns an error when the slice is not a
// source-to-target path of the graph.
func (g *Graph) PathProbability(path []*Node) (float64, error) {
	if len(path) != g.Duration() {
		return 0, fmt.Errorf("core: path has %d nodes, graph spans %d timestamps", len(path), g.Duration())
	}
	if path[0].Time != 0 {
		return 0, fmt.Errorf("core: path does not start at a source node")
	}
	p := path[0].prob
	for i := 0; i+1 < len(path); i++ {
		var e *Edge
		for _, cand := range path[i].out {
			if cand.To == path[i+1] {
				e = cand
				break
			}
		}
		if e == nil {
			return 0, fmt.Errorf("core: no edge from %v to %v", path[i], path[i+1])
		}
		p *= e.P
	}
	return p, nil
}

// Trajectory returns the location sequence traversed by a path of nodes.
func Trajectory(path []*Node) []int {
	locs := make([]int, len(path))
	for i, n := range path {
		locs[i] = n.Loc
	}
	return locs
}

// WalkPaths calls fn for every source-to-target path with its conditioned
// probability, stopping early (with an error) after more than limit paths.
// Each invocation receives a freshly allocated path slice that the callback
// may retain. WalkPaths is intended for tests and small graphs; real
// consumers should use Marginals, queries, sampling or MostProbable instead.
func (g *Graph) WalkPaths(limit int, fn func(path []*Node, p float64)) error {
	count := 0
	var rec func(path []*Node, p float64) error
	rec = func(path []*Node, p float64) error {
		n := path[len(path)-1]
		if n.Time == g.Duration()-1 {
			count++
			if count > limit {
				return fmt.Errorf("core: more than %d paths", limit)
			}
			// Copy: the recursion reuses path's backing array across sibling
			// branches, so handing it out directly would let callbacks that
			// retain paths see them silently overwritten.
			cp := make([]*Node, len(path))
			copy(cp, path)
			fn(cp, p)
			return nil
		}
		for _, e := range n.out {
			if err := rec(append(path, e.To), p*e.P); err != nil {
				return err
			}
		}
		return nil
	}
	for _, src := range g.Sources() {
		if err := rec([]*Node{src}, src.prob); err != nil {
			return err
		}
	}
	return nil
}

// ConditionedDistribution enumerates every valid trajectory with its
// conditioned probability, keyed by the comma-separated location sequence.
// Intended for tests; fails beyond limit paths.
func (g *Graph) ConditionedDistribution(limit int) (map[string]float64, error) {
	out := make(map[string]float64)
	err := g.WalkPaths(limit, func(path []*Node, p float64) {
		out[TrajectoryKey(Trajectory(path))] += p
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TrajectoryKey renders a location sequence as a canonical map key.
func TrajectoryKey(locs []int) string {
	var b strings.Builder
	for i, l := range locs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(l))
	}
	return b.String()
}

// Forward returns, for every node, the total probability of source-prefixes
// reaching it: alpha[t][n.Index()] = Σ over partial paths from a source to n
// of the product of the source probability and edge probabilities.
func (g *Graph) Forward() [][]float64 {
	alpha := g.levels()
	for _, src := range g.byTime[0] {
		alpha[0][src.idx] = src.prob
	}
	for t := 0; t+1 < g.Duration(); t++ {
		row, next := alpha[t], alpha[t+1]
		for _, n := range g.byTime[t] {
			a := row[n.idx]
			for _, e := range n.out {
				next[e.To.idx] += a * e.P
			}
		}
	}
	return alpha
}

// Backward returns, for every node, the total probability of suffixes from
// it to a target: beta[t][n.Index()] = Σ over partial paths from n to a
// target of the product of edge probabilities (1 for targets).
func (g *Graph) Backward() [][]float64 {
	beta := g.levels()
	last := g.Duration() - 1
	for _, n := range g.byTime[last] {
		beta[last][n.idx] = 1
	}
	for t := last - 1; t >= 0; t-- {
		row, next := beta[t], beta[t+1]
		for _, n := range g.byTime[t] {
			var b float64
			for _, e := range n.out {
				b += e.P * next[e.To.idx]
			}
			row[n.idx] = b
		}
	}
	return beta
}

// Marginals returns, for each timestamp, the conditioned distribution over
// locations: out[τ][l] is the probability that the object was at location l
// at time τ given the readings and the constraints. numLocations sizes the
// rows; it returns an error when the graph mentions a location ID outside
// [0, numLocations).
func (g *Graph) Marginals(numLocations int) ([][]float64, error) {
	alpha := g.Forward()
	beta := g.Backward()
	out := make([][]float64, g.Duration())
	for t := range out {
		row := make([]float64, numLocations)
		for _, n := range g.byTime[t] {
			if n.Loc >= numLocations {
				return nil, fmt.Errorf("core: node %v has location ID %d outside [0, %d)", n, n.Loc, numLocations)
			}
			row[n.Loc] += alpha[t][n.idx] * beta[t][n.idx]
		}
		out[t] = row
	}
	return out, nil
}

// MostProbable returns the valid trajectory with the highest conditioned
// probability and that probability (Viterbi decoding over the ct-graph).
func (g *Graph) MostProbable() ([]int, float64) {
	if g.Duration() == 0 {
		return nil, 0
	}
	best := g.levels()
	back := make([][]int32, g.Duration())
	for t := 1; t < g.Duration(); t++ {
		back[t] = make([]int32, len(g.byTime[t]))
	}
	for _, src := range g.byTime[0] {
		best[0][src.idx] = src.prob
	}
	for t := 0; t+1 < g.Duration(); t++ {
		row, next := best[t], best[t+1]
		nb := back[t+1]
		for _, n := range g.byTime[t] {
			b := row[n.idx]
			if b == 0 {
				continue
			}
			for _, e := range n.out {
				if v := b * e.P; v > next[e.To.idx] {
					next[e.To.idx] = v
					nb[e.To.idx] = n.idx
				}
			}
		}
	}
	last := g.Duration() - 1
	argmax := int32(-1)
	bestP := 0.0
	for _, n := range g.byTime[last] {
		if p := best[last][n.idx]; p > bestP {
			bestP = p
			argmax = n.idx
		}
	}
	if argmax < 0 {
		return nil, 0
	}
	locs := make([]int, g.Duration())
	for t, i := last, argmax; ; t, i = t-1, back[t][i] {
		locs[t] = g.byTime[t][i].Loc
		if t == 0 {
			break
		}
	}
	return locs, bestP
}

// Sample draws a valid trajectory from the conditioned distribution. Because
// edge probabilities are already conditioned, a simple ancestral walk from a
// source suffices — the property §7 highlights as an advantage of ct-graphs
// over rejection-style "sampling under constraints".
func (g *Graph) Sample(rng *stats.RNG) []int {
	srcs := g.Sources()
	weights := make([]float64, len(srcs))
	for i, s := range srcs {
		weights[i] = s.prob
	}
	idx := rng.Pick(weights)
	if idx < 0 {
		return nil
	}
	n := srcs[idx]
	locs := make([]int, 0, g.Duration())
	locs = append(locs, n.Loc)
	for n.Time+1 < g.Duration() {
		w := make([]float64, len(n.out))
		for i, e := range n.out {
			w[i] = e.P
		}
		i := rng.Pick(w)
		if i < 0 {
			return nil // defensive: dead end cannot happen in a well-formed graph
		}
		n = n.out[i].To
		locs = append(locs, n.Loc)
	}
	return locs
}

// CheckInvariants verifies the structural invariants of a well-formed
// ct-graph: per-node outgoing probabilities sum to 1 (non-targets), source
// probabilities sum to 1, dense per-level indices match node positions, edge
// endpoints agree on adjacency (no dangling in-edges from removed or foreign
// nodes, and out/in edge counts balance between consecutive levels), and
// every node lies on some source-to-target path (no unreachable ghosts). It
// is used by tests and by Decode and returns the first violation found.
func (g *Graph) CheckInvariants(tol float64) error {
	if g.Duration() == 0 {
		return fmt.Errorf("core: empty graph")
	}
	var srcSum float64
	for _, s := range g.Sources() {
		srcSum += s.prob
	}
	if math.Abs(srcSum-1) > tol {
		return fmt.Errorf("core: source probabilities sum to %g", srcSum)
	}
	outEdges := 0 // edges leaving the previous level
	for t, nodes := range g.byTime {
		if len(nodes) == 0 {
			return fmt.Errorf("core: no nodes at timestamp %d", t)
		}
		inEdges := 0
		for i, n := range nodes {
			if n.removed {
				return fmt.Errorf("core: removed node %v still listed", n)
			}
			if int(n.idx) != i {
				return fmt.Errorf("core: node %v has index %d but sits at position %d", n, n.idx, i)
			}
			if n.Time != t {
				return fmt.Errorf("core: node %v listed at timestamp %d", n, t)
			}
			if t < g.Duration()-1 {
				if len(n.out) == 0 {
					return fmt.Errorf("core: non-target node %v has no successors", n)
				}
				var sum float64
				for _, e := range n.out {
					if e.From != n {
						return fmt.Errorf("core: edge list corruption at %v", n)
					}
					if e.P <= 0 || e.P > 1+tol {
						return fmt.Errorf("core: edge %v->%v has probability %g", e.From, e.To, e.P)
					}
					sum += e.P
				}
				if math.Abs(sum-1) > tol {
					return fmt.Errorf("core: out-probabilities of %v sum to %g", n, sum)
				}
			}
			if t > 0 && len(n.in) == 0 {
				return fmt.Errorf("core: non-source node %v has no predecessors", n)
			}
			inEdges += len(n.in)
			for _, e := range n.in {
				if e.To != n {
					return fmt.Errorf("core: in-edge list corruption at %v", n)
				}
				from := e.From
				if from == nil || from.removed {
					return fmt.Errorf("core: node %v has a dangling in-edge from removed node %v", n, from)
				}
				if t == 0 || from.Time != t-1 || int(from.idx) >= len(g.byTime[t-1]) || g.byTime[t-1][from.idx] != from {
					return fmt.Errorf("core: node %v has an in-edge from %v, which is not an alive node of the previous level", n, from)
				}
			}
		}
		if t > 0 && inEdges != outEdges {
			return fmt.Errorf("core: level %d has %d in-edges but level %d has %d out-edges", t, inEdges, t-1, outEdges)
		}
		outEdges = 0
		for _, n := range nodes {
			outEdges += len(n.out)
		}
	}
	// Every node must be reachable from a source (no ghosts left behind by
	// pruning). Reachability is tracked explicitly rather than via alpha > 0
	// so that probability underflow on long windows cannot mask a ghost (or
	// flag a legitimate node).
	reach := make([][]bool, g.Duration())
	for t := range reach {
		reach[t] = make([]bool, len(g.byTime[t]))
	}
	for i := range g.byTime[0] {
		reach[0][i] = true
	}
	for t := 0; t+1 < g.Duration(); t++ {
		for _, n := range g.byTime[t] {
			if !reach[t][n.idx] {
				continue
			}
			for _, e := range n.out {
				reach[t+1][e.To.idx] = true
			}
		}
	}
	for t, nodes := range g.byTime {
		for _, n := range nodes {
			if !reach[t][n.idx] {
				return fmt.Errorf("core: node %v is unreachable from every source", n)
			}
		}
	}
	// Marginal mass must be 1 at every timestamp.
	alpha := g.Forward()
	beta := g.Backward()
	for t, nodes := range g.byTime {
		var mass float64
		for _, n := range nodes {
			mass += alpha[t][n.idx] * beta[t][n.idx]
		}
		if math.Abs(mass-1) > tol {
			return fmt.Errorf("core: probability mass at timestamp %d is %g", t, mass)
		}
	}
	return nil
}

// sortTL keeps TL entries in canonical order (by location). TLs hold at most
// one entry per TT-source location, so insertion sort beats sort.Slice here
// and keeps the Build hot path free of its closure allocations.
func sortTL(tl []TLEntry) {
	for i := 1; i < len(tl); i++ {
		for j := i; j > 0 && tl[j].Loc < tl[j-1].Loc; j-- {
			tl[j], tl[j-1] = tl[j-1], tl[j]
		}
	}
}
