package core

// tlID identifies an interned, canonical TL slice. ID 0 is the empty TL.
type tlID int32

// tlChain keys one interning step: a previously interned prefix extended by
// one entry. Because TL slices are kept sorted, two slices intern to the same
// ID exactly when they are element-wise equal.
type tlChain struct {
	prefix tlID
	entry  TLEntry
}

// tlInterner assigns dense integer IDs to TL slices so that node identity can
// be a comparable value type (see nodeKey) and all nodes sharing a TL history
// share one immutable backing array. Interning replaces the per-successor
// string key the forward phase used to build for dedup, which dominated the
// allocation profile of Algorithm 1 on long windows.
type tlInterner struct {
	ids  map[tlChain]tlID
	seqs [][]TLEntry // seqs[id] is the canonical slice for id; seqs[0] = nil
}

func newTLInterner() *tlInterner {
	return &tlInterner{ids: make(map[tlChain]tlID), seqs: [][]TLEntry{nil}}
}

// size returns the number of interned chain links (a proxy for memory use).
func (in *tlInterner) size() int { return len(in.ids) }

// intern returns the ID of tl, registering it if new. tl must be sorted. The
// canonical copy is made on first sight, so callers may keep reusing tl's
// backing array as scratch space.
func (in *tlInterner) intern(tl []TLEntry) tlID {
	id := tlID(0)
	for i, e := range tl {
		key := tlChain{prefix: id, entry: e}
		next, ok := in.ids[key]
		if !ok {
			next = tlID(len(in.seqs))
			// seqs[id] is the canonical prefix of length i; the full slice
			// expression forces a copy so the new sequence is immutable.
			in.seqs = append(in.seqs, append(in.seqs[id][:i:i], e))
			in.ids[key] = next
		}
		id = next
	}
	return id
}

// seq returns the canonical slice for id. Callers must not modify it.
func (in *tlInterner) seq(id tlID) []TLEntry { return in.seqs[id] }

// nodeKey is the comparable identity of a location node within one timestamp:
// (l, δ, TL) with the TL slice replaced by its interned ID. It is the map key
// of the forward phase's per-level dedup and of Filter.Observe's frontier
// merge; both previously built a string per candidate successor.
type nodeKey struct {
	loc  int32
	stay int32
	tl   tlID
}
