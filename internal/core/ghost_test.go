package core

import (
	"testing"

	"repro/internal/constraints"
)

// buildUnderflowIsland builds the regression scenario for the ghost-node bug:
// location 1 is an isolated island (unreachable from and to 0/2), so a
// trajectory starting there must stay there for the whole window. Over a
// long window the island chain's survival ratio relative to the rest of the
// level shrinks geometrically (0.1 vs 0.9 per step), so the per-level
// rescaled survival of the island nodes eventually underflows to zero and
// the backward phase removes an interior node that still has out-edges.
func buildUnderflowIsland(t *testing.T) *Graph {
	t.Helper()
	const duration = 400
	dists := make([][]float64, duration)
	for i := range dists {
		dists[i] = []float64{0.45, 0.1, 0.45}
	}
	ic := constraints.NewSet()
	ic.AddDU(1, 0)
	ic.AddDU(1, 2)
	ic.AddDU(0, 1)
	ic.AddDU(2, 1)
	g, err := Build(FromDistributions(dists), ic, &Options{EndLatency: constraints.StrictEnd})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestNoGhostNodesAfterUnderflowPruning is the regression test for the
// backward-phase pruning bug: removing a node whose survival underflowed to
// zero used to leave its out-edges dangling in the successors' in lists, and
// the successor chain — now unreachable from every source — survived
// compact() as hundreds of ghost nodes. With the fix (detachRemoved unlinks
// both edge directions and scrubOrphans cascades the removal forward) the
// graph must satisfy every structural invariant, including reachability.
func TestNoGhostNodesAfterUnderflowPruning(t *testing.T) {
	g := buildUnderflowIsland(t)
	if err := g.CheckInvariants(1e-6); err != nil {
		t.Fatalf("graph contains ghosts or dangling edges: %v", err)
	}
	// The island dies by underflow partway through the window, so late
	// levels must contain only the two mainland locations.
	for _, n := range g.Targets() {
		if n.Loc == 1 {
			t.Fatalf("unreachable island node %v survived at the final timestamp", n)
		}
	}
	m, err := g.Marginals(3)
	if err != nil {
		t.Fatal(err)
	}
	for tau, row := range m {
		sum := row[0] + row[1] + row[2]
		if sum < 1-1e-6 || sum > 1+1e-6 {
			t.Fatalf("marginal mass at %d = %v", tau, sum)
		}
	}
}

// TestCheckInvariantsDetectsGhosts corrupts well-formed graphs the way the
// seed bug used to and checks CheckInvariants rejects both shapes.
func TestCheckInvariantsDetectsGhosts(t *testing.T) {
	// An unreachable node: alive, indexed, but with no in-edges linking it
	// to the previous level.
	g := mustBuild(t, FromDistributions([][]float64{{0.5, 0.5}, {0.5, 0.5}}))
	ghost := &Node{Time: 1, Loc: 3, idx: int32(len(g.byTime[1]))}
	// Give it an in-edge from a removed node, like the seed's dangling
	// references: the edge's From is not part of the graph.
	removed := &Node{Time: 0, Loc: 3, removed: true}
	e := &Edge{From: removed, To: ghost, P: 1}
	ghost.in = []*Edge{e}
	g.byTime[1] = append(g.byTime[1], ghost)
	if err := g.CheckInvariants(1e-6); err == nil {
		t.Fatalf("graph with a dangling in-edge from a removed node passed invariants")
	}

	// A ghost whose in-edge looks plausible but whose From is not listed at
	// the previous level.
	g2 := mustBuild(t, FromDistributions([][]float64{{0.5, 0.5}, {0.5, 0.5}}))
	foreign := &Node{Time: 0, Loc: 3, idx: 99}
	ghost2 := &Node{Time: 1, Loc: 3, idx: int32(len(g2.byTime[1]))}
	e2 := &Edge{From: foreign, To: ghost2, P: 1}
	ghost2.in = []*Edge{e2}
	foreign.out = []*Edge{e2}
	g2.byTime[1] = append(g2.byTime[1], ghost2)
	if err := g2.CheckInvariants(1e-6); err == nil {
		t.Fatalf("graph with a foreign predecessor passed invariants")
	}

	// Inconsistent dense index.
	g3 := mustBuild(t, FromDistributions([][]float64{{0.5, 0.5}, {0.5, 0.5}}))
	g3.byTime[0][0].idx = 1
	if err := g3.CheckInvariants(1e-6); err == nil {
		t.Fatalf("graph with a wrong dense index passed invariants")
	}
}
