package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/constraints"
)

const (
	l1 = 1
	l2 = 2
	l3 = 3
	l4 = 4
	l5 = 5
)

// runningExample reproduces the paper's running example (examples 4-12):
//
//	Γ: τ=0 {L1: 3/5, L2: 2/5}, τ=1 {L3: 1/3, L4: 2/3}, τ=2 {L3: 2/3, L5: 1/3}
//	IC: latency(L3, 2), unreachable(L2, L3), travelingTime(L1, L5, 3),
//	    plus the DU constraints the map of Fig. 1(b) implies for L4
//	    (L4 is directly connected to neither L3 nor L5).
func runningExample(t *testing.T) (*LSequence, *constraints.Set) {
	t.Helper()
	ls := &LSequence{Steps: []Step{
		{Candidates: []Candidate{{l1, 3.0 / 5}, {l2, 2.0 / 5}}},
		{Candidates: []Candidate{{l3, 1.0 / 3}, {l4, 2.0 / 3}}},
		{Candidates: []Candidate{{l3, 2.0 / 3}, {l5, 1.0 / 3}}},
	}}
	ic := constraints.NewSet()
	ic.AddLT(l3, 2)
	ic.AddDU(l2, l3)
	ic.AddDU(l4, l3)
	ic.AddDU(l4, l5)
	if err := ic.AddTT(l1, l5, 3); err != nil {
		t.Fatal(err)
	}
	return ls, ic
}

func TestRunningExampleGraph(t *testing.T) {
	ls, ic := runningExample(t)
	g, err := Build(ls, ic, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 7: a single path n0 -> n3 -> n7 with probability 1.
	for tau := 0; tau < 3; tau++ {
		if n := len(g.NodesAt(tau)); n != 1 {
			t.Fatalf("timestamp %d has %d nodes, want 1", tau, n)
		}
	}
	src := g.Sources()[0]
	if src.Loc != l1 {
		t.Errorf("source location = L%d, want L1", src.Loc)
	}
	if math.Abs(src.SourceProb()-1) > 1e-12 {
		t.Errorf("p_N(n0) = %v, want 1", src.SourceProb())
	}
	n3 := g.NodesAt(1)[0]
	if n3.Loc != l3 {
		t.Errorf("middle node at L%d, want L3", n3.Loc)
	}
	// n3 = (1, L3, δ pending, TL={(0,L1)}).
	if n3.Stay == StayUntracked {
		t.Errorf("n3 should have a pending stay counter")
	}
	if len(n3.TL) != 1 || n3.TL[0] != (TLEntry{Time: 0, Loc: l1}) {
		t.Errorf("n3.TL = %v, want [(0,L1)]", n3.TL)
	}
	n7 := g.NodesAt(2)[0]
	if n7.Loc != l3 || n7.Stay != StayUntracked {
		t.Errorf("n7 = %v, want (2, L3, ⊥, ...)", n7)
	}
	for _, n := range []*Node{src, n3} {
		if len(n.Out()) != 1 || math.Abs(n.Out()[0].P-1) > 1e-12 {
			t.Errorf("node %v out edges not conditioned to 1: %v", n, n.Out())
		}
	}
	if err := g.CheckInvariants(1e-9); err != nil {
		t.Errorf("invariants: %v", err)
	}
	dist, err := g.ConditionedDistribution(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 1 || math.Abs(dist[TrajectoryKey([]int{l1, l3, l3})]-1) > 1e-12 {
		t.Errorf("conditioned distribution = %v", dist)
	}
}

func TestRunningExampleOracleAgrees(t *testing.T) {
	ls, ic := runningExample(t)
	res, err := EnumerateConditioned(ls, ic, constraints.StrictEnd, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Enumerated != 8 {
		t.Errorf("enumerated %d trajectories, want 8", res.Enumerated)
	}
	if len(res.Trajectories) != 1 {
		t.Fatalf("oracle found %d valid trajectories, want 1: %v", len(res.Trajectories), res.Trajectories)
	}
	want := []int{l1, l3, l3}
	for i, l := range want {
		if res.Trajectories[0][i] != l {
			t.Fatalf("oracle trajectory = %v, want %v", res.Trajectories[0], want)
		}
	}
	// The single valid trajectory has prior (3/5)(1/3)(2/3) = 2/15.
	if math.Abs(res.TotalPrior-2.0/15) > 1e-12 {
		t.Errorf("TotalPrior = %v, want 2/15", res.TotalPrior)
	}
}

func TestNoConstraintsKeepsPrior(t *testing.T) {
	// Without constraints the conditioned distribution equals the prior.
	ls := FromDistributions([][]float64{
		{0.5, 0.5},
		{0.2, 0.8},
	})
	g, err := Build(ls, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := g.ConditionedDistribution(100)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"0,0": 0.1, "0,1": 0.4, "1,0": 0.1, "1,1": 0.4,
	}
	for k, p := range want {
		if math.Abs(dist[k]-p) > 1e-12 {
			t.Errorf("dist[%s] = %v, want %v", k, dist[k], p)
		}
	}
}

func TestBuildErrNoValidTrajectory(t *testing.T) {
	ls := FromDistributions([][]float64{
		{1},
		{0, 1},
	})
	ic := constraints.NewSet()
	ic.AddDU(0, 1)
	_, err := Build(ls, ic, nil)
	if !errors.Is(err, ErrNoValidTrajectory) {
		t.Errorf("err = %v, want ErrNoValidTrajectory", err)
	}
	if _, err := EnumerateConditioned(ls, ic, constraints.StrictEnd, 100); !errors.Is(err, ErrNoValidTrajectory) {
		t.Errorf("oracle err = %v, want ErrNoValidTrajectory", err)
	}
}

func TestBuildRejectsInvalidInput(t *testing.T) {
	if _, err := Build(&LSequence{}, nil, nil); err == nil {
		t.Errorf("empty l-sequence accepted")
	}
	bad := &LSequence{Steps: []Step{{Candidates: []Candidate{{0, 0.5}}}}}
	if _, err := Build(bad, nil, nil); err == nil {
		t.Errorf("non-normalized step accepted")
	}
}

func TestLatencyWindowStart(t *testing.T) {
	// latency(0, 3): the initial stay must run 3 timestamps.
	ic := constraints.NewSet()
	ic.AddLT(0, 3)
	ls := FromDistributions([][]float64{
		{0.5, 0.5},
		{0.5, 0.5},
		{0.5, 0.5},
	})
	g, err := Build(ls, ic, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := g.ConditionedDistribution(100)
	if err != nil {
		t.Fatal(err)
	}
	// Valid: 000 (full stay), and anything avoiding 0 stays that are too
	// short... but every visit to 0 must last 3, so within 3 steps: 000 or
	// 111, or paths never entering 0: 111. Entering 0 mid-window can
	// never satisfy a 3-stay except 000.
	if len(dist) != 2 {
		t.Fatalf("dist = %v", dist)
	}
	for _, k := range []string{"0,0,0", "1,1,1"} {
		if dist[k] <= 0 {
			t.Errorf("missing trajectory %s in %v", k, dist)
		}
	}
}

func TestLatencyEndModes(t *testing.T) {
	// latency(0, 2) and a 2-step window: trajectory 1,0 truncates the stay.
	ic := constraints.NewSet()
	ic.AddLT(0, 2)
	ls := FromDistributions([][]float64{
		{0.5, 0.5},
		{0.5, 0.5},
	})
	strict, err := Build(ls, ic, &Options{EndLatency: constraints.StrictEnd})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := strict.ConditionedDistribution(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sd["1,0"]; ok {
		t.Errorf("strict mode kept truncated stay: %v", sd)
	}
	lenient, err := Build(ls, ic, &Options{EndLatency: constraints.LenientEnd})
	if err != nil {
		t.Fatal(err)
	}
	ld, err := lenient.ConditionedDistribution(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ld["1,0"]; !ok {
		t.Errorf("lenient mode dropped truncated stay: %v", ld)
	}
}

func TestTTDirectMoveBlocked(t *testing.T) {
	// travelingTime(0, 1, 3) must also block the direct move 0 -> 1
	// (DESIGN.md §3: Definition 2 semantics).
	ic := constraints.NewSet()
	if err := ic.AddTT(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	ls := FromDistributions([][]float64{
		{0.5, 0.25, 0.25},
		{0.5, 0.25, 0.25},
	})
	g, err := Build(ls, ic, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := g.ConditionedDistribution(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dist["0,1"]; ok {
		t.Errorf("direct move violating TT survived: %v", dist)
	}
	if len(dist) != 8 {
		t.Errorf("got %d trajectories, want 8 (9 minus the blocked one)", len(dist))
	}
}

func TestTTThroughIntermediate(t *testing.T) {
	// travelingTime(0, 2, 3): 0 at τ=0 and 2 at τ=2 is invalid (gap 2),
	// but 2 at τ=3 is fine.
	ic := constraints.NewSet()
	if err := ic.AddTT(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	uniform3 := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	ls := FromDistributions([][]float64{uniform3, uniform3, uniform3, uniform3})
	g, err := Build(ls, ic, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := g.ConditionedDistribution(200)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dist["0,1,2,2"]; ok {
		t.Errorf("gap-2 TT violation survived")
	}
	if _, ok := dist["0,1,1,2"]; !ok {
		t.Errorf("gap-3 trajectory missing")
	}
	// Check agreement with the oracle for this exact scenario.
	res, err := EnumerateConditioned(ls, ic, constraints.StrictEnd, 1000)
	if err != nil {
		t.Fatal(err)
	}
	oracleDist := res.Distribution()
	if len(oracleDist) != len(dist) {
		t.Fatalf("graph has %d trajectories, oracle %d", len(dist), len(oracleDist))
	}
	for k, p := range oracleDist {
		if math.Abs(dist[k]-p) > 1e-9 {
			t.Errorf("dist[%s] = %v, oracle %v", k, dist[k], p)
		}
	}
}

func TestNodeMergingAcrossPredecessors(t *testing.T) {
	// Two predecessors reaching the same (τ, l, δ, TL) tuple must share a
	// single node.
	ls := FromDistributions([][]float64{
		{0.5, 0.5}, // locations 0, 1
		{0, 0, 1},  // both move to location 2
	})
	g, err := Build(ls, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(g.NodesAt(1)); n != 1 {
		t.Fatalf("expected merged successor, got %d nodes", n)
	}
	if ins := len(g.NodesAt(1)[0].In()); ins != 2 {
		t.Errorf("merged node has %d in-edges, want 2", ins)
	}
}

func TestTLDistinguishesNodes(t *testing.T) {
	// Same (τ, l) but different TT history must create distinct nodes:
	// leaving 0 vs leaving 1 toward location 2, with TT constraints from
	// both 0 and 1.
	ic := constraints.NewSet()
	if err := ic.AddTT(0, 3, 5); err != nil {
		t.Fatal(err)
	}
	if err := ic.AddTT(1, 3, 5); err != nil {
		t.Fatal(err)
	}
	ls := FromDistributions([][]float64{
		{0.5, 0.5},       // 0 or 1
		{0, 0, 1},        // everyone moves to 2
		{0, 0, 0.5, 0.5}, // 2 or 3; 3 is TT-blocked from both histories
	})
	g, err := Build(ls, ic, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(g.NodesAt(1)); n != 2 {
		t.Fatalf("TL histories merged: %d nodes at τ=1, want 2", n)
	}
	dist, err := g.ConditionedDistribution(100)
	if err != nil {
		t.Fatal(err)
	}
	for k := range dist {
		if k == "0,2,3" || k == "1,2,3" {
			t.Errorf("TT-blocked trajectory %s survived", k)
		}
	}
}

func TestTLExpiry(t *testing.T) {
	// After maxTT(0) timestamps, the TL entry for 0 must be dropped so
	// nodes re-merge (keeps the graph small).
	ic := constraints.NewSet()
	if err := ic.AddTT(0, 9, 2); err != nil { // tiny horizon: expires fast
		t.Fatal(err)
	}
	ls := FromDistributions([][]float64{
		{0.5, 0.5}, // 0 or 1
		{0, 0, 1},  // move to 2
		{0, 0, 1},  // stay at 2
		{0, 0, 1},  // stay at 2
	})
	g, err := Build(ls, ic, nil)
	if err != nil {
		t.Fatal(err)
	}
	// At τ=1 the histories differ (entry (0,0) alive: 1-0 < 2).
	if n := len(g.NodesAt(1)); n != 2 {
		t.Fatalf("nodes at τ=1 = %d, want 2", n)
	}
	// At τ=2, 2-0 >= 2: entry expired, nodes merge.
	if n := len(g.NodesAt(2)); n != 1 {
		t.Errorf("nodes at τ=2 = %d, want 1 (TL entry should expire)", n)
	}
}

func TestConditioningRatiosPreserved(t *testing.T) {
	// §3.1: conditioning preserves the probability ratios of surviving
	// trajectories. Kill one of three trajectories and check ratios.
	ic := constraints.NewSet()
	ic.AddDU(2, 0)
	ls := FromDistributions([][]float64{
		{0.5, 0.3, 0.2},
		{1},
	})
	// Trajectories: (0,0) p=.5, (1,0) p=.3, (2,0) p=.2 — last one dies.
	g, err := Build(ls, ic, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := g.ConditionedDistribution(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist["0,0"]-0.5/0.8) > 1e-12 || math.Abs(dist["1,0"]-0.3/0.8) > 1e-12 {
		t.Errorf("dist = %v", dist)
	}
	ratio := dist["0,0"] / dist["1,0"]
	if math.Abs(ratio-0.5/0.3) > 1e-9 {
		t.Errorf("ratio = %v, want %v", ratio, 0.5/0.3)
	}
}

func TestOracleLimit(t *testing.T) {
	uniform2 := []float64{0.5, 0.5}
	ls := FromDistributions([][]float64{uniform2, uniform2, uniform2, uniform2})
	if _, err := EnumerateConditioned(ls, nil, constraints.StrictEnd, 3); err == nil {
		t.Errorf("oracle limit not enforced")
	}
}

func TestPriorProbabilityAndCounts(t *testing.T) {
	ls, _ := runningExample(t)
	if n := ls.NumTrajectories(); n != 8 {
		t.Errorf("NumTrajectories = %v", n)
	}
	if n := ls.NumLocations(); n != 6 {
		t.Errorf("NumLocations = %v", n)
	}
	p := ls.PriorProbability([]int{l1, l3, l3})
	if math.Abs(p-3.0/5*1.0/3*2.0/3) > 1e-12 {
		t.Errorf("PriorProbability = %v", p)
	}
	if ls.PriorProbability([]int{l1, l1, l1}) != 0 {
		t.Errorf("impossible trajectory has non-zero prior")
	}
	if ls.PriorProbability([]int{l1}) != 0 {
		t.Errorf("wrong-length trajectory has non-zero prior")
	}
}

func TestLSequenceValidate(t *testing.T) {
	cases := []struct {
		name string
		ls   *LSequence
		ok   bool
	}{
		{"nil", nil, false},
		{"empty", &LSequence{}, false},
		{"no candidates", &LSequence{Steps: []Step{{}}}, false},
		{"negative prob", &LSequence{Steps: []Step{{Candidates: []Candidate{{0, -0.5}, {1, 1.5}}}}}, false},
		{"negative loc", &LSequence{Steps: []Step{{Candidates: []Candidate{{-1, 1}}}}}, false},
		{"duplicate loc", &LSequence{Steps: []Step{{Candidates: []Candidate{{0, 0.5}, {0, 0.5}}}}}, false},
		{"not normalized", &LSequence{Steps: []Step{{Candidates: []Candidate{{0, 0.5}}}}}, false},
		{"good", FromDistributions([][]float64{{0.25, 0.75}}), true},
	}
	for _, c := range cases {
		err := c.ls.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: error expected", c.name)
		}
	}
}

func TestSingleTimestamp(t *testing.T) {
	ls := FromDistributions([][]float64{{0.25, 0.75}})
	g, err := Build(ls, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := g.ConditionedDistribution(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist["0"]-0.25) > 1e-12 || math.Abs(dist["1"]-0.75) > 1e-12 {
		t.Errorf("dist = %v", dist)
	}
	if err := g.CheckInvariants(1e-9); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestSingleTimestampWithLatencyStrict(t *testing.T) {
	// A 1-step window with latency(0, 2): under strict semantics the stay
	// at 0 cannot complete, so only location 1 survives.
	ic := constraints.NewSet()
	ic.AddLT(0, 2)
	ls := FromDistributions([][]float64{{0.25, 0.75}})
	g, err := Build(ls, ic, &Options{EndLatency: constraints.StrictEnd})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := g.ConditionedDistribution(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 1 || math.Abs(dist["1"]-1) > 1e-12 {
		t.Errorf("dist = %v", dist)
	}
}
