package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/constraints"
	"repro/internal/stats"
)

// graphsBitIdentical asserts two ct-graphs are structurally equal with
// bit-identical probabilities: same levels, same nodes (identity fields and
// source probabilities), and the same out-edges in the same order with the
// same conditioned weights. This is much stronger than comparing marginals.
func graphsBitIdentical(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.Duration() != got.Duration() {
		t.Fatalf("duration: want %d, got %d", want.Duration(), got.Duration())
	}
	for tt := 0; tt < want.Duration(); tt++ {
		wl, gl := want.byTime[tt], got.byTime[tt]
		if len(wl) != len(gl) {
			t.Fatalf("t=%d: want %d nodes, got %d", tt, len(wl), len(gl))
		}
		for i := range wl {
			wn, gn := wl[i], gl[i]
			if wn.Time != gn.Time || wn.Loc != gn.Loc || wn.Stay != gn.Stay {
				t.Fatalf("t=%d node %d: want (%d,%d,%d), got (%d,%d,%d)",
					tt, i, wn.Time, wn.Loc, wn.Stay, gn.Time, gn.Loc, gn.Stay)
			}
			if len(wn.TL) != len(gn.TL) {
				t.Fatalf("t=%d node %d: TL length differs", tt, i)
			}
			for k := range wn.TL {
				if wn.TL[k] != gn.TL[k] {
					t.Fatalf("t=%d node %d: TL entry %d differs", tt, i, k)
				}
			}
			if math.Float64bits(wn.prob) != math.Float64bits(gn.prob) {
				t.Fatalf("t=%d node %d: prob want %x, got %x", tt, i,
					math.Float64bits(wn.prob), math.Float64bits(gn.prob))
			}
			if len(wn.out) != len(gn.out) {
				t.Fatalf("t=%d node %d: want %d out-edges, got %d", tt, i, len(wn.out), len(gn.out))
			}
			for k := range wn.out {
				we, ge := wn.out[k], gn.out[k]
				if we.To.idx != ge.To.idx {
					t.Fatalf("t=%d node %d edge %d: want target %d, got %d", tt, i, k, we.To.idx, ge.To.idx)
				}
				if math.Float64bits(we.P) != math.Float64bits(ge.P) {
					t.Fatalf("t=%d node %d edge %d: P want %x, got %x", tt, i, k,
						math.Float64bits(we.P), math.Float64bits(ge.P))
				}
			}
		}
	}
}

func prefixLS(ls *LSequence, n int) *LSequence {
	return &LSequence{Steps: ls.Steps[:n]}
}

// TestPropertyIncrementalSmoothEqualsBuild is the tentpole equivalence
// property: feeding random valid reading sequences through a BuildState and
// smoothing at random prefixes yields, at every prefix, a graph bit-identical
// to a full offline Build over the same prefix — including after prefix
// reuse, under both end-latency modes, and with the modes alternating (which
// invalidates the convergence bookkeeping).
func TestPropertyIncrementalSmoothEqualsBuild(t *testing.T) {
	rng := stats.NewRNG(20140325)
	const trials = 400
	smoothed, reused := 0, 0
	for trial := 0; trial < trials; trial++ {
		ls, ic := randomScenario(rng)
		st := NewBuildState(ic)
		mode := constraints.LenientEnd
		if rng.Bernoulli(0.3) {
			mode = constraints.StrictEnd
		}
		for k := 0; k < ls.Duration(); k++ {
			if err := st.Observe(ls.Steps[k].Candidates); err != nil {
				// The forward phase dead-ended: the offline build over the
				// same prefix must dead-end too, and the state must refuse
				// further readings.
				if !errors.Is(err, ErrNoValidTrajectory) {
					t.Fatalf("trial %d: unexpected observe error: %v", trial, err)
				}
				if _, bErr := Build(prefixLS(ls, k+1), ic, &Options{EndLatency: mode}); !errors.Is(bErr, ErrNoValidTrajectory) {
					t.Fatalf("trial %d: state dead-ended at %d but Build said %v", trial, k, bErr)
				}
				if err := st.Observe(ls.Steps[k].Candidates); !errors.Is(err, ErrNoValidTrajectory) {
					t.Fatalf("trial %d: dead state accepted a reading: %v", trial, err)
				}
				break
			}
			if k != ls.Duration()-1 && !rng.Bernoulli(0.5) {
				continue // smooth at a random subset of prefixes, always the last
			}
			if rng.Bernoulli(0.15) {
				// Occasionally flip the end-latency mode mid-session.
				if mode == constraints.LenientEnd {
					mode = constraints.StrictEnd
				} else {
					mode = constraints.LenientEnd
				}
			}
			var exInc, exFull BuildExplain
			got, gErr := st.Smooth(&Options{EndLatency: mode, Explain: &exInc})
			want, wErr := Build(prefixLS(ls, k+1), ic, &Options{EndLatency: mode, Explain: &exFull})
			if (gErr == nil) != (wErr == nil) {
				t.Fatalf("trial %d prefix %d: incremental err %v, full err %v", trial, k+1, gErr, wErr)
			}
			if wErr != nil {
				if !errors.Is(gErr, ErrNoValidTrajectory) {
					t.Fatalf("trial %d prefix %d: want ErrNoValidTrajectory, got %v", trial, k+1, gErr)
				}
				continue
			}
			smoothed++
			reused += exInc.ReusedLevels
			graphsBitIdentical(t, want, got)
			if err := got.CheckInvariants(1e-9); err != nil {
				t.Fatalf("trial %d prefix %d: invariants: %v", trial, k+1, err)
			}
			numLocs := len(ls.Steps[0].Candidates)
			for _, s := range ls.Steps {
				for _, c := range s.Candidates {
					if c.Loc >= numLocs {
						numLocs = c.Loc + 1
					}
				}
			}
			wantM, err := want.Marginals(numLocs)
			if err != nil {
				t.Fatal(err)
			}
			gotM, err := got.Marginals(numLocs)
			if err != nil {
				t.Fatal(err)
			}
			for tt := range wantM {
				for l := range wantM[tt] {
					if math.Float64bits(wantM[tt][l]) != math.Float64bits(gotM[tt][l]) {
						t.Fatalf("trial %d prefix %d: marginal (t=%d, loc=%d) want %x, got %x",
							trial, k+1, tt, l, math.Float64bits(wantM[tt][l]), math.Float64bits(gotM[tt][l]))
					}
				}
			}
			// Count-valued explain fields must agree with the full build's.
			if exInc.PrunedDU != exFull.PrunedDU || exInc.PrunedLT != exFull.PrunedLT || exInc.PrunedTT != exFull.PrunedTT ||
				exInc.TargetsCondemned != exFull.TargetsCondemned ||
				exInc.BackwardRemoved != exFull.BackwardRemoved ||
				exInc.GhostsRemoved != exFull.GhostsRemoved {
				t.Fatalf("trial %d prefix %d: explain counters diverge: inc %+v full %+v", trial, k+1, exInc, exFull)
			}
			if math.Float64bits(exInc.Normalizer) != math.Float64bits(exFull.Normalizer) {
				t.Fatalf("trial %d prefix %d: normalizer want %x, got %x",
					trial, k+1, math.Float64bits(exFull.Normalizer), math.Float64bits(exInc.Normalizer))
			}
			for tt := range exFull.Steps {
				if exInc.Steps[tt] != exFull.Steps[tt] {
					t.Fatalf("trial %d prefix %d: explain step %d: inc %+v full %+v",
						trial, k+1, tt, exInc.Steps[tt], exFull.Steps[tt])
				}
			}
			if exInc.ReusedLevels+exInc.RecomputedLevels != k+1 {
				t.Fatalf("trial %d prefix %d: reused %d + recomputed %d != window",
					trial, k+1, exInc.ReusedLevels, exInc.RecomputedLevels)
			}
		}
	}
	if smoothed == 0 {
		t.Fatal("no scenario produced a smoothable prefix")
	}
	if reused == 0 {
		t.Fatal("convergence never reused a prefix level — the incremental path was never exercised")
	}
}

// TestIncrementalSmoothIndependence asserts each Smooth returns a graph that
// later observations and smooths do not mutate.
func TestIncrementalSmoothIndependence(t *testing.T) {
	ls, ic := benchScenario()
	st := NewBuildState(ic)
	opts := &Options{EndLatency: constraints.LenientEnd}
	for k := 0; k < 50; k++ {
		if err := st.Observe(ls.Steps[k].Candidates); err != nil {
			t.Fatal(err)
		}
	}
	first, err := st.Smooth(opts)
	if err != nil {
		t.Fatal(err)
	}
	wantM, err := first.Marginals(8)
	if err != nil {
		t.Fatal(err)
	}
	want := append([][]float64(nil), wantM...)
	for k := 50; k < 80; k++ {
		if err := st.Observe(ls.Steps[k].Candidates); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Smooth(opts); err != nil {
			t.Fatal(err)
		}
	}
	gotM, err := first.Marginals(8)
	if err != nil {
		t.Fatal(err)
	}
	for tt := range want {
		for l := range want[tt] {
			if math.Float64bits(want[tt][l]) != math.Float64bits(gotM[tt][l]) {
				t.Fatalf("snapshot mutated at (t=%d, loc=%d)", tt, l)
			}
		}
	}
	if err := first.CheckInvariants(1e-9); err != nil {
		t.Fatalf("snapshot invariants broken after later smooths: %v", err)
	}
}

// TestBuildStateFrontierMatchesFilter asserts the BuildState's frontier
// queries return bit-identical values to an exact Filter fed the same
// candidates, so a serving layer can use either interchangeably.
func TestBuildStateFrontierMatchesFilter(t *testing.T) {
	ls, ic := benchScenario()
	st := NewBuildState(ic)
	f := NewFilter(ic, nil)
	for k := 0; k < 120; k++ {
		cands := ls.Steps[k].Candidates
		if err := st.Observe(cands); err != nil {
			t.Fatal(err)
		}
		if err := f.Observe(cands); err != nil {
			t.Fatal(err)
		}
		if st.Time() != f.Time() || st.FrontierSize() != f.FrontierSize() {
			t.Fatalf("step %d: time/frontier diverge: state (%d,%d), filter (%d,%d)",
				k, st.Time(), st.FrontierSize(), f.Time(), f.FrontierSize())
		}
		sd, err := st.Distribution()
		if err != nil {
			t.Fatal(err)
		}
		fd, err := f.Distribution()
		if err != nil {
			t.Fatal(err)
		}
		if len(sd) != len(fd) {
			t.Fatalf("step %d: distribution sizes diverge", k)
		}
		for i := range sd {
			if sd[i].Loc != fd[i].Loc || math.Float64bits(sd[i].P) != math.Float64bits(fd[i].P) {
				t.Fatalf("step %d entry %d: state %+v, filter %+v", k, i, sd[i], fd[i])
			}
		}
	}
}

// TestBuildStateValidation mirrors Filter.Observe's candidate validation,
// including the duplicate-location rejection.
func TestBuildStateValidation(t *testing.T) {
	st := NewBuildState(nil)
	if err := st.Observe(nil); err == nil {
		t.Fatal("empty candidate set accepted")
	}
	if err := st.Observe([]Candidate{{Loc: -1, P: 1}}); err == nil {
		t.Fatal("negative location accepted")
	}
	if err := st.Observe([]Candidate{{Loc: 0, P: 0}}); err == nil {
		t.Fatal("zero probability accepted")
	}
	if err := st.Observe([]Candidate{{Loc: 0, P: 0.5}, {Loc: 0, P: 0.5}}); err == nil {
		t.Fatal("duplicate locations accepted")
	}
	if _, err := st.Smooth(nil); err == nil {
		t.Fatal("smooth of an empty state succeeded")
	}
	if err := st.Observe([]Candidate{{Loc: 0, P: 1}}); err != nil {
		t.Fatal(err)
	}
	g, err := st.Smooth(&Options{EndLatency: constraints.LenientEnd})
	if err != nil {
		t.Fatal(err)
	}
	if g.Duration() != 1 {
		t.Fatalf("duration: got %d, want 1", g.Duration())
	}
}

// TestBuildStateInternerRebuild exercises the TL interner cap on a long
// stream, mirroring the Filter's bound.
func TestBuildStateInternerRebuild(t *testing.T) {
	ls, ic := benchScenario()
	st := NewBuildState(ic)
	st.internCap = 8
	for k := 0; k < ls.Duration(); k++ {
		if err := st.Observe(ls.Steps[k].Candidates); err != nil {
			t.Fatal(err)
		}
	}
	if st.InternerRebuilds() == 0 {
		t.Fatal("interner never rebuilt despite a tiny cap")
	}
	got, err := st.Smooth(&Options{EndLatency: constraints.LenientEnd})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Build(ls, ic, &Options{EndLatency: constraints.LenientEnd})
	if err != nil {
		t.Fatal(err)
	}
	graphsBitIdentical(t, want, got)
}
