package core

import (
	"testing"

	"repro/internal/constraints"
	"repro/internal/stats"
)

// benchScenario builds a fixed mid-size l-sequence and constraint set.
func benchScenario() (*LSequence, *constraints.Set) {
	return benchScenarioN(200)
}

// benchScenarioN is benchScenario with a chosen duration, for benchmarks
// that need a stream longer than the mid-size default.
func benchScenarioN(duration int) (*LSequence, *constraints.Set) {
	rng := stats.NewRNG(99)
	const numLocs = 8
	dists := make([][]float64, duration)
	for t := range dists {
		row := make([]float64, numLocs)
		total := 0.0
		k := rng.IntRange(2, 4)
		for i := 0; i < k; i++ {
			row[rng.Intn(numLocs)] += rng.Range(0.1, 1)
		}
		// Location 0 is always possible, keeping the scenario consistent
		// (staying at 0 forever satisfies every constraint below).
		row[0] += 0.2
		for _, v := range row {
			total += v
		}
		if total == 0 {
			row[0], total = 1, 1
		}
		for i := range row {
			row[i] /= total
		}
		dists[t] = row
	}
	ls := FromDistributions(dists)
	ic := newBenchConstraints(numLocs)
	return ls, ic
}

func newBenchConstraints(numLocs int) *constraints.Set {
	ic := constraints.NewSet()
	for i := 0; i < numLocs; i++ {
		for j := 0; j < numLocs; j++ {
			if i != j && (i+j)%3 == 0 {
				ic.AddDU(i, j)
			}
		}
	}
	ic.AddLT(1, 3)
	ic.AddLT(2, 2)
	_ = ic.AddTT(0, 4, 5)
	_ = ic.AddTT(3, 7, 4)
	return ic
}

// BenchmarkAlgorithm1 measures the full forward+backward construction.
func BenchmarkAlgorithm1(b *testing.B) {
	ls, ic := benchScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ls, ic, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuild is BenchmarkAlgorithm1 under the name the CI bench smoke
// and the acceptance pattern (-bench 'Build|Marginals|TopK') select.
func BenchmarkBuild(b *testing.B) { BenchmarkAlgorithm1(b) }

// BenchmarkMarginals measures the smoothed per-timestamp distributions
// (forward + backward pass plus the location aggregation).
func BenchmarkMarginals(b *testing.B) {
	ls, ic := benchScenario()
	g, err := Build(ls, ic, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Marginals(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForwardBackward measures the alpha/beta passes used by queries.
func BenchmarkForwardBackward(b *testing.B) {
	ls, ic := benchScenario()
	g, err := Build(ls, ic, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Forward()
		g.Backward()
	}
}

// BenchmarkFilterObserve measures one streaming observation step.
func BenchmarkFilterObserve(b *testing.B) {
	ls, ic := benchScenario()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewFilter(ic, nil)
		for _, step := range ls.Steps {
			if err := f.Observe(step.Candidates); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTopK measures k-best decoding.
func BenchmarkTopK(b *testing.B) {
	ls, ic := benchScenario()
	g, err := Build(ls, ic, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if trajs, _ := g.TopK(5); len(trajs) == 0 {
			b.Fatal("no trajectories")
		}
	}
}

// BenchmarkIncrementalSmooth measures the streaming fast path: a live
// session that has already observed (and smoothed) 500 readings takes one
// more and re-smooths. Only that Smooth is timed — in the server, Observe
// runs at ingestion (POST readings), not at smoothing time — and every
// iteration rebuilds the same 501-reading session untimed, so the number is
// stable in b.N. The backward convergence check stops the recompute a few
// levels in, so the cost is dominated by cloning the settled prefix — the
// work a full rebuild (BenchmarkFullSmooth500) redoes from scratch.
func BenchmarkIncrementalSmooth(b *testing.B) {
	const warm = 500
	ls, ic := benchScenarioN(warm + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := NewBuildState(ic)
		for _, step := range ls.Steps[:warm] {
			if err := st.Observe(step.Candidates); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := st.Smooth(nil); err != nil {
			b.Fatal(err)
		}
		if err := st.Observe(ls.Steps[warm].Candidates); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := st.Smooth(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSmooth500 is the rebuild the incremental path replaces:
// Algorithm 1 end to end over the same 500-reading session plus one more.
func BenchmarkFullSmooth500(b *testing.B) {
	ls, ic := benchScenarioN(501)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ls, ic, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeDecode measures graph serialization round trips.
func BenchmarkEncodeDecode(b *testing.B) {
	ls, ic := benchScenario()
	g, err := Build(ls, ic, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf discardCounter
		if err := g.Encode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// discardCounter is an io.Writer that counts bytes.
type discardCounter int

func (d *discardCounter) Write(p []byte) (int, error) {
	*d += discardCounter(len(p))
	return len(p), nil
}
