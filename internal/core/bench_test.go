package core

import (
	"testing"

	"repro/internal/constraints"
	"repro/internal/stats"
)

// benchScenario builds a fixed mid-size l-sequence and constraint set.
func benchScenario() (*LSequence, *constraints.Set) {
	rng := stats.NewRNG(99)
	const duration = 200
	const numLocs = 8
	dists := make([][]float64, duration)
	for t := range dists {
		row := make([]float64, numLocs)
		total := 0.0
		k := rng.IntRange(2, 4)
		for i := 0; i < k; i++ {
			row[rng.Intn(numLocs)] += rng.Range(0.1, 1)
		}
		// Location 0 is always possible, keeping the scenario consistent
		// (staying at 0 forever satisfies every constraint below).
		row[0] += 0.2
		for _, v := range row {
			total += v
		}
		if total == 0 {
			row[0], total = 1, 1
		}
		for i := range row {
			row[i] /= total
		}
		dists[t] = row
	}
	ls := FromDistributions(dists)
	ic := constraints.NewSet()
	for i := 0; i < numLocs; i++ {
		for j := 0; j < numLocs; j++ {
			if i != j && (i+j)%3 == 0 {
				ic.AddDU(i, j)
			}
		}
	}
	ic.AddLT(1, 3)
	ic.AddLT(2, 2)
	_ = ic.AddTT(0, 4, 5)
	_ = ic.AddTT(3, 7, 4)
	return ls, ic
}

// BenchmarkAlgorithm1 measures the full forward+backward construction.
func BenchmarkAlgorithm1(b *testing.B) {
	ls, ic := benchScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ls, ic, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuild is BenchmarkAlgorithm1 under the name the CI bench smoke
// and the acceptance pattern (-bench 'Build|Marginals|TopK') select.
func BenchmarkBuild(b *testing.B) { BenchmarkAlgorithm1(b) }

// BenchmarkMarginals measures the smoothed per-timestamp distributions
// (forward + backward pass plus the location aggregation).
func BenchmarkMarginals(b *testing.B) {
	ls, ic := benchScenario()
	g, err := Build(ls, ic, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Marginals(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForwardBackward measures the alpha/beta passes used by queries.
func BenchmarkForwardBackward(b *testing.B) {
	ls, ic := benchScenario()
	g, err := Build(ls, ic, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Forward()
		g.Backward()
	}
}

// BenchmarkFilterObserve measures one streaming observation step.
func BenchmarkFilterObserve(b *testing.B) {
	ls, ic := benchScenario()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewFilter(ic, nil)
		for _, step := range ls.Steps {
			if err := f.Observe(step.Candidates); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTopK measures k-best decoding.
func BenchmarkTopK(b *testing.B) {
	ls, ic := benchScenario()
	g, err := Build(ls, ic, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if trajs, _ := g.TopK(5); len(trajs) == 0 {
			b.Fatal("no trajectories")
		}
	}
}

// BenchmarkEncodeDecode measures graph serialization round trips.
func BenchmarkEncodeDecode(b *testing.B) {
	ls, ic := benchScenario()
	g, err := Build(ls, ic, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf discardCounter
		if err := g.Encode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// discardCounter is an io.Writer that counts bytes.
type discardCounter int

func (d *discardCounter) Write(p []byte) (int, error) {
	*d += discardCounter(len(p))
	return len(p), nil
}
