package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/constraints"
	"repro/internal/obs"
)

// ErrNoValidTrajectory is returned by Build when the constraints rule out
// every trajectory compatible with the readings: the conditioning event has
// probability zero and the conditioned distribution is undefined.
var ErrNoValidTrajectory = errors.New("core: no trajectory satisfies the integrity constraints")

// Options configures Build. The zero value is ready to use.
type Options struct {
	// EndLatency selects how latency constraints treat stays truncated by
	// the end of the window. The default, constraints.StrictEnd, follows
	// Definition 2; constraints.LenientEnd follows Algorithm 1 as printed
	// (see DESIGN.md §3).
	EndLatency constraints.EndLatencyMode

	// Explain, when non-nil, is reset and filled by Build with a cleaning
	// explain report (per-phase wall times, per-timestamp candidate counts,
	// per-constraint prune counters). The report is written by the build
	// goroutine with no synchronization: callers running concurrent builds
	// must give each its own Options value.
	Explain *BuildExplain
}

func (o *Options) endLatency() constraints.EndLatencyMode {
	if o == nil {
		return constraints.StrictEnd
	}
	return o.EndLatency
}

func (o *Options) explain() *BuildExplain {
	if o == nil {
		return nil
	}
	return o.Explain
}

// Build runs Algorithm 1: it constructs the conditioned trajectory graph of
// the l-sequence under the integrity constraints.
//
// The forward phase (lines 5-14 of the paper) grows the graph timestamp by
// timestamp, materializing only successors permitted by Definition 3 and
// labeling edges with the a-priori step probabilities. Successor identity is
// the comparable nodeKey (with the TL slice interned), so deduplicating the
// level costs no per-candidate allocation; nodes and edges come from arenas.
//
// The backward phase implements the same revision as the paper's
// loss-propagation queue (lines 15-31) in its closed form: for every node,
// the "survival" S(n) — the fraction of the a-priori probability mass of the
// trajectories compatible with n that is valid, i.e. 1 − n.loss in the
// paper's bookkeeping — satisfies
//
//	S(target) = 1 (0 for targets condemned by strict end-of-window latency)
//	S(n)      = Σ_{(n,m) ∈ E} p_E(n,m) · S(m)
//
// and the conditioned probabilities are p'_E(n,m) = p_E(n,m)·S(m)/S(n) and
// p'_N(src) = p_N(src)·S(src) / Σ p_N·S. The paper's queue evaluates exactly
// this recurrence incrementally; evaluating it level by level visits the
// same nodes and lets us rescale each timestamp's survivals by their
// maximum, which keeps 1−loss well above the float64 underflow threshold on
// hours-long windows (survivals can legitimately shrink geometrically with
// the window length; the conditioned probabilities only ever depend on
// survival ratios within a timestamp, which rescaling preserves).
//
// Build returns ErrNoValidTrajectory when the constraints exclude every
// interpretation of the readings.
func Build(ls *LSequence, ic *constraints.Set, opts *Options) (*Graph, error) {
	return BuildCtx(context.Background(), ls, ic, opts)
}

// BuildCtx is Build with observability: when ctx carries an obs.Trace the
// compile/forward/backward/revise phases record spans into it, and when
// opts.Explain is set the report is filled. With neither attached it is
// byte-for-byte the same work as Build — the span calls are no-ops that
// allocate nothing (internal/obs) and the explain branches are nil checks.
func BuildCtx(ctx context.Context, ls *LSequence, ic *constraints.Set, opts *Options) (*Graph, error) {
	if err := ls.Validate(); err != nil {
		return nil, err
	}
	if ic == nil {
		ic = constraints.NewSet()
	}
	duration := ls.Duration()
	ex := opts.explain()
	if ex != nil {
		ex.reset(duration)
	}
	ctx, spBuild := obs.Start(ctx, "core.build")
	defer spBuild.End()
	spBuild.Int("timestamps", int64(duration))

	_, spCompile := obs.Start(ctx, "core.compile")
	phaseStart := time.Now()
	b := newBuilder(ic)
	if ex != nil {
		ex.CompileNanos = time.Since(phaseStart).Nanoseconds()
		phaseStart = time.Now()
	}
	spCompile.End()
	_, spForward := obs.Start(ctx, "core.forward")
	g := &Graph{byTime: make([][]*Node, duration)}

	// Initialization (lines 1-4): source nodes, one per candidate at τ=0,
	// with p_N set from the a-priori probabilities.
	for _, c := range ls.Steps[0].Candidates {
		n := b.newNode(0, c.Loc, b.initialStay(c.Loc), nil)
		n.prob = c.P
		n.idx = int32(len(g.byTime[0]))
		g.byTime[0] = append(g.byTime[0], n)
	}
	if ex != nil {
		ex.Steps[0].Candidates = len(ls.Steps[0].Candidates)
		ex.Steps[0].NodesBuilt = len(g.byTime[0])
	}

	// Forward phase (lines 5-14). The level map is reused across timestamps;
	// keys are value types, so deduplicating a level allocates nothing. Each
	// level is built in two passes: the first resolves every (node, candidate)
	// pair to its successor (or nil) and counts degrees, the second carves
	// exact-capacity adjacency lists out of the pointer arena and fills them —
	// so the in/out lists never pay append-growth reallocations.
	level := make(map[nodeKey]*Node)
	var (
		succs  []*Node // successor per (node, candidate) pair, nil when invalid
		outDeg []int32 // out-degree per node of the current level
		inDeg  []int32 // in-degree per node of the next level
		prunes [numPruneReasons]int64
	)
	for t := 0; t+1 < duration; t++ {
		clear(level)
		cur := g.byTime[t]
		cands := ls.Steps[t+1].Candidates
		prunedBefore := prunes[pruneDU] + prunes[pruneLT] + prunes[pruneTT]
		succs = resize(succs, len(cur)*len(cands))
		outDeg = resize(outDeg, len(cur))
		inDeg = inDeg[:0]
		pi := 0
		for i, n := range cur {
			outDeg[i] = 0
			for _, c := range cands {
				key, why := b.successorKey(n, c.Loc)
				prunes[why]++
				if why != pruneNone {
					succs[pi] = nil
					pi++
					continue
				}
				succ, seen := level[key]
				if !seen {
					succ = b.newNode(t+1, int(key.loc), int(key.stay), b.tl.seq(key.tl))
					succ.idx = int32(len(g.byTime[t+1]))
					level[key] = succ
					g.byTime[t+1] = append(g.byTime[t+1], succ)
					inDeg = append(inDeg, 0)
				}
				succs[pi] = succ
				pi++
				outDeg[i]++
				inDeg[succ.idx]++
			}
		}
		if ex != nil {
			st := &ex.Steps[t+1]
			st.Candidates = len(cands)
			st.Considered = len(cur) * len(cands)
			st.Accepted = st.Considered - int(prunes[pruneDU]+prunes[pruneLT]+prunes[pruneTT]-prunedBefore)
			st.NodesBuilt = len(g.byTime[t+1])
		}
		if len(g.byTime[t+1]) == 0 {
			return nil, fmt.Errorf("%w (dead end at timestamp %d)", ErrNoValidTrajectory, t+1)
		}
		for i, n := range cur {
			n.out = b.carve(int(outDeg[i]))
		}
		for i, m := range g.byTime[t+1] {
			m.in = b.carve(int(inDeg[i]))
		}
		pi = 0
		for _, n := range cur {
			for _, c := range cands {
				succ := succs[pi]
				pi++
				if succ == nil {
					continue
				}
				e := b.newEdge(n, succ, c.P)
				n.out = append(n.out, e)
				succ.in = append(succ.in, e)
			}
		}
	}

	spForward.End()
	if ex != nil {
		ex.PrunedDU = prunes[pruneDU]
		ex.PrunedLT = prunes[pruneLT]
		ex.PrunedTT = prunes[pruneTT]
		ex.ForwardNanos = time.Since(phaseStart).Nanoseconds()
		phaseStart = time.Now()
	}
	_, spBackward := obs.Start(ctx, "core.backward")

	// Backward phase (lines 15-31 in closed form; see above).
	// Target survivals: 1, except targets condemned by strict
	// end-of-window latency semantics (Definition 2).
	strict := opts.endLatency() == constraints.StrictEnd
	condemned := condemnTargets(g.byTime[duration-1], strict)
	g.detachRemoved(duration - 1)

	backwardRemoved := 0
	for t := duration - 2; t >= 0; t-- {
		removed, ok := conditionLevel(g.byTime[t])
		backwardRemoved += removed
		if !ok {
			return nil, ErrNoValidTrajectory
		}
		g.detachRemoved(t)
	}

	spBackward.End()
	if ex != nil {
		ex.BackwardNanos = time.Since(phaseStart).Nanoseconds()
		phaseStart = time.Now()
	}
	_, spRevise := obs.Start(ctx, "core.revise")
	defer spRevise.End()

	// Condition the source probabilities (lines 30-31).
	total, ok := conditionSources(g.byTime[0])
	if !ok {
		return nil, ErrNoValidTrajectory
	}
	ghosts := g.scrubOrphans()
	g.compact()
	if ex != nil {
		ex.TargetsCondemned = condemned
		ex.BackwardRemoved = backwardRemoved
		ex.GhostsRemoved = ghosts
		ex.Normalizer = total
		ex.RecomputedLevels = duration
		for t := range g.byTime {
			ex.Steps[t].NodesFinal = len(g.byTime[t])
		}
		ex.ReviseNanos = time.Since(phaseStart).Nanoseconds()
	}
	return g, nil
}

// condemnTargets initializes the target survivals (the backward recurrence's
// base case): 1, except targets condemned by strict end-of-window latency
// semantics (Definition 2), which get survival 0 and are removed. Returns the
// number of condemned targets. Shared by Build and BuildState.Smooth so both
// paths run the identical operations in the identical order.
func condemnTargets(nodes []*Node, strict bool) int {
	condemned := 0
	for _, n := range nodes {
		if strict && n.Stay != StayUntracked {
			n.surv = 0
			n.removed = true
			condemned++
		} else {
			n.surv = 1
		}
	}
	return condemned
}

// conditionLevel runs one backward iteration (lines 15-29 in closed form)
// over the nodes of a single timestamp: it drops edges into removed
// successors, accumulates each node's survival, conditions the surviving
// out-edges, and rescales the level's survivals by their maximum so the
// recurrence never underflows (conditioned probabilities depend only on
// within-level survival ratios, which rescaling preserves). ok is false when
// the whole level died — i.e. no valid trajectory exists. The caller must
// follow up with detachRemoved for this timestamp. Shared by Build and
// BuildState.Smooth: keeping the float operations in one body is what makes
// the incremental path bit-identical to the offline one.
func conditionLevel(nodes []*Node) (removed int, ok bool) {
	maxS := 0.0
	for _, n := range nodes {
		// Drop edges into removed nodes, accumulate survival,
		// and store the unconditioned weight on each edge.
		alive := n.out[:0]
		s := 0.0
		for _, e := range n.out {
			if e.To.removed {
				continue
			}
			e.P *= e.To.surv
			s += e.P
			alive = append(alive, e)
		}
		n.out = alive
		n.surv = s
		if s > maxS {
			maxS = s
		}
		if s == 0 {
			// Proposition 1: no successor => invalid. s can also hit
			// zero by underflow when every surviving edge weight is
			// below the smallest denormal; either way the node carries
			// no representable valid mass and is pruned.
			n.removed = true
			removed++
			continue
		}
		// Condition the outgoing edges (lines 17-19): each is
		// divided by the surviving fraction.
		for _, e := range n.out {
			e.P /= s
		}
	}
	if maxS == 0 {
		return removed, false
	}
	for _, n := range nodes {
		n.surv /= maxS
	}
	return removed, true
}

// conditionSources conditions the source probabilities (lines 30-31):
// p'_N(src) = p_N(src)·S(src) / Σ p_N·S. ok is false when no source retains
// positive mass. Shared by Build and BuildState.Smooth.
func conditionSources(nodes []*Node) (total float64, ok bool) {
	for _, src := range nodes {
		src.prob *= src.surv
		total += src.prob
	}
	if total <= 0 {
		return total, false
	}
	for _, src := range nodes {
		src.prob /= total
	}
	return total, true
}

// detachRemoved unlinks a removed node at timestamp t from both sides of its
// adjacency (lines 26-29 of the paper): its in-edges disappear from the
// predecessors' out lists and its out-edges from the successors' in lists.
// Forgetting the second half used to leave dangling in-edges pointing at
// removed nodes whenever a node died with surviving out-edges (possible only
// through survival underflow within a level).
func (g *Graph) detachRemoved(t int) {
	detachRemovedLevel(g.byTime[t])
}

// detachRemovedLevel is detachRemoved over an explicit node list, so
// BuildState.Smooth can apply it to cloned levels.
func detachRemovedLevel(nodes []*Node) {
	for _, n := range nodes {
		if !n.removed {
			continue
		}
		for _, e := range n.in {
			removeOutEdge(e.From, e)
		}
		for _, e := range n.out {
			removeInEdge(e.To, e)
		}
		n.in = nil
		n.out = nil
	}
}

// scrubOrphans removes nodes whose predecessors were all removed by the
// backward phase. The backward sweep visits levels last-to-first, so a node
// orphaned by removals one level earlier keeps a positive survival and used
// to outlive compact() as an unreachable ghost. Sweeping forward cascades
// the removal: an orphan's own successors lose its in-edges immediately and
// are re-examined on the next iteration. Orphans carry zero forward mass, so
// conditioned probabilities are unaffected; a level can never lose all its
// nodes here, because that would require the previous level to have been
// fully removed, which the backward phase already reports as
// ErrNoValidTrajectory. Returns the number of ghosts removed.
func (g *Graph) scrubOrphans() int {
	ghosts := 0
	for t := 1; t < len(g.byTime); t++ {
		ghosts += scrubLevelOrphans(g.byTime[t])
	}
	return ghosts
}

// scrubLevelOrphans removes the orphans of a single timestamp: nodes whose
// predecessors were all removed. Per-level so BuildState.Smooth can sweep
// only the recomputed suffix.
func scrubLevelOrphans(nodes []*Node) int {
	ghosts := 0
	for _, n := range nodes {
		if n.removed {
			continue
		}
		alive := n.in[:0]
		for _, e := range n.in {
			if !e.From.removed {
				alive = append(alive, e)
			}
		}
		n.in = alive
		if len(n.in) == 0 {
			n.removed = true
			ghosts++
			for _, e := range n.out {
				removeInEdge(e.To, e)
			}
			n.out = nil
		}
	}
	return ghosts
}

// compact drops removed nodes from the per-timestamp lists and reassigns the
// dense per-level indices to match the surviving positions.
func (g *Graph) compact() {
	for t := range g.byTime {
		compactLevel(&g.byTime[t])
	}
}

// compactLevel drops the removed nodes of a single timestamp in place and
// reassigns the dense per-level indices.
func compactLevel(nodes *[]*Node) {
	alive := (*nodes)[:0]
	for _, n := range *nodes {
		if !n.removed {
			n.idx = int32(len(alive))
			alive = append(alive, n)
		}
	}
	*nodes = alive
}

// resize returns s with length n, reallocating only when the capacity is too
// small. Contents are unspecified.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Arena block sizes: big enough to amortize allocation, small enough not to
// strand memory on tiny graphs.
const (
	nodeBlockSize = 256
	edgeBlockSize = 1024
	ptrBlockSize  = 4096
)

// builder holds the constraint set plus the allocation state shared by the
// forward phase and the streaming filter: the compiled constraint view, the
// TL interner, a scratch slice for assembling successor TLs, and node/edge
// arenas. Blocks are never reallocated once handed out, so node and edge
// pointers stay stable.
type builder struct {
	cs      *constraints.Compiled
	tl      *tlInterner
	scratch []TLEntry
	nodes   []Node
	edges   []Edge
	ptrs    []*Edge
}

func newBuilder(ic *constraints.Set) builder {
	return builder{cs: ic.Compile(), tl: newTLInterner()}
}

// newNode allocates a node from the arena. tl must be a canonical interned
// slice (or nil).
func (b *builder) newNode(t, loc, stay int, tl []TLEntry) *Node {
	if len(b.nodes) == cap(b.nodes) {
		b.nodes = make([]Node, 0, nodeBlockSize)
	}
	b.nodes = b.nodes[:len(b.nodes)+1]
	n := &b.nodes[len(b.nodes)-1]
	*n = Node{Time: t, Loc: loc, Stay: stay, TL: tl}
	return n
}

// newEdge allocates an edge from the arena.
func (b *builder) newEdge(from, to *Node, p float64) *Edge {
	if len(b.edges) == cap(b.edges) {
		b.edges = make([]Edge, 0, edgeBlockSize)
	}
	b.edges = b.edges[:len(b.edges)+1]
	e := &b.edges[len(b.edges)-1]
	*e = Edge{From: from, To: to, P: p}
	return e
}

// cloneNode copies a node's value (identity, probabilities, idx) into the
// arena in one block copy, detaching it from the source's adjacency. Used by
// the incremental bulk copies, where the field-by-field newNode path showed
// up in profiles.
func (b *builder) cloneNode(n *Node) *Node {
	if len(b.nodes) == cap(b.nodes) {
		b.nodes = make([]Node, 0, nodeBlockSize)
	}
	b.nodes = b.nodes[:len(b.nodes)+1]
	c := &b.nodes[len(b.nodes)-1]
	*c = *n
	c.out, c.in = nil, nil
	return c
}

// grow ensures the arena can hold n more nodes, e more edges and p more
// edge-pointer slots without falling back to chunked blocks, so a bulk copy
// of known size allocates at most three exact blocks.
func (b *builder) grow(n, e, p int) {
	if cap(b.nodes)-len(b.nodes) < n {
		b.nodes = make([]Node, 0, n)
	}
	if cap(b.edges)-len(b.edges) < e {
		b.edges = make([]Edge, 0, e)
	}
	if cap(b.ptrs)-len(b.ptrs) < p {
		b.ptrs = make([]*Edge, 0, p)
	}
}

// carve returns an empty edge list with capacity exactly n, cut from the
// pointer arena. The three-index slice expression caps each list at its own
// region, so lists carved from one block can never grow into each other.
func (b *builder) carve(n int) []*Edge {
	if n == 0 {
		return nil
	}
	if cap(b.ptrs)-len(b.ptrs) < n {
		size := ptrBlockSize
		if n > size {
			size = n
		}
		b.ptrs = make([]*Edge, 0, size)
	}
	s := b.ptrs[len(b.ptrs) : len(b.ptrs) : len(b.ptrs)+n]
	b.ptrs = b.ptrs[:len(b.ptrs)+n]
	return s
}

// initialStay returns the stay counter of a node entering loc (or starting
// the window there): 1 when a latency constraint is pending, ⊥ otherwise.
func (b *builder) initialStay(loc int) int {
	if delta, ok := b.cs.Latency(loc); ok && delta > 1 {
		return 1
	}
	return StayUntracked
}

// successorKey computes the identity of the unique successor node of n at
// location loc per Definition 3. The returned pruneReason is pruneNone on
// success; otherwise it names the constraint family that ruled the successor
// out, so Build can attribute prunes per constraint kind in explain reports.
// The successor's TL is assembled in the builder's scratch slice and
// interned, so checking a candidate that deduplicates onto an existing node
// allocates nothing.
func (b *builder) successorKey(n *Node, loc int) (nodeKey, pruneReason) {
	t2 := n.Time + 1
	// Condition 2: direct reachability.
	if b.cs.Unreachable(n.Loc, loc) {
		return nodeKey{}, pruneDU
	}
	if loc == n.Loc {
		// Condition 3: staying increments a pending stay counter.
		stay := n.Stay
		if stay != StayUntracked {
			stay++
			if delta, _ := b.cs.Latency(loc); stay >= delta {
				stay = StayUntracked // constraint satisfied: normalize to ⊥
			}
		}
		id := b.internTL(n.TL, t2, -1, nil)
		return nodeKey{loc: int32(loc), stay: int32(stay), tl: id}, pruneNone
	}
	// Condition 4: leaving is allowed only once any latency constraint on
	// the current location is satisfied (pending counter normalized away).
	if n.Stay != StayUntracked {
		return nodeKey{}, pruneLT
	}
	// Condition 5 (extended to cover the direct move, see DESIGN.md §3):
	// no TT constraint into loc may still bind, neither from a recently
	// left location in TL nor from the location being left right now.
	if nu, ok := b.cs.TT(n.Loc, loc); ok && t2-n.Time < nu {
		return nodeKey{}, pruneTT
	}
	for _, e := range n.TL {
		if nu, ok := b.cs.TT(e.Loc, loc); ok && t2-e.Time < nu {
			return nodeKey{}, pruneTT
		}
	}
	// Condition 6: extend TL with the location being left (when it is the
	// source of some TT constraint), expire stale entries, and drop any
	// entry for the location being entered.
	var add *TLEntry
	if b.cs.HasTTFrom(n.Loc) && t2-n.Time < b.cs.MaxTravelingTime(n.Loc) {
		add = &TLEntry{Time: n.Time, Loc: n.Loc}
	}
	id := b.internTL(n.TL, t2, loc, add)
	return nodeKey{loc: int32(loc), stay: int32(b.initialStay(loc)), tl: id}, pruneNone
}

// internTL builds the successor TL in the scratch slice — the entries of tl
// still able to influence a TT check at time t2, minus any entry for
// location drop, plus the optional add entry — and returns its interned ID.
func (b *builder) internTL(tl []TLEntry, t2, drop int, add *TLEntry) tlID {
	s := b.scratch[:0]
	for _, e := range tl {
		if e.Loc == drop {
			continue
		}
		if t2-e.Time >= b.cs.MaxTravelingTime(e.Loc) {
			continue
		}
		s = append(s, e)
	}
	if add != nil {
		s = append(s, *add)
		sortTL(s)
	}
	b.scratch = s
	return b.tl.intern(s)
}

// removeOutEdge removes e from pred's outgoing edge list.
func removeOutEdge(pred *Node, e *Edge) {
	for i, cand := range pred.out {
		if cand == e {
			pred.out[i] = pred.out[len(pred.out)-1]
			pred.out = pred.out[:len(pred.out)-1]
			return
		}
	}
}

// removeInEdge removes e from succ's incoming edge list.
func removeInEdge(succ *Node, e *Edge) {
	for i, cand := range succ.in {
		if cand == e {
			succ.in[i] = succ.in[len(succ.in)-1]
			succ.in = succ.in[:len(succ.in)-1]
			return
		}
	}
}
