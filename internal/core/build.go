package core

import (
	"errors"
	"fmt"

	"repro/internal/constraints"
)

// ErrNoValidTrajectory is returned by Build when the constraints rule out
// every trajectory compatible with the readings: the conditioning event has
// probability zero and the conditioned distribution is undefined.
var ErrNoValidTrajectory = errors.New("core: no trajectory satisfies the integrity constraints")

// Options configures Build. The zero value is ready to use.
type Options struct {
	// EndLatency selects how latency constraints treat stays truncated by
	// the end of the window. The default, constraints.StrictEnd, follows
	// Definition 2; constraints.LenientEnd follows Algorithm 1 as printed
	// (see DESIGN.md §3).
	EndLatency constraints.EndLatencyMode
}

func (o *Options) endLatency() constraints.EndLatencyMode {
	if o == nil {
		return constraints.StrictEnd
	}
	return o.EndLatency
}

// Build runs Algorithm 1: it constructs the conditioned trajectory graph of
// the l-sequence under the integrity constraints.
//
// The forward phase (lines 5-14 of the paper) grows the graph timestamp by
// timestamp, materializing only successors permitted by Definition 3 and
// labeling edges with the a-priori step probabilities.
//
// The backward phase implements the same revision as the paper's
// loss-propagation queue (lines 15-31) in its closed form: for every node,
// the "survival" S(n) — the fraction of the a-priori probability mass of the
// trajectories compatible with n that is valid, i.e. 1 − n.loss in the
// paper's bookkeeping — satisfies
//
//	S(target) = 1 (0 for targets condemned by strict end-of-window latency)
//	S(n)      = Σ_{(n,m) ∈ E} p_E(n,m) · S(m)
//
// and the conditioned probabilities are p'_E(n,m) = p_E(n,m)·S(m)/S(n) and
// p'_N(src) = p_N(src)·S(src) / Σ p_N·S. The paper's queue evaluates exactly
// this recurrence incrementally; evaluating it level by level visits the
// same nodes and lets us rescale each timestamp's survivals by their
// maximum, which keeps 1−loss well above the float64 underflow threshold on
// hours-long windows (survivals can legitimately shrink geometrically with
// the window length; the conditioned probabilities only ever depend on
// survival ratios within a timestamp, which rescaling preserves).
//
// Build returns ErrNoValidTrajectory when the constraints exclude every
// interpretation of the readings.
func Build(ls *LSequence, ic *constraints.Set, opts *Options) (*Graph, error) {
	if err := ls.Validate(); err != nil {
		return nil, err
	}
	if ic == nil {
		ic = constraints.NewSet()
	}
	duration := ls.Duration()
	b := &builder{ic: ic}
	g := &Graph{byTime: make([][]*Node, duration)}

	// Initialization (lines 1-4): source nodes, one per candidate at τ=0,
	// with p_N set from the a-priori probabilities.
	for _, c := range ls.Steps[0].Candidates {
		n := &Node{Time: 0, Loc: c.Loc, Stay: b.initialStay(c.Loc), prob: c.P}
		g.byTime[0] = append(g.byTime[0], n)
	}

	// Forward phase (lines 5-14).
	for t := 0; t+1 < duration; t++ {
		next := make(map[string]*Node)
		for _, n := range g.byTime[t] {
			for _, c := range ls.Steps[t+1].Candidates {
				succ, ok := b.successor(n, c.Loc)
				if !ok {
					continue
				}
				key := succ.key()
				existing, seen := next[key]
				if !seen {
					existing = succ
					next[key] = succ
					g.byTime[t+1] = append(g.byTime[t+1], succ)
				}
				e := &Edge{From: n, To: existing, P: c.P}
				n.out = append(n.out, e)
				existing.in = append(existing.in, e)
			}
		}
		if len(g.byTime[t+1]) == 0 {
			return nil, fmt.Errorf("%w (dead end at timestamp %d)", ErrNoValidTrajectory, t+1)
		}
	}

	// Backward phase (lines 15-31 in closed form; see above).
	// Target survivals: 1, except targets condemned by strict
	// end-of-window latency semantics (Definition 2).
	strict := opts.endLatency() == constraints.StrictEnd
	for _, n := range g.byTime[duration-1] {
		if strict && n.Stay != StayUntracked {
			n.surv = 0
			n.removed = true
		} else {
			n.surv = 1
		}
	}
	g.detachRemoved(duration - 1)

	for t := duration - 2; t >= 0; t-- {
		maxS := 0.0
		for _, n := range g.byTime[t] {
			// Drop edges into removed nodes, accumulate survival,
			// and store the unconditioned weight on each edge.
			alive := n.out[:0]
			s := 0.0
			for _, e := range n.out {
				if e.To.removed {
					continue
				}
				e.P *= e.To.surv
				s += e.P
				alive = append(alive, e)
			}
			n.out = alive
			n.surv = s
			if s > maxS {
				maxS = s
			}
			if s == 0 {
				n.removed = true // Proposition 1: no successor => invalid
				continue
			}
			// Condition the outgoing edges (lines 17-19): each is
			// divided by the surviving fraction.
			for _, e := range n.out {
				e.P /= s
			}
		}
		if maxS == 0 {
			return nil, ErrNoValidTrajectory
		}
		// Rescale this level's survivals so the recurrence never
		// underflows; conditioned probabilities depend only on
		// within-level ratios, which this preserves.
		for _, n := range g.byTime[t] {
			n.surv /= maxS
		}
		g.detachRemoved(t)
	}

	// Condition the source probabilities (lines 30-31).
	total := 0.0
	for _, src := range g.byTime[0] {
		src.prob *= src.surv
		total += src.prob
	}
	if total <= 0 {
		return nil, ErrNoValidTrajectory
	}
	for _, src := range g.byTime[0] {
		src.prob /= total
	}
	g.compact()
	return g, nil
}

// detachRemoved unlinks the in-edges of removed nodes at timestamp t from
// their predecessors' adjacency lists (lines 26-29 of the paper).
func (g *Graph) detachRemoved(t int) {
	for _, n := range g.byTime[t] {
		if !n.removed {
			continue
		}
		for _, e := range n.in {
			removeOutEdge(e.From, e)
		}
		n.in = nil
		n.out = nil
	}
}

// compact drops removed nodes from the per-timestamp lists.
func (g *Graph) compact() {
	for t := range g.byTime {
		alive := g.byTime[t][:0]
		for _, n := range g.byTime[t] {
			if !n.removed {
				alive = append(alive, n)
			}
		}
		g.byTime[t] = alive
	}
}

// builder holds the constraint set while computing successors.
type builder struct {
	ic *constraints.Set
}

// initialStay returns the stay counter of a node entering loc (or starting
// the window there): 1 when a latency constraint is pending, ⊥ otherwise.
func (b *builder) initialStay(loc int) int {
	if delta, ok := b.ic.Latency(loc); ok && delta > 1 {
		return 1
	}
	return StayUntracked
}

// successor computes the unique successor node of n at location loc per
// Definition 3, or ok=false when no such successor exists (some constraint
// would be violated).
func (b *builder) successor(n *Node, loc int) (*Node, bool) {
	t2 := n.Time + 1
	// Condition 2: direct reachability.
	if b.ic.Unreachable(n.Loc, loc) {
		return nil, false
	}
	if loc == n.Loc {
		// Condition 3: staying increments a pending stay counter.
		stay := n.Stay
		if stay != StayUntracked {
			stay++
			if delta, _ := b.ic.Latency(loc); stay >= delta {
				stay = StayUntracked // constraint satisfied: normalize to ⊥
			}
		}
		return &Node{Time: t2, Loc: loc, Stay: stay, TL: b.expireTL(n.TL, t2, -1)}, true
	}
	// Condition 4: leaving is allowed only once any latency constraint on
	// the current location is satisfied (pending counter normalized away).
	if n.Stay != StayUntracked {
		return nil, false
	}
	// Condition 5 (extended to cover the direct move, see DESIGN.md §3):
	// no TT constraint into loc may still bind, neither from a recently
	// left location in TL nor from the location being left right now.
	if nu, ok := b.ic.TT(n.Loc, loc); ok && t2-n.Time < nu {
		return nil, false
	}
	for _, e := range n.TL {
		if nu, ok := b.ic.TT(e.Loc, loc); ok && t2-e.Time < nu {
			return nil, false
		}
	}
	// Condition 6: extend TL with the location being left (when it is the
	// source of some TT constraint), expire stale entries, and drop any
	// entry for the location being entered.
	tl := b.expireTL(n.TL, t2, loc)
	if b.ic.HasTTFrom(n.Loc) && t2-n.Time < b.ic.MaxTravelingTime(n.Loc) {
		tl = append(tl, TLEntry{Time: n.Time, Loc: n.Loc})
		sortTL(tl)
	}
	return &Node{Time: t2, Loc: loc, Stay: b.initialStay(loc), TL: tl}, true
}

// expireTL copies the entries of tl that can still influence a TT check at
// time t2, skipping any entry for location drop (-1 to keep all locations).
func (b *builder) expireTL(tl []TLEntry, t2 int, drop int) []TLEntry {
	var out []TLEntry
	for _, e := range tl {
		if e.Loc == drop {
			continue
		}
		if t2-e.Time >= b.ic.MaxTravelingTime(e.Loc) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// removeOutEdge removes e from pred's outgoing edge list.
func removeOutEdge(pred *Node, e *Edge) {
	for i, cand := range pred.out {
		if cand == e {
			pred.out[i] = pred.out[len(pred.out)-1]
			pred.out = pred.out[:len(pred.out)-1]
			return
		}
	}
}
