package core

import (
	"bytes"
	"errors"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/constraints"
	"repro/internal/stats"
)

// TestFilterMatchesGraphAtEveryPrefix: the filtered distribution after t+1
// observations equals the final-timestamp marginal of a ct-graph built on
// the first t+1 steps (lenient semantics), for random scenarios.
func TestFilterMatchesGraphAtEveryPrefix(t *testing.T) {
	rng := stats.NewRNG(555)
	for trial := 0; trial < 200; trial++ {
		ls, ic := randomScenario(rng)
		numLoc := ls.NumLocations()
		f := NewFilter(ic, nil)
		dead := false
		for step := 0; step < ls.Duration(); step++ {
			err := f.Observe(ls.Steps[step].Candidates)
			prefix := &LSequence{Steps: ls.Steps[:step+1]}
			g, gErr := Build(prefix, ic, &Options{EndLatency: constraints.LenientEnd})
			if errors.Is(gErr, ErrNoValidTrajectory) {
				if !errors.Is(err, ErrNoValidTrajectory) {
					t.Fatalf("trial %d step %d: graph dead but filter alive", trial, step)
				}
				dead = true
				break
			}
			if gErr != nil {
				t.Fatal(gErr)
			}
			if err != nil {
				t.Fatalf("trial %d step %d: filter died but graph alive: %v", trial, step, err)
			}
			got, err := f.Current(numLoc)
			if err != nil {
				t.Fatal(err)
			}
			marg, err := g.Marginals(numLoc)
			if err != nil {
				t.Fatal(err)
			}
			want := marg[step]
			for loc := range want {
				if math.Abs(got[loc]-want[loc]) > 1e-9 {
					t.Fatalf("trial %d step %d loc %d: filter %v, graph %v",
						trial, step, loc, got[loc], want[loc])
				}
			}
			if f.Time() != step {
				t.Fatalf("Time() = %d, want %d", f.Time(), step)
			}
		}
		if dead {
			continue
		}
	}
}

func TestFilterMostLikelyAndErrors(t *testing.T) {
	f := NewFilter(nil, nil)
	if _, err := f.Current(2); err == nil {
		t.Errorf("Current before Observe accepted")
	}
	if _, _, err := f.MostLikely(); err == nil {
		t.Errorf("MostLikely before Observe accepted")
	}
	if err := f.Observe(nil); err == nil {
		t.Errorf("empty candidates accepted")
	}
	if err := f.Observe([]Candidate{{Loc: -1, P: 1}}); err == nil {
		t.Errorf("bad candidate accepted")
	}
	if err := f.Observe([]Candidate{{Loc: 0, P: 0.3}, {Loc: 1, P: 0.7}}); err != nil {
		t.Fatal(err)
	}
	loc, p, err := f.MostLikely()
	if err != nil || loc != 1 || math.Abs(p-0.7) > 1e-12 {
		t.Errorf("MostLikely = %d %v %v", loc, p, err)
	}
	if f.FrontierSize() != 2 {
		t.Errorf("FrontierSize = %d", f.FrontierSize())
	}
}

func TestFilterDeadEnd(t *testing.T) {
	ic := constraints.NewSet()
	ic.AddDU(0, 1)
	f := NewFilter(ic, nil)
	if err := f.Observe([]Candidate{{Loc: 0, P: 1}}); err != nil {
		t.Fatal(err)
	}
	err := f.Observe([]Candidate{{Loc: 1, P: 1}})
	if !errors.Is(err, ErrNoValidTrajectory) {
		t.Errorf("err = %v", err)
	}
}

func TestFilterBeam(t *testing.T) {
	// Beam 1 keeps only the best node; the distribution stays normalized.
	f := NewFilter(nil, &FilterOptions{Beam: 1})
	if err := f.Observe([]Candidate{{Loc: 0, P: 0.4}, {Loc: 1, P: 0.6}}); err != nil {
		t.Fatal(err)
	}
	if f.FrontierSize() != 1 {
		t.Fatalf("beam not applied: %d", f.FrontierSize())
	}
	dist, err := f.Current(2)
	if err != nil {
		t.Fatal(err)
	}
	if dist[1] != 1 || dist[0] != 0 {
		t.Errorf("beam-1 dist = %v", dist)
	}
}

func TestTopKAgainstEnumeration(t *testing.T) {
	rng := stats.NewRNG(808)
	for trial := 0; trial < 200; trial++ {
		ls, ic := randomScenario(rng)
		g, err := Build(ls, ic, nil)
		if errors.Is(err, ErrNoValidTrajectory) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		dist, err := g.ConditionedDistribution(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		var want []float64
		for _, p := range dist {
			want = append(want, p)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))

		k := rng.IntRange(1, 5)
		trajs, probs := g.TopK(k)
		if len(trajs) != len(probs) {
			t.Fatalf("trial %d: mismatched lengths", trial)
		}
		if len(trajs) > k {
			t.Fatalf("trial %d: more than k results", trial)
		}
		wantLen := k
		if len(want) < k {
			wantLen = len(want)
		}
		if len(trajs) != wantLen {
			t.Fatalf("trial %d: got %d trajectories, want %d", trial, len(trajs), wantLen)
		}
		seen := map[string]bool{}
		for i := range trajs {
			if i > 0 && probs[i] > probs[i-1]+1e-12 {
				t.Fatalf("trial %d: probabilities not descending", trial)
			}
			if math.Abs(probs[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: probs[%d] = %v, want %v", trial, i, probs[i], want[i])
			}
			key := TrajectoryKey(trajs[i])
			if seen[key] {
				t.Fatalf("trial %d: duplicate trajectory %s", trial, key)
			}
			seen[key] = true
			if math.Abs(dist[key]-probs[i]) > 1e-9 {
				t.Fatalf("trial %d: trajectory %s has prob %v, claimed %v",
					trial, key, dist[key], probs[i])
			}
		}
		// Top-1 agrees with Viterbi.
		_, vp := g.MostProbable()
		if math.Abs(probs[0]-vp) > 1e-9 {
			t.Fatalf("trial %d: TopK(1) %v != Viterbi %v", trial, probs[0], vp)
		}
	}
}

func TestTopKDegenerate(t *testing.T) {
	g := mustBuild(t, FromDistributions([][]float64{{1}}))
	if tr, _ := g.TopK(0); tr != nil {
		t.Errorf("TopK(0) returned results")
	}
	tr, p := g.TopK(5)
	if len(tr) != 1 || p[0] != 1 {
		t.Errorf("TopK(5) on singleton = %v %v", tr, p)
	}
}

func mustBuild(t *testing.T, ls *LSequence) *Graph {
	t.Helper()
	g, err := Build(ls, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := stats.NewRNG(606)
	for trial := 0; trial < 100; trial++ {
		ls, ic := randomScenario(rng)
		g, err := Build(ls, ic, nil)
		if errors.Is(err, ErrNoValidTrajectory) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.Duration() != g.Duration() {
			t.Fatalf("duration changed")
		}
		want, err := g.ConditionedDistribution(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.ConditionedDistribution(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: distribution size changed", trial)
		}
		for k, p := range want {
			if math.Abs(got[k]-p) > 1e-9 {
				t.Fatalf("trial %d: P(%s) changed: %v vs %v", trial, k, got[k], p)
			}
		}
		a, b := g.Stats(), back.Stats()
		if a.Nodes != b.Nodes || a.Edges != b.Edges {
			t.Fatalf("stats changed: %+v vs %+v", a, b)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "{",
		"bad version":   `{"version":99,"duration":1,"nodes":[{"time":0,"loc":0,"prob":1}],"edges":[]}`,
		"zero duration": `{"version":1,"duration":0,"nodes":[],"edges":[]}`,
		"bad node time": `{"version":1,"duration":1,"nodes":[{"time":5,"loc":0,"prob":1}],"edges":[]}`,
		"bad edge ref":  `{"version":1,"duration":1,"nodes":[{"time":0,"loc":0,"prob":1}],"edges":[{"from":0,"to":9,"p":1}]}`,
		"non-consecutive edge": `{"version":1,"duration":2,` +
			`"nodes":[{"time":0,"loc":0,"prob":1},{"time":0,"loc":1},{"time":1,"loc":0}],` +
			`"edges":[{"from":0,"to":1,"p":1}]}`,
		"violates invariants": `{"version":1,"duration":2,` +
			`"nodes":[{"time":0,"loc":0,"prob":1},{"time":1,"loc":0}],"edges":[]}`,
	}
	for name, body := range cases {
		if _, err := Decode(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
