package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// The serialized ct-graph format. Cleaning is often done once and queried
// many times (the paper's §5 remark casts ct-graphs as Markovian streams to
// be warehoused); Encode/Decode let a cleaned graph be stored and reloaded
// without re-running Algorithm 1.
type graphJSON struct {
	Version  int        `json:"version"`
	Duration int        `json:"duration"`
	Nodes    []nodeJSON `json:"nodes"`
	Edges    []edgeJSON `json:"edges"`
}

type nodeJSON struct {
	Time int       `json:"time"`
	Loc  int       `json:"loc"`
	Stay int       `json:"stay,omitempty"`
	TL   []TLEntry `json:"tl,omitempty"`
	Prob float64   `json:"prob,omitempty"` // p_N for source nodes
}

type edgeJSON struct {
	From int     `json:"from"` // index into Nodes
	To   int     `json:"to"`
	P    float64 `json:"p"`
}

const graphFormatVersion = 1

// Encode writes the graph as JSON.
func (g *Graph) Encode(w io.Writer) error {
	out := graphJSON{Version: graphFormatVersion, Duration: g.Duration()}
	// Nodes are serialized level by level in index order, so a node's global
	// position is its level offset plus its dense per-level index.
	offsets := make([]int, g.Duration())
	for t := 0; t < g.Duration(); t++ {
		if t > 0 {
			offsets[t] = offsets[t-1] + len(g.byTime[t-1])
		}
		for _, n := range g.byTime[t] {
			out.Nodes = append(out.Nodes, nodeJSON{
				Time: n.Time, Loc: n.Loc, Stay: n.Stay, TL: n.TL, Prob: n.prob,
			})
		}
	}
	for t := 0; t < g.Duration(); t++ {
		for _, n := range g.byTime[t] {
			for _, e := range n.out {
				out.Edges = append(out.Edges, edgeJSON{
					From: offsets[t] + int(e.From.idx), To: offsets[t+1] + int(e.To.idx), P: e.P,
				})
			}
		}
	}
	return json.NewEncoder(w).Encode(&out)
}

// Decode reads a graph written by Encode and rebuilds its adjacency.
func Decode(r io.Reader) (*Graph, error) {
	var in graphJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding ct-graph: %w", err)
	}
	if in.Version != graphFormatVersion {
		return nil, fmt.Errorf("core: unsupported ct-graph format version %d", in.Version)
	}
	if in.Duration <= 0 {
		return nil, fmt.Errorf("core: decoded graph has duration %d", in.Duration)
	}
	g := &Graph{byTime: make([][]*Node, in.Duration)}
	nodes := make([]*Node, len(in.Nodes))
	for i, nj := range in.Nodes {
		if nj.Time < 0 || nj.Time >= in.Duration {
			return nil, fmt.Errorf("core: node %d has timestamp %d outside [0, %d)", i, nj.Time, in.Duration)
		}
		n := &Node{Time: nj.Time, Loc: nj.Loc, Stay: nj.Stay, TL: nj.TL, prob: nj.Prob}
		n.idx = int32(len(g.byTime[nj.Time]))
		nodes[i] = n
		g.byTime[nj.Time] = append(g.byTime[nj.Time], n)
	}
	for i, ej := range in.Edges {
		if ej.From < 0 || ej.From >= len(nodes) || ej.To < 0 || ej.To >= len(nodes) {
			return nil, fmt.Errorf("core: edge %d references unknown node", i)
		}
		from, to := nodes[ej.From], nodes[ej.To]
		if to.Time != from.Time+1 {
			return nil, fmt.Errorf("core: edge %d does not connect consecutive timestamps", i)
		}
		e := &Edge{From: from, To: to, P: ej.P}
		from.out = append(from.out, e)
		to.in = append(to.in, e)
	}
	if err := g.CheckInvariants(1e-6); err != nil {
		return nil, fmt.Errorf("core: decoded graph is not well-formed: %w", err)
	}
	return g, nil
}
