package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/constraints"
	"repro/internal/stats"
)

// longScenario returns a duration-step stream over 3 locations with LT and
// TT constraints, so frontier nodes carry stay counters and TL entries and
// the filter's interner accumulates timestamped state.
func longScenario(duration int) ([][]Candidate, *constraints.Set) {
	ic := constraints.NewSet()
	ic.AddLT(0, 2)
	ic.AddLT(1, 3)
	if err := ic.AddTT(0, 2, 2); err != nil {
		panic(err)
	}
	if err := ic.AddTT(2, 0, 2); err != nil {
		panic(err)
	}
	steps := make([][]Candidate, duration)
	for t := range steps {
		switch t % 3 {
		case 0:
			steps[t] = []Candidate{{Loc: 0, P: 0.6}, {Loc: 1, P: 0.4}}
		case 1:
			steps[t] = []Candidate{{Loc: 0, P: 0.3}, {Loc: 1, P: 0.5}, {Loc: 2, P: 0.2}}
		default:
			steps[t] = []Candidate{{Loc: 1, P: 0.5}, {Loc: 2, P: 0.5}}
		}
	}
	return steps, ic
}

// TestFilterInternerRebuild drives a filter with a tiny interner cap through
// a long stream and checks that (a) the rebuild path actually fires and (b)
// the filtered distribution is bit-for-bit unaffected: interned IDs are only
// compared within one Observe call, so discarding the interner must be
// invisible to the results.
func TestFilterInternerRebuild(t *testing.T) {
	const duration = 300
	steps, ic := longScenario(duration)

	small := NewFilter(ic, nil)
	small.internCap = 4
	control := NewFilter(ic, nil)

	for step, cands := range steps {
		if err := small.Observe(cands); err != nil {
			t.Fatalf("step %d: small-cap filter died: %v", step, err)
		}
		if err := control.Observe(cands); err != nil {
			t.Fatalf("step %d: control filter died: %v", step, err)
		}
		got, err := small.Current(3)
		if err != nil {
			t.Fatal(err)
		}
		want, err := control.Current(3)
		if err != nil {
			t.Fatal(err)
		}
		for loc := range want {
			if got[loc] != want[loc] {
				t.Fatalf("step %d loc %d: small-cap %v, control %v", step, loc, got[loc], want[loc])
			}
		}
	}
	if small.InternerRebuilds() == 0 {
		t.Fatal("interner cap 4 never triggered a rebuild over a 300-step stream")
	}
	if control.InternerRebuilds() != 0 {
		t.Fatalf("control filter rebuilt %d times; default cap should not trip here",
			control.InternerRebuilds())
	}
	// The rebuild must actually bound the interner.
	if got := small.b.tl.size(); got > 4+len(steps[0])*3 {
		t.Fatalf("interner still holds %d links after rebuilds", got)
	}
}

// TestFilterInternerRebuildMatchesGraph: with rebuilds firing constantly,
// the filter still equals the LenientEnd ct-graph's final-timestamp marginal.
func TestFilterInternerRebuildMatchesGraph(t *testing.T) {
	const duration = 60
	steps, ic := longScenario(duration)
	f := NewFilter(ic, nil)
	f.internCap = 1 // rebuild before (almost) every step
	dists := make([][]float64, duration)
	for step, cands := range steps {
		if err := f.Observe(cands); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		row := make([]float64, 3)
		for _, c := range cands {
			row[c.Loc] = c.P
		}
		dists[step] = row
	}
	if f.InternerRebuilds() < 5 {
		t.Fatalf("expected frequent rebuilds with cap 1, got %d", f.InternerRebuilds())
	}
	g, err := Build(FromDistributions(dists), ic, &Options{EndLatency: constraints.LenientEnd})
	if err != nil {
		t.Fatal(err)
	}
	marg, err := g.Marginals(3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Current(3)
	if err != nil {
		t.Fatal(err)
	}
	for loc := range got {
		if math.Abs(got[loc]-marg[duration-1][loc]) > 1e-9 {
			t.Fatalf("loc %d: filter %v, graph %v", loc, got[loc], marg[duration-1][loc])
		}
	}
}

// entryKey identifies a frontier node across two filters fed identical
// observations.
func entryKey(e *filterEntry) string {
	return fmt.Sprintf("%d|%d|%v", e.node.Loc, e.node.Stay, e.node.TL)
}

// TestFilterBeamTruncationKeepsTopAlphas runs an exact filter and a beamed
// one side by side. Until the first truncation the frontiers are identical;
// at the first step where the exact frontier exceeds the beam, the beamed
// filter must have kept exactly the highest-probability nodes, renormalized.
func TestFilterBeamTruncationKeepsTopAlphas(t *testing.T) {
	const beamWidth = 3
	rng := stats.NewRNG(4242)
	truncationsSeen := 0
	for trial := 0; trial < 300; trial++ {
		ls, ic := randomScenario(rng)
		exact := NewFilter(ic, nil)
		beamed := NewFilter(ic, &FilterOptions{Beam: beamWidth})
		if beamed.Beam() != beamWidth {
			t.Fatalf("Beam() = %d, want %d", beamed.Beam(), beamWidth)
		}
		for step := 0; step < ls.Duration(); step++ {
			cands := ls.Steps[step].Candidates
			errE := exact.Observe(cands)
			errB := beamed.Observe(cands)
			if errE != nil {
				// Exact died; the beamed filter (a subset) must die too.
				if errB == nil {
					t.Fatalf("trial %d step %d: exact dead but beam alive", trial, step)
				}
				break
			}
			if errB != nil {
				// The beam may die where exact survives, never vice versa
				// in some other error mode.
				if !errors.Is(errB, ErrNoValidTrajectory) {
					t.Fatalf("trial %d step %d: beam error %v", trial, step, errB)
				}
				break
			}
			if beamed.FrontierSize() > beamWidth {
				t.Fatalf("trial %d step %d: beam frontier %d > %d",
					trial, step, beamed.FrontierSize(), beamWidth)
			}
			total := 0.0
			for _, e := range beamed.frontier {
				total += e.alpha
			}
			if math.Abs(total-1) > 1e-9 {
				t.Fatalf("trial %d step %d: beam frontier mass %v, want 1", trial, step, total)
			}
			if exact.FrontierSize() <= beamWidth {
				// No truncation yet: frontiers must agree exactly.
				if beamed.FrontierSize() != exact.FrontierSize() {
					t.Fatalf("trial %d step %d: no truncation expected but frontiers differ (%d vs %d)",
						trial, step, beamed.FrontierSize(), exact.FrontierSize())
				}
				continue
			}
			// First truncation: the kept nodes must be the top-beamWidth of
			// the exact frontier by probability mass, renormalized.
			truncationsSeen++
			ex := append([]*filterEntry(nil), exact.frontier...)
			sort.Slice(ex, func(i, j int) bool { return ex[i].alpha > ex[j].alpha })
			cut := ex[beamWidth-1].alpha
			topMass := 0.0
			top := make(map[string]float64, beamWidth)
			for _, e := range ex[:beamWidth] {
				top[entryKey(e)] = e.alpha
				topMass += e.alpha
			}
			for _, e := range beamed.frontier {
				want, ok := top[entryKey(e)]
				if !ok {
					// Ties at the cut line make the chosen set ambiguous;
					// accept any node with the cut probability.
					if idx := sort.Search(len(ex), func(i int) bool { return ex[i].alpha <= cut }); idx < len(ex) && math.Abs(ex[idx].alpha-cut) < 1e-12 {
						continue
					}
					t.Fatalf("trial %d step %d: beam kept %s, not in exact top-%d",
						trial, step, entryKey(e), beamWidth)
				}
				if math.Abs(e.alpha-want/topMass) > 1e-9 {
					t.Fatalf("trial %d step %d: node %s renormalized to %v, want %v",
						trial, step, entryKey(e), e.alpha, want/topMass)
				}
			}
			break // filters have diverged; later steps are not comparable
		}
	}
	if truncationsSeen == 0 {
		t.Fatal("no trial ever exercised beam truncation; scenario generator too tame")
	}
}

// TestFilterDistributionAndTopLocations checks the aggregated accessors
// against Current and each other.
func TestFilterDistributionAndTopLocations(t *testing.T) {
	f := NewFilter(nil, nil)
	if _, err := f.Distribution(); err == nil {
		t.Error("Distribution before Observe accepted")
	}
	if _, err := f.TopLocations(1); err == nil {
		t.Error("TopLocations before Observe accepted")
	}
	if err := f.Observe([]Candidate{{Loc: 0, P: 0.2}, {Loc: 1, P: 0.5}, {Loc: 2, P: 0.3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.TopLocations(0); err == nil {
		t.Error("TopLocations(0) accepted")
	}
	dist, err := f.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	cur, err := f.Current(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 3 {
		t.Fatalf("Distribution has %d entries, want 3", len(dist))
	}
	for i := 1; i < len(dist); i++ {
		if dist[i-1].P < dist[i].P {
			t.Fatalf("Distribution not sorted: %v", dist)
		}
	}
	for _, lp := range dist {
		if math.Abs(lp.P-cur[lp.Loc]) > 1e-12 {
			t.Fatalf("Distribution loc %d = %v, Current %v", lp.Loc, lp.P, cur[lp.Loc])
		}
	}
	top, err := f.TopLocations(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0] != dist[0] || top[1] != dist[1] {
		t.Fatalf("TopLocations(2) = %v, Distribution = %v", top, dist)
	}
	// k larger than the support returns everything.
	all, err := f.TopLocations(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(dist) {
		t.Fatalf("TopLocations(10) has %d entries, want %d", len(all), len(dist))
	}
}

// TestFilterBeamTieBreakDeterministic pins the beam-prune tie-break: when
// entries with equal probability straddle the beam boundary, the kept set is
// decided by node identity (location, stay, TL), not by the unstable sort's
// arbitrary order — so repeated runs over the same readings keep bit-identical
// frontiers. The candidate order deliberately differs from identity order to
// catch an insertion-order-dependent truncation.
func TestFilterBeamTieBreakDeterministic(t *testing.T) {
	uniform := []Candidate{{Loc: 3, P: 0.25}, {Loc: 1, P: 0.25}, {Loc: 2, P: 0.25}, {Loc: 0, P: 0.25}}
	run := func() []LocProb {
		f := NewFilter(constraints.NewSet(), &FilterOptions{Beam: 2})
		for step := 0; step < 5; step++ {
			if err := f.Observe(uniform); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		dist, err := f.Distribution()
		if err != nil {
			t.Fatal(err)
		}
		return dist
	}
	first := run()
	if len(first) != 2 {
		t.Fatalf("beam 2 kept %d locations", len(first))
	}
	// All four frontier entries tie at every step; identity order must keep
	// locations 0 and 1.
	kept := []int{first[0].Loc, first[1].Loc}
	sort.Ints(kept)
	if kept[0] != 0 || kept[1] != 1 {
		t.Fatalf("tie-break kept locations %v, want [0 1]", kept)
	}
	for trial := 0; trial < 10; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("trial %d: frontier size changed: %d vs %d", trial, len(again), len(first))
		}
		for i := range first {
			if again[i].Loc != first[i].Loc || math.Float64bits(again[i].P) != math.Float64bits(first[i].P) {
				t.Fatalf("trial %d entry %d: %+v vs %+v", trial, i, again[i], first[i])
			}
		}
	}
}

// TestFilterRejectsDuplicateCandidates pins the duplicate-location check: a
// candidate set naming the same location twice used to double-accumulate
// that location's forward mass silently.
func TestFilterRejectsDuplicateCandidates(t *testing.T) {
	dup := []Candidate{{Loc: 0, P: 0.5}, {Loc: 1, P: 0.25}, {Loc: 0, P: 0.25}}
	f := NewFilter(constraints.NewSet(), nil)
	if err := f.Observe(dup); err == nil {
		t.Fatal("initial observation accepted duplicate locations")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("error does not name the duplicate: %v", err)
	}
	f = NewFilter(constraints.NewSet(), nil)
	if err := f.Observe([]Candidate{{Loc: 0, P: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Observe(dup); err == nil {
		t.Fatal("later observation accepted duplicate locations")
	}
	// The failed observation must not have advanced the filter.
	if f.Time() != 0 {
		t.Fatalf("rejected observation advanced time to %d", f.Time())
	}
}
