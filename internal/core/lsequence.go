// Package core implements the paper's primary contribution: the conditioned
// trajectory graph (ct-graph) and the cleaning algorithm that builds it
// (Algorithm 1).
//
// The input is a probabilistic location sequence (l-sequence, §2): for each
// timestamp of the monitoring window, the candidate locations of the object
// together with their a-priori probabilities implied by p*(l|R). The output
// is a compact DAG whose source-to-target paths are exactly the trajectories
// valid under a set of integrity constraints, with probabilities revised by
// conditioning: the probability of a path (product of its source-node
// probability and its edge probabilities) equals the a-priori probability of
// the corresponding trajectory divided by the total a-priori probability of
// all valid trajectories (§3.1, §4, §5).
//
// The package also provides the naive baseline the introduction argues is
// infeasible — explicit enumeration of all trajectories followed by exact
// conditioning — which doubles as the correctness oracle for the ct-graph in
// the test suite, plus the downstream primitives the paper discusses:
// per-timestamp marginals, most-probable-trajectory extraction, and weighted
// sampling of valid trajectories (a §7 future-work item).
package core

import (
	"fmt"
	"math"
)

// Candidate is one possible location of the object at a timestamp, with its
// a-priori probability f(X_θ = l) = p*(l | θ[readers]).
type Candidate struct {
	Loc int     // location ID
	P   float64 // a-priori probability, > 0
}

// Step holds the candidate locations for one timestamp. Candidates carry
// only non-zero probabilities and sum to 1 (§2: Λ contains only pairs with
// non-zero probability).
type Step struct {
	Candidates []Candidate
}

// LSequence is the l-sequence Γ = (Λ, ρ) of §2: Steps[τ] lists the
// candidate (location, probability) pairs for timestamp τ.
type LSequence struct {
	Steps []Step
}

// FromDistributions builds an l-sequence from per-timestamp location
// distributions: dists[τ][l] is the probability that the object is at
// location l at time τ. Zero entries are dropped.
func FromDistributions(dists [][]float64) *LSequence {
	ls := &LSequence{Steps: make([]Step, len(dists))}
	for t, dist := range dists {
		for loc, p := range dist {
			if p > 0 {
				ls.Steps[t].Candidates = append(ls.Steps[t].Candidates, Candidate{Loc: loc, P: p})
			}
		}
	}
	return ls
}

// Duration returns the number of timestamps covered by the l-sequence.
func (ls *LSequence) Duration() int { return len(ls.Steps) }

// NumLocations returns one more than the largest location ID mentioned.
func (ls *LSequence) NumLocations() int {
	max := -1
	for _, s := range ls.Steps {
		for _, c := range s.Candidates {
			if c.Loc > max {
				max = c.Loc
			}
		}
	}
	return max + 1
}

// Validate checks structural sanity: at least one timestamp, at least one
// candidate per timestamp, positive probabilities summing to 1 (within tol),
// and no duplicate locations within a step.
func (ls *LSequence) Validate() error {
	if ls == nil || len(ls.Steps) == 0 {
		return fmt.Errorf("core: empty l-sequence")
	}
	for t, s := range ls.Steps {
		if len(s.Candidates) == 0 {
			return fmt.Errorf("core: timestamp %d has no candidate locations", t)
		}
		sum := 0.0
		seen := make(map[int]bool, len(s.Candidates))
		for _, c := range s.Candidates {
			if c.P <= 0 {
				return fmt.Errorf("core: timestamp %d has non-positive probability %g for location %d", t, c.P, c.Loc)
			}
			if c.Loc < 0 {
				return fmt.Errorf("core: timestamp %d has negative location ID %d", t, c.Loc)
			}
			if seen[c.Loc] {
				return fmt.Errorf("core: timestamp %d lists location %d twice", t, c.Loc)
			}
			seen[c.Loc] = true
			sum += c.P
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("core: timestamp %d probabilities sum to %g, want 1", t, sum)
		}
	}
	return nil
}

// NumTrajectories returns the number of trajectories over the l-sequence
// (the product of the per-step candidate counts, §2) as a float64, which may
// be +Inf for long sequences — that blow-up is the reason the ct-graph
// exists.
func (ls *LSequence) NumTrajectories() float64 {
	n := 1.0
	for _, s := range ls.Steps {
		n *= float64(len(s.Candidates))
	}
	return n
}

// PriorProbability returns the a-priori probability p*(t) of the trajectory
// given as one location per timestamp: the product of the per-step candidate
// probabilities (independence assumption, §2). It returns 0 when a step's
// location is not among that step's candidates.
func (ls *LSequence) PriorProbability(locs []int) float64 {
	if len(locs) != len(ls.Steps) {
		return 0
	}
	p := 1.0
	for t, loc := range locs {
		var stepP float64
		for _, c := range ls.Steps[t].Candidates {
			if c.Loc == loc {
				stepP = c.P
				break
			}
		}
		if stepP == 0 {
			return 0
		}
		p *= stepP
	}
	return p
}
