package core

// pruneReason classifies why successorKey rejected a (node, candidate) pair:
// which integrity-constraint family ruled the successor out. pruneNone marks
// an accepted pair; keeping it at index 0 lets Build count rejections with an
// unconditional prunes[reason]++ on every pair.
type pruneReason uint8

const (
	pruneNone pruneReason = iota
	pruneDU               // direct-unreachability (Condition 2)
	pruneLT               // latency: left before the minimum stay (Condition 4)
	pruneTT               // traveling time still binding (Condition 5)
	numPruneReasons
)

// ExplainStep reports, for one timestamp of the l-sequence, how the candidate
// interpretations fared through the build.
type ExplainStep struct {
	// Candidates is the number of candidate locations the l-sequence offers
	// at this timestamp.
	Candidates int `json:"candidates"`
	// Considered is the number of (node, candidate) successor pairs the
	// forward phase examined entering this timestamp (zero at τ=0, where
	// nodes come straight from the candidates).
	Considered int `json:"considered"`
	// Accepted is how many of those pairs satisfied Definition 3 and became
	// edges; Considered − Accepted pairs were pruned by some constraint.
	Accepted int `json:"accepted"`
	// NodesBuilt is the number of distinct nodes the forward phase
	// materialized at this timestamp (accepted pairs deduplicate onto them).
	NodesBuilt int `json:"nodesBuilt"`
	// NodesFinal is the number of nodes still standing after the backward
	// phase, orphan scrubbing, and compaction.
	NodesFinal int `json:"nodesFinal"`
}

// BuildExplain is a cleaning explain report: where Algorithm 1 spent its time
// and where candidate interpretations were discarded. Attach one to
// Options.Explain and Build fills it in. The counters satisfy
//
//	Σ_t (Steps[t].Considered − Steps[t].Accepted) = PrunedDU + PrunedLT + PrunedTT
//
// so per-constraint prune counts sum consistently with the ct-graph's
// candidate counts.
type BuildExplain struct {
	// Wall time per phase, in nanoseconds.
	CompileNanos  int64 `json:"compileNanos"`
	ForwardNanos  int64 `json:"forwardNanos"`
	BackwardNanos int64 `json:"backwardNanos"`
	ReviseNanos   int64 `json:"reviseNanos"`

	// Steps has one entry per timestamp of the window.
	Steps []ExplainStep `json:"steps"`

	// Successor pairs pruned in the forward phase, by constraint family.
	PrunedDU int64 `json:"prunedDU"`
	PrunedLT int64 `json:"prunedLT"`
	PrunedTT int64 `json:"prunedTT"`

	// TargetsCondemned counts final-timestamp nodes zeroed by strict
	// end-of-window latency semantics (Definition 2).
	TargetsCondemned int `json:"targetsCondemned"`
	// BackwardRemoved counts nodes removed by the backward phase because no
	// valid trajectory passes through them (survival hit zero).
	BackwardRemoved int `json:"backwardRemoved"`
	// GhostsRemoved counts unreachable nodes swept by the orphan scrub.
	GhostsRemoved int `json:"ghostsRemoved"`

	// Normalizer is the total valid a-priori source mass the conditioning
	// divided by (the probability of the conditioning event, up to the
	// backward phase's underflow-guard rescaling).
	Normalizer float64 `json:"normalizer"`

	// ReusedLevels and RecomputedLevels split the window by how the
	// backward/revise work was obtained: an incremental smooth
	// (BuildState.Smooth) reuses the prefix below its convergence boundary
	// from the previous pass and reconditions only the suffix. A full Build
	// reports 0 reused and the whole window recomputed.
	ReusedLevels     int `json:"reusedLevels,omitempty"`
	RecomputedLevels int `json:"recomputedLevels"`
}

// reset clears a report so Build can fill it from scratch.
func (ex *BuildExplain) reset(duration int) {
	*ex = BuildExplain{Steps: resize(ex.Steps, duration)}
	for i := range ex.Steps {
		ex.Steps[i] = ExplainStep{}
	}
}

// PrunedTotal returns the total number of successor pairs pruned by
// integrity constraints in the forward phase.
func (ex *BuildExplain) PrunedTotal() int64 {
	return ex.PrunedDU + ex.PrunedLT + ex.PrunedTT
}
