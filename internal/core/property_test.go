package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/constraints"
	"repro/internal/stats"
)

// randomScenario draws a small random l-sequence and constraint set.
func randomScenario(rng *stats.RNG) (*LSequence, *constraints.Set) {
	numLocs := rng.IntRange(2, 4)
	duration := rng.IntRange(1, 6)
	dists := make([][]float64, duration)
	for t := range dists {
		row := make([]float64, numLocs)
		// Pick 1..numLocs candidates with random weights.
		k := rng.IntRange(1, numLocs)
		perm := make([]int, numLocs)
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(numLocs, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		total := 0.0
		for i := 0; i < k; i++ {
			w := rng.Range(0.1, 1)
			row[perm[i]] = w
			total += w
		}
		for i := range row {
			row[i] /= total
		}
		dists[t] = row
	}
	ls := FromDistributions(dists)

	ic := constraints.NewSet()
	// Random DU constraints.
	for i := 0; i < numLocs; i++ {
		for j := 0; j < numLocs; j++ {
			if i != j && rng.Bernoulli(0.2) {
				ic.AddDU(i, j)
			}
		}
	}
	// Random LT constraints.
	for i := 0; i < numLocs; i++ {
		if rng.Bernoulli(0.3) {
			ic.AddLT(i, rng.IntRange(2, 3))
		}
	}
	// Random TT constraints.
	for i := 0; i < numLocs; i++ {
		for j := 0; j < numLocs; j++ {
			if i != j && rng.Bernoulli(0.2) {
				if err := ic.AddTT(i, j, rng.IntRange(2, 4)); err != nil {
					panic(err)
				}
			}
		}
	}
	return ls, ic
}

// TestPropertyGraphMatchesOracle is the core equivalence property: for random
// scenarios, under both end-latency modes, the ct-graph's path distribution
// equals the brute-force conditioned distribution, and both report
// inconsistency on the same inputs.
func TestPropertyGraphMatchesOracle(t *testing.T) {
	rng := stats.NewRNG(20140324) // EDBT 2014 :)
	const trials = 1500
	validScenarios := 0
	for trial := 0; trial < trials; trial++ {
		ls, ic := randomScenario(rng)
		for _, mode := range []constraints.EndLatencyMode{constraints.StrictEnd, constraints.LenientEnd} {
			oracle, oErr := EnumerateConditioned(ls, ic, mode, 1<<20)
			g, gErr := Build(ls, ic, &Options{EndLatency: mode})
			if oErr != nil {
				if !errors.Is(oErr, ErrNoValidTrajectory) {
					t.Fatalf("trial %d: oracle error %v", trial, oErr)
				}
				if !errors.Is(gErr, ErrNoValidTrajectory) {
					t.Fatalf("trial %d (%v): oracle says inconsistent, Build says %v", trial, mode, gErr)
				}
				continue
			}
			if gErr != nil {
				t.Fatalf("trial %d (%v): oracle found %d valid trajectories but Build failed: %v",
					trial, mode, len(oracle.Trajectories), gErr)
			}
			validScenarios++
			if err := g.CheckInvariants(1e-9); err != nil {
				t.Fatalf("trial %d (%v): invariants: %v", trial, mode, err)
			}
			got, err := g.ConditionedDistribution(1 << 20)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			want := oracle.Distribution()
			if len(got) != len(want) {
				t.Fatalf("trial %d (%v): graph has %d trajectories, oracle %d\ngraph: %v\noracle: %v",
					trial, mode, len(got), len(want), got, want)
			}
			for k, p := range want {
				if math.Abs(got[k]-p) > 1e-9 {
					t.Fatalf("trial %d (%v): P(%s) = %v, oracle %v", trial, mode, k, got[k], p)
				}
			}
		}
	}
	if validScenarios < trials/4 {
		t.Errorf("only %d/%d scenario-modes were consistent; generator too aggressive", validScenarios, 2*trials)
	}
}

// TestPropertyPathsAreValid checks Definition 2 directly on every path the
// graph emits, and completeness: every valid trajectory appears as a path.
func TestPropertyPathsAreValid(t *testing.T) {
	rng := stats.NewRNG(777)
	for trial := 0; trial < 400; trial++ {
		ls, ic := randomScenario(rng)
		mode := constraints.StrictEnd
		if trial%2 == 1 {
			mode = constraints.LenientEnd
		}
		g, err := Build(ls, ic, &Options{EndLatency: mode})
		if errors.Is(err, ErrNoValidTrajectory) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		seen := make(map[string]bool)
		err = g.WalkPaths(1<<20, func(path []*Node, p float64) {
			locs := Trajectory(path)
			if !ic.ValidTrajectory(locs, mode) {
				t.Fatalf("trial %d: graph emitted invalid trajectory %v", trial, locs)
			}
			if p <= 0 {
				t.Fatalf("trial %d: non-positive path probability %v", trial, p)
			}
			seen[TrajectoryKey(locs)] = true
		})
		if err != nil {
			t.Fatal(err)
		}
		// Completeness vs brute force.
		oracle, err := EnumerateConditioned(ls, ic, mode, 1<<20)
		if err != nil {
			t.Fatalf("trial %d: oracle disagrees on consistency: %v", trial, err)
		}
		for _, tr := range oracle.Trajectories {
			if !seen[TrajectoryKey(tr)] {
				t.Fatalf("trial %d: valid trajectory %v missing from graph", trial, tr)
			}
		}
	}
}

// TestPropertyMarginalsMatchEnumeration cross-checks the alpha/beta marginals
// against summing path probabilities.
func TestPropertyMarginalsMatchEnumeration(t *testing.T) {
	rng := stats.NewRNG(31337)
	for trial := 0; trial < 200; trial++ {
		ls, ic := randomScenario(rng)
		g, err := Build(ls, ic, nil)
		if errors.Is(err, ErrNoValidTrajectory) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		numLocs := ls.NumLocations()
		want := make([][]float64, g.Duration())
		for tau := range want {
			want[tau] = make([]float64, numLocs)
		}
		err = g.WalkPaths(1<<20, func(path []*Node, p float64) {
			for tau, n := range path {
				want[tau][n.Loc] += p
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.Marginals(numLocs)
		if err != nil {
			t.Fatal(err)
		}
		for tau := range want {
			for loc := range want[tau] {
				if math.Abs(got[tau][loc]-want[tau][loc]) > 1e-9 {
					t.Fatalf("trial %d: marginal[%d][%d] = %v, want %v",
						trial, tau, loc, got[tau][loc], want[tau][loc])
				}
			}
		}
	}
}

// TestPropertyWalkPathsRetainable is the regression test for the WalkPaths
// aliasing bug: the recursion used to hand callbacks a slice sharing its
// backing array across sibling branches, so retained paths were silently
// overwritten. Collect every path first, validate them all afterwards.
func TestPropertyWalkPathsRetainable(t *testing.T) {
	rng := stats.NewRNG(1234)
	for trial := 0; trial < 200; trial++ {
		ls, ic := randomScenario(rng)
		g, err := Build(ls, ic, nil)
		if errors.Is(err, ErrNoValidTrajectory) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		var paths [][]*Node
		var probs []float64
		err = g.WalkPaths(1<<20, func(path []*Node, p float64) {
			paths = append(paths, path)
			probs = append(probs, p)
		})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		for i, path := range paths {
			// Retained paths must still be intact, distinct source-to-target
			// paths with their reported probabilities.
			p, err := g.PathProbability(path)
			if err != nil {
				t.Fatalf("trial %d: retained path %d no longer valid: %v", trial, i, err)
			}
			if math.Abs(p-probs[i]) > 1e-12 {
				t.Fatalf("trial %d: retained path %d has prob %v, reported %v", trial, i, p, probs[i])
			}
			key := TrajectoryKey(Trajectory(path))
			if seen[key] {
				t.Fatalf("trial %d: retained paths collapsed onto %s", trial, key)
			}
			seen[key] = true
		}
	}
}

// TestPropertyFilterBeamWideEnoughIsExact: beam-filtered streaming with a
// beam at least as wide as the frontier ever gets equals exact filtering,
// which in turn equals the LenientEnd graph's final marginal.
func TestPropertyFilterBeamWideEnoughIsExact(t *testing.T) {
	rng := stats.NewRNG(98765)
	for trial := 0; trial < 200; trial++ {
		ls, ic := randomScenario(rng)
		numLocs := ls.NumLocations()
		exact := NewFilter(ic, nil)
		wide := NewFilter(ic, &FilterOptions{Beam: 1 << 16})
		narrow := NewFilter(ic, &FilterOptions{Beam: 1})
		dead := false
		for step := 0; step < ls.Duration(); step++ {
			cands := ls.Steps[step].Candidates
			errE := exact.Observe(cands)
			errW := wide.Observe(cands)
			if (errE == nil) != (errW == nil) {
				t.Fatalf("trial %d step %d: exact err %v, wide-beam err %v", trial, step, errE, errW)
			}
			if errE != nil {
				dead = true
				break
			}
			// The narrow beam may die where exact survives (it is an
			// approximation) but must never fail in some other way.
			if errN := narrow.Observe(cands); errN != nil {
				if !errors.Is(errN, ErrNoValidTrajectory) {
					t.Fatalf("trial %d step %d: narrow beam error %v", trial, step, errN)
				}
				narrow = nil
			}
			de, err := exact.Current(numLocs)
			if err != nil {
				t.Fatal(err)
			}
			dw, err := wide.Current(numLocs)
			if err != nil {
				t.Fatal(err)
			}
			for loc := range de {
				if math.Abs(de[loc]-dw[loc]) > 1e-9 {
					t.Fatalf("trial %d step %d loc %d: exact %v, wide beam %v",
						trial, step, loc, de[loc], dw[loc])
				}
			}
			if narrow == nil {
				narrow = NewFilter(ic, &FilterOptions{Beam: 1}) // restart; prefix died
				dead = true
				break
			}
			if n, err := narrow.Current(numLocs); err != nil {
				t.Fatal(err)
			} else if narrow.FrontierSize() > 1 || len(n) != numLocs {
				t.Fatalf("trial %d step %d: beam-1 frontier %d", trial, step, narrow.FrontierSize())
			}
		}
		if dead {
			continue
		}
		// At the final timestamp exact filtering equals the LenientEnd
		// graph's smoothed marginal.
		g, err := Build(ls, ic, &Options{EndLatency: constraints.LenientEnd})
		if err != nil {
			t.Fatalf("trial %d: filter survived but Build failed: %v", trial, err)
		}
		marg, err := g.Marginals(numLocs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := exact.Current(numLocs)
		if err != nil {
			t.Fatal(err)
		}
		want := marg[g.Duration()-1]
		for loc := range want {
			if math.Abs(got[loc]-want[loc]) > 1e-9 {
				t.Fatalf("trial %d loc %d: filter %v, graph %v", trial, loc, got[loc], want[loc])
			}
		}
	}
}

// TestPropertySampleDistribution verifies that ancestral sampling follows the
// conditioned distribution on a fixed scenario.
func TestPropertySampleDistribution(t *testing.T) {
	ls, ic := func() (*LSequence, *constraints.Set) {
		ic := constraints.NewSet()
		ic.AddDU(0, 1)
		ls := FromDistributions([][]float64{
			{0.6, 0.4},
			{0.5, 0.5},
			{0.3, 0.7},
		})
		return ls, ic
	}()
	g, err := Build(ls, ic, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.ConditionedDistribution(100)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4242)
	const n = 200000
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		locs := g.Sample(rng)
		if locs == nil {
			t.Fatal("Sample returned nil")
		}
		if !ic.ValidTrajectory(locs, constraints.StrictEnd) {
			t.Fatalf("sampled invalid trajectory %v", locs)
		}
		counts[TrajectoryKey(locs)]++
	}
	for k, p := range want {
		freq := float64(counts[k]) / n
		if math.Abs(freq-p) > 0.01 {
			t.Errorf("P(%s): sampled %v, want %v", k, freq, p)
		}
	}
	for k := range counts {
		if _, ok := want[k]; !ok {
			t.Errorf("sampled trajectory %s not in the distribution", k)
		}
	}
}

// TestPropertyViterbi verifies MostProbable against enumeration.
func TestPropertyViterbi(t *testing.T) {
	rng := stats.NewRNG(909)
	for trial := 0; trial < 300; trial++ {
		ls, ic := randomScenario(rng)
		g, err := Build(ls, ic, nil)
		if errors.Is(err, ErrNoValidTrajectory) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		bestLocs, bestP := g.MostProbable()
		if bestLocs == nil {
			t.Fatalf("trial %d: MostProbable returned nil on non-empty graph", trial)
		}
		var trueBest float64
		err = g.WalkPaths(1<<20, func(path []*Node, p float64) {
			if p > trueBest {
				trueBest = p
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bestP-trueBest) > 1e-9 {
			t.Fatalf("trial %d: Viterbi prob %v, true best %v", trial, bestP, trueBest)
		}
		dist, err := g.ConditionedDistribution(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dist[TrajectoryKey(bestLocs)]-bestP) > 1e-9 {
			t.Fatalf("trial %d: Viterbi trajectory %v has prob %v, claimed %v",
				trial, bestLocs, dist[TrajectoryKey(bestLocs)], bestP)
		}
	}
}
