package core

import (
	"fmt"
	"time"

	"repro/internal/constraints"
)

// BuildState is the incremental counterpart of Build for streaming sessions:
// it keeps the forward pass of the ct-graph alive across readings, appending
// one level per Observe, and Smooth re-runs only the backward/revise suffix
// that the new levels can invalidate.
//
// The raw graph (nodes, a-priori edges, source probabilities) is append-only
// and never conditioned in place. Each Smooth clones the levels it needs to
// recompute and runs the same per-level helpers as Build (condemnTargets,
// conditionLevel, conditionSources, scrubLevelOrphans, detachRemovedLevel) on
// the clones, so every float operation happens in the same order as a full
// offline Build over the same readings — the smoothed marginals are
// bit-identical, not merely close.
//
// The suffix is bounded by convergence, not by a heuristic: the backward
// recurrence is swept from the newest level downward, and as soon as some
// level's rescaled survival vector is bitwise equal to the value the previous
// Smooth computed for it, every level below would condition identically, so
// the previous snapshot's prefix is reused (deep-copied and stitched to the
// fresh suffix) instead of recomputed. Survivals rescale to exactly 1 at
// unambiguous timestamps, so on real streams convergence is reached within a
// handful of levels of the newest reading.
//
// Each Smooth returns an independent Graph: callers may retain earlier
// results (e.g. a trajectory store) while the session keeps smoothing.
//
// A BuildState also maintains the normalized forward mass of the newest
// level, so for exact (beam-less) sessions it answers the same frontier
// queries as Filter — Distribution, TopLocations, FrontierSize — with
// bit-identical values, making a separate Filter per session redundant.
//
// BuildState is not safe for concurrent use.
type BuildState struct {
	b builder

	// internCap bounds the TL interner exactly as Filter does (see
	// filterInternCap); tests lower it to exercise the rebuild path.
	internCap int
	rebuilds  int

	// Raw forward state: levels[t] holds the unconditioned nodes of
	// timestamp t in construction order (idx = position; never compacted),
	// alphas the normalized forward mass of the newest level, aligned with
	// levels[len(levels)-1].
	levels [][]*Node
	alphas []float64
	dead   bool

	// Forward-phase scratch, reused across Observe calls.
	level      map[nodeKey]*Node
	succs      []*Node
	outDeg     []int32
	inDeg      []int32
	nextAlphas []float64

	// Cumulative forward-phase explain data, mirroring what a full Build
	// over the same readings would report.
	steps        []ExplainStep
	prunes       [numPruneReasons]int64
	forwardNanos int64

	// Bookkeeping from the last successful Smooth, used for convergence
	// detection and prefix reuse. prevLen is the window length it covered
	// (0 = none yet). bsurv[t] stores level t's post-rescale survival
	// vector in raw node order; bRemoved[t]/ghosts[t] the per-level
	// backward-removal and orphan counts; finalIdx[t] the raw indices of
	// the nodes that survived into the snapshot, ascending. snap is the
	// graph the last Smooth returned, treated as immutable.
	prevLen    int
	prevStrict bool
	bsurv      [][]float64
	bRemoved   []int
	ghosts     []int
	finalIdx   [][]int32
	normalizer float64
	snap       *Graph
}

// NewBuildState returns an incremental build over the given constraints.
func NewBuildState(ic *constraints.Set) *BuildState {
	if ic == nil {
		ic = constraints.NewSet()
	}
	return &BuildState{b: newBuilder(ic), internCap: filterInternCap, level: make(map[nodeKey]*Node)}
}

// Time returns the timestamp of the last observation (-1 before the first).
func (st *BuildState) Time() int { return len(st.levels) - 1 }

// Duration returns the number of observed timestamps.
func (st *BuildState) Duration() int { return len(st.levels) }

// FrontierSize returns the number of alive location nodes at the newest
// timestamp.
func (st *BuildState) FrontierSize() int {
	if len(st.levels) == 0 {
		return 0
	}
	return len(st.levels[len(st.levels)-1])
}

// InternerRebuilds returns how many times the TL interner has been discarded
// and rebuilt to bound memory on a long stream.
func (st *BuildState) InternerRebuilds() int { return st.rebuilds }

// validateCandidates rejects malformed candidate sets: empty, non-positive
// probabilities, negative locations, or duplicate locations (a duplicate
// would double-accumulate its forward mass and silently skew the frontier).
// Shared by Filter.Observe and BuildState.Observe.
func validateCandidates(candidates []Candidate, t int) error {
	if len(candidates) == 0 {
		return fmt.Errorf("core: empty candidate set at timestamp %d", t)
	}
	for i, c := range candidates {
		if c.P <= 0 || c.Loc < 0 {
			return fmt.Errorf("core: bad candidate (loc %d, p %g) at timestamp %d", c.Loc, c.P, t)
		}
		for _, prev := range candidates[:i] {
			if prev.Loc == c.Loc {
				return fmt.Errorf("core: duplicate candidate location %d at timestamp %d", c.Loc, t)
			}
		}
	}
	return nil
}

// Observe appends one timestamp to the raw graph, running the same forward
// step as Build (two passes: resolve successors and count degrees, then
// carve exact-capacity adjacency and fill). It returns ErrNoValidTrajectory
// when no continuation is consistent with the constraints; the already
// observed prefix stays smoothable, but no further readings are accepted.
func (st *BuildState) Observe(candidates []Candidate) error {
	if st.dead {
		return fmt.Errorf("%w (state is dead)", ErrNoValidTrajectory)
	}
	t := len(st.levels)
	if err := validateCandidates(candidates, t); err != nil {
		return err
	}
	start := time.Now()

	if t == 0 {
		nodes := make([]*Node, 0, len(candidates))
		st.alphas = st.alphas[:0]
		for _, c := range candidates {
			n := st.b.newNode(0, c.Loc, st.b.initialStay(c.Loc), nil)
			n.prob = c.P
			n.idx = int32(len(nodes))
			nodes = append(nodes, n)
			st.alphas = append(st.alphas, c.P)
		}
		st.levels = append(st.levels, nodes)
		st.steps = append(st.steps, ExplainStep{Candidates: len(candidates), NodesBuilt: len(nodes)})
		normalizeAlphas(st.alphas)
		st.forwardNanos += time.Since(start).Nanoseconds()
		return nil
	}

	if st.b.tl.size() > st.internCap {
		st.b.tl = newTLInterner()
		st.rebuilds++
	}

	clear(st.level)
	cur := st.levels[t-1]
	next := make([]*Node, 0, len(cur))
	prunedBefore := st.prunes[pruneDU] + st.prunes[pruneLT] + st.prunes[pruneTT]
	st.succs = resize(st.succs, len(cur)*len(candidates))
	st.outDeg = resize(st.outDeg, len(cur))
	st.inDeg = st.inDeg[:0]
	st.nextAlphas = st.nextAlphas[:0]
	pi := 0
	for i, n := range cur {
		st.outDeg[i] = 0
		for _, c := range candidates {
			key, why := st.b.successorKey(n, c.Loc)
			st.prunes[why]++
			if why != pruneNone {
				st.succs[pi] = nil
				pi++
				continue
			}
			succ, seen := st.level[key]
			if !seen {
				succ = st.b.newNode(t, int(key.loc), int(key.stay), st.b.tl.seq(key.tl))
				succ.idx = int32(len(next))
				st.level[key] = succ
				next = append(next, succ)
				st.inDeg = append(st.inDeg, 0)
				st.nextAlphas = append(st.nextAlphas, 0)
			}
			st.succs[pi] = succ
			pi++
			st.outDeg[i]++
			st.inDeg[succ.idx]++
			// Same accumulation order as Filter.Observe: frontier order
			// outer, candidate order inner.
			st.nextAlphas[succ.idx] += st.alphas[i] * c.P
		}
	}
	step := ExplainStep{
		Candidates: len(candidates),
		Considered: len(cur) * len(candidates),
		NodesBuilt: len(next),
	}
	step.Accepted = step.Considered - int(st.prunes[pruneDU]+st.prunes[pruneLT]+st.prunes[pruneTT]-prunedBefore)
	if len(next) == 0 {
		st.dead = true
		st.forwardNanos += time.Since(start).Nanoseconds()
		return fmt.Errorf("%w (dead end at timestamp %d)", ErrNoValidTrajectory, t)
	}
	for i, n := range cur {
		n.out = st.b.carve(int(st.outDeg[i]))
	}
	for i, m := range next {
		m.in = st.b.carve(int(st.inDeg[i]))
	}
	pi = 0
	for _, n := range cur {
		for _, c := range candidates {
			succ := st.succs[pi]
			pi++
			if succ == nil {
				continue
			}
			e := st.b.newEdge(n, succ, c.P)
			n.out = append(n.out, e)
			succ.in = append(succ.in, e)
		}
	}
	st.levels = append(st.levels, next)
	st.steps = append(st.steps, step)
	st.alphas, st.nextAlphas = st.nextAlphas, st.alphas
	normalizeAlphas(st.alphas)
	st.forwardNanos += time.Since(start).Nanoseconds()
	return nil
}

func normalizeAlphas(alphas []float64) {
	total := 0.0
	for _, a := range alphas {
		total += a
	}
	if total <= 0 {
		return
	}
	for i := range alphas {
		alphas[i] /= total
	}
}

// Distribution returns the filtered distribution at the newest timestamp,
// aggregated by location and sorted by descending probability (ties broken
// by ascending location ID) — the same values, in the same shape, as
// Filter.Distribution over the same readings.
func (st *BuildState) Distribution() ([]LocProb, error) {
	if len(st.levels) == 0 {
		return nil, fmt.Errorf("core: build state has observed nothing")
	}
	frontier := st.levels[len(st.levels)-1]
	byLoc := make(map[int]float64, len(frontier))
	for i, n := range frontier {
		byLoc[n.Loc] += st.alphas[i]
	}
	return sortDistribution(byLoc), nil
}

// TopLocations returns the up-to-k most probable current locations with
// their filtered probabilities, descending. k < 1 is an error.
func (st *BuildState) TopLocations(k int) ([]LocProb, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: top-k needs k >= 1, got %d", k)
	}
	dist, err := st.Distribution()
	if err != nil {
		return nil, err
	}
	if len(dist) > k {
		dist = dist[:k]
	}
	return dist, nil
}

// Smooth conditions the observed readings under the integrity constraints
// and returns the ct-graph, exactly as Build over the same l-sequence would
// — but recomputing only the suffix the newest readings can invalidate. The
// returned graph is independent of the state: later Observe/Smooth calls
// never mutate it.
//
// Changing Options.EndLatency between calls is supported but invalidates the
// convergence bookkeeping, forcing that call to recompute every level.
func (st *BuildState) Smooth(opts *Options) (*Graph, error) {
	duration := len(st.levels)
	if duration == 0 {
		return nil, fmt.Errorf("core: build state has observed nothing")
	}
	ex := opts.explain()
	if ex != nil {
		ex.reset(duration)
	}
	strict := opts.endLatency() == constraints.StrictEnd
	prevLen := st.prevLen
	if strict != st.prevStrict {
		prevLen = 0
	}
	backStart := time.Now()

	// Clone arena for this pass: the result graph owns it, so every Smooth
	// is independent. The zero builder is a pure allocator (no constraint
	// or interner state), which is all cloning needs.
	var cb builder
	clones := make([][]*Node, duration)
	clones[duration-1] = cloneLevel(&cb, st.levels[duration-1])
	condemned := condemnTargets(clones[duration-1], strict)

	// Backward sweep over clones, newest level first. Each iteration first
	// materializes level t's clone edges (which is when level t+1's deferred
	// detach can run — removal permutes the predecessors' out lists exactly
	// as in Build), then conditions level t, then checks convergence.
	bsurvNew := make([][]float64, duration)
	bRemovedNew := make([]int, duration)
	boundary := 0
	for t := duration - 2; t >= 0; t-- {
		clones[t] = cloneLevel(&cb, st.levels[t])
		cloneEdges(&cb, st.levels[t], st.levels[t+1], clones[t], clones[t+1])
		detachRemovedLevel(clones[t+1])
		removed, ok := conditionLevel(clones[t])
		if !ok {
			return nil, ErrNoValidTrajectory
		}
		bRemovedNew[t] = removed
		bsurvNew[t] = survivals(clones[t])
		if t >= 1 && t < prevLen && float64sEqual(st.bsurv[t], bsurvNew[t]) {
			boundary = t
			break
		}
	}
	bsurvNew[duration-1] = survivals(clones[duration-1])

	var g *Graph
	normalizer := st.normalizer
	if boundary > 0 {
		// Converged: level boundary's survivals (and hence removals) are
		// bitwise what the previous pass computed, so everything below
		// would recondition identically. Finish the deferred detach of the
		// boundary level, then reuse the previous snapshot's prefix.
		detachRemovedLevel(clones[boundary])
		g = st.assembleWithPrefix(&cb, clones, boundary)
	} else {
		detachRemovedLevel(clones[0])
		var ok bool
		normalizer, ok = conditionSources(clones[0])
		if !ok {
			return nil, ErrNoValidTrajectory
		}
		g = &Graph{byTime: clones}
	}
	backNanos := time.Since(backStart).Nanoseconds()
	reviseStart := time.Now()

	// Scrub and compact the recomputed suffix (the reused prefix is already
	// scrubbed and dense). Record the per-level survivor sets first: compact
	// rewrites the level slices in place.
	ghostsNew := make([]int, duration)
	scrubFrom := boundary
	if scrubFrom < 1 {
		scrubFrom = 1
	}
	for t := scrubFrom; t < duration; t++ {
		ghostsNew[t] = scrubLevelOrphans(g.byTime[t])
	}
	finalIdxNew := make([][]int32, duration)
	for t := boundary; t < duration; t++ {
		finalIdxNew[t] = surviving(g.byTime[t])
		compactLevel(&g.byTime[t])
	}

	// Commit the bookkeeping for the next pass.
	st.bsurv = resizeZero(st.bsurv, duration)
	st.bRemoved = resizeZero(st.bRemoved, duration)
	st.ghosts = resizeZero(st.ghosts, duration)
	st.finalIdx = resizeZero(st.finalIdx, duration)
	for t := boundary; t < duration; t++ {
		st.bsurv[t] = bsurvNew[t]
		st.bRemoved[t] = bRemovedNew[t]
		st.ghosts[t] = ghostsNew[t]
		st.finalIdx[t] = finalIdxNew[t]
	}
	st.prevLen = duration
	st.prevStrict = strict
	st.normalizer = normalizer
	st.snap = g

	if ex != nil {
		ex.ForwardNanos = st.forwardNanos
		ex.BackwardNanos = backNanos
		copy(ex.Steps, st.steps)
		ex.PrunedDU = st.prunes[pruneDU]
		ex.PrunedLT = st.prunes[pruneLT]
		ex.PrunedTT = st.prunes[pruneTT]
		ex.TargetsCondemned = condemned
		for t := 0; t < duration-1; t++ {
			ex.BackwardRemoved += st.bRemoved[t]
		}
		for t := 1; t < duration; t++ {
			ex.GhostsRemoved += st.ghosts[t]
		}
		ex.Normalizer = normalizer
		ex.ReusedLevels = boundary
		ex.RecomputedLevels = duration - boundary
		for t := range g.byTime {
			ex.Steps[t].NodesFinal = len(g.byTime[t])
		}
		ex.ReviseNanos = time.Since(reviseStart).Nanoseconds()
	}
	return g, nil
}

// assembleWithPrefix builds the result graph by deep-copying levels
// 0..boundary-1 of the previous snapshot and stitching the copied boundary
// edges onto the fresh clones of the boundary level. Edges out of level
// boundary-1 in the snapshot point at snapshot nodes, whose dense index maps
// back to the raw (clone) position through finalIdx[boundary].
func (st *BuildState) assembleWithPrefix(cb *builder, clones [][]*Node, boundary int) *Graph {
	g := &Graph{byTime: clones}
	fidx := st.finalIdx[boundary]
	snapB := st.snap.byTime[boundary]
	// Count the prefix once and pre-size the arena so the bulk copy below
	// cuts three exact blocks instead of churning through chunk allocations
	// — on a long-lived session this copy IS the cost of a Smooth, and the
	// allocator overhead was rivaling the copy itself. Every prefix edge
	// consumes one out slot and one in slot (boundary in-lists included), so
	// the pointer arena needs exactly 2*edges.
	nodes, edges := 0, 0
	for t := 0; t < boundary; t++ {
		nodes += len(st.snap.byTime[t])
		for _, n := range st.snap.byTime[t] {
			edges += len(n.out)
		}
	}
	cb.grow(nodes, edges, 2*edges)
	// Cut the three blocks once and fill through local cursors: the
	// per-element arena methods (capacity check, method call) were a
	// measurable slice of the copy on 500-level sessions.
	nslab := cb.nodes[len(cb.nodes) : len(cb.nodes)+nodes]
	cb.nodes = cb.nodes[:len(cb.nodes)+nodes]
	eslab := cb.edges[len(cb.edges) : len(cb.edges)+edges]
	cb.edges = cb.edges[:len(cb.edges)+edges]
	pslab := cb.ptrs[len(cb.ptrs) : len(cb.ptrs)+2*edges]
	cb.ptrs = cb.ptrs[:len(cb.ptrs)+2*edges]
	ncur, ecur, pcur := 0, 0, 0
	for j, rawIdx := range fidx {
		if k := len(snapB[j].in); k > 0 {
			clones[boundary][rawIdx].in = pslab[pcur : pcur : pcur+k]
			pcur += k
		}
	}
	nptrs := make([]*Node, nodes) // one slab for every level's node slice
	for t := 0; t < boundary; t++ {
		src := st.snap.byTime[t]
		cp := nptrs[:len(src):len(src)]
		nptrs = nptrs[len(src):]
		for i, n := range src {
			c := &nslab[ncur]
			ncur++
			*c = *n
			c.out = nil
			if k := len(n.in); t > 0 && k > 0 {
				c.in = pslab[pcur : pcur : pcur+k]
				pcur += k
			} else {
				c.in = nil
			}
			cp[i] = c
		}
		g.byTime[t] = cp
	}
	// Copied in lists are refilled in from-node order, which can differ
	// from the snapshot's post-detach order; nothing numeric consumes
	// in-edge order, only membership.
	for t := 0; t < boundary; t++ {
		var next []*Node
		if t+1 < boundary {
			next = g.byTime[t+1]
		}
		for i, n := range st.snap.byTime[t] {
			from := g.byTime[t][i]
			out := pslab[pcur : pcur : pcur+len(n.out)]
			pcur += len(n.out)
			for _, e := range n.out {
				var to *Node
				if next != nil {
					to = next[e.To.idx]
				} else {
					to = clones[boundary][fidx[e.To.idx]]
				}
				ce := &eslab[ecur]
				ecur++
				*ce = Edge{From: from, To: to, P: e.P}
				out = append(out, ce)
				to.in = append(to.in, ce)
			}
			from.out = out
		}
	}
	return g
}

// cloneLevel copies one timestamp's raw nodes (identity fields and source
// probability; no edges) into the clone arena, preserving order.
func cloneLevel(cb *builder, raw []*Node) []*Node {
	out := make([]*Node, len(raw))
	for i, n := range raw {
		out[i] = cb.cloneNode(n)
	}
	return out
}

// cloneEdges copies the raw edges between two consecutive levels onto their
// clones, carving exact-capacity adjacency like the forward phase so the
// clone lists start in raw construction order.
func cloneEdges(cb *builder, raw, rawNext, cur, next []*Node) {
	for j, m := range rawNext {
		next[j].in = cb.carve(len(m.in))
	}
	for i, n := range raw {
		cur[i].out = cb.carve(len(n.out))
		for _, e := range n.out {
			to := next[e.To.idx]
			ce := cb.newEdge(cur[i], to, e.P)
			cur[i].out = append(cur[i].out, ce)
			to.in = append(to.in, ce)
		}
	}
}

// survivals snapshots a level's post-rescale survival vector in level order.
func survivals(nodes []*Node) []float64 {
	s := make([]float64, len(nodes))
	for i, n := range nodes {
		s[i] = n.surv
	}
	return s
}

// surviving returns the positions of the non-removed nodes, ascending.
func surviving(nodes []*Node) []int32 {
	idx := make([]int32, 0, len(nodes))
	for i, n := range nodes {
		if !n.removed {
			idx = append(idx, int32(i))
		}
	}
	return idx
}

// float64sEqual reports bitwise equality of two equal-meaning vectors. NaNs
// cannot appear (survivals are finite sums and quotients of probabilities),
// so == is bit equality here.
func float64sEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// resizeZero grows s to length n, zeroing any recycled tail slots.
func resizeZero[T any](s []T, n int) []T {
	if cap(s) < n {
		grown := make([]T, n)
		copy(grown, s)
		return grown
	}
	var zero T
	for i := len(s); i < n; i++ {
		s = append(s, zero)
	}
	return s[:n]
}
