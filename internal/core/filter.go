package core

import (
	"fmt"
	"sort"

	"repro/internal/constraints"
)

// filterInternCap bounds the streaming filter's TL interner. TL entries
// carry absolute timestamps, so on an unbounded stream the interner would
// grow without limit; once it exceeds this many chain links it is discarded
// and rebuilt. That is safe because interned IDs are only compared within a
// single Observe call, and frontier nodes hold the canonical slices
// themselves, which outlive the interner that created them.
const filterInternCap = 1 << 16

// Filter is the online (streaming) counterpart of Build: it consumes one
// timestamp of candidate locations at a time and maintains the *filtered*
// distribution — the conditioned distribution of the object's current
// location given the readings and constraints observed so far. This extends
// the paper toward the streaming setting its §7 alludes to: the frontier it
// maintains is exactly the set of location nodes Algorithm 1's forward phase
// would have alive at the current timestamp, with their (normalized) forward
// probability mass.
//
// At the final timestamp the filtered distribution coincides with the
// smoothed marginal of the full ct-graph built under LenientEnd semantics;
// at earlier timestamps it conditions only on the past, which is the best an
// online cleaner can do.
//
// An optional beam width bounds the frontier for long, highly ambiguous
// streams by keeping only the most probable nodes — an approximation that
// trades exactness for a hard memory bound.
type Filter struct {
	ic   *constraints.Set
	b    builder
	beam int

	// internCap bounds the TL interner (filterInternCap by default); tests
	// lower it to exercise the rebuild path cheaply.
	internCap int
	rebuilds  int

	time     int
	frontier []*filterEntry
}

type filterEntry struct {
	node  *Node // identity fields only; no edges
	alpha float64
}

// FilterOptions configures a Filter.
type FilterOptions struct {
	// Beam, when positive, caps the number of frontier nodes kept after
	// each observation (highest forward probability first). Zero keeps
	// every node (exact filtering).
	Beam int
}

// NewFilter returns a streaming cleaner over the given constraints.
func NewFilter(ic *constraints.Set, opts *FilterOptions) *Filter {
	if ic == nil {
		ic = constraints.NewSet()
	}
	f := &Filter{ic: ic, b: newBuilder(ic), internCap: filterInternCap, time: -1}
	if opts != nil && opts.Beam > 0 {
		f.beam = opts.Beam
	}
	return f
}

// Beam returns the configured beam width (0 = exact filtering).
func (f *Filter) Beam() int { return f.beam }

// InternerRebuilds returns how many times the TL interner has been discarded
// and rebuilt to bound memory on a long stream.
func (f *Filter) InternerRebuilds() int { return f.rebuilds }

// Time returns the timestamp of the last observation (-1 before the first).
func (f *Filter) Time() int { return f.time }

// FrontierSize returns the number of alive location nodes.
func (f *Filter) FrontierSize() int { return len(f.frontier) }

// Observe advances the filter by one timestamp. candidates is the step's
// candidate set (non-zero probabilities summing to 1, as produced by
// prior.Model). It returns ErrNoValidTrajectory when no continuation is
// consistent with the constraints, after which the filter is unusable.
func (f *Filter) Observe(candidates []Candidate) error {
	if err := validateCandidates(candidates, f.time+1); err != nil {
		return err
	}
	if f.time < 0 {
		f.frontier = make([]*filterEntry, 0, len(candidates))
		for _, c := range candidates {
			f.frontier = append(f.frontier, &filterEntry{
				node:  f.b.newNode(0, c.Loc, f.b.initialStay(c.Loc), nil),
				alpha: c.P,
			})
		}
		f.time = 0
		f.normalizeAndPrune()
		return nil
	}
	if f.b.tl.size() > f.internCap {
		f.b.tl = newTLInterner()
		f.rebuilds++
	}

	next := make(map[nodeKey]*filterEntry, len(f.frontier))
	order := make([]*filterEntry, 0, len(f.frontier))
	for _, e := range f.frontier {
		for _, c := range candidates {
			key, why := f.b.successorKey(e.node, c.Loc)
			if why != pruneNone {
				continue
			}
			ne, seen := next[key]
			if !seen {
				ne = &filterEntry{node: f.b.newNode(f.time+1, int(key.loc), int(key.stay), f.b.tl.seq(key.tl))}
				next[key] = ne
				order = append(order, ne)
			}
			ne.alpha += e.alpha * c.P
		}
	}
	if len(order) == 0 {
		f.frontier = nil
		return fmt.Errorf("%w (dead end at timestamp %d)", ErrNoValidTrajectory, f.time+1)
	}
	f.frontier = order
	f.time++
	f.normalizeAndPrune()
	return nil
}

// normalizeAndPrune rescales frontier probabilities to sum to 1, applying
// the beam cap first when configured. The beam sort breaks probability ties
// by node identity (location, stay, then TL) so entries straddling the beam
// boundary with equal mass truncate deterministically — sort.Slice is
// unstable, and keying on alpha alone made repeated runs over the same
// readings keep different frontiers.
func (f *Filter) normalizeAndPrune() {
	if f.beam > 0 && len(f.frontier) > f.beam {
		sort.Slice(f.frontier, func(i, j int) bool {
			a, b := f.frontier[i], f.frontier[j]
			if a.alpha != b.alpha {
				return a.alpha > b.alpha
			}
			return a.node.identityLess(b.node)
		})
		f.frontier = f.frontier[:f.beam]
	}
	total := 0.0
	for _, e := range f.frontier {
		total += e.alpha
	}
	if total <= 0 {
		return
	}
	for _, e := range f.frontier {
		e.alpha /= total
	}
}

// identityLess orders nodes of one timestamp by their identity fields:
// location, then stay counter, then TL lexicographically. Two distinct nodes
// of a level never compare equal — (Loc, Stay, TL) is exactly the nodeKey
// the forward phase deduplicates on.
func (n *Node) identityLess(m *Node) bool {
	if n.Loc != m.Loc {
		return n.Loc < m.Loc
	}
	if n.Stay != m.Stay {
		return n.Stay < m.Stay
	}
	for i := 0; i < len(n.TL) && i < len(m.TL); i++ {
		if n.TL[i] != m.TL[i] {
			if n.TL[i].Time != m.TL[i].Time {
				return n.TL[i].Time < m.TL[i].Time
			}
			return n.TL[i].Loc < m.TL[i].Loc
		}
	}
	return len(n.TL) < len(m.TL)
}

// Current returns the filtered distribution over locations at the latest
// observed timestamp. numLocations sizes the result; an error is returned
// when a frontier node mentions a location ID outside [0, numLocations).
func (f *Filter) Current(numLocations int) ([]float64, error) {
	if f.time < 0 {
		return nil, fmt.Errorf("core: filter has observed nothing")
	}
	dist := make([]float64, numLocations)
	for _, e := range f.frontier {
		if e.node.Loc >= numLocations {
			return nil, fmt.Errorf("core: frontier location ID %d outside [0, %d)", e.node.Loc, numLocations)
		}
		dist[e.node.Loc] += e.alpha
	}
	return dist, nil
}

// LocProb is one (location ID, probability) entry of a filtered
// distribution.
type LocProb struct {
	Loc int
	P   float64
}

// Distribution returns the filtered distribution at the latest observed
// timestamp aggregated by location, sorted by descending probability (ties
// broken by ascending location ID). Unlike Current it needs no location
// count and omits zero-probability locations — the shape a live-tracking
// serving layer returns to clients.
func (f *Filter) Distribution() ([]LocProb, error) {
	if f.time < 0 {
		return nil, fmt.Errorf("core: filter has observed nothing")
	}
	byLoc := make(map[int]float64, len(f.frontier))
	for _, e := range f.frontier {
		byLoc[e.node.Loc] += e.alpha
	}
	return sortDistribution(byLoc), nil
}

// sortDistribution flattens a by-location aggregate into the serving shape:
// descending probability, ties broken by ascending location ID. Shared by
// Filter.Distribution and BuildState.Distribution.
func sortDistribution(byLoc map[int]float64) []LocProb {
	out := make([]LocProb, 0, len(byLoc))
	for l, p := range byLoc {
		out = append(out, LocProb{Loc: l, P: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].Loc < out[j].Loc
	})
	return out
}

// TopLocations returns the up-to-k most probable current locations with
// their filtered probabilities, descending. k < 1 is an error.
func (f *Filter) TopLocations(k int) ([]LocProb, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: top-k needs k >= 1, got %d", k)
	}
	dist, err := f.Distribution()
	if err != nil {
		return nil, err
	}
	if len(dist) > k {
		dist = dist[:k]
	}
	return dist, nil
}

// MostLikely returns the most probable current location and its filtered
// probability.
func (f *Filter) MostLikely() (loc int, p float64, err error) {
	top, err := f.TopLocations(1)
	if err != nil {
		return 0, 0, err
	}
	if len(top) == 0 { // dead-ended filter: empty frontier
		return -1, -1, nil
	}
	return top[0].Loc, top[0].P, nil
}
