// Package persist is the stdlib-only durability layer under the query head:
// length-prefixed, checksummed record logs with prefix-tolerant replay, and
// atomic whole-file rewrites (temp file + rename, fsync'd) for snapshots.
//
// The formats favor recoverability over density. A log is a flat sequence of
// frames — 4-byte little-endian payload length, 4-byte CRC32 (IEEE) of the
// payload, then the JSON payload — so a crash mid-append leaves at worst a
// broken tail that ReplayLog detects (short frame, checksum mismatch, or
// undecodable JSON) and discards, keeping every record before it. Snapshots
// reuse the same frame format but are written in one atomic pass, so readers
// either see the old snapshot or the new one, never a mix.
//
// The package knows nothing about what the records mean; Record carries an
// opcode, an id, and opaque JSON data, and the server layers its put/del/meta
// semantics on top.
package persist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Record is one entry of a log or snapshot.
type Record struct {
	// Op is the record's opcode (the server uses "put", "del" and "meta").
	Op string `json:"op"`
	// ID names the object the record is about.
	ID string `json:"id,omitempty"`
	// Dep optionally names the deployment the object belongs to.
	Dep string `json:"dep,omitempty"`
	// Data is the opaque JSON payload (an encoded ct-graph for puts).
	Data json.RawMessage `json:"data,omitempty"`
}

// frameHeaderLen is the bytes preceding each payload: uint32 length then
// uint32 CRC32, both little-endian.
const frameHeaderLen = 8

// maxRecordBytes bounds a single record's payload. A length prefix past it is
// treated as a corrupt frame rather than an allocation request.
const maxRecordBytes = 1 << 30

// Log is an append-only record log. Appends are buffered; Sync flushes the
// buffer and fsyncs, making everything appended before it durable. A Log is
// not safe for concurrent use — the server funnels all appends through one
// writer goroutine.
type Log struct {
	path string
	f    *os.File
	w    *bufio.Writer
	size int64
}

// OpenLog opens (creating if needed) the record log at path for appending.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: opening log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: stat log: %w", err)
	}
	return &Log{path: path, f: f, w: bufio.NewWriter(f), size: st.Size()}, nil
}

// Append buffers one record. It is durable only after the next Sync.
func (l *Log) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("persist: encoding record: %w", err)
	}
	n, err := writeFrame(l.w, payload)
	l.size += int64(n)
	if err != nil {
		return fmt.Errorf("persist: appending record: %w", err)
	}
	return nil
}

// Sync flushes buffered appends and fsyncs the log file.
func (l *Log) Sync() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("persist: flushing log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("persist: fsyncing log: %w", err)
	}
	return nil
}

// Size returns the log's byte size including buffered appends.
func (l *Log) Size() int64 { return l.size }

// Reset truncates the log to empty — called after its contents have been
// compacted into a snapshot. The file stays open (appends continue at the
// new, empty tail thanks to O_APPEND).
func (l *Log) Reset() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("persist: flushing log before reset: %w", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("persist: truncating log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("persist: fsyncing truncated log: %w", err)
	}
	l.size = 0
	return nil
}

// Close flushes, fsyncs and closes the log.
func (l *Log) Close() error {
	syncErr := l.Sync()
	closeErr := l.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// writeFrame writes one length+CRC32 framed payload, returning the bytes
// written (even on error, for size accounting).
func writeFrame(w io.Writer, payload []byte) (int, error) {
	var hdr [frameHeaderLen]byte
	frameHeader(&hdr, payload)
	n, err := w.Write(hdr[:])
	if err != nil {
		return n, err
	}
	m, err := w.Write(payload)
	return n + m, err
}

func frameHeader(hdr *[frameHeaderLen]byte, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
}

// FrameOverhead is the fixed per-frame byte cost of AppendFrame.
const FrameOverhead = frameHeaderLen

// AppendFrame appends payload to dst as one length+CRC32 frame — the exact
// format Log and WriteLogAtomic use on disk — and returns the extended
// buffer. It lets other layers (e.g. the server's binary wire codec) reuse
// this package's framing for in-memory buffers.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	frameHeader(&hdr, payload)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ErrBadFrame reports a frame that is truncated, oversized, or fails its
// checksum.
var ErrBadFrame = errors.New("persist: bad frame")

// ParseFrame reads one frame from the front of buf, returning its payload
// (aliasing buf, not copied) and the remaining bytes. It fails with an error
// wrapping ErrBadFrame on a truncated header or payload, an oversized length
// prefix, or a checksum mismatch.
func ParseFrame(buf []byte) (payload, rest []byte, err error) {
	if len(buf) < frameHeaderLen {
		return nil, nil, fmt.Errorf("%w: %d-byte buffer is shorter than the header", ErrBadFrame, len(buf))
	}
	length := binary.LittleEndian.Uint32(buf[:4])
	sum := binary.LittleEndian.Uint32(buf[4:frameHeaderLen])
	if length > maxRecordBytes {
		return nil, nil, fmt.Errorf("%w: length prefix %d exceeds the record limit", ErrBadFrame, length)
	}
	body := buf[frameHeaderLen:]
	if uint32(len(body)) < length {
		return nil, nil, fmt.Errorf("%w: payload cut short (%d of %d bytes)", ErrBadFrame, len(body), length)
	}
	payload = body[:length]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, nil, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	return payload, body[length:], nil
}

// ReplayLog reads the record log at path, calling fn for each intact record
// in order. A missing file replays zero records. A broken tail — truncated
// frame, oversized length, checksum mismatch, or undecodable payload — stops
// the replay and reports truncated=true; every record before the break has
// already been delivered. Only an error from fn (returned verbatim) or a
// filesystem error aborts the replay.
func ReplayLog(path string, fn func(Record) error) (n int, truncated bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("persist: opening log for replay: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		var hdr [frameHeaderLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return n, false, nil // clean end
			}
			return n, true, nil // partial header
		}
		length := binary.LittleEndian.Uint32(hdr[:4])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxRecordBytes {
			return n, true, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return n, true, nil // frame cut short
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return n, true, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return n, true, nil
		}
		if err := fn(rec); err != nil {
			return n, false, err
		}
		n++
	}
}

// WriteLogAtomic writes recs as a complete record log at path in one atomic
// step: a temp file in the same directory is written, fsync'd, renamed over
// path, and the directory fsync'd. Readers see either the previous file or
// the new one. It returns the new file's size.
func WriteLogAtomic(path string, recs []Record) (int64, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("persist: creating snapshot temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w := bufio.NewWriter(tmp)
	var size int64
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			return 0, fmt.Errorf("persist: encoding snapshot record: %w", err)
		}
		n, err := writeFrame(w, payload)
		size += int64(n)
		if err != nil {
			return 0, fmt.Errorf("persist: writing snapshot record: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return 0, fmt.Errorf("persist: flushing snapshot: %w", err)
	}
	if err := commitTemp(tmp, path); err != nil {
		tmp = nil // commitTemp closed it
		return 0, err
	}
	tmp = nil
	return size, nil
}

// WriteFileAtomic atomically replaces path with data using the same
// temp-file + rename + directory-fsync protocol as WriteLogAtomic.
func WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: creating temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: writing temp file: %w", err)
	}
	return commitTemp(tmp, path)
}

// commitTemp fsyncs, chmods, closes and renames a written temp file over
// path, then fsyncs the directory so the rename itself is durable. It always
// closes tmp; on error the temp file is removed.
func commitTemp(tmp *os.File, path string) error {
	name := tmp.Name()
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("persist: %s: %w", step, err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("fsyncing temp file", err)
	}
	// CreateTemp uses 0600; published files follow the usual umask-style 0644.
	if err := tmp.Chmod(0o644); err != nil {
		return fail("chmod temp file", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("persist: closing temp file: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("persist: renaming temp file: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a rename within it is durable. Filesystems
// that refuse directory fsync (some network mounts) degrade gracefully.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: opening directory for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("persist: fsyncing directory: %w", err)
	}
	return nil
}
