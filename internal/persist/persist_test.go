package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// collect replays path into a slice, failing the test on a replay error.
func collect(t *testing.T, path string) ([]Record, int, bool) {
	t.Helper()
	var recs []Record
	n, truncated, err := ReplayLog(path, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayLog: %v", err)
	}
	return recs, n, truncated
}

// appendRecords opens the log at path and appends+syncs the given records.
func appendRecords(t *testing.T, path string, recs ...Record) {
	t.Helper()
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func rec(op, id string, payload string) Record {
	r := Record{Op: op, ID: id}
	if payload != "" {
		r.Data = json.RawMessage(payload)
	}
	return r
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	want := []Record{
		rec("put", "t1", `{"nodes":3}`),
		rec("del", "t1", ""),
		rec("meta", "", `{"next":7}`),
	}
	appendRecords(t, path, want...)

	got, n, truncated := collect(t, path)
	if truncated {
		t.Fatal("clean log reported truncated")
	}
	if n != len(want) || len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", n, len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].ID != want[i].ID || string(got[i].Data) != string(want[i].Data) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestLogAppendAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	appendRecords(t, path, rec("put", "t1", `{"a":1}`))
	appendRecords(t, path, rec("put", "t2", `{"a":2}`))
	got, _, truncated := collect(t, path)
	if truncated || len(got) != 2 || got[1].ID != "t2" {
		t.Fatalf("got %d records (truncated=%v), want the t1,t2 pair", len(got), truncated)
	}
}

func TestReplayMissingFile(t *testing.T) {
	n, truncated, err := ReplayLog(filepath.Join(t.TempDir(), "absent.wal"), func(Record) error {
		t.Fatal("fn called for a missing file")
		return nil
	})
	if err != nil || n != 0 || truncated {
		t.Fatalf("missing file: n=%d truncated=%v err=%v, want 0,false,nil", n, truncated, err)
	}
}

func TestReplayTruncatedTailKeepsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	appendRecords(t, path,
		rec("put", "t1", `{"a":1}`),
		rec("put", "t2", `{"a":2}`),
		rec("put", "t3", `{"a":3}`),
	)
	// Chop off the last 5 bytes, cutting the final record's payload short.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	got, n, truncated := collect(t, path)
	if !truncated {
		t.Fatal("truncated tail not reported")
	}
	if n != 2 || len(got) != 2 || got[0].ID != "t1" || got[1].ID != "t2" {
		t.Fatalf("prefix = %d records (%v), want t1,t2", n, got)
	}
}

func TestReplayCorruptPayloadKeepsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	appendRecords(t, path, rec("put", "t1", `{"a":1}`))
	end1, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, path, rec("put", "t2", `{"a":2}`))
	// Flip a byte inside the second record's payload: the CRC no longer
	// matches, so replay must stop after t1.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[end1.Size()+frameHeaderLen+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, n, truncated := collect(t, path)
	if !truncated || n != 1 || len(got) != 1 || got[0].ID != "t1" {
		t.Fatalf("corrupt payload: n=%d truncated=%v got=%v, want just t1", n, truncated, got)
	}
}

func TestReplayAbsurdLengthIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	appendRecords(t, path, rec("put", "t1", `{"a":1}`))
	// Append a frame header claiming a multi-gigabyte payload.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, n, truncated := collect(t, path)
	if !truncated || n != 1 {
		t.Fatalf("absurd length: n=%d truncated=%v, want prefix of 1", n, truncated)
	}
}

func TestReplayPropagatesFnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	appendRecords(t, path, rec("put", "t1", ""), rec("put", "t2", ""))
	boom := errors.New("boom")
	n, _, err := ReplayLog(path, func(r Record) error {
		if r.ID == "t2" {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 1 {
		t.Fatalf("fn error: n=%d err=%v, want 1 and boom", n, err)
	}
}

func TestLogReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(rec("put", "t1", "")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size after reset = %d, want 0", l.Size())
	}
	if err := l.Append(rec("put", "t2", "")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got, _, truncated := collect(t, path)
	if truncated || len(got) != 1 || got[0].ID != "t2" {
		t.Fatalf("after reset got %v (truncated=%v), want just t2", got, truncated)
	}
}

func TestWriteLogAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if _, err := WriteLogAtomic(path, []Record{rec("put", "old", "")}); err != nil {
		t.Fatal(err)
	}
	size, err := WriteLogAtomic(path, []Record{rec("put", "new1", ""), rec("put", "new2", "")})
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != size {
		t.Fatalf("reported size %d, stat says %d", size, st.Size())
	}
	got, _, truncated := collect(t, path)
	if truncated || len(got) != 2 || got[0].ID != "new1" {
		t.Fatalf("replaced snapshot = %v (truncated=%v), want new1,new2", got, truncated)
	}
	// No temp files may survive the rename.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.json")
	if err := WriteFileAtomic(path, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"v":2}` {
		t.Fatalf("content = %s, want v:2", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the published file", len(entries))
	}
}

func BenchmarkLogAppendSync(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	l, err := OpenLog(path)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := json.RawMessage(`{"nodes":[` + strings.Repeat(`{"time":0,"loc":1},`, 63) + `{"time":0,"loc":1}]}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(Record{Op: "put", ID: "t" + strconv.Itoa(i), Data: payload}); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 { // group commit every 64 records
			if err := l.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), []byte(`{"op":"put"}`), make([]byte, 4096)}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	rest := buf
	for i, want := range payloads {
		payload, tail, err := ParseFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
		rest = tail
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after the last frame", len(rest))
	}
}

func TestFrameMatchesLogFormat(t *testing.T) {
	// AppendFrame must produce the exact on-disk bytes writeFrame does, so
	// the wire codec and the durability layer stay one format.
	rec := Record{Op: "put", ID: "t1", Data: []byte(`{"k":1}`)}
	payload, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var fileBuf bytes.Buffer
	if _, err := writeFrame(&fileBuf, payload); err != nil {
		t.Fatal(err)
	}
	if got := AppendFrame(nil, payload); !bytes.Equal(got, fileBuf.Bytes()) {
		t.Fatal("AppendFrame bytes differ from writeFrame bytes")
	}
}

func TestParseFrameRejectsCorruption(t *testing.T) {
	good := AppendFrame(nil, []byte("payload"))
	cases := map[string][]byte{
		"short header":      good[:FrameOverhead-1],
		"truncated payload": good[:len(good)-1],
	}
	flipped := append([]byte(nil), good...)
	flipped[FrameOverhead] ^= 0x01
	cases["checksum mismatch"] = flipped
	absurd := append([]byte(nil), good...)
	absurd[3] = 0xff // length prefix far beyond the record limit
	cases["oversized length"] = absurd
	for name, buf := range cases {
		if _, _, err := ParseFrame(buf); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}
