package rfidclean

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/query"
)

var errDecodeNoPlan = errors.New("rfidclean: DecodeCleaned needs a plan")

// Cleaned is the result of cleaning one reading sequence: the conditioned
// trajectory graph plus a query engine over it. All probabilities it reports
// are conditioned on the integrity constraints holding.
type Cleaned struct {
	graph   *core.Graph
	plan    *floorplan.Plan
	engine  *query.Engine
	explain *Explain

	statsOnce sync.Once
	stats     core.Stats
}

func newCleaned(g *core.Graph, plan *floorplan.Plan) *Cleaned {
	return &Cleaned{
		graph:  g,
		plan:   plan,
		engine: query.NewEngine(g, plan.NumLocations()),
	}
}

// newCleanedExplained wraps newCleaned, attaching an explain report when the
// build options requested one. The report is deep-copied out of the options
// so the Cleaned's copy survives the options being reused for another build.
func newCleanedExplained(g *core.Graph, plan *floorplan.Plan, opts *core.Options, derive time.Duration) *Cleaned {
	c := newCleaned(g, plan)
	if opts != nil && opts.Explain != nil {
		b := *opts.Explain
		b.Steps = append([]ExplainStep(nil), b.Steps...)
		c.explain = &Explain{DeriveNanos: derive.Nanoseconds(), Build: b}
	}
	return c
}

// Explain is the cleaning explain report of one Clean call: where the time
// went and where candidate interpretations were pruned, constraint family by
// constraint family. Collect one by cleaning with BuildOptions.Explain set.
type Explain struct {
	// DeriveNanos is the wall time spent deriving the l-sequence from the
	// readings through the prior.
	DeriveNanos int64 `json:"deriveNanos"`
	// Build is Algorithm 1's own report.
	Build BuildExplain `json:"build"`
}

// Explain returns the cleaning explain report, or nil when the clean did not
// request one (BuildOptions.Explain was unset).
func (c *Cleaned) Explain() *Explain { return c.explain }

// Graph exposes the underlying conditioned trajectory graph.
func (c *Cleaned) Graph() *CTGraph { return c.graph }

// Duration returns the number of timestamps covered.
func (c *Cleaned) Duration() int { return c.graph.Duration() }

// StayDistribution answers a stay query: the conditioned distribution over
// location IDs at time tau.
func (c *Cleaned) StayDistribution(tau int) ([]float64, error) {
	return c.engine.Stay(tau)
}

// MostLikelyAt returns the most probable location at time tau and its
// probability.
func (c *Cleaned) MostLikelyAt(tau int) (Location, float64, error) {
	dist, err := c.engine.Stay(tau)
	if err != nil {
		return Location{}, 0, err
	}
	best, bestP := 0, -1.0
	for loc, p := range dist {
		if p > bestP {
			best, bestP = loc, p
		}
	}
	return c.plan.Location(best), bestP, nil
}

// MatchProbability answers a trajectory query: the probability that the
// object's trajectory matches the pattern.
func (c *Cleaned) MatchProbability(p Pattern) (float64, error) {
	return c.engine.Trajectory(p)
}

// Match parses a pattern against the plan's location names and evaluates it.
func (c *Cleaned) Match(pattern string) (float64, error) {
	p, err := query.ParsePattern(pattern, func(name string) (int, error) {
		l, ok := c.plan.LocationByName(name)
		if !ok {
			return 0, errUnknownLocation(name)
		}
		return l.ID, nil
	})
	if err != nil {
		return 0, err
	}
	return c.engine.Trajectory(p)
}

// EverIn returns the probability that the object was at the named location
// at some timestamp in [from, to] (inclusive).
func (c *Cleaned) EverIn(location string, from, to int) (float64, error) {
	l, ok := c.plan.LocationByName(location)
	if !ok {
		return 0, errUnknownLocation(location)
	}
	return c.engine.EverIn(l.ID, from, to)
}

// ExpectedVisitTime returns the expected number of timestamps the object
// spent at the named location within [from, to].
func (c *Cleaned) ExpectedVisitTime(location string, from, to int) (float64, error) {
	l, ok := c.plan.LocationByName(location)
	if !ok {
		return 0, errUnknownLocation(location)
	}
	return c.engine.ExpectedVisitTime(l.ID, from, to)
}

// Marginals returns the conditioned per-timestamp distribution over
// locations: out[τ][locID]. It returns an error when the graph mentions a
// location ID the plan does not know about.
func (c *Cleaned) Marginals() ([][]float64, error) {
	return c.graph.Marginals(c.plan.NumLocations())
}

// MostProbable returns the single most probable valid trajectory (one
// location ID per timestamp) and its conditioned probability.
func (c *Cleaned) MostProbable() ([]int, float64) {
	return c.graph.MostProbable()
}

// Sample draws a valid trajectory from the conditioned distribution.
func (c *Cleaned) Sample(rng *RNG) []int {
	return c.graph.Sample(rng)
}

// TopK returns the up-to-k most probable valid trajectories with their
// conditioned probabilities, descending.
func (c *Cleaned) TopK(k int) ([][]int, []float64) {
	return c.graph.TopK(k)
}

// ExpectedOccupancy returns, per location ID, the expected number of
// timestamps the object spent there under the conditioned distribution
// (the values sum to the window duration).
func (c *Cleaned) ExpectedOccupancy() ([]float64, error) {
	m, err := c.Marginals()
	if err != nil {
		return nil, err
	}
	out := make([]float64, c.plan.NumLocations())
	for _, row := range m {
		for loc, p := range row {
			out[loc] += p
		}
	}
	return out, nil
}

// Encode writes the conditioned trajectory graph as JSON; reload it with
// DecodeCTGraph, or with DecodeCleaned to get a queryable Cleaned back. The
// output is deterministic for a given graph (nodes level by level in index
// order, fixed field order, shortest round-trip float encoding), so
// re-encoding a decoded graph reproduces the same bytes — the property the
// server's persistence layer relies on for stable snapshots.
func (c *Cleaned) Encode(w io.Writer) error { return c.graph.Encode(w) }

// DecodeCleaned reads a ct-graph written by Encode and rehydrates a
// queryable Cleaned against the plan it was cleaned under. The graph's
// location IDs are validated against the plan, so a snapshot restored
// against the wrong deployment fails loudly instead of answering queries
// with unknown locations. Explain reports are not part of the serialized
// form; Explain returns nil on a decoded Cleaned.
func DecodeCleaned(r io.Reader, plan *Plan) (*Cleaned, error) {
	if plan == nil {
		return nil, errDecodeNoPlan
	}
	g, err := core.Decode(r)
	if err != nil {
		return nil, err
	}
	if _, err := g.Marginals(plan.NumLocations()); err != nil {
		return nil, fmt.Errorf("rfidclean: decoded graph does not fit the plan: %w", err)
	}
	return newCleaned(g, plan), nil
}

// Event is a maximal run of timestamps sharing the same most probable
// location — the cleaned data segmented into human-readable stays.
type Event = query.Event

// Events segments the window into location runs with confidences.
func (c *Cleaned) Events() []Event { return c.engine.Events() }

// TransitionMatrix returns the expected number of transitions between every
// ordered pair of location IDs under the conditioned distribution (diagonal
// entries count stays).
func (c *Cleaned) TransitionMatrix() [][]float64 { return c.engine.TransitionMatrix() }

// Stats reports the size of the conditioned trajectory graph. The graph is
// immutable once built, so the walk runs once and the result is memoized —
// serving layers can account store bytes per request without re-walking.
func (c *Cleaned) Stats() GraphStats {
	c.statsOnce.Do(func() { c.stats = c.graph.Stats() })
	return c.stats
}

// GraphStats summarizes a ct-graph's size.
type GraphStats = core.Stats

// LocationName renders a location ID using the plan.
func (c *Cleaned) LocationName(id int) string {
	if id < 0 || id >= c.plan.NumLocations() {
		return "?"
	}
	return c.plan.Location(id).Name
}

type errUnknownLocation string

func (e errUnknownLocation) Error() string {
	return "rfidclean: unknown location \"" + string(e) + "\""
}
